#pragma once

#include <string>
#include <vector>

/// @file wav.hpp
/// Minimal RIFF/WAVE reader and writer (16-bit PCM), so sessions can be
/// exported for listening/inspection and real phone recordings can be fed
/// into the pipeline in place of the simulator.
///
/// Samples are exchanged as doubles in [-1, 1] per channel; writing clips
/// to that range and quantizes to 16-bit PCM.

namespace hyperear::io {

/// Decoded WAV content.
struct WavData {
  double sample_rate = 44100.0;
  /// channels[c][n]: channel-major samples in [-1, 1].
  std::vector<std::vector<double>> channels;

  [[nodiscard]] std::size_t frames() const {
    return channels.empty() ? 0 : channels.front().size();
  }
};

/// Write a 16-bit PCM WAV file. All channels must be non-empty and of equal
/// length; `sample_rate` must be positive. Throws hyperear::Error on I/O
/// failure.
void write_wav(const std::string& path, const std::vector<std::vector<double>>& channels,
               double sample_rate);

/// Read a 16-bit PCM WAV file written by write_wav (or any canonical
/// 16-bit PCM RIFF file). Throws hyperear::Error on malformed input.
[[nodiscard]] WavData read_wav(const std::string& path);

}  // namespace hyperear::io
