#include "io/csv.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace hyperear::io {

void write_imu_csv(const std::string& path, const imu::ImuData& data) {
  require(data.size() > 0, "write_imu_csv: empty record");
  require(data.sample_rate > 0.0, "write_imu_csv: bad sample rate");
  std::ofstream file(path);
  if (!file) throw Error("write_imu_csv: cannot open " + path);
  file << "t,ax,ay,az,gx,gy,gz\n";
  char row[256];
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::snprintf(row, sizeof(row), "%.6f,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g\n",
                  data.time_of(i), data.accel_x[i], data.accel_y[i], data.accel_z[i],
                  data.gyro_x[i], data.gyro_y[i], data.gyro_z[i]);
    file << row;
  }
  if (!file) throw Error("write_imu_csv: write failed for " + path);
}

imu::ImuData read_imu_csv(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw Error("read_imu_csv: cannot open " + path);
  std::string line;
  require(static_cast<bool>(std::getline(file, line)), "read_imu_csv: empty file");
  require(line.rfind("t,", 0) == 0, "read_imu_csv: missing header");

  imu::ImuData data;
  std::vector<double> times;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    double values[7];
    for (int k = 0; k < 7; ++k) {
      std::string cell;
      require(static_cast<bool>(std::getline(row, cell, ',')),
              "read_imu_csv: short row '" + line + "'");
      try {
        values[k] = std::stod(cell);
      } catch (const std::exception&) {
        throw Error("read_imu_csv: bad number '" + cell + "'");
      }
    }
    times.push_back(values[0]);
    data.accel_x.push_back(values[1]);
    data.accel_y.push_back(values[2]);
    data.accel_z.push_back(values[3]);
    data.gyro_x.push_back(values[4]);
    data.gyro_y.push_back(values[5]);
    data.gyro_z.push_back(values[6]);
  }
  require(times.size() >= 2, "read_imu_csv: need at least two samples");
  const double dt = times[1] - times[0];
  require(dt > 0.0, "read_imu_csv: non-increasing timestamps");
  data.sample_rate = 1.0 / dt;
  return data;
}

}  // namespace hyperear::io
