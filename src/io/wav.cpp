#include "io/wav.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace hyperear::io {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

std::uint32_t get_u32(const std::string& data, std::size_t at) {
  require(at + 4 <= data.size(), "wav: truncated file");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(data[at + static_cast<std::size_t>(i)]);
  return v;
}

std::uint16_t get_u16(const std::string& data, std::size_t at) {
  require(at + 2 <= data.size(), "wav: truncated file");
  return static_cast<std::uint16_t>(static_cast<unsigned char>(data[at]) |
                                    (static_cast<unsigned char>(data[at + 1]) << 8));
}

}  // namespace

void write_wav(const std::string& path, const std::vector<std::vector<double>>& channels,
               double sample_rate) {
  require(!channels.empty(), "write_wav: no channels");
  require(sample_rate > 0.0, "write_wav: bad sample rate");
  const std::size_t frames = channels.front().size();
  require(frames > 0, "write_wav: empty channels");
  for (const auto& ch : channels) {
    require(ch.size() == frames, "write_wav: channel length mismatch");
  }
  const auto n_channels = static_cast<std::uint16_t>(channels.size());
  const auto rate = static_cast<std::uint32_t>(std::llround(sample_rate));
  const std::uint16_t block_align = n_channels * 2;
  const auto data_bytes = static_cast<std::uint32_t>(frames * block_align);

  std::string out;
  out.reserve(44 + data_bytes);
  out += "RIFF";
  put_u32(out, 36 + data_bytes);
  out += "WAVEfmt ";
  put_u32(out, 16);        // PCM fmt chunk size
  put_u16(out, 1);         // PCM
  put_u16(out, n_channels);
  put_u32(out, rate);
  put_u32(out, rate * block_align);  // byte rate
  put_u16(out, block_align);
  put_u16(out, 16);        // bits per sample
  out += "data";
  put_u32(out, data_bytes);
  for (std::size_t n = 0; n < frames; ++n) {
    for (const auto& ch : channels) {
      const double clipped = std::clamp(ch[n], -1.0, 1.0);
      const auto s = static_cast<std::int16_t>(std::lround(clipped * 32767.0));
      put_u16(out, static_cast<std::uint16_t>(s));
    }
  }

  std::ofstream file(path, std::ios::binary);
  if (!file) throw Error("write_wav: cannot open " + path);
  file.write(out.data(), static_cast<std::streamsize>(out.size()));
  if (!file) throw Error("write_wav: write failed for " + path);
}

WavData read_wav(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw Error("read_wav: cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  require(data.size() >= 44, "read_wav: file too small");
  require(data.compare(0, 4, "RIFF") == 0 && data.compare(8, 4, "WAVE") == 0,
          "read_wav: not a RIFF/WAVE file");

  // Walk chunks to find fmt and data (canonical files have them in order).
  std::size_t pos = 12;
  std::uint16_t n_channels = 0, bits = 0;
  std::uint32_t rate = 0;
  std::size_t data_at = 0, data_len = 0;
  while (pos + 8 <= data.size()) {
    const std::string id = data.substr(pos, 4);
    const std::uint32_t len = get_u32(data, pos + 4);
    if (id == "fmt ") {
      require(len >= 16, "read_wav: short fmt chunk");
      const std::uint16_t format = get_u16(data, pos + 8);
      require(format == 1, "read_wav: only PCM supported");
      n_channels = get_u16(data, pos + 10);
      rate = get_u32(data, pos + 12);
      bits = get_u16(data, pos + 22);
    } else if (id == "data") {
      data_at = pos + 8;
      data_len = len;
    }
    pos += 8 + len + (len % 2);  // chunks are word-aligned
  }
  require(n_channels > 0 && rate > 0, "read_wav: missing fmt chunk");
  require(bits == 16, "read_wav: only 16-bit PCM supported");
  require(data_at > 0, "read_wav: missing data chunk");
  require(data_at + data_len <= data.size(), "read_wav: truncated data chunk");

  const std::size_t frames = data_len / (2 * n_channels);
  WavData out;
  out.sample_rate = static_cast<double>(rate);
  out.channels.assign(n_channels, std::vector<double>(frames));
  for (std::size_t n = 0; n < frames; ++n) {
    for (std::uint16_t c = 0; c < n_channels; ++c) {
      const auto raw = static_cast<std::int16_t>(
          get_u16(data, data_at + (n * n_channels + c) * 2));
      out.channels[c][n] = static_cast<double>(raw) / 32767.0;
    }
  }
  return out;
}

}  // namespace hyperear::io
