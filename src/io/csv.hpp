#pragma once

#include <string>

#include "imu/imu_model.hpp"

/// @file csv.hpp
/// IMU record import/export as CSV — the companion to wav.hpp for moving
/// whole sessions in and out of the simulator. Format: a header line
/// `t,ax,ay,az,gx,gy,gz` followed by one row per sample; `t` is seconds
/// (used only to recover the sample rate).

namespace hyperear::io {

/// Write an IMU record. Throws hyperear::Error on I/O failure.
void write_imu_csv(const std::string& path, const imu::ImuData& data);

/// Read an IMU record written by write_imu_csv (or hand-authored in the
/// same layout). The sample rate is recovered from the first two
/// timestamps. Throws hyperear::Error on malformed input.
[[nodiscard]] imu::ImuData read_imu_csv(const std::string& path);

}  // namespace hyperear::io
