#pragma once

/// @file projection.hpp
/// Projected Location Estimation in 3D (paper Section VI-B, Eq. 7).
///
/// When the speaker and the phone are at different heights, each slide
/// measures the *slant* (radial) distance L from the slide axis to the
/// speaker. Sliding at two statures separated by a vertical offset H forms a
/// triangle with sides H, L1, L2; the floor-projected distance follows from
/// the law of cosines.

namespace hyperear::geom {

/// Result of the two-stature projection.
struct ProjectionResult {
  double beta_rad = 0.0;        ///< angle at the lower-slide vertex (Eq. 7)
  double projected_distance = 0.0;  ///< L* = L1 * sin(beta)
  double height_offset = 0.0;   ///< vertical speaker offset below slide 1
  bool well_conditioned = true; ///< false when the triangle was degenerate
};

/// Apply Eq. 7: beta = arccos((H^2 + L1^2 - L2^2) / (2*H*L1)),
/// L* = L1 * sin(beta).
///
/// `h` is the (positive) stature change between the two slide sessions,
/// `l1`/`l2` the radial distances measured at the first/second stature.
/// The cosine argument is clamped into [-1, 1]; when clamping was needed the
/// result is flagged not well conditioned (measurement noise can break the
/// triangle inequality for nearly co-planar geometry). Requires h > 0,
/// l1 > 0, l2 > 0.
[[nodiscard]] ProjectionResult project_to_floor(double h, double l1, double l2);

}  // namespace hyperear::geom
