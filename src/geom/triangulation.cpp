#include "geom/triangulation.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "geom/least_squares.hpp"

namespace hyperear::geom {

namespace {

double clamp_range_diff(double dd, double aperture) {
  const double limit = 0.999 * aperture;
  return std::clamp(dd, -limit, limit);
}

}  // namespace

Vec2 far_field_initial_guess(const AugmentedTdoa& in, double max_range) {
  // Degenerate geometry is a caller bug: TTL's pairing loop filters
  // zero-aperture slides before building an AugmentedTdoa. Contracts fail
  // fast in checked builds; the always-on require keeps Release callers
  // honest with a PreconditionError.
  HE_EXPECTS(in.slide_distance > 0.0);
  HE_EXPECTS(in.mic_separation > 0.0);
  HE_ASSERT_FINITE(in.range_diff_mic1);
  HE_ASSERT_FINITE(in.range_diff_mic2);
  require(in.slide_distance > 0.0, "far_field_initial_guess: slide distance must be positive");
  require(in.mic_separation > 0.0, "far_field_initial_guess: mic separation must be positive");
  const double dprime = in.slide_distance;
  const double d = in.mic_separation;
  const double dd1 = clamp_range_diff(in.range_diff_mic1, dprime);
  const double dd2 = clamp_range_diff(in.range_diff_mic2, dprime);
  // Far field: dd1 ~ -D'*x/r, dd2 ~ -D'*(x-D)/r  =>  dd2 - dd1 ~ D'*D/r.
  const double diff = dd2 - dd1;
  double r = diff > 1e-9 ? dprime * d / diff : max_range;
  r = std::clamp(r, 0.05, max_range);
  double x = -dd1 * r / dprime;
  x = std::clamp(x, -r, r);
  const double y2 = r * r - x * x;
  const double y = std::sqrt(std::max(y2, 0.01 * r * r));
  return {x, y};
}

TriangulationResult solve_augmented(const AugmentedTdoa& in) {
  HE_EXPECTS(in.slide_distance > 0.0);
  HE_EXPECTS(in.mic_separation > 0.0);
  HE_ASSERT_FINITE(in.range_diff_mic1);
  HE_ASSERT_FINITE(in.range_diff_mic2);
  require(in.slide_distance > 0.0, "solve_augmented: slide distance must be positive");
  require(in.mic_separation > 0.0, "solve_augmented: mic separation must be positive");
  const double dprime = in.slide_distance;
  const double d = in.mic_separation;
  const double dd1 = clamp_range_diff(in.range_diff_mic1, dprime);
  const double dd2 = clamp_range_diff(in.range_diff_mic2, dprime);

  const Hyperbola h1({dprime / 2.0, 0.0}, {-dprime / 2.0, 0.0}, dd1, true);
  const Hyperbola h2({d + dprime / 2.0, 0.0}, {d - dprime / 2.0, 0.0}, dd2, true);
  return intersect(h1, h2, far_field_initial_guess(in));
}

TriangulationResult intersect(const Hyperbola& h1, const Hyperbola& h2,
                              const Vec2& initial_guess) {
  const auto residuals = [&](const std::vector<double>& p) {
    const Vec2 pt{p[0], p[1]};
    return std::vector<double>{h1.residual(pt), h2.residual(pt)};
  };
  LmOptions opts;
  opts.max_iterations = 200;
  const LmResult lm =
      levenberg_marquardt(residuals, {initial_guess.x, initial_guess.y}, opts);
  TriangulationResult out;
  out.position = {lm.parameters[0], lm.parameters[1]};
  out.residual = std::sqrt(lm.cost);  // RMS-ish scale of the two residuals
  out.converged = lm.converged || lm.cost < 1e-12;
  out.iterations = lm.iterations;
  // The solver must hand back a realizable point: LM can wander, but a
  // non-finite position means the residual function itself produced NaNs.
  HE_ASSERT_FINITE(out.position.x);
  HE_ASSERT_FINITE(out.position.y);
  return out;
}

}  // namespace hyperear::geom
