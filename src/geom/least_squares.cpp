#include "geom/least_squares.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hyperear::geom {

namespace {

double cost_of(const std::vector<double>& r) {
  double c = 0.0;
  for (double v : r) c += v * v;
  return 0.5 * c;
}

/// Solve (A + lambda*diag(A)) x = b for small dense symmetric A via
/// Gaussian elimination with partial pivoting. A is n x n row-major.
bool solve_damped(std::vector<double> a, std::vector<double> b, double lambda,
                  std::vector<double>& x) {
  const std::size_t n = b.size();
  for (std::size_t i = 0; i < n; ++i) {
    a[i * n + i] *= (1.0 + lambda);
    if (a[i * n + i] == 0.0) a[i * n + i] = lambda > 0.0 ? lambda : 1e-12;
  }
  // Gaussian elimination with partial pivoting.
  std::vector<std::size_t> piv(n);
  for (std::size_t i = 0; i < n; ++i) piv[i] = i;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t best = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row * n + col]) > std::abs(a[best * n + col])) best = row;
    }
    if (std::abs(a[best * n + col]) < 1e-300) return false;
    if (best != col) {
      for (std::size_t k = 0; k < n; ++k) std::swap(a[col * n + k], a[best * n + k]);
      std::swap(b[col], b[best]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double f = a[row * n + col] / a[col * n + col];
      for (std::size_t k = col; k < n; ++k) a[row * n + k] -= f * a[col * n + k];
      b[row] -= f * b[col];
    }
  }
  x.assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= a[i * n + k] * x[k];
    x[i] = s / a[i * n + i];
  }
  return true;
}

}  // namespace

LmResult levenberg_marquardt(const ResidualFn& residuals, std::vector<double> initial,
                             const LmOptions& options) {
  require(!initial.empty(), "levenberg_marquardt: empty parameter vector");
  const std::size_t n = initial.size();

  std::vector<double> p = std::move(initial);
  std::vector<double> r = residuals(p);
  require(!r.empty(), "levenberg_marquardt: residual function returned empty vector");
  const std::size_t m = r.size();
  double cost = cost_of(r);
  double lambda = options.initial_lambda;

  LmResult result;
  result.parameters = p;
  result.cost = cost;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Numeric Jacobian (m x n), forward differences.
    std::vector<double> jac(m * n);
    for (std::size_t j = 0; j < n; ++j) {
      const double h = options.jacobian_epsilon * std::max(1.0, std::abs(p[j]));
      std::vector<double> pj = p;
      pj[j] += h;
      const std::vector<double> rj = residuals(pj);
      require(rj.size() == m, "levenberg_marquardt: residual size changed");
      for (std::size_t i = 0; i < m; ++i) jac[i * n + j] = (rj[i] - r[i]) / h;
    }
    // Normal equations: JtJ and Jtr.
    std::vector<double> jtj(n * n, 0.0);
    std::vector<double> jtr(n, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        jtr[j] += jac[i * n + j] * r[i];
        for (std::size_t k = j; k < n; ++k) jtj[j * n + k] += jac[i * n + j] * jac[i * n + k];
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < j; ++k) jtj[j * n + k] = jtj[k * n + j];
    }
    double max_grad = 0.0;
    for (double g : jtr) max_grad = std::max(max_grad, std::abs(g));
    if (max_grad < options.gradient_tolerance) {
      result.converged = true;
      break;
    }
    // Damped step; retry with larger lambda until the cost decreases.
    bool stepped = false;
    for (int attempt = 0; attempt < 20; ++attempt) {
      std::vector<double> rhs(n);
      for (std::size_t j = 0; j < n; ++j) rhs[j] = -jtr[j];
      std::vector<double> step;
      if (!solve_damped(jtj, rhs, lambda, step)) {
        lambda *= options.lambda_up;
        continue;
      }
      double step_norm = 0.0;
      for (double s : step) step_norm += s * s;
      step_norm = std::sqrt(step_norm);
      std::vector<double> p_new = p;
      for (std::size_t j = 0; j < n; ++j) p_new[j] += step[j];
      const std::vector<double> r_new = residuals(p_new);
      const double cost_new = cost_of(r_new);
      if (cost_new < cost) {
        p = std::move(p_new);
        r = r_new;
        cost = cost_new;
        lambda = std::max(lambda * options.lambda_down, 1e-12);
        stepped = true;
        if (step_norm < options.step_tolerance) {
          result.converged = true;
        }
        break;
      }
      lambda *= options.lambda_up;
    }
    result.parameters = p;
    result.cost = cost;
    if (!stepped || result.converged) {
      // No productive step found at any damping, or step became negligible.
      if (!stepped) result.converged = cost < 1e-18 || max_grad < 1e-6;
      break;
    }
  }
  result.parameters = p;
  result.cost = cost;
  return result;
}

}  // namespace hyperear::geom
