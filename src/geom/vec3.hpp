#pragma once

#include <cmath>

#include "geom/vec2.hpp"

/// @file vec3.hpp
/// Minimal 3D vector value type used by trajectories and the IMU model.

namespace hyperear::geom {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}
  /// Lift a planar vector onto the floor plane (z = 0).
  explicit constexpr Vec3(const Vec2& v, double z_ = 0.0) : x(v.x), y(v.y), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }

  [[nodiscard]] constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] double norm() const { return std::sqrt(x * x + y * y + z * z); }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y + z * z; }
  [[nodiscard]] Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec3{x / n, y / n, z / n} : *this;
  }
  /// Drop the z component (floor-map projection).
  [[nodiscard]] constexpr Vec2 xy() const { return {x, y}; }
};

inline constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

[[nodiscard]] inline double distance(const Vec3& a, const Vec3& b) { return (a - b).norm(); }

}  // namespace hyperear::geom
