#pragma once

#include "geom/vec2.hpp"
#include "geom/vec3.hpp"

/// @file rotation.hpp
/// 2D rotations and 3x3 rotation matrices (world <-> phone body frame).
///
/// Body frame convention (Android-style): +x to the right of the screen,
/// +y toward the top edge (this is the microphone axis on both evaluated
/// phones), +z out of the screen. World frame: x/y on the floor map, z up.

namespace hyperear::geom {

/// Rotate a planar vector by `rad` counter-clockwise.
[[nodiscard]] Vec2 rotate2d(const Vec2& v, double rad);

/// Row-major 3x3 rotation matrix.
class Mat3 {
 public:
  /// Identity rotation.
  Mat3();
  /// From row-major coefficients.
  Mat3(double r00, double r01, double r02, double r10, double r11, double r12, double r20,
       double r21, double r22);

  [[nodiscard]] static Mat3 identity();
  /// Rotation of `rad` about the world x axis.
  [[nodiscard]] static Mat3 rot_x(double rad);
  /// Rotation of `rad` about the world y axis.
  [[nodiscard]] static Mat3 rot_y(double rad);
  /// Rotation of `rad` about the world z axis.
  [[nodiscard]] static Mat3 rot_z(double rad);
  /// Intrinsic z-y'-x'' (yaw-pitch-roll) composition.
  [[nodiscard]] static Mat3 from_euler_zyx(double yaw, double pitch, double roll);

  [[nodiscard]] Mat3 operator*(const Mat3& o) const;
  [[nodiscard]] Vec3 operator*(const Vec3& v) const;

  /// Transpose (== inverse for rotation matrices).
  [[nodiscard]] Mat3 transpose() const;

  [[nodiscard]] double at(int row, int col) const { return m_[row][col]; }

  /// Yaw (rotation about z) of the matrix's x-axis image, in (-pi, pi].
  [[nodiscard]] double yaw() const;

 private:
  double m_[3][3];
};

/// Pose of the phone: world position of the phone center plus the body->world
/// rotation.
struct Pose {
  Vec3 position;
  Mat3 orientation;  ///< columns are the body axes expressed in world frame

  /// Map a body-frame point to world coordinates.
  [[nodiscard]] Vec3 to_world(const Vec3& body) const {
    return position + orientation * body;
  }
  /// Map a world-frame vector (not point) to body coordinates.
  [[nodiscard]] Vec3 vector_to_body(const Vec3& world) const {
    return orientation.transpose() * world;
  }
};

}  // namespace hyperear::geom
