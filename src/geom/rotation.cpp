#include "geom/rotation.hpp"

#include <cmath>

namespace hyperear::geom {

Vec2 rotate2d(const Vec2& v, double rad) {
  const double c = std::cos(rad);
  const double s = std::sin(rad);
  return {c * v.x - s * v.y, s * v.x + c * v.y};
}

Mat3::Mat3()
    : m_{{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}} {}

Mat3::Mat3(double r00, double r01, double r02, double r10, double r11, double r12, double r20,
           double r21, double r22)
    : m_{{r00, r01, r02}, {r10, r11, r12}, {r20, r21, r22}} {}

Mat3 Mat3::identity() { return Mat3(); }

Mat3 Mat3::rot_x(double rad) {
  const double c = std::cos(rad), s = std::sin(rad);
  return {1, 0, 0, 0, c, -s, 0, s, c};
}

Mat3 Mat3::rot_y(double rad) {
  const double c = std::cos(rad), s = std::sin(rad);
  return {c, 0, s, 0, 1, 0, -s, 0, c};
}

Mat3 Mat3::rot_z(double rad) {
  const double c = std::cos(rad), s = std::sin(rad);
  return {c, -s, 0, s, c, 0, 0, 0, 1};
}

Mat3 Mat3::from_euler_zyx(double yaw, double pitch, double roll) {
  return rot_z(yaw) * rot_y(pitch) * rot_x(roll);
}

Mat3 Mat3::operator*(const Mat3& o) const {
  Mat3 r;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double s = 0.0;
      for (int k = 0; k < 3; ++k) s += m_[i][k] * o.m_[k][j];
      r.m_[i][j] = s;
    }
  }
  return r;
}

Vec3 Mat3::operator*(const Vec3& v) const {
  return {m_[0][0] * v.x + m_[0][1] * v.y + m_[0][2] * v.z,
          m_[1][0] * v.x + m_[1][1] * v.y + m_[1][2] * v.z,
          m_[2][0] * v.x + m_[2][1] * v.y + m_[2][2] * v.z};
}

Mat3 Mat3::transpose() const {
  return {m_[0][0], m_[1][0], m_[2][0], m_[0][1], m_[1][1], m_[2][1],
          m_[0][2], m_[1][2], m_[2][2]};
}

double Mat3::yaw() const { return std::atan2(m_[1][0], m_[0][0]); }

}  // namespace hyperear::geom
