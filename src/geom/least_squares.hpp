#pragma once

#include <functional>
#include <vector>

/// @file least_squares.hpp
/// Dense Levenberg–Marquardt for the small nonlinear systems HyperEar solves
/// (two-hyperbola intersection is a 2-parameter, 2-residual problem; the
/// general entry point supports any small m x n).

namespace hyperear::geom {

/// Residual callback: given parameters, return the residual vector.
using ResidualFn = std::function<std::vector<double>(const std::vector<double>&)>;

/// Options controlling the LM iteration.
struct LmOptions {
  int max_iterations = 100;
  double gradient_tolerance = 1e-12;  ///< stop when max|J^T r| is below this
  double step_tolerance = 1e-12;      ///< stop when the step norm is below this
  double initial_lambda = 1e-3;
  double lambda_up = 10.0;
  double lambda_down = 0.1;
  double jacobian_epsilon = 1e-7;     ///< forward-difference step scale
};

/// Result of an LM solve.
struct LmResult {
  std::vector<double> parameters;
  double cost = 0.0;  ///< 0.5 * sum of squared residuals at the solution
  int iterations = 0;
  bool converged = false;
};

/// Minimize 0.5*||r(p)||^2 from the given initial parameters using numeric
/// forward-difference Jacobians. Throws PreconditionError on empty inputs.
[[nodiscard]] LmResult levenberg_marquardt(const ResidualFn& residuals,
                                           std::vector<double> initial,
                                           const LmOptions& options = {});

}  // namespace hyperear::geom
