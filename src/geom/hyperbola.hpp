#pragma once

#include <vector>

#include "geom/vec2.hpp"

/// @file hyperbola.hpp
/// Range-difference hyperbolas.
///
/// A TDoA measurement between two receiver positions f1, f2 constrains the
/// source to the locus { P : |P - f1| - |P - f2| = delta }, one branch of a
/// hyperbola with foci f1 and f2 (Section II-B of the paper). This module
/// provides the residual/gradient algebra the solvers use, plus the region-
/// density analysis behind the paper's two key observations (Fig. 4).

namespace hyperear::geom {

/// One branch of a range-difference hyperbola.
class Hyperbola {
 public:
  /// Construct from the two focus points and the signed range difference
  /// delta = |P - f1| - |P - f2|. Requires |delta| < |f1 - f2| (otherwise the
  /// locus is empty or degenerate) unless `allow_degenerate` is set, which
  /// permits |delta| == |f1 - f2| (the locus collapses to a ray).
  Hyperbola(const Vec2& f1, const Vec2& f2, double delta, bool allow_degenerate = false);

  [[nodiscard]] const Vec2& focus1() const { return f1_; }
  [[nodiscard]] const Vec2& focus2() const { return f2_; }
  [[nodiscard]] double delta() const { return delta_; }

  /// Signed residual |P - f1| - |P - f2| - delta; zero on the locus.
  [[nodiscard]] double residual(const Vec2& p) const;

  /// Gradient of the residual with respect to P. Undefined at the foci.
  [[nodiscard]] Vec2 gradient(const Vec2& p) const;

  /// Range difference field value at P (residual + delta).
  [[nodiscard]] double range_difference(const Vec2& p) const;

  /// Sample `n` points along the branch within |y-parameter| <= t_max using
  /// the standard (a, b) parameterization in the focal frame. Useful for
  /// plotting and for density studies.
  [[nodiscard]] std::vector<Vec2> sample(std::size_t n, double t_max) const;

 private:
  Vec2 f1_;
  Vec2 f2_;
  double delta_;
};

/// Number of distinguishable hyperbolas for a receiver pair of separation D
/// at sampling rate fs and sound speed S: N = floor(2*D*fs/S) (paper Eq. 2).
[[nodiscard]] int distinguishable_hyperbola_count(double separation, double sample_rate,
                                                  double sound_speed);

/// Local width of a TDoA quantization region at point P for receivers at
/// f1/f2: the spatial distance between adjacent hyperbolas, i.e.
/// (S / fs) / |grad range_difference(P)|. Large width == large ambiguity.
/// Returns +inf where the gradient vanishes (on the perpendicular bisector
/// axis at infinity).
[[nodiscard]] double tdoa_region_width(const Vec2& f1, const Vec2& f2, const Vec2& p,
                                       double sample_rate, double sound_speed);

}  // namespace hyperear::geom
