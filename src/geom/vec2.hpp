#pragma once

#include <cmath>

/// @file vec2.hpp
/// Minimal 2D vector value type used by the planar localization math.

namespace hyperear::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }

  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  [[nodiscard]] constexpr double dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// z-component of the 3D cross product of the embedded vectors.
  [[nodiscard]] constexpr double cross(const Vec2& o) const { return x * o.y - y * o.x; }
  [[nodiscard]] double norm() const { return std::sqrt(x * x + y * y); }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
  /// Unit vector in the same direction; the zero vector is returned unchanged.
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : *this;
  }
  /// Perpendicular vector rotated +90 degrees.
  [[nodiscard]] constexpr Vec2 perp() const { return {-y, x}; }
  /// Angle of the vector from the +x axis, in (-pi, pi].
  [[nodiscard]] double angle() const { return std::atan2(y, x); }
};

inline constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

[[nodiscard]] inline double distance(const Vec2& a, const Vec2& b) { return (a - b).norm(); }

/// Unit vector at the given angle from +x.
[[nodiscard]] inline Vec2 unit_from_angle(double rad) { return {std::cos(rad), std::sin(rad)}; }

}  // namespace hyperear::geom
