#pragma once

#include "geom/hyperbola.hpp"
#include "geom/vec2.hpp"

/// @file triangulation.hpp
/// Two-hyperbola intersection — the localization core of HyperEar.
///
/// The augmented scheme (paper Section VI-A) slides the phone by D' along its
/// microphone axis. Each mic then yields one hyperbola whose foci are that
/// mic's start and end positions; the two virtual arrays are offset by the
/// phone's own mic separation D along the slide line. In the local frame
/// (origin at the center of Mic1's two positions, +x along the slide line
/// toward Mic2's side, +y toward the speaker) the paper's Eqs. 5-6 are:
///
///   sqrt((x - D'/2)^2 + y^2) - sqrt((x + D'/2)^2 + y^2)       = dd1
///   sqrt((x - D - D'/2)^2 + y^2) - sqrt((x - D + D'/2)^2+y^2) = dd2
///
/// The solver returns (x, y); y is the distance L from the slide axis to the
/// speaker (radial distance in 3D, Section VI-B).

namespace hyperear::geom {

/// Inputs of the augmented triangulation, all in meters.
struct AugmentedTdoa {
  double slide_distance = 0.0;   ///< D': aperture created by the slide
  double mic_separation = 0.0;   ///< D: on-phone mic separation
  double range_diff_mic1 = 0.0;  ///< dd1 = S * (t2 - t1 - n*T) at Mic1
  double range_diff_mic2 = 0.0;  ///< dd2 = S * (t4 - t3 - n*T) at Mic2
};

/// Solution of the two-hyperbola intersection.
struct TriangulationResult {
  Vec2 position;       ///< (x, y) in the local slide frame; L == position.y
  double residual = 0.0;  ///< RMS of the two range residuals at the solution
  bool converged = false;
  int iterations = 0;
};

/// Closed-form far-field initial guess for the augmented geometry. Derived
/// from the first-order expansion dd_i ~ -D' * x_i / r: the range follows
/// r ~ D * D' / (dd2 - dd1). Returns a guess clamped into a sane region.
[[nodiscard]] Vec2 far_field_initial_guess(const AugmentedTdoa& in, double max_range = 100.0);

/// Solve the paper's Eqs. 5-6 by Levenberg-Marquardt from the far-field
/// guess. Requires positive apertures and |dd_i| < D' (hyperbola validity);
/// range differences are clamped to 0.999*D' with degeneracy tolerated
/// because quantization can push a measurement slightly past the limit.
[[nodiscard]] TriangulationResult solve_augmented(const AugmentedTdoa& in);

/// General two-hyperbola intersection used by the naive baseline (Fig. 2
/// scheme) and by tests: intersect arbitrary hyperbolas from the given
/// initial guess.
[[nodiscard]] TriangulationResult intersect(const Hyperbola& h1, const Hyperbola& h2,
                                            const Vec2& initial_guess);

}  // namespace hyperear::geom
