#include "geom/hyperbola.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace hyperear::geom {

Hyperbola::Hyperbola(const Vec2& f1, const Vec2& f2, double delta, bool allow_degenerate)
    : f1_(f1), f2_(f2), delta_(delta) {
  const double c2 = distance(f1, f2);
  require(c2 > 0.0, "Hyperbola: coincident foci");
  if (allow_degenerate) {
    require(std::abs(delta) <= c2 + 1e-12, "Hyperbola: |delta| exceeds focal distance");
  } else {
    require(std::abs(delta) < c2, "Hyperbola: |delta| must be < focal distance");
  }
}

double Hyperbola::residual(const Vec2& p) const {
  return distance(p, f1_) - distance(p, f2_) - delta_;
}

Vec2 Hyperbola::gradient(const Vec2& p) const {
  const Vec2 u1 = (p - f1_).normalized();
  const Vec2 u2 = (p - f2_).normalized();
  return u1 - u2;
}

double Hyperbola::range_difference(const Vec2& p) const {
  return distance(p, f1_) - distance(p, f2_);
}

std::vector<Vec2> Hyperbola::sample(std::size_t n, double t_max) const {
  require(n >= 2, "Hyperbola::sample: need at least two points");
  require(t_max > 0.0, "Hyperbola::sample: t_max must be positive");
  // Focal frame: center at midpoint, +x from f2 toward f1 (so that the
  // branch with |P-f1| - |P-f2| = delta < 0 lies on the +x side of center).
  const Vec2 center = (f1_ + f2_) * 0.5;
  const double c = distance(f1_, f2_) * 0.5;
  const double a = std::abs(delta_) * 0.5;
  std::vector<Vec2> pts;
  pts.reserve(n);
  const Vec2 axis = (f1_ - f2_).normalized();
  const Vec2 perp = axis.perp();
  if (a < 1e-12) {
    // Degenerate: perpendicular bisector line.
    for (std::size_t i = 0; i < n; ++i) {
      const double t = -t_max + 2.0 * t_max * static_cast<double>(i) / static_cast<double>(n - 1);
      pts.push_back(center + perp * t);
    }
    return pts;
  }
  const double b2 = std::max(c * c - a * a, 0.0);
  const double b = std::sqrt(b2);
  // The branch closer to the focus with the *smaller* range: if delta > 0
  // then |P-f1| > |P-f2| and the branch hugs f2 (negative axis side).
  const double side = delta_ > 0.0 ? -1.0 : 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = -t_max + 2.0 * t_max * static_cast<double>(i) / static_cast<double>(n - 1);
    const double x = side * a * std::cosh(t);
    const double y = b * std::sinh(t);
    pts.push_back(center + axis * x + perp * y);
  }
  return pts;
}

int distinguishable_hyperbola_count(double separation, double sample_rate, double sound_speed) {
  require(separation > 0.0 && sample_rate > 0.0 && sound_speed > 0.0,
          "distinguishable_hyperbola_count: arguments must be positive");
  return static_cast<int>(std::floor(2.0 * separation * sample_rate / sound_speed));
}

double tdoa_region_width(const Vec2& f1, const Vec2& f2, const Vec2& p, double sample_rate,
                         double sound_speed) {
  require(sample_rate > 0.0 && sound_speed > 0.0,
          "tdoa_region_width: rates must be positive");
  const Vec2 g = (p - f1).normalized() - (p - f2).normalized();
  const double gn = g.norm();
  const double step = sound_speed / sample_rate;
  if (gn < 1e-12) return std::numeric_limits<double>::infinity();
  return step / gn;
}

}  // namespace hyperear::geom
