#include "geom/projection.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hyperear::geom {

ProjectionResult project_to_floor(double h, double l1, double l2) {
  require(h > 0.0, "project_to_floor: stature change must be positive");
  require(l1 > 0.0 && l2 > 0.0, "project_to_floor: radial distances must be positive");
  ProjectionResult out;
  const double raw = (h * h + l1 * l1 - l2 * l2) / (2.0 * h * l1);
  const double cos_beta = std::clamp(raw, -1.0, 1.0);
  out.well_conditioned = std::abs(raw) <= 1.0;
  out.beta_rad = std::acos(cos_beta);
  out.projected_distance = l1 * std::sin(out.beta_rad);
  // Speaker offset from the first slide plane measured ALONG the stature
  // move direction: negative when the move went away from the speaker
  // (e.g. raising the phone above a speaker on the floor).
  out.height_offset = l1 * cos_beta;
  return out;
}

}  // namespace hyperear::geom
