#include "imu/imu_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hyperear::imu {

namespace {

double quantize(double v, double step) {
  if (step <= 0.0) return v;
  return std::round(v / step) * step;
}

}  // namespace

ImuModel::ImuModel(const ImuSpec& spec, Rng& rng) : spec_(spec), rng_(rng.split()) {
  require(spec.sample_rate > 0.0, "ImuModel: sample rate must be positive");
  accel_bias_ = {rng_.gaussian(0.0, spec.accel_bias_sigma),
                 rng_.gaussian(0.0, spec.accel_bias_sigma),
                 rng_.gaussian(0.0, spec.accel_bias_sigma)};
  gyro_bias_ = {rng_.gaussian(0.0, spec.gyro_bias_sigma),
                rng_.gaussian(0.0, spec.gyro_bias_sigma),
                rng_.gaussian(0.0, spec.gyro_bias_sigma)};
}

ImuData ImuModel::corrupt(const std::vector<geom::Vec3>& specific_force,
                          const std::vector<geom::Vec3>& angular_rate) {
  require(specific_force.size() == angular_rate.size(),
          "ImuModel::corrupt: series length mismatch");
  ImuData out;
  out.sample_rate = spec_.sample_rate;
  const std::size_t n = specific_force.size();
  out.accel_x.resize(n);
  out.accel_y.resize(n);
  out.accel_z.resize(n);
  out.gyro_x.resize(n);
  out.gyro_y.resize(n);
  out.gyro_z.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Vec3& f = specific_force[i];
    const geom::Vec3& w = angular_rate[i];
    out.accel_x[i] = quantize(f.x + accel_bias_.x + rng_.gaussian(0.0, spec_.accel_noise_rms),
                              spec_.accel_quantization);
    out.accel_y[i] = quantize(f.y + accel_bias_.y + rng_.gaussian(0.0, spec_.accel_noise_rms),
                              spec_.accel_quantization);
    out.accel_z[i] = quantize(f.z + accel_bias_.z + rng_.gaussian(0.0, spec_.accel_noise_rms),
                              spec_.accel_quantization);
    out.gyro_x[i] = quantize(w.x + gyro_bias_.x + rng_.gaussian(0.0, spec_.gyro_noise_rms),
                             spec_.gyro_quantization);
    out.gyro_y[i] = quantize(w.y + gyro_bias_.y + rng_.gaussian(0.0, spec_.gyro_noise_rms),
                             spec_.gyro_quantization);
    out.gyro_z[i] = quantize(w.z + gyro_bias_.z + rng_.gaussian(0.0, spec_.gyro_noise_rms),
                             spec_.gyro_quantization);
  }
  return out;
}

}  // namespace hyperear::imu
