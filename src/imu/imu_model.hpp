#pragma once

#include <vector>

#include "common/rng.hpp"
#include "geom/vec3.hpp"

/// @file imu_model.hpp
/// Low-end MEMS inertial sensor model (substitute for the phones' onboard
/// accelerometer/gyroscope, per DESIGN.md). The model corrupts ideal
/// body-frame specific force and angular rate with the error sources that
/// drive the paper's Section V design: per-session constant bias (the cause
/// of the linear velocity drift Eq. 4 removes), white noise, and ADC
/// quantization, all at the 100 Hz rate the paper uses.

namespace hyperear::imu {

/// Error characteristics of the simulated IMU.
struct ImuSpec {
  double sample_rate = 100.0;       ///< Hz
  double accel_noise_rms = 0.03;    ///< m/s^2 white noise per sample
  double accel_bias_sigma = 0.02;   ///< m/s^2, per-session constant, per axis
  double accel_quantization = 0.0012;  ///< m/s^2 per LSB (typical phone IMU)
  double gyro_noise_rms = 0.002;    ///< rad/s white noise per sample
  double gyro_bias_sigma = 0.001;   ///< rad/s per-session constant, per axis
  double gyro_quantization = 6.1e-5;   ///< rad/s per LSB
};

/// A uniformly sampled IMU record (struct-of-arrays for the DSP stages).
struct ImuData {
  double sample_rate = 100.0;
  std::vector<double> accel_x, accel_y, accel_z;  ///< specific force, body frame
  std::vector<double> gyro_x, gyro_y, gyro_z;     ///< angular rate, body frame

  [[nodiscard]] std::size_t size() const { return accel_x.size(); }
  [[nodiscard]] double time_of(std::size_t i) const {
    return static_cast<double>(i) / sample_rate;
  }
};

/// Stateful sensor model: draws per-session biases at construction, then
/// corrupts ideal samples.
class ImuModel {
 public:
  ImuModel(const ImuSpec& spec, Rng& rng);

  [[nodiscard]] const ImuSpec& spec() const { return spec_; }
  [[nodiscard]] const geom::Vec3& accel_bias() const { return accel_bias_; }
  [[nodiscard]] const geom::Vec3& gyro_bias() const { return gyro_bias_; }

  /// Corrupt ideal readings. `specific_force` and `angular_rate` are
  /// body-frame series sampled at spec().sample_rate; both must have the
  /// same length.
  [[nodiscard]] ImuData corrupt(const std::vector<geom::Vec3>& specific_force,
                                const std::vector<geom::Vec3>& angular_rate);

 private:
  ImuSpec spec_;
  geom::Vec3 accel_bias_;
  geom::Vec3 gyro_bias_;
  Rng rng_;
};

}  // namespace hyperear::imu
