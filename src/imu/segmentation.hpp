#pragma once

#include <span>
#include <vector>

/// @file segmentation.hpp
/// Movement segmentation (paper Section V-A2): the power level of the
/// sliding-axis acceleration, Eq. 3
///
///   P(t) = (1/W) * sum_{n=t..t+W} a(n)^2
///
/// with W = 4 samples (40 ms at 100 Hz), marks a slide start when the power
/// exceeds a threshold (0.2) and a slide end when it stays below for m = 8
/// consecutive samples.

namespace hyperear::imu {

/// Indices of one detected movement (slide) in the IMU record.
struct Segment {
  std::size_t start = 0;  ///< first sample of the slide
  std::size_t end = 0;    ///< one past the last sample of the slide

  [[nodiscard]] std::size_t length() const { return end - start; }
};

/// Segmentation parameters (defaults are the paper's empirical choices).
struct SegmentationOptions {
  std::size_t window = 4;       ///< W, power-averaging window in samples
  double threshold = 0.2;       ///< power threshold ((m/s^2)^2)
  std::size_t quiet_run = 8;    ///< m, below-threshold samples ending a slide
  std::size_t min_length = 20;  ///< discard blips shorter than this (samples)
  /// A gentle stroke's acceleration dips under the threshold around its
  /// mid-stroke zero crossing, which would split one slide into two halves
  /// whose zero-velocity-endpoint assumption is false. Segments separated
  /// by less than this gap are merged — genuine dwells between strokes are
  /// far longer.
  std::size_t merge_gap = 30;
};

/// Sliding power level per Eq. 3 (the returned series has the input length;
/// the window is truncated near the end of the record).
[[nodiscard]] std::vector<double> power_level(std::span<const double> accel,
                                              std::size_t window);

/// Segment the record into slides. `accel` is the sliding-axis linear
/// acceleration after MSP.
[[nodiscard]] std::vector<Segment> segment_movements(std::span<const double> accel,
                                                     const SegmentationOptions& options = {});

}  // namespace hyperear::imu
