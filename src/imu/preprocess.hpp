#pragma once

#include <vector>

#include "imu/gravity.hpp"
#include "imu/imu_model.hpp"

/// @file preprocess.hpp
/// Motion Signal Preprocessing (paper Section V-A): gravity cancellation
/// followed by high-frequency noise removal with a length-4 simple moving
/// average (-3 dB near 15 Hz at the 100 Hz IMU rate).

namespace hyperear::imu {

/// Output of the MSP stage: smoothed, gravity-free linear acceleration and
/// smoothed angular rate, ready for segmentation and integration.
struct MotionSignals {
  double sample_rate = 100.0;
  std::vector<double> lin_accel_x, lin_accel_y, lin_accel_z;
  std::vector<double> gyro_x, gyro_y, gyro_z;

  [[nodiscard]] std::size_t size() const { return lin_accel_x.size(); }
  [[nodiscard]] double dt() const { return 1.0 / sample_rate; }
};

/// Parameters of the preprocessing stage.
struct PreprocessOptions {
  std::size_t sma_length = 4;  ///< paper: n = 4
  GravityOptions gravity;
};

/// Run the full MSP chain on raw IMU data.
[[nodiscard]] MotionSignals preprocess(const ImuData& data,
                                       const PreprocessOptions& options = {});

}  // namespace hyperear::imu
