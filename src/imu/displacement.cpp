#include "imu/displacement.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace hyperear::imu {

VelocityEstimate estimate_velocity(std::span<const double> accel, double dt,
                                   bool drift_correction) {
  require(accel.size() >= 2, "estimate_velocity: need at least two samples");
  require(dt > 0.0, "estimate_velocity: dt must be positive");
  VelocityEstimate out;
  out.dt = dt;
  out.raw = cumulative_trapezoid(accel, dt);
  out.corrected = out.raw;
  if (drift_correction) {
    const double t_span = static_cast<double>(accel.size() - 1) * dt;
    out.drift_slope = out.raw.back() / t_span;  // Eq. 4: err_a = v(t2)/(t2-t1)
    for (std::size_t i = 0; i < out.corrected.size(); ++i) {
      out.corrected[i] -= out.drift_slope * static_cast<double>(i) * dt;
    }
  }
  return out;
}

SlideEstimate estimate_slide(const MotionSignals& motion, std::span<const double> axis_accel,
                             const Segment& segment, const DisplacementOptions& options) {
  require(segment.end > segment.start, "estimate_slide: empty segment");
  require(segment.end <= axis_accel.size(), "estimate_slide: segment out of range");
  require(axis_accel.size() == motion.size(), "estimate_slide: series length mismatch");
  SlideEstimate out;
  out.start = segment.start >= options.pad ? segment.start - options.pad : 0;
  out.end = std::min(segment.end + options.pad, axis_accel.size());
  const double dt = motion.dt();
  const std::span<const double> seg = axis_accel.subspan(out.start, out.end - out.start);
  const VelocityEstimate vel = estimate_velocity(seg, dt, options.drift_correction);
  out.displacement = trapezoid(vel.corrected, dt);
  out.duration = static_cast<double>(seg.size() - 1) * dt;
  out.peak_speed = 0.0;
  for (double v : vel.corrected) out.peak_speed = std::max(out.peak_speed, std::abs(v));
  // Integrated z rotation over the slide (quality gate: < 20 degrees).
  double rot = 0.0;
  for (std::size_t i = out.start; i < out.end; ++i) rot += motion.gyro_z[i] * dt;
  out.z_rotation = rot;
  return out;
}

double estimate_stature_change(const MotionSignals& motion, std::size_t from, std::size_t to,
                               const DisplacementOptions& options) {
  require(to > from, "estimate_stature_change: empty interval");
  require(to <= motion.size(), "estimate_stature_change: interval out of range");
  const std::size_t lo = from >= options.pad ? from - options.pad : 0;
  const std::size_t hi = std::min(to + options.pad, motion.size());
  const std::span<const double> seg(motion.lin_accel_z.data() + lo, hi - lo);
  const VelocityEstimate vel = estimate_velocity(seg, motion.dt(), options.drift_correction);
  return trapezoid(vel.corrected, motion.dt());
}

}  // namespace hyperear::imu
