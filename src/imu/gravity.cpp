#include "imu/gravity.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/biquad.hpp"

namespace hyperear::imu {

namespace {

LinearAcceleration remove_static_head(const ImuData& data, const GravityOptions& options) {
  const std::size_t n = data.size();
  const auto head = std::clamp<std::size_t>(
      static_cast<std::size_t>(options.head_duration_s * data.sample_rate), 8, n);
  const double gx = median({data.accel_x.data(), head});
  const double gy = median({data.accel_y.data(), head});
  const double gz = median({data.accel_z.data(), head});
  LinearAcceleration out;
  out.sample_rate = data.sample_rate;
  out.gravity_x.assign(n, gx);
  out.gravity_y.assign(n, gy);
  out.gravity_z.assign(n, gz);
  out.x.resize(n);
  out.y.resize(n);
  out.z.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.x[i] = data.accel_x[i] - gx;
    out.y[i] = data.accel_y[i] - gy;
    out.z[i] = data.accel_z[i] - gz;
  }
  return out;
}

LinearAcceleration remove_lowpass(const ImuData& data, const GravityOptions& options) {
  require(options.cutoff_hz > 0.0 && options.cutoff_hz < data.sample_rate / 2.0,
          "remove_gravity: bad cutoff");
  LinearAcceleration out;
  out.sample_rate = data.sample_rate;
  dsp::ButterworthCascade lp(dsp::ButterworthCascade::Kind::kLowpass, options.order,
                             options.cutoff_hz, data.sample_rate);
  out.gravity_x = lp.filtfilt(data.accel_x);
  out.gravity_y = lp.filtfilt(data.accel_y);
  out.gravity_z = lp.filtfilt(data.accel_z);
  const std::size_t n = data.size();
  out.x.resize(n);
  out.y.resize(n);
  out.z.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.x[i] = data.accel_x[i] - out.gravity_x[i];
    out.y[i] = data.accel_y[i] - out.gravity_y[i];
    out.z[i] = data.accel_z[i] - out.gravity_z[i];
  }
  return out;
}

}  // namespace

LinearAcceleration remove_gravity(const ImuData& data, const GravityOptions& options) {
  require(data.size() >= 8, "remove_gravity: record too short");
  switch (options.mode) {
    case GravityMode::kStaticHead:
      return remove_static_head(data, options);
    case GravityMode::kLowpass:
      return remove_lowpass(data, options);
  }
  throw PreconditionError("remove_gravity: unknown mode");
}

double mean_tilt_angle(const LinearAcceleration& lin) {
  require(!lin.gravity_x.empty(), "mean_tilt_angle: empty gravity estimate");
  double acc = 0.0;
  for (std::size_t i = 0; i < lin.gravity_x.size(); ++i) {
    const double gx = lin.gravity_x[i];
    const double gy = lin.gravity_y[i];
    const double gz = lin.gravity_z[i];
    const double norm = std::sqrt(gx * gx + gy * gy + gz * gz);
    if (norm < 1e-9) continue;
    // Angle between the gravity estimate and the body +z axis.
    acc += std::acos(std::min(std::max(gz / norm, -1.0), 1.0));
  }
  return acc / static_cast<double>(lin.gravity_x.size());
}

}  // namespace hyperear::imu
