#pragma once

#include <span>
#include <vector>

#include "imu/preprocess.hpp"
#include "imu/segmentation.hpp"

/// @file displacement.hpp
/// Phone Displacement Estimation (paper Section V-B).
///
/// Integrating the noisy linear acceleration gives a velocity whose error
/// grows approximately linearly with time (constant bias). Since the true
/// velocity is zero at both ends of a slide, the drift slope can be
/// estimated as err_a = v(t2)/(t2 - t1) (Eq. 4) and removed:
/// v*(t) = v(t) - err_a * (t - t1). The displacement is the integral of the
/// corrected velocity.

namespace hyperear::imu {

/// Velocity series for a slide, before and after drift correction.
struct VelocityEstimate {
  double dt = 0.01;
  std::vector<double> raw;        ///< plain integral of acceleration
  std::vector<double> corrected;  ///< after the Eq. 4 linear correction
  double drift_slope = 0.0;       ///< err_a (m/s per s)
};

/// Full per-slide motion estimate.
struct SlideEstimate {
  double displacement = 0.0;     ///< signed displacement along the axis (m)
  double duration = 0.0;         ///< slide duration (s)
  double peak_speed = 0.0;       ///< max |v*| during the slide (m/s)
  double z_rotation = 0.0;       ///< integrated gyro-z over the slide (rad)
  std::size_t start = 0;         ///< expanded segment bounds actually used
  std::size_t end = 0;
};

/// Options for the displacement estimator.
struct DisplacementOptions {
  /// Samples of padding added on both sides of the detected segment; the
  /// true motion starts slightly before the power threshold trips.
  std::size_t pad = 6;
  /// Whether to apply the Eq. 4 linear drift correction (ablation toggle).
  bool drift_correction = true;
};

/// Integrate acceleration (uniform spacing dt) into velocity and apply the
/// linear zero-velocity-update correction. The span should cover one slide
/// with the phone at rest at both ends.
[[nodiscard]] VelocityEstimate estimate_velocity(std::span<const double> accel, double dt,
                                                 bool drift_correction = true);

/// Estimate one slide's motion along the given axis series (typically the
/// body-y linear acceleration). The segment is expanded by `options.pad` on
/// both sides, clamped to the record.
[[nodiscard]] SlideEstimate estimate_slide(const MotionSignals& motion,
                                           std::span<const double> axis_accel,
                                           const Segment& segment,
                                           const DisplacementOptions& options = {});

/// Estimate the vertical stature change between two time indices (used for
/// the 3D scheme's H, Section VI-B): integrates z-axis linear acceleration
/// over [from, to) with the same drift-removal model.
[[nodiscard]] double estimate_stature_change(const MotionSignals& motion, std::size_t from,
                                             std::size_t to,
                                             const DisplacementOptions& options = {});

}  // namespace hyperear::imu
