#pragma once

#include <vector>

#include "imu/imu_model.hpp"

/// @file gravity.hpp
/// Gravity estimation and removal (paper Section V-A1: "We first use
/// gravimeter to cancel the gravity to get linear acceleration data").
///
/// Android's virtual gravity sensor is gyro-aided and does not leak linear
/// acceleration the way a plain low-pass does. We provide two estimators:
///
///  - kStaticHead (default): per-axis median over the static calibration
///    head of the session — faithful to a fused gravity sensor for the
///    HyperEar protocol, where the phone is held level throughout;
///  - kLowpass: zero-phase Butterworth low-pass, the classic approach; its
///    leakage of slide acceleration into the dwell intervals is exactly why
///    the fused estimate is preferable (kept for comparison/ablation).

namespace hyperear::imu {

/// Body-frame linear acceleration after gravity removal, plus the gravity
/// estimate itself (useful for tilt diagnostics).
struct LinearAcceleration {
  double sample_rate = 100.0;
  std::vector<double> x, y, z;           ///< gravity-free specific force
  std::vector<double> gravity_x, gravity_y, gravity_z;  ///< gravity estimate
};

/// Estimator selection.
enum class GravityMode {
  kStaticHead,
  kLowpass,
};

/// Options for the gravity estimator.
struct GravityOptions {
  GravityMode mode = GravityMode::kStaticHead;
  double head_duration_s = 2.0;  ///< static-head window (kStaticHead)
  double cutoff_hz = 0.3;        ///< low-pass cutoff (kLowpass)
  int order = 2;                 ///< Butterworth order, even (kLowpass)
};

/// Estimate gravity and subtract it. Requires at least 8 samples.
[[nodiscard]] LinearAcceleration remove_gravity(const ImuData& data,
                                                const GravityOptions& options = {});

/// Estimated phone tilt angle (radians) between the gravity estimate and
/// the body z axis, averaged over the record. Zero for a phone held flat.
[[nodiscard]] double mean_tilt_angle(const LinearAcceleration& lin);

}  // namespace hyperear::imu
