#include "imu/segmentation.hpp"

#include "common/error.hpp"

namespace hyperear::imu {

std::vector<double> power_level(std::span<const double> accel, std::size_t window) {
  require(window >= 1, "power_level: window must be >= 1");
  const std::size_t n = accel.size();
  std::vector<double> out(n, 0.0);
  // Prefix sums of squared amplitude for O(n) evaluation.
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + accel[i] * accel[i];
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t hi = std::min(t + window, n);
    out[t] = (prefix[hi] - prefix[t]) / static_cast<double>(hi - t);
  }
  return out;
}

std::vector<Segment> segment_movements(std::span<const double> accel,
                                       const SegmentationOptions& options) {
  require(options.window >= 1 && options.quiet_run >= 1,
          "segment_movements: bad window/quiet_run");
  require(options.threshold > 0.0, "segment_movements: threshold must be positive");
  const std::vector<double> power = power_level(accel, options.window);
  std::vector<Segment> segments;
  bool in_slide = false;
  std::size_t start = 0;
  std::size_t quiet = 0;
  for (std::size_t i = 0; i < power.size(); ++i) {
    if (!in_slide) {
      if (power[i] > options.threshold) {
        in_slide = true;
        start = i;
        quiet = 0;
      }
    } else {
      if (power[i] <= options.threshold) {
        ++quiet;
        if (quiet >= options.quiet_run) {
          const std::size_t end = i + 1 - quiet;
          if (end > start && end - start >= options.min_length) {
            segments.push_back({start, end});
          }
          in_slide = false;
          quiet = 0;
        }
      } else {
        quiet = 0;
      }
    }
  }
  if (in_slide) {
    const std::size_t end = power.size() - quiet;
    if (end > start && end - start >= options.min_length) segments.push_back({start, end});
  }
  // Merge split strokes (see SegmentationOptions::merge_gap). The merge runs
  // on the raw segment list so halves below min_length are handled too.
  if (options.merge_gap == 0 || segments.size() < 2) return segments;
  std::vector<Segment> merged;
  merged.push_back(segments.front());
  for (std::size_t i = 1; i < segments.size(); ++i) {
    if (segments[i].start - merged.back().end <= options.merge_gap) {
      merged.back().end = segments[i].end;
    } else {
      merged.push_back(segments[i]);
    }
  }
  return merged;
}

}  // namespace hyperear::imu
