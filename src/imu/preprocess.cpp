#include "imu/preprocess.hpp"

#include "common/error.hpp"
#include "dsp/sma.hpp"

namespace hyperear::imu {

MotionSignals preprocess(const ImuData& data, const PreprocessOptions& options) {
  require(options.sma_length >= 1, "preprocess: sma_length must be >= 1");
  const LinearAcceleration lin = remove_gravity(data, options.gravity);
  MotionSignals out;
  out.sample_rate = data.sample_rate;
  out.lin_accel_x = dsp::moving_average(lin.x, options.sma_length);
  out.lin_accel_y = dsp::moving_average(lin.y, options.sma_length);
  out.lin_accel_z = dsp::moving_average(lin.z, options.sma_length);
  out.gyro_x = dsp::moving_average(data.gyro_x, options.sma_length);
  out.gyro_y = dsp::moving_average(data.gyro_y, options.sma_length);
  out.gyro_z = dsp::moving_average(data.gyro_z, options.sma_length);
  return out;
}

}  // namespace hyperear::imu
