#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace hyperear::obs {

namespace detail {

std::size_t shard_index() {
  // Round-robin assignment: the first kMetricShards threads each get a
  // private shard; later threads share. Stable for a thread's lifetime.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return index;
}

}  // namespace detail

namespace {

/// Shortest exact-ish rendering: integers print bare (counters are almost
/// always integral), everything else gets round-trip precision.
std::string format_number(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string sanitize_prometheus(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

double merge_shards(const std::array<detail::F64Cell, kMetricShards>& shards) {
  double total = 0.0;
  for (const detail::F64Cell& cell : shards) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace

double Counter::value() const {
  return entry_ == nullptr ? 0.0 : merge_shards(entry_->shards);
}

double Gauge::value() const {
  return entry_ == nullptr ? 0.0 : entry_->value.load(std::memory_order_relaxed);
}

void Histogram::observe(double value) const {
  if (entry_ == nullptr) return;
  const std::vector<double>& bounds = entry_->upper_bounds;
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  const std::size_t row = detail::shard_index() * (bounds.size() + 1);
  entry_->cells[row + bucket].value.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(entry_->sum_shards[detail::shard_index()].value, value);
}

Counter MetricsRegistry::counter(std::string_view name) {
  const he::MutexLock lock(mutex_);
  if (const auto it = counter_index_.find(name); it != counter_index_.end()) {
    return Counter(it->second);
  }
  detail::CounterEntry& entry = counters_.emplace_back(std::string(name));
  counter_index_.emplace(entry.name, &entry);
  return Counter(&entry);
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  const he::MutexLock lock(mutex_);
  if (const auto it = gauge_index_.find(name); it != gauge_index_.end()) {
    return Gauge(it->second);
  }
  detail::GaugeEntry& entry = gauges_.emplace_back(std::string(name));
  gauge_index_.emplace(entry.name, &entry);
  return Gauge(&entry);
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::span<const double> upper_bounds) {
  require(!upper_bounds.empty(), "MetricsRegistry::histogram: no buckets");
  for (std::size_t i = 1; i < upper_bounds.size(); ++i) {
    require(upper_bounds[i - 1] < upper_bounds[i],
            "MetricsRegistry::histogram: bounds must be strictly increasing");
  }
  const he::MutexLock lock(mutex_);
  if (const auto it = histogram_index_.find(name); it != histogram_index_.end()) {
    require(std::equal(upper_bounds.begin(), upper_bounds.end(),
                       it->second->upper_bounds.begin(),
                       it->second->upper_bounds.end()),
            "MetricsRegistry::histogram: '" + std::string(name) +
                "' re-registered with different bounds");
    return Histogram(it->second);
  }
  detail::HistogramEntry& entry = histograms_.emplace_back(
      std::string(name), std::vector<double>(upper_bounds.begin(), upper_bounds.end()));
  histogram_index_.emplace(entry.name, &entry);
  return Histogram(&entry);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const he::MutexLock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const detail::CounterEntry& e : counters_) {
    snap.counters.emplace_back(e.name, merge_shards(e.shards));
  }
  snap.gauges.reserve(gauges_.size());
  for (const detail::GaugeEntry& e : gauges_) {
    snap.gauges.emplace_back(e.name, e.value.load(std::memory_order_relaxed));
  }
  snap.histograms.reserve(histograms_.size());
  for (const detail::HistogramEntry& e : histograms_) {
    HistogramSnapshot h;
    h.name = e.name;
    h.upper_bounds = e.upper_bounds;
    const std::size_t buckets = e.upper_bounds.size() + 1;
    h.counts.assign(buckets, 0);
    for (std::size_t shard = 0; shard < kMetricShards; ++shard) {
      for (std::size_t b = 0; b < buckets; ++b) {
        h.counts[b] +=
            e.cells[shard * buckets + b].value.load(std::memory_order_relaxed);
      }
    }
    for (std::uint64_t c : h.counts) h.count += c;
    h.sum = merge_shards(e.sum_shards);
    snap.histograms.push_back(std::move(h));
  }
  const auto by_first = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_first);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_first);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

std::string MetricsRegistry::to_json() const { return obs::to_json(snapshot()); }

std::string MetricsRegistry::to_prometheus() const {
  return obs::to_prometheus(snapshot());
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + snapshot.counters[i].first +
           "\": " + format_number(snapshot.counters[i].second);
  }
  out += snapshot.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + snapshot.gauges[i].first +
           "\": " + format_number(snapshot.gauges[i].second);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + h.name + "\": {\"le\": [";
    for (std::size_t b = 0; b < h.upper_bounds.size(); ++b) {
      if (b > 0) out += ", ";
      out += format_number(h.upper_bounds[b]);
    }
    out += "], \"counts\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out += ", ";
      out += format_number(static_cast<double>(h.counts[b]));
    }
    out += "], \"count\": " + format_number(static_cast<double>(h.count)) +
           ", \"sum\": " + format_number(h.sum) + "}";
  }
  out += snapshot.histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string p = sanitize_prometheus(name);
    out += "# TYPE " + p + " counter\n" + p + " " + format_number(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string p = sanitize_prometheus(name);
    out += "# TYPE " + p + " gauge\n" + p + " " + format_number(value) + "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string p = sanitize_prometheus(h.name);
    out += "# TYPE " + p + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.upper_bounds.size(); ++b) {
      cumulative += h.counts[b];
      out += p + "_bucket{le=\"" + format_number(h.upper_bounds[b]) + "\"} " +
             format_number(static_cast<double>(cumulative)) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " +
           format_number(static_cast<double>(h.count)) + "\n";
    out += p + "_sum " + format_number(h.sum) + "\n";
    out += p + "_count " + format_number(static_cast<double>(h.count)) + "\n";
  }
  return out;
}

}  // namespace hyperear::obs
