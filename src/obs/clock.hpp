#pragma once

#include <chrono>

/// @file clock.hpp
/// The observability layer's monotonic clock, and the ONLY sanctioned time
/// source below src/runtime. The determinism linter
/// (tools/lint/hyperear_lint.py) bans direct std::chrono clock reads in
/// src/core and src/dsp: pipeline results must be a pure function of the
/// session data, so wall-clock access is confined to telemetry — stage
/// timers route through these helpers, which keeps every clock read
/// greppable and auditable from one file.

namespace hyperear::obs {

/// Opaque monotonic timestamp for latency measurement.
using MonotonicTime = std::chrono::steady_clock::time_point;

[[nodiscard]] inline MonotonicTime monotonic_now() noexcept {
  return std::chrono::steady_clock::now();
}

/// Milliseconds elapsed since `start`, as the double the StageMetrics /
/// histogram plumbing records.
[[nodiscard]] inline double ms_since(MonotonicTime start) noexcept {
  return std::chrono::duration<double, std::milli>(monotonic_now() - start).count();
}

}  // namespace hyperear::obs
