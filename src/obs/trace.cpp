#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace hyperear::obs {

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<SpanRecord> out;
  {
    const he::MutexLock lock(mutex_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) { return a.id < b.id; });
  return out;
}

std::string Tracer::to_json() const {
  const std::vector<SpanRecord> spans = snapshot();
  std::string out = "[";
  char buf[256];
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"id\": %llu, \"parent\": %llu, \"session\": %llu, "
                  "\"name\": \"%s\", \"start_ms\": %.3f, \"duration_ms\": %.3f}",
                  i == 0 ? "" : ",", static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.parent),
                  static_cast<unsigned long long>(s.session), s.name.c_str(),
                  s.start_ms, s.duration_ms);
    out += buf;
  }
  out += spans.empty() ? "]\n" : "\n]\n";
  return out;
}

void Tracer::record(SpanRecord&& rec) {
  const he::MutexLock lock(mutex_);
  spans_.push_back(std::move(rec));
}

TraceSpan::TraceSpan(Tracer* tracer, std::string_view name, std::uint64_t session,
                     const TraceSpan* parent)
    : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  rec_.id = tracer_->begin();
  rec_.parent = parent != nullptr ? parent->id() : 0;
  rec_.session = session;
  rec_.name = name;
  start_ = std::chrono::steady_clock::now();
  rec_.start_ms = tracer_->ms_since_epoch(start_);
}

TraceSpan::TraceSpan(TraceSpan&& other) noexcept
    : tracer_(other.tracer_), rec_(std::move(other.rec_)), start_(other.start_) {
  other.tracer_ = nullptr;
}

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  if (this != &other) {
    finish();
    tracer_ = other.tracer_;
    rec_ = std::move(other.rec_);
    start_ = other.start_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void TraceSpan::finish() {
  if (tracer_ == nullptr) return;
  rec_.duration_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
  tracer_->record(std::move(rec_));
  tracer_ = nullptr;
}

}  // namespace hyperear::obs
