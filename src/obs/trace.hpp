#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.hpp"

/// @file trace.hpp
/// The tracing half of the observability layer: per-stage spans of the
/// localization pipeline (ASP -> SDF/MSP -> TTL/PLE) with parent/child
/// structure and per-session ids, so an operator can see WHERE a slow
/// session spent its time, not just that it was slow. A `Tracer` collects
/// finished `TraceSpan`s; `to_json()` dumps them for offline analysis
/// (each record carries span id, parent id, session id, name, start and
/// duration in ms since the tracer's epoch — trivially convertible to
/// Chrome trace-event or OTLP shapes downstream).
///
/// Spans are stage-grained (milliseconds of work each), so the collection
/// path is a plain mutex push — contention is negligible at that
/// granularity, unlike the per-event counters in metrics.hpp, which shard.
///
/// Null-sink contract: a `TraceSpan` built with a null tracer is inert —
/// no clock reads, no allocation, nothing recorded — so instrumented code
/// paths cost one branch when tracing is off.

namespace hyperear::obs {

class MetricsRegistry;

/// One finished span.
struct SpanRecord {
  std::uint64_t id = 0;       ///< unique within the tracer, 1-based
  std::uint64_t parent = 0;   ///< 0 = root
  std::uint64_t session = 0;  ///< caller-chosen grouping id
  std::string name;
  double start_ms = 0.0;     ///< offset from the tracer's construction
  double duration_ms = 0.0;
};

/// Collects spans from any number of threads. Ids are allocated atomically
/// at span start, so a child started inside a live parent can reference it.
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Finished spans, ordered by span id (== start order).
  [[nodiscard]] std::vector<SpanRecord> snapshot() const HE_EXCLUDES(mutex_);

  /// JSON array of span objects, id-ordered.
  [[nodiscard]] std::string to_json() const;

 private:
  friend class TraceSpan;
  [[nodiscard]] std::uint64_t begin() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  void record(SpanRecord&& rec) HE_EXCLUDES(mutex_);
  [[nodiscard]] double ms_since_epoch(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration<double, std::milli>(t - epoch_).count();
  }

  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> next_id_{1};
  /// Leaf of the lock hierarchy, like the metrics registry lock: spans
  /// finish on worker threads inside engine callbacks, so nothing may be
  /// acquired under this mutex.
  mutable he::Mutex mutex_ HE_LOCK_LEVEL(registry);
  std::vector<SpanRecord> spans_ HE_GUARDED_BY(mutex_);
};

/// RAII span: records itself on destruction (or explicit `finish()`).
/// Move-only; moving transfers the pending record.
class TraceSpan {
 public:
  /// Inert span (null tracer is allowed and makes every operation a no-op).
  TraceSpan() = default;
  TraceSpan(Tracer* tracer, std::string_view name, std::uint64_t session,
            const TraceSpan* parent = nullptr);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  TraceSpan(TraceSpan&& other) noexcept;
  TraceSpan& operator=(TraceSpan&& other) noexcept;
  ~TraceSpan() { finish(); }

  /// Record the span now (idempotent; the destructor is a no-op after).
  void finish();

  [[nodiscard]] std::uint64_t id() const { return rec_.id; }
  [[nodiscard]] explicit operator bool() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;
  SpanRecord rec_;
  std::chrono::steady_clock::time_point start_{};
};

/// Everything a pipeline stage needs to report telemetry, bundled so the
/// deep call chain (`try_localize` -> ASP -> matched filter) threads ONE
/// optional pointer. Null members are legal independently; a null
/// ObsContext pointer means "no observability at all" (the default).
struct ObsContext {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  std::uint64_t session_id = 0;
};

}  // namespace hyperear::obs
