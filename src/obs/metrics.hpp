#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.hpp"

/// @file metrics.hpp
/// The metrics half of the observability layer (DESIGN.md Section 10): a
/// `MetricsRegistry` of named counters, gauges, and fixed-bucket
/// histograms that production components (the batch engine, the thread
/// pool, the pipeline stages) update from many threads at once and an
/// operator scrapes via `to_json()` / `to_prometheus()`.
///
/// Write-path design: counters and histograms are sharded per thread —
/// each writing thread owns one of `kMetricShards` cache-line-aligned
/// cells, picked once per thread round-robin, so the hot path is a relaxed
/// atomic add with no lock and (below `kMetricShards` threads) no cache
/// line ping-pong. `snapshot()` merges shards in fixed shard order, so for
/// integral increments the merged totals are exact and deterministic no
/// matter how the writers interleaved. The registry mutex is only taken
/// when a handle is created (name registration) and on snapshot, never per
/// update.
///
/// Null-sink contract: a default-constructed handle (`Counter{}`,
/// `Gauge{}`, `Histogram{}`) is valid and every operation on it is a
/// no-op. Components hold handles unconditionally and skip nothing at the
/// call site; when no registry is installed the handles are null and the
/// cost is one branch. Instrumented results must be byte-identical to
/// uninstrumented ones — metrics observe, never steer.

namespace hyperear::obs {

/// Number of write shards per counter/histogram. More simultaneous writer
/// threads than this still work (shards are shared round-robin); they just
/// start paying cache-line contention.
inline constexpr std::size_t kMetricShards = 16;

namespace detail {

/// Stable per-thread shard index in [0, kMetricShards).
[[nodiscard]] std::size_t shard_index();

/// CAS-loop add for pre-C++20-hardware portability of atomic double sums.
inline void atomic_add(std::atomic<double>& cell, double delta) {
  double cur = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

struct alignas(64) F64Cell {
  std::atomic<double> value{0.0};
};
struct alignas(64) U64Cell {
  std::atomic<std::uint64_t> value{0};
};

struct CounterEntry {
  explicit CounterEntry(std::string n) : name(std::move(n)) {}
  std::string name;
  std::array<F64Cell, kMetricShards> shards;
};

struct GaugeEntry {
  explicit GaugeEntry(std::string n) : name(std::move(n)) {}
  std::string name;
  std::atomic<double> value{0.0};  // set() is last-write-wins; not sharded
};

struct HistogramEntry {
  HistogramEntry(std::string n, std::vector<double> bounds)
      : name(std::move(n)),
        upper_bounds(std::move(bounds)),
        cells(kMetricShards * (upper_bounds.size() + 1)) {}
  std::string name;
  std::vector<double> upper_bounds;       ///< strictly increasing; +Inf implied
  std::vector<U64Cell> cells;             ///< [shard][bucket], row-major
  std::array<F64Cell, kMetricShards> sum_shards;
};

}  // namespace detail

/// Monotonically increasing value (Prometheus "counter"). Handle is a raw
/// pointer into its registry: copy freely, but never outlive the registry.
class Counter {
 public:
  Counter() = default;
  void inc(double delta = 1.0) const {
    if (entry_ == nullptr) return;
    detail::atomic_add(entry_->shards[detail::shard_index()].value, delta);
  }
  /// Merged value across shards (fixed shard order — deterministic).
  [[nodiscard]] double value() const;
  [[nodiscard]] explicit operator bool() const { return entry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterEntry* entry) : entry_(entry) {}
  detail::CounterEntry* entry_ = nullptr;
};

/// Point-in-time value (Prometheus "gauge"): `set` is last-write-wins,
/// `add` is atomic (so +1/-1 pairs track a level, e.g. queue depth).
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const {
    if (entry_ != nullptr) entry_->value.store(value, std::memory_order_relaxed);
  }
  void add(double delta) const {
    if (entry_ != nullptr) detail::atomic_add(entry_->value, delta);
  }
  [[nodiscard]] double value() const;
  [[nodiscard]] explicit operator bool() const { return entry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeEntry* entry) : entry_(entry) {}
  detail::GaugeEntry* entry_ = nullptr;
};

/// Fixed-bucket histogram. A sample lands in the first bucket whose upper
/// bound is >= the value (Prometheus `le` semantics); samples above the
/// last bound land in the implicit +Inf bucket.
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const;
  [[nodiscard]] explicit operator bool() const { return entry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramEntry* entry) : entry_(entry) {}
  detail::HistogramEntry* entry_ = nullptr;
};

/// One histogram, merged. `counts` has one entry per upper bound plus the
/// trailing +Inf bucket; they are per-bucket (not cumulative).
struct HistogramSnapshot {
  std::string name;
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;  ///< total observations
  double sum = 0.0;         ///< sum of observed values
};

/// Point-in-time merged view of a registry, name-sorted, ready to export.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// The registry proper. Thread-safe throughout; handle creation and
/// snapshots lock, updates through handles never do. Metrics are never
/// removed, so handles stay valid for the registry's lifetime and entry
/// storage (std::deque) never relocates.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create; the same name always yields a handle to the same
  /// metric, so independent components can share a series by agreeing on
  /// its name.
  [[nodiscard]] Counter counter(std::string_view name) HE_EXCLUDES(mutex_);
  [[nodiscard]] Gauge gauge(std::string_view name) HE_EXCLUDES(mutex_);
  /// `upper_bounds` must be non-empty and strictly increasing; throws
  /// PreconditionError otherwise, or when `name` exists with different
  /// bounds.
  [[nodiscard]] Histogram histogram(std::string_view name,
                                    std::span<const double> upper_bounds)
      HE_EXCLUDES(mutex_);

  [[nodiscard]] MetricsSnapshot snapshot() const HE_EXCLUDES(mutex_);

  /// Deterministic JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} with name-sorted keys.
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition format (metric names sanitized to
  /// [a-zA-Z0-9_:], cumulative `le` buckets, `_sum`/`_count` series).
  [[nodiscard]] std::string to_prometheus() const;

 private:
  /// Leaf of the lock hierarchy: handle creation and snapshots happen
  /// under arbitrary caller locks (engines register series while the
  /// server lock is held), so nothing may be acquired under this one.
  /// Handle UPDATES are sharded relaxed atomics on the entries — the
  /// entry deques are guarded (they append under the lock) but handles
  /// reach entries through stable pointers, never through the deque.
  mutable he::Mutex mutex_ HE_LOCK_LEVEL(registry);
  std::deque<detail::CounterEntry> counters_ HE_GUARDED_BY(mutex_);
  std::deque<detail::GaugeEntry> gauges_ HE_GUARDED_BY(mutex_);
  std::deque<detail::HistogramEntry> histograms_ HE_GUARDED_BY(mutex_);
  std::map<std::string, detail::CounterEntry*, std::less<>> counter_index_
      HE_GUARDED_BY(mutex_);
  std::map<std::string, detail::GaugeEntry*, std::less<>> gauge_index_
      HE_GUARDED_BY(mutex_);
  std::map<std::string, detail::HistogramEntry*, std::less<>> histogram_index_
      HE_GUARDED_BY(mutex_);
};

/// Render a snapshot without a live registry (exporter golden tests build
/// snapshots by hand).
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

}  // namespace hyperear::obs
