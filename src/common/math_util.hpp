#pragma once

#include <cstddef>
#include <span>
#include <vector>

/// @file math_util.hpp
/// Small numeric helpers shared by all modules.

namespace hyperear {

/// Wrap an angle to [0, 2*pi).
[[nodiscard]] double wrap_angle_2pi(double rad);

/// Wrap an angle to (-pi, pi].
[[nodiscard]] double wrap_angle_pi(double rad);

/// Clamp x into [lo, hi]. Requires lo <= hi.
[[nodiscard]] double clamp(double x, double lo, double hi);

/// Linear interpolation between a and b at parameter t in [0, 1].
[[nodiscard]] double lerp(double a, double b, double t);

/// True when |a - b| <= atol + rtol * max(|a|, |b|).
[[nodiscard]] bool approx_equal(double a, double b, double atol = 1e-9, double rtol = 1e-9);

/// Next power of two >= n (n = 0 maps to 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n);

/// True if n is a power of two (n > 0).
[[nodiscard]] bool is_pow2(std::size_t n);

/// Trapezoidal cumulative integral of y sampled at uniform spacing dt.
/// Result has the same length as y with result[0] == 0.
[[nodiscard]] std::vector<double> cumulative_trapezoid(std::span<const double> y, double dt);

/// Trapezoidal definite integral of y over uniform spacing dt.
[[nodiscard]] double trapezoid(std::span<const double> y, double dt);

/// Evaluate y at a fractional index by linear interpolation.
/// Requires 0 <= idx <= y.size() - 1.
[[nodiscard]] double sample_linear(std::span<const double> y, double idx);

/// Ordinary least-squares line fit y = a + b*x. Requires x.size() == y.size() >= 2
/// and at least two distinct x values.
struct LineFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Root-mean-square residual of the fit.
  double rms_residual = 0.0;
};
[[nodiscard]] LineFit fit_line(std::span<const double> x, std::span<const double> y);

/// Robust line fit: iteratively re-fit discarding points whose residual
/// exceeds `k` times the residual MAD, for `iters` rounds. Falls back to the
/// plain fit when too few inliers remain.
[[nodiscard]] LineFit fit_line_robust(std::span<const double> x, std::span<const double> y,
                                      double k = 3.0, int iters = 3);

}  // namespace hyperear
