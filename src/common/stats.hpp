#pragma once

#include <span>
#include <vector>

/// @file stats.hpp
/// Descriptive statistics used by the evaluation harnesses and by robust
/// estimation inside the pipeline.

namespace hyperear {

/// Arithmetic mean. Requires non-empty input.
[[nodiscard]] double mean(std::span<const double> v);

/// Unbiased sample variance (n-1 denominator). Requires size >= 2.
[[nodiscard]] double variance(std::span<const double> v);

/// Unbiased sample standard deviation. Requires size >= 2.
[[nodiscard]] double stddev(std::span<const double> v);

/// Root mean square of the samples. Requires non-empty input.
[[nodiscard]] double rms(std::span<const double> v);

/// Median (average of middle two for even sizes). Requires non-empty input.
[[nodiscard]] double median(std::span<const double> v);

/// Median absolute deviation from the median (raw, not scaled to sigma).
[[nodiscard]] double median_absolute_deviation(std::span<const double> v);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
[[nodiscard]] double percentile(std::span<const double> v, double p);

/// Minimum. Requires non-empty input.
[[nodiscard]] double min_value(std::span<const double> v);

/// Maximum. Requires non-empty input.
[[nodiscard]] double max_value(std::span<const double> v);

/// Index of the maximum element. Requires non-empty input.
[[nodiscard]] std::size_t argmax(std::span<const double> v);

/// Index of the maximum absolute value. Requires non-empty input.
[[nodiscard]] std::size_t argmax_abs(std::span<const double> v);

/// Summary bundle used by the experiment harnesses.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  double p90 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Compute the full Summary for a sample. Requires non-empty input.
[[nodiscard]] Summary summarize(std::span<const double> v);

}  // namespace hyperear
