#pragma once

#include <cstdint>
#include <vector>

/// @file rng.hpp
/// Deterministic random number generation.
///
/// Every stochastic component in HyperEar (noise synthesis, hand jitter,
/// sensor noise, Monte-Carlo benches) draws from an explicitly seeded Rng so
/// that tests and experiment harnesses are reproducible run to run.

namespace hyperear {

/// Small, fast, seedable PRNG (xoshiro256**). Not cryptographic.
///
/// The generator is a value type: copying it forks the stream. Use split()
/// to derive independent streams for sub-components.
class Rng {
 public:
  /// Seed the generator. Any 64-bit value is acceptable, including 0.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate (Box–Muller with caching).
  [[nodiscard]] double gaussian();

  /// Normal deviate with given mean and standard deviation.
  [[nodiscard]] double gaussian(double mean, double stddev);

  /// Fill a vector with iid standard normal deviates.
  [[nodiscard]] std::vector<double> gaussian_vector(std::size_t n);

  /// Derive an independent generator (splitmix over the current state).
  [[nodiscard]] Rng split();

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace hyperear
