#pragma once

/// @file units.hpp
/// Physical constants and unit conventions used across HyperEar.
///
/// All quantities are SI unless a suffix says otherwise: seconds, meters,
/// m/s, m/s^2, radians. Sample rates are in Hz. Parts-per-million clock
/// offsets are dimensionless fractions (20 ppm == 20e-6).

namespace hyperear {

/// Speed of sound in air used throughout the paper (Section II-C).
inline constexpr double kSpeedOfSound = 343.0;

/// Audio sampling rate the Android OS exposes on the evaluated phones.
inline constexpr double kAudioSampleRate = 44100.0;

/// Inertial (accelerometer + gyroscope) sampling rate (Section V-A).
inline constexpr double kImuSampleRate = 100.0;

/// Standard gravity, used by the IMU model and gravity removal.
inline constexpr double kGravity = 9.80665;

/// Mic separation of the Samsung Galaxy S4 (Section VII-A).
inline constexpr double kGalaxyS4MicSeparation = 0.1366;

/// Mic separation of the Samsung Galaxy Note3 (Section VII-A).
inline constexpr double kGalaxyNote3MicSeparation = 0.1512;

inline constexpr double kPi = 3.14159265358979323846;

/// Convert degrees to radians.
[[nodiscard]] constexpr double deg2rad(double deg) noexcept { return deg * kPi / 180.0; }

/// Convert radians to degrees.
[[nodiscard]] constexpr double rad2deg(double rad) noexcept { return rad * 180.0 / kPi; }

/// Convert a decibel ratio to a linear power ratio.
[[nodiscard]] constexpr double db_to_power(double db) noexcept;

/// Convert a linear power ratio to decibels. Input must be positive.
[[nodiscard]] double power_to_db(double ratio);

}  // namespace hyperear

#include <cmath>

namespace hyperear {

constexpr double db_to_power(double db) noexcept {
  // constexpr-friendly 10^(db/10) via exp; std::pow is not constexpr pre-C++26,
  // so fall back to a non-constexpr path at runtime only.
  return __builtin_pow(10.0, db / 10.0);
}

inline double power_to_db(double ratio) { return 10.0 * std::log10(ratio); }

}  // namespace hyperear
