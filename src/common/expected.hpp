#pragma once

#include <utility>
#include <variant>

#include "common/error.hpp"

/// @file expected.hpp
/// A minimal `Expected<T, E>` — a value or an error, never both — used to
/// carry pipeline failures as values across thread boundaries where an
/// exception must not escape (std::expected arrives in C++23; this is the
/// subset the codebase needs). Construct success implicitly from a `T` and
/// failure via `Unexpected<E>` / `make_unexpected`:
///
///   Expected<double, std::string> parse(...) {
///     if (bad) return make_unexpected<std::string>("bad input");
///     return 1.0;
///   }

namespace hyperear {

/// Wrapper that disambiguates the error alternative of `Expected`.
template <typename E>
struct Unexpected {
  E error;
};

template <typename E>
[[nodiscard]] Unexpected<std::decay_t<E>> make_unexpected(E&& error) {
  return {std::forward<E>(error)};
}

template <typename T, typename E>
class Expected {
 public:
  using value_type = T;
  using error_type = E;

  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> error)
      : state_(std::in_place_index<1>, std::move(error.error)) {}

  [[nodiscard]] bool has_value() const { return state_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  /// Access the value; violating the precondition throws PreconditionError.
  [[nodiscard]] T& value() & {
    require(has_value(), "Expected::value: holds an error");
    return std::get<0>(state_);
  }
  [[nodiscard]] const T& value() const& {
    require(has_value(), "Expected::value: holds an error");
    return std::get<0>(state_);
  }
  [[nodiscard]] T&& value() && {
    require(has_value(), "Expected::value: holds an error");
    return std::get<0>(std::move(state_));
  }

  /// Access the error; violating the precondition throws PreconditionError.
  [[nodiscard]] E& error() & {
    require(!has_value(), "Expected::error: holds a value");
    return std::get<1>(state_);
  }
  [[nodiscard]] const E& error() const& {
    require(!has_value(), "Expected::error: holds a value");
    return std::get<1>(state_);
  }
  [[nodiscard]] E&& error() && {
    require(!has_value(), "Expected::error: holds a value");
    return std::get<1>(std::move(state_));
  }

  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? std::get<0>(state_) : std::move(fallback);
  }

  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T&& operator*() && { return std::move(*this).value(); }

 private:
  std::variant<T, E> state_;
};

}  // namespace hyperear
