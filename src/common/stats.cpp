#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hyperear {

double mean(std::span<const double> v) {
  require(!v.empty(), "mean: empty input");
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(std::span<const double> v) {
  require(v.size() >= 2, "variance: need at least two samples");
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size() - 1);
}

double stddev(std::span<const double> v) { return std::sqrt(variance(v)); }

double rms(std::span<const double> v) {
  require(!v.empty(), "rms: empty input");
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s / static_cast<double>(v.size()));
}

double median(std::span<const double> v) {
  require(!v.empty(), "median: empty input");
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n % 2 == 1) return sorted[n / 2];
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

double median_absolute_deviation(std::span<const double> v) {
  const double m = median(v);
  std::vector<double> dev(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) dev[i] = std::abs(v[i] - m);
  return median(dev);
}

double percentile(std::span<const double> v, double p) {
  require(!v.empty(), "percentile: empty input");
  require(p >= 0.0 && p <= 100.0, "percentile: p out of [0,100]");
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto i0 = static_cast<std::size_t>(pos);
  if (i0 + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(i0);
  return sorted[i0] + frac * (sorted[i0 + 1] - sorted[i0]);
}

double min_value(std::span<const double> v) {
  require(!v.empty(), "min_value: empty input");
  return *std::min_element(v.begin(), v.end());
}

double max_value(std::span<const double> v) {
  require(!v.empty(), "max_value: empty input");
  return *std::max_element(v.begin(), v.end());
}

std::size_t argmax(std::span<const double> v) {
  require(!v.empty(), "argmax: empty input");
  return static_cast<std::size_t>(std::max_element(v.begin(), v.end()) - v.begin());
}

std::size_t argmax_abs(std::span<const double> v) {
  require(!v.empty(), "argmax_abs: empty input");
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (std::abs(v[i]) > std::abs(v[best])) best = i;
  }
  return best;
}

Summary summarize(std::span<const double> v) {
  require(!v.empty(), "summarize: empty input");
  Summary s;
  s.count = v.size();
  s.mean = mean(v);
  s.median = median(v);
  s.stddev = v.size() >= 2 ? stddev(v) : 0.0;
  s.p90 = percentile(v, 90.0);
  s.min = min_value(v);
  s.max = max_value(v);
  return s;
}

}  // namespace hyperear
