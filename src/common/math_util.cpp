#include "common/math_util.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace hyperear {

double wrap_angle_2pi(double rad) {
  double r = std::fmod(rad, 2.0 * kPi);
  if (r < 0.0) r += 2.0 * kPi;
  return r;
}

double wrap_angle_pi(double rad) {
  double r = wrap_angle_2pi(rad);
  if (r > kPi) r -= 2.0 * kPi;
  return r;
}

double clamp(double x, double lo, double hi) {
  require(lo <= hi, "clamp: lo must be <= hi");
  return std::min(std::max(x, lo), hi);
}

double lerp(double a, double b, double t) { return a + (b - a) * t; }

bool approx_equal(double a, double b, double atol, double rtol) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

std::vector<double> cumulative_trapezoid(std::span<const double> y, double dt) {
  require(dt > 0.0, "cumulative_trapezoid: dt must be positive");
  std::vector<double> out(y.size(), 0.0);
  for (std::size_t i = 1; i < y.size(); ++i) {
    out[i] = out[i - 1] + 0.5 * (y[i] + y[i - 1]) * dt;
  }
  return out;
}

double trapezoid(std::span<const double> y, double dt) {
  require(dt > 0.0, "trapezoid: dt must be positive");
  double sum = 0.0;
  for (std::size_t i = 1; i < y.size(); ++i) sum += 0.5 * (y[i] + y[i - 1]) * dt;
  return sum;
}

double sample_linear(std::span<const double> y, double idx) {
  require(!y.empty(), "sample_linear: empty input");
  require(idx >= 0.0 && idx <= static_cast<double>(y.size() - 1),
          "sample_linear: index out of range");
  const auto i0 = static_cast<std::size_t>(idx);
  if (i0 + 1 >= y.size()) return y.back();
  const double frac = idx - static_cast<double>(i0);
  return lerp(y[i0], y[i0 + 1], frac);
}

LineFit fit_line(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "fit_line: size mismatch");
  require(x.size() >= 2, "fit_line: need at least two points");
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  require(std::abs(denom) > 1e-30, "fit_line: degenerate x values");
  LineFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (fit.intercept + fit.slope * x[i]);
    ss += r * r;
  }
  fit.rms_residual = std::sqrt(ss / n);
  return fit;
}

LineFit fit_line_robust(std::span<const double> x, std::span<const double> y, double k,
                        int iters) {
  require(x.size() == y.size(), "fit_line_robust: size mismatch");
  LineFit fit = fit_line(x, y);
  std::vector<double> xi(x.begin(), x.end());
  std::vector<double> yi(y.begin(), y.end());
  for (int round = 0; round < iters; ++round) {
    std::vector<double> resid(xi.size());
    for (std::size_t i = 0; i < xi.size(); ++i) {
      resid[i] = std::abs(yi[i] - (fit.intercept + fit.slope * xi[i]));
    }
    const double scale = median_absolute_deviation(resid) * 1.4826;
    if (scale <= 1e-15) break;  // already an (almost) exact fit
    std::vector<double> xk, yk;
    xk.reserve(xi.size());
    yk.reserve(yi.size());
    for (std::size_t i = 0; i < xi.size(); ++i) {
      if (resid[i] <= k * scale) {
        xk.push_back(xi[i]);
        yk.push_back(yi[i]);
      }
    }
    if (xk.size() < 2 || xk.size() == xi.size()) break;
    xi = std::move(xk);
    yi = std::move(yk);
    fit = fit_line(xi, yi);
  }
  return fit;
}

}  // namespace hyperear
