#pragma once

#include <span>
#include <string>
#include <vector>

/// @file cdf.hpp
/// Empirical cumulative distribution functions.
///
/// The paper reports every localization experiment as a CDF of errors
/// (Figs. 14-19). EmpiricalCdf stores a sample, evaluates F(x), and renders
/// the fixed-grid rows the bench harnesses print so paper curves and
/// reproduced curves can be compared point by point.

namespace hyperear {

/// Immutable empirical CDF over a sample of real values.
class EmpiricalCdf {
 public:
  /// Build from a (not necessarily sorted) non-empty sample.
  explicit EmpiricalCdf(std::span<const double> sample);

  /// Fraction of the sample <= x, in [0, 1].
  [[nodiscard]] double at(double x) const;

  /// Smallest sample value v with F(v) >= q, q in (0, 1].
  [[nodiscard]] double quantile(double q) const;

  /// Sorted sample values.
  [[nodiscard]] const std::vector<double>& values() const { return sorted_; }

  /// Evaluate the CDF on an evenly spaced grid of `points` x-values spanning
  /// [0, x_max]. Returns pairs flattened as parallel vectors.
  struct Grid {
    std::vector<double> x;
    std::vector<double> f;
  };
  [[nodiscard]] Grid grid(double x_max, std::size_t points) const;

  /// Render a table "x f(x)" with one row per grid point, suitable for
  /// diffing against the paper's plotted curves.
  [[nodiscard]] std::string to_table(double x_max, std::size_t points,
                                     const std::string& label) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace hyperear
