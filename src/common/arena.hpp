#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "common/contracts.hpp"

/// @file arena.hpp
/// Monotonic bump arena for per-session scratch (DESIGN.md §8).
///
/// The batch engine's steady state runs thousands of sessions through one
/// worker; every short-lived temporary those sessions heap-allocate is
/// allocator traffic repeated per session. `MonotonicArena` turns that
/// pattern into pointer bumps: allocation advances a cursor through a chain
/// of geometrically-growing blocks, deallocation is a no-op, and `reset()`
/// rewinds the cursor while KEEPING the blocks — so after the first session
/// warmed the arena up, subsequent sessions of similar size allocate zero
/// bytes from the global heap.
///
/// Ownership and threading: an arena is single-owner mutable state, exactly
/// like `dsp::Workspace` — own one per call stack (core::SessionWorkspace
/// embeds one per worker) and never share it across threads. `reset()`
/// invalidates everything previously allocated from the arena; callers must
/// not let arena-backed containers outlive the reset (the canonical
/// pipeline resets at session entry, so arena lifetime == session
/// lifetime).
///
/// `ArenaAllocator<T>` adapts the arena to the std allocator interface so
/// ordinary containers can ride it: `ArenaVector<T>` is the vector spelling.
/// Container moves/copies across arenas behave like any stateful allocator
/// (the allocator propagates on copy/move construction).

namespace hyperear {

class MonotonicArena {
 public:
  /// `first_block_bytes` sizes the initial block (subsequent blocks double,
  /// capped at kMaxBlockBytes); the first allocation triggers it lazily so
  /// an unused arena costs one pointer-sized struct.
  explicit MonotonicArena(std::size_t first_block_bytes = 4096)
      : next_block_bytes_(first_block_bytes == 0 ? 4096 : first_block_bytes) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Bump-allocate `bytes` aligned to `align` (power of two). Oversized
  /// requests get a dedicated block; normal ones bump the cursor of the
  /// current block, opening a fresh (doubled) block when it runs out.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    HE_EXPECTS(align != 0 && (align & (align - 1)) == 0);
    if (bytes == 0) bytes = 1;
    if (block_ < blocks_.size()) {
      if (void* p = bump(blocks_[block_], bytes, align)) return p;
      // Fallthrough: scan forward through retained blocks (after a reset
      // the chain still exists; later blocks are bigger).
      while (block_ + 1 < blocks_.size()) {
        ++block_;
        blocks_[block_].used = 0;
        if (void* p = bump(blocks_[block_], bytes, align)) return p;
      }
    }
    return allocate_new_block(bytes, align);
  }

  /// Rewind every block cursor, keeping the memory. Everything previously
  /// allocated from this arena is invalid after this call.
  void reset() {
    for (Block& b : blocks_) b.used = 0;
    block_ = 0;
  }

  /// Total bytes of backing capacity currently owned (diagnostics; the
  /// steady-state test asserts this stops growing after warm-up).
  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  /// Bytes handed out since the last reset (cursor sum; diagnostics).
  [[nodiscard]] std::size_t used_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.used;
    return total;
  }

 private:
  /// Blocks never grow beyond this; larger single requests get a dedicated
  /// block of exactly the requested size.
  static constexpr std::size_t kMaxBlockBytes = std::size_t{1} << 22;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static void* bump(Block& b, std::size_t bytes, std::size_t align) {
    const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::uintptr_t cursor = base + b.used;
    const std::uintptr_t aligned = (cursor + align - 1) & ~(align - 1);
    const std::size_t needed = (aligned - base) + bytes;
    if (needed > b.size) return nullptr;
    b.used = needed;
    return reinterpret_cast<void*>(aligned);
  }

  void* allocate_new_block(std::size_t bytes, std::size_t align) {
    // A fresh block is aligned to max_align by operator new[]; requests
    // with stricter alignment pad the front via bump() below.
    std::size_t want = next_block_bytes_;
    while (want < bytes + align) want *= 2;
    Block b;
    b.size = want;
    b.data = std::make_unique<std::byte[]>(want);
    blocks_.push_back(std::move(b));
    block_ = blocks_.size() - 1;
    if (next_block_bytes_ < kMaxBlockBytes) next_block_bytes_ *= 2;
    void* p = bump(blocks_.back(), bytes, align);
    HE_ENSURES(p != nullptr);
    return p;
  }

  std::vector<Block> blocks_;
  std::size_t block_ = 0;            ///< index of the block being bumped
  std::size_t next_block_bytes_;     ///< size of the next block to open
};

/// std-allocator adapter over a MonotonicArena. Deallocate is a no-op (the
/// arena reclaims at reset); container destruction is therefore free, and
/// element destructors still run normally.
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(MonotonicArena& arena) : arena_(&arena) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}  // NOLINT(google-explicit-constructor) -- allocator rebind requires converting construction

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > static_cast<std::size_t>(-1) / sizeof(T)) throw std::bad_alloc{};
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}

  [[nodiscard]] MonotonicArena* arena() const { return arena_; }

  template <class U>
  [[nodiscard]] friend bool operator==(const ArenaAllocator& a,
                                       const ArenaAllocator<U>& b) {
    return a.arena_ == b.arena();
  }

 private:
  MonotonicArena* arena_;
};

/// Vector whose storage lives in a MonotonicArena:
/// `ArenaVector<double> v(ArenaAllocator<double>{arena});`
template <class T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace hyperear
