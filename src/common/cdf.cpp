#include "common/cdf.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace hyperear {

EmpiricalCdf::EmpiricalCdf(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  require(!sorted_.empty(), "EmpiricalCdf: empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  require(q > 0.0 && q <= 1.0, "EmpiricalCdf::quantile: q out of (0,1]");
  const auto n = sorted_.size();
  auto idx = static_cast<std::size_t>(q * static_cast<double>(n));
  if (idx > 0) --idx;
  if (idx >= n) idx = n - 1;
  return sorted_[idx];
}

EmpiricalCdf::Grid EmpiricalCdf::grid(double x_max, std::size_t points) const {
  require(x_max > 0.0, "EmpiricalCdf::grid: x_max must be positive");
  require(points >= 2, "EmpiricalCdf::grid: need at least two points");
  Grid g;
  g.x.resize(points);
  g.f.resize(points);
  for (std::size_t i = 0; i < points; ++i) {
    g.x[i] = x_max * static_cast<double>(i) / static_cast<double>(points - 1);
    g.f[i] = at(g.x[i]);
  }
  return g;
}

std::string EmpiricalCdf::to_table(double x_max, std::size_t points,
                                   const std::string& label) const {
  const Grid g = grid(x_max, points);
  std::string out = "# CDF " + label + "\n";
  char buf[64];
  for (std::size_t i = 0; i < g.x.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%8.3f %8.3f\n", g.x[i], g.f[i]);
    out += buf;
  }
  return out;
}

}  // namespace hyperear
