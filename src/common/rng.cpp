#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hyperear {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int: lo must be <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection-free modulo is fine here; bias is < 2^-50 for practical spans.
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = r * std::sin(2.0 * kPi * u2);
  has_cached_gaussian_ = true;
  return r * std::cos(2.0 * kPi * u2);
}

double Rng::gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

std::vector<double> Rng::gaussian_vector(std::size_t n) {
  std::vector<double> out(n);
  for (auto& v : out) v = gaussian();
  return out;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace hyperear
