#pragma once

#include <stdexcept>
#include <string>

/// @file error.hpp
/// Exception types for contract violations inside the HyperEar library.

namespace hyperear {

/// Base class for all errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Raised when a contract macro (HE_EXPECTS / HE_ENSURES / HE_ASSERT_FINITE,
/// common/contracts.hpp) fires in a checked build. Derives from
/// PreconditionError so call sites that were promoted from always-on
/// `require()` checks to checked-build contracts keep satisfying existing
/// `catch (const PreconditionError&)` handlers and tests; classify_exception
/// (core/status.cpp) maps it to ErrorCategory::precondition the same way.
class InvariantError : public PreconditionError {
 public:
  explicit InvariantError(const std::string& what) : PreconditionError(what) {}
};

/// Raised when a numerical routine fails to converge or degenerates.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Raised when a signal-processing stage cannot find what it needs in the
/// data (e.g. no chirp detected, no slide segment found).
class DetectionError : public Error {
 public:
  explicit DetectionError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_precondition(const std::string& what) {
  throw PreconditionError(what);
}
}  // namespace detail

/// Check a precondition; throws PreconditionError with the given message.
inline void require(bool condition, const std::string& what) {
  if (!condition) detail::throw_precondition(what);
}

}  // namespace hyperear
