#pragma once

#include <condition_variable>
#include <mutex>

/// @file thread_annotations.hpp
/// Compile-time lock discipline (DESIGN.md §14): Clang Thread Safety
/// Analysis capability macros plus annotated wrappers over the std
/// synchronization primitives. Under clang with `-Wthread-safety
/// -Wthread-safety-beta -Werror` (wired in by the top-level CMakeLists
/// whenever the compiler is clang), the locking protocol these macros
/// document becomes machine-checked: touching a `HE_GUARDED_BY` member
/// without its mutex, calling an `HE_REQUIRES` helper lock-free,
/// returning with a mutex still held, or acquiring two mutexes against
/// the declared hierarchy are all COMPILE ERRORS, not sanitizer
/// findings. Under GCC every macro expands to nothing and the wrappers
/// are zero-cost shims over std::mutex / std::condition_variable.
///
/// Usage rules (enforced by tools/lint/hyperear_lint.py, rule
/// `concurrency`):
///   - src/runtime and src/obs never name std::mutex / std::lock_guard /
///     std::unique_lock / std::condition_variable directly — they use
///     `he::Mutex`, `he::MutexLock`, `he::CondVar` so every lock site is
///     visible to the analysis.
///   - every `he::Mutex` MEMBER in those layers declares its place in the
///     lock hierarchy with `HE_LOCK_LEVEL(<level>)`; the checked-in
///     manifest tools/lint/lock_order.txt is the canonical ordering and
///     the linter cross-validates the two (rule `lockorder`). Function
///     locals (e.g. the batch join state in BatchEngine::localize_all)
///     are leaves outside the hierarchy and carry no level.
///   - `HE_NO_THREAD_SAFETY_ANALYSIS("<why>")` is the only escape hatch
///     and the reason string is mandatory and non-empty.
///
/// Condition-variable waits are spelled as explicit loops
/// (`while (!pred) cv.wait(lock);`) rather than the predicate overload:
/// a predicate lambda is analyzed as a separate function that does not
/// hold the capability, so guarded reads inside it would (correctly!)
/// fail the analysis.

// ---------------------------------------------------------------------------
// Attribute macros. Clang-only; GCC sees empty expansions.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define HE_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define HE_THREAD_ANNOTATION_ATTRIBUTE(x)
#endif

/// Marks a type as a lockable capability (diagnostic name `x`).
#define HE_CAPABILITY(x) HE_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define HE_SCOPED_CAPABILITY HE_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define HE_GUARDED_BY(x) HE_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose POINTEE is protected by `x` (the pointer itself
/// is not).
#define HE_PT_GUARDED_BY(x) HE_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Declares hierarchy edges between capabilities: this one must be
/// acquired before / after the listed ones. Checked by
/// -Wthread-safety-beta; the repo encodes its global ordering through
/// the `lock_order` level tokens below rather than ad-hoc pairs.
#define HE_ACQUIRED_BEFORE(...) \
  HE_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define HE_ACQUIRED_AFTER(...) \
  HE_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function that must be called WITH the listed capabilities held.
#define HE_REQUIRES(...) \
  HE_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function that acquires / releases the listed capabilities itself.
#define HE_ACQUIRE(...) \
  HE_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define HE_RELEASE(...) \
  HE_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function that attempts acquisition; first argument is the return
/// value meaning success.
#define HE_TRY_ACQUIRE(...) \
  HE_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function that must be called WITHOUT the listed capabilities held
/// (it acquires them itself — calling it while holding deadlocks).
#define HE_EXCLUDES(...) \
  HE_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code the analysis
/// cannot follow, e.g. acquisition on another thread).
#define HE_ASSERT_CAPABILITY(x) \
  HE_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Function returning a reference to the capability `x`.
#define HE_RETURN_CAPABILITY(x) HE_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Suppress the analysis for one function. The reason string is
/// MANDATORY and must be non-empty — `hyperear_lint.py` rejects a bare
/// suppression, exactly like the suppression-with-reason lint policy. Use only
/// where the protocol is sound but inexpressible (e.g. ownership handed
/// between threads through a non-capability channel).
#define HE_NO_THREAD_SAFETY_ANALYSIS(reason) \
  HE_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace hyperear {

// ---------------------------------------------------------------------------
// Lock hierarchy (DESIGN.md §14, manifest: tools/lint/lock_order.txt).
//
// The runtime's global lock order, outermost first:
//
//   server    runtime::Server::mutex_            (admission queue)
//   streaming runtime::StreamingEngine::sessions_mutex_ (session map)
//   session   runtime::StreamingEngine::Entry::mutex    (per-session inbox)
//   engine    runtime::WorkspacePool::mutex_,
//             runtime::ContextCache::Shard::mutex (per-worker state, plans)
//   pool      runtime::ThreadPool::mutex_        (task queue)
//   registry  obs::MetricsRegistry::mutex_,
//             obs::Tracer::mutex_                (telemetry collection)
//
// Each level is separated from the next by an inert boundary token (a
// capability object that is never locked at runtime). A mutex at level L
// declares HE_ACQUIRED_AFTER(boundary above L) and HE_ACQUIRED_BEFORE
// (boundary below L) via HE_LOCK_LEVEL(L), which places every level-L
// mutex strictly between the tokens; clang's acquired_before/after
// graph is transitive through the token declarations, so acquiring a
// pool-level mutex while holding a registry-level one is a compile
// error even though the two never name each other. Mutexes sharing a
// level are mutually unordered and must never nest (none do today —
// the two `engine` locks are taken sequentially, never together).
// ---------------------------------------------------------------------------

namespace lock_order {

/// Inert hierarchy token: a capability that exists only so annotations
/// can reference a level boundary. Never locked.
class HE_CAPABILITY("lock_level") LockLevel {
 public:
  LockLevel() = default;
  LockLevel(const LockLevel&) = delete;
  LockLevel& operator=(const LockLevel&) = delete;
};

/// Boundary tokens, one below each level that has a successor. The
/// HE_ACQUIRED_AFTER chain here IS the level order; hyperear_lint.py
/// cross-validates it against tools/lint/lock_order.txt.
inline LockLevel below_server;
inline LockLevel below_streaming HE_ACQUIRED_AFTER(below_server);
inline LockLevel below_session HE_ACQUIRED_AFTER(below_streaming);
inline LockLevel below_engine HE_ACQUIRED_AFTER(below_session);
inline LockLevel below_pool HE_ACQUIRED_AFTER(below_engine);

}  // namespace lock_order

/// Place a mutex member at a named level of the lock hierarchy:
///   mutable he::Mutex mutex_ HE_LOCK_LEVEL(pool);
/// Every he::Mutex member in src/runtime + src/obs must carry one (the
/// linter checks), and the (level, file, member) triple must match a row
/// of tools/lint/lock_order.txt.
#define HE_LOCK_LEVEL(level) HE_LOCK_LEVEL_##level

#define HE_LOCK_LEVEL_server \
  HE_ACQUIRED_BEFORE(::hyperear::lock_order::below_server)
#define HE_LOCK_LEVEL_streaming                             \
  HE_ACQUIRED_AFTER(::hyperear::lock_order::below_server)   \
  HE_ACQUIRED_BEFORE(::hyperear::lock_order::below_streaming)
#define HE_LOCK_LEVEL_session                                \
  HE_ACQUIRED_AFTER(::hyperear::lock_order::below_streaming) \
  HE_ACQUIRED_BEFORE(::hyperear::lock_order::below_session)
#define HE_LOCK_LEVEL_engine                               \
  HE_ACQUIRED_AFTER(::hyperear::lock_order::below_session) \
  HE_ACQUIRED_BEFORE(::hyperear::lock_order::below_engine)
#define HE_LOCK_LEVEL_pool                                \
  HE_ACQUIRED_AFTER(::hyperear::lock_order::below_engine) \
  HE_ACQUIRED_BEFORE(::hyperear::lock_order::below_pool)
#define HE_LOCK_LEVEL_registry \
  HE_ACQUIRED_AFTER(::hyperear::lock_order::below_pool)

// ---------------------------------------------------------------------------
// Annotated wrappers.
// ---------------------------------------------------------------------------

class CondVar;

/// std::mutex with the `capability` annotation, so the analysis can
/// track what it guards. Same cost, same semantics.
class HE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HE_ACQUIRE() { m_.lock(); }
  void unlock() HE_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() HE_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// Scoped lock over a he::Mutex — the annotated replacement for both
/// std::lock_guard and the cv-wait uses of std::unique_lock (CondVar
/// waits through it). Not movable: a lease on a capability has exactly
/// one scope.
class HE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) HE_ACQUIRE(mutex) : mutex_(&mutex) {
    mutex_->lock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  MutexLock(MutexLock&&) = delete;
  MutexLock& operator=(MutexLock&&) = delete;
  ~MutexLock() HE_RELEASE() { mutex_->unlock(); }

 private:
  friend class CondVar;
  Mutex* mutex_;
};

/// std::condition_variable bound to the annotated wrappers. `wait`
/// takes the scoped lock (proof the caller holds the mutex) and
/// atomically releases/reacquires it around the sleep, exactly like
/// std::condition_variable::wait on the underlying unique_lock. There
/// is deliberately no predicate overload — spell the loop out (see the
/// file comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `lock` (enforced structurally: a MutexLock IS a
  /// held lock). The capability is released during the sleep and held
  /// again on return — invisible to the analysis, which only needs the
  /// before/after states to match, and they do.
  void wait(MutexLock& lock) {
    std::unique_lock<std::mutex> native(lock.mutex_->m_, std::adopt_lock);
    cv_.wait(native);
    // The MutexLock still owns the re-acquired mutex; keep the
    // unique_lock from double-unlocking on scope exit.
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hyperear

/// The wrappers read as `he::Mutex` / `he::MutexLock` / `he::CondVar`
/// everywhere (including inside nested hyperear:: namespaces, where the
/// alias keeps the annotated types visually distinct from std ones).
namespace he = ::hyperear;
