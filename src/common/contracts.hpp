#pragma once

#include <cmath>
#include <cstddef>
#include <string>
#include <utility>

#include "common/error.hpp"

/// @file contracts.hpp
/// Checked-build contract macros (DESIGN.md §11).
///
/// The library has two tiers of defensive checks:
///
///  1. Always-on validation — `hyperear::require(cond, msg)` (error.hpp).
///    Guards public API arguments in every build type and throws
///    PreconditionError. Callers (and 100+ tests) rely on these firing in
///    Release, so they never compile out.
///
///  2. Contracts — the HE_* macros below. Internal invariants,
///    postconditions, and finiteness sweeps that would be redundant or too
///    expensive to check on every production call. Active when
///    HE_CONTRACTS_ENABLED is 1; they throw hyperear::InvariantError (a
///    PreconditionError) with the offending expression and source location
///    in what(). In NDEBUG builds each macro compiles to nothing — the
///    condition is parsed (so it can't bit-rot) but never evaluated.
///
/// Build-mode matrix:
///
///   | build type            | NDEBUG | contracts |
///   |-----------------------|--------|-----------|
///   | Debug                 | unset  | throw     |
///   | Asan / Tsan           | unset  | throw     |
///   | Release/RelWithDebInfo| set    | no-op     |
///   | any + HYPEREAR_FORCE_CONTRACTS | —  | throw |

#if defined(HYPEREAR_FORCE_CONTRACTS) || !defined(NDEBUG)
#define HE_CONTRACTS_ENABLED 1
#else
#define HE_CONTRACTS_ENABLED 0
#endif

namespace hyperear::contracts {

[[noreturn]] inline void violation(const char* kind, const char* expr,
                                   const char* file, long line) {
  throw InvariantError(std::string(kind) + " violated: " + expr + " [" + file +
                       ":" + std::to_string(line) + "]");
}

[[noreturn]] inline void nonfinite(const char* expr, double value, const char* file,
                                   long line) {
  throw InvariantError(std::string("finiteness violated: ") + expr + " = " +
                       std::to_string(value) + " [" + file + ":" +
                       std::to_string(line) + "]");
}

/// Scalar finiteness probe. The range overload reports the first offender's
/// value so a NaN three stages upstream is caught where it enters, not where
/// the solver finally chokes on it.
inline bool check_finite(double v, double& offender) {
  if (std::isfinite(v)) return true;
  offender = v;
  return false;
}

template <typename Range>
bool check_finite(const Range& r, double& offender) {
  for (const double v : r) {
    if (!std::isfinite(v)) {
      offender = v;
      return false;
    }
  }
  return true;
}

}  // namespace hyperear::contracts

#if HE_CONTRACTS_ENABLED

/// Precondition on entry to a function: caller-supplied state must satisfy
/// `cond`. Throws InvariantError naming the expression when it doesn't.
#define HE_EXPECTS(cond)                                                      \
  ((cond) ? static_cast<void>(0)                                             \
          : ::hyperear::contracts::violation("precondition HE_EXPECTS(" #cond \
                                             ")",                            \
                                             #cond, __FILE__, __LINE__))

/// Postcondition before returning: the result the function is about to hand
/// back must satisfy `cond`.
#define HE_ENSURES(cond)                                                       \
  ((cond) ? static_cast<void>(0)                                              \
          : ::hyperear::contracts::violation("postcondition HE_ENSURES(" #cond \
                                             ")",                             \
                                             #cond, __FILE__, __LINE__))

/// Finiteness sweep over a double or a range of doubles (anything
/// range-for-iterable yielding double). Reports the first non-finite value.
#define HE_ASSERT_FINITE(value)                                               \
  do {                                                                        \
    double he_offender_ = 0.0;                                                \
    if (!::hyperear::contracts::check_finite((value), he_offender_)) {        \
      ::hyperear::contracts::nonfinite("HE_ASSERT_FINITE(" #value ")",        \
                                       he_offender_, __FILE__, __LINE__);     \
    }                                                                         \
  } while (false)

#else  // !HE_CONTRACTS_ENABLED — parse the condition, never evaluate it.

#define HE_EXPECTS(cond) static_cast<void>(sizeof((cond) ? 1 : 0))
#define HE_ENSURES(cond) static_cast<void>(sizeof((cond) ? 1 : 0))
#define HE_ASSERT_FINITE(value)                                     \
  static_cast<void>(sizeof(::hyperear::contracts::check_finite(     \
      (value), std::declval<double&>())))

#endif  // HE_CONTRACTS_ENABLED
