#include "core/aoa.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace hyperear::core {

AoaEstimate tdoa_to_bearing(const TdoaSample& sample, const AoaOptions& options) {
  require(options.mic_separation > 0.0, "tdoa_to_bearing: bad mic separation");
  require(options.sound_speed > 0.0, "tdoa_to_bearing: bad sound speed");
  AoaEstimate out;
  out.time_s = sample.time_s;
  out.tdoa_s = sample.tdoa_s;
  // tdoa = -D cos(alpha) / S  =>  cos(alpha) = -tdoa * S / D.
  const double raw = -sample.tdoa_s * options.sound_speed / options.mic_separation;
  const double cos_alpha = std::clamp(raw, -1.0, 1.0);
  out.alpha_right_rad = std::acos(cos_alpha);           // [0, pi]
  out.alpha_left_rad = 2.0 * kPi - out.alpha_right_rad; // mirrored branch
  return out;
}

std::vector<AoaEstimate> estimate_bearings(const AspResult& asp,
                                           const AoaOptions& options) {
  std::vector<AoaEstimate> out;
  for (const TdoaSample& s : pair_inter_mic_tdoas(asp, options.pairing_slack_s)) {
    out.push_back(tdoa_to_bearing(s, options));
  }
  return out;
}

std::optional<double> aggregate_bearing(const std::vector<AoaEstimate>& estimates,
                                        double t_start, double t_end) {
  std::vector<double> alphas;
  for (const AoaEstimate& e : estimates) {
    if (e.time_s >= t_start && e.time_s < t_end) alphas.push_back(e.alpha_right_rad);
  }
  if (alphas.empty()) return std::nullopt;
  // The right-branch angles live on [0, pi] where the ordinary median is a
  // sound circular aggregate.
  return median(alphas);
}

}  // namespace hyperear::core
