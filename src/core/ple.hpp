#pragma once

#include "core/ttl.hpp"
#include "geom/projection.hpp"

/// @file ple.hpp
/// Projected Location Estimation (paper Section VI-B). The phone performs
/// the slide protocol at two statures separated by a vertical move H; each
/// stature's slides measure the radial (slant) distance from the slide axis
/// to the speaker. The law-of-cosines projection (Eq. 7) then yields the
/// floor-map distance without knowing either party's absolute height.

namespace hyperear::core {

/// PLE configuration.
struct PleOptions {
  TtlOptions ttl;
  /// Minimum estimated |H| to attempt the projection; below this the two
  /// slide planes are effectively coplanar and the slant distance is used
  /// directly.
  double min_stature_change = 0.12;
  /// Segmentation of the vertical move uses the z-axis acceleration with
  /// the same parameters as the slides.
  imu::SegmentationOptions z_segmentation;
};

/// Session-level 3D localization result.
struct PleResult {
  bool valid = false;
  bool projected = false;     ///< false -> fell back to the slant distance
  double l1 = 0.0;            ///< radial distance at stature 1
  double l2 = 0.0;            ///< radial distance at stature 2
  double stature_change = 0.0;  ///< estimated |H| (m)
  double beta_rad = 0.0;        ///< Eq. 7 angle
  double projected_distance = 0.0;  ///< L* = L1 sin(beta)
  geom::Vec2 estimated_position;    ///< floor-map speaker estimate
  int slides_used = 0;
  std::vector<SlideMeasurement> slides;  ///< diagnostics
};

/// Full 3D localization of a two-stature session.
[[nodiscard]] PleResult localize_3d(const AspResult& asp,
                                    const imu::MotionSignals& motion,
                                    const sim::Session::Prior& prior,
                                    double mic_separation, const PleOptions& options = {});

}  // namespace hyperear::core
