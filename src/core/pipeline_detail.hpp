#pragma once

#include "common/expected.hpp"
#include "core/pipeline.hpp"

/// @file pipeline_detail.hpp
/// The pipeline's back half, factored out of `try_localize` so the
/// incremental ingest path (core/streaming_session.hpp) can run the exact
/// same instructions from MSP onward. Not a stable public surface — batch
/// callers use `try_localize`; these exist so the streamed and batch
/// spellings cannot drift (one implementation, two front ends).

namespace hyperear::obs {
struct ObsContext;
class TraceSpan;
class MetricsRegistry;
}  // namespace hyperear::obs

namespace hyperear::core::detail {

/// Everything `try_localize` does after the ASP stage: MSP preprocessing,
/// the TTL (2D) or PLE (3D) solve chosen by the session prior, stage spans
/// and wall-time metrics into `stage`, and the pipeline-level registry
/// updates for the attempt's outcome. `stage` must carry the already-filled
/// ASP fields (asp_ms, chirp counts, sfo_estimated); msp/solve fields are
/// written here. `session_span` parents the per-stage trace spans (null:
/// stages become root spans, as with a null tracer).
///
/// The caller owns error classification for the stages BEFORE this call
/// (config validation, asp) and copies `stage` to its sink afterwards.
[[nodiscard]] Expected<LocalizationResult, PipelineError> localize_from_asp(
    const AspResult& asp, const sim::Session& session, const PipelineConfig& config,
    StageMetrics& stage, const obs::ObsContext* obs,
    const obs::TraceSpan* session_span);

/// Pipeline-level registry updates for one finished attempt. All derived
/// from values the pipeline computed anyway — observing costs no extra
/// clock reads and cannot perturb the result. Exactly one of
/// `result`/`error` is non-null.
void record_pipeline_metrics(obs::MetricsRegistry& m, const StageMetrics& stage,
                             const LocalizationResult* result,
                             const PipelineError* error);

}  // namespace hyperear::core::detail
