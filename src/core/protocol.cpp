#include "core/protocol.hpp"

#include "common/error.hpp"

namespace hyperear::core {

ProtocolStateMachine::ProtocolStateMachine(int slides_per_stature, bool three_d)
    : slides_per_stature_(slides_per_stature), three_d_(three_d) {
  require(slides_per_stature >= 1, "ProtocolStateMachine: need at least one slide");
}

bool ProtocolStateMachine::on_event(ProtocolEvent event) {
  switch (phase_) {
    case ProtocolPhase::kFindDirection:
      if (event == ProtocolEvent::kDirectionFound) {
        phase_ = ProtocolPhase::kCalibrate;
        return true;
      }
      return false;
    case ProtocolPhase::kCalibrate:
      if (event == ProtocolEvent::kCalibrationElapsed) {
        phase_ = ProtocolPhase::kSlideLow;
        return true;
      }
      return false;
    case ProtocolPhase::kSlideLow:
    case ProtocolPhase::kSlideHigh:
      if (event == ProtocolEvent::kSlideAccepted) {
        ++slides_done_;
        ++total_slides_;
        if (slides_done_ >= slides_per_stature_) {
          if (phase_ == ProtocolPhase::kSlideLow && three_d_) {
            phase_ = ProtocolPhase::kRaise;
          } else {
            phase_ = ProtocolPhase::kDone;
          }
        }
        return true;
      }
      if (event == ProtocolEvent::kSlideRejected) {
        ++rejected_;
        return true;  // state advanced (counter), phase unchanged
      }
      return false;
    case ProtocolPhase::kRaise:
      if (event == ProtocolEvent::kStatureChanged) {
        phase_ = ProtocolPhase::kSlideHigh;
        slides_done_ = 0;
        return true;
      }
      return false;
    case ProtocolPhase::kDone:
      return false;
  }
  return false;
}

std::string ProtocolStateMachine::instruction() const {
  switch (phase_) {
    case ProtocolPhase::kFindDirection:
      return "Rotate the phone slowly until it points at the beacon.";
    case ProtocolPhase::kCalibrate:
      return "Hold the phone still for a few seconds.";
    case ProtocolPhase::kSlideLow:
    case ProtocolPhase::kSlideHigh: {
      const int remaining = slides_per_stature_ - slides_done_;
      return "Slide the phone along its length, smoothly, " +
             std::to_string(remaining) + " more time(s).";
    }
    case ProtocolPhase::kRaise:
      return "Raise the phone about half a meter and hold it there.";
    case ProtocolPhase::kDone:
      return "Done - computing the beacon's position.";
  }
  return {};
}

}  // namespace hyperear::core
