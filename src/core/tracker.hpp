#pragma once

#include "core/error_model.hpp"
#include "geom/vec2.hpp"

/// @file tracker.hpp
/// Multi-session fusion for guided search.
///
/// The paper's use case ends with the user walking toward the object; on
/// the way they can re-run the slide protocol from closer positions, where
/// fixes are far more accurate (Figs. 15-16). The tracker fuses the
/// sequence of fixes of a STATIC beacon by inverse-variance weighting,
/// with each fix's variance supplied by the analytic error budget, so
/// early, far, noisy fixes are not allowed to drag down late, close,
/// accurate ones.

namespace hyperear::core {

/// Recursive inverse-variance fusion of 2D fixes of a static beacon.
class BeaconTracker {
 public:
  /// Fold in one fix with the given (isotropic) 1-sigma uncertainty in
  /// meters. Requires sigma > 0.
  void update(const geom::Vec2& fix, double sigma);

  [[nodiscard]] bool has_estimate() const { return weight_ > 0.0; }
  /// Fused beacon position. Requires at least one update.
  [[nodiscard]] geom::Vec2 estimate() const;
  /// 1-sigma radius of the fused estimate. Requires at least one update.
  [[nodiscard]] double uncertainty() const;
  [[nodiscard]] int fixes() const { return fixes_; }

 private:
  double sum_x_ = 0.0;
  double sum_y_ = 0.0;
  double weight_ = 0.0;
  int fixes_ = 0;
};

/// A reasonable per-fix sigma for the tracker, derived from the analytic
/// error budget at the ESTIMATED range of that fix. `hand_held` selects
/// looser displacement/rotation noise than the ruler.
[[nodiscard]] double fix_sigma(double range, bool hand_held,
                               const ErrorBudgetInput& base = {});

/// Walking guidance toward the current estimate: bearing (radians, from
/// +x) and distance from the user's position.
struct Guidance {
  double bearing_rad = 0.0;
  double distance = 0.0;
};
[[nodiscard]] Guidance guide_toward(const geom::Vec2& user, const geom::Vec2& target);

}  // namespace hyperear::core
