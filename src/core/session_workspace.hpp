#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/arena.hpp"
#include "common/contracts.hpp"
#include "dsp/matched_filter.hpp"

/// @file session_workspace.hpp
/// The mutable counterpart of core::PipelineContext: everything a pipeline
/// run scribbles on that is worth keeping warm between sessions.
///
/// The context/workspace split is the pipeline's ownership model. A
/// `PipelineContext` is deeply immutable and shared read-only by any number
/// of concurrent runs; a `SessionWorkspace` is all the mutable state of one
/// run — per-channel filter output, matched-filter scratch, detection
/// staging, and an arena for per-session transients — and is therefore
/// strictly single-owner: one workspace per call stack, never shared across
/// threads (runtime::WorkspacePool hands each engine worker an exclusive
/// lease). Buffer contents carry no information between sessions; only
/// capacity is retained, so a warmed workspace makes the steady-state batch
/// path allocation-free while results stay bit-identical to a fresh one —
/// and to the context-free path, which simply builds a call-local workspace.

namespace hyperear::core {

/// Scratch for one microphone channel of the ASP stage. Two of these let
/// the legacy PairExecutor spelling overlap the channels: the slots are
/// disjoint, so the closures never share mutable state.
struct ChannelWorkspace {
  std::vector<double> filtered;            ///< band-passed recording
  dsp::DetectorWorkspace detector;         ///< matched-filter scratch (incl. FFT)
  std::vector<dsp::Detection> detections;  ///< detector output staging
};

/// Reusable per-worker state for the canonical pipeline entry points
/// (`core::try_localize`, `core::preprocess_audio`). Default-constructed it
/// owns nothing; the first session grows every buffer to the session's
/// working-set size and subsequent sessions of similar length allocate
/// nothing. Non-copyable by composition (the arena is pinned), which also
/// rules out accidental by-value sharing.
class SessionWorkspace {
 public:
  static constexpr std::size_t kChannels = 2;

  [[nodiscard]] ChannelWorkspace& channel(std::size_t index) {
    HE_EXPECTS(index < kChannels);
    return channels_[index];
  }

  /// Bump allocator for per-session transients (e.g. the SFO fit's scratch
  /// series): allocation is a pointer bump, and `reset` recycles the whole
  /// region for the next session without returning memory to the heap.
  [[nodiscard]] MonotonicArena& arena() { return arena_; }

  /// Start-of-session rewind: recycles the arena. Called by the pipeline
  /// itself — callers only reset explicitly to reclaim nothing-in-flight
  /// state in tests. Channel buffers need no reset; every element is
  /// overwritten before it is read.
  void reset() { arena_.reset(); }

 private:
  std::array<ChannelWorkspace, kChannels> channels_;
  MonotonicArena arena_;
};

}  // namespace hyperear::core
