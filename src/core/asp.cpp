#include "core/asp.hpp"

#include <cmath>
#include <optional>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "core/parallel.hpp"
#include "core/pipeline_context.hpp"
#include "core/session_workspace.hpp"
#include "dsp/fir.hpp"
#include "dsp/matched_filter.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hyperear::core {

void convert_chirp_events(const std::vector<dsp::Detection>& detections,
                          std::vector<ChirpEvent>& out) {
  out.clear();
  out.reserve(detections.size());
  for (const dsp::Detection& d : detections) {
    out.push_back({d.time_s, d.score, d.amplitude, d.echo_competition});
  }
}

namespace {

/// `estimate_period` with caller-owned scratch: the arrival-time and index
/// series live in the session arena, so the steady-state batch path fits
/// the SFO line without touching the heap. The public spelling wraps this
/// with a call-local arena; the fit itself is identical.
double estimate_period_with_arena(const std::vector<ChirpEvent>& events,
                                  double nominal_period, double window_end,
                                  std::size_t min_events, MonotonicArena& arena) {
  require(nominal_period > 0.0, "estimate_period: bad nominal period");
  ArenaVector<double> times{ArenaAllocator<double>{arena}};
  for (const ChirpEvent& e : events) {
    if (e.time_s <= window_end) times.push_back(e.time_s);
  }
  if (times.size() < min_events) {
    throw DetectionError("estimate_period: not enough calibration arrivals");
  }
  // Recover integer chirp indices by rounding gaps to the nominal period;
  // missed detections produce index gaps, which the fit tolerates.
  ArenaVector<double> idx{ArenaAllocator<double>{arena}};
  idx.resize(times.size());
  idx[0] = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    idx[i] = idx[i - 1] + std::round((times[i] - times[i - 1]) / nominal_period);
  }
  const LineFit fit = fit_line_robust(idx, times);
  require(fit.slope > 0.5 * nominal_period && fit.slope < 1.5 * nominal_period,
          "estimate_period: implausible period estimate");
  return fit.slope;
}

/// The one ASP implementation. Every public spelling lands here; the
/// nullable context/workspace parameters exist so the context-free path
/// builds its session-local state INSIDE the caller's asp-stage try block
/// (error classification is part of the contract, not an accident of which
/// wrapper ran).
AspResult preprocess_audio_impl(const sim::StereoRecording& recording,
                                const dsp::ChirpParams& chirp_params,
                                double nominal_period, double calibration_duration,
                                const AspOptions& options,
                                const PipelineContext* context,
                                SessionWorkspace* workspace,
                                const PairExecutor* executor,
                                const obs::ObsContext* obs) {
  require(!recording.mic1.empty() && recording.mic1.size() == recording.mic2.size(),
          "preprocess_audio: bad recording");
  const double fs = recording.sample_rate;
  // Reuse the caller's precomputed plans when they were built for exactly
  // this configuration; otherwise derive session-local ones. Both paths run
  // the same code on the same plans, so the results are bit-identical.
  std::optional<PipelineContext> local_context;
  if (context == nullptr || !context->matches(options, chirp_params, fs)) {
    local_context.emplace(options, chirp_params, fs);
    context = &*local_context;
  }
  // Same rule for the scratch: a call-local workspace behaves exactly like
  // a warmed one (buffer contents carry no information between sessions),
  // it just pays the allocations the steady-state path avoids.
  std::optional<SessionWorkspace> local_workspace;
  if (workspace == nullptr) {
    local_workspace.emplace();
    workspace = &*local_workspace;
  }
  workspace->reset();

  AspResult result;
  result.estimated_period = nominal_period;

  // Each channel is an independent filter+detect pass over shared immutable
  // plans with a channel-private workspace slot, so the two closures can
  // run on different threads. Results cannot depend on the schedule: the
  // closures touch disjoint slots and outputs and never read each other's
  // state.
  const auto process_channel = [&](const std::vector<double>& mic, std::size_t slot,
                                   std::vector<ChirpEvent>& events) {
    ChannelWorkspace& ch = workspace->channel(slot);
    if (options.bandpass) {
      dsp::filter_same_into(mic, *context->bandpass_convolver(), ch.filtered,
                            ch.detector.fft);
      context->detector().detect_into(ch.filtered, ch.detector, ch.detections, obs);
    } else {
      context->detector().detect_into(mic, ch.detector, ch.detections, obs);
    }
    convert_chirp_events(ch.detections, events);
  };
  const SerialPairExecutor serial;
  const PairExecutor& exec = executor != nullptr ? *executor : serial;
  exec.run_pair([&] { process_channel(recording.mic1, 0, result.mic1); },
                [&] { process_channel(recording.mic2, 1, result.mic2); });

  finish_asp(result, nominal_period, calibration_duration, options,
             workspace->arena(), obs);
  return result;
}

}  // namespace

void finish_asp(AspResult& result, double nominal_period, double calibration_duration,
                const AspOptions& options, MonotonicArena& arena,
                const obs::ObsContext* obs) {
  result.estimated_period = nominal_period;
  result.sfo_ppm = 0.0;
  result.sfo_estimated = false;
  if (options.sfo_correction) {
    // Average the per-mic estimates when both are available (the two mics
    // share the phone clock, so their true periods are identical).
    double sum = 0.0;
    int count = 0;
    for (const auto* events : {&result.mic1, &result.mic2}) {
      try {
        sum += estimate_period_with_arena(*events, nominal_period,
                                          calibration_duration,
                                          options.min_calibration_events, arena);
        ++count;
      } catch (const DetectionError&) {
        // fall through; the other mic may still provide an estimate
      }
    }
    if (count > 0) {
      result.estimated_period = sum / count;
      result.sfo_ppm = (result.estimated_period / nominal_period - 1.0) * 1e6;
      result.sfo_estimated = true;
    }
  }
  if (obs != nullptr && obs->metrics != nullptr) {
    obs::MetricsRegistry& m = *obs->metrics;
    m.counter(result.sfo_estimated ? "asp.sfo_estimated_total"
                                   : "asp.sfo_fallback_total")
        .inc();
    static constexpr double kPpmBounds[] = {-100.0, -50.0, -20.0, -10.0, 0.0,
                                            10.0,   20.0,  50.0,  100.0};
    if (result.sfo_estimated) {
      m.histogram("asp.sfo_ppm", kPpmBounds).observe(result.sfo_ppm);
    }
  }
}

double estimate_period(const std::vector<ChirpEvent>& events, double nominal_period,
                       double window_end, std::size_t min_events) {
  MonotonicArena arena;
  return estimate_period_with_arena(events, nominal_period, window_end, min_events,
                                    arena);
}

AspResult preprocess_audio(const sim::StereoRecording& recording,
                           double nominal_period, double calibration_duration,
                           const PipelineContext& context, SessionWorkspace& workspace,
                           const obs::ObsContext* obs) {
  return preprocess_audio_impl(recording, context.chirp_params(), nominal_period,
                               calibration_duration, context.asp_options(), &context,
                               &workspace, nullptr, obs);
}

AspResult preprocess_audio(const sim::StereoRecording& recording,
                           const dsp::ChirpParams& chirp_params, double nominal_period,
                           double calibration_duration, const AspOptions& options,
                           const PipelineContext* context, const PairExecutor* executor,
                           const obs::ObsContext* obs) {
  return preprocess_audio_impl(recording, chirp_params, nominal_period,
                               calibration_duration, options, context, nullptr,
                               executor, obs);
}

}  // namespace hyperear::core
