#include "core/pipeline_context.hpp"

#include <algorithm>

#include "core/pipeline.hpp"
#include "dsp/fir.hpp"

namespace hyperear::core {

namespace {

std::vector<double> make_bandpass_taps(const AspOptions& asp,
                                       const dsp::ChirpParams& chirp,
                                       double sample_rate) {
  if (!asp.bandpass) return {};
  const double lo = std::max(chirp.freq_low_hz - asp.band_margin_hz, 50.0);
  const double hi =
      std::min(chirp.freq_high_hz + asp.band_margin_hz, sample_rate / 2.0 - 50.0);
  return dsp::design_bandpass(lo, hi, sample_rate, asp.bandpass_taps);
}

dsp::DetectorConfig make_detector_config(const AspOptions& asp, double sample_rate) {
  dsp::DetectorConfig cfg;
  cfg.sample_rate = sample_rate;
  cfg.threshold = asp.detector_threshold;
  cfg.min_spacing_s = asp.min_event_spacing_s;
  return cfg;
}

}  // namespace

PipelineContext::PipelineContext(const AspOptions& asp, const dsp::ChirpParams& chirp,
                                 double sample_rate)
    : asp_(asp),
      chirp_params_(chirp),
      sample_rate_(sample_rate),
      chirp_(chirp),
      bandpass_taps_(make_bandpass_taps(asp, chirp, sample_rate)),
      detector_(chirp_.reference(sample_rate), make_detector_config(asp, sample_rate)) {
  if (!bandpass_taps_.empty()) bandpass_ols_.emplace(bandpass_taps_);
}

PipelineContext::PipelineContext(const PipelineConfig& config,
                                 const dsp::ChirpParams& chirp, double sample_rate)
    : PipelineContext(config.asp, chirp, sample_rate) {}

bool PipelineContext::matches(const AspOptions& asp, const dsp::ChirpParams& chirp,
                              double sample_rate) const {
  return asp_ == asp && chirp_params_ == chirp && sample_rate_ == sample_rate;
}

}  // namespace hyperear::core
