#include "core/pipeline_context.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "core/pipeline.hpp"
#include "dsp/fir.hpp"

namespace hyperear::core {

namespace {

/// FNV-1a over explicit field values. Doubles hash by bit pattern, so the
/// key distinguishes exactly what operator== distinguishes (-0.0 vs 0.0 is
/// the one divergence, and both sides of it are valid cache entries because
/// `matches` re-checks equality).
struct Fnv1a {
  std::uint64_t state = 0xcbf29ce484222325ULL;

  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state ^= (v >> (8 * i)) & 0xffULL;
      state *= 0x100000001b3ULL;
    }
  }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(bool v) { mix(static_cast<std::uint64_t>(v)); }
};

}  // namespace

std::uint64_t plan_key_hash(const AspOptions& asp, const dsp::ChirpParams& chirp,
                            double sample_rate) {
  Fnv1a h;
  h.mix(asp.bandpass);
  h.mix(static_cast<std::uint64_t>(asp.bandpass_taps));
  h.mix(asp.band_margin_hz);
  h.mix(asp.detector_threshold);
  h.mix(asp.min_event_spacing_s);
  h.mix(asp.sfo_correction);
  h.mix(static_cast<std::uint64_t>(asp.min_calibration_events));
  h.mix(chirp.freq_low_hz);
  h.mix(chirp.freq_high_hz);
  h.mix(chirp.duration_s);
  h.mix(chirp.amplitude);
  h.mix(chirp.edge_fade_fraction);
  h.mix(sample_rate);
  return h.state;
}

namespace {

std::vector<double> make_bandpass_taps(const AspOptions& asp,
                                       const dsp::ChirpParams& chirp,
                                       double sample_rate) {
  if (!asp.bandpass) return {};
  const double lo = std::max(chirp.freq_low_hz - asp.band_margin_hz, 50.0);
  const double hi =
      std::min(chirp.freq_high_hz + asp.band_margin_hz, sample_rate / 2.0 - 50.0);
  return dsp::design_bandpass(lo, hi, sample_rate, asp.bandpass_taps);
}

dsp::DetectorConfig make_detector_config(const AspOptions& asp, double sample_rate) {
  dsp::DetectorConfig cfg;
  cfg.sample_rate = sample_rate;
  cfg.threshold = asp.detector_threshold;
  cfg.min_spacing_s = asp.min_event_spacing_s;
  return cfg;
}

}  // namespace

PipelineContext::PipelineContext(const AspOptions& asp, const dsp::ChirpParams& chirp,
                                 double sample_rate)
    : asp_(asp),
      chirp_params_(chirp),
      sample_rate_(sample_rate),
      chirp_(chirp),
      bandpass_taps_(make_bandpass_taps(asp, chirp, sample_rate)),
      detector_(chirp_.reference(sample_rate), make_detector_config(asp, sample_rate)) {
  if (!bandpass_taps_.empty()) bandpass_ols_.emplace(bandpass_taps_);
}

PipelineContext::PipelineContext(const PipelineConfig& config,
                                 const dsp::ChirpParams& chirp, double sample_rate)
    : PipelineContext(config.asp, chirp, sample_rate) {}

bool PipelineContext::matches(const AspOptions& asp, const dsp::ChirpParams& chirp,
                              double sample_rate) const {
  return asp_ == asp && chirp_params_ == chirp && sample_rate_ == sample_rate;
}

}  // namespace hyperear::core
