#pragma once

#include "core/asp.hpp"
#include "core/sdf.hpp"
#include "imu/preprocess.hpp"

/// @file calibration.hpp
/// Self-calibration of the microphone separation D.
///
/// The paper hard-codes D per phone model (13.66 cm for the S4, 15.12 cm
/// for the Note3, measured by the authors). A shipping app cannot measure
/// every handset, but D is observable from a rotation sweep: the inter-mic
/// TDoA traces -D cos(alpha)/S (Fig. 7), so the PEAK-TO-PEAK swing of the
/// trace is 2D/S regardless of range or aiming. One full roll with any
/// beacon a few meters away calibrates D to millimeters.

namespace hyperear::core {

/// Calibration configuration.
struct CalibrationOptions {
  double sound_speed = 343.0;
  double pairing_slack_s = 1.2e-3;  ///< generous: D is still unknown
  /// Robust extremes: use these percentiles of the TDoA trace instead of
  /// raw min/max.
  double percentile_low = 2.0;
  double percentile_high = 98.0;
  std::size_t min_samples = 20;
};

/// Result of a mic-separation calibration.
struct CalibrationResult {
  bool valid = false;
  double mic_separation = 0.0;  ///< estimated D (m)
  double tdoa_swing_s = 0.0;    ///< robust peak-to-peak TDoA
  std::size_t samples = 0;
};

/// Estimate D from a full-rotation sweep recording (the sweep must cover
/// both endfire orientations so the TDoA reaches both extremes +-D/S).
[[nodiscard]] CalibrationResult calibrate_mic_separation(
    const AspResult& asp, const CalibrationOptions& options = {});

}  // namespace hyperear::core
