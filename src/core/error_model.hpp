#pragma once

/// @file error_model.hpp
/// First-order (CRLB-style) error budget for the augmented-TDoA range
/// estimate — the analytic companion to the paper's empirical Figs. 14-16.
///
/// Linearizing Eqs. 5-6 around the far-field solution L ~ D*D'/(dd2-dd1):
///
///   dL/d(ddi)  = +- L^2 / (D * D')   (timing errors, per microphone)
///   dL/dD'     =    L / D'           (sliding-distance error, relative)
///   rotation   : a residual yaw excursion psi between the endpoint chirps
///                enters the TDoA difference as D * psi, i.e. like timing.
///
/// Independent error terms shrink with the number of chirp pairs and
/// slides aggregated; the displacement term is per-slide (one D' estimate
/// per slide) and only averages across slides.

namespace hyperear::core {

/// Inputs of the budget, all 1-sigma.
struct ErrorBudgetInput {
  double range = 5.0;             ///< L (m)
  double mic_separation = 0.1366; ///< D (m)
  double slide_distance = 0.55;   ///< D' (m)
  double timing_sigma_s = 3e-6;   ///< per-arrival timing noise (s)
  double displacement_sigma = 0.01;  ///< per-slide D' estimation error (m)
  double residual_yaw_sigma = 0.003; ///< per-pair yaw residual after gyro correction (rad)
  int pairs_per_slide = 16;       ///< chirp pairs averaged within a slide
  int slides = 5;                 ///< slides aggregated per session
  double sound_speed = 343.0;
};

/// Predicted 1-sigma range error, decomposed by source.
struct ErrorBudget {
  double timing = 0.0;        ///< from per-arrival timing noise
  double displacement = 0.0;  ///< from D' estimation error
  double rotation = 0.0;      ///< from residual (uncorrected) yaw
  double total = 0.0;         ///< root-sum-square of the three
};

/// Evaluate the budget. Requires positive geometry inputs.
[[nodiscard]] ErrorBudget predict_range_error(const ErrorBudgetInput& input);

}  // namespace hyperear::core
