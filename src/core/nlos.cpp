#include "core/nlos.hpp"

#include <cmath>

#include "common/stats.hpp"
#include "core/sdf.hpp"

namespace hyperear::core {

NlosAssessment assess_line_of_sight(const AspResult& asp, const NlosOptions& options) {
  NlosAssessment out;
  const std::vector<TdoaSample> pairs =
      pair_inter_mic_tdoas(asp, options.pairing_slack_s);
  out.events = pairs.size();
  if (pairs.size() < options.min_events) return out;
  out.enough_data = true;

  std::vector<double> tdoas;
  tdoas.reserve(pairs.size());
  for (const TdoaSample& p : pairs) tdoas.push_back(p.tdoa_s);
  out.tdoa_mad_s = median_absolute_deviation(tdoas);

  std::vector<double> amps, competition;
  amps.reserve(asp.mic1.size());
  competition.reserve(asp.mic1.size());
  for (const ChirpEvent& e : asp.mic1) {
    amps.push_back(e.amplitude);
    competition.push_back(e.echo_competition);
  }
  if (amps.size() >= options.min_events) {
    const double med = median(amps);
    if (med > 0.0) out.amplitude_dispersion = median_absolute_deviation(amps) / med;
    out.echo_competition = median(competition);
  }

  const bool tdoa_trip = out.tdoa_mad_s > options.tdoa_mad_threshold_s;
  const bool amp_trip = out.amplitude_dispersion > options.amplitude_dispersion_threshold;
  const bool echo_trip = out.echo_competition > options.echo_competition_threshold;
  out.suspected =
      tdoa_trip || echo_trip ||
      (amp_trip && out.tdoa_mad_s > 0.5 * options.tdoa_mad_threshold_s);
  return out;
}

}  // namespace hyperear::core
