#include "core/naive.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "geom/hyperbola.hpp"
#include "geom/triangulation.hpp"

namespace hyperear::core {

namespace {

double quantize_range_diff(double dd, const NaiveOptions& options) {
  if (!options.quantize) return dd;
  const double step = options.sound_speed / options.sample_rate;
  return std::round(dd / step) * step;
}

}  // namespace

geom::Vec2 naive_localize(const geom::Vec2& truth, const NaiveOptions& options) {
  require(options.mic_separation > 0.0 && options.move_distance > 0.0,
          "naive_localize: geometry must be positive");
  const double d = options.mic_separation;
  const double b = options.move_distance;
  // Pose 1: mics at (-D/2, 0) and (+D/2, 0). Pose 2: shifted +b along x.
  const geom::Vec2 m1a{-d / 2.0, 0.0}, m1b{d / 2.0, 0.0};
  const geom::Vec2 m2a{b - d / 2.0, 0.0}, m2b{b + d / 2.0, 0.0};

  const double limit = 0.999 * d;
  double dd1 = quantize_range_diff(distance(truth, m1a) - distance(truth, m1b), options);
  double dd2 = quantize_range_diff(distance(truth, m2a) - distance(truth, m2b), options);
  dd1 = std::clamp(dd1, -limit, limit);
  dd2 = std::clamp(dd2, -limit, limit);

  const geom::Hyperbola h1(m1a, m1b, dd1, true);
  const geom::Hyperbola h2(m2a, m2b, dd2, true);
  // Initialize from a generous broadside guess; the quantized problem is
  // shallow, so the solver needs a stable starting point, not a close one.
  const geom::Vec2 guess{b / 2.0, std::max(truth.norm(), 0.5)};
  const geom::TriangulationResult sol = geom::intersect(h1, h2, guess);
  geom::Vec2 est = sol.position;
  const double r = est.norm();
  if (r > options.max_range && r > 0.0) {
    est = est * (options.max_range / r);
  }
  return est;
}

Summary naive_error_study(double range, int trials, Rng& rng, const NaiveOptions& options) {
  require(range > 0.0, "naive_error_study: range must be positive");
  require(trials >= 1, "naive_error_study: need at least one trial");
  std::vector<double> errors;
  errors.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    const geom::Vec2 truth{rng.uniform(-options.lateral_spread, options.lateral_spread),
                           range};
    const geom::Vec2 est = naive_localize(truth, options);
    errors.push_back(distance(est, truth));
  }
  return summarize(errors);
}

double naive_range_ambiguity(double range, const NaiveOptions& options) {
  require(range > 0.0, "naive_range_ambiguity: range must be positive");
  const double step = options.sound_speed / options.sample_rate;
  return range * range * step / (options.mic_separation * options.move_distance);
}

}  // namespace hyperear::core
