#pragma once

#include <string>

/// @file protocol.hpp
/// The user-guidance state machine an app UI would drive.
///
/// The paper's requirement 3 is "excellent user experience ... minimize the
/// involvement of users". The measurement protocol has a fixed shape —
/// roll until in-direction, hold still for calibration, slide N times,
/// raise the phone, slide N more — and the app must tell the user what to
/// do next and react to what the sensors actually observed. This class is
/// that protocol, expressed as a pure state machine (no I/O, no timing),
/// so it is trivially testable and reusable behind any UI.

namespace hyperear::core {

/// Protocol phases, in order.
enum class ProtocolPhase {
  kFindDirection,   ///< roll the phone; SDF watching for the zero crossing
  kCalibrate,       ///< hold still; SFO estimation window
  kSlideLow,        ///< slide back and forth at the first stature
  kRaise,           ///< lift the phone to the second stature (3D only)
  kSlideHigh,       ///< slides at the second stature (3D only)
  kDone,
};

/// Events the sensing layer reports to the protocol.
enum class ProtocolEvent {
  kDirectionFound,     ///< SDF crossed zero
  kCalibrationElapsed, ///< enough static chirps collected
  kSlideAccepted,      ///< a slide passed the quality gate
  kSlideRejected,      ///< too short / too much rotation; must redo
  kStatureChanged,     ///< vertical move detected
};

/// Deterministic protocol state machine.
class ProtocolStateMachine {
 public:
  /// `slides_per_stature` >= 1; `three_d` adds the raise + second stature.
  ProtocolStateMachine(int slides_per_stature, bool three_d);

  [[nodiscard]] ProtocolPhase phase() const { return phase_; }
  [[nodiscard]] bool done() const { return phase_ == ProtocolPhase::kDone; }
  /// Accepted slides so far in the CURRENT stature.
  [[nodiscard]] int slides_completed() const { return slides_done_; }
  /// Total slides accepted across the session.
  [[nodiscard]] int total_slides() const { return total_slides_; }
  /// Slides rejected by the quality gate (for UX telemetry).
  [[nodiscard]] int slides_rejected() const { return rejected_; }

  /// Advance on an event. Events that make no sense in the current phase
  /// are ignored (sensor layers are noisy); returns true when the event
  /// changed the state.
  bool on_event(ProtocolEvent event);

  /// One-line instruction for the user in the current phase.
  [[nodiscard]] std::string instruction() const;

 private:
  ProtocolPhase phase_ = ProtocolPhase::kFindDirection;
  int slides_per_stature_;
  bool three_d_;
  int slides_done_ = 0;
  int total_slides_ = 0;
  int rejected_ = 0;
};

}  // namespace hyperear::core
