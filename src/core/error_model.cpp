#include "core/error_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hyperear::core {

ErrorBudget predict_range_error(const ErrorBudgetInput& in) {
  require(in.range > 0.0 && in.mic_separation > 0.0 && in.slide_distance > 0.0,
          "predict_range_error: geometry must be positive");
  require(in.pairs_per_slide >= 1 && in.slides >= 1,
          "predict_range_error: need at least one pair and one slide");
  ErrorBudget out;
  const double sensitivity =
      in.range * in.range / (in.mic_separation * in.slide_distance);
  const double n_pairs =
      static_cast<double>(in.pairs_per_slide) * static_cast<double>(in.slides);

  // Timing: two arrivals per augmented TDoA and two TDoAs per solve; the
  // four contributions are independent, so the TDoA-difference noise is
  // 2 * sigma_t in range units. Pairs share endpoint chirps only partially;
  // treating them as independent is the optimistic CRLB-style bound.
  const double dd_sigma = 2.0 * in.timing_sigma_s * in.sound_speed;
  out.timing = sensitivity * dd_sigma / std::sqrt(n_pairs);

  // Displacement: one D' estimate per slide; relative error maps to
  // relative range error.
  out.displacement = (in.range / in.slide_distance) * in.displacement_sigma /
                     std::sqrt(static_cast<double>(in.slides));

  // Residual rotation: enters the TDoA difference as D * psi (meters), so
  // it rides the same sensitivity as timing; one residual per pair.
  out.rotation =
      sensitivity * in.mic_separation * in.residual_yaw_sigma / std::sqrt(n_pairs);

  out.total = std::sqrt(out.timing * out.timing + out.displacement * out.displacement +
                        out.rotation * out.rotation);
  return out;
}

}  // namespace hyperear::core
