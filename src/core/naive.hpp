#pragma once

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "geom/vec2.hpp"

/// @file naive.hpp
/// The naive baseline of the paper's Section II (Figs. 2-3): localize with
/// the phone's two onboard microphones at two hand-separated positions,
/// with the TDoA quantized to the ADC grid and no sliding augmentation, no
/// sub-sample interpolation and no SFO handling. Used to reproduce the
/// ambiguity numbers of Section II-C (errors up to 18.6 cm at 1 m and
/// 266.7 cm at 5 m for a Galaxy S4).

namespace hyperear::core {

/// Baseline configuration.
struct NaiveOptions {
  double mic_separation = 0.1366;  ///< D (Galaxy S4 default)
  double move_distance = 0.15;     ///< hand move between the two poses (m)
  double sample_rate = 44100.0;
  double sound_speed = 343.0;
  bool quantize = true;            ///< snap TDoAs to the 1/fs grid
  /// Lateral scatter of the speaker around broadside across trials (m).
  double lateral_spread = 0.5;
  /// Quantized hyperbolas can be mutually inconsistent and intersect only
  /// at infinity; any deployable system bounds the answer to the building,
  /// so estimates beyond this range are pulled back onto the bound.
  double max_range = 20.0;
};

/// Localize one speaker at `truth` with the naive scheme. Mic pair 1 is
/// centered at the origin along x; pose 2 is shifted by move_distance
/// along x. Returns the estimated position.
[[nodiscard]] geom::Vec2 naive_localize(const geom::Vec2& truth, const NaiveOptions& options);

/// Monte-Carlo error study at range r: speaker positions are sampled near
/// broadside, localized naively, and scored. Returns the error summary.
[[nodiscard]] Summary naive_error_study(double range, int trials, Rng& rng,
                                        const NaiveOptions& options = {});

/// First-order analytic range ambiguity of a quantized two-pose scheme:
/// one TDoA quantum delta = S/fs maps to a range error of about
/// r^2 * delta / (D * baseline). Grows quadratically with range — the
/// "location ambiguity increases for far objects" of Fig. 3.
[[nodiscard]] double naive_range_ambiguity(double range, const NaiveOptions& options = {});

}  // namespace hyperear::core
