#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/asp.hpp"
#include "dsp/chirp.hpp"
#include "dsp/matched_filter.hpp"
#include "dsp/ols.hpp"

/// @file pipeline_context.hpp
/// The shared DSP plan cache of the localization pipeline.
///
/// Every quantity the ASP stage derives from the *configuration* alone —
/// the band-pass FIR taps and their overlap-save kernel spectrum, the
/// sampled matched-filter reference, the reversed reference's overlap-save
/// spectrum and the FFT twiddle/plan tables behind both — is independent of
/// the session being processed. A `PipelineContext` computes them once for a given
/// (AspOptions, ChirpParams, sample rate) triple; `core::try_localize`
/// and `asp::preprocess_audio` accept an optional context and fall back to
/// building a session-local one when none (or an incompatible one) is
/// supplied, so single-session callers keep working unchanged.
///
/// Threading rules: a constructed context is deeply immutable — every
/// accessor is const and the underlying detector/plan state is read-only —
/// so one instance may be shared by any number of concurrent pipeline
/// runs without synchronization. `runtime::BatchEngine` owns a small cache
/// of contexts (keyed by chirp parameters + sample rate) shared read-only
/// by all of its workers. Results are bit-identical with and without a
/// context: the context merely reuses the plans the planless path would
/// rebuild per session.

namespace hyperear::core {

struct PipelineConfig;

/// Immutable, shareable DSP plans for one (asp options, chirp, sample
/// rate) combination. Construction validates the inputs the same way the
/// per-session path does (throws PreconditionError on violations).
/// Deterministic 64-bit key of the (asp options, chirp, sample rate)
/// combination a context is built from — the shard/lookup key of
/// runtime::ContextCache. Pure function of the field values (FNV-1a over
/// their bit patterns), identical across runs and processes; equal inputs
/// hash equal, and `PipelineContext::matches` remains the authoritative
/// equality check behind any hash match.
[[nodiscard]] std::uint64_t plan_key_hash(const AspOptions& asp,
                                          const dsp::ChirpParams& chirp,
                                          double sample_rate);

class PipelineContext {
 public:
  PipelineContext(const AspOptions& asp, const dsp::ChirpParams& chirp,
                  double sample_rate);
  /// Convenience spelling: plans depend only on `config.asp`.
  PipelineContext(const PipelineConfig& config, const dsp::ChirpParams& chirp,
                  double sample_rate);

  /// True when the cached plans are exactly the ones this combination
  /// needs — the compatibility check callers use before reusing a context.
  [[nodiscard]] bool matches(const AspOptions& asp, const dsp::ChirpParams& chirp,
                             double sample_rate) const;

  [[nodiscard]] const AspOptions& asp_options() const { return asp_; }
  [[nodiscard]] const dsp::ChirpParams& chirp_params() const { return chirp_params_; }
  [[nodiscard]] double sample_rate() const { return sample_rate_; }
  [[nodiscard]] const dsp::Chirp& chirp() const { return chirp_; }
  /// Empty when `asp_options().bandpass` is false.
  [[nodiscard]] const std::vector<double>& bandpass_taps() const {
    return bandpass_taps_;
  }
  /// Overlap-save convolver for the band-pass taps (kernel spectrum + FFT
  /// plan at the block size chosen for the tap count), so per-session
  /// filtering never re-transforms the kernel. Disengaged when
  /// `asp_options().bandpass` is false.
  [[nodiscard]] const std::optional<dsp::OlsConvolver>& bandpass_convolver() const {
    return bandpass_ols_;
  }
  /// Matched-filter detector with the reference spectrum and FFT plans
  /// precomputed; `detect` is const and safe to call concurrently.
  [[nodiscard]] const dsp::MatchedFilterDetector& detector() const {
    return detector_;
  }

 private:
  AspOptions asp_;
  dsp::ChirpParams chirp_params_;
  double sample_rate_;
  dsp::Chirp chirp_;
  std::vector<double> bandpass_taps_;
  std::optional<dsp::OlsConvolver> bandpass_ols_;
  dsp::MatchedFilterDetector detector_;
};

}  // namespace hyperear::core
