#include "core/streaming_session.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "core/pipeline_context.hpp"
#include "core/pipeline_detail.hpp"
#include "core/session_workspace.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hyperear::core {

const char* to_string(StreamPhase phase) {
  switch (phase) {
    case StreamPhase::calibrating: return "calibrating";
    case StreamPhase::sliding_1: return "sliding_1";
    case StreamPhase::sliding_2: return "sliding_2";
    case StreamPhase::solving: return "solving";
    case StreamPhase::done: return "done";
  }
  return "unknown";
}

StreamingSession::StreamingSession(sim::Session meta, PipelineConfig config,
                                   std::shared_ptr<const PipelineContext> context,
                                   SessionWorkspace* workspace, SdfOptions sdf)
    : meta_(std::move(meta)),
      config_(config),
      sdf_(sdf),
      shared_context_(std::move(context)) {
  require(meta_.audio.mic1.empty() && meta_.audio.mic2.empty(),
          "StreamingSession: meta audio must be empty (samples arrive via push)");
  if (workspace != nullptr) {
    ws_ = workspace;
  } else {
    owned_workspace_ = std::make_unique<SessionWorkspace>();
    ws_ = owned_workspace_.get();
  }
  ws_->reset();
  // Same context rule as the batch path: a supplied context is authoritative
  // only when it matches this config + session; otherwise build
  // session-local plans. Plan failure is remembered, not thrown — finalize
  // classifies it as an asp-stage error in batch order (after the
  // empty-recording check), so the streamed and batch error taxonomies
  // agree.
  try {
    const double fs = meta_.audio.sample_rate;
    if (shared_context_ != nullptr &&
        shared_context_->matches(config_.asp, meta_.prior.chirp, fs)) {
      context_ = shared_context_.get();
    } else {
      local_context_.emplace(config_.asp, meta_.prior.chirp, fs);
      context_ = &*local_context_;
    }
  } catch (...) {
    ctx_error_ = std::current_exception();
  }
  if (context_ != nullptr) {
    for (std::size_t slot = 0; slot < 2; ++slot) {
      Channel& ch = channels_[slot];
      if (context_->asp_options().bandpass) {
        ch.filter.emplace(*context_->bandpass_convolver());
      }
      context_->detector().stream_begin(ch.stream, ws_->channel(slot).detector);
    }
  }
  slide1_mark_s_ = meta_.prior.calibration_duration;
  if (meta_.prior.two_statures && meta_.imu.size() > 0 && meta_.imu.sample_rate > 0.0) {
    // The protocol's second stature occupies the back half of the motion
    // record; the midpoint between the calibration head and the IMU end is
    // a meta-derived (hence chunking-invariant) stand-in for the actual
    // stature-change instant, which only the solve can estimate.
    const double imu_end =
        static_cast<double>(meta_.imu.size()) / meta_.imu.sample_rate;
    slide2_mark_s_ = 0.5 * (slide1_mark_s_ + std::max(imu_end, slide1_mark_s_));
  }
}

void StreamingSession::push(std::span<const double> mic1, std::span<const double> mic2) {
  require(!finalized_, "StreamingSession: push after finalize");
  require(mic1.size() == mic2.size(),
          "StreamingSession: channel slices must have equal lengths");
  if (mic1.empty()) return;
  total_ += mic1.size();
  // Plans failed to build: keep counting samples (finalize reports errors
  // in batch order) but retain nothing — memory stays bounded even for a
  // stream that can never be processed.
  if (context_ == nullptr) return;
  const obs::MonotonicTime t0 = obs::monotonic_now();
  append_filtered(channels_[0], mic1);
  append_filtered(channels_[1], mic2);
  run_detector(false);
  note_retained();
  asp_ms_ += obs::ms_since(t0);
}

void StreamingSession::append_filtered(Channel& ch, std::span<const double> chunk) {
  if (ch.filter) {
    const std::size_t slot = &ch == &channels_[0] ? 0 : 1;
    ch.filter->push(chunk, ch.ring, ws_->channel(slot).detector.fft);
  } else {
    // No band-pass: the detector reads the raw signal, exactly like the
    // batch path's non-bandpass branch.
    ch.ring.insert(ch.ring.end(), chunk.begin(), chunk.end());
  }
  ch.ring_total = ch.ring_start + ch.ring.size();
}

void StreamingSession::run_detector(bool drain_all) {
  const dsp::MatchedFilterDetector& det = context_->detector();
  const std::size_t ref_len = det.reference().size();
  const std::size_t chunk = det.config().chunk;
  for (;;) {
    const std::size_t start = next_chunk_start_;
    std::size_t end = 0;
    bool final_chunk = false;
    if (!drain_all) {
      // Eager rule: process the schedule's next chunk only when STRICTLY
      // more than its end has been filtered — then the chunk is certainly
      // full and certainly not the recording's last, so `final_chunk =
      // false` matches what the batch loop will decide once the true
      // length is known.
      const std::size_t avail =
          std::min(channels_[0].ring_total, channels_[1].ring_total);
      if (avail <= start + chunk) break;
      end = start + chunk;
    } else {
      // End of stream: the final length is known, so this is verbatim the
      // batch `detect_into` schedule over the (at most one) remaining
      // chunk.
      const std::size_t n = channels_[0].ring_total;
      if (start >= n) break;
      end = std::min(start + chunk, n);
      if (end - start < ref_len) break;
      final_chunk = end == n;
    }
    for (std::size_t slot = 0; slot < 2; ++slot) {
      Channel& ch = channels_[slot];
      const std::span<const double> seg(ch.ring.data() + (start - ch.ring_start),
                                        end - start);
      det.stream_chunk(seg, final_chunk, ch.stream, ws_->channel(slot).detector);
      collect_candidates(slot, ch);
    }
    next_chunk_start_ = channels_[0].stream.next_start;
    scan_zero_crossings(false);
    advance_phase(end);
    // After the recording's last chunk the detector's schedule cursor may
    // point past the end of the signal; nothing further reads the rings, so
    // compacting would erase past ring.end(). Stop before compaction.
    if (final_chunk) break;
    // Compact the rings below the next chunk's start. This branch runs at
    // most once per detector hop (~one chunk of samples), so the erase is
    // O(1) amortized per incoming sample and each ring holds about one
    // detector chunk at its peak.
    for (Channel& ch : channels_) {
      if (next_chunk_start_ > ch.ring_start) {
        ch.ring.erase(ch.ring.begin(),
                      ch.ring.begin() +
                          static_cast<std::ptrdiff_t>(next_chunk_start_ - ch.ring_start));
        ch.ring_start = next_chunk_start_;
      }
    }
  }
}

void StreamingSession::collect_candidates(std::size_t slot, Channel& ch) {
  const dsp::DetectorWorkspace& dws = ws_->channel(slot).detector;
  for (std::size_t i = ch.candidates_seen; i < dws.candidates.size(); ++i) {
    const dsp::Detection& d = dws.candidates[i].detection;
    if (ch.live.empty()) {
      events_.push_back({StreamEvent::Kind::beacon_acquired, slot, d.time_s, phase_,
                         false, 0.0});
    }
    ch.live.push_back({d.time_s, d.score, d.amplitude, d.echo_competition});
  }
  ch.candidates_seen = dws.candidates.size();
}

void StreamingSession::scan_zero_crossings(bool final_pass) {
  // Re-pair the provisional per-mic arrival streams into a TDoA trace with
  // `pair_inter_mic_tdoas`' exact two-pointer rule, tracking which prefix
  // of the trace can no longer change: a mic1 event's pairing is settled
  // once its nearest-mic2 scan stopped on a comparison (not on running out
  // of mic2 events) — appended events can then never be reached. Crossings
  // are emitted only from that settled prefix (plus the lookahead the
  // swing gate needs), so the event stream is invariant to chunking; the
  // final pass at finalize() emits the rest.
  const std::vector<ChirpEvent>& m1 = channels_[0].live;
  const std::vector<ChirpEvent>& m2 = channels_[1].live;
  tdoa_scratch_.clear();
  std::size_t stable = 0;
  std::size_t j = 0;
  bool settled_so_far = true;
  for (const ChirpEvent& e1 : m1) {
    while (j + 1 < m2.size() &&
           std::abs(m2[j + 1].time_s - e1.time_s) <=
               std::abs(m2[j].time_s - e1.time_s)) {
      ++j;
    }
    if (j >= m2.size()) break;
    // The scan stopped because it ran out of mic2 events, not because the
    // next one was farther: a future mic2 arrival could re-pair this and
    // every later mic1 event.
    if (j + 1 >= m2.size()) settled_so_far = false;
    const double dt = e1.time_s - m2[j].time_s;
    if (std::abs(dt) <= sdf_.max_pairing_offset_s) {
      tdoa_scratch_.push_back({0.5 * (e1.time_s + m2[j].time_s), dt});
    }
    if (settled_so_far) stable = tdoa_scratch_.size();
  }
  const std::size_t n = tdoa_scratch_.size();
  // The swing gate of core::find_direction reads up to 3 samples past the
  // crossing, so a non-final scan stops 3 short of the settled prefix.
  const std::size_t scan_end = final_pass ? n : (stable >= 4 ? stable - 3 : 0);
  for (std::size_t i = crossing_cursor_; i < scan_end; ++i) {
    const TdoaSample& a = tdoa_scratch_[i - 1];
    const TdoaSample& b = tdoa_scratch_[i];
    if (a.tdoa_s == 0.0 && b.tdoa_s == 0.0) continue;
    if (a.tdoa_s * b.tdoa_s > 0.0) continue;
    const std::size_t lo = i >= 4 ? i - 4 : 0;
    const std::size_t hi = std::min(i + 3, n - 1);
    const double swing = tdoa_scratch_[hi].tdoa_s - tdoa_scratch_[lo].tdoa_s;
    if (std::abs(swing) < sdf_.min_swing_s) continue;
    const double span = b.tdoa_s - a.tdoa_s;
    const double frac = span != 0.0 ? -a.tdoa_s / span : 0.5;
    events_.push_back({StreamEvent::Kind::sdf_zero_cross, 0,
                       lerp(a.time_s, b.time_s, frac), phase_, false, 0.0});
  }
  crossing_cursor_ = std::max(crossing_cursor_, scan_end);
}

void StreamingSession::advance_phase(std::size_t frontier_samples) {
  const double fs = meta_.audio.sample_rate;
  if (fs <= 0.0) return;
  const double t = static_cast<double>(frontier_samples) / fs;
  if (phase_ == StreamPhase::calibrating && t >= slide1_mark_s_) {
    phase_ = StreamPhase::sliding_1;
    events_.push_back(
        {StreamEvent::Kind::phase_change, 0, slide1_mark_s_, phase_, false, 0.0});
  }
  if (phase_ == StreamPhase::sliding_1 && slide2_mark_s_ > 0.0 &&
      t >= slide2_mark_s_) {
    phase_ = StreamPhase::sliding_2;
    events_.push_back(
        {StreamEvent::Kind::phase_change, 0, slide2_mark_s_, phase_, false, 0.0});
  }
}

void StreamingSession::note_retained() {
  peak_retained_ = std::max(peak_retained_, retained_samples());
}

std::size_t StreamingSession::retained_samples() const {
  std::size_t held = 0;
  for (const Channel& ch : channels_) {
    held += ch.ring.size();
    if (ch.filter) held += ch.filter->retained();
  }
  return held;
}

Expected<LocalizationResult, PipelineError> StreamingSession::finalize(
    StageMetrics* metrics, const obs::ObsContext* obs) {
  require(!finalized_, "StreamingSession: finalize called twice");
  finalized_ = true;

  StageMetrics local;
  local.asp_ms = asp_ms_;
  if (metrics != nullptr) *metrics = local;

  obs::MetricsRegistry* registry = obs != nullptr ? obs->metrics : nullptr;
  obs::Tracer* tracer = obs != nullptr ? obs->tracer : nullptr;
  const std::uint64_t sid = obs != nullptr ? obs->session_id : 0;
  obs::TraceSpan session_span(tracer, "session", sid);

  if (std::optional<PipelineError> bad = config_.validate()) {
    if (registry != nullptr) {
      detail::record_pipeline_metrics(*registry, local, nullptr, &*bad);
    }
    phase_ = StreamPhase::done;
    return make_unexpected(*std::move(bad));
  }

  AspResult asp;
  try {
    obs::TraceSpan span(tracer, "asp", sid, &session_span);
    const obs::MonotonicTime t0 = obs::monotonic_now();
    // Batch error order: the empty-recording precondition fires before any
    // plan problem (preprocess_audio checks the recording before building
    // a context).
    require(total_ > 0, "preprocess_audio: bad recording");
    if (ctx_error_) std::rethrow_exception(ctx_error_);
    for (std::size_t slot = 0; slot < 2; ++slot) {
      Channel& ch = channels_[slot];
      if (ch.filter) {
        ch.filter->finish(ch.ring, ws_->channel(slot).detector.fft);
        ch.ring_total = ch.ring_start + ch.ring.size();
      }
    }
    run_detector(true);
    note_retained();
    scan_zero_crossings(true);
    advance_phase(total_);
    for (std::size_t slot = 0; slot < 2; ++slot) {
      Channel& ch = channels_[slot];
      ChannelWorkspace& cw = ws_->channel(slot);
      context_->detector().stream_end(ch.stream, cw.detector, cw.detections, obs);
      convert_chirp_events(cw.detections, slot == 0 ? asp.mic1 : asp.mic2);
    }
    finish_asp(asp, meta_.prior.nominal_period, meta_.prior.calibration_duration,
               config_.asp, ws_->arena(), obs);
    local.asp_ms = asp_ms_ + obs::ms_since(t0);
    local.chirps_mic1 = asp.mic1.size();
    local.chirps_mic2 = asp.mic2.size();
    local.sfo_estimated = asp.sfo_estimated;
  } catch (const std::exception& e) {
    if (metrics != nullptr) *metrics = local;
    PipelineError error = error_from_exception(e, PipelineStage::asp);
    if (registry != nullptr) {
      detail::record_pipeline_metrics(*registry, local, nullptr, &error);
    }
    phase_ = StreamPhase::done;
    return make_unexpected(std::move(error));
  }

  const double end_time_s = meta_.audio.sample_rate > 0.0
                                ? static_cast<double>(total_) / meta_.audio.sample_rate
                                : 0.0;
  phase_ = StreamPhase::solving;
  events_.push_back(
      {StreamEvent::Kind::phase_change, 0, end_time_s, phase_, false, 0.0});

  Expected<LocalizationResult, PipelineError> r =
      detail::localize_from_asp(asp, meta_, config_, local, obs, &session_span);
  if (metrics != nullptr) *metrics = local;

  if (r.has_value()) {
    // Deterministic confidence: a pure function of the result, so the fix
    // event is chunking- and thread-invariant. The paper's protocol asks
    // for five slides per stature; a fix standing on all of them earns
    // full confidence, fewer accepted slides proportionally less.
    const double conf =
        r->valid ? std::min(1.0, static_cast<double>(r->slides_used) / 5.0) : 0.0;
    events_.push_back(
        {StreamEvent::Kind::fix, 0, end_time_s, phase_, r->valid, conf});
  }
  phase_ = StreamPhase::done;
  events_.push_back(
      {StreamEvent::Kind::phase_change, 0, end_time_s, phase_, false, 0.0});
  return r;
}

}  // namespace hyperear::core
