#pragma once

#include <vector>

#include "core/asp.hpp"
#include "geom/triangulation.hpp"
#include "geom/vec2.hpp"
#include "imu/displacement.hpp"
#include "imu/preprocess.hpp"
#include "imu/segmentation.hpp"
#include "sim/scenario.hpp"

/// @file ttl.hpp
/// 2D TDoA Localization (paper Section VI-A). For every slide found by the
/// motion segmentation:
///
///  1. PDE estimates the sliding distance D' and the z-rotation;
///  2. endpoint chirps — arrivals while the phone dwells just before and
///     just after the slide — give one augmented TDoA per microphone:
///     dt'_m = t_after - t_before - n * T-hat (the SFO-corrected period);
///  3. the two augmented hyperbolas (Eqs. 5-6) are intersected to get the
///     speaker's position (x along the slide axis, L perpendicular to it);
///  4. every pre/post chirp pair yields one solution; the per-slide result
///     is the median, and the session result the median over the slides
///     accepted by the paper's quality gate (estimated distance above a
///     threshold, z-rotation under 20 degrees).
///
/// Slide imperfections displace both microphones identically, so they enter
/// dt'_1 and dt'_2 as common mode and largely cancel in the triangulation —
/// the property Section I argues makes hand operation viable.

namespace hyperear::core {

/// TTL configuration.
struct TtlOptions {
  /// Quality gate: minimum estimated slide distance (m). The paper accepts
  /// slides over 50 cm; benches that sweep the slide length set this to 0.
  double min_slide_distance = 0.0;
  /// Quality gate: maximum |integrated z rotation| during a slide (degrees).
  double max_z_rotation_deg = 20.0;
  double chirp_duration_s = 0.05;   ///< the beacon chirp length
  double guard_s = 0.03;            ///< dead time around a slide
  double lookback_s = 1.1;          ///< dwell window searched for endpoint chirps
  std::size_t max_pairs = 16;       ///< cap on pre x post chirp pairs per slide
  double max_range = 40.0;          ///< reject solutions beyond this (m)
  double pairing_slack_s = 0.7e-3;  ///< inter-mic pairing window ~ D/S + slack
  /// Rotation error correction (the "Augmented TDoA with Rotation Error
  /// Corrected" box of the paper's Fig. 5): a yaw change between the two
  /// endpoint chirps moves the mics in opposite directions along the line
  /// of sight, adding +-(D/2)*sin(yaw) to the two augmented TDoAs. The
  /// gyro-integrated yaw (bias-corrected on the calibration head) removes
  /// it. Ablation toggle.
  bool rotation_correction = true;
  /// Detrend cutoff for the gyro-z bias removal (Hz); must sit well below
  /// the hand-wander band so yaw differences over a few seconds survive.
  double gyro_detrend_hz = 0.05;
  imu::SegmentationOptions segmentation;
  imu::DisplacementOptions displacement;
};

/// Everything measured from one slide.
struct SlideMeasurement {
  imu::SlideEstimate motion;      ///< PDE output (displacement, rotation, ...)
  double t_start = 0.0;           ///< slide interval in session time
  double t_end = 0.0;
  int pairs_used = 0;             ///< chirp pairs that produced a solution
  bool accepted = false;          ///< passed the quality gate
  geom::Vec2 local_position;      ///< median (x, L) in the canonical frame
  double range_l = 0.0;           ///< = local_position.y (radial distance)
  /// Believed world geometry of this slide (floor map, meters).
  geom::Vec2 origin_xy;           ///< center of the reference mic's two positions
  geom::Vec2 slide_axis_xy;       ///< unit x-hat of the canonical frame
  geom::Vec2 lateral_axis_xy;     ///< unit y-hat (toward the speaker side)
  geom::Vec2 world_position;      ///< speaker estimate from this slide alone
};

/// Session-level 2D localization result.
struct TtlResult {
  bool valid = false;
  std::vector<SlideMeasurement> slides;  ///< all segmented slides
  int accepted_count = 0;
  double aggregated_l = 0.0;             ///< median L over accepted slides
  geom::Vec2 estimated_position;         ///< median world estimate
};

/// Measure every slide in the session (segmentation + PDE + augmented TDoA
/// + per-slide triangulation). Used by both the 2D aggregation below and
/// the 3D scheme in ple.hpp.
[[nodiscard]] std::vector<SlideMeasurement> measure_slides(
    const AspResult& asp, const imu::MotionSignals& motion,
    const sim::Session::Prior& prior, double mic_separation, const TtlOptions& options);

/// Aggregate a set of measured slides (restricted to those with
/// t_start in [window_start, window_end)) into one 2D estimate.
[[nodiscard]] TtlResult aggregate_slides(const std::vector<SlideMeasurement>& slides,
                                         double window_start, double window_end);

/// Full 2D localization: measure + aggregate over the whole session.
[[nodiscard]] TtlResult localize_2d(const AspResult& asp,
                                    const imu::MotionSignals& motion,
                                    const sim::Session::Prior& prior,
                                    double mic_separation, const TtlOptions& options = {});

}  // namespace hyperear::core
