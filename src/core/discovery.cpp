#include "core/discovery.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/chirp.hpp"
#include "dsp/matched_filter.hpp"

namespace hyperear::core {

std::vector<TagPresence> discover_tags(const std::vector<double>& recording,
                                       double sample_rate,
                                       const std::vector<TagSignature>& candidates,
                                       const DiscoveryOptions& options) {
  require(!recording.empty(), "discover_tags: empty recording");
  require(sample_rate > 0.0, "discover_tags: bad sample rate");
  std::vector<TagPresence> out;
  out.reserve(candidates.size());
  for (const TagSignature& tag : candidates) {
    TagPresence p;
    p.name = tag.name;
    const dsp::Chirp chirp(tag.spec.chirp);
    dsp::DetectorConfig cfg;
    cfg.sample_rate = sample_rate;
    cfg.threshold = options.detector_threshold;
    cfg.min_spacing_s = 0.5 * tag.spec.period_s;
    const dsp::MatchedFilterDetector detector(chirp.reference(sample_rate), cfg);
    const std::vector<dsp::Detection> hits = detector.detect(recording);
    p.detections = hits.size();
    if (hits.size() >= options.min_detections) {
      std::vector<double> gaps, amps;
      for (std::size_t i = 1; i < hits.size(); ++i) {
        gaps.push_back(hits[i].time_s - hits[i - 1].time_s);
      }
      for (const dsp::Detection& h : hits) amps.push_back(h.amplitude);
      // Gaps across missed chirps are integer multiples of the period;
      // reduce each to its remainder around the nearest multiple.
      std::vector<double> residuals;
      for (double g : gaps) {
        const double n = std::max(1.0, std::round(g / tag.spec.period_s));
        residuals.push_back(std::abs(g / n - tag.spec.period_s));
      }
      p.period_error_s = median(residuals);
      p.median_amplitude = median(amps);
      p.present = p.period_error_s <= options.max_period_error_s;
    }
    out.push_back(p);
  }
  return out;
}

}  // namespace hyperear::core
