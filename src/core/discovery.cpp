#include "core/discovery.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/chirp.hpp"
#include "dsp/matched_filter.hpp"

namespace hyperear::core {

DiscoveryContext::DiscoveryContext(std::vector<TagSignature> candidates,
                                   double sample_rate, const DiscoveryOptions& options)
    : candidates_(std::move(candidates)), options_(options), sample_rate_(sample_rate) {
  require(sample_rate_ > 0.0, "DiscoveryContext: bad sample rate");
  detectors_.reserve(candidates_.size());
  for (const TagSignature& tag : candidates_) {
    const dsp::Chirp chirp(tag.spec.chirp);
    dsp::DetectorConfig cfg;
    cfg.sample_rate = sample_rate_;
    cfg.threshold = options_.detector_threshold;
    cfg.min_spacing_s = 0.5 * tag.spec.period_s;
    detectors_.emplace_back(chirp.reference(sample_rate_), cfg);
  }
}

const dsp::MatchedFilterDetector& DiscoveryContext::detector(std::size_t i) const {
  require(i < detectors_.size(), "DiscoveryContext: tag index out of range");
  return detectors_[i];
}

std::vector<TagPresence> discover_tags(const std::vector<double>& recording,
                                       double sample_rate,
                                       const std::vector<TagSignature>& candidates,
                                       const DiscoveryOptions& options) {
  return discover_tags(recording, DiscoveryContext(candidates, sample_rate, options));
}

std::vector<TagPresence> discover_tags(const std::vector<double>& recording,
                                       const DiscoveryContext& context) {
  require(!recording.empty(), "discover_tags: empty recording");
  const DiscoveryOptions& options = context.options();
  std::vector<TagPresence> out;
  out.reserve(context.candidates().size());
  for (std::size_t t = 0; t < context.candidates().size(); ++t) {
    const TagSignature& tag = context.candidates()[t];
    TagPresence p;
    p.name = tag.name;
    const std::vector<dsp::Detection> hits = context.detector(t).detect(recording);
    p.detections = hits.size();
    if (hits.size() >= options.min_detections) {
      std::vector<double> gaps, amps;
      for (std::size_t i = 1; i < hits.size(); ++i) {
        gaps.push_back(hits[i].time_s - hits[i - 1].time_s);
      }
      for (const dsp::Detection& h : hits) amps.push_back(h.amplitude);
      // Gaps across missed chirps are integer multiples of the period;
      // reduce each to its remainder around the nearest multiple.
      std::vector<double> residuals;
      for (double g : gaps) {
        const double n = std::max(1.0, std::round(g / tag.spec.period_s));
        residuals.push_back(std::abs(g / n - tag.spec.period_s));
      }
      p.period_error_s = median(residuals);
      p.median_amplitude = median(amps);
      p.present = p.period_error_s <= options.max_period_error_s;
    }
    out.push_back(p);
  }
  return out;
}

}  // namespace hyperear::core
