#pragma once

#include <string>
#include <vector>

#include "dsp/matched_filter.hpp"
#include "sim/acoustic_renderer.hpp"
#include "sim/speaker.hpp"

/// @file discovery.hpp
/// Beacon discovery: which tags are transmitting, before any localization.
///
/// In an FDMA multi-tag deployment (see examples/multi_tag.cpp) the app
/// first needs to know which of its registered tags is audible at all. A
/// few seconds of recording suffice: each candidate's chirp band is scanned
/// with that tag's matched filter and accepted when a periodic train of
/// arrivals at the tag's beacon period shows up.

namespace hyperear::core {

/// A registered tag to scan for.
struct TagSignature {
  std::string name;
  sim::SpeakerSpec spec;
};

/// Scan verdict per tag.
struct TagPresence {
  std::string name;
  bool present = false;
  std::size_t detections = 0;     ///< matched-filter arrivals found
  double period_error_s = 0.0;    ///< |median inter-arrival - nominal period|
  double median_amplitude = 0.0;
};

/// Discovery configuration.
struct DiscoveryOptions {
  /// Minimum arrivals to call a tag present.
  std::size_t min_detections = 6;
  /// Maximum deviation of the median inter-arrival gap from the tag's
  /// nominal period (seconds) — rejects accidental correlations.
  double max_period_error_s = 2e-3;
  double detector_threshold = 0.22;
};

/// Precomputed per-tag matched-filter plans for repeated scans: a guided
/// search or a batch service scans every incoming recording against the
/// same registered tags, and rebuilding each tag's reference + FFT plan
/// per scan is pure waste. Immutable after construction; share one
/// instance read-only across threads.
class DiscoveryContext {
 public:
  DiscoveryContext(std::vector<TagSignature> candidates, double sample_rate,
                   const DiscoveryOptions& options = {});

  [[nodiscard]] const std::vector<TagSignature>& candidates() const {
    return candidates_;
  }
  [[nodiscard]] const DiscoveryOptions& options() const { return options_; }
  [[nodiscard]] double sample_rate() const { return sample_rate_; }
  /// Detector for candidates()[i].
  [[nodiscard]] const dsp::MatchedFilterDetector& detector(std::size_t i) const;

 private:
  std::vector<TagSignature> candidates_;
  DiscoveryOptions options_;
  double sample_rate_ = 0.0;
  std::vector<dsp::MatchedFilterDetector> detectors_;
};

/// Scan one mic channel of a recording for every candidate tag.
[[nodiscard]] std::vector<TagPresence> discover_tags(
    const std::vector<double>& recording, double sample_rate,
    const std::vector<TagSignature>& candidates, const DiscoveryOptions& options = {});

/// Same scan through precomputed plans: use when the same tag set is
/// scanned repeatedly. Results are identical to the plan-free overload.
[[nodiscard]] std::vector<TagPresence> discover_tags(
    const std::vector<double>& recording, const DiscoveryContext& context);

}  // namespace hyperear::core
