#include "core/sdf.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace hyperear::core {

std::vector<TdoaSample> pair_inter_mic_tdoas(const AspResult& asp, double max_offset_s) {
  require(max_offset_s > 0.0, "pair_inter_mic_tdoas: bad pairing window");
  std::vector<TdoaSample> out;
  std::size_t j = 0;
  for (const ChirpEvent& e1 : asp.mic1) {
    // Advance to the nearest mic2 event.
    while (j + 1 < asp.mic2.size() &&
           std::abs(asp.mic2[j + 1].time_s - e1.time_s) <=
               std::abs(asp.mic2[j].time_s - e1.time_s)) {
      ++j;
    }
    if (j >= asp.mic2.size()) break;
    const double dt = e1.time_s - asp.mic2[j].time_s;
    if (std::abs(dt) <= max_offset_s) {
      out.push_back({0.5 * (e1.time_s + asp.mic2[j].time_s), dt});
    }
  }
  return out;
}

double integrated_yaw_at(const imu::MotionSignals& motion, double t) {
  require(motion.size() >= 2, "integrated_yaw_at: record too short");
  const double dt = motion.dt();
  const double t_clamped = clamp(t, 0.0, static_cast<double>(motion.size() - 1) * dt);
  double yaw = 0.0;
  const auto full = static_cast<std::size_t>(t_clamped / dt);
  for (std::size_t i = 0; i + 1 <= full && i + 1 < motion.size(); ++i) {
    yaw += 0.5 * (motion.gyro_z[i] + motion.gyro_z[i + 1]) * dt;
  }
  // Fractional tail.
  if (full + 1 < motion.size()) {
    const double frac = t_clamped - static_cast<double>(full) * dt;
    yaw += motion.gyro_z[full] * frac;
  }
  return yaw;
}

SdfResult find_direction(const AspResult& asp, const imu::MotionSignals& motion,
                         const SdfOptions& options) {
  SdfResult result;
  result.samples = pair_inter_mic_tdoas(asp, options.max_pairing_offset_s);
  if (result.samples.size() < 3) return result;

  // Scan for sign changes in the TDoA trace. A genuine crossing has small
  // values right at the zero, so the noise gate evaluates the swing over a
  // +-3 sample neighbourhood rather than the adjacent pair.
  const std::size_t n = result.samples.size();
  for (std::size_t i = 1; i < n; ++i) {
    const TdoaSample& a = result.samples[i - 1];
    const TdoaSample& b = result.samples[i];
    if (a.tdoa_s == 0.0 && b.tdoa_s == 0.0) continue;
    if (a.tdoa_s * b.tdoa_s > 0.0) continue;
    const std::size_t lo = i >= 4 ? i - 4 : 0;
    const std::size_t hi = std::min(i + 3, n - 1);
    const double swing = result.samples[hi].tdoa_s - result.samples[lo].tdoa_s;
    if (std::abs(swing) < options.min_swing_s) continue;
    // Linear interpolation of the crossing time.
    const double span = b.tdoa_s - a.tdoa_s;
    const double frac = span != 0.0 ? -a.tdoa_s / span : 0.5;
    result.found = true;
    result.crossing_time_s = lerp(a.time_s, b.time_s, frac);
    // Side disambiguation: tdoa = -D cos(alpha)/S with alpha = 90 + yaw for
    // a speaker on +x. Its time derivative at the crossing is
    // (D/S) * cos(yaw) * yaw_rate, so a rising crossing means +x only when
    // the phone was rotating counter-clockwise; read the sign off the gyro.
    const auto idx = static_cast<std::size_t>(
        clamp(result.crossing_time_s / motion.dt(), 0.0,
              static_cast<double>(motion.size() - 1)));
    const double yaw_rate = motion.gyro_z[idx];
    result.speaker_on_positive_x = (swing > 0.0) == (yaw_rate > 0.0);
    result.yaw_rad = integrated_yaw_at(motion, result.crossing_time_s);
    return result;
  }
  return result;
}

}  // namespace hyperear::core
