#include "core/status.hpp"

#include "common/error.hpp"

namespace hyperear::core {

// The derived counts must track the enums: whoever appends an enumerator
// after `internal`/`aggregate` has to move the sentinel the counts are
// computed from (and teach the to_string switches below the new name —
// -Wswitch turns a missed case into a warning).
static_assert(kErrorCategoryCount == 5,
              "ErrorCategory changed: update kErrorCategoryCount's anchor "
              "(last enumerator), to_string, and the stats-view tests");
static_assert(kPipelineStageCount == 6,
              "PipelineStage changed: update kPipelineStageCount's anchor "
              "(last enumerator) and to_string");

const char* to_string(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::precondition: return "precondition";
    case ErrorCategory::numerical: return "numerical";
    case ErrorCategory::detection: return "detection";
    case ErrorCategory::config: return "config";
    case ErrorCategory::internal: return "internal";
  }
  return "internal";
}

const char* to_string(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::config: return "config";
    case PipelineStage::asp: return "asp";
    case PipelineStage::msp: return "msp";
    case PipelineStage::ttl: return "ttl";
    case PipelineStage::ple: return "ple";
    case PipelineStage::aggregate: return "aggregate";
  }
  return "config";
}

std::string describe(const PipelineError& error) {
  return std::string("[") + to_string(error.stage) + "] " + to_string(error.category) +
         ": " + error.message;
}

ErrorCategory classify_exception(const std::exception& e) {
  // Order matters: most-derived first. InvariantError (a failed HE_* contract
  // in a checked build) derives from PreconditionError and shares its
  // category — the branch is explicit so the taxonomy names every Error
  // subclass even though the base-class test below would also catch it.
  if (dynamic_cast<const InvariantError*>(&e) != nullptr) {
    return ErrorCategory::precondition;
  }
  if (dynamic_cast<const PreconditionError*>(&e) != nullptr) {
    return ErrorCategory::precondition;
  }
  if (dynamic_cast<const NumericalError*>(&e) != nullptr) {
    return ErrorCategory::numerical;
  }
  if (dynamic_cast<const DetectionError*>(&e) != nullptr) {
    return ErrorCategory::detection;
  }
  return ErrorCategory::internal;
}

PipelineError error_from_exception(const std::exception& e, PipelineStage stage) {
  return {classify_exception(e), stage, e.what()};
}

void rethrow(const PipelineError& error) {
  switch (error.category) {
    case ErrorCategory::precondition:
    case ErrorCategory::config:
      throw PreconditionError(error.message);
    case ErrorCategory::numerical:
      throw NumericalError(error.message);
    case ErrorCategory::detection:
      throw DetectionError(error.message);
    case ErrorCategory::internal:
      throw Error(error.message);
  }
  throw Error(error.message);
}

}  // namespace hyperear::core
