#pragma once

#include "core/asp.hpp"

/// @file nlos.hpp
/// Line-of-sight assessment (extension of the paper's Section IX, which
/// lists the LoS assumption as a limitation and proposes exploiting user
/// mobility).
///
/// With a clear line of sight the dominant matched-filter arrival is the
/// direct path: its inter-microphone TDoA is nearly constant through a
/// session (the phone translates, so the bearing barely moves), and its
/// amplitude is steady. When an obstruction blocks the direct path, the
/// strongest arrival is whichever reflection wins at the current pose —
/// different reflections arrive from different directions, so the inter-mic
/// TDoA of the dominant arrival jumps by large fractions of +-D/S across
/// the session, and the amplitude churns. Both dispersions are cheap,
/// range-free NLoS cues; when they trip, the app should ask the user to
/// step sideways and retry (see examples/nlos_recovery.cpp).

namespace hyperear::core {

/// Thresholds for the LoS test.
struct NlosOptions {
  /// Pairing window for inter-mic TDoAs (~D/S plus slack).
  double pairing_slack_s = 0.7e-3;
  /// Median absolute deviation of the inter-mic TDoA above which the
  /// session looks NLoS (seconds). LoS sessions stay within a few us.
  double tdoa_mad_threshold_s = 40e-6;
  /// Relative amplitude MAD (MAD / median) above which amplitude churn
  /// corroborates an obstruction.
  double amplitude_dispersion_threshold = 0.35;
  /// Median echo-competition ratio (runner-up arrival / winner) above which
  /// the winner does not look like a clear direct path. The z-mirrored
  /// floor/ceiling bounces preserve azimuth (so the TDoA cue misses them),
  /// but an obstructed session's winning reflection always has near-peer
  /// competitors; a clear direct path dominates its window.
  double echo_competition_threshold = 0.42;
  /// Minimum paired events for a verdict.
  std::size_t min_events = 8;
};

/// Result of the LoS assessment.
struct NlosAssessment {
  bool enough_data = false;
  bool suspected = false;            ///< overall verdict
  double tdoa_mad_s = 0.0;           ///< inter-mic TDoA dispersion
  double amplitude_dispersion = 0.0; ///< MAD/median of arrival amplitudes
  double echo_competition = 0.0;     ///< median runner-up/winner ratio
  std::size_t events = 0;
};

/// Assess whether the session's dominant arrivals look like a direct path.
[[nodiscard]] NlosAssessment assess_line_of_sight(const AspResult& asp,
                                                  const NlosOptions& options = {});

}  // namespace hyperear::core
