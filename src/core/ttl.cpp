#include "core/ttl.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "dsp/biquad.hpp"

namespace hyperear::core {

namespace {

/// A chirp heard by both microphones at (nearly) the same instant.
struct PairedChirp {
  double t_mic1 = 0.0;
  double t_mic2 = 0.0;
};

/// Pair mic1/mic2 events inside a time window [lo, hi] (event start times).
std::vector<PairedChirp> paired_events_in(const AspResult& asp, double lo, double hi,
                                          double slack) {
  std::vector<PairedChirp> out;
  std::size_t j = 0;
  for (const ChirpEvent& e1 : asp.mic1) {
    if (e1.time_s < lo) continue;
    if (e1.time_s > hi) break;
    while (j + 1 < asp.mic2.size() &&
           std::abs(asp.mic2[j + 1].time_s - e1.time_s) <=
               std::abs(asp.mic2[j].time_s - e1.time_s)) {
      ++j;
    }
    if (j >= asp.mic2.size()) break;
    if (std::abs(asp.mic2[j].time_s - e1.time_s) <= slack) {
      out.push_back({e1.time_s, asp.mic2[j].time_s});
    }
  }
  return out;
}

double median_of(std::vector<double>& v) { return median(v); }

/// Integrated gyro-z yaw for the rotation correction, sampled at the IMU
/// rate. The correction only needs yaw *differences* over a few seconds, so
/// the gyro bias (DC) is removed exactly by detrending: subtract the
/// session mean, then zero-phase high-pass well below the hand-wander band.
/// Estimating the bias from a finite static window would instead leak the
/// wander itself into the bias and poison the correction.
std::vector<double> integrated_yaw(const imu::MotionSignals& motion, double detrend_hz) {
  const double dt = motion.dt();
  std::vector<double> rate(motion.gyro_z.begin(), motion.gyro_z.end());
  const double bias0 = mean(rate);
  for (auto& r : rate) r -= bias0;
  dsp::ButterworthCascade hp(dsp::ButterworthCascade::Kind::kHighpass, 2, detrend_hz,
                             motion.sample_rate);
  rate = hp.filtfilt(rate);
  std::vector<double> yaw(motion.size(), 0.0);
  for (std::size_t i = 1; i < motion.size(); ++i) {
    yaw[i] = yaw[i - 1] + 0.5 * (rate[i - 1] + rate[i]) * dt;
  }
  return yaw;
}

double yaw_at(const std::vector<double>& yaw, double t, double dt) {
  if (yaw.empty()) return 0.0;
  const double idx = std::clamp(t / dt, 0.0, static_cast<double>(yaw.size() - 1));
  const auto i0 = static_cast<std::size_t>(idx);
  if (i0 + 1 >= yaw.size()) return yaw.back();
  const double frac = idx - static_cast<double>(i0);
  return yaw[i0] + frac * (yaw[i0 + 1] - yaw[i0]);
}

}  // namespace

std::vector<SlideMeasurement> measure_slides(const AspResult& asp,
                                             const imu::MotionSignals& motion,
                                             const sim::Session::Prior& prior,
                                             double mic_separation,
                                             const TtlOptions& options) {
  HE_EXPECTS(mic_separation > 0.0);
  require(mic_separation > 0.0, "measure_slides: mic separation must be positive");
  const double dt = motion.dt();
  const double t_hat = asp.estimated_period;
  // The SFO-corrected period divides every chirp-pair TDoA below; zero or
  // non-finite values mean the caller skipped preprocess_audio's period
  // estimation (which throws on failure) and fed a raw struct.
  HE_EXPECTS(t_hat > 0.0);
  HE_ASSERT_FINITE(t_hat);
  HE_EXPECTS(dt > 0.0);
  const double yaw = prior.believed_yaw;
  const geom::Vec2 xhat_body{std::cos(yaw), std::sin(yaw)};   // body +x on the map
  const geom::Vec2 yhat_body{-std::sin(yaw), std::cos(yaw)};  // body +y on the map
  const double side = prior.speaker_on_positive_x ? 1.0 : -1.0;
  const geom::Vec2 start_xy = prior.phone_start_position.xy();

  const std::vector<imu::Segment> segments =
      imu::segment_movements(motion.lin_accel_y, options.segmentation);

  std::vector<double> yaw_track;
  if (options.rotation_correction) {
    yaw_track = integrated_yaw(motion, options.gyro_detrend_hz);
  }

  std::vector<SlideMeasurement> out;
  double cumulative_disp = 0.0;  // body-y displacement accumulated so far
  for (std::size_t si = 0; si < segments.size(); ++si) {
    const imu::Segment& seg = segments[si];
    SlideMeasurement m;
    m.motion = imu::estimate_slide(motion, motion.lin_accel_y, seg, options.displacement);
    m.t_start = static_cast<double>(m.motion.start) * dt;
    m.t_end = static_cast<double>(m.motion.end) * dt;
    const double disp = m.motion.displacement;
    const double offset_before = cumulative_disp;
    cumulative_disp += disp;

    if (std::abs(disp) < 0.02) {
      // Too small to be a slide stroke (e.g. a bump); keep tracking the
      // cumulative offset but record nothing useful.
      out.push_back(m);
      continue;
    }

    // Endpoint chirps must arrive while the phone DWELLS: the window around
    // the slide is clamped against the neighbouring movement segments so a
    // chirp recorded mid-stroke of the previous/next slide never poses as
    // an endpoint measurement.
    const double prev_end =
        si > 0 ? static_cast<double>(segments[si - 1].end) * dt : 0.0;
    const double next_start = si + 1 < segments.size()
                                  ? static_cast<double>(segments[si + 1].start) * dt
                                  : std::numeric_limits<double>::infinity();
    const double pre_hi = m.t_start - options.guard_s - options.chirp_duration_s;
    const double pre_lo =
        std::max(m.t_start - options.lookback_s, prev_end + options.guard_s);
    const double post_lo = m.t_end + options.guard_s;
    const double post_hi = std::min(m.t_end + options.lookback_s,
                                    next_start - options.guard_s) -
                           options.chirp_duration_s;
    const std::vector<PairedChirp> pre =
        paired_events_in(asp, pre_lo, pre_hi, options.pairing_slack_s);
    const std::vector<PairedChirp> post =
        paired_events_in(asp, post_lo, post_hi, options.pairing_slack_s);

    // Canonical frame: x-hat along the slide direction. The reference mic
    // (origin of Eqs. 5-6) is the one whose partner sits +D further along
    // the slide: sliding toward body -y puts Mic2 ahead, so Mic1 is the
    // reference; sliding toward +y swaps the roles.
    const double sigma = disp > 0.0 ? 1.0 : -1.0;
    const bool mic1_is_reference = disp < 0.0;
    const double dprime = std::abs(disp);

    std::vector<double> xs, ys;
    for (const PairedChirp& p : pre) {
      if (xs.size() >= options.max_pairs) break;
      for (const PairedChirp& q : post) {
        if (xs.size() >= options.max_pairs) break;
        const double n1 = std::round((q.t_mic1 - p.t_mic1) / t_hat);
        const double n2 = std::round((q.t_mic2 - p.t_mic2) / t_hat);
        if (n1 != n2 || n1 < 1.0) continue;
        double dd_mic1 = (q.t_mic1 - p.t_mic1 - n1 * t_hat) * kSpeedOfSound;
        double dd_mic2 = (q.t_mic2 - p.t_mic2 - n2 * t_hat) * kSpeedOfSound;
        if (options.rotation_correction) {
          // A yaw excursion psi (relative to the in-direction yaw) moves
          // Mic1 by -(D/2) sin(psi) along the line of sight and Mic2 the
          // opposite way, lengthening/shortening the two range differences
          // in opposite directions; subtract the gyro-derived term.
          const double s_pre = std::sin(yaw_at(yaw_track, 0.5 * (p.t_mic1 + p.t_mic2), dt));
          const double s_post = std::sin(yaw_at(yaw_track, 0.5 * (q.t_mic1 + q.t_mic2), dt));
          const double delta = (s_post - s_pre) * mic_separation / 2.0;
          dd_mic1 -= side * delta;
          dd_mic2 += side * delta;
        }
        if (std::abs(dd_mic1) > 1.5 * dprime || std::abs(dd_mic2) > 1.5 * dprime) continue;

        geom::AugmentedTdoa in;
        in.slide_distance = dprime;
        in.mic_separation = mic_separation;
        in.range_diff_mic1 = mic1_is_reference ? dd_mic1 : dd_mic2;
        in.range_diff_mic2 = mic1_is_reference ? dd_mic2 : dd_mic1;
        const geom::TriangulationResult sol = geom::solve_augmented(in);
        if (!sol.converged) continue;
        if (sol.position.y < 0.1 || sol.position.y > options.max_range) continue;
        xs.push_back(sol.position.x);
        ys.push_back(sol.position.y);
      }
    }
    m.pairs_used = static_cast<int>(xs.size());

    // Believed world geometry of this slide.
    const geom::Vec2 center_xy =
        start_xy + yhat_body * (offset_before + disp / 2.0);
    const double ref_mic_offset = mic1_is_reference ? mic_separation / 2.0
                                                    : -mic_separation / 2.0;
    m.origin_xy = center_xy + yhat_body * ref_mic_offset;
    m.slide_axis_xy = yhat_body * sigma;
    m.lateral_axis_xy = xhat_body * side;

    if (!xs.empty()) {
      m.local_position = {median_of(xs), median_of(ys)};
      m.range_l = m.local_position.y;
      m.world_position = m.origin_xy + m.slide_axis_xy * m.local_position.x +
                         m.lateral_axis_xy * m.range_l;
      const bool distance_ok = dprime >= options.min_slide_distance;
      const bool rotation_ok =
          std::abs(m.motion.z_rotation) <= deg2rad(options.max_z_rotation_deg);
      m.accepted = distance_ok && rotation_ok && m.pairs_used > 0;
    }
    out.push_back(m);
  }
  return out;
}

TtlResult aggregate_slides(const std::vector<SlideMeasurement>& slides, double window_start,
                           double window_end) {
  TtlResult result;
  result.slides = slides;
  std::vector<double> ls, wx, wy;
  for (const SlideMeasurement& m : slides) {
    if (!m.accepted) continue;
    if (m.t_start < window_start || m.t_start >= window_end) continue;
    ls.push_back(m.range_l);
    wx.push_back(m.world_position.x);
    wy.push_back(m.world_position.y);
  }
  result.accepted_count = static_cast<int>(ls.size());
  if (ls.empty()) return result;
  result.aggregated_l = median(ls);
  result.estimated_position = {median(wx), median(wy)};
  result.valid = true;
  return result;
}

TtlResult localize_2d(const AspResult& asp, const imu::MotionSignals& motion,
                      const sim::Session::Prior& prior, double mic_separation,
                      const TtlOptions& options) {
  const std::vector<SlideMeasurement> slides =
      measure_slides(asp, motion, prior, mic_separation, options);
  return aggregate_slides(slides, 0.0, std::numeric_limits<double>::infinity());
}

}  // namespace hyperear::core
