#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/expected.hpp"
#include "core/pipeline.hpp"
#include "core/pipeline_context.hpp"
#include "core/sdf.hpp"
#include "core/session_workspace.hpp"
#include "dsp/fir.hpp"
#include "dsp/matched_filter.hpp"

/// @file streaming_session.hpp
/// Incremental (chunked) ingest for one localization session.
///
/// The batch pipeline (`core::try_localize`) wants the whole recording up
/// front; a phone streaming audio to a service delivers it in arbitrary
/// slices. `StreamingSession` accepts those slices as they arrive, runs the
/// band-pass filter and the matched-filter detector ONLINE over a bounded
/// lookback window, and surfaces incremental events (first beacon heard,
/// SDF zero crossings, protocol-phase transitions) while the user is still
/// sliding. `finalize()` then completes the pipeline (SFO fit, MSP,
/// TTL/PLE) and returns a fix that is BIT-IDENTICAL to
/// `core::try_localize` on the concatenated audio — for every chunking —
/// because every stage either runs the batch code verbatim
/// (`detail::localize_from_asp`, `finish_asp`) or a streaming spelling
/// proven equivalent instruction-for-instruction
/// (`dsp::StreamingFirFilter`, the detector's stream_begin/chunk/end
/// protocol). tests/test_streaming.cpp holds the property test.
///
/// Memory: only the filter's raw lookback and the detector's current
/// correlation window are retained — `retained_samples()` is bounded by a
/// constant independent of how long the user records
/// (`peak_retained_samples()` reports the high-water mark, asserted in
/// tests and reported in BENCH_streaming.json).
///
/// Ownership follows the pipeline's context/workspace split: the optional
/// `PipelineContext` is shared immutable plans; the `SessionWorkspace`
/// (caller-leased or session-owned) is single-owner scratch. A
/// StreamingSession is therefore single-owner too — one thread at a time
/// (runtime::StreamingEngine serializes each session onto its drain task).

namespace hyperear::obs {
struct ObsContext;
}

namespace hyperear::core {

/// Protocol phase of the measurement, advanced as the detector frontier
/// passes the session prior's time marks (calibration head, stature
/// change). Purely informational — the solve never reads it.
enum class StreamPhase : std::uint8_t {
  calibrating,  ///< static head (SFO material)
  sliding_1,    ///< first-stature slides
  sliding_2,    ///< second-stature slides (two-stature sessions only)
  solving,      ///< finalize() running the back half
  done,         ///< finalize() returned
};

[[nodiscard]] const char* to_string(StreamPhase phase);

/// One incremental event. The event SEQUENCE (kinds, channels, times,
/// payloads, order) is invariant to how the audio was chunked: events
/// derived from detector output are keyed to the detector's fixed chunk
/// schedule, and phase transitions are interleaved by their time mark, not
/// by which push happened to cross it.
struct StreamEvent {
  enum class Kind : std::uint8_t {
    /// First chirp candidate on a channel — the beacon is audible.
    beacon_acquired,
    /// The provisional inter-mic TDoA trace crossed zero (the SDF "you are
    /// now pointing at it" cue). Derived from pass-1 detector candidates,
    /// so it fires DURING the roll, before the global min-spacing pass.
    sdf_zero_cross,
    /// Entered a new protocol phase (`phase` below).
    phase_change,
    /// finalize() produced its result (`fix_valid`, `confidence`).
    fix,
  };

  Kind kind = Kind::beacon_acquired;
  std::size_t channel = 0;  ///< beacon_acquired: which microphone (0/1)
  double time_s = 0.0;      ///< event time in recording seconds
  StreamPhase phase = StreamPhase::calibrating;  ///< phase_change payload
  bool fix_valid = false;                        ///< fix payload
  double confidence = 0.0;                       ///< fix payload, in [0, 1]

  [[nodiscard]] friend bool operator==(const StreamEvent&,
                                       const StreamEvent&) = default;
};

/// Incremental front end of the localization pipeline for ONE session.
///
/// Usage:
///   StreamingSession s(meta, config);           // meta.audio empty
///   while (audio arrives) s.push(mic1, mic2);   // arbitrary slice sizes
///   auto fix = s.finalize(&metrics, obs);       // == try_localize(batch)
///
/// `meta` carries everything but the audio samples (prior, IMU, scenario
/// config, audio sample rate); its audio channels must be empty — samples
/// arrive through `push`. Events accumulate in `events()`; a caller
/// consuming them live can track its own cursor into the vector.
class StreamingSession {
 public:
  /// `context`: optional shared plans (must match `config.asp` + the
  /// session's chirp + rate to be used; a mismatched or null context means
  /// session-local plans, exactly like the batch path). `workspace`:
  /// optional caller-leased scratch (null: the session owns a private
  /// one); must outlive the session. Plan-construction failure is NOT
  /// thrown here — it is remembered and classified as an asp-stage error
  /// by `finalize`, exactly where the batch path would fail.
  explicit StreamingSession(sim::Session meta, PipelineConfig config = {},
                            std::shared_ptr<const PipelineContext> context = nullptr,
                            SessionWorkspace* workspace = nullptr,
                            SdfOptions sdf = {});

  StreamingSession(const StreamingSession&) = delete;
  StreamingSession& operator=(const StreamingSession&) = delete;

  /// Ingest one stereo slice (equal lengths; empty is a no-op). Filters,
  /// detects, and appends events for everything that became final. Invalid
  /// after `finalize`.
  void push(std::span<const double> mic1, std::span<const double> mic2);

  /// End of audio: flush the filters and the detector tail, assemble the
  /// AspResult, and run the pipeline's back half. Return value, error
  /// classification, StageMetrics shape, and registry/trace telemetry all
  /// match `core::try_localize(session_with_full_audio, config, ...)`.
  /// Appends the terminal phase_change/fix events. Call at most once.
  [[nodiscard]] Expected<LocalizationResult, PipelineError> finalize(
      StageMetrics* metrics = nullptr, const obs::ObsContext* obs = nullptr);

  [[nodiscard]] const std::vector<StreamEvent>& events() const { return events_; }
  [[nodiscard]] StreamPhase phase() const { return phase_; }
  [[nodiscard]] std::size_t samples_ingested() const { return total_; }
  /// Audio samples currently held across both channels (filter lookback +
  /// detector window) — the streaming memory footprint.
  [[nodiscard]] std::size_t retained_samples() const;
  [[nodiscard]] std::size_t peak_retained_samples() const { return peak_retained_; }
  [[nodiscard]] bool finalized() const { return finalized_; }
  [[nodiscard]] const sim::Session& meta() const { return meta_; }

 private:
  struct Channel {
    std::optional<dsp::StreamingFirFilter> filter;  ///< engaged iff bandpass
    std::vector<double> ring;       ///< filtered samples [ring_start, ...)
    std::size_t ring_start = 0;     ///< recording index of ring[0]
    std::size_t ring_total = 0;     ///< filtered samples produced so far
    dsp::DetectorStream stream;     ///< resumable detector cursor
    std::size_t candidates_seen = 0;  ///< consumed prefix of ws candidates
    std::vector<ChirpEvent> live;   ///< provisional events (pass-1 basis)
  };

  void append_filtered(Channel& ch, std::span<const double> chunk);
  /// Run every detector chunk that is certainly full and non-final; after
  /// `drain_all`, run the batch tail schedule instead.
  void run_detector(bool drain_all);
  /// Consume newly appended pass-1 candidates of one channel into events.
  void collect_candidates(std::size_t slot, Channel& ch);
  /// Emit sdf_zero_cross events that can no longer change, or (at
  /// finalize) all remaining ones.
  void scan_zero_crossings(bool final_pass);
  /// Emit phase transitions whose time mark the frontier passed.
  void advance_phase(std::size_t frontier_samples);
  void note_retained();

  sim::Session meta_;
  PipelineConfig config_;
  SdfOptions sdf_;
  std::shared_ptr<const PipelineContext> shared_context_;
  /// The plans in use (shared or session-built); null iff construction
  /// failed (then ctx_error_ holds why).
  const PipelineContext* context_ = nullptr;
  std::optional<PipelineContext> local_context_;
  std::exception_ptr ctx_error_;
  std::unique_ptr<SessionWorkspace> owned_workspace_;
  SessionWorkspace* ws_ = nullptr;

  Channel channels_[2];
  std::size_t total_ = 0;          ///< raw samples pushed per channel
  std::size_t next_chunk_start_ = 0;  ///< shared detector schedule cursor
  double asp_ms_ = 0.0;            ///< filter+detect wall time across pushes

  std::vector<StreamEvent> events_;
  StreamPhase phase_ = StreamPhase::calibrating;
  std::vector<TdoaSample> tdoa_scratch_;  ///< zero-cross pairing scratch
  std::size_t crossing_cursor_ = 1;       ///< next TDoA index to scan
  double slide1_mark_s_ = 0.0;            ///< calibration -> sliding_1 time
  double slide2_mark_s_ = 0.0;            ///< sliding_1 -> sliding_2 time (3D)

  std::size_t peak_retained_ = 0;
  bool finalized_ = false;
};

}  // namespace hyperear::core
