#pragma once

#include <functional>

/// @file parallel.hpp
/// Minimal execution-policy seam between the core pipeline and whatever
/// thread infrastructure the host runtime owns.
///
/// The ASP stage processes the two microphone channels independently
/// (filter + matched-filter detection per channel), which is a natural pair
/// of tasks to overlap. But core cannot depend on runtime (the library
/// layering is common -> ... -> core -> runtime), and spawning ad-hoc
/// threads inside the pipeline would fight the runtime's own pool sizing.
/// `PairExecutor` inverts the dependency: core states *what* can run
/// concurrently, the runtime decides *how* (runtime::BatchEngine adapts its
/// ThreadPool; everyone else gets the serial default).

namespace hyperear::core {

/// Executes two independent closures, possibly concurrently. Implementations
/// must not return until both closures have completed, and must propagate an
/// exception from either one (if both throw, either exception may win).
/// Implementations must be safe to invoke from multiple threads at once —
/// run_pair carries no state between calls.
class PairExecutor {
 public:
  virtual ~PairExecutor() = default;
  virtual void run_pair(const std::function<void()>& a,
                        const std::function<void()>& b) const = 0;
};

/// The trivial policy: run both closures on the calling thread, in order.
/// This is the behavior every caller had before the seam existed, so passing
/// nullptr (-> serial) keeps single-session results and timing untouched.
class SerialPairExecutor final : public PairExecutor {
 public:
  void run_pair(const std::function<void()>& a,
                const std::function<void()>& b) const override {
    a();
    b();
  }
};

}  // namespace hyperear::core
