#include "core/calibration.hpp"

#include <vector>

#include "common/stats.hpp"

namespace hyperear::core {

CalibrationResult calibrate_mic_separation(const AspResult& asp,
                                           const CalibrationOptions& options) {
  CalibrationResult out;
  const std::vector<TdoaSample> samples =
      pair_inter_mic_tdoas(asp, options.pairing_slack_s);
  out.samples = samples.size();
  if (samples.size() < options.min_samples) return out;

  std::vector<double> tdoas;
  tdoas.reserve(samples.size());
  for (const TdoaSample& s : samples) tdoas.push_back(s.tdoa_s);
  const double lo = percentile(tdoas, options.percentile_low);
  const double hi = percentile(tdoas, options.percentile_high);
  out.tdoa_swing_s = hi - lo;
  if (out.tdoa_swing_s <= 0.0) return out;
  // Swing = 2 D / S.
  out.mic_separation = out.tdoa_swing_s * options.sound_speed / 2.0;
  out.valid = out.mic_separation > 0.02 && out.mic_separation < 0.5;
  return out;
}

}  // namespace hyperear::core
