#pragma once

#include <vector>

#include "core/asp.hpp"
#include "imu/preprocess.hpp"

/// @file sdf.hpp
/// Speaker Direction Finding (paper Section IV). While the user rolls the
/// phone around its z-axis, the inter-microphone TDoA traces
/// -D*cos(alpha)/S (Fig. 7). The speaker direction is found where the TDoA
/// crosses zero: a rising crossing corresponds to alpha = 90 degrees (the
/// speaker on the phone's +x side), a falling crossing to alpha = 270.
/// The yaw at the crossing is read off the integrated gyroscope.

namespace hyperear::core {

/// One paired inter-mic TDoA sample during the sweep.
struct TdoaSample {
  double time_s = 0.0;
  double tdoa_s = 0.0;  ///< t_mic1 - t_mic2
};

/// SDF configuration.
struct SdfOptions {
  /// Max |t1 - t2| for pairing events across mics: the physical bound D/S
  /// plus interpolation slack. Set from the phone's mic separation.
  double max_pairing_offset_s = 0.7e-3;
  /// Require the crossing's neighbours to have opposite TDoA signs of at
  /// least this magnitude (seconds) to reject noise wiggles near zero.
  double min_swing_s = 0.05e-3;
};

/// Result of a direction-finding sweep.
struct SdfResult {
  bool found = false;
  double crossing_time_s = 0.0;  ///< when the TDoA crossed zero
  double yaw_rad = 0.0;          ///< integrated gyro yaw at the crossing
  bool speaker_on_positive_x = true;  ///< rising crossing (alpha = 90)
  std::vector<TdoaSample> samples;    ///< the full trace (Fig. 7 material)
};

/// Pair per-mic chirp events into inter-mic TDoA samples. Events without a
/// partner within `max_offset` are dropped.
[[nodiscard]] std::vector<TdoaSample> pair_inter_mic_tdoas(const AspResult& asp,
                                                           double max_offset_s);

/// Integrated gyro-z yaw relative to the start of the record, evaluated at
/// time t (linear interpolation between IMU samples).
[[nodiscard]] double integrated_yaw_at(const imu::MotionSignals& motion, double t);

/// Find the speaker direction from a rotation-sweep recording. The returned
/// yaw is relative to the phone's yaw at the start of the sweep.
[[nodiscard]] SdfResult find_direction(const AspResult& asp,
                                       const imu::MotionSignals& motion,
                                       const SdfOptions& options = {});

}  // namespace hyperear::core
