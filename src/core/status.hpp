#pragma once

#include <string>

#include "common/error.hpp"

/// @file status.hpp
/// The pipeline's error taxonomy: every failure a localization attempt can
/// produce, as a value. `core::try_localize` and the runtime engine report
/// a `PipelineError` instead of letting an exception escape — essential
/// once sessions run on worker threads, where an unhandled exception would
/// terminate the process. The taxonomy round-trips with the exception
/// hierarchy in common/error.hpp: `classify_exception` maps an exception to
/// a category and `rethrow` reconstructs the matching exception type.

namespace hyperear::core {

/// The contract-violation exception (common/contracts.hpp) re-exported under
/// the taxonomy's namespace: pipeline code catches/classifies it as
/// core::InvariantError alongside the ErrorCategory machinery below.
using hyperear::InvariantError;

/// What went wrong, by failure class (mirrors the Error hierarchy).
enum class ErrorCategory {
  precondition,  ///< caller violated a documented contract (PreconditionError)
  numerical,     ///< a solver failed to converge or degenerated (NumericalError)
  detection,     ///< a stage found nothing usable in the data (DetectionError)
  config,        ///< PipelineConfig failed validation
  internal,      ///< anything else (bad_alloc, logic errors, unknown throws)
};

/// Number of ErrorCategory values. Derived from the enum (`internal` is
/// the last enumerator by construction) so aggregation arrays — e.g.
/// `runtime::EngineStats::errors_by_category` — track the taxonomy
/// automatically instead of hardcoding a 5. status.cpp static_asserts that
/// every value below this count has a `to_string` name.
inline constexpr std::size_t kErrorCategoryCount =
    static_cast<std::size_t>(ErrorCategory::internal) + 1;

/// Where in the ASP -> MSP -> TTL/PLE flow the failure surfaced.
enum class PipelineStage {
  config,     ///< option validation, before any signal processing
  asp,        ///< acoustic signal preprocessing
  msp,        ///< motion signal preprocessing
  ttl,        ///< 2D TDoA localization (includes PDE)
  ple,        ///< 3D projected location estimation
  aggregate,  ///< cross-slide/session aggregation and scoring
};

/// Number of PipelineStage values (`aggregate` is last by construction);
/// the observability layer iterates stages by index when exporting
/// per-stage failure counters.
inline constexpr std::size_t kPipelineStageCount =
    static_cast<std::size_t>(PipelineStage::aggregate) + 1;

/// One pipeline failure, as a value.
struct PipelineError {
  ErrorCategory category = ErrorCategory::internal;
  PipelineStage stage = PipelineStage::config;
  std::string message;
};

[[nodiscard]] const char* to_string(ErrorCategory category);
[[nodiscard]] const char* to_string(PipelineStage stage);

/// "[stage] category: message" — the human-readable rendering.
[[nodiscard]] std::string describe(const PipelineError& error);

/// Map a caught exception to its taxonomy category.
[[nodiscard]] ErrorCategory classify_exception(const std::exception& e);

/// Build a PipelineError from a caught exception at a given stage.
[[nodiscard]] PipelineError error_from_exception(const std::exception& e,
                                                 PipelineStage stage);

/// Inverse of `classify_exception`: throw the Error subclass matching the
/// category (config/internal map to PreconditionError/Error). Used by the
/// throwing `core::localize` shim so legacy catch sites keep working.
[[noreturn]] void rethrow(const PipelineError& error);

}  // namespace hyperear::core
