#include "core/ple.hpp"

#include <cmath>
#include <limits>

#include "common/contracts.hpp"
#include "common/stats.hpp"

namespace hyperear::core {

namespace {

/// Median floor-map point of `origin + slide_axis * x_local` over the
/// accepted slides in [lo, hi).
bool median_base_point(const std::vector<SlideMeasurement>& slides, double lo, double hi,
                       geom::Vec2& out) {
  std::vector<double> xs, ys;
  for (const SlideMeasurement& m : slides) {
    if (!m.accepted || m.t_start < lo || m.t_start >= hi) continue;
    const geom::Vec2 base = m.origin_xy + m.slide_axis_xy * m.local_position.x;
    xs.push_back(base.x);
    ys.push_back(base.y);
  }
  if (xs.empty()) return false;
  out = {median(xs), median(ys)};
  return true;
}

}  // namespace

PleResult localize_3d(const AspResult& asp, const imu::MotionSignals& motion,
                      const sim::Session::Prior& prior, double mic_separation,
                      const PleOptions& options) {
  HE_EXPECTS(mic_separation > 0.0);
  HE_EXPECTS(options.min_stature_change >= 0.0);
  PleResult result;
  result.slides = measure_slides(asp, motion, prior, mic_separation, options.ttl);

  // Locate the stature change on the z axis: the segment with the largest
  // absolute vertical displacement.
  const std::vector<imu::Segment> z_segments =
      imu::segment_movements(motion.lin_accel_z, options.z_segmentation);
  double best_dz = 0.0;
  double z_lo = 0.0, z_hi = 0.0;
  for (const imu::Segment& seg : z_segments) {
    const double dz =
        imu::estimate_stature_change(motion, seg.start, seg.end, options.ttl.displacement);
    if (std::abs(dz) > std::abs(best_dz)) {
      best_dz = dz;
      z_lo = static_cast<double>(seg.start) * motion.dt();
      z_hi = static_cast<double>(seg.end) * motion.dt();
    }
  }

  const double inf = std::numeric_limits<double>::infinity();
  if (std::abs(best_dz) < options.min_stature_change) {
    // No usable stature change: fall back to the coplanar 2D interpretation.
    const TtlResult flat = aggregate_slides(result.slides, 0.0, inf);
    result.valid = flat.valid;
    result.projected = false;
    result.l1 = flat.aggregated_l;
    result.projected_distance = flat.aggregated_l;
    result.estimated_position = flat.estimated_position;
    result.slides_used = flat.accepted_count;
    return result;
  }

  const TtlResult group1 = aggregate_slides(result.slides, 0.0, z_lo);
  const TtlResult group2 = aggregate_slides(result.slides, z_hi, inf);
  result.stature_change = std::abs(best_dz);
  result.slides_used = group1.accepted_count + group2.accepted_count;
  if (!group1.valid || !group2.valid) {
    // One stature produced nothing; fall back to whichever worked.
    const TtlResult& fallback = group1.valid ? group1 : group2;
    result.valid = fallback.valid;
    result.projected = false;
    result.l1 = fallback.aggregated_l;
    result.projected_distance = fallback.aggregated_l;
    result.estimated_position = fallback.estimated_position;
    return result;
  }

  result.l1 = group1.aggregated_l;
  result.l2 = group2.aggregated_l;
  const geom::ProjectionResult proj =
      geom::project_to_floor(result.stature_change, result.l1, result.l2);
  result.beta_rad = proj.beta_rad;
  // Robustness beyond the paper: with a small H, noise in L1/L2 can break
  // the triangle inequality (the clamped Eq. 7 would then collapse L* to
  // zero) or imply an implausible vertical offset. In those cases the slant
  // distance itself is the better floor-map estimate, since the projection
  // correction is only ~z^2/(2 L1).
  const bool plausible_offset = std::abs(proj.height_offset) <= 3.0;
  if (proj.well_conditioned && plausible_offset) {
    result.projected_distance = proj.projected_distance;
    result.projected = true;
  } else {
    result.projected_distance = result.l1;
    result.projected = false;
  }

  geom::Vec2 base;
  if (!median_base_point(result.slides, 0.0, z_lo, base)) {
    result.valid = false;
    return result;
  }
  // All slides share the lateral axis (the believed speaker side).
  geom::Vec2 lateral{0.0, 0.0};
  for (const SlideMeasurement& m : result.slides) {
    if (m.accepted) {
      lateral = m.lateral_axis_xy;
      break;
    }
  }
  result.estimated_position = base + lateral * result.projected_distance;
  result.valid = true;
  return result;
}

}  // namespace hyperear::core
