#include "core/pipeline.hpp"

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "core/pipeline_context.hpp"
#include "core/pipeline_detail.hpp"
#include "core/session_workspace.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hyperear::core {

namespace {

std::optional<PipelineError> config_violation(bool bad, const std::string& what) {
  if (!bad) return std::nullopt;
  return PipelineError{ErrorCategory::config, PipelineStage::config,
                       "PipelineConfig: " + what};
}

/// Stage-latency buckets (ms) shared by the asp/msp/solve histograms.
constexpr double kStageMsBounds[] = {1.0,  2.0,   5.0,   10.0,  20.0,
                                     50.0, 100.0, 200.0, 500.0, 1000.0};

}  // namespace

void detail::record_pipeline_metrics(obs::MetricsRegistry& m, const StageMetrics& stage,
                                     const LocalizationResult* result,
                                     const PipelineError* error) {
  m.counter("pipeline.sessions_total").inc();
  m.histogram("pipeline.asp_ms", kStageMsBounds).observe(stage.asp_ms);
  if (error != nullptr) {
    m.counter(std::string("pipeline.stage_failures.") + to_string(error->stage)).inc();
    return;
  }
  m.histogram("pipeline.msp_ms", kStageMsBounds).observe(stage.msp_ms);
  m.histogram("pipeline.solve_ms", kStageMsBounds).observe(stage.solve_ms);
  m.counter(result->valid ? "pipeline.sessions_valid"
                          : "pipeline.sessions_no_solution")
      .inc();
  if (result->valid) {
    static constexpr double kRangeBounds[] = {1.0, 2.0, 3.0, 4.0, 5.0, 7.0, 10.0, 15.0};
    m.histogram("pipeline.range_m", kRangeBounds).observe(result->range);
    m.counter(result->used_3d() ? "pipeline.flow_3d_total" : "pipeline.flow_2d_total")
        .inc();
  }
}

Expected<LocalizationResult, PipelineError> detail::localize_from_asp(
    const AspResult& asp, const sim::Session& session, const PipelineConfig& config,
    StageMetrics& stage, const obs::ObsContext* obs,
    const obs::TraceSpan* session_span) {
  obs::MetricsRegistry* registry = obs != nullptr ? obs->metrics : nullptr;
  obs::Tracer* tracer = obs != nullptr ? obs->tracer : nullptr;
  const std::uint64_t sid = obs != nullptr ? obs->session_id : 0;

  const auto fail = [&](const std::exception& e, PipelineStage failed_stage) {
    PipelineError error = error_from_exception(e, failed_stage);
    if (registry != nullptr) {
      record_pipeline_metrics(*registry, stage, nullptr, &error);
    }
    return make_unexpected(std::move(error));
  };

  imu::MotionSignals motion;
  try {
    obs::TraceSpan span(tracer, "msp", sid, session_span);
    const obs::MonotonicTime t0 = obs::monotonic_now();
    motion = imu::preprocess(session.imu, config.msp);
    stage.msp_ms = obs::ms_since(t0);
  } catch (const std::exception& e) {
    return fail(e, PipelineStage::msp);
  }

  const double mic_separation = session.config.phone.mic_separation;
  LocalizationResult result;
  result.estimated_period = asp.estimated_period;
  result.sfo_ppm = asp.sfo_ppm;

  if (session.prior.two_statures) {
    try {
      obs::TraceSpan span(tracer, "ple", sid, session_span);
      const obs::MonotonicTime t0 = obs::monotonic_now();
      result.ple = localize_3d(asp, motion, session.prior, mic_separation,
                               config.ple_options());
      stage.solve_ms = obs::ms_since(t0);
    } catch (const std::exception& e) {
      return fail(e, PipelineStage::ple);
    }
    result.valid = result.ple->valid;
    result.estimated_position = result.ple->estimated_position;
    result.range = result.ple->projected_distance;
    result.slides_used = result.ple->slides_used;
    stage.slides_segmented = static_cast<int>(result.ple->slides.size());
    stage.slides_accepted = result.ple->slides_used;
  } else {
    try {
      obs::TraceSpan span(tracer, "ttl", sid, session_span);
      const obs::MonotonicTime t0 = obs::monotonic_now();
      result.ttl = localize_2d(asp, motion, session.prior, mic_separation, config.ttl);
      stage.solve_ms = obs::ms_since(t0);
    } catch (const std::exception& e) {
      return fail(e, PipelineStage::ttl);
    }
    result.valid = result.ttl->valid;
    result.estimated_position = result.ttl->estimated_position;
    result.range = result.ttl->aggregated_l;
    result.slides_used = result.ttl->accepted_count;
    stage.slides_segmented = static_cast<int>(result.ttl->slides.size());
    stage.slides_accepted = result.ttl->accepted_count;
  }

  if (registry != nullptr) {
    record_pipeline_metrics(*registry, stage, &result, nullptr);
  }
  return result;
}

std::optional<PipelineError> PipelineConfig::validate() const {
  if (auto e = config_violation(asp.bandpass_taps < 3, "asp.bandpass_taps must be >= 3"))
    return e;
  if (auto e = config_violation(
          asp.detector_threshold <= 0.0 || asp.detector_threshold >= 1.0,
          "asp.detector_threshold must lie in (0, 1)"))
    return e;
  if (auto e = config_violation(asp.min_event_spacing_s <= 0.0,
                                "asp.min_event_spacing_s must be positive"))
    return e;
  if (auto e = config_violation(asp.min_calibration_events < 2,
                                "asp.min_calibration_events must be >= 2"))
    return e;
  if (auto e = config_violation(msp.sma_length == 0, "msp.sma_length must be >= 1"))
    return e;
  if (auto e = config_violation(ttl.min_slide_distance < 0.0,
                                "ttl.min_slide_distance must be non-negative"))
    return e;
  if (auto e = config_violation(ttl.max_z_rotation_deg <= 0.0,
                                "ttl.max_z_rotation_deg must be positive"))
    return e;
  if (auto e = config_violation(ttl.chirp_duration_s <= 0.0,
                                "ttl.chirp_duration_s must be positive"))
    return e;
  if (auto e =
          config_violation(ttl.lookback_s <= 0.0, "ttl.lookback_s must be positive"))
    return e;
  if (auto e = config_violation(ttl.max_pairs == 0, "ttl.max_pairs must be >= 1"))
    return e;
  if (auto e = config_violation(ttl.max_range <= 0.0, "ttl.max_range must be positive"))
    return e;
  if (auto e = config_violation(min_stature_change < 0.0,
                                "min_stature_change must be non-negative"))
    return e;
  // Checked-build depth the range checks above can't express: a NaN slips
  // through every `<=` comparison (all false), so a config built from
  // corrupted arithmetic would pass validation and poison the whole
  // session. Finiteness is contract-checked on the fields the stages
  // divide by or integrate over.
  HE_ASSERT_FINITE(asp.detector_threshold);
  HE_ASSERT_FINITE(asp.min_event_spacing_s);
  HE_ASSERT_FINITE(ttl.chirp_duration_s);
  HE_ASSERT_FINITE(ttl.lookback_s);
  HE_ASSERT_FINITE(ttl.max_range);
  HE_ASSERT_FINITE(min_stature_change);
  return std::nullopt;
}

PleOptions PipelineConfig::ple_options() const {
  PleOptions ple;
  ple.ttl = ttl;
  ple.min_stature_change = min_stature_change;
  ple.z_segmentation = z_segmentation;
  return ple;
}

namespace {

/// The one pipeline implementation. Both public spellings land here; the
/// nullable context/workspace parameters exist so the context-free wrapper
/// builds its session-local state INSIDE the asp-stage try block below —
/// a pathological configuration (absurd sample rate, bad taps) fails plan
/// construction and must be classified as an asp-stage error exactly like
/// it always was, no matter which spelling ran.
Expected<LocalizationResult, PipelineError> try_localize_impl(
    const sim::Session& session, const PipelineConfig& config,
    const PipelineContext* context, SessionWorkspace* workspace,
    StageMetrics* metrics, const obs::ObsContext* obs) {
  StageMetrics local;
  if (metrics != nullptr) *metrics = local;

  obs::MetricsRegistry* registry =
      obs != nullptr ? obs->metrics : nullptr;
  obs::Tracer* tracer = obs != nullptr ? obs->tracer : nullptr;
  const std::uint64_t sid = obs != nullptr ? obs->session_id : 0;
  obs::TraceSpan session_span(tracer, "session", sid);

  if (std::optional<PipelineError> bad = config.validate()) {
    if (registry != nullptr) {
      detail::record_pipeline_metrics(*registry, local, nullptr, &*bad);
    }
    return make_unexpected(*std::move(bad));
  }

  AspResult asp;
  try {
    obs::TraceSpan span(tracer, "asp", sid, &session_span);
    const obs::MonotonicTime t0 = obs::monotonic_now();
    // A caller-supplied context is only authoritative when it was built for
    // exactly this config + session; otherwise fall through the context-free
    // ASP spelling, which rebuilds session-locally (bit-identical plans).
    const bool context_ok =
        context != nullptr && context->matches(config.asp, session.prior.chirp,
                                               session.audio.sample_rate);
    if (context_ok && workspace != nullptr) {
      asp = preprocess_audio(session.audio, session.prior.nominal_period,
                             session.prior.calibration_duration, *context,
                             *workspace, obs);
    } else {
      asp = preprocess_audio(session.audio, session.prior.chirp,
                             session.prior.nominal_period,
                             session.prior.calibration_duration, config.asp,
                             context_ok ? context : nullptr, nullptr, obs);
    }
    local.asp_ms = obs::ms_since(t0);
    local.chirps_mic1 = asp.mic1.size();
    local.chirps_mic2 = asp.mic2.size();
    local.sfo_estimated = asp.sfo_estimated;
  } catch (const std::exception& e) {
    if (metrics != nullptr) *metrics = local;
    PipelineError error = error_from_exception(e, PipelineStage::asp);
    if (registry != nullptr) {
      detail::record_pipeline_metrics(*registry, local, nullptr, &error);
    }
    return make_unexpected(std::move(error));
  }

  Expected<LocalizationResult, PipelineError> r =
      detail::localize_from_asp(asp, session, config, local, obs, &session_span);
  if (metrics != nullptr) *metrics = local;
  return r;
}

}  // namespace

Expected<LocalizationResult, PipelineError> try_localize(
    const sim::Session& session, const PipelineConfig& config,
    const PipelineContext& context, SessionWorkspace& workspace,
    StageMetrics* metrics, const obs::ObsContext* obs) {
  return try_localize_impl(session, config, &context, &workspace, metrics, obs);
}

Expected<LocalizationResult, PipelineError> try_localize(const sim::Session& session,
                                                         const PipelineConfig& config,
                                                         StageMetrics* metrics,
                                                         const obs::ObsContext* obs) {
  return try_localize_impl(session, config, nullptr, nullptr, metrics, obs);
}

LocalizationResult localize(const sim::Session& session, const PipelineConfig& config) {
  Expected<LocalizationResult, PipelineError> r = try_localize(session, config);
  if (!r.has_value()) rethrow(r.error());
  return *std::move(r);
}

double localization_error(const LocalizationResult& result, const sim::Session& session) {
  require(result.valid, "localization_error: result is not valid");
  const geom::Vec2 truth = session.truth.speaker_position.xy();
  return distance(result.estimated_position, truth);
}

}  // namespace hyperear::core
