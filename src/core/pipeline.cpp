#include "core/pipeline.hpp"

#include "common/error.hpp"

namespace hyperear::core {

LocalizationResult localize(const sim::Session& session, PipelineOptions options) {
  options.sync();
  const AspResult asp =
      preprocess_audio(session.audio, session.prior.chirp, session.prior.nominal_period,
                       session.prior.calibration_duration, options.asp);
  const imu::MotionSignals motion = imu::preprocess(session.imu, options.msp);
  const double mic_separation = session.config.phone.mic_separation;

  LocalizationResult result;
  result.estimated_period = asp.estimated_period;
  result.sfo_ppm = asp.sfo_ppm;

  if (session.prior.two_statures) {
    result.used_3d = true;
    result.ple = localize_3d(asp, motion, session.prior, mic_separation, options.ple);
    result.valid = result.ple.valid;
    result.estimated_position = result.ple.estimated_position;
    result.range = result.ple.projected_distance;
    result.slides_used = result.ple.slides_used;
  } else {
    result.ttl = localize_2d(asp, motion, session.prior, mic_separation, options.ttl);
    result.valid = result.ttl.valid;
    result.estimated_position = result.ttl.estimated_position;
    result.range = result.ttl.aggregated_l;
    result.slides_used = result.ttl.accepted_count;
  }
  return result;
}

double localization_error(const LocalizationResult& result, const sim::Session& session) {
  require(result.valid, "localization_error: result is not valid");
  const geom::Vec2 truth = session.truth.speaker_position.xy();
  return distance(result.estimated_position, truth);
}

}  // namespace hyperear::core
