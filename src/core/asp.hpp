#pragma once

#include <vector>

#include "dsp/chirp.hpp"
#include "sim/acoustic_renderer.hpp"

/// @file asp.hpp
/// Acoustic Signal Preprocessing (paper Section III, "ASP"). Three jobs:
///
///  1. band-pass the recording to the chirp band so out-of-band ambient
///     sound (human voice < 2 kHz) is removed;
///  2. detect chirp arrivals at each microphone with sub-sample resolution
///     (matched filter + interpolation);
///  3. estimate and correct the sampling-frequency offset (SFO) between the
///     speaker's clock and the phone's clock — the augmented TDoA subtracts
///     n * T, so a ppm-level period error scales with the elapsed chirp
///     count and must be measured from the data. The static calibration
///     head of the session provides arrivals whose spacing is exactly the
///     beacon period as seen by the phone clock.

namespace hyperear {
class MonotonicArena;
}

namespace hyperear::obs {
struct ObsContext;
}

namespace hyperear::dsp {
struct Detection;
}

namespace hyperear::core {

/// One detected chirp arrival at a microphone.
struct ChirpEvent {
  double time_s = 0.0;     ///< arrival of the chirp start, phone-clock seconds
  double score = 0.0;      ///< normalized correlation
  double amplitude = 0.0;  ///< raw matched-filter amplitude (NLoS diagnostics)
  double echo_competition = 0.0;  ///< runner-up arrival ratio (NLoS cue)
};

/// ASP configuration (defaults reproduce the paper's pipeline).
/// Equality-comparable so a `PipelineContext` can tell whether its cached
/// DSP plans were built for these exact options.
struct AspOptions {
  bool bandpass = true;
  std::size_t bandpass_taps = 255;
  double band_margin_hz = 200.0;   ///< widen the pass band by this much
  double detector_threshold = 0.22;
  double min_event_spacing_s = 0.12;
  bool sfo_correction = true;
  /// Minimum calibration-head events needed for an SFO estimate.
  std::size_t min_calibration_events = 5;

  [[nodiscard]] friend bool operator==(const AspOptions&, const AspOptions&) = default;
};

/// Output of ASP.
struct AspResult {
  std::vector<ChirpEvent> mic1;
  std::vector<ChirpEvent> mic2;
  double estimated_period = 0.2;  ///< T-hat in phone-clock seconds
  double sfo_ppm = 0.0;           ///< (T-hat / nominal - 1) * 1e6
  bool sfo_estimated = false;     ///< false -> nominal period was used
};

class PipelineContext;
class PairExecutor;
class SessionWorkspace;

/// Run ASP on a stereo recording — the canonical spelling. `nominal_period`
/// is the beacon's advertised chirp period; `calibration_duration` the
/// static head of the session used for the SFO fit.
///
/// `context` (core/pipeline_context.hpp) is the immutable plan cache the
/// stage reads: band-pass kernel spectrum, chirp reference, matched-filter
/// spectra. Its AspOptions and ChirpParams are authoritative — the context
/// IS the configuration. A context built for a different sample rate than
/// the recording's triggers a session-local rebuild (same options, right
/// rate), so results never silently depend on a stale cache.
///
/// `workspace` (core/session_workspace.hpp) is the mutable counterpart:
/// per-channel filter/detector scratch and the per-session arena, reset on
/// entry and reusable across sessions. A warmed workspace makes the stage
/// allocation-free in the steady state; results are bit-identical to a
/// fresh one.
///
/// `obs` (obs/trace.hpp) optionally receives stage telemetry (detector
/// counters, SFO-estimate outcomes) on its registry. Null records nothing;
/// the AspResult is byte-identical either way.
[[nodiscard]] AspResult preprocess_audio(const sim::StereoRecording& recording,
                                         double nominal_period,
                                         double calibration_duration,
                                         const PipelineContext& context,
                                         SessionWorkspace& workspace,
                                         const obs::ObsContext* obs = nullptr);

/// Context-free wrapper over the canonical spelling (one implementation —
/// this forwards, it does not duplicate): builds a session-local context
/// when `context` is null or was built for different options/chirp/rate,
/// and a call-local workspace, so results never depend on whether a cache
/// was supplied.
///
/// `executor` (core/parallel.hpp) lets the caller overlap the two
/// per-microphone filter+detect passes — they read shared immutable plans
/// and write disjoint workspace slots, so they are safe to run
/// concurrently. Pass nullptr for the serial order; either way the results
/// are identical because the channels never exchange data. (The batch
/// engine no longer routes sessions through a shared executor — workers
/// are session-parallel instead — but the spelling remains for callers
/// that want intra-session overlap.)
[[nodiscard]] AspResult preprocess_audio(const sim::StereoRecording& recording,
                                         const dsp::ChirpParams& chirp,
                                         double nominal_period,
                                         double calibration_duration,
                                         const AspOptions& options = {},
                                         const PipelineContext* context = nullptr,
                                         const PairExecutor* executor = nullptr,
                                         const obs::ObsContext* obs = nullptr);

/// Estimate the beacon period as seen by the phone clock from arrivals of a
/// static interval: robust line fit of arrival time against chirp index
/// (indices recovered by rounding gaps to the nominal period). Throws
/// DetectionError when fewer than `min_events` arrivals are available.
[[nodiscard]] double estimate_period(const std::vector<ChirpEvent>& events,
                                     double nominal_period, double window_end,
                                     std::size_t min_events);

/// Convert raw matched-filter detections to ChirpEvents (clears `out`).
/// The per-channel half of ASP that `preprocess_audio` runs after
/// detection; public so an incremental ingest path (core::StreamingSession)
/// can assemble the same AspResult from streamed detections.
void convert_chirp_events(const std::vector<dsp::Detection>& detections,
                          std::vector<ChirpEvent>& out);

/// The post-detection half of ASP: given `result` with its per-mic event
/// lists already filled, run the SFO estimate over the calibration head
/// (exactly as `preprocess_audio` does — per-mic fits averaged, falling
/// back to the nominal period when neither mic has enough arrivals) and
/// record the stage's SFO telemetry on `obs`. `arena` backs the fit's
/// scratch series. Public for the same reason as `convert_chirp_events`:
/// `preprocess_audio` and the streaming path share it, so a batch and a
/// streamed session produce bit-identical AspResults.
void finish_asp(AspResult& result, double nominal_period, double calibration_duration,
                const AspOptions& options, MonotonicArena& arena,
                const obs::ObsContext* obs = nullptr);

}  // namespace hyperear::core
