#include "core/tracker.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hyperear::core {

void BeaconTracker::update(const geom::Vec2& fix, double sigma) {
  require(sigma > 0.0, "BeaconTracker::update: sigma must be positive");
  const double w = 1.0 / (sigma * sigma);
  sum_x_ += w * fix.x;
  sum_y_ += w * fix.y;
  weight_ += w;
  ++fixes_;
}

geom::Vec2 BeaconTracker::estimate() const {
  require(weight_ > 0.0, "BeaconTracker::estimate: no fixes yet");
  return {sum_x_ / weight_, sum_y_ / weight_};
}

double BeaconTracker::uncertainty() const {
  require(weight_ > 0.0, "BeaconTracker::uncertainty: no fixes yet");
  return 1.0 / std::sqrt(weight_);
}

double fix_sigma(double range, bool hand_held, const ErrorBudgetInput& base) {
  ErrorBudgetInput in = base;
  in.range = range;
  if (hand_held) {
    in.displacement_sigma = 0.015;
    in.residual_yaw_sigma = 0.004;
  } else {
    in.displacement_sigma = 0.003;
    in.residual_yaw_sigma = 0.0005;
  }
  const ErrorBudget budget = predict_range_error(in);
  // Floor at a couple of centimeters: map registration and speaker-side
  // geometry errors never vanish.
  return std::max(budget.total, 0.02);
}

Guidance guide_toward(const geom::Vec2& user, const geom::Vec2& target) {
  const geom::Vec2 delta = target - user;
  return {delta.angle(), delta.norm()};
}

}  // namespace hyperear::core
