#pragma once

#include "core/asp.hpp"
#include "core/ple.hpp"
#include "core/sdf.hpp"
#include "core/ttl.hpp"
#include "sim/scenario.hpp"

/// @file pipeline.hpp
/// The HyperEar facade: one call from a recorded session (stereo audio +
/// IMU + the user's prior knowledge) to a speaker location on the floor
/// map. Mirrors the six-component architecture of the paper's Fig. 5:
/// ASP -> (SDF) -> MSP -> PDE -> TTL -> PLE.

namespace hyperear::core {

/// Every toggle of the pipeline in one place; the ablation bench flips the
/// design-choice booleans documented in DESIGN.md Section 5.
struct PipelineOptions {
  AspOptions asp;
  imu::PreprocessOptions msp;
  TtlOptions ttl;
  PleOptions ple;

  PipelineOptions() { ple.ttl = ttl; }

  /// Apply shared sub-option consistency (ttl is reused inside ple).
  void sync() { ple.ttl = ttl; }
};

/// Unified localization output.
struct LocalizationResult {
  bool valid = false;
  bool used_3d = false;
  geom::Vec2 estimated_position;  ///< speaker estimate on the floor map
  double range = 0.0;             ///< L (2D) or L* (3D projected)
  int slides_used = 0;

  // Diagnostics.
  double estimated_period = 0.0;
  double sfo_ppm = 0.0;
  TtlResult ttl;  ///< populated for 2D sessions
  PleResult ple;  ///< populated for 3D sessions
};

/// Run the full pipeline on a session. Uses the 3D (two-stature) flow when
/// the session prior says two statures were recorded, the 2D flow otherwise.
[[nodiscard]] LocalizationResult localize(const sim::Session& session,
                                          PipelineOptions options = {});

/// Scoring helper: projected Euclidean distance between the estimate and
/// the ground-truth speaker position on the floor map (the paper's accuracy
/// metric, Section VII-A). Requires a valid result.
[[nodiscard]] double localization_error(const LocalizationResult& result,
                                        const sim::Session& session);

}  // namespace hyperear::core
