#pragma once

#include <optional>

#include "common/expected.hpp"
#include "core/asp.hpp"
#include "core/ple.hpp"
#include "core/status.hpp"
#include "core/ttl.hpp"
#include "sim/scenario.hpp"

/// @file pipeline.hpp
/// The HyperEar facade: one call from a recorded session (stereo audio +
/// IMU + the user's prior knowledge) to a speaker location on the floor
/// map. Mirrors the six-component architecture of the paper's Fig. 5:
/// ASP -> (SDF) -> MSP -> PDE -> TTL -> PLE.
///
/// The primary entry point is the non-throwing `try_localize`, which
/// returns `Expected<LocalizationResult, PipelineError>`; `localize` is a
/// thin throwing shim kept for single-session callers. Batch callers
/// should use `runtime::BatchEngine` (src/runtime/engine.hpp), which runs
/// many sessions concurrently on a thread pool.

namespace hyperear::core {

/// Every toggle of the pipeline in one place; the ablation bench flips the
/// design-choice booleans documented in DESIGN.md Section 5.
///
/// `ttl` is the single source of truth for the slide-measurement options of
/// BOTH the 2D and 3D flows (the old `PipelineOptions` kept a second copy
/// inside a nested `PleOptions` that a manual `sync()` had to reconcile —
/// that footgun is gone; `ple_options()` composes the 3D options on
/// demand). `try_localize` and the engine validate the config up front and
/// report violations as `ErrorCategory::config` values.
struct PipelineConfig {
  AspOptions asp;
  imu::PreprocessOptions msp;
  TtlOptions ttl;

  /// 3D-only knobs (see PleOptions for semantics). The slide-measurement
  /// options come from `ttl` above.
  double min_stature_change = 0.12;
  imu::SegmentationOptions z_segmentation;

  /// First contract violation found, or nullopt when the config is sound.
  [[nodiscard]] std::optional<PipelineError> validate() const;

  /// Compose the 3D options from the shared `ttl` block — the one place
  /// the duplication the old API exposed still exists, now write-once.
  [[nodiscard]] PleOptions ple_options() const;
};

/// Per-stage observability for one localization attempt. Filled by
/// `try_localize` when the caller passes a sink; aggregated across
/// sessions by `runtime::BatchEngine`. Kept OUT of LocalizationResult so
/// results stay bit-identical across runs and thread counts (wall times
/// are not deterministic; estimates are).
struct StageMetrics {
  double asp_ms = 0.0;    ///< acoustic preprocessing wall time
  double msp_ms = 0.0;    ///< motion preprocessing wall time
  double solve_ms = 0.0;  ///< TTL or PLE wall time
  std::size_t chirps_mic1 = 0;  ///< chirp arrivals detected at mic 1
  std::size_t chirps_mic2 = 0;
  bool sfo_estimated = false;   ///< data-driven period estimate succeeded
  int slides_segmented = 0;     ///< slides found by segmentation
  int slides_accepted = 0;      ///< slides passing the quality gate
};

/// Unified localization output. Exactly one of `ttl`/`ple` is engaged
/// (which one records which flow ran — the old API default-constructed
/// both and relied on a separate `used_3d` flag).
struct LocalizationResult {
  bool valid = false;
  geom::Vec2 estimated_position;  ///< speaker estimate on the floor map
  double range = 0.0;             ///< L (2D) or L* (3D projected)
  int slides_used = 0;

  // Diagnostics.
  double estimated_period = 0.0;
  double sfo_ppm = 0.0;
  std::optional<TtlResult> ttl;  ///< engaged iff the 2D flow ran
  std::optional<PleResult> ple;  ///< engaged iff the 3D flow ran

  [[nodiscard]] bool used_3d() const { return ple.has_value(); }
};

class PipelineContext;
class SessionWorkspace;

}  // namespace hyperear::core

namespace hyperear::obs {
struct ObsContext;
}

namespace hyperear::core {

/// Run the full pipeline on a session without throwing — the canonical
/// entry point. Uses the 3D (two-stature) flow when the session prior says
/// two statures were recorded, the 2D flow otherwise. A session that
/// processes cleanly but yields no accepted slides is a SUCCESS value with
/// `valid == false` (matching the paper's "slide again" outcome); the
/// error alternative is reserved for config violations and stage failures.
///
/// `context` (core/pipeline_context.hpp) carries the immutable DSP plans
/// for `config.asp` + the session's chirp + sample rate — shared read-only
/// across any number of concurrent calls. A context that does not match
/// the session (wrong options, chirp, or rate) is not an error: the ASP
/// stage rebuilds a session-local one, so results never silently depend on
/// a stale cache.
///
/// `workspace` (core/session_workspace.hpp) is this call's mutable scratch
/// — strictly single-owner, reusable across sequential sessions, and the
/// reason the steady-state batch path allocates nearly nothing. Results
/// are bit-identical whatever workspace history is: buffers carry capacity
/// between sessions, never information.
///
/// When `metrics` is non-null it receives the per-stage observability
/// record (also on failure, up to the stage that failed).
///
/// `obs` (obs/trace.hpp) optionally attaches the observability layer: a
/// root "session" span with one child span per stage (asp/msp/ttl/ple) on
/// its tracer, plus stage-latency histograms, outcome counters, and
/// detector telemetry on its registry, all keyed by `obs->session_id`.
/// Null (the default) is the null sink — no clock reads beyond the
/// StageMetrics ones, nothing recorded — and the LocalizationResult is
/// byte-identical with and without it (tests/test_obs.cpp locks this in).
[[nodiscard]] Expected<LocalizationResult, PipelineError> try_localize(
    const sim::Session& session, const PipelineConfig& config,
    const PipelineContext& context, SessionWorkspace& workspace,
    StageMetrics* metrics = nullptr, const obs::ObsContext* obs = nullptr);

/// Context-free wrapper over the canonical spelling (one implementation —
/// this forwards, it does not duplicate): the DSP plans and the workspace
/// are built call-locally, which is exactly what the pre-context pipeline
/// did per session. Right for one-off calls; batch callers should reuse a
/// context and a per-worker workspace (or use `runtime::BatchEngine`,
/// which does both). Results are bit-identical either way.
[[nodiscard]] Expected<LocalizationResult, PipelineError> try_localize(
    const sim::Session& session, const PipelineConfig& config = {},
    StageMetrics* metrics = nullptr, const obs::ObsContext* obs = nullptr);

/// Throwing shim over the context-free `try_localize` for single-session
/// callers: unwraps the success value or rethrows the taxonomy-matched
/// Error subclass.
[[nodiscard]] LocalizationResult localize(const sim::Session& session,
                                          const PipelineConfig& config = {});

/// Scoring helper: projected Euclidean distance between the estimate and
/// the ground-truth speaker position on the floor map (the paper's accuracy
/// metric, Section VII-A). Requires a valid result.
[[nodiscard]] double localization_error(const LocalizationResult& result,
                                        const sim::Session& session);

}  // namespace hyperear::core
