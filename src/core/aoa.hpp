#pragma once

#include <optional>
#include <vector>

#include "core/asp.hpp"
#include "core/sdf.hpp"

/// @file aoa.hpp
/// Angle-of-arrival estimation from the inter-microphone TDoA.
///
/// Section IV's direction finding only needs the TDoA zero crossing, but
/// the full relationship tdoa = -D cos(alpha) / S (Fig. 7) yields a bearing
/// estimate at ANY phone orientation — useful for guiding the user's roll
/// ("turn 40 degrees left"), for coarse tracking while walking, and as the
/// initialization of the slide protocol. The inversion has the usual
/// two-microphone front/back ambiguity: alpha and 360 - alpha produce the
/// same TDoA; both candidates are returned.

namespace hyperear::core {

/// One bearing estimate from one chirp.
struct AoaEstimate {
  double time_s = 0.0;
  /// Angle from the phone's +y axis to the speaker, right-side branch
  /// (alpha in [0, 180] degrees, radians here).
  double alpha_right_rad = 0.0;
  /// The mirrored left-side candidate (= 2*pi - alpha_right).
  double alpha_left_rad = 0.0;
  double tdoa_s = 0.0;
};

/// AoA configuration.
struct AoaOptions {
  double mic_separation = 0.1366;  ///< D of the phone in use
  double sound_speed = 343.0;
  double pairing_slack_s = 0.7e-3;
};

/// Convert one inter-mic TDoA to the two bearing candidates. TDoAs beyond
/// the physical limit +-D/S are clamped to the endfire directions.
[[nodiscard]] AoaEstimate tdoa_to_bearing(const TdoaSample& sample,
                                          const AoaOptions& options);

/// Bearing series for a whole recording (one estimate per paired chirp).
[[nodiscard]] std::vector<AoaEstimate> estimate_bearings(const AspResult& asp,
                                                         const AoaOptions& options);

/// Aggregate a stationary interval into one bearing (circular median over
/// the right-branch candidates). Returns nullopt when no estimates fall in
/// [t_start, t_end).
[[nodiscard]] std::optional<double> aggregate_bearing(
    const std::vector<AoaEstimate>& estimates, double t_start, double t_end);

}  // namespace hyperear::core
