#include "dsp/fir.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "dsp/fft.hpp"
#include "dsp/ols.hpp"

namespace hyperear::dsp {

namespace {

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  return std::sin(kPi * x) / (kPi * x);
}

void check_design_args(double cutoff_hz, double sample_rate, std::size_t taps) {
  require(sample_rate > 0.0, "fir design: sample rate must be positive");
  require(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0,
          "fir design: cutoff must be in (0, fs/2)");
  require(taps >= 3 && taps % 2 == 1, "fir design: taps must be odd and >= 3");
}

}  // namespace

std::vector<double> design_lowpass(double cutoff_hz, double sample_rate, std::size_t taps,
                                   WindowType window) {
  check_design_args(cutoff_hz, sample_rate, taps);
  const double fc = cutoff_hz / sample_rate;  // normalized [0, 0.5)
  const auto mid = static_cast<double>(taps - 1) / 2.0;
  std::vector<double> h(taps);
  const std::vector<double> w = make_window(window, taps);
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double n = static_cast<double>(i) - mid;
    h[i] = 2.0 * fc * sinc(2.0 * fc * n) * w[i];
    sum += h[i];
  }
  // Normalize to exact unity DC gain.
  for (auto& v : h) v /= sum;
  return h;
}

std::vector<double> design_highpass(double cutoff_hz, double sample_rate, std::size_t taps,
                                    WindowType window) {
  std::vector<double> h = design_lowpass(cutoff_hz, sample_rate, taps, window);
  // Spectral inversion: delta at center minus the low-pass.
  for (auto& v : h) v = -v;
  h[(taps - 1) / 2] += 1.0;
  return h;
}

std::vector<double> design_bandpass(double low_hz, double high_hz, double sample_rate,
                                    std::size_t taps, WindowType window) {
  require(low_hz < high_hz, "design_bandpass: low_hz must be < high_hz");
  // Band-pass = difference of two low-passes.
  const std::vector<double> lp_high = design_lowpass(high_hz, sample_rate, taps, window);
  const std::vector<double> lp_low = design_lowpass(low_hz, sample_rate, taps, window);
  std::vector<double> h(taps);
  for (std::size_t i = 0; i < taps; ++i) h[i] = lp_high[i] - lp_low[i];
  return h;
}

namespace {

/// Direct-evaluation "same" filtering for small signal x taps products,
/// staging the full convolution through `full_scratch` (a workspace slot or
/// a local vector) so the into-spelling stays allocation-free.
void filter_same_direct_into(std::span<const double> signal,
                             std::span<const double> taps,
                             std::vector<double>& full_scratch,
                             std::vector<double>& out) {
  const std::size_t half = taps.size() / 2;
  full_scratch.assign(signal.size() + taps.size() - 1, 0.0);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    for (std::size_t j = 0; j < taps.size(); ++j) {
      full_scratch[i + j] += signal[i] * taps[j];
    }
  }
  out.resize(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) out[i] = full_scratch[i + half];
}

std::vector<double> filter_same_direct(std::span<const double> signal,
                                       std::span<const double> taps) {
  std::vector<double> full;
  std::vector<double> out;
  filter_same_direct_into(signal, taps, full, out);
  return out;
}

void check_filter_args(std::span<const double> signal, std::size_t taps) {
  require(!signal.empty(), "filter_same: empty signal");
  require(taps != 0 && taps % 2 == 1, "filter_same: taps must be odd-sized");
}

}  // namespace

std::vector<double> filter_same(std::span<const double> signal, std::span<const double> taps) {
  check_filter_args(signal, taps.size());
  if (signal.size() * taps.size() <= kDirectProductLimit) {
    return filter_same_direct(signal, taps);
  }
  // Overlap-save at the default block size for this kernel — the same
  // geometry a cached convolver for these taps would use, so the planless
  // and plan-cached overloads agree bit for bit.
  return OlsConvolver(std::vector<double>(taps.begin(), taps.end())).filter_same(signal);
}

std::vector<double> filter_same(std::span<const double> signal, const OlsConvolver& kernel,
                                Workspace* ws) {
  check_filter_args(signal, kernel.kernel_size());
  if (signal.size() * kernel.kernel_size() <= kDirectProductLimit) {
    return filter_same_direct(signal, kernel.kernel());
  }
  return kernel.filter_same(signal, ws);
}

void filter_same_into(std::span<const double> signal, const OlsConvolver& kernel,
                      std::vector<double>& out, Workspace& ws) {
  check_filter_args(signal, kernel.kernel_size());
  if (signal.size() * kernel.kernel_size() <= kDirectProductLimit) {
    filter_same_direct_into(signal, kernel.kernel(),
                            ws.real_scratch(0, signal.size() + kernel.kernel_size() - 1),
                            out);
    return;
  }
  kernel.filter_same_into(signal, out, ws);
}

StreamingFirFilter::StreamingFirFilter(const OlsConvolver& kernel) : kernel_(&kernel) {
  require(kernel.kernel_size() % 2 == 1,
          "StreamingFirFilter: kernel must be odd-sized");
}

void StreamingFirFilter::reset() {
  raw_.clear();
  raw_start_ = 0;
  total_ = 0;
  emitted_ = 0;
  next_block_ = 0;
  streaming_ = false;
  finished_ = false;
}

void StreamingFirFilter::emit_pair(std::size_t b, bool paired, std::vector<double>& out,
                                   Workspace& ws) {
  const std::size_t m = kernel_->kernel_size();
  const std::size_t block = kernel_->block_size();
  const std::size_t half_delay = m / 2;
  // Fresh "same"-mode output of this pair: full-convolution indices from
  // the emission frontier up to the pair's end, clipped to the batch
  // output window [half_delay, half_delay + total) and the full
  // convolution — the same bounds convolve_into's copy-out applies.
  const std::size_t pair_end = (b + (paired ? 2u : 1u)) * block;
  const std::size_t lo = half_delay + emitted_;
  const std::size_t hi = std::min({pair_end, half_delay + total_, total_ + m - 1});
  if (hi <= lo) return;
  const std::size_t count = hi - lo;
  const std::size_t base = out.size();
  out.resize(base + count);
  kernel_->convolve_pair_into(raw_, raw_start_, total_, b, paired, lo, count,
                              out.data() + base, ws);
  emitted_ += count;
}

void StreamingFirFilter::push(std::span<const double> chunk, std::vector<double>& out,
                              Workspace& ws) {
  require(!finished_, "StreamingFirFilter: push after finish");
  if (chunk.empty()) return;
  raw_.insert(raw_.end(), chunk.begin(), chunk.end());
  total_ += chunk.size();
  const std::size_t m = kernel_->kernel_size();
  if (!streaming_) {
    // Below the direct-path threshold the final route is still unknown —
    // retain everything (bounded: at most kDirectProductLimit / m samples
    // plus this push). Once the product exceeds the limit it can only
    // grow, so the batch path is guaranteed on the overlap-save route and
    // pairs may stream out.
    if (total_ * m <= kDirectProductLimit) return;
    streaming_ = true;
    next_block_ = ((m / 2) / kernel_->block_size()) & ~std::size_t{1};
  }
  const std::size_t block = kernel_->block_size();
  // A pair is final once its whole input window [b*block - (m-1),
  // (b+2)*block) lies inside the pushed prefix: no sample it reads can be
  // affected by future pushes or end-of-signal padding, and the final
  // signal is long enough that its paired flag is certainly true.
  while (total_ >= (next_block_ + 2) * block) {
    emit_pair(next_block_, true, out, ws);
    next_block_ += 2;
  }
  // Drop raw samples below the next pair's input window, compacting at
  // block granularity so a 1-sample push cadence stays O(1) amortized.
  const std::size_t window_start =
      next_block_ * block > (m - 1) ? next_block_ * block - (m - 1) : 0;
  if (window_start > raw_start_ + block) {
    raw_.erase(raw_.begin(),
               raw_.begin() + static_cast<std::ptrdiff_t>(window_start - raw_start_));
    raw_start_ = window_start;
  }
}

void StreamingFirFilter::finish(std::vector<double>& out, Workspace& ws) {
  require(!finished_, "StreamingFirFilter: finish called twice");
  require(total_ > 0, "filter_same: empty signal");
  finished_ = true;
  const std::size_t m = kernel_->kernel_size();
  if (!streaming_) {
    // The whole signal is retained and below the threshold: the batch path
    // would evaluate directly, so run exactly that.
    filter_same_into(raw_, *kernel_, stage_, ws);
    out.insert(out.end(), stage_.begin(), stage_.end());
    emitted_ = total_;
    return;
  }
  // Tail pairs: the final length is known now, so the batch pair schedule
  // (last block, paired flags, end-of-signal zero padding) is replayed
  // exactly from the frontier.
  const std::size_t block = kernel_->block_size();
  const std::size_t half_delay = m / 2;
  const std::size_t full_len = total_ + m - 1;
  const std::size_t total_blocks = (full_len + block - 1) / block;
  const std::size_t last_block = (half_delay + total_ - 1) / block;
  for (std::size_t b = next_block_; b <= last_block; b += 2) {
    emit_pair(b, b + 1 < total_blocks, out, ws);
  }
}

double fir_magnitude_at(std::span<const double> taps, double freq_hz, double sample_rate) {
  require(sample_rate > 0.0, "fir_magnitude_at: sample rate must be positive");
  const double omega = 2.0 * kPi * freq_hz / sample_rate;
  double re = 0.0, im = 0.0;
  for (std::size_t i = 0; i < taps.size(); ++i) {
    re += taps[i] * std::cos(omega * static_cast<double>(i));
    im -= taps[i] * std::sin(omega * static_cast<double>(i));
  }
  return std::sqrt(re * re + im * im);
}

}  // namespace hyperear::dsp
