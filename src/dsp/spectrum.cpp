#include "dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/units.hpp"
#include "dsp/fft.hpp"
#include "dsp/window.hpp"

namespace hyperear::dsp {

Periodogram periodogram(std::span<const double> x, double sample_rate) {
  require(!x.empty(), "periodogram: empty input");
  require(sample_rate > 0.0, "periodogram: bad sample rate");
  const std::size_t nfft = next_pow2(x.size());
  std::vector<double> windowed(x.begin(), x.end());
  const std::vector<double> w = make_window(WindowType::kHann, windowed.size());
  double wsum2 = 0.0;
  for (double v : w) wsum2 += v * v;
  apply_window(windowed, w);
  const std::vector<Complex> spec = fft_real(windowed, nfft);
  Periodogram out;
  out.bin_hz = sample_rate / static_cast<double>(nfft);
  out.power.resize(nfft / 2 + 1);
  for (std::size_t k = 0; k < out.power.size(); ++k) {
    const double mag2 = std::norm(spec[k]);
    // Scale so that summing bins over a band approximates the band power of
    // the unwindowed signal.
    double p = mag2 / (wsum2 * static_cast<double>(nfft));
    if (k != 0 && k != nfft / 2) p *= 2.0;  // fold negative frequencies
    out.power[k] = p;
  }
  return out;
}

double signal_power(std::span<const double> x) {
  require(!x.empty(), "signal_power: empty input");
  double s = 0.0;
  for (double v : x) s += v * v;
  return s / static_cast<double>(x.size());
}

double band_power(std::span<const double> x, double sample_rate, double low_hz,
                  double high_hz) {
  require(low_hz >= 0.0 && low_hz < high_hz && high_hz <= sample_rate / 2.0,
          "band_power: invalid band");
  const Periodogram pg = periodogram(x, sample_rate);
  // Bins are normalized so that the one-sided sum over all bins equals the
  // mean power of the signal; a band sum is therefore the band power.
  double total = 0.0;
  for (std::size_t k = 0; k < pg.power.size(); ++k) {
    const double f = static_cast<double>(k) * pg.bin_hz;
    if (f >= low_hz && f <= high_hz) total += pg.power[k];
  }
  return total;
}

double band_snr_db(std::span<const double> signal_segment,
                   std::span<const double> noise_segment, double sample_rate, double low_hz,
                   double high_hz) {
  const double ps = band_power(signal_segment, sample_rate, low_hz, high_hz);
  const double pn = band_power(noise_segment, sample_rate, low_hz, high_hz);
  require(pn > 0.0, "band_snr_db: zero noise power");
  const double sig_only = std::max(ps - pn, 1e-300);
  return power_to_db(sig_only / pn);
}

}  // namespace hyperear::dsp
