#pragma once

#include <span>
#include <vector>

#include "dsp/window.hpp"

/// @file stft.hpp
/// Short-time Fourier transform (magnitude spectrogram). Used for
/// diagnostics: visualizing beacon chirps against ambient noise, tracking
/// non-stationary noise bursts (the mall busy-hour condition), and
/// verifying the chirp's frequency trajectory.

namespace hyperear::dsp {

/// STFT framing parameters.
struct StftOptions {
  std::size_t frame = 1024;   ///< samples per frame (padded to pow2 FFT)
  std::size_t hop = 256;      ///< samples between frame starts
  WindowType window = WindowType::kHann;
};

/// Magnitude spectrogram.
struct Spectrogram {
  double sample_rate = 0.0;
  double bin_hz = 0.0;        ///< frequency resolution
  std::size_t hop = 0;
  /// magnitude[t][k]: frame t, bin k (k spans 0..nfft/2).
  std::vector<std::vector<double>> magnitude;

  [[nodiscard]] std::size_t frames() const { return magnitude.size(); }
  [[nodiscard]] std::size_t bins() const {
    return magnitude.empty() ? 0 : magnitude.front().size();
  }
  /// Center time of frame t in seconds.
  [[nodiscard]] double time_of(std::size_t t) const;
  /// Frequency of bin k in Hz.
  [[nodiscard]] double freq_of(std::size_t k) const { return bin_hz * static_cast<double>(k); }
};

/// Compute the magnitude spectrogram of a real signal. Requires a signal at
/// least one frame long, hop >= 1 and hop <= frame.
[[nodiscard]] Spectrogram stft(std::span<const double> signal, double sample_rate,
                               const StftOptions& options = {});

/// Per-frame energy inside [low_hz, high_hz] — a band-limited power track.
[[nodiscard]] std::vector<double> band_energy_track(const Spectrogram& spec, double low_hz,
                                                    double high_hz);

/// Index of the strongest bin per frame within [low_hz, high_hz], returned
/// as frequencies — traces a chirp's instantaneous-frequency trajectory.
[[nodiscard]] std::vector<double> peak_frequency_track(const Spectrogram& spec,
                                                       double low_hz, double high_hz);

}  // namespace hyperear::dsp
