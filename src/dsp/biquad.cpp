#include "dsp/biquad.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hyperear::dsp {

Biquad::Biquad(double b0, double b1, double b2, double a1, double a2)
    : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

namespace {
void check_freq(double f, double fs) {
  require(fs > 0.0 && f > 0.0 && f < fs / 2.0, "biquad: frequency must be in (0, fs/2)");
}
}  // namespace

Biquad Biquad::lowpass(double cutoff_hz, double sample_rate, double q) {
  check_freq(cutoff_hz, sample_rate);
  require(q > 0.0, "biquad: q must be positive");
  const double w0 = 2.0 * kPi * cutoff_hz / sample_rate;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  return {(1.0 - cw) / 2.0 / a0, (1.0 - cw) / a0, (1.0 - cw) / 2.0 / a0, -2.0 * cw / a0,
          (1.0 - alpha) / a0};
}

Biquad Biquad::highpass(double cutoff_hz, double sample_rate, double q) {
  check_freq(cutoff_hz, sample_rate);
  require(q > 0.0, "biquad: q must be positive");
  const double w0 = 2.0 * kPi * cutoff_hz / sample_rate;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  return {(1.0 + cw) / 2.0 / a0, -(1.0 + cw) / a0, (1.0 + cw) / 2.0 / a0, -2.0 * cw / a0,
          (1.0 - alpha) / a0};
}

Biquad Biquad::bandpass(double center_hz, double sample_rate, double q) {
  check_freq(center_hz, sample_rate);
  require(q > 0.0, "biquad: q must be positive");
  const double w0 = 2.0 * kPi * center_hz / sample_rate;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  return {alpha / a0, 0.0, -alpha / a0, -2.0 * cw / a0, (1.0 - alpha) / a0};
}

double Biquad::process(double x) {
  const double y = b0_ * x + b1_ * x1_ + b2_ * x2_ - a1_ * y1_ - a2_ * y2_;
  x2_ = x1_;
  x1_ = x;
  y2_ = y1_;
  y1_ = y;
  return y;
}

void Biquad::reset() { x1_ = x2_ = y1_ = y2_ = 0.0; }

std::vector<double> Biquad::filter(std::span<const double> signal) {
  reset();
  std::vector<double> out(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) out[i] = process(signal[i]);
  return out;
}

double Biquad::magnitude_at(double freq_hz, double sample_rate) const {
  const double w = 2.0 * kPi * freq_hz / sample_rate;
  const std::complex<double> z = std::polar(1.0, -w);
  const std::complex<double> num = b0_ + b1_ * z + b2_ * z * z;
  const std::complex<double> den = 1.0 + a1_ * z + a2_ * z * z;
  return std::abs(num / den);
}

ButterworthCascade::ButterworthCascade(Kind kind, int order, double cutoff_hz,
                                       double sample_rate) {
  require(order >= 2 && order % 2 == 0, "ButterworthCascade: order must be even and >= 2");
  const int pairs = order / 2;
  sections_.reserve(static_cast<std::size_t>(pairs));
  for (int k = 0; k < pairs; ++k) {
    // Butterworth pole quality factors.
    const double theta = kPi * (2.0 * k + 1.0) / (2.0 * order);
    const double q = 1.0 / (2.0 * std::sin(theta));
    sections_.push_back(kind == Kind::kLowpass ? Biquad::lowpass(cutoff_hz, sample_rate, q)
                                               : Biquad::highpass(cutoff_hz, sample_rate, q));
  }
}

std::vector<double> ButterworthCascade::filter(std::span<const double> signal) {
  std::vector<double> out(signal.begin(), signal.end());
  for (auto& sec : sections_) out = sec.filter(out);
  return out;
}

std::vector<double> ButterworthCascade::filtfilt(std::span<const double> signal) {
  std::vector<double> fwd = filter(signal);
  std::reverse(fwd.begin(), fwd.end());
  std::vector<double> bwd = filter(fwd);
  std::reverse(bwd.begin(), bwd.end());
  return bwd;
}

}  // namespace hyperear::dsp
