#include "dsp/resample.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hyperear::dsp {

namespace {

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  return std::sin(kPi * x) / (kPi * x);
}

}  // namespace

double sinc_interpolate(std::span<const double> x, double idx, int half_width) {
  require(!x.empty(), "sinc_interpolate: empty input");
  require(half_width >= 1, "sinc_interpolate: half_width must be >= 1");
  const auto center = static_cast<long long>(std::floor(idx));
  double acc = 0.0;
  for (long long k = center - half_width + 1; k <= center + half_width; ++k) {
    if (k < 0 || k >= static_cast<long long>(x.size())) continue;
    const double d = idx - static_cast<double>(k);
    // Hann-windowed sinc kernel.
    const double w = 0.5 + 0.5 * std::cos(kPi * d / static_cast<double>(half_width));
    acc += x[static_cast<std::size_t>(k)] * sinc(d) * w;
  }
  return acc;
}

std::vector<double> upsample(std::span<const double> x, int factor, int half_width) {
  require(factor >= 1, "upsample: factor must be >= 1");
  if (factor == 1) return {x.begin(), x.end()};
  std::vector<double> out(x.size() * static_cast<std::size_t>(factor));
  for (std::size_t k = 0; k < out.size(); ++k) {
    const double idx = static_cast<double>(k) / static_cast<double>(factor);
    out[k] = sinc_interpolate(x, idx, half_width);
  }
  return out;
}

std::vector<double> resample_linear(std::span<const double> x, double rate_in,
                                    double rate_out) {
  require(!x.empty(), "resample_linear: empty input");
  require(rate_in > 0.0 && rate_out > 0.0, "resample_linear: rates must be positive");
  const double duration = static_cast<double>(x.size() - 1) / rate_in;
  const auto n_out = static_cast<std::size_t>(std::floor(duration * rate_out)) + 1;
  std::vector<double> out(n_out);
  for (std::size_t k = 0; k < n_out; ++k) {
    const double t = static_cast<double>(k) / rate_out;
    const double idx = t * rate_in;
    const auto i0 = static_cast<std::size_t>(idx);
    if (i0 + 1 >= x.size()) {
      out[k] = x.back();
    } else {
      const double frac = idx - static_cast<double>(i0);
      out[k] = x[i0] + frac * (x[i0 + 1] - x[i0]);
    }
  }
  return out;
}

}  // namespace hyperear::dsp
