#pragma once

#include <span>
#include <vector>

/// @file correlation.hpp
/// Cross-correlation, the primitive behind chirp detection (paper Section
/// IV-A, following BeepBeep): the recording is correlated against the
/// reference chirp and correlation peaks mark signal arrivals.

namespace hyperear::dsp {

class OlsConvolver;
class Workspace;

/// Full cross-correlation of x against a shorter template h:
/// out[k] = sum_j x[k + j] * h[j] for k = 0 .. x.size() - h.size().
/// This is "valid"-mode correlation; out.size() == x.size() - h.size() + 1.
/// Requires h.size() <= x.size() and non-empty inputs. Large products
/// stream through block overlap-save convolution with the reversed
/// template (dsp/ols.hpp); small ones are evaluated directly.
[[nodiscard]] std::vector<double> correlate_valid(std::span<const double> x,
                                                  std::span<const double> h);

/// `correlate_valid` against a precomputed template spectrum: the convolver
/// must have been built with the time-REVERSED template (correlation is
/// convolution with the reversal) — exactly the reversed-spectrum cache
/// core::PipelineContext keeps for the matched filter. Small products take
/// the same direct path as the planless overload, so for any given input
/// both spellings produce identical bits.
[[nodiscard]] std::vector<double> correlate_valid(std::span<const double> x,
                                                  const OlsConvolver& reversed_template,
                                                  Workspace* ws = nullptr);

/// `correlate_valid` against a precomputed reversed-template spectrum, into
/// a caller-owned buffer (resized to the valid length, every element
/// overwritten) — the allocation-free spelling for loops whose output
/// buffer persists across calls (the matched-filter detector's chunk loop).
/// Takes the direct path below the same size threshold, so all spellings
/// produce identical bits.
void correlate_valid_into(std::span<const double> x,
                          const OlsConvolver& reversed_template,
                          std::vector<double>& out, Workspace& ws);

/// Sliding normalized cross-correlation: correlate_valid divided by the
/// local L2 norm of x over the template window times ||h||. Values in
/// [-1, 1]; robust to amplitude variation across the recording.
[[nodiscard]] std::vector<double> correlate_normalized(std::span<const double> x,
                                                       std::span<const double> h);

/// Normalize an already-computed valid-mode correlation of `x` against a
/// template of length `h_size` and L2 norm `h_norm`. Exactly the
/// normalization `correlate_normalized` applies, split out so callers that
/// need both the raw and the normalized statistic (the matched-filter
/// detector) can correlate once instead of twice. Requires
/// corr.size() == x.size() - h_size + 1 and h_norm > 0.
[[nodiscard]] std::vector<double> normalize_correlation(std::span<const double> corr,
                                                        std::span<const double> x,
                                                        std::size_t h_size,
                                                        double h_norm);

/// Allocation-free spelling of `normalize_correlation` for loops: the
/// prefix-sum scratch and the output live in caller-owned buffers (resized
/// as needed). Same result, same preconditions.
void normalize_correlation_into(std::span<const double> corr, std::span<const double> x,
                                std::size_t h_size, double h_norm,
                                std::vector<double>& prefix_scratch,
                                std::vector<double>& out);

/// Full "linear" cross-correlation with lags from -(h.size()-1) to
/// x.size()-1 (like numpy.correlate(x, h, "full") reversed appropriately).
/// Used by tests that check autocorrelation symmetry. Large products
/// stream through overlap-save like `correlate_valid`.
[[nodiscard]] std::vector<double> correlate_full(std::span<const double> x,
                                                 std::span<const double> h);

/// `correlate_full` against a precomputed reversed-template spectrum (see
/// the `correlate_valid` overload for the reversal contract).
[[nodiscard]] std::vector<double> correlate_full(std::span<const double> x,
                                                 const OlsConvolver& reversed_template,
                                                 Workspace* ws = nullptr);

}  // namespace hyperear::dsp
