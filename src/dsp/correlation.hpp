#pragma once

#include <span>
#include <vector>

/// @file correlation.hpp
/// Cross-correlation, the primitive behind chirp detection (paper Section
/// IV-A, following BeepBeep): the recording is correlated against the
/// reference chirp and correlation peaks mark signal arrivals.

namespace hyperear::dsp {

/// Full cross-correlation of x against a shorter template h:
/// out[k] = sum_j x[k + j] * h[j] for k = 0 .. x.size() - h.size().
/// This is "valid"-mode correlation; out.size() == x.size() - h.size() + 1.
/// Requires h.size() <= x.size() and non-empty inputs. Uses FFT for large
/// products, direct evaluation otherwise.
[[nodiscard]] std::vector<double> correlate_valid(std::span<const double> x,
                                                  std::span<const double> h);

/// Sliding normalized cross-correlation: correlate_valid divided by the
/// local L2 norm of x over the template window times ||h||. Values in
/// [-1, 1]; robust to amplitude variation across the recording.
[[nodiscard]] std::vector<double> correlate_normalized(std::span<const double> x,
                                                       std::span<const double> h);

/// Normalize an already-computed valid-mode correlation of `x` against a
/// template of length `h_size` and L2 norm `h_norm`. Exactly the
/// normalization `correlate_normalized` applies, split out so callers that
/// need both the raw and the normalized statistic (the matched-filter
/// detector) can correlate once instead of twice. Requires
/// corr.size() == x.size() - h_size + 1 and h_norm > 0.
[[nodiscard]] std::vector<double> normalize_correlation(std::span<const double> corr,
                                                        std::span<const double> x,
                                                        std::size_t h_size,
                                                        double h_norm);

/// Full "linear" cross-correlation with lags from -(h.size()-1) to
/// x.size()-1 (like numpy.correlate(x, h, "full") reversed appropriately).
/// Used by tests that check autocorrelation symmetry.
[[nodiscard]] std::vector<double> correlate_full(std::span<const double> x,
                                                 std::span<const double> h);

}  // namespace hyperear::dsp
