#include "dsp/chirp.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hyperear::dsp {

Chirp::Chirp(const ChirpParams& params) : params_(params) {
  require(params.freq_low_hz > 0.0, "Chirp: freq_low must be positive");
  require(params.freq_high_hz > params.freq_low_hz, "Chirp: freq_high must exceed freq_low");
  require(params.duration_s > 0.0, "Chirp: duration must be positive");
  require(params.edge_fade_fraction >= 0.0 && params.edge_fade_fraction < 0.5,
          "Chirp: edge fade fraction must be in [0, 0.5)");
  half_ = params.duration_s / 2.0;
  rate_ = (params.freq_high_hz - params.freq_low_hz) / half_;
}

double Chirp::instantaneous_frequency(double t) const {
  if (t <= 0.0) return params_.freq_low_hz;
  if (t >= params_.duration_s) return params_.freq_low_hz;
  if (t <= half_) return params_.freq_low_hz + rate_ * t;
  return params_.freq_high_hz - rate_ * (t - half_);
}

double Chirp::value(double t) const {
  if (t < 0.0 || t > params_.duration_s) return 0.0;
  double phase;
  if (t <= half_) {
    phase = 2.0 * kPi * (params_.freq_low_hz * t + 0.5 * rate_ * t * t);
  } else {
    const double phase_mid =
        2.0 * kPi * (params_.freq_low_hz * half_ + 0.5 * rate_ * half_ * half_);
    const double tau = t - half_;
    phase = phase_mid + 2.0 * kPi * (params_.freq_high_hz * tau - 0.5 * rate_ * tau * tau);
  }
  double gain = params_.amplitude;
  const double fade = params_.edge_fade_fraction * params_.duration_s;
  if (fade > 0.0) {
    if (t < fade) {
      gain *= 0.5 - 0.5 * std::cos(kPi * t / fade);
    } else if (t > params_.duration_s - fade) {
      gain *= 0.5 - 0.5 * std::cos(kPi * (params_.duration_s - t) / fade);
    }
  }
  return gain * std::sin(phase);
}

std::vector<double> Chirp::sample(double sample_rate) const {
  require(sample_rate > 2.0 * params_.freq_high_hz,
          "Chirp::sample: sample rate below Nyquist for the chirp band");
  const auto n = static_cast<std::size_t>(std::llround(params_.duration_s * sample_rate));
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = value(static_cast<double>(i) / sample_rate);
  }
  return out;
}

std::vector<double> Chirp::reference(double sample_rate) const {
  std::vector<double> ref = sample(sample_rate);
  double energy = 0.0;
  for (double v : ref) energy += v * v;
  require(energy > 0.0, "Chirp::reference: zero-energy waveform");
  const double inv = 1.0 / std::sqrt(energy);
  for (auto& v : ref) v *= inv;
  return ref;
}

}  // namespace hyperear::dsp
