#pragma once

#include <span>
#include <vector>

/// @file window.hpp
/// Window functions for FIR design, spectral analysis and chirp shaping.

namespace hyperear::dsp {

/// Window families supported by make_window.
enum class WindowType {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
};

/// Generate a symmetric window of length n (n >= 1).
[[nodiscard]] std::vector<double> make_window(WindowType type, std::size_t n);

/// Multiply a signal by a window in place. Requires matching lengths.
void apply_window(std::span<double> signal, std::span<const double> window);

/// Apply a raised-cosine fade of `fade_len` samples to both ends of the
/// signal (Tukey-style edge taper; used to band-limit chirp onsets).
/// Requires 2 * fade_len <= signal length.
void apply_edge_taper(std::span<double> signal, std::size_t fade_len);

}  // namespace hyperear::dsp
