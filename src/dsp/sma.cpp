#include "dsp/sma.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hyperear::dsp {

std::vector<double> moving_average(std::span<const double> x, std::size_t n) {
  require(n >= 1, "moving_average: n must be >= 1");
  std::vector<double> out(x.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += x[i];
    if (i >= n) acc -= x[i - n];
    const std::size_t count = i + 1 < n ? i + 1 : n;
    out[i] = acc / static_cast<double>(count);
  }
  return out;
}

double moving_average_magnitude(std::size_t n, double freq_hz, double sample_rate) {
  require(n >= 1 && sample_rate > 0.0, "moving_average_magnitude: bad arguments");
  if (freq_hz == 0.0) return 1.0;
  const double w = kPi * freq_hz / sample_rate;
  const double num = std::sin(static_cast<double>(n) * w);
  const double den = static_cast<double>(n) * std::sin(w);
  if (std::abs(den) < 1e-30) return 1.0;
  return std::abs(num / den);
}

double moving_average_cutoff_hz(std::size_t n, double sample_rate) {
  require(n >= 2, "moving_average_cutoff_hz: n must be >= 2");
  const double target = std::sqrt(0.5);  // -3 dB
  double lo = 0.0;
  double hi = sample_rate / 2.0;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (moving_average_magnitude(n, mid, sample_rate) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace hyperear::dsp
