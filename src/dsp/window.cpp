#include "dsp/window.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hyperear::dsp {

std::vector<double> make_window(WindowType type, std::size_t n) {
  require(n >= 1, "make_window: need at least one sample");
  std::vector<double> w(n, 1.0);
  if (n == 1) return w;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / denom;
    switch (type) {
      case WindowType::kRectangular:
        w[i] = 1.0;
        break;
      case WindowType::kHann:
        w[i] = 0.5 - 0.5 * std::cos(2.0 * kPi * t);
        break;
      case WindowType::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(2.0 * kPi * t);
        break;
      case WindowType::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(2.0 * kPi * t) + 0.08 * std::cos(4.0 * kPi * t);
        break;
    }
  }
  return w;
}

void apply_window(std::span<double> signal, std::span<const double> window) {
  require(signal.size() == window.size(), "apply_window: length mismatch");
  for (std::size_t i = 0; i < signal.size(); ++i) signal[i] *= window[i];
}

void apply_edge_taper(std::span<double> signal, std::size_t fade_len) {
  require(2 * fade_len <= signal.size(), "apply_edge_taper: fade too long");
  for (std::size_t i = 0; i < fade_len; ++i) {
    const double g =
        0.5 - 0.5 * std::cos(kPi * static_cast<double>(i) / static_cast<double>(fade_len));
    signal[i] *= g;
    signal[signal.size() - 1 - i] *= g;
  }
}

}  // namespace hyperear::dsp
