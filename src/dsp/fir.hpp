#pragma once

#include <span>
#include <vector>

#include "dsp/window.hpp"

/// @file fir.hpp
/// Windowed-sinc FIR design and linear filtering.
///
/// HyperEar's Acoustic Signal Preprocessing stage band-passes the recording
/// to the chirp band (2-6.4 kHz) so ambient sound outside the band — human
/// voice in the meeting room is mostly below 2 kHz — is removed before
/// matched filtering (paper Sections III and VII-E).

namespace hyperear::dsp {

/// Design a low-pass windowed-sinc FIR. `cutoff_hz` in (0, fs/2),
/// `taps` odd and >= 3. Unity DC gain.
[[nodiscard]] std::vector<double> design_lowpass(double cutoff_hz, double sample_rate,
                                                 std::size_t taps,
                                                 WindowType window = WindowType::kHamming);

/// Design a high-pass FIR by spectral inversion of the low-pass design.
[[nodiscard]] std::vector<double> design_highpass(double cutoff_hz, double sample_rate,
                                                  std::size_t taps,
                                                  WindowType window = WindowType::kHamming);

/// Design a band-pass FIR with pass band [low_hz, high_hz].
/// Requires 0 < low_hz < high_hz < fs/2.
[[nodiscard]] std::vector<double> design_bandpass(double low_hz, double high_hz,
                                                  double sample_rate, std::size_t taps,
                                                  WindowType window = WindowType::kHamming);

class OlsConvolver;
class Workspace;

/// Convolve the signal with FIR taps, "same" mode: the output has the input
/// length and is aligned so the filter's group delay ((taps-1)/2 samples for
/// a symmetric design) is removed. Large signal x taps products stream
/// through block overlap-save convolution (dsp/ols.hpp) at the default
/// block size for the kernel; small ones are evaluated directly.
[[nodiscard]] std::vector<double> filter_same(std::span<const double> signal,
                                              std::span<const double> taps);

/// `filter_same` through a prebuilt overlap-save convolver (whose kernel is
/// the taps) and an optional reusable workspace — the zero-setup-cost
/// spelling for batch callers (core::PipelineContext caches the convolver).
/// Takes the direct path below the same size threshold as the planless
/// overload, so for any given input both spellings produce identical bits.
[[nodiscard]] std::vector<double> filter_same(std::span<const double> signal,
                                              const OlsConvolver& kernel,
                                              Workspace* ws = nullptr);

/// `filter_same` through a prebuilt convolver into a caller-owned buffer
/// (resized to signal.size(), every element overwritten) — the
/// allocation-free spelling for batch loops whose output buffer persists
/// across sessions (core::SessionWorkspace). Takes the direct path below
/// the same size threshold, staging through `ws`, so all three spellings
/// produce identical bits.
void filter_same_into(std::span<const double> signal, const OlsConvolver& kernel,
                      std::vector<double>& out, Workspace& ws);

/// Frequency response magnitude of an FIR at the given frequency.
[[nodiscard]] double fir_magnitude_at(std::span<const double> taps, double freq_hz,
                                      double sample_rate);

/// Incremental spelling of `filter_same_into` for one fixed kernel: feed
/// the signal in arbitrary-size chunks via `push`, collect filtered samples
/// as they become final, and `finish` once the signal ends. The
/// concatenation of everything appended to the `out` sinks is BIT-IDENTICAL
/// to `filter_same_into(concatenated_input, kernel, out, ws)` — for every
/// chunking — because the filter replays the batch path's exact decision
/// points:
///
///  * path selection: the batch path evaluates directly when
///    signal_len * taps <= kDirectProductLimit. The product only grows, so
///    the filter buffers raw input until it EXCEEDS the limit (from then on
///    the batch path is guaranteed on the overlap-save route) and
///    `finish` falls back to the direct evaluation when the signal ended
///    below it;
///  * block geometry: on the overlap-save route, pair (b, b+1) is emitted
///    once the input window it reads, [b*block - (taps-1), (b+2)*block), is
///    fully inside the pushed prefix — at that point its arithmetic (and
///    its paired flag) no longer depend on the unknown final length, so
///    `OlsConvolver::convolve_pair_into` reproduces the batch pair exactly.
///    `finish` runs the remaining tail pairs with the final length's
///    zero-padding and paired flags.
///
/// Memory: `retained()` raw samples are held — at most
/// max(kDirectProductLimit / taps, 2*block + taps - 1) plus the last push's
/// length — independent of the total signal length.
///
/// Single-owner mutable state, like `Workspace`: one instance per stream,
/// never shared across threads. The referenced convolver must outlive it.
class StreamingFirFilter {
 public:
  /// `kernel` must outlive the filter; its kernel must be odd-sized (the
  /// "same"-mode group-delay removal needs a center tap).
  explicit StreamingFirFilter(const OlsConvolver& kernel);

  /// Rewind to a fresh stream (buffer capacity is retained).
  void reset();

  /// Append `chunk` to the signal; every filtered sample that became final
  /// is appended to `out`.
  void push(std::span<const double> chunk, std::vector<double>& out, Workspace& ws);

  /// End of signal: append all remaining filtered samples to `out` (after
  /// which the total appended across push/finish equals the total pushed).
  /// `push` and `finish` must not be called again before `reset`. A
  /// zero-length stream is invalid (mirrors `filter_same`'s non-empty
  /// requirement).
  void finish(std::vector<double>& out, Workspace& ws);

  /// Raw input samples currently retained (the bounded lookback window).
  [[nodiscard]] std::size_t retained() const { return raw_.size(); }
  [[nodiscard]] std::size_t total_pushed() const { return total_; }
  /// Filtered samples appended to the out sinks so far.
  [[nodiscard]] std::size_t emitted() const { return emitted_; }

 private:
  /// Emit one transform pair (blocks b, b+1 of the full convolution) and
  /// append its fresh "same"-mode samples to `out`.
  void emit_pair(std::size_t b, bool paired, std::vector<double>& out, Workspace& ws);

  const OlsConvolver* kernel_;
  std::vector<double> raw_;     ///< retained input: signal [raw_start_, total_)
  std::vector<double> stage_;   ///< finish()-time staging for the direct path
  std::size_t raw_start_ = 0;   ///< signal index of raw_[0]
  std::size_t total_ = 0;       ///< signal samples pushed so far
  std::size_t emitted_ = 0;     ///< filtered samples emitted so far
  std::size_t next_block_ = 0;  ///< next (even) pair index, once streaming_
  bool streaming_ = false;      ///< crossed kDirectProductLimit: OLS route
  bool finished_ = false;
};

}  // namespace hyperear::dsp
