#pragma once

#include <span>
#include <vector>

#include "dsp/window.hpp"

/// @file fir.hpp
/// Windowed-sinc FIR design and linear filtering.
///
/// HyperEar's Acoustic Signal Preprocessing stage band-passes the recording
/// to the chirp band (2-6.4 kHz) so ambient sound outside the band — human
/// voice in the meeting room is mostly below 2 kHz — is removed before
/// matched filtering (paper Sections III and VII-E).

namespace hyperear::dsp {

/// Design a low-pass windowed-sinc FIR. `cutoff_hz` in (0, fs/2),
/// `taps` odd and >= 3. Unity DC gain.
[[nodiscard]] std::vector<double> design_lowpass(double cutoff_hz, double sample_rate,
                                                 std::size_t taps,
                                                 WindowType window = WindowType::kHamming);

/// Design a high-pass FIR by spectral inversion of the low-pass design.
[[nodiscard]] std::vector<double> design_highpass(double cutoff_hz, double sample_rate,
                                                  std::size_t taps,
                                                  WindowType window = WindowType::kHamming);

/// Design a band-pass FIR with pass band [low_hz, high_hz].
/// Requires 0 < low_hz < high_hz < fs/2.
[[nodiscard]] std::vector<double> design_bandpass(double low_hz, double high_hz,
                                                  double sample_rate, std::size_t taps,
                                                  WindowType window = WindowType::kHamming);

class OlsConvolver;
class Workspace;

/// Convolve the signal with FIR taps, "same" mode: the output has the input
/// length and is aligned so the filter's group delay ((taps-1)/2 samples for
/// a symmetric design) is removed. Large signal x taps products stream
/// through block overlap-save convolution (dsp/ols.hpp) at the default
/// block size for the kernel; small ones are evaluated directly.
[[nodiscard]] std::vector<double> filter_same(std::span<const double> signal,
                                              std::span<const double> taps);

/// `filter_same` through a prebuilt overlap-save convolver (whose kernel is
/// the taps) and an optional reusable workspace — the zero-setup-cost
/// spelling for batch callers (core::PipelineContext caches the convolver).
/// Takes the direct path below the same size threshold as the planless
/// overload, so for any given input both spellings produce identical bits.
[[nodiscard]] std::vector<double> filter_same(std::span<const double> signal,
                                              const OlsConvolver& kernel,
                                              Workspace* ws = nullptr);

/// `filter_same` through a prebuilt convolver into a caller-owned buffer
/// (resized to signal.size(), every element overwritten) — the
/// allocation-free spelling for batch loops whose output buffer persists
/// across sessions (core::SessionWorkspace). Takes the direct path below
/// the same size threshold, staging through `ws`, so all three spellings
/// produce identical bits.
void filter_same_into(std::span<const double> signal, const OlsConvolver& kernel,
                      std::vector<double>& out, Workspace& ws);

/// Frequency response magnitude of an FIR at the given frequency.
[[nodiscard]] double fir_magnitude_at(std::span<const double> taps, double freq_hz,
                                      double sample_rate);

}  // namespace hyperear::dsp
