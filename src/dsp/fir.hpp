#pragma once

#include <span>
#include <vector>

#include "dsp/window.hpp"

/// @file fir.hpp
/// Windowed-sinc FIR design and linear filtering.
///
/// HyperEar's Acoustic Signal Preprocessing stage band-passes the recording
/// to the chirp band (2-6.4 kHz) so ambient sound outside the band — human
/// voice in the meeting room is mostly below 2 kHz — is removed before
/// matched filtering (paper Sections III and VII-E).

namespace hyperear::dsp {

/// Design a low-pass windowed-sinc FIR. `cutoff_hz` in (0, fs/2),
/// `taps` odd and >= 3. Unity DC gain.
[[nodiscard]] std::vector<double> design_lowpass(double cutoff_hz, double sample_rate,
                                                 std::size_t taps,
                                                 WindowType window = WindowType::kHamming);

/// Design a high-pass FIR by spectral inversion of the low-pass design.
[[nodiscard]] std::vector<double> design_highpass(double cutoff_hz, double sample_rate,
                                                  std::size_t taps,
                                                  WindowType window = WindowType::kHamming);

/// Design a band-pass FIR with pass band [low_hz, high_hz].
/// Requires 0 < low_hz < high_hz < fs/2.
[[nodiscard]] std::vector<double> design_bandpass(double low_hz, double high_hz,
                                                  double sample_rate, std::size_t taps,
                                                  WindowType window = WindowType::kHamming);

/// Convolve the signal with FIR taps, "same" mode: the output has the input
/// length and is aligned so the filter's group delay ((taps-1)/2 samples for
/// a symmetric design) is removed. Uses FFT convolution for large inputs.
[[nodiscard]] std::vector<double> filter_same(std::span<const double> signal,
                                              std::span<const double> taps);

/// Frequency response magnitude of an FIR at the given frequency.
[[nodiscard]] double fir_magnitude_at(std::span<const double> taps, double freq_hz,
                                      double sample_rate);

}  // namespace hyperear::dsp
