#include "dsp/peak.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"

namespace hyperear::dsp {

Peak refine_peak(std::span<const double> y, std::size_t i) {
  require(!y.empty(), "refine_peak: empty input");
  require(i < y.size(), "refine_peak: index out of range");
  Peak p;
  p.index = i;
  p.refined_index = static_cast<double>(i);
  p.value = y[i];
  if (i == 0 || i + 1 >= y.size()) return p;
  const double ym = y[i - 1];
  const double y0 = y[i];
  const double yp = y[i + 1];
  const double denom = ym - 2.0 * y0 + yp;
  if (std::abs(denom) < 1e-30) return p;
  double offset = 0.5 * (ym - yp) / denom;
  offset = std::clamp(offset, -0.5, 0.5);
  p.refined_index = static_cast<double>(i) + offset;
  p.value = y0 - 0.25 * (ym - yp) * offset;
  // Parabolic refinement may move the peak at most half a sample — the lag
  // bound every TDoA consumer converts back to sample indices with.
  HE_ENSURES(p.refined_index >= static_cast<double>(i) - 0.5 &&
             p.refined_index <= static_cast<double>(i) + 0.5);
  return p;
}

std::vector<Peak> find_peaks(std::span<const double> y, double threshold,
                             std::size_t min_spacing) {
  require(!y.empty(), "find_peaks: empty input");
  // Collect all local maxima above threshold.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const bool left_ok = i == 0 || y[i] >= y[i - 1];
    const bool right_ok = i + 1 == y.size() || y[i] > y[i + 1];
    if (left_ok && right_ok && y[i] >= threshold) candidates.push_back(i);
  }
  // Greedy selection by height with spacing enforcement.
  std::sort(candidates.begin(), candidates.end(),
            [&](std::size_t a, std::size_t b) { return y[a] > y[b]; });
  std::vector<std::size_t> accepted;
  for (std::size_t c : candidates) {
    bool ok = true;
    for (std::size_t a : accepted) {
      const std::size_t gap = c > a ? c - a : a - c;
      if (gap < min_spacing) {
        ok = false;
        break;
      }
    }
    if (ok) accepted.push_back(c);
  }
  std::sort(accepted.begin(), accepted.end());
  std::vector<Peak> out;
  out.reserve(accepted.size());
  for (std::size_t i : accepted) out.push_back(refine_peak(y, i));
  return out;
}

Peak max_peak(std::span<const double> y) {
  require(!y.empty(), "max_peak: empty input");
  return refine_peak(y, argmax(y));
}

}  // namespace hyperear::dsp
