#pragma once

#include <span>
#include <vector>

/// @file biquad.hpp
/// Second-order IIR sections (RBJ cookbook forms) and Butterworth cascades.
/// Used where a short-group-delay recursive filter is preferable to a long
/// FIR (e.g. gravity tracking in the IMU path).

namespace hyperear::dsp {

/// One direct-form-I biquad section with normalized a0 == 1.
class Biquad {
 public:
  /// Coefficients b0,b1,b2 (feed-forward) and a1,a2 (feedback).
  Biquad(double b0, double b1, double b2, double a1, double a2);

  /// RBJ low-pass with quality factor q. Requires 0 < cutoff < fs/2.
  [[nodiscard]] static Biquad lowpass(double cutoff_hz, double sample_rate, double q);
  /// RBJ high-pass with quality factor q.
  [[nodiscard]] static Biquad highpass(double cutoff_hz, double sample_rate, double q);
  /// RBJ band-pass (constant 0 dB peak gain) centered at `center_hz`.
  [[nodiscard]] static Biquad bandpass(double center_hz, double sample_rate, double q);

  /// Process one sample, updating internal state.
  [[nodiscard]] double process(double x);

  /// Reset internal state to zero.
  void reset();

  /// Filter a whole signal (stateful, starts from reset state).
  [[nodiscard]] std::vector<double> filter(std::span<const double> signal);

  /// Magnitude response at a frequency.
  [[nodiscard]] double magnitude_at(double freq_hz, double sample_rate) const;

 private:
  double b0_, b1_, b2_, a1_, a2_;
  double x1_ = 0.0, x2_ = 0.0, y1_ = 0.0, y2_ = 0.0;
};

/// Cascade of biquads forming a Butterworth filter of even order.
class ButterworthCascade {
 public:
  enum class Kind { kLowpass, kHighpass };

  /// Build an `order`-pole Butterworth (order must be even and >= 2).
  ButterworthCascade(Kind kind, int order, double cutoff_hz, double sample_rate);

  /// Filter a signal through all sections in sequence.
  [[nodiscard]] std::vector<double> filter(std::span<const double> signal);

  /// Zero-phase (forward-backward) filtering; doubles the attenuation and
  /// cancels group delay. Used for offline gravity estimation.
  [[nodiscard]] std::vector<double> filtfilt(std::span<const double> signal);

 private:
  std::vector<Biquad> sections_;
};

}  // namespace hyperear::dsp
