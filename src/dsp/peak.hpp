#pragma once

#include <span>
#include <vector>

/// @file peak.hpp
/// Peak picking with sub-sample refinement.
///
/// The TDoA resolution of a 44.1 kHz ADC is ~22.7 us (7.78 mm of range).
/// HyperEar's ASP stage interpolates the matched-filter output "to achieve
/// sub-sample resolution" (paper Section III). We fit a parabola through the
/// peak sample and its neighbours — the standard estimator for correlation
/// peaks — which recovers a fractional offset in (-0.5, 0.5).

namespace hyperear::dsp {

/// A located peak.
struct Peak {
  std::size_t index = 0;      ///< integer sample index of the local maximum
  double refined_index = 0.0; ///< sub-sample position after parabolic fit
  double value = 0.0;         ///< interpolated peak height
};

/// Parabolic (three-point) interpolation around index i of y.
/// Returns the fractional offset in (-0.5, 0.5) and the interpolated value.
/// At the array edges the offset is zero. Requires non-empty y, i < y.size().
[[nodiscard]] Peak refine_peak(std::span<const double> y, std::size_t i);

/// Find all local maxima with value >= threshold, enforcing a minimum
/// spacing between accepted peaks (greedy by height). Returned peaks are
/// sorted by index.
[[nodiscard]] std::vector<Peak> find_peaks(std::span<const double> y, double threshold,
                                           std::size_t min_spacing);

/// The single highest peak (sub-sample refined). Requires non-empty y.
[[nodiscard]] Peak max_peak(std::span<const double> y);

}  // namespace hyperear::dsp
