#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/fft.hpp"

/// @file ols.hpp
/// Block overlap-save (OLS) convolution: the streaming engine behind FIR
/// filtering and matched-filter correlation of long recordings.
///
/// The monolithic FFT convolution (`fft_convolve`) pads the WHOLE signal to
/// the next power of two — a 10 s, 44.1 kHz channel becomes a 2^20-point
/// transform whose working set thrashes every cache level. Overlap-save
/// instead fixes a small transform size N from the KERNEL length alone,
/// slides a block of L = N - M + 1 fresh samples per step (M = kernel
/// length), and keeps the kernel spectrum and the `FftPlan` twiddle tables
/// cached across blocks, calls and sessions (via core::PipelineContext).
///
/// Two structural savings on top of the block streaming:
///  * the kernel is transformed ONCE at construction, never per call;
///  * consecutive blocks ride one complex transform pair (see
///    `convolve_into`): the real-input fast path packs block b into the real
///    parts and block b+1 into the imaginary parts, halving the FFT count.
///
/// Accuracy: overlap-save computes the same linear convolution as the
/// direct sum, within FFT round-off (~1e-13 for unit-scale inputs; the
/// property tests in tests/test_ols.cpp bound it at 1e-9). Results are
/// deterministic — a fixed (kernel, fft_size) pair produces bit-identical
/// output for a given input everywhere, which is what keeps pipelines with
/// and without a shared plan cache bit-identical.

namespace hyperear::dsp {

/// Signal-length x kernel-length product below which direct (time-domain)
/// evaluation beats any FFT method. Shared by `filter_same`,
/// `correlate_valid` and the matched-filter detector so every spelling of a
/// convolution picks the same path — and therefore the same bits.
inline constexpr std::size_t kDirectProductLimit = 1u << 16;

/// Transform size for overlap-save with an M-tap kernel: the power of two
/// minimizing amortized butterfly work per output sample,
/// N log2(N) / (N - M + 1). Deterministic, so independently constructed
/// convolvers for the same kernel agree on the block geometry (and hence on
/// the output bits).
[[nodiscard]] std::size_t choose_ols_fft_size(std::size_t kernel_len);

/// Streaming overlap-save convolver for one fixed real kernel.
///
/// Construction is the expensive part: it builds the `FftPlan` for the
/// block size and transforms the kernel once. After that the object is
/// immutable — share one instance read-only across any number of threads
/// (core::PipelineContext does); per-call scratch lives in the caller's
/// `Workspace`.
///
/// For correlation, construct with the time-REVERSED template: correlation
/// is convolution with the reversed kernel, and `correlate_valid` below
/// assumes the reversal already happened (the reversed-template spectrum is
/// exactly what core::PipelineContext caches for the matched filter).
class OlsConvolver {
 public:
  /// `kernel` must be non-empty. `fft_size` 0 selects
  /// `choose_ols_fft_size(kernel.size())`; an explicit value must be a
  /// power of two of at least the kernel length.
  explicit OlsConvolver(std::vector<double> kernel, std::size_t fft_size = 0);

  [[nodiscard]] std::size_t kernel_size() const { return kernel_.size(); }
  [[nodiscard]] std::size_t fft_size() const { return plan_.size(); }
  /// Fresh output samples produced per block: fft_size - kernel_size + 1.
  [[nodiscard]] std::size_t block_size() const {
    return plan_.size() - kernel_.size() + 1;
  }
  [[nodiscard]] const std::vector<double>& kernel() const { return kernel_; }
  [[nodiscard]] const FftPlan& plan() const { return plan_; }
  /// FFT of the zero-padded kernel at the block transform size.
  [[nodiscard]] const std::vector<Complex>& kernel_spectrum() const { return spectrum_; }

  /// Write full-convolution samples [offset, offset + count) of
  /// kernel * x into `out` (which must hold `count` doubles). The full
  /// convolution has x.size() + kernel_size() - 1 samples; the window must
  /// lie inside it. Only the blocks intersecting the window are processed.
  void convolve_into(std::span<const double> x, std::size_t offset, std::size_t count,
                     double* out, Workspace& ws) const;

  /// Streamed spelling of one transform pair of `convolve_into`: computes
  /// blocks `block_index` and (when `paired`) `block_index + 1` of the full
  /// convolution of the kernel with a signal of `signal_len` samples, and
  /// writes the intersection of the pair's output range with
  /// [offset, offset + count) to `out[g - offset]`.
  ///
  /// `x` is a WINDOW of that signal: its samples are signal indices
  /// [x_start, x_start + x.size()); everything outside `x` is read as zero,
  /// exactly the zero-padding `convolve_into` applies outside the signal —
  /// so the caller must retain (at least) the signal samples the pair's
  /// input window [block_index*block - (kernel-1), end-of-pair) intersects.
  /// `block_index` must be even (the pairing anchor of the full
  /// convolution) and `paired` must equal `block_index + 1 <
  /// ceil((signal_len + kernel - 1) / block)` of the FINAL signal — under
  /// those conditions the pair arithmetic is the one `convolve_into` runs,
  /// so incremental callers (dsp::StreamingFirFilter) are bit-identical to
  /// the batch path by construction.
  void convolve_pair_into(std::span<const double> x, std::size_t x_start,
                          std::size_t signal_len, std::size_t block_index, bool paired,
                          std::size_t offset, std::size_t count, double* out,
                          Workspace& ws) const;

  /// Full linear convolution; length x.size() + kernel_size() - 1.
  [[nodiscard]] std::vector<double> convolve_full(std::span<const double> x,
                                                  Workspace* ws = nullptr) const;

  /// FIR "same" filtering: output has x.size() samples with the group delay
  /// of the (odd, symmetric) kernel removed. Requires an odd kernel.
  [[nodiscard]] std::vector<double> filter_same(std::span<const double> x,
                                                Workspace* ws = nullptr) const;

  /// `filter_same` into a caller-owned buffer (resized to x.size(), every
  /// element overwritten) — the allocation-free spelling for batch loops
  /// whose output buffer persists across sessions. Bit-identical to
  /// `filter_same`.
  void filter_same_into(std::span<const double> x, std::vector<double>& out,
                        Workspace& ws) const;

  /// Valid-mode correlation of x against the template whose REVERSAL is
  /// this convolver's kernel; length x.size() - kernel_size() + 1. Requires
  /// kernel_size() <= x.size().
  [[nodiscard]] std::vector<double> correlate_valid(std::span<const double> x,
                                                    Workspace* ws = nullptr) const;

  /// `correlate_valid` into a caller-owned buffer (resized to the valid
  /// length, every element overwritten). Bit-identical to `correlate_valid`.
  void correlate_valid_into(std::span<const double> x, std::vector<double>& out,
                            Workspace& ws) const;

 private:
  /// The shared pair transform: fill ws.complex_scratch(0, fft_size) with
  /// the circular convolution of blocks (b, b+1) packed as (real, imag),
  /// reading signal index `idx` as x[idx - x_start] when inside the window
  /// and zero otherwise. Every public spelling routes its block arithmetic
  /// through here, which is what makes windowed, full, and streamed calls
  /// bit-identical.
  std::vector<Complex>& transform_pair(std::span<const double> x,
                                       std::ptrdiff_t x_start, std::size_t b,
                                       bool paired, Workspace& ws) const;
  /// Copy the alias-free halves of a transformed pair into the caller's
  /// output window [offset, offset + count), clipped to the full
  /// convolution [0, full_len).
  void copy_pair_halves(const std::vector<Complex>& z, std::size_t b, bool paired,
                        std::size_t offset, std::size_t count, std::size_t full_len,
                        double* out) const;

  std::vector<double> kernel_;
  FftPlan plan_;
  std::vector<Complex> spectrum_;
};

}  // namespace hyperear::dsp
