#include "dsp/fft.hpp"

#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/units.hpp"

namespace hyperear::dsp {

namespace {

void fft_core(std::vector<Complex>& x, bool inverse) {
  const std::size_t n = x.size();
  require(is_pow2(n), "fft: size must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = x[i + k];
        const Complex v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& v : x) v *= inv_n;
  }
}

// Per-stage twiddle tables built with the same `w *= wlen` recurrence
// fft_core evaluates inline, so planned and planless transforms agree to
// the last bit.
std::vector<Complex> make_twiddles(std::size_t n, bool inverse) {
  std::vector<Complex> table;
  if (n >= 2) table.reserve(n - 1);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    Complex w(1.0, 0.0);
    for (std::size_t k = 0; k < len / 2; ++k) {
      table.push_back(w);
      w *= wlen;
    }
  }
  return table;
}

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n) {
  HE_EXPECTS(n >= 1 && is_pow2(n));
  require(is_pow2(n), "FftPlan: size must be a power of two");
  bitrev_.resize(n);
  for (std::size_t i = 0; i < n; ++i) bitrev_[i] = i;
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev_[i] = j;
  }
  forward_twiddles_ = make_twiddles(n, false);
  inverse_twiddles_ = make_twiddles(n, true);
  // n-1 twiddles per direction (sum of len/2 over stages); a size mismatch
  // here means the stage indexing in run() would read out of bounds.
  HE_ENSURES(n < 2 || forward_twiddles_.size() == n - 1);
  HE_ENSURES(n < 2 || inverse_twiddles_.size() == n - 1);
}

void FftPlan::run(std::vector<Complex>& x, bool inverse) const {
  require(x.size() == n_, "FftPlan: input size does not match the plan");
  const std::size_t n = n_;
  for (std::size_t i = 1; i < n; ++i) {
    if (i < bitrev_[i]) std::swap(x[i], x[bitrev_[i]]);
  }
  const std::vector<Complex>& tw = inverse ? inverse_twiddles_ : forward_twiddles_;
  std::size_t stage = 0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const Complex u = x[i + k];
        const Complex v = x[i + k + half] * tw[stage + k];
        x[i + k] = u + v;
        x[i + k + half] = u - v;
      }
    }
    stage += half;
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& v : x) v *= inv_n;
  }
}

void fft_inplace(std::vector<Complex>& x) { fft_core(x, false); }

void ifft_inplace(std::vector<Complex>& x) { fft_core(x, true); }

std::vector<Complex>& Workspace::complex_scratch(std::size_t slot, std::size_t size) {
  require(slot < kSlots, "Workspace: complex slot out of range");
  complex_[slot].resize(size);
  return complex_[slot];
}

std::vector<double>& Workspace::real_scratch(std::size_t slot, std::size_t size) {
  require(slot < kSlots, "Workspace: real slot out of range");
  real_[slot].resize(size);
  return real_[slot];
}

void fft_real_into(std::span<const double> x, std::size_t min_size,
                   std::vector<Complex>& out, const FftPlan* plan) {
  require(!x.empty(), "fft_real: empty input");
  const std::size_t target = next_pow2(std::max(x.size(), min_size));
  out.resize(target);
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = Complex(x[i], 0.0);
  for (std::size_t i = x.size(); i < target; ++i) out[i] = Complex(0.0, 0.0);
  if (plan != nullptr && plan->size() == target) {
    plan->forward(out);
  } else {
    fft_inplace(out);
  }
}

std::vector<Complex> fft_real(std::span<const double> x, std::size_t min_size) {
  std::vector<Complex> buf;
  fft_real_into(x, min_size, buf);
  return buf;
}

void ifft_to_real_into(std::vector<Complex>& spectrum, std::vector<double>& out,
                       const FftPlan* plan) {
  if (plan != nullptr && plan->size() == spectrum.size()) {
    plan->inverse(spectrum);
  } else {
    ifft_inplace(spectrum);
  }
  out.resize(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) out[i] = spectrum[i].real();
}

std::vector<double> ifft_to_real(std::vector<Complex> spectrum) {
  std::vector<double> out;
  ifft_to_real_into(spectrum, out);
  return out;
}

namespace {

std::vector<double> fft_convolve_with(std::span<const double> a,
                                      std::span<const double> b,
                                      std::vector<Complex>& fa,
                                      std::vector<Complex>& fb) {
  require(!a.empty() && !b.empty(), "fft_convolve: empty input");
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_pow2(out_len);
  fft_real_into(a, n, fa);
  fft_real_into(b, n, fb);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  std::vector<double> full;
  ifft_to_real_into(fa, full);
  full.resize(out_len);
  return full;
}

}  // namespace

std::vector<double> fft_convolve(std::span<const double> a, std::span<const double> b) {
  std::vector<Complex> fa, fb;
  return fft_convolve_with(a, b, fa, fb);
}

std::vector<double> fft_convolve(std::span<const double> a, std::span<const double> b,
                                 Workspace& ws) {
  const std::size_t n = next_pow2(a.size() + b.size() - 1);
  return fft_convolve_with(a, b, ws.complex_scratch(0, n), ws.complex_scratch(1, n));
}

}  // namespace hyperear::dsp
