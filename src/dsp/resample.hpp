#pragma once

#include <span>
#include <vector>

/// @file resample.hpp
/// Band-limited (windowed-sinc) interpolation and integer upsampling —
/// the explicit-interpolation alternative to parabolic peak refinement for
/// achieving sub-sample TDoA resolution (paper Section III, ASP).

namespace hyperear::dsp {

/// Evaluate the band-limited interpolant of x at fractional index `idx`
/// using a windowed-sinc kernel of `half_width` taps per side (Hann window).
/// Indices outside [0, size-1] are treated as zeros beyond the edges.
[[nodiscard]] double sinc_interpolate(std::span<const double> x, double idx,
                                      int half_width = 16);

/// Upsample by an integer factor >= 1 using windowed-sinc interpolation.
/// Output length is x.size() * factor; output[k] interpolates x at k/factor.
[[nodiscard]] std::vector<double> upsample(std::span<const double> x, int factor,
                                           int half_width = 16);

/// Linear-interpolation resampling of x from rate_in to rate_out (both
/// positive). Cheap, used for sensor-rate conversions where band-limiting
/// is unnecessary.
[[nodiscard]] std::vector<double> resample_linear(std::span<const double> x, double rate_in,
                                                  double rate_out);

}  // namespace hyperear::dsp
