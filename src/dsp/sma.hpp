#pragma once

#include <span>
#include <vector>

/// @file sma.hpp
/// Simple moving average — the low-pass filter HyperEar applies to inertial
/// signals (paper Section V-A1: an unweighted mean of the previous n = 4
/// samples gives a -3 dB cutoff near 15 Hz at the 100 Hz IMU rate).

namespace hyperear::dsp {

/// Causal simple moving average over the previous `n` samples (including
/// the current one). The first n-1 outputs average the samples available so
/// far. Requires n >= 1.
[[nodiscard]] std::vector<double> moving_average(std::span<const double> x, std::size_t n);

/// Magnitude response of the length-n SMA at frequency f (sample rate fs):
/// |sin(pi f n / fs) / (n sin(pi f / fs))|.
[[nodiscard]] double moving_average_magnitude(std::size_t n, double freq_hz,
                                              double sample_rate);

/// The -3 dB cutoff frequency of the length-n SMA at the given sample rate,
/// found by bisection. Requires n >= 2.
[[nodiscard]] double moving_average_cutoff_hz(std::size_t n, double sample_rate);

}  // namespace hyperear::dsp
