#include "dsp/matched_filter.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/correlation.hpp"
#include "dsp/peak.hpp"

namespace hyperear::dsp {

MatchedFilterDetector::MatchedFilterDetector(std::vector<double> reference,
                                             const DetectorConfig& config)
    : reference_(std::move(reference)), config_(config) {
  require(!reference_.empty(), "MatchedFilterDetector: empty reference");
  require(config_.sample_rate > 0.0, "MatchedFilterDetector: bad sample rate");
  require(config_.chunk >= 2 * reference_.size(),
          "MatchedFilterDetector: chunk must be at least twice the reference length");
  require(config_.threshold > 0.0 && config_.threshold < 1.0,
          "MatchedFilterDetector: threshold must be in (0, 1)");
}

std::vector<Detection> MatchedFilterDetector::detect(
    std::span<const double> recording) const {
  if (recording.size() < reference_.size()) return {};
  const std::size_t ref_len = reference_.size();
  const auto min_spacing =
      static_cast<std::size_t>(config_.min_spacing_s * config_.sample_rate);

  std::vector<Detection> detections;
  const std::size_t chunk = config_.chunk;
  // Chunks overlap by ref_len - 1 so every correlation lag is computed once.
  const std::size_t hop = chunk - (ref_len - 1);
  for (std::size_t start = 0; start < recording.size(); start += hop) {
    const std::size_t end = std::min(start + chunk, recording.size());
    if (end - start < ref_len) break;
    const std::span<const double> seg = recording.subspan(start, end - start);
    const std::vector<double> raw = correlate_valid(seg, reference_);
    const std::vector<double> norm = correlate_normalized(seg, reference_);
    // Candidate gating on the normalized statistic, ranking on amplitude:
    // suppress sub-threshold shapes, then find peaks of |raw|.
    std::vector<double> masked(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      masked[i] = norm[i] >= config_.threshold ? std::abs(raw[i]) : 0.0;
    }
    const std::vector<Peak> peaks = find_peaks(masked, 1e-12, min_spacing);
    // The autocorrelation main lobe plus near sidelobes span ~1 ms; only
    // arrivals beyond that are genuine competing paths.
    const auto exclusion =
        static_cast<std::size_t>(1.2e-3 * config_.sample_rate);
    for (const Peak& p : peaks) {
      // Refine timing on the raw correlation around the winning sample.
      const Peak refined = refine_peak(raw, p.index);
      Detection d;
      d.time_s = (static_cast<double>(start) + refined.refined_index) / config_.sample_rate;
      d.amplitude = std::abs(refined.value);
      d.score = norm[p.index];
      // Echo competition: strongest |raw| local max in the same window but
      // outside the exclusion zone around the winner.
      const std::size_t lo = p.index > min_spacing ? p.index - min_spacing : 0;
      const std::size_t hi = std::min(p.index + min_spacing, raw.size() - 1);
      double runner = 0.0;
      for (std::size_t i = lo + 1; i + 1 <= hi; ++i) {
        const std::size_t gap = i > p.index ? i - p.index : p.index - i;
        if (gap < exclusion) continue;
        const double v = std::abs(raw[i]);
        if (v > runner && std::abs(raw[i]) >= std::abs(raw[i - 1]) &&
            std::abs(raw[i]) > std::abs(raw[i + 1])) {
          runner = v;
        }
      }
      d.echo_competition = d.amplitude > 0.0 ? runner / d.amplitude : 0.0;
      detections.push_back(d);
    }
    if (end == recording.size()) break;
  }

  // Merge duplicates from chunk overlap: keep the stronger detection of any
  // pair closer than min_spacing.
  std::sort(detections.begin(), detections.end(),
            [](const Detection& a, const Detection& b) { return a.time_s < b.time_s; });
  std::vector<Detection> merged;
  const double min_dt = static_cast<double>(min_spacing) / config_.sample_rate;
  for (const Detection& d : detections) {
    if (!merged.empty() && d.time_s - merged.back().time_s < min_dt) {
      if (d.amplitude > merged.back().amplitude) merged.back() = d;
    } else {
      merged.push_back(d);
    }
  }

  // Relative amplitude gate: direct arrivals have comparable strength; far
  // echoes and noise flukes fall well below the median and are dropped.
  if (config_.relative_amplitude_gate > 0.0 && merged.size() >= 3) {
    std::vector<double> amps;
    amps.reserve(merged.size());
    for (const Detection& d : merged) amps.push_back(d.amplitude);
    const double gate = config_.relative_amplitude_gate * median(amps);
    std::vector<Detection> strong;
    strong.reserve(merged.size());
    for (const Detection& d : merged) {
      if (d.amplitude >= gate) strong.push_back(d);
    }
    return strong;
  }
  return merged;
}

}  // namespace hyperear::dsp
