#include "dsp/matched_filter.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/correlation.hpp"
#include "dsp/peak.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hyperear::dsp {

// NOLINTNEXTLINE(hyperear-hotpath) -- one-time plan construction: the detector takes ownership of its reference
MatchedFilterDetector::MatchedFilterDetector(std::vector<double> reference,
                                             const DetectorConfig& config)
    : reference_(std::move(reference)), config_(config) {
  require(!reference_.empty(), "MatchedFilterDetector: empty reference");
  require(config_.sample_rate > 0.0, "MatchedFilterDetector: bad sample rate");
  require(config_.chunk >= 2 * reference_.size(),
          "MatchedFilterDetector: chunk must be at least twice the reference length");
  require(config_.threshold > 0.0 && config_.threshold < 1.0,
          "MatchedFilterDetector: threshold must be in (0, 1)");
  double energy = 0.0;
  for (double v : reference_) energy += v * v;
  require(energy > 0.0, "MatchedFilterDetector: zero-energy reference");
  reference_norm_ = std::sqrt(energy);
  // Precompute the reversed-reference overlap-save convolver: every chunk
  // of every detect call streams against its cached kernel spectrum, so the
  // reference is never re-transformed per chunk (or per detect call), and
  // odd-sized tail chunks reuse the same plan instead of a bespoke
  // transform. Small signal/reference products take the direct path in
  // correlate_valid, where an FFT would not pay off.
  if (config_.chunk * reference_.size() > kDirectProductLimit) {
    ols_.emplace(std::vector<double>(reference_.rbegin(), reference_.rend()));
  }
}

void MatchedFilterDetector::correlate_chunk(std::span<const double> seg,
                                            DetectorWorkspace& ws) const {
  if (!ols_) {
    // No cached convolver means every full chunk is below the direct-path
    // threshold; the planless overload always evaluates directly here. The
    // move assignment reuses ws.raw's capacity when it fits.
    ws.raw = correlate_valid(seg, reference_);
    return;
  }
  // The into-spelling takes the same direct path as the planless overload
  // for small tails, keeping results bit-identical with or without the
  // cache — and writes into the persistent chunk buffer.
  correlate_valid_into(seg, *ols_, ws.raw, ws.fft);
}

// NOLINTBEGIN(hyperear-hotpath) -- convenience wrapper: allocates call-local scratch; steady-state callers use detect_into
std::vector<Detection> MatchedFilterDetector::detect(
    std::span<const double> recording, const obs::ObsContext* obs) const {
  DetectorWorkspace ws;
  std::vector<Detection> out;
  detect_into(recording, ws, out, obs);
  return out;
}
// NOLINTEND(hyperear-hotpath) -- end of convenience wrapper

void MatchedFilterDetector::detect_into(std::span<const double> recording,
                                        DetectorWorkspace& ws,
                                        std::vector<Detection>& out,
                                        const obs::ObsContext* obs) const {
  // The batch spelling IS the streaming protocol run to completion over
  // the fixed chunk schedule — one implementation, so the two paths cannot
  // drift. A recording shorter than the reference streams zero chunks and
  // still passes through stream_end, which clears the output and staging
  // and keeps the telemetry consistent (the old early return skipped both).
  DetectorStream stream;
  stream_begin(stream, ws);
  const std::size_t ref_len = reference_.size();
  const std::size_t chunk = config_.chunk;
  while (stream.next_start < recording.size()) {
    const std::size_t start = stream.next_start;
    const std::size_t end = std::min(start + chunk, recording.size());
    if (end - start < ref_len) break;
    const bool final_chunk = end == recording.size();
    stream_chunk(recording.subspan(start, end - start), final_chunk, stream, ws);
    if (final_chunk) break;
  }
  stream_end(stream, ws, out, obs);
}

void MatchedFilterDetector::stream_begin(DetectorStream& stream,
                                         DetectorWorkspace& ws) const {
  // Pass 1 (run chunk by chunk in stream_chunk) collects every
  // above-threshold local maximum per chunk, WITHOUT spacing-gating inside
  // the chunk — spacing is a global property and is enforced once over all
  // chunks in stream_end, so the detections cannot depend on where the
  // chunk boundaries happened to fall. Correlation lags are contiguous
  // across chunks (chunks overlap by ref_len - 1 samples), and the
  // local-maximum test reads its neighbors across chunk boundaries: a
  // first-lag candidate checks the previous chunk's last value, and a
  // last-lag candidate is held pending until the next chunk's first value
  // is known.
  stream = DetectorStream{};
  ws.candidates.clear();
}

void MatchedFilterDetector::stream_chunk(std::span<const double> seg, bool final_chunk,
                                         DetectorStream& stream,
                                         DetectorWorkspace& ws) const {
  using Candidate = DetectorWorkspace::Candidate;
  const std::size_t ref_len = reference_.size();
  require(seg.size() >= ref_len && seg.size() <= config_.chunk,
          "stream_chunk: segment must span [reference, chunk] samples");
  require(final_chunk || seg.size() == config_.chunk,
          "stream_chunk: only the final chunk may be short");
  const auto min_spacing =
      static_cast<std::size_t>(config_.min_spacing_s * config_.sample_rate);
  const auto exclusion = static_cast<std::size_t>(1.2e-3 * config_.sample_rate);
  const std::size_t start = stream.next_start;

  ++stream.chunks_streamed;
  correlate_chunk(seg, ws);
  const std::vector<double>& raw = ws.raw;
  normalize_correlation_into(raw, seg, ref_len, reference_norm_, ws.prefix, ws.norm);
  // Candidate gating on the normalized statistic, ranking on amplitude:
  // suppress sub-threshold shapes, then find local maxima of |raw|.
  ws.masked.resize(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    ws.masked[i] = ws.norm[i] >= config_.threshold ? std::abs(raw[i]) : 0.0;
  }
  const std::vector<double>& masked = ws.masked;

  // The previous chunk's boundary candidate can be resolved now that its
  // right neighbor (this chunk's first lag) is known.
  if (stream.pending) {
    if (stream.pending->key > masked.front()) ws.candidates.push_back(*stream.pending);
    stream.pending.reset();
  }

  for (std::size_t i = 0; i < masked.size(); ++i) {
    if (masked[i] < 1e-12) continue;
    const bool left_ok = i > 0 ? masked[i] >= masked[i - 1]
                               : (!stream.have_prev || masked[i] >= stream.prev_last_masked);
    if (!left_ok) continue;
    const bool last_lag = i + 1 == masked.size();
    bool defer = false;
    if (!last_lag) {
      if (!(masked[i] > masked[i + 1])) continue;
    } else if (!final_chunk) {
      defer = true;  // right neighbor lives in the next chunk
    }

    // Refine timing on the raw correlation around the winning sample.
    const Peak refined = refine_peak(raw, i);
    Detection d;
    d.time_s =
        (static_cast<double>(start) + refined.refined_index) / config_.sample_rate;
    d.amplitude = std::abs(refined.value);
    d.score = ws.norm[i];
    // Echo competition: strongest |raw| local max in the same window but
    // outside the exclusion zone around the winner (the autocorrelation
    // main lobe plus near sidelobes span ~1 ms; only arrivals beyond that
    // are genuine competing paths).
    const std::size_t lo = i > min_spacing ? i - min_spacing : 0;
    const std::size_t hi = std::min(i + min_spacing, raw.size() - 1);
    double runner = 0.0;
    for (std::size_t j = lo + 1; j + 1 <= hi; ++j) {
      const std::size_t gap = j > i ? j - i : i - j;
      if (gap < exclusion) continue;
      const double v = std::abs(raw[j]);
      if (v > runner && std::abs(raw[j]) >= std::abs(raw[j - 1]) &&
          std::abs(raw[j]) > std::abs(raw[j + 1])) {
        runner = v;
      }
    }
    d.echo_competition = d.amplitude > 0.0 ? runner / d.amplitude : 0.0;

    Candidate c{d, masked[i], start + i};
    if (defer) {
      stream.pending = c;
    } else {
      ws.candidates.push_back(c);
    }
  }
  stream.prev_last_masked = masked.back();
  stream.have_prev = true;
  stream.next_start = start + (config_.chunk - (ref_len - 1));
}

void MatchedFilterDetector::stream_end(DetectorStream& stream, DetectorWorkspace& ws,
                                       std::vector<Detection>& out,
                                       const obs::ObsContext* obs) const {
  using Candidate = DetectorWorkspace::Candidate;
  out.clear();
  const auto min_spacing =
      static_cast<std::size_t>(config_.min_spacing_s * config_.sample_rate);
  // The recording ended right at a chunk boundary (the tail was shorter
  // than the reference): the held-back candidate has no right neighbor and
  // stands.
  if (stream.pending) {
    ws.candidates.push_back(*stream.pending);
    stream.pending.reset();
  }

  // Pass 2: enforce min_spacing once, globally, strongest-first — the same
  // greedy rule find_peaks applies inside a single chunk, so two arrivals
  // straddling a chunk boundary obey exactly the spacing semantics of
  // arrivals within one chunk (regression: an ascending-amplitude chain
  // across boundaries used to collapse to its last element).
  std::sort(ws.candidates.begin(), ws.candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.key != b.key) return a.key > b.key;
              return a.global_index < b.global_index;
            });
  ws.selected.clear();
  for (const Candidate& c : ws.candidates) {
    bool ok = true;
    for (const Candidate& a : ws.selected) {
      const std::size_t gap = c.global_index > a.global_index
                                  ? c.global_index - a.global_index
                                  : a.global_index - c.global_index;
      if (gap < min_spacing) {
        ok = false;
        break;
      }
    }
    if (ok) ws.selected.push_back(c);
  }
  std::sort(ws.selected.begin(), ws.selected.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.global_index < b.global_index;
            });
  out.reserve(ws.selected.size());
  for (const Candidate& c : ws.selected) out.push_back(c.detection);

  // Relative amplitude gate: direct arrivals have comparable strength; far
  // echoes and noise flukes fall well below the median and are dropped.
  if (config_.relative_amplitude_gate > 0.0 && out.size() >= 3) {
    ws.amps.clear();
    ws.amps.reserve(out.size());
    for (const Detection& d : out) ws.amps.push_back(d.amplitude);
    const double gate = config_.relative_amplitude_gate * median(ws.amps);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i].amplitude >= gate) out[kept++] = out[i];
    }
    out.resize(kept);
  }

  if (obs != nullptr && obs->metrics != nullptr) {
    obs::MetricsRegistry& m = *obs->metrics;
    m.counter("detector.chunks_total").inc(static_cast<double>(stream.chunks_streamed));
    m.counter("detector.candidates_total").inc(static_cast<double>(ws.candidates.size()));
    m.counter("detector.detections_total").inc(static_cast<double>(out.size()));
    static constexpr double kScoreBounds[] = {0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
    const obs::Histogram scores = m.histogram("detector.detection_score", kScoreBounds);
    for (const Detection& d : out) scores.observe(d.score);
  }
}

}  // namespace hyperear::dsp
