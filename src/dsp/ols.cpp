#include "dsp/ols.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/math_util.hpp"

namespace hyperear::dsp {

std::size_t choose_ols_fft_size(std::size_t kernel_len) {
  require(kernel_len >= 1, "choose_ols_fft_size: empty kernel");
  // Amortized butterfly work per fresh output sample is N log2(N) / L with
  // L = N - M + 1; the curve is convex in log N, so scanning a bounded
  // power-of-two window above the kernel length finds the minimum. The 256
  // floor keeps tiny kernels from picking blocks where per-block overhead
  // (pointwise multiply, load/store) would dominate the transform.
  const std::size_t lo = std::max<std::size_t>(256, next_pow2(kernel_len) * 2);
  std::size_t best = lo;
  double best_cost = 0.0;
  for (std::size_t n = lo; n <= (lo << 6); n <<= 1) {
    const double fresh = static_cast<double>(n - kernel_len + 1);
    const double cost = static_cast<double>(n) * std::log2(static_cast<double>(n)) / fresh;
    if (n == lo || cost < best_cost) {
      best = n;
      best_cost = cost;
    }
  }
  return best;
}

// NOLINTNEXTLINE(hyperear-hotpath) -- one-time plan construction: the convolver takes ownership of its kernel
OlsConvolver::OlsConvolver(std::vector<double> kernel, std::size_t fft_size)
    : kernel_(std::move(kernel)),
      plan_(fft_size == 0 ? choose_ols_fft_size(kernel_.empty() ? 1 : kernel_.size())
                          : fft_size) {
  HE_EXPECTS(!kernel_.empty());
  HE_ASSERT_FINITE(kernel_);
  require(!kernel_.empty(), "OlsConvolver: empty kernel");
  require(is_pow2(plan_.size()) && plan_.size() >= kernel_.size(),
          "OlsConvolver: fft_size must be a power of two >= the kernel length");
  fft_real_into(kernel_, plan_.size(), spectrum_, &plan_);
  // The overlap-save identity needs at least one alias-free sample per
  // block; plan >= kernel guarantees it, restated here in the algorithm's
  // own terms so a future block-sizing change can't silently break it.
  HE_ENSURES(block_size() >= 1);
  HE_ENSURES(spectrum_.size() == plan_.size());
}

std::vector<Complex>& OlsConvolver::transform_pair(std::span<const double> x,
                                                   std::ptrdiff_t x_start,
                                                   std::size_t b, bool paired,
                                                   Workspace& ws) const {
  const std::size_t m = kernel_.size();
  const std::size_t n = plan_.size();
  const std::size_t block = block_size();
  std::vector<Complex>& z = ws.complex_scratch(0, n);

  // Block b produces full-convolution samples [b*block, b*block + block)
  // from input window [b*block - (m-1), b*block + block) (zero-padded
  // outside the signal): the circular convolution of that window with the
  // kernel is alias-free in its last `block` samples — the overlap-save
  // identity. Consecutive blocks share one transform pair via the
  // real-input fast path: with real blocks a, b and kernel spectrum K,
  //   IFFT(FFT(a + i*b) . K) = (a*k) + i*(b*k)
  // by linearity, both parts real — so the real parts carry block b's
  // result and the imaginary parts block b+1's, halving the FFT count.
  const auto sample = [&x, x_start](std::ptrdiff_t idx) {
    const std::ptrdiff_t local = idx - x_start;
    return local >= 0 && local < static_cast<std::ptrdiff_t>(x.size())
               ? x[static_cast<std::size_t>(local)]
               : 0.0;
  };
  const std::ptrdiff_t base0 =
      static_cast<std::ptrdiff_t>(b * block) - static_cast<std::ptrdiff_t>(m - 1);
  if (paired) {
    const std::ptrdiff_t base1 = base0 + static_cast<std::ptrdiff_t>(block);
    for (std::size_t j = 0; j < n; ++j) {
      z[j] = Complex(sample(base0 + static_cast<std::ptrdiff_t>(j)),
                     sample(base1 + static_cast<std::ptrdiff_t>(j)));
    }
  } else {
    for (std::size_t j = 0; j < n; ++j) {
      z[j] = Complex(sample(base0 + static_cast<std::ptrdiff_t>(j)), 0.0);
    }
  }
  plan_.forward(z);
  for (std::size_t j = 0; j < n; ++j) z[j] *= spectrum_[j];
  plan_.inverse(z);
  return z;
}

void OlsConvolver::copy_pair_halves(const std::vector<Complex>& z, std::size_t b,
                                    bool paired, std::size_t offset, std::size_t count,
                                    std::size_t full_len, double* out) const {
  const std::size_t m = kernel_.size();
  const std::size_t block = block_size();
  for (std::size_t half = 0; half < (paired ? 2u : 1u); ++half) {
    const std::size_t start = (b + half) * block;
    const std::size_t lo = std::max(start, offset);
    const std::size_t hi = std::min({start + block, offset + count, full_len});
    for (std::size_t g = lo; g < hi; ++g) {
      const Complex& v = z[m - 1 + (g - start)];
      out[g - offset] = half == 0 ? v.real() : v.imag();
    }
  }
}

void OlsConvolver::convolve_into(std::span<const double> x, std::size_t offset,
                                 std::size_t count, double* out, Workspace& ws) const {
  require(!x.empty(), "OlsConvolver: empty signal");
  const std::size_t m = kernel_.size();
  const std::size_t block = block_size();
  const std::size_t full_len = x.size() + m - 1;
  require(offset <= full_len && count <= full_len - offset,
          "OlsConvolver: output window exceeds the full convolution");
  if (count == 0) return;

  // Pairing is anchored to the FULL convolution, not to the requested
  // window: block 2k always shares its transform with block 2k+1 (when the
  // latter exists at all). A window therefore computes exactly the block
  // arithmetic the full convolution would, so any window of the output is
  // bit-identical to the corresponding slice of convolve_full — at the cost
  // of at most one redundant block at each end of the window.
  const std::size_t total_blocks = (full_len + block - 1) / block;
  const std::size_t first_block = (offset / block) & ~std::size_t{1};
  const std::size_t last_block = (offset + count - 1) / block;
  // Block invariants behind the window-vs-full bit-identity guarantee:
  // pairing is anchored to even block indices of the FULL convolution, and
  // the requested window must sit inside it.
  HE_EXPECTS(first_block % 2 == 0);
  HE_EXPECTS(last_block < total_blocks);
  for (std::size_t b = first_block; b <= last_block; b += 2) {
    const bool paired = b + 1 < total_blocks;
    const std::vector<Complex>& z = transform_pair(x, 0, b, paired, ws);
    copy_pair_halves(z, b, paired, offset, count, full_len, out);
  }
}

void OlsConvolver::convolve_pair_into(std::span<const double> x, std::size_t x_start,
                                      std::size_t signal_len, std::size_t block_index,
                                      bool paired, std::size_t offset,
                                      std::size_t count, double* out,
                                      Workspace& ws) const {
  const std::size_t m = kernel_.size();
  const std::size_t full_len = signal_len + m - 1;
  require(block_index % 2 == 0, "OlsConvolver: pair index must be even");
  require(offset <= full_len && count <= full_len - offset,
          "OlsConvolver: output window exceeds the full convolution");
  if (count == 0) return;
  const std::vector<Complex>& z = transform_pair(
      x, static_cast<std::ptrdiff_t>(x_start), block_index, paired, ws);
  copy_pair_halves(z, block_index, paired, offset, count, full_len, out);
}

// NOLINTBEGIN(hyperear-hotpath) -- convenience wrappers: return owning containers; steady-state callers use the _into spellings
std::vector<double> OlsConvolver::convolve_full(std::span<const double> x,
                                                Workspace* ws) const {
  Workspace local;
  std::vector<double> out(x.size() + kernel_.size() - 1);
  convolve_into(x, 0, out.size(), out.data(), ws != nullptr ? *ws : local);
  return out;
}

std::vector<double> OlsConvolver::filter_same(std::span<const double> x,
                                              Workspace* ws) const {
  Workspace local;
  std::vector<double> out;
  filter_same_into(x, out, ws != nullptr ? *ws : local);
  return out;
}
// NOLINTEND(hyperear-hotpath) -- end of convenience wrappers

void OlsConvolver::filter_same_into(std::span<const double> x, std::vector<double>& out,
                                    Workspace& ws) const {
  require(kernel_.size() % 2 == 1, "OlsConvolver::filter_same: kernel must be odd-sized");
  out.resize(x.size());
  convolve_into(x, kernel_.size() / 2, out.size(), out.data(), ws);
}

// NOLINTBEGIN(hyperear-hotpath) -- convenience wrapper: returns an owning container; steady-state callers use correlate_valid_into
std::vector<double> OlsConvolver::correlate_valid(std::span<const double> x,
                                                  Workspace* ws) const {
  Workspace local;
  std::vector<double> out;
  correlate_valid_into(x, out, ws != nullptr ? *ws : local);
  return out;
}
// NOLINTEND(hyperear-hotpath) -- end of convenience wrappers

void OlsConvolver::correlate_valid_into(std::span<const double> x,
                                        std::vector<double>& out, Workspace& ws) const {
  require(kernel_.size() <= x.size(),
          "OlsConvolver::correlate_valid: template longer than signal");
  out.resize(x.size() - kernel_.size() + 1);
  convolve_into(x, kernel_.size() - 1, out.size(), out.data(), ws);
}

}  // namespace hyperear::dsp
