#pragma once

#include <vector>

/// @file chirp.hpp
/// The beacon waveform: a linear up-then-down chirp (paper Section IV-A:
/// "the frequency first linearly increases and then decreases with time, for
/// its good auto correlation property"; Section VII-E: a 2-6.4 kHz band).
///
/// The waveform is defined analytically as a function of continuous time so
/// the acoustic renderer can evaluate it at exact, fractionally delayed
/// sample instants with no interpolation error.

namespace hyperear::dsp {

/// Parameters of the up-down chirp. Equality-comparable so plan caches
/// (core::PipelineContext) can tell whether a precomputed reference
/// waveform is reusable for a given beacon.
struct ChirpParams {
  double freq_low_hz = 2000.0;   ///< start/end frequency
  double freq_high_hz = 6400.0;  ///< turn-around frequency
  double duration_s = 0.05;      ///< total length (up + down)
  double amplitude = 1.0;        ///< peak amplitude
  double edge_fade_fraction = 0.1;  ///< raised-cosine taper on each end

  [[nodiscard]] friend bool operator==(const ChirpParams&,
                                       const ChirpParams&) = default;
};

/// Analytic linear up/down chirp.
class Chirp {
 public:
  explicit Chirp(const ChirpParams& params);

  [[nodiscard]] const ChirpParams& params() const { return params_; }

  /// Instantaneous frequency at time t in [0, duration]; clamped outside.
  [[nodiscard]] double instantaneous_frequency(double t) const;

  /// Waveform value at continuous time t; exactly zero outside [0, duration].
  [[nodiscard]] double value(double t) const;

  /// Sample the waveform at the given rate; length = round(duration * fs).
  [[nodiscard]] std::vector<double> sample(double sample_rate) const;

  /// The matched-filter reference: the sampled waveform, normalized to unit
  /// energy, time-reversed convolution ready (callers typically correlate,
  /// which handles the reversal).
  [[nodiscard]] std::vector<double> reference(double sample_rate) const;

 private:
  ChirpParams params_;
  double half_;   ///< duration of the up sweep
  double rate_;   ///< sweep rate (Hz per second) of the up leg
};

}  // namespace hyperear::dsp
