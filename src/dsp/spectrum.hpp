#pragma once

#include <span>
#include <vector>

/// @file spectrum.hpp
/// Power spectra and band-power utilities, used to calibrate the noise
/// synthesis to target SNR levels (paper Section VII-E studies SNRs of
/// >15, 9, 6 and 3 dB measured in the chirp band).

namespace hyperear::dsp {

/// One-sided periodogram of a real signal (Hann-windowed). Returns power
/// per bin; bin k corresponds to frequency k * fs / nfft with
/// nfft = next_pow2(x.size()).
struct Periodogram {
  std::vector<double> power;  ///< size nfft/2 + 1
  double bin_hz = 0.0;        ///< frequency step between bins
};
[[nodiscard]] Periodogram periodogram(std::span<const double> x, double sample_rate);

/// Mean power (average of squared samples) of the signal.
[[nodiscard]] double signal_power(std::span<const double> x);

/// Power of the signal restricted to [low_hz, high_hz], computed via the
/// periodogram. Requires 0 <= low < high <= fs/2.
[[nodiscard]] double band_power(std::span<const double> x, double sample_rate, double low_hz,
                                double high_hz);

/// In-band SNR in dB of signal-plus-noise vs. noise-only reference segments.
[[nodiscard]] double band_snr_db(std::span<const double> signal_segment,
                                 std::span<const double> noise_segment, double sample_rate,
                                 double low_hz, double high_hz);

}  // namespace hyperear::dsp
