#pragma once

#include <optional>
#include <span>
#include <vector>

#include "dsp/ols.hpp"
#include "dsp/peak.hpp"

/// @file matched_filter.hpp
/// Chirp arrival detection (paper Section IV-A, after BeepBeep): the
/// recording is cross-correlated with the reference chirp; correlation
/// maxima significantly above the background are chirp arrivals. Arrival
/// times are refined to sub-sample precision by parabolic interpolation.
///
/// Two statistics are used together: the *normalized* correlation (shape
/// match, in [0,1]) gates candidates against noise, while the *raw*
/// correlation (amplitude) ranks them — a clean multipath echo landing in a
/// quiet stretch can out-"shape-match" the direct arrival, but in LoS it is
/// always weaker, so amplitude ranking and a relative amplitude gate keep
/// the direct path.

namespace hyperear::obs {
struct ObsContext;
}

namespace hyperear::dsp {

/// One detected chirp arrival.
struct Detection {
  double time_s = 0.0;    ///< arrival time of the chirp START, sub-sample
  double score = 0.0;     ///< normalized correlation in [0, 1]
  double amplitude = 0.0; ///< raw matched-filter output (energy-normalized ref)
  /// Strongest competing correlation peak near this arrival (outside the
  /// autocorrelation main lobe), as a fraction of the winner. A clear
  /// direct path dominates its window (small values); an obstructed path
  /// leaves several reflections of similar strength (values near 1) — the
  /// NLoS cue used by core::assess_line_of_sight.
  double echo_competition = 0.0;
};

/// Detector configuration.
struct DetectorConfig {
  double sample_rate = 44100.0;
  /// Minimum normalized correlation for a peak to count as a chirp.
  double threshold = 0.25;
  /// Minimum spacing between detections, seconds (should be < beacon period
  /// but much larger than the chirp length).
  double min_spacing_s = 0.1;
  /// Streaming chunk length in samples (power of two keeps FFTs cheap).
  std::size_t chunk = 1u << 17;
  /// Drop detections whose raw amplitude is below this fraction of the
  /// median detection amplitude (weak echoes / noise flukes). Set to 0 to
  /// disable.
  double relative_amplitude_gate = 0.35;
};

/// Mutable scratch for matched-filter detection, reusable across `detect`
/// calls, channels, and sessions: the per-chunk correlation buffers, the
/// normalized/masked statistics, the prefix-sum scratch, and the candidate
/// staging vectors. Like `dsp::Workspace` it is single-owner state — own
/// one per call stack (core::SessionWorkspace embeds one per channel slot)
/// and never share it across threads. Buffer contents carry no information
/// between calls; only capacity is retained, so a warmed workspace makes
/// detection allocation-free in the steady state while the detections stay
/// bit-identical to a fresh one.
struct DetectorWorkspace {
  /// A chunk-local peak awaiting the global min-spacing pass — an
  /// implementation detail of `detect_into`, surfaced only so its staging
  /// vectors can live here and keep their capacity across calls.
  struct Candidate {
    Detection detection;
    double key = 0.0;  ///< masked correlation height (selection strength)
    std::size_t global_index = 0;  ///< unrefined correlation lag in the recording
  };

  Workspace fft;                      ///< FFT scratch for the OLS chunk loop
  std::vector<double> raw;            ///< per-chunk raw correlation
  std::vector<double> norm;           ///< per-chunk normalized correlation
  std::vector<double> masked;         ///< threshold-gated |raw|
  std::vector<double> prefix;         ///< prefix-sum scratch (normalization)
  std::vector<double> amps;           ///< amplitude-gate scratch
  std::vector<Candidate> candidates;  ///< pass-1 staging
  std::vector<Candidate> selected;    ///< pass-2 staging
};

/// Resumable cursor for incremental (streaming) detection: the cross-chunk
/// state of `detect_into`'s pass-1 loop, lifted out so a caller can run the
/// chunk schedule itself as samples arrive. Plain data — persist one per
/// live stream (next to the stream's DetectorWorkspace, whose `candidates`
/// vector accumulates the pass-1 output between calls) and drive it with
/// MatchedFilterDetector::stream_begin / stream_chunk / stream_end.
/// `detect_into` is itself written as begin -> chunk loop -> end over this
/// struct, so the streamed and batch spellings share every instruction.
struct DetectorStream {
  /// A last-lag boundary candidate held until the next chunk's first
  /// normalized value resolves its right-neighbor comparison.
  std::optional<DetectorWorkspace::Candidate> pending;
  double prev_last_masked = 0.0;  ///< previous chunk's final masked value
  bool have_prev = false;
  std::size_t chunks_streamed = 0;
  /// Recording index of the next chunk's first sample. Chunks advance by
  /// the fixed hop (chunk - reference + 1), so the schedule is a function
  /// of the recording length alone — never of how a caller buffered it.
  std::size_t next_start = 0;
};

/// Matched-filter detector for a fixed reference waveform.
///
/// Construction is the expensive part: an overlap-save convolver for the
/// reversed reference (kernel spectrum + FFT plan at the block size chosen
/// for the reference length) is built once, so every chunk of every
/// `detect` call streams against the cached spectrum instead of
/// re-transforming the template. The detector is immutable after
/// construction — one instance can serve concurrent `detect` calls from
/// many threads (core::PipelineContext shares one per batch engine); each
/// `detect` call keeps its own scratch `Workspace`.
///
/// `detect` output is invariant to how the recording is chunked: candidate
/// peaks are collected per chunk and the `min_spacing_s` rule is enforced
/// once, globally, strongest-first — two arrivals straddling a chunk
/// boundary obey exactly the spacing semantics of arrivals inside one
/// chunk.
class MatchedFilterDetector {
 public:
  /// `reference` is the sampled chirp (unit energy recommended); must be
  /// non-empty and shorter than config.chunk / 2.
  MatchedFilterDetector(std::vector<double> reference, const DetectorConfig& config);

  /// Detect all chirp arrivals in the recording. Processes the input in
  /// overlapping chunks so memory stays bounded for long sessions.
  ///
  /// `obs` (obs/trace.hpp) optionally receives detector telemetry —
  /// chunks streamed, raw candidates, surviving detections, and the
  /// normalized-score distribution — on its metrics registry. Null (the
  /// default) records nothing; the detections are byte-identical either
  /// way. Many threads may detect() with the same ObsContext concurrently
  /// (the registry shards its write path).
  [[nodiscard]] std::vector<Detection> detect(
      std::span<const double> recording,
      const obs::ObsContext* obs = nullptr) const;

  /// `detect` through caller-owned scratch: detections land in `out`
  /// (cleared first) and every intermediate buffer lives in `ws`, so a
  /// warmed workspace makes the whole call allocation-free apart from
  /// growth of `out` itself. This is the canonical spelling the pipeline's
  /// SessionWorkspace path uses; `detect` above is a thin wrapper over it
  /// with a call-local workspace, bit-identical by construction.
  void detect_into(std::span<const double> recording, DetectorWorkspace& ws,
                   std::vector<Detection>& out,
                   const obs::ObsContext* obs = nullptr) const;

  /// Streaming protocol. Detection of a recording of (eventual) length N is
  ///   stream_begin(st, ws);
  ///   for each chunk of the fixed schedule: stream_chunk(seg, final, st, ws);
  ///   stream_end(st, ws, out, obs);
  /// where the schedule is the one `detect_into` runs: chunks start at
  /// st.next_start (0, hop, 2*hop, ... with hop = chunk - reference + 1)
  /// and span min(config().chunk, N - start) samples; a chunk shorter than
  /// the reference is never processed (its lags don't exist), and
  /// `final_chunk` is true iff the chunk ends the recording. An incremental
  /// caller may process a chunk as soon as MORE than `start + chunk`
  /// samples exist (the chunk is then certainly full and non-final), and
  /// the remaining <= 1 chunk at end of stream; detections and telemetry
  /// are then bit-identical to `detect_into` on the whole recording —
  /// pass 2 (global min-spacing) and the amplitude gate run in
  /// `stream_end`, over candidates accumulated in `ws.candidates`.
  void stream_begin(DetectorStream& stream, DetectorWorkspace& ws) const;

  /// Process the chunk starting at stream.next_start. `seg` holds recording
  /// samples [stream.next_start, stream.next_start + seg.size()) and must
  /// satisfy reference().size() <= seg.size() <= config().chunk, with
  /// seg.size() == config().chunk unless `final_chunk`. Advances
  /// stream.next_start by the hop.
  void stream_chunk(std::span<const double> seg, bool final_chunk,
                    DetectorStream& stream, DetectorWorkspace& ws) const;

  /// Flush the pending boundary candidate, run the global min-spacing pass
  /// and the relative amplitude gate over `ws.candidates`, write the
  /// surviving detections to `out` (cleared first), and record detector
  /// telemetry for the whole stream on `obs`. The stream is exhausted
  /// afterwards; reuse requires stream_begin.
  void stream_end(DetectorStream& stream, DetectorWorkspace& ws,
                  std::vector<Detection>& out,
                  const obs::ObsContext* obs = nullptr) const;

  [[nodiscard]] const DetectorConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<double>& reference() const { return reference_; }

 private:
  /// Valid-mode correlation of one chunk against the reference into
  /// `ws.raw`, streaming through the cached reversed-template convolver
  /// when the product is large enough for the FFT path to pay off.
  void correlate_chunk(std::span<const double> seg, DetectorWorkspace& ws) const;

  std::vector<double> reference_;
  DetectorConfig config_;
  double reference_norm_ = 0.0;  ///< L2 norm of the reference
  /// Overlap-save convolver for the time-reversed reference; engaged when
  /// full chunks take the FFT path.
  std::optional<OlsConvolver> ols_;
};

}  // namespace hyperear::dsp
