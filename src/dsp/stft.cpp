#include "dsp/stft.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "dsp/fft.hpp"

namespace hyperear::dsp {

double Spectrogram::time_of(std::size_t t) const {
  require(sample_rate > 0.0, "Spectrogram::time_of: empty spectrogram");
  // Frame t starts at t*hop; its center is half a frame later. The frame
  // length is recoverable from the bin count: nfft = 2*(bins-1).
  const double frame_len = 2.0 * static_cast<double>(bins() - 1);
  return (static_cast<double>(t * hop) + frame_len / 2.0) / sample_rate;
}

Spectrogram stft(std::span<const double> signal, double sample_rate,
                 const StftOptions& options) {
  require(sample_rate > 0.0, "stft: bad sample rate");
  require(options.hop >= 1 && options.hop <= options.frame, "stft: bad hop");
  require(signal.size() >= options.frame, "stft: signal shorter than one frame");

  const std::size_t nfft = next_pow2(options.frame);
  const std::vector<double> window = make_window(options.window, options.frame);

  Spectrogram out;
  out.sample_rate = sample_rate;
  out.bin_hz = sample_rate / static_cast<double>(nfft);
  out.hop = options.hop;
  for (std::size_t start = 0; start + options.frame <= signal.size();
       start += options.hop) {
    std::vector<double> frame(signal.begin() + static_cast<std::ptrdiff_t>(start),
                              signal.begin() + static_cast<std::ptrdiff_t>(start) +
                                  static_cast<std::ptrdiff_t>(options.frame));
    apply_window(frame, window);
    const std::vector<Complex> spec = fft_real(frame, nfft);
    std::vector<double> mags(nfft / 2 + 1);
    for (std::size_t k = 0; k < mags.size(); ++k) mags[k] = std::abs(spec[k]);
    out.magnitude.push_back(std::move(mags));
  }
  return out;
}

std::vector<double> band_energy_track(const Spectrogram& spec, double low_hz,
                                      double high_hz) {
  require(low_hz < high_hz, "band_energy_track: bad band");
  std::vector<double> out(spec.frames(), 0.0);
  for (std::size_t t = 0; t < spec.frames(); ++t) {
    double e = 0.0;
    for (std::size_t k = 0; k < spec.bins(); ++k) {
      const double f = spec.freq_of(k);
      if (f >= low_hz && f <= high_hz) e += spec.magnitude[t][k] * spec.magnitude[t][k];
    }
    out[t] = e;
  }
  return out;
}

std::vector<double> peak_frequency_track(const Spectrogram& spec, double low_hz,
                                         double high_hz) {
  require(low_hz < high_hz, "peak_frequency_track: bad band");
  std::vector<double> out(spec.frames(), 0.0);
  for (std::size_t t = 0; t < spec.frames(); ++t) {
    double best = -1.0;
    double best_f = low_hz;
    for (std::size_t k = 0; k < spec.bins(); ++k) {
      const double f = spec.freq_of(k);
      if (f < low_hz || f > high_hz) continue;
      if (spec.magnitude[t][k] > best) {
        best = spec.magnitude[t][k];
        best_f = f;
      }
    }
    out[t] = best_f;
  }
  return out;
}

}  // namespace hyperear::dsp
