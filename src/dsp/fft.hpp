#pragma once

#include <complex>
#include <span>
#include <vector>

/// @file fft.hpp
/// Iterative radix-2 FFT, implemented from scratch (no external DSP
/// dependency). Used by cross-correlation, matched filtering, FIR design
/// verification and spectral analysis.

namespace hyperear::dsp {

using Complex = std::complex<double>;

/// In-place forward FFT. Requires x.size() to be a power of two (>= 1).
void fft_inplace(std::vector<Complex>& x);

/// In-place inverse FFT (includes the 1/N normalization). Requires a
/// power-of-two size.
void ifft_inplace(std::vector<Complex>& x);

/// Forward FFT of a real signal, zero-padded up to the next power of two of
/// `min_size` (or of x.size() when min_size == 0). Returns the full complex
/// spectrum of that padded length.
[[nodiscard]] std::vector<Complex> fft_real(std::span<const double> x, std::size_t min_size = 0);

/// Inverse FFT returning only the real parts (imaginary parts are expected
/// to be numerically negligible for conjugate-symmetric input).
[[nodiscard]] std::vector<double> ifft_to_real(std::vector<Complex> spectrum);

/// Linear convolution of two real signals via FFT.
/// Result length is a.size() + b.size() - 1. Requires non-empty inputs.
[[nodiscard]] std::vector<double> fft_convolve(std::span<const double> a,
                                               std::span<const double> b);

}  // namespace hyperear::dsp
