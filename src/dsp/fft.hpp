#pragma once

#include <array>
#include <complex>
#include <span>
#include <vector>

/// @file fft.hpp
/// Iterative radix-2 FFT, implemented from scratch (no external DSP
/// dependency). Used by cross-correlation, matched filtering, FIR design
/// verification and spectral analysis.
///
/// Hot paths that transform many buffers of one fixed size (the matched
/// filter's chunked correlation, via core::PipelineContext) should build an
/// `FftPlan` once and reuse it: the plan precomputes the bit-reversal
/// permutation and per-stage twiddle tables, and its transforms are
/// bit-identical to the planless `fft_inplace`/`ifft_inplace`.
///
/// Loops that transform many buffers should also own a `Workspace` and call
/// the `_into` variants, which reuse the caller's buffers instead of
/// allocating fresh ones per transform (DESIGN.md Section 9).

namespace hyperear::dsp {

using Complex = std::complex<double>;

/// In-place forward FFT. Requires x.size() to be a power of two (>= 1).
void fft_inplace(std::vector<Complex>& x);

/// In-place inverse FFT (includes the 1/N normalization). Requires a
/// power-of-two size.
void ifft_inplace(std::vector<Complex>& x);

/// Precomputed radix-2 plan for one transform size: the bit-reversal
/// permutation plus forward/inverse twiddle tables. Immutable after
/// construction, so one plan can be shared read-only across threads.
/// The twiddles are generated with the same recurrence the planless FFT
/// evaluates on the fly, so planned transforms are bit-identical to
/// `fft_inplace`/`ifft_inplace` — results do not depend on whether a
/// caller went through a plan.
class FftPlan {
 public:
  /// `n` must be a power of two (>= 1).
  explicit FftPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// In-place transforms; require x.size() == size().
  void forward(std::vector<Complex>& x) const { run(x, false); }
  void inverse(std::vector<Complex>& x) const { run(x, true); }

 private:
  void run(std::vector<Complex>& x, bool inverse) const;

  std::size_t n_ = 1;
  std::vector<std::size_t> bitrev_;  ///< swap partner of each index
  std::vector<Complex> forward_twiddles_;  ///< per-stage tables, concatenated
  std::vector<Complex> inverse_twiddles_;
};

/// Reusable scratch buffers for the FFT/convolution hot paths. A Workspace
/// is deliberately dumb: callers ask for a slot resized to the length they
/// need and must overwrite every element they read back. It is NOT
/// thread-safe — own one per call stack (the matched-filter detector builds
/// one per `detect` call, the ASP stage one per mic channel) and never share
/// it across threads. Repeated calls of one loop reuse the same capacity, so
/// the steady state of a block-convolution loop performs zero allocations.
class Workspace {
 public:
  static constexpr std::size_t kSlots = 2;

  /// Complex scratch buffer `slot`, resized to `size`; contents unspecified.
  [[nodiscard]] std::vector<Complex>& complex_scratch(std::size_t slot, std::size_t size);

  /// Real scratch buffer `slot`, resized to `size`; contents unspecified.
  [[nodiscard]] std::vector<double>& real_scratch(std::size_t slot, std::size_t size);

 private:
  std::array<std::vector<Complex>, kSlots> complex_;
  std::array<std::vector<double>, kSlots> real_;
};

/// Forward FFT of a real signal, zero-padded up to the next power of two of
/// `min_size` (or of x.size() when min_size == 0). Returns the full complex
/// spectrum of that padded length.
[[nodiscard]] std::vector<Complex> fft_real(std::span<const double> x, std::size_t min_size = 0);

/// `fft_real` into a caller-owned buffer (typically a Workspace slot): no
/// allocation once `out` has the capacity, and only the zero tail of the
/// padding is cleared (the signal itself is written, not zeroed then
/// copied). When `plan` is non-null and sized to the padded length it is
/// used; the result is bit-identical either way (FftPlan contract).
void fft_real_into(std::span<const double> x, std::size_t min_size,
                   std::vector<Complex>& out, const FftPlan* plan = nullptr);

/// Inverse FFT returning only the real parts (imaginary parts are expected
/// to be numerically negligible for conjugate-symmetric input).
[[nodiscard]] std::vector<double> ifft_to_real(std::vector<Complex> spectrum);

/// `ifft_to_real` transforming `spectrum` in place and extracting the real
/// parts into a caller-owned buffer — the allocation-free spelling for
/// loops. `spectrum` is clobbered.
void ifft_to_real_into(std::vector<Complex>& spectrum, std::vector<double>& out,
                       const FftPlan* plan = nullptr);

/// Linear convolution of two real signals via one monolithic FFT at the
/// next power of two covering the full result. Result length is
/// a.size() + b.size() - 1. Requires non-empty inputs.
///
/// This is the *reference* path: simple, allocation-heavy, and O(N log N)
/// in the padded length of the WHOLE signal. Long-signal/short-kernel
/// convolution (FIR filtering, matched-filter correlation) should go
/// through `OlsConvolver` (dsp/ols.hpp), which streams fixed-size blocks
/// through cached plans instead; `filter_same` and `correlate_valid` do so
/// automatically. bench_micro_dsp records the gap between the two.
[[nodiscard]] std::vector<double> fft_convolve(std::span<const double> a,
                                               std::span<const double> b);

/// Workspace-backed monolithic convolution: same result as `fft_convolve`
/// (bit-identical), with the two spectra held in workspace slots so batch
/// callers skip the per-call allocations.
[[nodiscard]] std::vector<double> fft_convolve(std::span<const double> a,
                                               std::span<const double> b, Workspace& ws);

}  // namespace hyperear::dsp
