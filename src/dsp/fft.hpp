#pragma once

#include <complex>
#include <span>
#include <vector>

/// @file fft.hpp
/// Iterative radix-2 FFT, implemented from scratch (no external DSP
/// dependency). Used by cross-correlation, matched filtering, FIR design
/// verification and spectral analysis.
///
/// Hot paths that transform many buffers of one fixed size (the matched
/// filter's chunked correlation, via core::PipelineContext) should build an
/// `FftPlan` once and reuse it: the plan precomputes the bit-reversal
/// permutation and per-stage twiddle tables, and its transforms are
/// bit-identical to the planless `fft_inplace`/`ifft_inplace`.

namespace hyperear::dsp {

using Complex = std::complex<double>;

/// In-place forward FFT. Requires x.size() to be a power of two (>= 1).
void fft_inplace(std::vector<Complex>& x);

/// In-place inverse FFT (includes the 1/N normalization). Requires a
/// power-of-two size.
void ifft_inplace(std::vector<Complex>& x);

/// Precomputed radix-2 plan for one transform size: the bit-reversal
/// permutation plus forward/inverse twiddle tables. Immutable after
/// construction, so one plan can be shared read-only across threads.
/// The twiddles are generated with the same recurrence the planless FFT
/// evaluates on the fly, so planned transforms are bit-identical to
/// `fft_inplace`/`ifft_inplace` — results do not depend on whether a
/// caller went through a plan.
class FftPlan {
 public:
  /// `n` must be a power of two (>= 1).
  explicit FftPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// In-place transforms; require x.size() == size().
  void forward(std::vector<Complex>& x) const { run(x, false); }
  void inverse(std::vector<Complex>& x) const { run(x, true); }

 private:
  void run(std::vector<Complex>& x, bool inverse) const;

  std::size_t n_ = 1;
  std::vector<std::size_t> bitrev_;  ///< swap partner of each index
  std::vector<Complex> forward_twiddles_;  ///< per-stage tables, concatenated
  std::vector<Complex> inverse_twiddles_;
};

/// Forward FFT of a real signal, zero-padded up to the next power of two of
/// `min_size` (or of x.size() when min_size == 0). Returns the full complex
/// spectrum of that padded length.
[[nodiscard]] std::vector<Complex> fft_real(std::span<const double> x, std::size_t min_size = 0);

/// Inverse FFT returning only the real parts (imaginary parts are expected
/// to be numerically negligible for conjugate-symmetric input).
[[nodiscard]] std::vector<double> ifft_to_real(std::vector<Complex> spectrum);

/// Linear convolution of two real signals via FFT.
/// Result length is a.size() + b.size() - 1. Requires non-empty inputs.
[[nodiscard]] std::vector<double> fft_convolve(std::span<const double> a,
                                               std::span<const double> b);

}  // namespace hyperear::dsp
