#include "dsp/correlation.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "dsp/fft.hpp"
#include "dsp/ols.hpp"

namespace hyperear::dsp {

namespace {

/// Direct valid-mode correlation. `reversed` flips the template indexing so
/// the same loop serves callers holding h and callers holding reverse(h).
void correlate_valid_direct_into(std::span<const double> x, std::span<const double> h,
                                 bool reversed, std::vector<double>& out) {
  const std::size_t out_len = x.size() - h.size() + 1;
  out.resize(out_len);
  for (std::size_t k = 0; k < out_len; ++k) {
    double s = 0.0;
    for (std::size_t j = 0; j < h.size(); ++j) {
      s += x[k + j] * (reversed ? h[h.size() - 1 - j] : h[j]);
    }
    out[k] = s;
  }
}

std::vector<double> correlate_valid_direct(std::span<const double> x,
                                           std::span<const double> h, bool reversed) {
  std::vector<double> out;
  correlate_valid_direct_into(x, h, reversed, out);
  return out;
}

}  // namespace

std::vector<double> correlate_valid(std::span<const double> x, std::span<const double> h) {
  require(!x.empty() && !h.empty(), "correlate_valid: empty input");
  require(h.size() <= x.size(), "correlate_valid: template longer than signal");
  if (x.size() * h.size() <= kDirectProductLimit) {
    std::vector<double> out = correlate_valid_direct(x, h, false);
    HE_ENSURES(out.size() == x.size() - h.size() + 1);
    return out;
  }
  // Overlap-save with the reversed template at the default block size — the
  // same geometry a cached reversed-spectrum convolver uses, so both
  // overloads agree bit for bit.
  std::vector<double> out =
      OlsConvolver(std::vector<double>(h.rbegin(), h.rend())).correlate_valid(x);
  // Valid-mode lag bound: lag k ranges over [0, |x|-|h|]; the OLS window
  // carve-out must hand back exactly that many lags or downstream
  // peak->sample-index arithmetic is silently shifted.
  HE_ENSURES(out.size() == x.size() - h.size() + 1);
  return out;
}

std::vector<double> correlate_valid(std::span<const double> x,
                                    const OlsConvolver& reversed_template,
                                    Workspace* ws) {
  require(!x.empty(), "correlate_valid: empty input");
  require(reversed_template.kernel_size() <= x.size(),
          "correlate_valid: template longer than signal");
  if (x.size() * reversed_template.kernel_size() <= kDirectProductLimit) {
    return correlate_valid_direct(x, reversed_template.kernel(), true);
  }
  return reversed_template.correlate_valid(x, ws);
}

void correlate_valid_into(std::span<const double> x,
                          const OlsConvolver& reversed_template,
                          std::vector<double>& out, Workspace& ws) {
  require(!x.empty(), "correlate_valid: empty input");
  require(reversed_template.kernel_size() <= x.size(),
          "correlate_valid: template longer than signal");
  if (x.size() * reversed_template.kernel_size() <= kDirectProductLimit) {
    correlate_valid_direct_into(x, reversed_template.kernel(), true, out);
    return;
  }
  reversed_template.correlate_valid_into(x, out, ws);
}

std::vector<double> correlate_normalized(std::span<const double> x,
                                         std::span<const double> h) {
  const std::vector<double> corr = correlate_valid(x, h);
  double h_energy = 0.0;
  for (double v : h) h_energy += v * v;
  require(h_energy > 0.0, "correlate_normalized: zero-energy template");
  return normalize_correlation(corr, x, h.size(), std::sqrt(h_energy));
}

std::vector<double> normalize_correlation(std::span<const double> corr,
                                          std::span<const double> x,
                                          std::size_t h_size, double h_norm) {
  std::vector<double> prefix;
  std::vector<double> out;
  normalize_correlation_into(corr, x, h_size, h_norm, prefix, out);
  return out;
}

void normalize_correlation_into(std::span<const double> corr, std::span<const double> x,
                                std::size_t h_size, double h_norm,
                                std::vector<double>& prefix_scratch,
                                std::vector<double>& out) {
  require(h_norm > 0.0, "normalize_correlation: zero-energy template");
  require(h_size >= 1 && h_size <= x.size() &&
              corr.size() == x.size() - h_size + 1,
          "normalize_correlation: correlation/signal length mismatch");
  // Running window energy of x via prefix sums. Silent stretches would
  // otherwise divide by (numerically) zero and amplify FFT round-off into
  // spurious peaks, so the window energy is floored at a small fraction of
  // the average window energy.
  HE_EXPECTS(h_norm > 0.0 && std::isfinite(h_norm));
  prefix_scratch.resize(x.size() + 1);
  prefix_scratch[0] = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    prefix_scratch[i + 1] = prefix_scratch[i] + x[i] * x[i];
  }
  const double mean_window_energy = prefix_scratch[x.size()] *
                                    static_cast<double>(h_size) /
                                    static_cast<double>(x.size());
  const double floor_energy = std::max(1e-4 * mean_window_energy, 1e-30);
  out.resize(corr.size());
  for (std::size_t k = 0; k < corr.size(); ++k) {
    const double win_energy = prefix_scratch[k + h_size] - prefix_scratch[k];
    const double denom = std::sqrt(std::max(win_energy, floor_energy)) * h_norm;
    out[k] = corr[k] / denom;
  }
  HE_ENSURES(out.size() == corr.size());
}

std::vector<double> correlate_full(std::span<const double> x, std::span<const double> h) {
  require(!x.empty() && !h.empty(), "correlate_full: empty input");
  std::vector<double> hr(h.rbegin(), h.rend());
  if (x.size() * h.size() <= kDirectProductLimit) {
    return fft_convolve(x, hr);
  }
  return OlsConvolver(std::move(hr)).convolve_full(x);
}

std::vector<double> correlate_full(std::span<const double> x,
                                   const OlsConvolver& reversed_template, Workspace* ws) {
  require(!x.empty(), "correlate_full: empty input");
  if (x.size() * reversed_template.kernel_size() <= kDirectProductLimit) {
    return fft_convolve(x, reversed_template.kernel());
  }
  return reversed_template.convolve_full(x, ws);
}

}  // namespace hyperear::dsp
