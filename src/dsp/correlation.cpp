#include "dsp/correlation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/fft.hpp"

namespace hyperear::dsp {

std::vector<double> correlate_valid(std::span<const double> x, std::span<const double> h) {
  require(!x.empty() && !h.empty(), "correlate_valid: empty input");
  require(h.size() <= x.size(), "correlate_valid: template longer than signal");
  const std::size_t out_len = x.size() - h.size() + 1;
  if (x.size() * h.size() <= 1u << 16) {
    std::vector<double> out(out_len, 0.0);
    for (std::size_t k = 0; k < out_len; ++k) {
      double s = 0.0;
      for (std::size_t j = 0; j < h.size(); ++j) s += x[k + j] * h[j];
      out[k] = s;
    }
    return out;
  }
  // FFT path: correlation = convolution with reversed template.
  std::vector<double> hr(h.rbegin(), h.rend());
  std::vector<double> full = fft_convolve(x, hr);
  // full[k] = sum_j x[j] * hr[k - j]; valid correlation lag k corresponds to
  // full index k + h.size() - 1.
  std::vector<double> out(out_len);
  for (std::size_t k = 0; k < out_len; ++k) out[k] = full[k + h.size() - 1];
  return out;
}

std::vector<double> correlate_normalized(std::span<const double> x,
                                         std::span<const double> h) {
  const std::vector<double> corr = correlate_valid(x, h);
  double h_energy = 0.0;
  for (double v : h) h_energy += v * v;
  require(h_energy > 0.0, "correlate_normalized: zero-energy template");
  return normalize_correlation(corr, x, h.size(), std::sqrt(h_energy));
}

std::vector<double> normalize_correlation(std::span<const double> corr,
                                          std::span<const double> x,
                                          std::size_t h_size, double h_norm) {
  require(h_norm > 0.0, "normalize_correlation: zero-energy template");
  require(h_size >= 1 && h_size <= x.size() &&
              corr.size() == x.size() - h_size + 1,
          "normalize_correlation: correlation/signal length mismatch");
  // Running window energy of x via prefix sums. Silent stretches would
  // otherwise divide by (numerically) zero and amplify FFT round-off into
  // spurious peaks, so the window energy is floored at a small fraction of
  // the average window energy.
  std::vector<double> prefix(x.size() + 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) prefix[i + 1] = prefix[i] + x[i] * x[i];
  const double mean_window_energy =
      prefix[x.size()] * static_cast<double>(h_size) / static_cast<double>(x.size());
  const double floor_energy = std::max(1e-4 * mean_window_energy, 1e-30);
  std::vector<double> out(corr.size());
  for (std::size_t k = 0; k < corr.size(); ++k) {
    const double win_energy = prefix[k + h_size] - prefix[k];
    const double denom = std::sqrt(std::max(win_energy, floor_energy)) * h_norm;
    out[k] = corr[k] / denom;
  }
  return out;
}

std::vector<double> correlate_full(std::span<const double> x, std::span<const double> h) {
  require(!x.empty() && !h.empty(), "correlate_full: empty input");
  std::vector<double> hr(h.rbegin(), h.rend());
  return fft_convolve(x, hr);
}

}  // namespace hyperear::dsp
