#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/pipeline.hpp"
#include "core/pipeline_context.hpp"

/// @file context_cache.hpp
/// Sharded cache of immutable core::PipelineContext plan sets.
///
/// The engine's old cache was one mutex over one vector: every session of
/// every worker took the same lock just to *look up* plans that virtually
/// never change. This cache shards by `core::plan_key_hash` of the
/// (asp options, chirp, sample rate) key, so concurrent lookups of
/// different configurations never contend, and workers additionally
/// memoize the last context they used (runtime::WorkspacePool's
/// WorkerState), which removes even the shard lock from the steady-state
/// path — the cache is then touched only when a worker first sees a new
/// configuration.
///
/// Contexts are immutable after construction, so handing the same
/// shared_ptr to many workers is safe by construction; the lock protects
/// only the shard's entry vector.

namespace hyperear::runtime {

class ContextCache {
 public:
  /// Find-or-build the plans for this configuration. The shard lock covers
  /// construction too — the first session of a combination builds the
  /// plans while lookalikes wait, instead of racing to build duplicates
  /// (plan construction is the expensive part; a duplicate would also
  /// defeat the sharing the cache exists for).
  ///
  /// Returns null when the plans cannot be built (pathological session —
  /// e.g. an absurd sample rate): the caller falls back to context-free
  /// core::try_localize, which rebuilds and fails INSIDE the ASP stage so
  /// the error is classified against the stage that owns it.
  [[nodiscard]] std::shared_ptr<const core::PipelineContext> acquire(
      const core::PipelineConfig& config, const dsp::ChirpParams& chirp,
      double sample_rate) {
    const std::uint64_t hash = core::plan_key_hash(config.asp, chirp, sample_rate);
    Shard& shard = shards_[hash & (kShards - 1)];
    const he::MutexLock lock(shard.mutex);
    for (const auto& c : shard.entries) {
      if (c->matches(config.asp, chirp, sample_rate)) return c;
    }
    try {
      auto fresh = std::make_shared<const core::PipelineContext>(config, chirp,
                                                                 sample_rate);
      if (shard.entries.size() < kMaxPerShard) shard.entries.push_back(fresh);
      return fresh;
    } catch (const std::exception&) {
      return nullptr;
    }
  }

  /// Cached plan sets across all shards (diagnostics/tests).
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      const he::MutexLock lock(shard.mutex);
      total += shard.entries.size();
    }
    return total;
  }

 private:
  static constexpr std::size_t kShards = 16;  ///< power of two (mask indexing)
  /// Bounded per shard: virtually every batch uses one configuration, so
  /// the bound only guards against an adversarial stream of distinct
  /// configurations growing the cache without end. Overflow entries are
  /// still returned, just not retained.
  static constexpr std::size_t kMaxPerShard = 4;

  struct Shard {
    mutable he::Mutex mutex HE_LOCK_LEVEL(engine);
    std::vector<std::shared_ptr<const core::PipelineContext>> entries
        HE_GUARDED_BY(mutex);
  };

  std::array<Shard, kShards> shards_;
};

}  // namespace hyperear::runtime
