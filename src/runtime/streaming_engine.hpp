#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/streaming_session.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/context_cache.hpp"
#include "runtime/engine.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/workspace_pool.hpp"

/// @file streaming_engine.hpp
/// Multiplexes many live `core::StreamingSession`s over one thread pool.
///
/// The batch engine answers "localize these N finished recordings"; this
/// engine answers "N phones are streaming audio right now". Each open
/// session owns a leased per-session workspace and a StreamingSession;
/// pushed audio is buffered in a per-session inbox and drained by at most
/// one pool task at a time (a strand), so session state is never touched
/// concurrently while unrelated sessions proceed in parallel. Backpressure
/// is a hard per-session cap on buffered-but-undrained samples — `push`
/// reports `overflow` instead of queueing unboundedly, and the caller
/// retries or drops. Idle sessions are evicted on a LOGICAL clock
/// (`tick()` + `evict_idle`), so reclamation is deterministic and testable
/// — wall time never decides which sessions die.
///
/// Results are bit-identical to `BatchEngine`/`core::try_localize` on the
/// concatenated audio (the StreamingSession guarantee), whatever the
/// chunking, interleaving, or thread count. Telemetry lands on the
/// `streaming.*` series of the registry (supplied or engine-private).

namespace hyperear::runtime {

/// Outcome of one `push` call. Values, not exceptions: a full buffer or a
/// closed session is normal operation under load, not a programming error.
enum class PushStatus : std::uint8_t {
  accepted,         ///< buffered; a drain task is (or was already) scheduled
  overflow,         ///< per-session buffer cap hit — retry later or drop
  closed,           ///< session finalized/closing, or the engine shut down
  unknown_session,  ///< no such id (never opened, already done, or evicted)
};

[[nodiscard]] const char* to_string(PushStatus status);

struct StreamingEngineOptions {
  /// Worker threads; 0 = hardware_concurrency (min 1).
  std::size_t threads = 0;
  /// Maximum concurrently open sessions; `open` returns 0 beyond it.
  std::size_t max_sessions = 64;
  /// Per-session cap on buffered (pushed but not yet drained) samples,
  /// both channels combined — the backpressure bound.
  std::size_t max_buffered_samples = std::size_t{1} << 22;
};

/// Concurrent streaming localizer. See the file comment for the model.
/// Thread-safe: open/push/finalize/tick/evict_idle may be called from any
/// thread.
class StreamingEngine {
 public:
  explicit StreamingEngine(core::PipelineConfig config = {},
                           StreamingEngineOptions options = {}, EngineObs obs = {});
  ~StreamingEngine();

  StreamingEngine(const StreamingEngine&) = delete;
  StreamingEngine& operator=(const StreamingEngine&) = delete;

  /// Open a session for `meta` (audio channels must be empty — samples
  /// arrive via `push`). Returns the session id (>= 1), or 0 when
  /// `max_sessions` are already open. Throws PreconditionError after
  /// shutdown.
  [[nodiscard]] std::uint64_t open(sim::Session meta)
      HE_EXCLUDES(sessions_mutex_);

  /// Buffer one stereo slice for the session (equal lengths) and schedule
  /// its drain. Never blocks on DSP work.
  [[nodiscard]] PushStatus push(std::uint64_t id, std::span<const double> mic1,
                                std::span<const double> mic2)
      HE_EXCLUDES(sessions_mutex_);

  /// Declare end-of-audio: no further pushes are accepted; the future
  /// resolves once the drain task has run the session's `finalize`. Throws
  /// PreconditionError for an unknown (or already finalized) id.
  [[nodiscard]] std::future<SessionReport> finalize(std::uint64_t id)
      HE_EXCLUDES(sessions_mutex_);

  /// Advance the logical clock one step. Activity on a session stamps the
  /// current tick; `evict_idle(max_idle)` closes sessions whose stamp is
  /// more than `max_idle` ticks old.
  void tick();

  /// Evict sessions idle for more than `max_idle_ticks` (finalizing
  /// sessions are never evicted). Their ids become unknown and their
  /// workspaces return to the pool. Returns how many were evicted.
  std::size_t evict_idle(std::uint64_t max_idle_ticks)
      HE_EXCLUDES(sessions_mutex_);

  /// Stop accepting opens and pushes; sessions already finalizing still
  /// resolve their futures. Idempotent; the destructor implies it.
  void shutdown();

  [[nodiscard]] std::size_t open_sessions() const HE_EXCLUDES(sessions_mutex_);
  [[nodiscard]] obs::MetricsRegistry& metrics() const { return *registry_; }
  [[nodiscard]] std::size_t thread_count() const { return pool_.size(); }
  [[nodiscard]] const core::PipelineConfig& config() const { return config_; }

 private:
  /// One buffered stereo slice. Recycled through the entry's freelist so a
  /// steady push cadence reuses capacity instead of allocating.
  struct Buffered {
    std::vector<double> mic1;
    std::vector<double> mic2;
  };

  /// One open session. `mutex` guards the inbox and flags; the members
  /// below the guarded block are STRAND-OWNED — touched only by the
  /// (single) scheduled drain task, which `scheduled` serializes — or
  /// immutable after open, so they deliberately carry no HE_GUARDED_BY
  /// (the analysis cannot express "owned by whichever thread holds the
  /// strand", and a mutex annotation here would force drains to hold the
  /// lock across DSP work).
  struct Entry {
    he::Mutex mutex HE_LOCK_LEVEL(session);
    std::deque<Buffered> inbox HE_GUARDED_BY(mutex);
    std::vector<Buffered> freelist HE_GUARDED_BY(mutex);
    /// Both channels combined.
    std::size_t buffered_samples HE_GUARDED_BY(mutex) = 0;
    /// A drain task is queued or running.
    bool scheduled HE_GUARDED_BY(mutex) = false;
    /// Finalize requested; inbox drains then solves.
    bool closing HE_GUARDED_BY(mutex) = false;
    /// Drain must abandon the session.
    bool evicted HE_GUARDED_BY(mutex) = false;
    std::uint64_t last_tick HE_GUARDED_BY(mutex) = 0;
    // -- immutable after open --
    std::uint64_t id = 0;
    obs::MonotonicTime opened_at;
    // -- strand-owned (see above) --
    std::size_t events_seen = 0;       ///< events already counted on metrics
    std::exception_ptr push_error;     ///< first drain-side failure, if any
    std::optional<WorkspacePool::Lease> lease;
    std::optional<core::StreamingSession> session;
    std::promise<SessionReport> promise;
  };

  /// Handles into the registry for the `streaming.*` series.
  struct Counters {
    obs::Counter opened;         ///< streaming.sessions_opened_total
    obs::Counter closed;         ///< streaming.sessions_closed_total
    obs::Counter evicted;        ///< streaming.sessions_evicted_total
    obs::Counter open_rejected;  ///< streaming.open_rejected_total
    obs::Counter push_accepted;  ///< streaming.push_accepted_total
    obs::Counter push_overflow;  ///< streaming.push_overflow_total
    obs::Counter samples;        ///< streaming.samples_total
    obs::Counter events;         ///< streaming.events_total
    obs::Gauge open_gauge;       ///< streaming.open_sessions
    obs::Gauge buffered_gauge;   ///< streaming.buffered_samples
    obs::Histogram finalize_ms;  ///< streaming.finalize_ms
  };

  /// Queue a drain task unless one is already queued/running. Returns false
  /// when the pool refused the post (engine shutting down). Caller holds
  /// `entry->mutex`.
  bool schedule_drain_locked(const std::shared_ptr<Entry>& entry)
      HE_REQUIRES(entry->mutex);
  void drain(const std::shared_ptr<Entry>& entry) HE_EXCLUDES(entry->mutex);
  void finish_entry(const std::shared_ptr<Entry>& entry)
      HE_EXCLUDES(entry->mutex, sessions_mutex_);
  [[nodiscard]] std::shared_ptr<Entry> find(std::uint64_t id) const
      HE_EXCLUDES(sessions_mutex_);

  const core::PipelineConfig config_;
  const StreamingEngineOptions options_;
  /// Declared before pool_: drain tasks reference the registry while the
  /// pool drains during destruction.
  std::shared_ptr<obs::MetricsRegistry> registry_;
  std::shared_ptr<obs::Tracer> tracer_;
  Counters counters_;
  ContextCache contexts_;
  WorkspacePool workspaces_;

  /// Session-map lock; nests OUTSIDE the per-entry locks (evict_idle walks
  /// the map and locks entries inside it) and the workspace/context locks
  /// (open checks out a lease while holding it).
  mutable he::Mutex sessions_mutex_ HE_LOCK_LEVEL(streaming);
  std::map<std::uint64_t, std::shared_ptr<Entry>> sessions_
      HE_GUARDED_BY(sessions_mutex_);
  std::uint64_t next_id_ HE_GUARDED_BY(sessions_mutex_) = 0;
  std::atomic<std::uint64_t> current_tick_{0};
  std::atomic<bool> stopping_{false};

  ThreadPool pool_;  // declared last: workers must die before state above
};

}  // namespace hyperear::runtime
