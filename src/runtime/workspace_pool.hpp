#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/pipeline_context.hpp"
#include "core/session_workspace.hpp"

/// @file workspace_pool.hpp
/// Checkout pool of per-worker session state for the batch engine.
///
/// A core::SessionWorkspace is single-owner mutable scratch; the pool turns
/// that rule into a mechanism. A worker checks out a `WorkerState` for the
/// duration of one session and returns it afterwards (RAII lease), so
/// exclusivity holds by construction: a state is either in exactly one
/// lease or on the free list, never both, and two workers can never hold
/// the same state (tests/test_engine.cpp's exclusivity test and the tsan
/// preset enforce this). States persist across sessions, which is the
/// whole point — a returned workspace comes back warm, so the next session
/// on any worker runs allocation-free.
///
/// Each state also memoizes the last PipelineContext its sessions used.
/// That pointer is worker-private (no lock to read it), so the steady
/// state — thousands of sessions, one configuration — touches neither the
/// context-cache shard lock nor any other cross-session lock; the pool's
/// own mutex guards only an O(1) pointer pop/push per session.

namespace hyperear::runtime {

class WorkspacePool {
 public:
  /// One worker's persistent session state.
  struct WorkerState {
    core::SessionWorkspace workspace;
    /// Last plan set this state's sessions used — the lock-free fast path
    /// of context lookup. May be null (fresh state, or last acquire
    /// failed); always re-validated with `matches` before reuse.
    std::shared_ptr<const core::PipelineContext> last_context;
    /// Sessions this state has served (diagnostics/tests).
    std::uint64_t sessions_served = 0;
  };

  /// Exclusive RAII handle on a WorkerState; returns it on destruction.
  class Lease {
   public:
    Lease(WorkspacePool& pool, std::unique_ptr<WorkerState> state)
        : pool_(&pool), state_(std::move(state)) {}
    Lease(Lease&&) = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (state_ != nullptr) pool_->give_back(std::move(state_));
    }

    [[nodiscard]] WorkerState& operator*() const { return *state_; }
    [[nodiscard]] WorkerState* operator->() const { return state_.get(); }

   private:
    WorkspacePool* pool_;
    std::unique_ptr<WorkerState> state_;
  };

  /// Check out a state, creating one if the free list is empty — the pool
  /// grows to the engine's peak concurrency and no further.
  [[nodiscard]] Lease checkout() HE_EXCLUDES(mutex_) {
    {
      const he::MutexLock lock(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<WorkerState> state = std::move(free_.back());
        free_.pop_back();
        return Lease(*this, std::move(state));
      }
    }
    ++created_;
    return Lease(*this, std::make_unique<WorkerState>());
  }

  /// States ever created (== peak concurrent leases; diagnostics/tests).
  [[nodiscard]] std::size_t created() const {
    return created_.load(std::memory_order_relaxed);
  }

 private:
  void give_back(std::unique_ptr<WorkerState> state) HE_EXCLUDES(mutex_) {
    const he::MutexLock lock(mutex_);
    free_.push_back(std::move(state));
  }

  he::Mutex mutex_ HE_LOCK_LEVEL(engine);
  std::vector<std::unique_ptr<WorkerState>> free_ HE_GUARDED_BY(mutex_);
  std::atomic<std::size_t> created_{0};
};

}  // namespace hyperear::runtime
