#include "runtime/engine.hpp"

#include <chrono>

#include "common/error.hpp"

namespace hyperear::runtime {

namespace {

using Clock = std::chrono::steady_clock;

std::size_t default_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

const char* to_string(SessionStatus status) {
  switch (status) {
    case SessionStatus::ok: return "ok";
    case SessionStatus::no_solution: return "no_solution";
    case SessionStatus::error: return "error";
  }
  return "error";
}

BatchEngine::BatchEngine(core::PipelineConfig config, std::size_t threads)
    : config_(std::move(config)), pool_(default_threads(threads)) {
  if (std::optional<core::PipelineError> bad = config_.validate()) {
    throw PreconditionError("BatchEngine: " + describe(*bad));
  }
}

SessionReport BatchEngine::run_one(const sim::Session& session) {
  SessionReport report;
  const Clock::time_point t0 = Clock::now();
  try {
    Expected<core::LocalizationResult, core::PipelineError> outcome =
        core::try_localize(session, config_, &report.metrics);
    if (outcome.has_value()) {
      report.result = *std::move(outcome);
      report.status =
          report.result.valid ? SessionStatus::ok : SessionStatus::no_solution;
    } else {
      report.status = SessionStatus::error;
      report.error = std::move(outcome).error();
    }
  } catch (const std::exception& e) {
    // try_localize already maps stage failures; this guards the remaining
    // surface (bad_alloc, metric copies) so no exception reaches the pool.
    report.status = SessionStatus::error;
    report.error = core::error_from_exception(e, core::PipelineStage::aggregate);
  }
  report.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  record(report);
  return report;
}

void BatchEngine::record(const SessionReport& report) {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.completed;
  switch (report.status) {
    case SessionStatus::ok: ++stats_.ok; break;
    case SessionStatus::no_solution: ++stats_.no_solution; break;
    case SessionStatus::error:
      ++stats_.errors;
      ++stats_.errors_by_category[static_cast<std::size_t>(report.error.category)];
      break;
  }
  stats_.asp_ms += report.metrics.asp_ms;
  stats_.msp_ms += report.metrics.msp_ms;
  stats_.solve_ms += report.metrics.solve_ms;
  stats_.total_ms += report.wall_ms;
  stats_.chirps_detected += report.metrics.chirps_mic1 + report.metrics.chirps_mic2;
}

std::future<SessionReport> BatchEngine::submit(const sim::Session& session) {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submitted;
  }
  auto task = std::make_shared<std::packaged_task<SessionReport()>>(
      [this, &session] { return run_one(session); });
  std::future<SessionReport> future = task->get_future();
  pool_.post([task] { (*task)(); });
  return future;
}

std::future<SessionReport> BatchEngine::submit(sim::Session&& session) {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submitted;
  }
  auto owned = std::make_shared<sim::Session>(std::move(session));
  auto task = std::make_shared<std::packaged_task<SessionReport()>>(
      [this, owned] { return run_one(*owned); });
  std::future<SessionReport> future = task->get_future();
  pool_.post([task] { (*task)(); });
  return future;
}

std::vector<SessionReport> BatchEngine::localize_all(
    std::span<const sim::Session> sessions) {
  std::vector<std::future<SessionReport>> futures;
  futures.reserve(sessions.size());
  for (const sim::Session& s : sessions) futures.push_back(submit(s));
  std::vector<SessionReport> reports;
  reports.reserve(futures.size());
  for (std::future<SessionReport>& f : futures) reports.push_back(f.get());
  return reports;
}

EngineStats BatchEngine::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace hyperear::runtime
