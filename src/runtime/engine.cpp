#include "runtime/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <utility>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "common/thread_annotations.hpp"
#include "core/streaming_session.hpp"

namespace hyperear::runtime {

namespace {

using Clock = std::chrono::steady_clock;

std::size_t default_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Counter values are integral by construction (inc-by-1 or by a count),
/// so the double->size_t view is exact; round defensively anyway.
std::size_t as_count(double value) {
  return static_cast<std::size_t>(std::llround(value));
}

}  // namespace

const char* to_string(SessionStatus status) {
  switch (status) {
    case SessionStatus::ok: return "ok";
    case SessionStatus::no_solution: return "no_solution";
    case SessionStatus::error: return "error";
  }
  return "error";
}

BatchEngine::BatchEngine(core::PipelineConfig config, std::size_t threads,
                         EngineObs obs)
    : config_(std::move(config)),
      registry_(obs.registry != nullptr ? std::move(obs.registry)
                                        : std::make_shared<obs::MetricsRegistry>()),
      tracer_(std::move(obs.tracer)),
      pool_(default_threads(threads)) {
  if (std::optional<core::PipelineError> bad = config_.validate()) {
    throw PreconditionError("BatchEngine: " + describe(*bad));
  }
  obs::MetricsRegistry& m = *registry_;
  counters_.submitted = m.counter("engine.sessions_submitted_total");
  counters_.rejected = m.counter("engine.submit_rejected_total");
  counters_.completed = m.counter("engine.sessions_completed_total");
  counters_.ok = m.counter("engine.sessions_ok_total");
  counters_.no_solution = m.counter("engine.sessions_no_solution_total");
  counters_.errors = m.counter("engine.sessions_error_total");
  for (std::size_t i = 0; i < core::kErrorCategoryCount; ++i) {
    counters_.by_category[i] =
        m.counter(std::string("engine.errors_by_category.") +
                  core::to_string(static_cast<core::ErrorCategory>(i)));
  }
  counters_.asp_ms = m.counter("engine.stage_ms.asp");
  counters_.msp_ms = m.counter("engine.stage_ms.msp");
  counters_.solve_ms = m.counter("engine.stage_ms.solve");
  counters_.total_ms = m.counter("engine.session_ms_total");
  counters_.chirps = m.counter("engine.chirps_detected_total");
  pool_.install_metrics(m, "engine.pool");
}

std::shared_ptr<const core::PipelineContext> BatchEngine::context_for(
    WorkspacePool::WorkerState& state, const sim::Session& session) {
  // Steady state (same configuration as the state's last session)
  // revalidates the memo with `matches` and never touches the sharded
  // cache, so no cross-session lock is on this path.
  const double fs = session.audio.sample_rate;
  std::shared_ptr<const core::PipelineContext> context = state.last_context;
  if (context == nullptr ||
      !context->matches(config_.asp, session.prior.chirp, fs)) {
    context = contexts_.acquire(config_, session.prior.chirp, fs);
    state.last_context = context;
  }
  return context;
}

SessionReport BatchEngine::run_one(const sim::Session& session,
                                   std::uint64_t session_id) {
  SessionReport report;
  const Clock::time_point t0 = Clock::now();
  try {
    // Exclusive worker state for this session: a warm workspace plus the
    // memoized plan pointer (see context_for).
    WorkspacePool::Lease lease = workspaces_.checkout();
    ++lease->sessions_served;
    std::shared_ptr<const core::PipelineContext> context =
        context_for(*lease, session);
    const obs::ObsContext obs{registry_.get(), tracer_.get(), session_id};
    // Pathological sessions (plans cannot be built) take the context-free
    // spelling, which rebuilds and fails INSIDE the ASP stage so the error
    // is classified against the stage that owns it.
    Expected<core::LocalizationResult, core::PipelineError> outcome =
        context != nullptr
            ? core::try_localize(session, config_, *context, lease->workspace,
                                 &report.metrics, &obs)
            : core::try_localize(session, config_, &report.metrics, &obs);
    if (outcome.has_value()) {
      report.result = *std::move(outcome);
      report.status =
          report.result.valid ? SessionStatus::ok : SessionStatus::no_solution;
    } else {
      report.status = SessionStatus::error;
      report.error = std::move(outcome).error();
    }
  } catch (const std::exception& e) {
    // try_localize already maps stage failures; this guards the remaining
    // surface (bad_alloc, metric copies) so no exception reaches the pool.
    report.status = SessionStatus::error;
    report.error = core::error_from_exception(e, core::PipelineStage::aggregate);
  }
  report.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  record(report);
  return report;
}

SessionReport BatchEngine::run_one_streamed(const sim::Session& session,
                                            std::size_t chunk_samples,
                                            std::uint64_t session_id) {
  // Streaming push requires equal-length slices; a session whose channels
  // disagree is corrupt data the batch path classifies inside ASP, so
  // route it there and keep the error taxonomy identical across classes.
  if (session.audio.mic1.size() != session.audio.mic2.size() ||
      chunk_samples == 0) {
    return run_one(session, session_id);
  }
  SessionReport report;
  const Clock::time_point t0 = Clock::now();
  try {
    WorkspacePool::Lease lease = workspaces_.checkout();
    ++lease->sessions_served;
    std::shared_ptr<const core::PipelineContext> context =
        context_for(*lease, session);
    const obs::ObsContext obs{registry_.get(), tracer_.get(), session_id};
    // The meta copy carries everything except the samples — those arrive
    // through push() in chunk_samples-sample slices, exactly as a live
    // phone would deliver them.
    sim::Session meta;
    meta.imu = session.imu;
    meta.truth = session.truth;
    meta.prior = session.prior;
    meta.config = session.config;
    meta.audio.sample_rate = session.audio.sample_rate;
    core::StreamingSession stream(std::move(meta), config_, std::move(context),
                                  &lease->workspace);
    const std::span<const double> mic1(session.audio.mic1);
    const std::span<const double> mic2(session.audio.mic2);
    for (std::size_t i = 0; i < mic1.size(); i += chunk_samples) {
      const std::size_t n = std::min(chunk_samples, mic1.size() - i);
      stream.push(mic1.subspan(i, n), mic2.subspan(i, n));
    }
    Expected<core::LocalizationResult, core::PipelineError> outcome =
        stream.finalize(&report.metrics, &obs);
    if (outcome.has_value()) {
      report.result = *std::move(outcome);
      report.status =
          report.result.valid ? SessionStatus::ok : SessionStatus::no_solution;
    } else {
      report.status = SessionStatus::error;
      report.error = std::move(outcome).error();
    }
  } catch (const std::exception& e) {
    report.status = SessionStatus::error;
    report.error = core::error_from_exception(e, core::PipelineStage::aggregate);
  }
  report.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  record(report);
  return report;
}

void BatchEngine::record(const SessionReport& report) {
  // Registry-backed aggregation: sharded relaxed-atomic adds, no engine
  // mutex on the completion path (the old EngineStats struct serialized
  // every worker here).
  counters_.completed.inc();
  switch (report.status) {
    case SessionStatus::ok: counters_.ok.inc(); break;
    case SessionStatus::no_solution: counters_.no_solution.inc(); break;
    case SessionStatus::error: {
      counters_.errors.inc();
      const auto index = static_cast<std::size_t>(report.error.category);
      if (index < counters_.by_category.size()) counters_.by_category[index].inc();
      break;
    }
  }
  counters_.asp_ms.inc(report.metrics.asp_ms);
  counters_.msp_ms.inc(report.metrics.msp_ms);
  counters_.solve_ms.inc(report.metrics.solve_ms);
  counters_.total_ms.inc(report.wall_ms);
  counters_.chirps.inc(
      static_cast<double>(report.metrics.chirps_mic1 + report.metrics.chirps_mic2));
}

std::future<SessionReport> BatchEngine::enqueue(
    std::shared_ptr<const sim::Session> session) {
  // Engine state machine: submit after shutdown() is a caller bug. Checked
  // builds fail the contract here, before the submitted counter moves; the
  // release path reaches pool_.post below, which revalidates under the pool
  // lock and throws PreconditionError without a counter drift (the
  // rollback in the catch block).
  HE_EXPECTS(!pool_.stopped());
  const std::uint64_t session_id =
      next_session_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto task = std::make_shared<std::packaged_task<SessionReport()>>(
      [this, session = std::move(session), session_id] {
        return run_one(*session, session_id);
      });
  std::future<SessionReport> future = task->get_future();
  // Count before posting so `submitted >= completed` always holds for
  // observers; a refused post is recorded on the rejected counter and
  // subtracted in the stats() view (registry counters are monotonic — no
  // takebacks).
  counters_.submitted.inc();
  try {
    pool_.post([task] { (*task)(); });
  } catch (...) {
    counters_.rejected.inc();
    throw;
  }
  return future;
}

bool BatchEngine::post_refusable(std::function<void()> task) {
  // Same submitted-then-rejected discipline as enqueue (see there), but a
  // refused post is an answer, not an exception: the serving layer shares
  // fate with its shards and must observe a dying one as a value.
  counters_.submitted.inc();
  try {
    pool_.post(std::move(task));
  } catch (const PreconditionError&) {
    counters_.rejected.inc();
    return false;
  } catch (...) {
    counters_.rejected.inc();
    throw;
  }
  return true;
}

bool BatchEngine::try_submit(std::shared_ptr<const sim::Session> session,
                             std::function<void(SessionReport&&)> done,
                             std::uint64_t session_id) {
  HE_EXPECTS(session != nullptr && done != nullptr);
  const std::uint64_t id =
      session_id != 0
          ? session_id
          : next_session_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  return post_refusable(
      [this, session = std::move(session), done = std::move(done), id] {
        done(run_one(*session, id));
      });
}

bool BatchEngine::try_submit_streamed(std::shared_ptr<const sim::Session> session,
                                      std::size_t chunk_samples,
                                      std::function<void(SessionReport&&)> done,
                                      std::uint64_t session_id) {
  HE_EXPECTS(session != nullptr && done != nullptr);
  const std::uint64_t id =
      session_id != 0
          ? session_id
          : next_session_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  return post_refusable([this, session = std::move(session),
                         done = std::move(done), chunk_samples, id] {
    done(run_one_streamed(*session, chunk_samples, id));
  });
}

std::future<SessionReport> BatchEngine::submit(const sim::Session& session) {
  // Copy into shared ownership: the caller's lvalue may die before a
  // worker picks the task up (a `&session` capture here once dangled).
  return enqueue(std::make_shared<const sim::Session>(session));
}

std::future<SessionReport> BatchEngine::submit(sim::Session&& session) {
  return enqueue(std::make_shared<const sim::Session>(std::move(session)));
}

std::vector<SessionReport> BatchEngine::localize_all(
    std::span<const sim::Session> sessions) {
  // No futures here: each task writes its report straight into the result
  // vector's slot and bumps a completion counter. The future path costs a
  // promise/shared-state allocation plus a report move per session; this
  // path allocates exactly once (the vector) no matter the batch size, and
  // input order holds trivially because slot i belongs to session i.
  // Sessions are read in place too — the span outlives the call because
  // the waits below cover every posted task.
  std::vector<SessionReport> reports(sessions.size());
  if (sessions.empty()) return reports;
  HE_EXPECTS(!pool_.stopped());
  // Frame-local join state: a leaf outside the lock hierarchy (no
  // HE_LOCK_LEVEL — nothing else is ever acquired under it).
  he::Mutex done_mutex;
  he::CondVar done_cv;
  std::size_t done = 0;
  std::size_t posted = 0;
  const auto wait_for_posted = [&] {
    he::MutexLock lock(done_mutex);
    while (done != posted) done_cv.wait(lock);
  };
  try {
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      const std::uint64_t session_id =
          next_session_id_.fetch_add(1, std::memory_order_relaxed) + 1;
      // Same submitted-then-rejected discipline as enqueue (see there).
      counters_.submitted.inc();
      try {
        pool_.post([this, sessions, &reports, &done_mutex, &done_cv, &done, i,
                    session_id] {
          reports[i] = run_one(sessions[i], session_id);
          // Notify under the lock: the waiter destroys the condvar as soon
          // as it observes done == posted, so signalling after unlock would
          // race that destruction.
          const he::MutexLock lock(done_mutex);
          ++done;
          done_cv.notify_one();
        });
      } catch (...) {
        counters_.rejected.inc();
        throw;
      }
      ++posted;
    }
  } catch (...) {
    // A mid-batch shutdown refused the post. Tasks already queued still
    // reference `reports` and the counters on this frame — drain them
    // before the exception unwinds the frame out from under them.
    wait_for_posted();
    throw;
  }
  wait_for_posted();
  return reports;
}

void BatchEngine::shutdown() { pool_.stop(); }

EngineStats BatchEngine::stats() const {
  EngineStats s;
  // Read rejected BEFORE submitted. A failing submit increments submitted
  // first and rejected second, so sampling submitted first can observe a
  // rejected tick whose submitted tick the earlier read missed — the
  // difference then transiently under-counts (and, right at startup, would
  // wrap negative through the size_t cast). Reading rejected first makes
  // every rejected tick we see carry its submitted tick in the later read,
  // so the difference never goes negative; the clamp is belt-and-braces.
  const double rejected = counters_.rejected.value();
  const double submitted = counters_.submitted.value();
  s.submitted = as_count(submitted > rejected ? submitted - rejected : 0.0);
  s.completed = as_count(counters_.completed.value());
  s.ok = as_count(counters_.ok.value());
  s.no_solution = as_count(counters_.no_solution.value());
  s.errors = as_count(counters_.errors.value());
  for (std::size_t i = 0; i < core::kErrorCategoryCount; ++i) {
    s.errors_by_category[i] = as_count(counters_.by_category[i].value());
  }
  s.asp_ms = counters_.asp_ms.value();
  s.msp_ms = counters_.msp_ms.value();
  s.solve_ms = counters_.solve_ms.value();
  s.total_ms = counters_.total_ms.value();
  s.chirps_detected = as_count(counters_.chirps.value());
  return s;
}

}  // namespace hyperear::runtime
