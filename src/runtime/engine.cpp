#include "runtime/engine.hpp"

#include <chrono>

#include "common/error.hpp"

namespace hyperear::runtime {

namespace {

using Clock = std::chrono::steady_clock;

std::size_t default_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// core::PairExecutor over the engine's own ThreadPool. The first closure
/// is posted as a pool task and the second runs on the calling thread, so a
/// pair costs at most one extra in-flight task and the machine is never
/// oversubscribed (channel tasks and session tasks share the same fixed
/// worker set). While the posted half is pending, the caller help-drains
/// the queue (ThreadPool::try_run_one) instead of blocking — necessary for
/// correctness, not just throughput: every worker could simultaneously be a
/// session waiting on a posted channel task, and with no thread left to run
/// them the engine would deadlock. Help-draining means a waiter IS a
/// worker, so the queue always makes progress.
class PoolPairExecutor final : public core::PairExecutor {
 public:
  explicit PoolPairExecutor(ThreadPool& pool) : pool_(&pool) {}

  void run_pair(const std::function<void()>& a,
                const std::function<void()>& b) const override {
    auto posted = std::make_shared<std::packaged_task<void()>>(a);
    std::future<void> done = posted->get_future();
    try {
      pool_->post([posted] { (*posted)(); });
    } catch (...) {
      // The pool is shutting down and refused the task (it never ran):
      // degrade to the serial order.
      a();
      b();
      return;
    }
    std::exception_ptr b_error;
    try {
      b();
    } catch (...) {
      b_error = std::current_exception();
    }
    // Even when b failed, a() still references live caller state — wait for
    // it either way, lending this thread to the queue in the meantime.
    while (done.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      if (!pool_->try_run_one()) {
        done.wait_for(std::chrono::milliseconds(1));
      }
    }
    if (b_error) std::rethrow_exception(b_error);
    done.get();  // propagates a's exception, if any
  }

 private:
  ThreadPool* pool_;
};

}  // namespace

const char* to_string(SessionStatus status) {
  switch (status) {
    case SessionStatus::ok: return "ok";
    case SessionStatus::no_solution: return "no_solution";
    case SessionStatus::error: return "error";
  }
  return "error";
}

BatchEngine::BatchEngine(core::PipelineConfig config, std::size_t threads)
    : config_(std::move(config)), pool_(default_threads(threads)) {
  if (std::optional<core::PipelineError> bad = config_.validate()) {
    throw PreconditionError("BatchEngine: " + describe(*bad));
  }
  channel_executor_ = std::make_unique<PoolPairExecutor>(pool_);
}

SessionReport BatchEngine::run_one(const sim::Session& session) {
  SessionReport report;
  const Clock::time_point t0 = Clock::now();
  try {
    const std::shared_ptr<const core::PipelineContext> context = context_for(session);
    Expected<core::LocalizationResult, core::PipelineError> outcome =
        core::try_localize(session, config_, &report.metrics, context.get(),
                           channel_executor_.get());
    if (outcome.has_value()) {
      report.result = *std::move(outcome);
      report.status =
          report.result.valid ? SessionStatus::ok : SessionStatus::no_solution;
    } else {
      report.status = SessionStatus::error;
      report.error = std::move(outcome).error();
    }
  } catch (const std::exception& e) {
    // try_localize already maps stage failures; this guards the remaining
    // surface (bad_alloc, metric copies) so no exception reaches the pool.
    report.status = SessionStatus::error;
    report.error = core::error_from_exception(e, core::PipelineStage::aggregate);
  }
  report.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  record(report);
  return report;
}

void BatchEngine::record(const SessionReport& report) {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.completed;
  switch (report.status) {
    case SessionStatus::ok: ++stats_.ok; break;
    case SessionStatus::no_solution: ++stats_.no_solution; break;
    case SessionStatus::error:
      ++stats_.errors;
      ++stats_.errors_by_category[static_cast<std::size_t>(report.error.category)];
      break;
  }
  stats_.asp_ms += report.metrics.asp_ms;
  stats_.msp_ms += report.metrics.msp_ms;
  stats_.solve_ms += report.metrics.solve_ms;
  stats_.total_ms += report.wall_ms;
  stats_.chirps_detected += report.metrics.chirps_mic1 + report.metrics.chirps_mic2;
}

std::shared_ptr<const core::PipelineContext> BatchEngine::context_for(
    const sim::Session& session) {
  // A bounded cache: virtually every batch uses one (chirp, sample-rate)
  // combination, so this is one allocation for the engine's lifetime. The
  // lock covers construction too — the first session of a combination
  // builds the plans while any lookalikes wait, instead of racing to build
  // duplicates.
  constexpr std::size_t kMaxContexts = 16;
  const double fs = session.audio.sample_rate;
  const std::lock_guard<std::mutex> lock(context_mutex_);
  for (const auto& c : contexts_) {
    if (c->matches(config_.asp, session.prior.chirp, fs)) return c;
  }
  try {
    auto fresh =
        std::make_shared<const core::PipelineContext>(config_, session.prior.chirp, fs);
    if (contexts_.size() < kMaxContexts) contexts_.push_back(fresh);
    return fresh;
  } catch (const std::exception&) {
    // Pathological session (e.g. absurd sample rate): let try_localize
    // rebuild and fail inside the ASP stage so the error is classified
    // against the stage that owns it, exactly as the context-free path.
    return nullptr;
  }
}

std::future<SessionReport> BatchEngine::enqueue(
    std::shared_ptr<const sim::Session> session) {
  auto task = std::make_shared<std::packaged_task<SessionReport()>>(
      [this, session = std::move(session)] { return run_one(*session); });
  std::future<SessionReport> future = task->get_future();
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submitted;
  }
  try {
    pool_.post([task] { (*task)(); });
  } catch (...) {
    // The pool refused (shutdown): the session will never run, so it was
    // never submitted as far as the stats are concerned.
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    --stats_.submitted;
    throw;
  }
  return future;
}

std::future<SessionReport> BatchEngine::submit(const sim::Session& session) {
  // Copy into shared ownership: the caller's lvalue may die before a
  // worker picks the task up (a `&session` capture here once dangled).
  return enqueue(std::make_shared<const sim::Session>(session));
}

std::future<SessionReport> BatchEngine::submit(sim::Session&& session) {
  return enqueue(std::make_shared<const sim::Session>(std::move(session)));
}

std::vector<SessionReport> BatchEngine::localize_all(
    std::span<const sim::Session> sessions) {
  std::vector<std::future<SessionReport>> futures;
  futures.reserve(sessions.size());
  for (const sim::Session& s : sessions) {
    // Non-owning alias: safe (and copy-free) because this function blocks
    // on every future below, so the span outlives all queued work.
    futures.push_back(enqueue(std::shared_ptr<const sim::Session>(
        std::shared_ptr<const sim::Session>(), &s)));
  }
  std::vector<SessionReport> reports;
  reports.reserve(futures.size());
  for (std::future<SessionReport>& f : futures) reports.push_back(f.get());
  return reports;
}

void BatchEngine::shutdown() { pool_.stop(); }

EngineStats BatchEngine::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace hyperear::runtime
