#include "runtime/streaming_engine.hpp"

#include <thread>
#include <utility>

#include "common/contracts.hpp"
#include "common/error.hpp"

namespace hyperear::runtime {

namespace {

std::size_t default_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Finalize-latency buckets (ms) — the streaming back half is the batch
/// pipeline minus the already-amortized filtering/detection, so the same
/// decade grid the stage histograms use fits.
constexpr double kFinalizeMsBounds[] = {1.0,  2.0,   5.0,   10.0,  20.0,
                                        50.0, 100.0, 200.0, 500.0, 1000.0};

}  // namespace

const char* to_string(PushStatus status) {
  switch (status) {
    case PushStatus::accepted: return "accepted";
    case PushStatus::overflow: return "overflow";
    case PushStatus::closed: return "closed";
    case PushStatus::unknown_session: return "unknown_session";
  }
  return "unknown_session";
}

StreamingEngine::StreamingEngine(core::PipelineConfig config,
                                 StreamingEngineOptions options, EngineObs obs)
    : config_(std::move(config)),
      options_(options),
      registry_(obs.registry != nullptr ? std::move(obs.registry)
                                        : std::make_shared<obs::MetricsRegistry>()),
      tracer_(std::move(obs.tracer)),
      pool_(default_threads(options.threads)) {
  if (std::optional<core::PipelineError> bad = config_.validate()) {
    throw PreconditionError("StreamingEngine: " + describe(*bad));
  }
  require(options_.max_sessions > 0, "StreamingEngine: max_sessions must be >= 1");
  require(options_.max_buffered_samples > 0,
          "StreamingEngine: max_buffered_samples must be >= 1");
  obs::MetricsRegistry& m = *registry_;
  counters_.opened = m.counter("streaming.sessions_opened_total");
  counters_.closed = m.counter("streaming.sessions_closed_total");
  counters_.evicted = m.counter("streaming.sessions_evicted_total");
  counters_.open_rejected = m.counter("streaming.open_rejected_total");
  counters_.push_accepted = m.counter("streaming.push_accepted_total");
  counters_.push_overflow = m.counter("streaming.push_overflow_total");
  counters_.samples = m.counter("streaming.samples_total");
  counters_.events = m.counter("streaming.events_total");
  counters_.open_gauge = m.gauge("streaming.open_sessions");
  counters_.buffered_gauge = m.gauge("streaming.buffered_samples");
  counters_.finalize_ms = m.histogram("streaming.finalize_ms", kFinalizeMsBounds);
  pool_.install_metrics(m, "streaming.pool");
}

StreamingEngine::~StreamingEngine() { shutdown(); }

std::uint64_t StreamingEngine::open(sim::Session meta) {
  require(!stopping_.load(std::memory_order_relaxed),
          "StreamingEngine: open after shutdown");
  const he::MutexLock lock(sessions_mutex_);
  if (sessions_.size() >= options_.max_sessions) {
    counters_.open_rejected.inc();
    return 0;
  }
  // Build the whole entry before publishing the id: a throwing
  // StreamingSession constructor (meta arrived with audio attached) must
  // leave no half-open session behind — the lease returns via RAII.
  auto entry = std::make_shared<Entry>();
  entry->id = ++next_id_;
  {
    // Uncontended by construction (the entry is unpublished until the
    // emplace below), but last_tick is a guarded field and the analysis
    // rightly has no notion of "not shared yet".
    const he::MutexLock entry_lock(entry->mutex);
    entry->last_tick = current_tick_.load(std::memory_order_relaxed);
  }
  entry->opened_at = obs::monotonic_now();
  entry->lease.emplace(workspaces_.checkout());
  WorkspacePool::WorkerState& state = **entry->lease;
  ++state.sessions_served;
  // Same memo-then-cache context lookup as the batch engine's run_one; a
  // null context (pathological configuration) is handed to the session,
  // which rebuilds locally and classifies the failure at finalize.
  const double fs = meta.audio.sample_rate;
  std::shared_ptr<const core::PipelineContext> context = state.last_context;
  if (context == nullptr || !context->matches(config_.asp, meta.prior.chirp, fs)) {
    context = contexts_.acquire(config_, meta.prior.chirp, fs);
    state.last_context = context;
  }
  entry->session.emplace(std::move(meta), config_, std::move(context),
                         &state.workspace);
  const std::uint64_t id = entry->id;
  sessions_.emplace(id, std::move(entry));
  counters_.opened.inc();
  counters_.open_gauge.set(static_cast<double>(sessions_.size()));
  return id;
}

std::shared_ptr<StreamingEngine::Entry> StreamingEngine::find(
    std::uint64_t id) const {
  const he::MutexLock lock(sessions_mutex_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

bool StreamingEngine::schedule_drain_locked(const std::shared_ptr<Entry>& entry) {
  if (entry->scheduled) return true;
  entry->scheduled = true;
  try {
    pool_.post([this, entry] { drain(entry); });
  } catch (const std::exception&) {
    entry->scheduled = false;
    return false;
  }
  return true;
}

PushStatus StreamingEngine::push(std::uint64_t id, std::span<const double> mic1,
                                 std::span<const double> mic2) {
  require(mic1.size() == mic2.size(),
          "StreamingEngine::push: channel length mismatch");
  if (stopping_.load(std::memory_order_relaxed)) return PushStatus::closed;
  const std::shared_ptr<Entry> entry = find(id);
  if (entry == nullptr) return PushStatus::unknown_session;
  const std::size_t added = mic1.size() + mic2.size();
  const he::MutexLock lock(entry->mutex);
  if (entry->evicted) return PushStatus::unknown_session;
  if (entry->closing) return PushStatus::closed;
  if (entry->buffered_samples + added > options_.max_buffered_samples) {
    counters_.push_overflow.inc();
    return PushStatus::overflow;
  }
  Buffered buf;
  if (!entry->freelist.empty()) {
    buf = std::move(entry->freelist.back());
    entry->freelist.pop_back();
  }
  buf.mic1.assign(mic1.begin(), mic1.end());
  buf.mic2.assign(mic2.begin(), mic2.end());
  entry->inbox.push_back(std::move(buf));
  entry->buffered_samples += added;
  entry->last_tick = current_tick_.load(std::memory_order_relaxed);
  counters_.push_accepted.inc();
  counters_.samples.inc(static_cast<double>(added));
  counters_.buffered_gauge.add(static_cast<double>(added));
  if (!schedule_drain_locked(entry)) return PushStatus::closed;
  return PushStatus::accepted;
}

std::future<SessionReport> StreamingEngine::finalize(std::uint64_t id) {
  const std::shared_ptr<Entry> entry = find(id);
  require(entry != nullptr, "StreamingEngine::finalize: unknown session");
  bool run_inline = false;
  std::future<SessionReport> future;
  {
    const he::MutexLock lock(entry->mutex);
    require(!entry->evicted, "StreamingEngine::finalize: unknown session");
    require(!entry->closing, "StreamingEngine::finalize: already finalizing");
    entry->closing = true;
    entry->last_tick = current_tick_.load(std::memory_order_relaxed);
    future = entry->promise.get_future();
    if (!schedule_drain_locked(entry)) {
      // Pool refused (shutdown racing this call). No drain task is running
      // (scheduled was false), so the caller thread owns the session and
      // can resolve the future itself instead of leaving it hanging.
      entry->scheduled = true;
      run_inline = true;
    }
  }
  if (run_inline) drain(entry);
  return future;
}

void StreamingEngine::drain(const std::shared_ptr<Entry>& entry) {
  // The strand: at most one drain task per session exists at a time
  // (`scheduled`), so everything below the inbox pop — the session, the
  // lease, the filters and detector state inside — is touched single-
  // threaded without holding any lock across the DSP work.
  for (;;) {
    Buffered buf;
    bool have_chunk = false;
    bool do_finalize = false;
    {
      const he::MutexLock lock(entry->mutex);
      if (entry->evicted) {
        // Evictor saw us running and left teardown to us.
        entry->session.reset();
        entry->lease.reset();
        entry->scheduled = false;
        return;
      }
      if (!entry->inbox.empty()) {
        buf = std::move(entry->inbox.front());
        entry->inbox.pop_front();
        const std::size_t popped = buf.mic1.size() + buf.mic2.size();
        entry->buffered_samples -= popped;
        counters_.buffered_gauge.add(-static_cast<double>(popped));
        have_chunk = true;
      } else if (entry->closing) {
        do_finalize = true;
      } else {
        entry->scheduled = false;
        return;
      }
    }
    if (do_finalize) {
      finish_entry(entry);
      return;
    }
    if (have_chunk) {
      if (entry->push_error == nullptr) {
        try {
          entry->session->push(buf.mic1, buf.mic2);
          const std::size_t seen = entry->session->events().size();
          counters_.events.inc(static_cast<double>(seen - entry->events_seen));
          entry->events_seen = seen;
        } catch (...) {
          // Remember the first failure; finish_entry reports it as the
          // session's error (the batch engine would have failed the same
          // session the same way, just all at once).
          entry->push_error = std::current_exception();
        }
      }
      const he::MutexLock lock(entry->mutex);
      buf.mic1.clear();
      buf.mic2.clear();
      entry->freelist.push_back(std::move(buf));
    }
  }
}

void StreamingEngine::finish_entry(const std::shared_ptr<Entry>& entry) {
  SessionReport report;
  const obs::MonotonicTime t0 = obs::monotonic_now();
  try {
    if (entry->push_error != nullptr) std::rethrow_exception(entry->push_error);
    const obs::ObsContext obs{registry_.get(), tracer_.get(), entry->id};
    Expected<core::LocalizationResult, core::PipelineError> outcome =
        entry->session->finalize(&report.metrics, &obs);
    if (outcome.has_value()) {
      report.result = *std::move(outcome);
      report.status =
          report.result.valid ? SessionStatus::ok : SessionStatus::no_solution;
    } else {
      report.status = SessionStatus::error;
      report.error = std::move(outcome).error();
    }
    counters_.events.inc(
        static_cast<double>(entry->session->events().size() - entry->events_seen));
  } catch (const std::exception& e) {
    report.status = SessionStatus::error;
    report.error = core::error_from_exception(e, core::PipelineStage::aggregate);
  } catch (...) {
    report.status = SessionStatus::error;
    report.error = core::PipelineError{core::ErrorCategory::internal,
                                       core::PipelineStage::aggregate,
                                       "unknown error"};
  }
  counters_.finalize_ms.observe(obs::ms_since(t0));
  // Wall time spans the session's life, open to fix — the streaming analog
  // of the batch report's end-to-end worker time.
  report.wall_ms = obs::ms_since(entry->opened_at);
  // Retire the session BEFORE resolving the future: a caller returning
  // from future.get() must observe the id gone and the lease returned.
  {
    const he::MutexLock lock(entry->mutex);
    entry->session.reset();
    entry->lease.reset();
    entry->scheduled = false;
  }
  {
    const he::MutexLock lock(sessions_mutex_);
    sessions_.erase(entry->id);
    counters_.open_gauge.set(static_cast<double>(sessions_.size()));
  }
  counters_.closed.inc();
  entry->promise.set_value(std::move(report));
}

void StreamingEngine::tick() {
  current_tick_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t StreamingEngine::evict_idle(std::uint64_t max_idle_ticks) {
  const std::uint64_t now = current_tick_.load(std::memory_order_relaxed);
  std::size_t evicted = 0;
  const he::MutexLock lock(sessions_mutex_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const std::shared_ptr<Entry>& entry = it->second;
    bool evict_this = false;
    {
      // streaming -> session nesting: the declared hierarchy direction.
      const he::MutexLock entry_lock(entry->mutex);
      const std::uint64_t idle = now - entry->last_tick;
      if (!entry->closing && !entry->evicted && idle > max_idle_ticks) {
        entry->evicted = true;
        // Pending audio dies with the session, whether or not a drain is
        // running — a running drain checks `evicted` before the inbox.
        counters_.buffered_gauge.add(-static_cast<double>(entry->buffered_samples));
        entry->inbox.clear();
        entry->freelist.clear();
        entry->buffered_samples = 0;
        if (!entry->scheduled) {
          // No drain in flight: this thread owns the session state.
          entry->session.reset();
          entry->lease.reset();
        }
        evict_this = true;
      }
    }
    if (evict_this) {
      it = sessions_.erase(it);
      ++evicted;
      counters_.evicted.inc();
    } else {
      ++it;
    }
  }
  counters_.open_gauge.set(static_cast<double>(sessions_.size()));
  return evicted;
}

void StreamingEngine::shutdown() {
  stopping_.store(true, std::memory_order_relaxed);
  pool_.stop();
}

std::size_t StreamingEngine::open_sessions() const {
  const he::MutexLock lock(sessions_mutex_);
  return sessions_.size();
}

}  // namespace hyperear::runtime
