#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/pipeline.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/engine.hpp"
#include "sim/scenario.hpp"

/// @file server.hpp
/// The serving layer: a bounded admission queue with per-class deadlines
/// over a sharded pool of BatchEngines. This is the first surface in the
/// repo where a request has a LIFECYCLE — submitted, queued, dispatched,
/// and resolved exactly once as completed / shed / expired / cancelled —
/// instead of a future that always resolves with a report.
///
/// Admission control is shed-by-value: when the in-flight cap and the
/// bounded queue are both full, submit() answers `Admission::shed`
/// immediately rather than queueing without bound (bounded queue depth is
/// what keeps p99 latency bounded past saturation — bench_load measures
/// exactly this). Per-class deadlines run on a LOGICAL tick clock
/// (`tick()`), not wall time, so deadline behavior is a deterministic
/// function of the request/tick stream; a queued request whose deadline
/// has passed is cancelled at dispatch time (`expired`), never handed to
/// an engine.
///
/// Sharding: requests land on `plan_key_hash(asp, chirp, sample_rate) %
/// shards`, so every request of one DSP-plan configuration hits the shard
/// whose workers have that plan hot in their memoized worker state —
/// shards trade load balance for cache affinity (DESIGN.md §13).
///
/// Telemetry: `server.*` counters (submitted/shed/expired/cancelled/
/// completed), queue-depth and in-flight gauges, per-shard load series
/// (`server.shard.<i>.queue_depth` / `.dispatched_total` — the numbers
/// that quantify plan-affinity skew), per-class latency histograms, and
/// a root `server.request` trace span per accepted request whose session
/// id is shared with the pipeline's stage spans.
///
/// Locking: `mutex_` is the single server lock, at the TOP (`server`)
/// level of the lock hierarchy (DESIGN.md §14) — pump_locked posts into
/// shard pools while holding it, so pool-level locks nest inside it,
/// never the reverse. Promises are resolved strictly OUTSIDE the lock.

namespace hyperear::runtime {

/// How a request wants its audio ingested. `batch` hands the engine the
/// whole recording; `streaming` replays it through core::StreamingSession
/// in fixed-size chunks (bit-identical result, different code path).
enum class RequestClass : std::uint8_t { batch = 0, streaming = 1 };
inline constexpr std::size_t kRequestClassCount = 2;

/// submit()'s immediate answer.
enum class Admission : std::uint8_t {
  accepted,  ///< queued (or dispatched); the response future will resolve
  shed,      ///< bounded queue full — dropped by value, no future
  closed,    ///< server shutting down — dropped by value, no future
};

/// How an accepted request's lifecycle ended.
enum class RequestOutcome : std::uint8_t {
  completed,  ///< an engine ran it; `report` is meaningful
  expired,    ///< deadline passed while queued; cancelled before dispatch
  cancelled,  ///< server shutdown drained it, or its shard refused it
};

[[nodiscard]] const char* to_string(RequestClass cls);
[[nodiscard]] const char* to_string(Admission admission);
[[nodiscard]] const char* to_string(RequestOutcome outcome);

/// Terminal value of one accepted request.
struct Response {
  RequestOutcome outcome = RequestOutcome::cancelled;
  RequestClass cls = RequestClass::batch;
  std::uint64_t id = 0;          ///< server-assigned request id (1-based)
  std::size_t shard = 0;         ///< shard it dispatched to (completed only)
  double latency_ms = 0.0;       ///< submit-to-resolution wall time
  SessionReport report;          ///< meaningful iff outcome == completed
};

/// Per-class admission policy. `deadline_ticks == 0` means no deadline.
/// A request submitted at tick T with deadline D is dispatchable through
/// tick T+D and expires at T+D+1.
struct ClassPolicy {
  std::uint64_t deadline_ticks = 0;
};

struct ServerOptions {
  std::size_t shards = 1;             ///< BatchEngines (>= 1)
  std::size_t threads_per_shard = 1;  ///< 0 = hardware_concurrency
  /// Dispatch concurrency cap across all shards: requests handed to
  /// engines but not yet resolved. The admission boundary.
  std::size_t max_in_flight = 4;
  /// Bounded wait queue; a submit that finds it full is shed. 0 is legal
  /// (admit only what can dispatch immediately).
  std::size_t max_queued = 16;
  ClassPolicy batch_policy;
  ClassPolicy streaming_policy;
  /// Slice size for streaming-class ingest (samples per channel).
  std::size_t streaming_chunk_samples = 4096;
  /// When true the server NEVER dispatches on its own — only explicit
  /// pump()/drain() calls move queued requests to engines. Admission and
  /// outcome then depend only on the submit/tick/pump sequence, not on
  /// completion timing: the spelling for determinism tests and replay.
  bool manual_dispatch = false;
};

/// submit()'s return: the admission verdict, the request id, and (iff
/// accepted) a future for the terminal Response.
struct SubmitResult {
  Admission admission = Admission::closed;
  std::uint64_t id = 0;
  std::future<Response> response;  ///< valid iff admission == accepted
};

/// Point-in-time request-lifecycle accounting. Totals and instantaneous
/// levels are read under one lock, so the conservation law holds exactly
/// on every snapshot:
///   submitted == completed + shed + expired + cancelled + queued + in_flight
struct ServerStats {
  std::size_t submitted = 0;  ///< all submits except `closed` ones
  std::size_t shed = 0;
  std::size_t expired = 0;
  std::size_t cancelled = 0;
  std::size_t completed = 0;
  std::size_t closed = 0;    ///< submits refused because of shutdown
  std::size_t queued = 0;    ///< instantaneous
  std::size_t in_flight = 0; ///< instantaneous
  std::size_t peak_queued = 0;
  std::size_t peak_in_flight = 0;
  std::array<std::size_t, kRequestClassCount> submitted_by_class{};
  std::array<std::size_t, kRequestClassCount> shed_by_class{};
  std::array<std::size_t, kRequestClassCount> expired_by_class{};
  std::array<std::size_t, kRequestClassCount> cancelled_by_class{};
  std::array<std::size_t, kRequestClassCount> completed_by_class{};
};

/// The serving layer. Thread-safe: submit/tick/pump/stats/shutdown may be
/// called from any number of threads; engine completions re-enter through
/// an internal callback. Every accepted request's future resolves exactly
/// once — shutdown cancels the queue and waits out the in-flight set, and
/// a shard that refuses a dispatch (it was shut down mid-flight) resolves
/// the request as `cancelled` instead of losing it.
class Server {
 public:
  /// Validates config and options (throws PreconditionError — a
  /// misconfigured server is a programming error) and builds the shard
  /// engines. All shards share one registry (supplied or private), so
  /// `engine.*` series aggregate across shards.
  explicit Server(core::PipelineConfig config = {}, ServerOptions options = {},
                  EngineObs obs = {});
  /// Implies shutdown().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admit-or-shed one request. Never blocks on engine work: the decision
  /// is made against the queue/in-flight levels under the server lock.
  [[nodiscard]] SubmitResult submit(sim::Session session,
                                    RequestClass cls = RequestClass::batch)
      HE_EXCLUDES(mutex_);

  /// Advance the logical deadline clock by one tick (and, in automatic
  /// mode, give queued requests a dispatch opportunity).
  void tick() HE_EXCLUDES(mutex_);
  [[nodiscard]] std::uint64_t current_tick() const;

  /// Move queued requests to engines while in-flight capacity allows,
  /// expiring past-deadline ones. Returns the number dispatched. No-op
  /// after shutdown began. Automatic mode calls this internally on every
  /// submit and completion; manual mode relies on explicit calls.
  std::size_t pump() HE_EXCLUDES(mutex_);

  /// Block until the queue is empty and nothing is in flight, pumping as
  /// needed (works in both dispatch modes). Returns early if shutdown
  /// begins concurrently.
  void drain() HE_EXCLUDES(mutex_);

  /// Stop admission, cancel everything still queued (their futures
  /// resolve with `cancelled`), wait for in-flight requests to resolve,
  /// then shut the shard engines down. Idempotent; safe concurrently.
  void shutdown() HE_EXCLUDES(mutex_);

  [[nodiscard]] ServerStats stats() const HE_EXCLUDES(mutex_);
  [[nodiscard]] obs::MetricsRegistry& metrics() const { return *registry_; }
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_.get(); }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Direct shard access (tests/chaos injection — e.g. shutting one down
  /// mid-flight).
  [[nodiscard]] BatchEngine& shard(std::size_t index) { return *shards_[index]; }
  /// Which shard a session's configuration maps to.
  [[nodiscard]] std::size_t shard_for(const sim::Session& session) const;
  [[nodiscard]] const core::PipelineConfig& config() const { return config_; }
  [[nodiscard]] const ServerOptions& options() const { return options_; }

 private:
  /// One admitted-but-undispatched request.
  struct PendingRequest {
    std::shared_ptr<const sim::Session> session;
    RequestClass cls = RequestClass::batch;
    std::uint64_t id = 0;
    std::uint64_t deadline_tick = 0;  ///< kNoDeadline when policy is 0
    /// Target shard, fixed at admission (shard_for is a pure function of
    /// the session) so the per-shard queue-depth gauges can move at
    /// enqueue time, not dispatch time.
    std::size_t shard = 0;
    obs::MonotonicTime submitted_at{};
    std::promise<Response> promise;
    obs::TraceSpan span;
  };

  /// One dispatched request, shared with the engine's completion callback
  /// (shared_ptr because std::function requires copyable captures and the
  /// promise is move-only).
  struct InFlight {
    RequestClass cls = RequestClass::batch;
    std::uint64_t id = 0;
    std::size_t shard = 0;
    obs::MonotonicTime submitted_at{};
    std::promise<Response> promise;
    obs::TraceSpan span;
  };

  /// A promise ready to resolve — built under the lock, resolved outside
  /// it (set_value runs arbitrary continuation-waker code; holding the
  /// server lock across it invites lock-order trouble).
  struct Resolution {
    std::promise<Response> promise;
    Response response;
    obs::TraceSpan span;
  };

  /// Registry handles for the `server.*` series backing stats().
  struct Counters {
    obs::Counter submitted;   ///< server.requests_submitted_total
    obs::Counter shed;        ///< server.requests_shed_total
    obs::Counter expired;     ///< server.requests_expired_total
    obs::Counter cancelled;   ///< server.requests_cancelled_total
    obs::Counter completed;   ///< server.requests_completed_total
    obs::Counter closed;      ///< server.submit_closed_total
    obs::Gauge queue_depth;   ///< server.queue_depth
    obs::Gauge in_flight;     ///< server.in_flight
    /// server.class.<cls>.{submitted,shed,completed}_total
    std::array<obs::Counter, kRequestClassCount> class_submitted;
    std::array<obs::Counter, kRequestClassCount> class_shed;
    std::array<obs::Counter, kRequestClassCount> class_completed;
    /// server.latency_ms.<cls> — completed requests only
    std::array<obs::Histogram, kRequestClassCount> latency_ms;
    /// Per-shard load series quantifying plan-affinity skew:
    /// server.shard.<i>.queue_depth — admitted-not-yet-dispatched requests
    /// bound for shard i (moves under mutex_, like server.queue_depth);
    /// server.shard.<i>.dispatched_total — requests handed to shard i's
    /// engine (expired/cancelled requests never count).
    std::vector<obs::Gauge> shard_queue_depth;
    std::vector<obs::Counter> shard_dispatched;
  };

  [[nodiscard]] const ClassPolicy& policy(RequestClass cls) const;
  /// Dispatch loop; requires mutex_ held. Appends expired/refused
  /// requests to `resolved` for resolution after unlock.
  std::size_t pump_locked(std::vector<Resolution>& resolved)
      HE_REQUIRES(mutex_);
  /// Engine completion re-entry (runs on a shard worker thread).
  void complete(const std::shared_ptr<InFlight>& rec, SessionReport&& report)
      HE_EXCLUDES(mutex_);
  static void resolve(std::vector<Resolution>& resolutions);
  [[nodiscard]] static Resolution resolution_for(PendingRequest&& req,
                                                 RequestOutcome outcome);

  const core::PipelineConfig config_;
  const ServerOptions options_;
  std::shared_ptr<obs::MetricsRegistry> registry_;
  std::shared_ptr<obs::Tracer> tracer_;
  Counters counters_;
  std::vector<std::unique_ptr<BatchEngine>> shards_;

  std::atomic<std::uint64_t> tick_{0};
  mutable he::Mutex mutex_ HE_LOCK_LEVEL(server);
  /// Signalled when in_flight_ reaches zero (drain/shutdown wait on it).
  he::CondVar idle_cv_;
  std::deque<PendingRequest> pending_ HE_GUARDED_BY(mutex_);
  std::size_t in_flight_ HE_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_request_id_ HE_GUARDED_BY(mutex_) = 0;
  bool stopping_ HE_GUARDED_BY(mutex_) = false;
  /// Exact lifecycle accounting, guarded by mutex_ (the registry counters
  /// mirror these for scraping but are sampled without the lock).
  ServerStats stats_ HE_GUARDED_BY(mutex_);
};

}  // namespace hyperear::runtime
