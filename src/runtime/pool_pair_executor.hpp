#pragma once

#include <chrono>
#include <functional>
#include <future>
#include <memory>

#include "core/parallel.hpp"
#include "runtime/thread_pool.hpp"

/// @file pool_pair_executor.hpp
/// core::PairExecutor over a runtime::ThreadPool. The first closure is
/// posted as a pool task and the second runs on the calling thread, so a
/// pair costs at most one extra in-flight task and the machine is never
/// oversubscribed (channel tasks and session tasks share the same fixed
/// worker set). While the posted half is pending, the caller help-drains
/// the queue (ThreadPool::try_run_one) instead of blocking — necessary for
/// correctness, not just throughput: every worker could simultaneously be a
/// session waiting on a posted channel task, and with no thread left to run
/// them the engine would deadlock. Help-draining means a waiter IS a
/// worker, so the queue always makes progress.
///
/// Public (rather than an engine implementation detail) so the stress
/// suite (tests/test_stress_pool.cpp, label "stress") can drive nested
/// fan-out and drain-on-stop races against it under tsan directly.
///
/// Lock-free by design: the executor owns no mutex (futures carry the
/// completion edge; try_run_one takes the pool lock internally), so under
/// the thread-safety analysis (DESIGN.md §14) run_pair is an ordinary
/// unannotated function — it must NOT be called while holding any lock at
/// or below the `pool` level, which holds structurally because every
/// caller sits on a worker thread outside the engine's locked regions.

namespace hyperear::runtime {

class PoolPairExecutor final : public core::PairExecutor {
 public:
  /// The pool must outlive the executor.
  explicit PoolPairExecutor(ThreadPool& pool) : pool_(&pool) {}

  void run_pair(const std::function<void()>& a,
                const std::function<void()>& b) const override {
    auto posted = std::make_shared<std::packaged_task<void()>>(a);
    std::future<void> done = posted->get_future();
    try {
      pool_->post([posted] { (*posted)(); });
    } catch (...) {
      // The pool is shutting down and refused the task (it never ran):
      // degrade to the serial order.
      a();
      b();
      return;
    }
    std::exception_ptr b_error;
    try {
      b();
    } catch (...) {
      b_error = std::current_exception();
    }
    // Even when b failed, a() still references live caller state — wait for
    // it either way, lending this thread to the queue in the meantime.
    while (done.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      if (!pool_->try_run_one()) {
        done.wait_for(std::chrono::milliseconds(1));
      }
    }
    if (b_error) std::rethrow_exception(b_error);
    done.get();  // propagates a's exception, if any
  }

 private:
  ThreadPool* pool_;
};

}  // namespace hyperear::runtime
