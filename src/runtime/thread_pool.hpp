#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// @file thread_pool.hpp
/// A fixed-size worker pool with a single FIFO task queue — the execution
/// substrate of the batch-localization engine. Tasks must not throw (the
/// engine wraps every session in a catch-all and reports failures as
/// values); a task that does throw terminates the process, by design, so
/// bugs surface instead of vanishing on a worker thread.

namespace hyperear::runtime {

class ThreadPool {
 public:
  /// Spin up `threads` workers (>= 1; pass hardware_concurrency yourself if
  /// you want "all cores" — the pool does not guess).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue: blocks until every posted task has run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution on some worker, FIFO order. Throws
  /// PreconditionError once the pool is stopping; the task is NOT enqueued
  /// in that case.
  void post(std::function<void()> task);

  /// Stop accepting new tasks. Already-queued tasks still run to
  /// completion (workers drain the queue, then exit); `post` after this
  /// throws. Idempotent; does not block — the destructor joins.
  void stop();

  /// Pop one queued task (if any) and run it on the CALLING thread.
  /// Returns false immediately when the queue is empty. This is the
  /// help-drain primitive for callers that posted work and are waiting for
  /// it: instead of blocking while every worker is busy, the waiter runs
  /// queued tasks itself, which keeps nested fan-out (sessions posting
  /// per-channel tasks onto the same pool) deadlock-free.
  bool try_run_one();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hyperear::runtime
