#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

/// @file thread_pool.hpp
/// A fixed-size worker pool with a single FIFO task queue — the execution
/// substrate of the batch-localization engine. Tasks must not throw (the
/// engine wraps every session in a catch-all and reports failures as
/// values); a task that does throw terminates the process, by design, so
/// bugs surface instead of vanishing on a worker thread.

namespace hyperear::runtime {

class ThreadPool {
 public:
  /// Spin up `threads` workers (>= 1; pass hardware_concurrency yourself if
  /// you want "all cores" — the pool does not guess).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue: blocks until every posted task has run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Install pool telemetry on `registry` under `<prefix>.`: queue_depth
  /// (gauge: tasks posted but not yet started), task_wait_ms (histogram:
  /// post-to-start queueing latency), and tasks_run_total (counter). Call
  /// before the first post — installation is not synchronized against
  /// concurrent posting. The registry must outlive the pool. Without this
  /// call the handles stay null and posting skips the clock read entirely.
  void install_metrics(obs::MetricsRegistry& registry,
                       std::string_view prefix = "pool");

  /// Enqueue a task for execution on some worker, FIFO order. Throws
  /// PreconditionError once the pool is stopping; the task is NOT enqueued
  /// in that case.
  void post(std::function<void()> task);

  /// Stop accepting new tasks. Already-queued tasks still run to
  /// completion (workers drain the queue, then exit); `post` after this
  /// throws. Idempotent; does not block — the destructor joins.
  void stop();

  /// Pop one queued task (if any) and run it on the CALLING thread.
  /// Returns false immediately when the queue is empty. This is the
  /// help-drain primitive for callers that posted work and are waiting for
  /// it: instead of blocking while every worker is busy, the waiter runs
  /// queued tasks itself, which keeps nested fan-out (sessions posting
  /// per-channel tasks onto the same pool) deadlock-free. Safe from any
  /// number of threads concurrently with posts — the queue-depth gauge is
  /// updated under the queue lock on both sides, so it never dips below
  /// zero even when a help-drainer races the poster.
  bool try_run_one();

  /// True once stop() has been called. Advisory for contract checks: a
  /// false answer can be stale by the time the caller acts on it, so post()
  /// still revalidates under the lock.
  [[nodiscard]] bool stopped() const;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  struct QueuedTask {
    std::function<void()> fn;
    /// Post timestamp for the wait-time histogram; only stamped (and only
    /// read) when metrics are installed.
    std::chrono::steady_clock::time_point posted{};
  };

  void worker_loop();
  /// Dequeue bookkeeping shared by worker_loop and try_run_one; called
  /// with `mutex_` held, right after popping `task` off the queue.
  void note_dequeued(const QueuedTask& task);

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<QueuedTask> queue_;
  bool stopping_ = false;
  /// Release-published by install_metrics after the handles are written;
  /// acquire-read on the hot paths so the handle writes are visible.
  std::atomic<bool> metrics_installed_{false};
  obs::Gauge queue_depth_;
  obs::Histogram task_wait_ms_;
  obs::Counter tasks_run_;
  std::vector<std::thread> workers_;
};

}  // namespace hyperear::runtime
