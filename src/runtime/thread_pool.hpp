#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <string_view>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"

/// @file thread_pool.hpp
/// A fixed-size worker pool with a single FIFO task queue — the execution
/// substrate of the batch-localization engine. Tasks must not throw (the
/// engine wraps every session in a catch-all and reports failures as
/// values); a task that does throw terminates the process, by design, so
/// bugs surface instead of vanishing on a worker thread. The queue lock
/// sits at the `pool` level of the lock hierarchy (DESIGN.md §14): tasks
/// are posted while holding server/session locks above it, and the only
/// thing touched under it is leaf telemetry.

namespace hyperear::runtime {

class ThreadPool {
 public:
  /// Spin up `threads` workers (>= 1; pass hardware_concurrency yourself if
  /// you want "all cores" — the pool does not guess).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue: blocks until every posted task has run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Install pool telemetry on `registry` under `<prefix>.`: queue_depth
  /// (gauge: tasks posted but not yet started), task_wait_ms (histogram:
  /// post-to-start queueing latency), and tasks_run_total (counter). Call
  /// before the first post — installation is not synchronized against
  /// concurrent posting. The registry must outlive the pool. Without this
  /// call the handles stay null and posting skips the clock read entirely.
  void install_metrics(obs::MetricsRegistry& registry,
                       std::string_view prefix = "pool");

  /// Enqueue a task for execution on some worker, FIFO order. Throws
  /// PreconditionError once the pool is stopping; the task is NOT enqueued
  /// in that case.
  void post(std::function<void()> task) HE_EXCLUDES(mutex_);

  /// Stop accepting new tasks. Already-queued tasks still run to
  /// completion (workers drain the queue, then exit); `post` after this
  /// throws. Idempotent; does not block — the destructor joins.
  void stop() HE_EXCLUDES(mutex_);

  /// Pop one queued task (if any) and run it on the CALLING thread.
  /// Returns false immediately when the queue is empty. This is the
  /// help-drain primitive for callers that posted work and are waiting for
  /// it: instead of blocking while every worker is busy, the waiter runs
  /// queued tasks itself, which keeps nested fan-out (sessions posting
  /// per-channel tasks onto the same pool) deadlock-free. Safe from any
  /// number of threads concurrently with posts — the queue-depth gauge is
  /// updated under the queue lock on both sides, so it never dips below
  /// zero even when a help-drainer races the poster.
  bool try_run_one() HE_EXCLUDES(mutex_);

  /// True once stop() has been called. Advisory for contract checks: a
  /// false answer can be stale by the time the caller acts on it, so post()
  /// still revalidates under the lock.
  [[nodiscard]] bool stopped() const HE_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  struct QueuedTask {
    std::function<void()> fn;
    /// Post timestamp for the wait-time histogram; only stamped (and only
    /// read) when metrics are installed.
    std::chrono::steady_clock::time_point posted{};
  };

  void worker_loop() HE_EXCLUDES(mutex_);
  /// Dequeue bookkeeping shared by worker_loop and try_run_one; called
  /// with `mutex_` held, right after popping `task` off the queue.
  void note_dequeued(const QueuedTask& task) HE_REQUIRES(mutex_);

  mutable he::Mutex mutex_ HE_LOCK_LEVEL(pool);
  he::CondVar wake_;
  std::deque<QueuedTask> queue_ HE_GUARDED_BY(mutex_);
  bool stopping_ HE_GUARDED_BY(mutex_) = false;
  /// Release-published by install_metrics after the handles are written;
  /// acquire-read on the hot paths so the handle writes are visible.
  std::atomic<bool> metrics_installed_{false};
  obs::Gauge queue_depth_;
  obs::Histogram task_wait_ms_;
  obs::Counter tasks_run_;
  std::vector<std::thread> workers_;
};

}  // namespace hyperear::runtime
