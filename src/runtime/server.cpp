#include "runtime/server.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "common/contracts.hpp"
#include "common/error.hpp"
#include "core/pipeline_context.hpp"

namespace hyperear::runtime {

namespace {

constexpr std::uint64_t kNoDeadline = std::numeric_limits<std::uint64_t>::max();

/// Request latency buckets (ms): interactive sub-10ms through saturated
/// multi-second queueing.
constexpr double kLatencyMsBounds[] = {1.0,   5.0,    10.0,   25.0,  50.0,
                                       100.0, 250.0,  500.0,  1000.0,
                                       2500.0, 5000.0, 10000.0};

constexpr std::size_t class_index(RequestClass cls) {
  return static_cast<std::size_t>(cls);
}

}  // namespace

const char* to_string(RequestClass cls) {
  switch (cls) {
    case RequestClass::batch: return "batch";
    case RequestClass::streaming: return "streaming";
  }
  return "batch";
}

const char* to_string(Admission admission) {
  switch (admission) {
    case Admission::accepted: return "accepted";
    case Admission::shed: return "shed";
    case Admission::closed: return "closed";
  }
  return "closed";
}

const char* to_string(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::completed: return "completed";
    case RequestOutcome::expired: return "expired";
    case RequestOutcome::cancelled: return "cancelled";
  }
  return "cancelled";
}

Server::Server(core::PipelineConfig config, ServerOptions options, EngineObs obs)
    : config_(std::move(config)),
      options_(options),
      registry_(obs.registry != nullptr
                    ? std::move(obs.registry)
                    : std::make_shared<obs::MetricsRegistry>()),
      tracer_(std::move(obs.tracer)) {
  require(options_.shards >= 1, "Server: needs at least one shard");
  require(options_.max_in_flight >= 1, "Server: max_in_flight must be >= 1");
  require(options_.streaming_chunk_samples >= 1,
          "Server: streaming_chunk_samples must be >= 1");
  // The shard engines validate too, but failing before any engine spins up
  // gives the caller one clean error instead of a half-built pool.
  if (std::optional<core::PipelineError> bad = config_.validate()) {
    throw PreconditionError("Server: " + describe(*bad));
  }
  obs::MetricsRegistry& m = *registry_;
  counters_.submitted = m.counter("server.requests_submitted_total");
  counters_.shed = m.counter("server.requests_shed_total");
  counters_.expired = m.counter("server.requests_expired_total");
  counters_.cancelled = m.counter("server.requests_cancelled_total");
  counters_.completed = m.counter("server.requests_completed_total");
  counters_.closed = m.counter("server.submit_closed_total");
  counters_.queue_depth = m.gauge("server.queue_depth");
  counters_.in_flight = m.gauge("server.in_flight");
  for (std::size_t i = 0; i < kRequestClassCount; ++i) {
    const std::string cls = to_string(static_cast<RequestClass>(i));
    counters_.class_submitted[i] =
        m.counter("server.class." + cls + ".submitted_total");
    counters_.class_shed[i] = m.counter("server.class." + cls + ".shed_total");
    counters_.class_completed[i] =
        m.counter("server.class." + cls + ".completed_total");
    counters_.latency_ms[i] =
        m.histogram("server.latency_ms." + cls, kLatencyMsBounds);
  }
  // NOLINTNEXTLINE(hyperear-hotpath) -- one-time construction of the shard pool
  shards_.reserve(options_.shards);
  // NOLINTNEXTLINE(hyperear-hotpath) -- one-time construction of per-shard telemetry handles
  counters_.shard_queue_depth.reserve(options_.shards);
  // NOLINTNEXTLINE(hyperear-hotpath) -- one-time construction of per-shard telemetry handles
  counters_.shard_dispatched.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<BatchEngine>(
        config_, options_.threads_per_shard, EngineObs{registry_, tracer_}));
    const std::string shard_prefix = "server.shard." + std::to_string(s);
    counters_.shard_queue_depth.push_back(m.gauge(shard_prefix + ".queue_depth"));
    counters_.shard_dispatched.push_back(
        m.counter(shard_prefix + ".dispatched_total"));
  }
}

Server::~Server() { shutdown(); }

const ClassPolicy& Server::policy(RequestClass cls) const {
  return cls == RequestClass::streaming ? options_.streaming_policy
                                        : options_.batch_policy;
}

std::size_t Server::shard_for(const sim::Session& session) const {
  const std::uint64_t hash = core::plan_key_hash(config_.asp, session.prior.chirp,
                                                 session.audio.sample_rate);
  return static_cast<std::size_t>(hash % shards_.size());
}

Server::Resolution Server::resolution_for(PendingRequest&& req,
                                          RequestOutcome outcome) {
  Resolution res;
  res.response.outcome = outcome;
  res.response.cls = req.cls;
  res.response.id = req.id;
  res.response.latency_ms = obs::ms_since(req.submitted_at);
  res.promise = std::move(req.promise);
  res.span = std::move(req.span);
  return res;
}

void Server::resolve(std::vector<Resolution>& resolutions) {
  for (Resolution& res : resolutions) {
    res.span.finish();
    res.promise.set_value(std::move(res.response));
  }
  resolutions.clear();
}

SubmitResult Server::submit(sim::Session session, RequestClass cls) {
  const std::size_t ci = class_index(cls);
  PendingRequest req;
  req.session = std::make_shared<const sim::Session>(std::move(session));
  req.cls = cls;
  req.shard = shard_for(*req.session);
  req.submitted_at = obs::monotonic_now();
  const std::uint64_t deadline = policy(cls).deadline_ticks;
  req.deadline_tick =
      deadline == 0 ? kNoDeadline
                    : tick_.load(std::memory_order_relaxed) + deadline;

  SubmitResult result;
  // NOLINTNEXTLINE(hyperear-hotpath) -- per-request control-plane staging (promise resolution outside the lock), not per-sample DSP
  std::vector<Resolution> resolved;
  {
    const he::MutexLock lock(mutex_);
    if (stopping_) {
      ++stats_.closed;
      counters_.closed.inc();
      result.admission = Admission::closed;
      return result;
    }
    result.id = ++next_request_id_;
    req.id = result.id;
    ++stats_.submitted;
    ++stats_.submitted_by_class[ci];
    counters_.submitted.inc();
    counters_.class_submitted[ci].inc();
    // Shed-by-value boundary: a request needs either a free dispatch slot
    // (automatic mode, queue empty — it would dispatch right now) or a
    // queue slot. In automatic mode a non-empty queue implies no slot is
    // free (pump_locked drains eagerly), so checking the queue bound alone
    // is exact; the slot_free clause keeps max_queued == 0 admitting work.
    const bool slot_free = !options_.manual_dispatch && pending_.empty() &&
                           in_flight_ < options_.max_in_flight;
    if (!slot_free && pending_.size() >= options_.max_queued) {
      ++stats_.shed;
      ++stats_.shed_by_class[ci];
      counters_.shed.inc();
      counters_.class_shed[ci].inc();
      result.admission = Admission::shed;
      return result;
    }
    if (tracer_ != nullptr) {
      req.span = obs::TraceSpan(tracer_.get(), "server.request", req.id);
    }
    result.response = req.promise.get_future();
    result.admission = Admission::accepted;
    counters_.shard_queue_depth[req.shard].add(1.0);
    pending_.push_back(std::move(req));
    counters_.queue_depth.add(1.0);
    stats_.peak_queued = std::max(stats_.peak_queued, pending_.size());
    if (!options_.manual_dispatch) pump_locked(resolved);
  }
  resolve(resolved);
  return result;
}

void Server::tick() {
  tick_.fetch_add(1, std::memory_order_relaxed);
  if (options_.manual_dispatch) return;
  (void)pump();
}

std::uint64_t Server::current_tick() const {
  return tick_.load(std::memory_order_relaxed);
}

std::size_t Server::pump_locked(std::vector<Resolution>& resolved) {
  std::size_t dispatched = 0;
  const std::uint64_t now = tick_.load(std::memory_order_relaxed);
  while (in_flight_ < options_.max_in_flight && !pending_.empty()) {
    PendingRequest req = std::move(pending_.front());
    pending_.pop_front();
    counters_.queue_depth.add(-1.0);
    counters_.shard_queue_depth[req.shard].add(-1.0);
    const std::size_t ci = class_index(req.cls);
    // Deadline check happens HERE, at the dispatch decision — an expired
    // request never reaches an engine, it resolves by value instead.
    if (req.deadline_tick < now) {
      ++stats_.expired;
      ++stats_.expired_by_class[ci];
      counters_.expired.inc();
      resolved.push_back(resolution_for(std::move(req), RequestOutcome::expired));
      continue;
    }
    auto rec = std::make_shared<InFlight>();
    rec->cls = req.cls;
    rec->id = req.id;
    rec->shard = req.shard;
    rec->submitted_at = req.submitted_at;
    rec->promise = std::move(req.promise);
    rec->span = std::move(req.span);
    ++in_flight_;
    counters_.in_flight.add(1.0);
    stats_.peak_in_flight = std::max(stats_.peak_in_flight, in_flight_);
    BatchEngine& engine = *shards_[rec->shard];
    const auto done = [this, rec](SessionReport&& report) {
      complete(rec, std::move(report));
    };
    // Dispatch under the server lock: admission order IS dispatch order
    // (FIFO determinism), and the lock order server -> engine-pool never
    // inverts (engine completion callbacks take the server lock only
    // AFTER the pool lock is released).
    const bool accepted =
        req.cls == RequestClass::streaming
            ? engine.try_submit_streamed(std::move(req.session),
                                         options_.streaming_chunk_samples, done,
                                         rec->id)
            : engine.try_submit(std::move(req.session), done, rec->id);
    if (!accepted) {
      // The shard was shut down out from under us (chaos/fault path). The
      // request is cancelled by value — its future still resolves.
      --in_flight_;
      counters_.in_flight.add(-1.0);
      ++stats_.cancelled;
      ++stats_.cancelled_by_class[ci];
      counters_.cancelled.inc();
      Resolution res;
      res.response.outcome = RequestOutcome::cancelled;
      res.response.cls = rec->cls;
      res.response.id = rec->id;
      res.response.shard = rec->shard;
      res.response.latency_ms = obs::ms_since(rec->submitted_at);
      res.promise = std::move(rec->promise);
      res.span = std::move(rec->span);
      resolved.push_back(std::move(res));
      continue;
    }
    counters_.shard_dispatched[rec->shard].inc();
    ++dispatched;
  }
  return dispatched;
}

std::size_t Server::pump() {
  // NOLINTNEXTLINE(hyperear-hotpath) -- per-request control-plane staging (promise resolution outside the lock), not per-sample DSP
  std::vector<Resolution> resolved;
  std::size_t dispatched = 0;
  {
    const he::MutexLock lock(mutex_);
    if (!stopping_) dispatched = pump_locked(resolved);
  }
  resolve(resolved);
  return dispatched;
}

void Server::complete(const std::shared_ptr<InFlight>& rec,
                      SessionReport&& report) {
  const std::size_t ci = class_index(rec->cls);
  Resolution res;
  res.response.outcome = RequestOutcome::completed;
  res.response.cls = rec->cls;
  res.response.id = rec->id;
  res.response.shard = rec->shard;
  res.response.latency_ms = obs::ms_since(rec->submitted_at);
  res.response.report = std::move(report);
  res.promise = std::move(rec->promise);
  res.span = std::move(rec->span);
  // NOLINTNEXTLINE(hyperear-hotpath) -- per-request control-plane staging (promise resolution outside the lock), not per-sample DSP
  std::vector<Resolution> resolved;
  {
    const he::MutexLock lock(mutex_);
    HE_EXPECTS(in_flight_ > 0);
    --in_flight_;
    counters_.in_flight.add(-1.0);
    ++stats_.completed;
    ++stats_.completed_by_class[ci];
    counters_.completed.inc();
    counters_.class_completed[ci].inc();
    counters_.latency_ms[ci].observe(res.response.latency_ms);
    if (!options_.manual_dispatch && !stopping_) pump_locked(resolved);
    if (in_flight_ == 0) idle_cv_.notify_all();
  }
  res.span.finish();
  res.promise.set_value(std::move(res.response));
  resolve(resolved);
}

void Server::drain() {
  for (;;) {
    (void)pump();
    he::MutexLock lock(mutex_);
    if (stopping_ || (pending_.empty() && in_flight_ == 0)) return;
    while (in_flight_ != 0 && !stopping_) idle_cv_.wait(lock);
    // in_flight_ hit zero with requests still queued (manual mode, or a
    // completion raced our pump) — loop and pump again; every iteration
    // either dispatches, expires, or cancels at least one queued request,
    // so this terminates.
  }
}

void Server::shutdown() {
  // NOLINTNEXTLINE(hyperear-hotpath) -- shutdown control plane: one-time cancellation staging, not per-session steady state
  std::vector<Resolution> resolved;
  {
    const he::MutexLock lock(mutex_);
    if (!stopping_) {
      stopping_ = true;
      while (!pending_.empty()) {
        PendingRequest req = std::move(pending_.front());
        pending_.pop_front();
        counters_.queue_depth.add(-1.0);
        counters_.shard_queue_depth[req.shard].add(-1.0);
        const std::size_t ci = class_index(req.cls);
        ++stats_.cancelled;
        ++stats_.cancelled_by_class[ci];
        counters_.cancelled.inc();
        resolved.push_back(
            resolution_for(std::move(req), RequestOutcome::cancelled));
      }
    }
  }
  resolve(resolved);
  {
    he::MutexLock lock(mutex_);
    while (in_flight_ != 0) idle_cv_.wait(lock);
  }
  // In-flight work has resolved; now the shard pools can drain and join.
  for (const std::unique_ptr<BatchEngine>& shard : shards_) shard->shutdown();
}

ServerStats Server::stats() const {
  const he::MutexLock lock(mutex_);
  ServerStats s = stats_;
  s.queued = pending_.size();
  s.in_flight = in_flight_;
  return s;
}

}  // namespace hyperear::runtime
