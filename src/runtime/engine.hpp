#pragma once

#include <array>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/parallel.hpp"
#include "core/pipeline.hpp"
#include "core/pipeline_context.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/scenario.hpp"

/// @file engine.hpp
/// The batch-localization engine: runs the full ASP -> MSP -> TTL/PLE
/// pipeline over many independent sessions concurrently on an internal
/// thread pool. Every per-session failure is captured as a value
/// (`SessionReport`), never as an exception escaping a worker — one
/// corrupt session cannot poison a batch. Results are deterministic:
/// sessions are pure functions of their inputs, so a report is
/// bit-identical no matter which worker produced it or how many workers
/// exist (bench_engine_throughput asserts this).

namespace hyperear::runtime {

/// Terminal status of one session run.
enum class SessionStatus {
  ok,           ///< pipeline produced a valid fix
  no_solution,  ///< pipeline ran cleanly but no slide passed the gate
  error,        ///< a stage failed; see `error`
};

[[nodiscard]] const char* to_string(SessionStatus status);

/// Everything the engine has to say about one session.
struct SessionReport {
  SessionStatus status = SessionStatus::error;
  core::LocalizationResult result;  ///< meaningful unless status == error
  core::PipelineError error;        ///< meaningful iff status == error
  core::StageMetrics metrics;       ///< filled up to the failing stage
  double wall_ms = 0.0;             ///< end-to-end time on the worker
};

/// Aggregate counters across every session the engine has completed.
/// Snapshot via BatchEngine::stats().
struct EngineStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t ok = 0;
  std::size_t no_solution = 0;
  std::size_t errors = 0;
  /// Errors by ErrorCategory (indexed by static_cast<size_t>(category)).
  std::array<std::size_t, 5> errors_by_category{};
  // Cumulative per-stage wall time across sessions (observability, not
  // wall-clock: stages on different workers overlap).
  double asp_ms = 0.0;
  double msp_ms = 0.0;
  double solve_ms = 0.0;
  double total_ms = 0.0;
  std::size_t chirps_detected = 0;
};

/// Concurrent batch localizer. Construction validates the config (throws
/// PreconditionError on a violation — a misconfigured engine is a
/// programming error, unlike a corrupt session, which is data) and spins
/// up the pool; the config is immutable for the engine's lifetime.
///
/// The engine owns a small cache of immutable `core::PipelineContext`s —
/// the DSP plans (band-pass taps, chirp reference, matched-filter
/// spectra, FFT tables) shared read-only by every worker — so plans are
/// built once per (chirp, sample-rate) combination instead of once per
/// session. Results are bit-identical to context-free `core::try_localize`
/// calls; only the redundant plan construction goes away.
class BatchEngine {
 public:
  /// `threads == 0` means hardware_concurrency (min 1).
  explicit BatchEngine(core::PipelineConfig config = {}, std::size_t threads = 0);

  /// Enqueue one session; the future resolves when a worker finishes it.
  /// Both overloads give the queued work its own copy of the session (the
  /// first copies, the second moves) — the caller's argument may die the
  /// moment the call returns. Throws PreconditionError after shutdown();
  /// a throwing submit leaves stats().submitted untouched.
  [[nodiscard]] std::future<SessionReport> submit(const sim::Session& session);
  [[nodiscard]] std::future<SessionReport> submit(sim::Session&& session);

  /// Run a whole batch and block until every session is done. Reports come
  /// back in input order regardless of completion order. Sessions are
  /// processed in place (no copies — the span outlives the call by
  /// construction).
  [[nodiscard]] std::vector<SessionReport> localize_all(
      std::span<const sim::Session> sessions);

  /// Stop accepting new sessions; everything already submitted still runs
  /// to completion and outstanding futures still resolve. Idempotent. The
  /// destructor implies it.
  void shutdown();

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] std::size_t thread_count() const { return pool_.size(); }
  [[nodiscard]] const core::PipelineConfig& config() const { return config_; }

 private:
  [[nodiscard]] SessionReport run_one(const sim::Session& session);
  void record(const SessionReport& report);
  /// Shared DSP plans for this session's chirp + sample rate: cached when
  /// possible, built fresh when the session is pathological (the per-stage
  /// error mapping in try_localize then classifies any failure). May
  /// return null for sessions whose plans cannot be built — try_localize
  /// falls back to its local-context path and reports the stage error.
  [[nodiscard]] std::shared_ptr<const core::PipelineContext> context_for(
      const sim::Session& session);
  [[nodiscard]] std::future<SessionReport> enqueue(
      std::shared_ptr<const sim::Session> session);

  const core::PipelineConfig config_;
  mutable std::mutex stats_mutex_;
  EngineStats stats_;
  mutable std::mutex context_mutex_;
  std::vector<std::shared_ptr<const core::PipelineContext>> contexts_;
  /// Overlaps the two microphone channels of each session on the SAME pool
  /// the sessions run on (help-draining while waiting, so nested fan-out
  /// cannot deadlock and the engine never oversubscribes the machine).
  /// Declared before pool_: queued session tasks reference it while the
  /// pool drains during destruction.
  std::unique_ptr<const core::PairExecutor> channel_executor_;
  ThreadPool pool_;  // declared last: workers must die before state above
};

}  // namespace hyperear::runtime
