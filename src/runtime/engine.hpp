#pragma once

#include <array>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/pipeline.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/scenario.hpp"

/// @file engine.hpp
/// The batch-localization engine: runs the full ASP -> MSP -> TTL/PLE
/// pipeline over many independent sessions concurrently on an internal
/// thread pool. Every per-session failure is captured as a value
/// (`SessionReport`), never as an exception escaping a worker — one
/// corrupt session cannot poison a batch. Results are deterministic:
/// sessions are pure functions of their inputs, so a report is
/// bit-identical no matter which worker produced it or how many workers
/// exist (bench_engine_throughput asserts this).

namespace hyperear::runtime {

/// Terminal status of one session run.
enum class SessionStatus {
  ok,           ///< pipeline produced a valid fix
  no_solution,  ///< pipeline ran cleanly but no slide passed the gate
  error,        ///< a stage failed; see `error`
};

[[nodiscard]] const char* to_string(SessionStatus status);

/// Everything the engine has to say about one session.
struct SessionReport {
  SessionStatus status = SessionStatus::error;
  core::LocalizationResult result;  ///< meaningful unless status == error
  core::PipelineError error;        ///< meaningful iff status == error
  core::StageMetrics metrics;       ///< filled up to the failing stage
  double wall_ms = 0.0;             ///< end-to-end time on the worker
};

/// Aggregate counters across every session the engine has completed.
/// Snapshot via BatchEngine::stats().
struct EngineStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t ok = 0;
  std::size_t no_solution = 0;
  std::size_t errors = 0;
  /// Errors by ErrorCategory (indexed by static_cast<size_t>(category)).
  std::array<std::size_t, 5> errors_by_category{};
  // Cumulative per-stage wall time across sessions (observability, not
  // wall-clock: stages on different workers overlap).
  double asp_ms = 0.0;
  double msp_ms = 0.0;
  double solve_ms = 0.0;
  double total_ms = 0.0;
  std::size_t chirps_detected = 0;
};

/// Concurrent batch localizer. Construction validates the config (throws
/// PreconditionError on a violation — a misconfigured engine is a
/// programming error, unlike a corrupt session, which is data) and spins
/// up the pool; the config is immutable for the engine's lifetime.
class BatchEngine {
 public:
  /// `threads == 0` means hardware_concurrency (min 1).
  explicit BatchEngine(core::PipelineConfig config = {}, std::size_t threads = 0);

  /// Enqueue one session; the future resolves when a worker finishes it.
  /// The caller must keep `session` alive until then (localize_all does
  /// this for you); the owning overload below takes that burden.
  [[nodiscard]] std::future<SessionReport> submit(const sim::Session& session);
  [[nodiscard]] std::future<SessionReport> submit(sim::Session&& session);

  /// Run a whole batch and block until every session is done. Reports come
  /// back in input order regardless of completion order.
  [[nodiscard]] std::vector<SessionReport> localize_all(
      std::span<const sim::Session> sessions);

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] std::size_t thread_count() const { return pool_.size(); }
  [[nodiscard]] const core::PipelineConfig& config() const { return config_; }

 private:
  [[nodiscard]] SessionReport run_one(const sim::Session& session);
  void record(const SessionReport& report);

  const core::PipelineConfig config_;
  mutable std::mutex stats_mutex_;
  EngineStats stats_;
  ThreadPool pool_;  // declared last: workers must die before state above
};

}  // namespace hyperear::runtime
