#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "core/pipeline.hpp"
#include "core/pipeline_context.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/context_cache.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/workspace_pool.hpp"
#include "sim/scenario.hpp"

/// @file engine.hpp
/// The batch-localization engine: runs the full ASP -> MSP -> TTL/PLE
/// pipeline over many independent sessions concurrently on an internal
/// thread pool. Every per-session failure is captured as a value
/// (`SessionReport`), never as an exception escaping a worker — one
/// corrupt session cannot poison a batch. Results are deterministic:
/// sessions are pure functions of their inputs, so a report is
/// bit-identical no matter which worker produced it or how many workers
/// exist (bench_engine_throughput asserts this).
///
/// Scaling model (DESIGN.md §8): sessions are the unit of parallelism.
/// Each worker leases exclusive per-worker state (workspace + memoized
/// context pointer) for the duration of a session and runs the canonical
/// `core::try_localize` against read-only shared plans, so the steady
/// state crosses no per-session lock and performs (nearly) no heap
/// allocation; throughput scales with workers because workers share
/// nothing mutable. The old design — a single context-cache mutex and a
/// shared intra-session channel executor — is gone from the batch path.

namespace hyperear::runtime {

/// Terminal status of one session run.
enum class SessionStatus {
  ok,           ///< pipeline produced a valid fix
  no_solution,  ///< pipeline ran cleanly but no slide passed the gate
  error,        ///< a stage failed; see `error`
};

[[nodiscard]] const char* to_string(SessionStatus status);

/// Everything the engine has to say about one session.
struct SessionReport {
  SessionStatus status = SessionStatus::error;
  core::LocalizationResult result;  ///< meaningful unless status == error
  core::PipelineError error;        ///< meaningful iff status == error
  core::StageMetrics metrics;       ///< filled up to the failing stage
  double wall_ms = 0.0;             ///< end-to-end time on the worker
};

/// Aggregate counters across every session the engine has completed — a
/// point-in-time VIEW over the engine's metrics registry (the `engine.*`
/// series), kept bit-compatible with the pre-registry struct so existing
/// callers keep working. Snapshot via BatchEngine::stats(); scrape the
/// full registry (including pipeline/detector/pool series this view
/// doesn't carry) via BatchEngine::metrics().
struct EngineStats {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t ok = 0;
  std::size_t no_solution = 0;
  std::size_t errors = 0;
  /// Errors by ErrorCategory (indexed by static_cast<size_t>(category);
  /// the extent tracks the enum, core::kErrorCategoryCount).
  std::array<std::size_t, core::kErrorCategoryCount> errors_by_category{};
  // Cumulative per-stage wall time across sessions (observability, not
  // wall-clock: stages on different workers overlap).
  double asp_ms = 0.0;
  double msp_ms = 0.0;
  double solve_ms = 0.0;
  double total_ms = 0.0;
  std::size_t chirps_detected = 0;
};

/// Observability wiring for a BatchEngine. Both members optional:
/// `registry` null means the engine builds a private registry (its stats()
/// view and exports still work — the engine is never blind); `tracer` null
/// means per-stage spans are not recorded (the usual production setting —
/// spans cost a mutexed allocation per stage, counters don't).
struct EngineObs {
  std::shared_ptr<obs::MetricsRegistry> registry;
  std::shared_ptr<obs::Tracer> tracer;
};

/// Concurrent batch localizer. Construction validates the config (throws
/// PreconditionError on a violation — a misconfigured engine is a
/// programming error, unlike a corrupt session, which is data) and spins
/// up the pool; the config is immutable for the engine's lifetime.
///
/// The engine owns a sharded cache of immutable `core::PipelineContext`s
/// (runtime/context_cache.hpp) — the DSP plans (band-pass taps, chirp
/// reference, matched-filter spectra, FFT tables) shared read-only by
/// every worker — so plans are built once per (chirp, sample-rate)
/// combination instead of once per session, and a pool of per-worker
/// `core::SessionWorkspace`s (runtime/workspace_pool.hpp) so scratch is
/// allocated once per worker instead of once per session. Results are
/// bit-identical to context-free `core::try_localize` calls; only the
/// redundant plan construction and allocator traffic go away.
///
/// Telemetry: every session updates the `engine.*`, `pipeline.*`,
/// `detector.*`, and `engine.pool.*` series on the registry (supplied or
/// private — see EngineObs). `stats()` is the legacy fixed-field view;
/// `metrics().to_json()` / `.to_prometheus()` are the export path.
class BatchEngine {
 public:
  /// `threads == 0` means hardware_concurrency (min 1).
  explicit BatchEngine(core::PipelineConfig config = {}, std::size_t threads = 0,
                       EngineObs obs = {});

  /// Enqueue one session; the future resolves when a worker finishes it.
  /// Both overloads give the queued work its own copy of the session (the
  /// first copies, the second moves) — the caller's argument may die the
  /// moment the call returns. Throws PreconditionError after shutdown();
  /// a throwing submit leaves stats().submitted untouched.
  [[nodiscard]] std::future<SessionReport> submit(const sim::Session& session);
  [[nodiscard]] std::future<SessionReport> submit(sim::Session&& session);

  /// Serving-layer intake (runtime/server.hpp): like submit(), but the
  /// report is delivered to `done` on the worker thread that produced it,
  /// and an engine that has shut down answers `false` instead of throwing —
  /// the server treats a shard dying mid-flight as data (the request is
  /// cancelled by value), not as a caller bug. A `false` answer means
  /// `done` will never run and stats().submitted is untouched. `done` must
  /// not throw (pool tasks that throw terminate the process, by design).
  /// `session_id` labels this run's metric/trace series (0 = allocate an
  /// engine-internal id) so the caller's root span and the pipeline's
  /// stage spans share one id.
  [[nodiscard]] bool try_submit(std::shared_ptr<const sim::Session> session,
                                std::function<void(SessionReport&&)> done,
                                std::uint64_t session_id = 0);

  /// Streaming-class intake: same contract as try_submit, but the worker
  /// ingests the session's audio through core::StreamingSession in
  /// `chunk_samples`-sample slices before solving, exercising the
  /// incremental path end to end. The report is bit-identical to
  /// try_submit on the same session (the streaming guarantee: chunking is
  /// representation, not information); only the ingest spelling differs.
  [[nodiscard]] bool try_submit_streamed(
      std::shared_ptr<const sim::Session> session, std::size_t chunk_samples,
      std::function<void(SessionReport&&)> done, std::uint64_t session_id = 0);

  /// Run a whole batch and block until every session is done. Reports come
  /// back in input order regardless of completion order. Sessions are
  /// processed in place (no copies — the span outlives the call by
  /// construction).
  [[nodiscard]] std::vector<SessionReport> localize_all(
      std::span<const sim::Session> sessions);

  /// Stop accepting new sessions; everything already submitted still runs
  /// to completion and outstanding futures still resolve. Idempotent. The
  /// destructor implies it.
  void shutdown();

  [[nodiscard]] EngineStats stats() const;
  /// The registry every series lands on (supplied or engine-private).
  [[nodiscard]] obs::MetricsRegistry& metrics() const { return *registry_; }
  /// Null unless a tracer was supplied at construction.
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_.get(); }
  [[nodiscard]] std::size_t thread_count() const { return pool_.size(); }
  [[nodiscard]] const core::PipelineConfig& config() const { return config_; }

 private:
  /// Handles into the registry for the `engine.*` series backing stats().
  struct Counters {
    obs::Counter submitted;        ///< engine.sessions_submitted_total
    obs::Counter rejected;         ///< engine.submit_rejected_total
    obs::Counter completed;        ///< engine.sessions_completed_total
    obs::Counter ok;               ///< engine.sessions_ok_total
    obs::Counter no_solution;      ///< engine.sessions_no_solution_total
    obs::Counter errors;           ///< engine.sessions_error_total
    /// engine.errors_by_category.<to_string(category)>
    std::array<obs::Counter, core::kErrorCategoryCount> by_category;
    obs::Counter asp_ms;           ///< engine.stage_ms.asp
    obs::Counter msp_ms;           ///< engine.stage_ms.msp
    obs::Counter solve_ms;         ///< engine.stage_ms.solve
    obs::Counter total_ms;         ///< engine.session_ms_total
    obs::Counter chirps;           ///< engine.chirps_detected_total
  };

  [[nodiscard]] SessionReport run_one(const sim::Session& session,
                                      std::uint64_t session_id);
  [[nodiscard]] SessionReport run_one_streamed(const sim::Session& session,
                                               std::size_t chunk_samples,
                                               std::uint64_t session_id);
  /// Memoized-or-cached plan lookup for one session (may return null for
  /// pathological sessions; callers fall back to the context-free path).
  [[nodiscard]] std::shared_ptr<const core::PipelineContext> context_for(
      WorkspacePool::WorkerState& state, const sim::Session& session);
  void record(const SessionReport& report);
  [[nodiscard]] std::future<SessionReport> enqueue(
      std::shared_ptr<const sim::Session> session);
  [[nodiscard]] bool post_refusable(std::function<void()> task);

  const core::PipelineConfig config_;
  /// Declared before pool_: queued tasks and the pool's own metric handles
  /// reference the registry while the pool drains during destruction.
  std::shared_ptr<obs::MetricsRegistry> registry_;
  std::shared_ptr<obs::Tracer> tracer_;
  Counters counters_;
  std::atomic<std::uint64_t> next_session_id_{0};
  /// Shared immutable plans, sharded by configuration hash. Workers hit
  /// this only when their memoized context does not match the session.
  ContextCache contexts_;
  /// Exclusive per-worker session state (workspace + memoized context),
  /// leased for one session at a time. Declared before pool_: in-flight
  /// sessions return their lease while the pool drains during destruction.
  WorkspacePool workspaces_;
  ThreadPool pool_;  // declared last: workers must die before state above
};

}  // namespace hyperear::runtime
