#include "runtime/thread_pool.hpp"

#include "common/error.hpp"

namespace hyperear::runtime {

ThreadPool::ThreadPool(std::size_t threads) {
  require(threads >= 1, "ThreadPool: needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  stop();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
}

void ThreadPool::post(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    require(!stopping_, "ThreadPool::post: pool is shutting down");
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace hyperear::runtime
