#include "runtime/thread_pool.hpp"

#include <string>

#include "common/error.hpp"

namespace hyperear::runtime {

namespace {

/// Queue-wait buckets (ms): sub-ms dispatch up to multi-second backlog.
constexpr double kWaitMsBounds[] = {0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  require(threads >= 1, "ThreadPool: needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  stop();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::install_metrics(obs::MetricsRegistry& registry,
                                 std::string_view prefix) {
  const std::string p(prefix);
  queue_depth_ = registry.gauge(p + ".queue_depth");
  task_wait_ms_ = registry.histogram(p + ".task_wait_ms", kWaitMsBounds);
  tasks_run_ = registry.counter(p + ".tasks_run_total");
  metrics_installed_.store(true, std::memory_order_release);
}

void ThreadPool::stop() {
  {
    const he::MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
}

bool ThreadPool::stopped() const {
  const he::MutexLock lock(mutex_);
  return stopping_;
}

void ThreadPool::post(std::function<void()> task) {
  QueuedTask queued{std::move(task), {}};
  const bool instrumented = metrics_installed_.load(std::memory_order_acquire);
  if (instrumented) queued.posted = std::chrono::steady_clock::now();
  {
    const he::MutexLock lock(mutex_);
    require(!stopping_, "ThreadPool::post: pool is shutting down");
    queue_.push_back(std::move(queued));
    // The +1 must land inside the locked region: note_dequeued's -1 runs
    // under this mutex, so any consumer that pops this task strictly
    // follows the increment. Incrementing after unlock was safe when the
    // only consumers were CV-woken workers (the notify below ordered
    // them), but a try_run_one help-drainer polls the queue without
    // waiting for the notify and could pop-and-decrement first, driving
    // the gauge transiently negative (test_stress_pool pins this).
    if (instrumented) queue_depth_.add(1.0);
  }
  wake_.notify_one();
}

void ThreadPool::note_dequeued(const QueuedTask& task) {
  if (!metrics_installed_.load(std::memory_order_acquire)) return;
  queue_depth_.add(-1.0);
  task_wait_ms_.observe(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - task.posted)
                            .count());
  tasks_run_.inc();
}

bool ThreadPool::try_run_one() {
  QueuedTask task;
  {
    const he::MutexLock lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    note_dequeued(task);
  }
  task.fn();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      he::MutexLock lock(mutex_);
      // Explicit loop, not the predicate overload: a predicate lambda is
      // analyzed without the capability, so its guarded reads would fail
      // thread-safety analysis (see thread_annotations.hpp).
      while (!stopping_ && queue_.empty()) wake_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      note_dequeued(task);
    }
    task.fn();
  }
}

}  // namespace hyperear::runtime
