#include "sim/noise.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "dsp/biquad.hpp"
#include "dsp/spectrum.hpp"

namespace hyperear::sim {

namespace {

/// Slow random amplitude envelope built from a few sinusoids; mean ~1.
std::vector<double> modulation_envelope(std::size_t n, double fs, Rng& rng, double depth,
                                        double min_hz, double max_hz, int components) {
  std::vector<double> env(n, 1.0);
  for (int c = 0; c < components; ++c) {
    const double f = rng.uniform(min_hz, max_hz);
    const double phase = rng.uniform(0.0, 2.0 * kPi);
    const double amp = depth / static_cast<double>(components);
    for (std::size_t i = 0; i < n; ++i) {
      env[i] += amp * std::sin(2.0 * kPi * f * static_cast<double>(i) / fs + phase);
    }
  }
  for (auto& e : env) e = std::max(e, 0.0);
  return env;
}

std::vector<double> white(std::size_t n, Rng& rng) { return rng.gaussian_vector(n); }

std::vector<double> voice(std::size_t n, double fs, Rng& rng) {
  // Chatter: low-passed white noise (voice energy is mostly < 2 kHz) with
  // syllabic-rate (3-8 Hz) amplitude modulation.
  std::vector<double> base = white(n, rng);
  dsp::ButterworthCascade lp(dsp::ButterworthCascade::Kind::kLowpass, 4, 1800.0, fs);
  std::vector<double> shaped = lp.filter(base);
  const std::vector<double> env = modulation_envelope(n, fs, rng, 0.7, 3.0, 8.0, 4);
  for (std::size_t i = 0; i < n; ++i) shaped[i] *= env[i];
  return shaped;
}

std::vector<double> mall_music(std::size_t n, double fs, Rng& rng) {
  // Broadband program material: pink-ish noise across the audible band plus
  // a handful of sustained tones inside the chirp band (melody/announcement
  // harmonics), gently beat-modulated.
  std::vector<double> base = white(n, rng);
  dsp::ButterworthCascade lp(dsp::ButterworthCascade::Kind::kLowpass, 4, 9000.0, fs);
  std::vector<double> shaped = lp.filter(base);
  for (int tone = 0; tone < 5; ++tone) {
    const double f = rng.uniform(1500.0, 7000.0);
    const double phase = rng.uniform(0.0, 2.0 * kPi);
    const double amp = rng.uniform(0.1, 0.35);
    for (std::size_t i = 0; i < n; ++i) {
      shaped[i] += amp * std::sin(2.0 * kPi * f * static_cast<double>(i) / fs + phase);
    }
  }
  const std::vector<double> env = modulation_envelope(n, fs, rng, 0.3, 0.5, 2.0, 3);
  for (std::size_t i = 0; i < n; ++i) shaped[i] *= env[i];
  return shaped;
}

std::vector<double> mall_busy(std::size_t n, double fs, Rng& rng) {
  // Busy hour: program material plus crowd babble bursts that make the
  // noise level "dramatically change over time" (Section VII-E).
  std::vector<double> shaped = mall_music(n, fs, rng);
  Rng burst_rng = rng.split();
  std::vector<double> babble = voice(n, fs, burst_rng);
  // Burst gating: random on/off with ~1-3 s bursts of 2-4x amplitude.
  std::size_t i = 0;
  while (i < n) {
    const auto gap = static_cast<std::size_t>(rng.uniform(0.5, 2.5) * fs);
    const auto burst = static_cast<std::size_t>(rng.uniform(0.8, 3.0) * fs);
    const double level = rng.uniform(1.5, 4.0);
    i += gap;
    for (std::size_t k = i; k < std::min(i + burst, n); ++k) shaped[k] += level * babble[k];
    i += burst;
  }
  return shaped;
}

}  // namespace

std::vector<double> make_noise(NoiseType type, std::size_t n, double fs, Rng& rng) {
  require(n > 0, "make_noise: need at least one sample");
  require(fs > 0.0, "make_noise: sample rate must be positive");
  switch (type) {
    case NoiseType::kWhite:
      return white(n, rng);
    case NoiseType::kVoice:
      return voice(n, fs, rng);
    case NoiseType::kMallMusic:
      return mall_music(n, fs, rng);
    case NoiseType::kMallBusy:
      return mall_busy(n, fs, rng);
  }
  throw PreconditionError("make_noise: unknown noise type");
}

double calibrate_band_power(std::vector<double>& noise, double fs, double low_hz,
                            double high_hz, double target_band_power) {
  require(target_band_power > 0.0, "calibrate_band_power: target must be positive");
  // Measure on a representative prefix to keep the FFT bounded.
  const std::size_t probe = std::min<std::size_t>(noise.size(), 1u << 17);
  const double current =
      dsp::band_power({noise.data(), probe}, fs, low_hz, high_hz);
  require(current > 0.0, "calibrate_band_power: no power in band");
  const double scale = std::sqrt(target_band_power / current);
  for (auto& v : noise) v *= scale;
  return scale;
}

}  // namespace hyperear::sim
