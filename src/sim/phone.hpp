#pragma once

#include <string>

#include "geom/vec3.hpp"
#include "imu/imu_model.hpp"

/// @file phone.hpp
/// COTS smartphone hardware description. Body frame: +x right, +y toward
/// the top edge (the microphone axis on both evaluated phones), +z out of
/// the screen. Mic1 is the top microphone, Mic2 the bottom one, mirroring
/// the paper's Fig. 6 where the speaker direction is measured against the
/// phone's axes.

namespace hyperear::sim {

/// ADC / microphone front-end characteristics shared by both mics.
struct AdcSpec {
  double sample_rate = 44100.0;  ///< OS-limited rate (Section II-C)
  int bits = 16;                 ///< quantization depth
  double full_scale = 1.0;       ///< clip level in renderer units
  double self_noise_rms = 2e-4;  ///< electronic noise floor (full scale = 1)
  double clock_offset_ppm = 0.0; ///< phone audio clock skew (drawn per run)
  /// Microphone frequency response: phone mics are flat through the voice
  /// band but roll off toward ultrasound — the "frequency selectivity of
  /// smartphone microphones" the paper's future work worries about for
  /// inaudible beacons. Modeled as a Butterworth-style magnitude
  /// 1/sqrt(1 + (f/fc)^(2n)).
  double response_cutoff_hz = 19000.0;
  int response_order = 2;

  /// Magnitude response at frequency f (Hz).
  [[nodiscard]] double response_at(double freq_hz) const;
};

/// A phone model used in the evaluation.
struct PhoneSpec {
  std::string name;
  double mic_separation = 0.1366;  ///< D, meters
  AdcSpec adc;
  imu::ImuSpec imu;

  /// Body-frame position of the top microphone (Mic1).
  [[nodiscard]] geom::Vec3 mic1_body() const { return {0.0, mic_separation / 2.0, 0.0}; }
  /// Body-frame position of the bottom microphone (Mic2).
  [[nodiscard]] geom::Vec3 mic2_body() const { return {0.0, -mic_separation / 2.0, 0.0}; }
};

/// Samsung Galaxy S4 preset (D = 13.66 cm, Section VII-A).
[[nodiscard]] PhoneSpec galaxy_s4();

/// Samsung Galaxy Note3 preset (D = 15.12 cm, Section VII-A).
[[nodiscard]] PhoneSpec galaxy_note3();

}  // namespace hyperear::sim
