#include "sim/environment.hpp"

namespace hyperear::sim {

namespace {

RoomSpec meeting_room_geometry() {
  RoomSpec room;
  room.length = 17.0;
  room.width = 13.0;
  room.height = 3.2;
  room.absorption = 0.45;  // carpeted theatre-style seating absorbs well
  room.scattering = 0.5;   // ten rows of seats scatter specular reflections
  room.max_order = 2;
  return room;
}

RoomSpec mall_geometry() {
  RoomSpec room;
  room.length = 95.0;
  room.width = 16.5;
  room.height = 4.5;
  room.absorption = 0.25;  // hard floors and glass shopfronts: livelier
  room.scattering = 0.25;  // storefront clutter scatters a little
  room.max_order = 2;
  return room;
}

}  // namespace

Environment meeting_room_quiet() {
  return {"meeting room, quiet", meeting_room_geometry(), NoiseType::kWhite, 18.0};
}

Environment meeting_room_chatting() {
  return {"meeting room, chatting", meeting_room_geometry(), NoiseType::kVoice, 9.0};
}

Environment mall_off_peak() {
  return {"mall, off-peak", mall_geometry(), NoiseType::kMallMusic, 6.0};
}

Environment mall_busy_hour() {
  return {"mall, busy hour", mall_geometry(), NoiseType::kMallBusy, 3.0};
}

}  // namespace hyperear::sim
