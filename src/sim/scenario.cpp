#include "sim/scenario.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hyperear::sim {

namespace {

/// Sample ideal IMU channels from the trajectory and corrupt them.
imu::ImuData sample_imu(const Trajectory& traj, const PhoneSpec& phone, double duration,
                        Rng& rng) {
  const double fs = phone.imu.sample_rate;
  const auto n = static_cast<std::size_t>(std::floor(duration * fs)) + 1;
  std::vector<geom::Vec3> force(n), rate(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    force[i] = traj.specific_force_body(t);
    rate[i] = traj.angular_rate_body(t);
  }
  imu::ImuModel model(phone.imu, rng);
  return model.corrupt(force, rate);
}

/// Place the phone and speaker inside the room with the requested range.
struct Placement {
  geom::Vec3 phone_start;
  geom::Vec3 speaker;
};

Placement place(const ScenarioConfig& cfg, Rng& rng) {
  const RoomSpec& room = cfg.environment.room;
  const double r = cfg.speaker_distance;
  require(r > 0.3, "scenario: speaker distance too small");
  require(r + 2.0 < room.length, "scenario: speaker distance does not fit the room");
  Placement p;
  // Phone along the room's long axis, speaker `r` meters further along +x.
  // The paper evaluates five random speaker positions x five test positions
  // per environment; randomizing the placement per session reproduces that
  // position diversity (multipath bias varies with position).
  geom::Vec3 base{(room.length - r) / 2.0, room.width / 2.0, cfg.phone_height};
  if (cfg.randomize_placement) {
    const double max_dx = std::min(2.0, (room.length - r) / 2.0 - 1.0);
    const double max_dy = std::min(3.0, room.width / 2.0 - 1.5);
    if (max_dx > 0.0) base.x += rng.uniform(-max_dx, max_dx);
    if (max_dy > 0.0) base.y += rng.uniform(-max_dy, max_dy);
  }
  p.phone_start = base;
  p.speaker = {p.phone_start.x + r, p.phone_start.y, cfg.speaker_height};
  require(p.speaker.z > 0.0 && p.speaker.z < room.height,
          "scenario: speaker height outside the room");
  require(p.phone_start.z > 0.0 && p.phone_start.z < room.height,
          "scenario: phone height outside the room");
  return p;
}

/// Append one stature's worth of back-and-forth slides.
void add_slides(TrajectoryBuilder& builder, const ScenarioConfig& cfg, Rng& rng,
                double& direction) {
  for (int s = 0; s < cfg.slides_per_stature; ++s) {
    double dist = cfg.slide_distance;
    if (cfg.jitter.hand_held()) {
      // Volunteers cannot repeat the stroke length exactly.
      dist *= rng.uniform(0.92, 1.08);
    }
    builder.slide_mic_axis(direction * dist, cfg.slide_duration);
    builder.hold(cfg.hold_duration);
    direction = -direction;
  }
}

Speaker make_speaker(const ScenarioConfig& cfg, const geom::Vec3& position, Rng& rng) {
  SpeakerSpec spec = cfg.speaker;
  spec.clock_offset_ppm += rng.gaussian(0.0, cfg.speaker_clock_ppm_sigma);
  spec.start_offset_s = rng.uniform(0.0, spec.period_s);
  return Speaker(spec, position);
}

PhoneSpec make_phone(const ScenarioConfig& cfg, Rng& rng) {
  PhoneSpec phone = cfg.phone;
  phone.adc.clock_offset_ppm += rng.gaussian(0.0, cfg.phone_clock_ppm_sigma);
  return phone;
}

Session finalize(const ScenarioConfig& cfg, const PhoneSpec& phone, const Speaker& speaker,
                 const Trajectory& traj, const Placement& placement, double yaw,
                 double yaw_error, double duration, Rng& rng) {
  Session session;
  session.config = cfg;
  session.config.phone = phone;  // keep the drawn clock offsets for diagnostics

  std::vector<Speaker> speakers{speaker};
  for (const ScenarioConfig::Interferer& itf : cfg.interferers) {
    SpeakerSpec spec = itf.spec;
    spec.clock_offset_ppm += rng.gaussian(0.0, cfg.speaker_clock_ppm_sigma);
    spec.start_offset_s = rng.uniform(0.0, spec.period_s);
    const geom::Vec3 pos = placement.phone_start +
                           geom::Vec3{itf.distance, itf.lateral_offset,
                                      itf.height - placement.phone_start.z};
    speakers.emplace_back(spec, pos);
  }
  session.audio = render_audio_multi(speakers, phone, cfg.environment, traj, duration,
                                     rng, cfg.render);
  session.imu = sample_imu(traj, phone, duration, rng);

  session.truth.speaker_position = speaker.position();
  session.truth.phone_start_position = placement.phone_start;
  session.truth.in_direction_yaw = yaw;
  session.truth.true_yaw_error_rad = yaw_error;
  session.truth.slides = traj.slides();
  session.truth.speaker_true_period = speaker.true_period();

  session.prior.phone_start_position = placement.phone_start;
  session.prior.believed_yaw = yaw;
  session.prior.nominal_period = cfg.speaker.period_s;
  session.prior.chirp = cfg.speaker.chirp;
  session.prior.calibration_duration = cfg.calibration_duration;
  session.prior.speaker_on_positive_x = true;
  session.prior.two_statures = cfg.two_statures;
  session.prior.phone_height = cfg.phone_height;
  return session;
}

}  // namespace

Session make_localization_session(const ScenarioConfig& config, Rng& rng) {
  require(config.slides_per_stature >= 1, "scenario: need at least one slide");
  require(config.calibration_duration > 1.0, "scenario: calibration head too short");
  const Placement placement = place(config, rng);

  // Residual aiming error after the user stopped rolling at SDF's zero.
  const double yaw_error = rng.gaussian(0.0, deg2rad(config.in_direction_error_deg));
  const double yaw = yaw_error;  // true in-direction yaw is 0 by construction

  TrajectoryBuilder builder(placement.phone_start, yaw);
  builder.hold(config.calibration_duration);
  double direction = 1.0;
  add_slides(builder, config, rng, direction);

  double stature_start = 0.0, stature_end = 0.0;
  if (config.two_statures) {
    stature_start = builder.current_time();
    builder.change_stature(config.stature_change, 1.0);
    stature_end = builder.current_time();
    builder.hold(1.2);
    add_slides(builder, config, rng, direction);
  }
  builder.hold(0.5);

  const double duration = builder.current_time();
  const Trajectory traj = builder.build(config.jitter, rng);

  const PhoneSpec phone = make_phone(config, rng);
  const Speaker speaker = make_speaker(config, placement.speaker, rng);

  Session session =
      finalize(config, phone, speaker, traj, placement, yaw, yaw_error, duration, rng);
  session.truth.stature_change_start = stature_start;
  session.truth.stature_change_end = stature_end;
  return session;
}

Session make_rotation_sweep_session(const ScenarioConfig& config, double yaw_start,
                                    double yaw_end, double sweep_duration, Rng& rng) {
  require(sweep_duration > 0.5, "scenario: sweep too short");
  const Placement placement = place(config, rng);

  TrajectoryBuilder builder(placement.phone_start, yaw_start);
  builder.hold(1.0);
  builder.rotate_to(yaw_end, sweep_duration);
  builder.hold(1.0);

  const double duration = builder.current_time();
  const Trajectory traj = builder.build(config.jitter, rng);
  const PhoneSpec phone = make_phone(config, rng);
  const Speaker speaker = make_speaker(config, placement.speaker, rng);

  return finalize(config, phone, speaker, traj, placement, yaw_start, 0.0, duration, rng);
}

}  // namespace hyperear::sim
