#include "sim/trajectory.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hyperear::sim {

double min_jerk(double tau) {
  if (tau <= 0.0) return 0.0;
  if (tau >= 1.0) return 1.0;
  const double t3 = tau * tau * tau;
  return 10.0 * t3 - 15.0 * t3 * tau + 6.0 * t3 * tau * tau;
}

double min_jerk_vel(double tau) {
  if (tau <= 0.0 || tau >= 1.0) return 0.0;
  const double t2 = tau * tau;
  return 30.0 * t2 - 60.0 * t2 * tau + 30.0 * t2 * t2;
}

double min_jerk_acc(double tau) {
  if (tau <= 0.0 || tau >= 1.0) return 0.0;
  return 60.0 * tau - 180.0 * tau * tau + 120.0 * tau * tau * tau;
}

JitterParams hand_jitter() {
  JitterParams p;
  p.pos_accel_rms = 0.16;            // holding-still tremor acceleration
  p.yaw_amplitude = deg2rad(1.0);
  p.tilt_amplitude = deg2rad(0.8);
  p.base_tilt_sigma = deg2rad(2.5);  // imperfectly level hand-held phone
  return p;
}

JitterParams ruler_jitter() { return {}; }

Trajectory::Trajectory(std::vector<Phase> phases, const JitterParams& jitter, Rng& rng)
    : phases_(std::move(phases)) {
  require(!phases_.empty(), "Trajectory: no phases");
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    require(phases_[i].t1 > phases_[i].t0, "Trajectory: phase with non-positive duration");
    if (i > 0) {
      require(std::abs(phases_[i].t0 - phases_[i - 1].t1) < 1e-9,
              "Trajectory: phases must be contiguous");
    }
  }
  Rng local = rng.split();
  for (int c = 0; c < kChannels; ++c) {
    const bool positional = c < 3;
    double amp = 0.0;
    if (positional) amp = jitter.pos_accel_rms;
    if (c == 3) amp = jitter.yaw_amplitude;
    if (c >= 4) amp = jitter.tilt_amplitude;
    if (amp <= 0.0 || jitter.components <= 0) continue;
    const double lo = positional ? jitter.tremor_min_hz : jitter.wander_min_hz;
    const double hi = positional ? jitter.tremor_max_hz : jitter.wander_max_hz;
    for (int k = 0; k < jitter.components; ++k) {
      Sinusoid s;
      const double scale =
          amp * local.uniform(0.5, 1.0) * std::sqrt(2.0 / jitter.components);
      s.freq = local.uniform(lo, hi);
      const double omega = 2.0 * kPi * s.freq;
      // Positional channels are acceleration-parameterized.
      s.amp = positional ? scale / (omega * omega) : scale;
      s.phase = local.uniform(0.0, 2.0 * kPi);
      jitter_[c].push_back(s);
    }
  }
  if (jitter.base_tilt_sigma > 0.0) {
    base_pitch_ = local.gaussian(0.0, jitter.base_tilt_sigma);
    base_roll_ = local.gaussian(0.0, jitter.base_tilt_sigma);
  }
}

double Trajectory::duration() const { return phases_.back().t1; }

const Phase& Trajectory::phase_at(double t) const {
  if (t <= phases_.front().t0) return phases_.front();
  if (t >= phases_.back().t1) return phases_.back();
  // Binary search for the phase containing t.
  std::size_t lo = 0;
  std::size_t hi = phases_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (phases_[mid].t1 < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return phases_[lo];
}

double Trajectory::channel_jitter(int channel, double t) const {
  double v = 0.0;
  for (const Sinusoid& s : jitter_[channel]) {
    v += s.amp * std::sin(2.0 * kPi * s.freq * t + s.phase);
  }
  return v;
}

double Trajectory::channel_jitter_vel(int channel, double t) const {
  double v = 0.0;
  for (const Sinusoid& s : jitter_[channel]) {
    const double w = 2.0 * kPi * s.freq;
    v += s.amp * w * std::cos(w * t + s.phase);
  }
  return v;
}

double Trajectory::channel_jitter_acc(int channel, double t) const {
  double v = 0.0;
  for (const Sinusoid& s : jitter_[channel]) {
    const double w = 2.0 * kPi * s.freq;
    v -= s.amp * w * w * std::sin(w * t + s.phase);
  }
  return v;
}

Trajectory::EulerState Trajectory::euler_state(double t) const {
  const Phase& ph = phase_at(t);
  const double span = ph.t1 - ph.t0;
  const double tau = std::clamp((t - ph.t0) / span, 0.0, 1.0);
  EulerState e{};
  e.yaw = ph.yaw0 + (ph.yaw1 - ph.yaw0) * min_jerk(tau) + channel_jitter(3, t);
  e.dyaw = (ph.yaw1 - ph.yaw0) * min_jerk_vel(tau) / span + channel_jitter_vel(3, t);
  e.pitch = base_pitch_ + channel_jitter(4, t);
  e.dpitch = channel_jitter_vel(4, t);
  e.roll = base_roll_ + channel_jitter(5, t);
  e.droll = channel_jitter_vel(5, t);
  return e;
}

geom::Pose Trajectory::pose(double t) const {
  const Phase& ph = phase_at(t);
  const double span = ph.t1 - ph.t0;
  const double tau = std::clamp((t - ph.t0) / span, 0.0, 1.0);
  const double s = min_jerk(tau);
  geom::Pose p;
  p.position = ph.pos0 + (ph.pos1 - ph.pos0) * s +
               geom::Vec3{channel_jitter(0, t), channel_jitter(1, t), channel_jitter(2, t)};
  const EulerState e = euler_state(t);
  p.orientation = geom::Mat3::from_euler_zyx(e.yaw, e.pitch, e.roll);
  return p;
}

geom::Vec3 Trajectory::velocity(double t) const {
  const Phase& ph = phase_at(t);
  const double span = ph.t1 - ph.t0;
  const double tau = std::clamp((t - ph.t0) / span, 0.0, 1.0);
  const double ds = min_jerk_vel(tau) / span;
  return (ph.pos1 - ph.pos0) * ds +
         geom::Vec3{channel_jitter_vel(0, t), channel_jitter_vel(1, t),
                    channel_jitter_vel(2, t)};
}

geom::Vec3 Trajectory::acceleration(double t) const {
  const Phase& ph = phase_at(t);
  const double span = ph.t1 - ph.t0;
  const double tau = std::clamp((t - ph.t0) / span, 0.0, 1.0);
  const double dds = min_jerk_acc(tau) / (span * span);
  return (ph.pos1 - ph.pos0) * dds +
         geom::Vec3{channel_jitter_acc(0, t), channel_jitter_acc(1, t),
                    channel_jitter_acc(2, t)};
}

geom::Vec3 Trajectory::angular_rate_body(double t) const {
  // ZYX Euler-rate to body-rate mapping:
  // wb = [droll - dyaw*sin(pitch),
  //       dpitch*cos(roll) + dyaw*cos(pitch)*sin(roll),
  //       -dpitch*sin(roll) + dyaw*cos(pitch)*cos(roll)].
  const EulerState e = euler_state(t);
  const double sp = std::sin(e.pitch), cp = std::cos(e.pitch);
  const double sr = std::sin(e.roll), cr = std::cos(e.roll);
  return {e.droll - e.dyaw * sp, e.dpitch * cr + e.dyaw * cp * sr,
          -e.dpitch * sr + e.dyaw * cp * cr};
}

geom::Vec3 Trajectory::specific_force_body(double t) const {
  const geom::Pose p = pose(t);
  const geom::Vec3 a_world = acceleration(t);
  const geom::Vec3 g_world{0.0, 0.0, -kGravity};
  return p.orientation.transpose() * (a_world - g_world);
}

geom::Vec3 Trajectory::point_position(const geom::Vec3& body_point, double t) const {
  return pose(t).to_world(body_point);
}

TrajectoryBuilder::TrajectoryBuilder(const geom::Vec3& start_position, double start_yaw)
    : position_(start_position), yaw_(start_yaw) {}

TrajectoryBuilder& TrajectoryBuilder::hold(double duration) {
  require(duration > 0.0, "TrajectoryBuilder::hold: duration must be positive");
  phases_.push_back({time_, time_ + duration, position_, position_, yaw_, yaw_});
  time_ += duration;
  return *this;
}

TrajectoryBuilder& TrajectoryBuilder::slide_mic_axis(double distance, double duration) {
  require(duration > 0.0, "TrajectoryBuilder::slide_mic_axis: duration must be positive");
  require(std::abs(distance) > 0.0, "TrajectoryBuilder::slide_mic_axis: zero distance");
  // Body -y axis in world coordinates for the current yaw (tilt is a small
  // perturbation applied by the jitter model, not part of the keyposes).
  const geom::Vec3 dir{std::sin(yaw_), -std::cos(yaw_), 0.0};
  const geom::Vec3 target = position_ + dir * distance;
  phases_.push_back({time_, time_ + duration, position_, target, yaw_, yaw_});
  slides_.push_back({time_, time_ + duration, position_, target});
  position_ = target;
  time_ += duration;
  return *this;
}

TrajectoryBuilder& TrajectoryBuilder::rotate_to(double yaw, double duration) {
  require(duration > 0.0, "TrajectoryBuilder::rotate_to: duration must be positive");
  phases_.push_back({time_, time_ + duration, position_, position_, yaw_, yaw});
  yaw_ = yaw;
  time_ += duration;
  return *this;
}

TrajectoryBuilder& TrajectoryBuilder::change_stature(double dz, double duration) {
  require(duration > 0.0, "TrajectoryBuilder::change_stature: duration must be positive");
  const geom::Vec3 target = position_ + geom::Vec3{0.0, 0.0, dz};
  phases_.push_back({time_, time_ + duration, position_, target, yaw_, yaw_});
  position_ = target;
  time_ += duration;
  return *this;
}

Trajectory TrajectoryBuilder::build(const JitterParams& jitter, Rng& rng) const {
  require(!phases_.empty(), "TrajectoryBuilder::build: empty timeline");
  Trajectory t(phases_, jitter, rng);
  for (const SlideInfo& s : slides_) t.annotate_slide(s);
  return t;
}

}  // namespace hyperear::sim
