#include "sim/image_source.hpp"

#include <cmath>
#include <cstdlib>

#include "common/error.hpp"

namespace hyperear::sim {

namespace {

/// 1D image coordinate of `x` in a segment [0, L] for image index m:
/// standard mirror expansion x_m = 2*k*L + (-1)^m-style reflection.
double image_coordinate(double x, double extent, int m) {
  // Even m: translate by m*extent; odd m: mirror then translate.
  if (m % 2 == 0) return x + static_cast<double>(m) * extent;
  return -x + static_cast<double>(m + 1) * extent;
}

}  // namespace

ImageSourceModel::ImageSourceModel(const RoomSpec& room, const geom::Vec3& source)
    : room_(room) {
  require(room.length > 0.0 && room.width > 0.0 && room.height > 0.0,
          "ImageSourceModel: room dimensions must be positive");
  require(room.absorption >= 0.0 && room.absorption <= 1.0,
          "ImageSourceModel: absorption must be in [0, 1]");
  require(room.scattering >= 0.0 && room.scattering < 1.0,
          "ImageSourceModel: scattering must be in [0, 1)");
  require(room.max_order >= 0, "ImageSourceModel: max_order must be >= 0");
  require(source.x > 0.0 && source.x < room.length && source.y > 0.0 &&
              source.y < room.width && source.z > 0.0 && source.z < room.height,
          "ImageSourceModel: source must be strictly inside the room");

  const double reflection = std::sqrt(1.0 - room.absorption) * (1.0 - room.scattering);
  const int k = room.max_order;
  for (int mx = -k; mx <= k; ++mx) {
    for (int my = -k; my <= k; ++my) {
      for (int mz = -k; mz <= k; ++mz) {
        const int order = std::abs(mx) + std::abs(my) + std::abs(mz);
        if (order > k) continue;
        ImagePath p;
        p.order = order;
        p.image = {image_coordinate(source.x, room.length, mx),
                   image_coordinate(source.y, room.width, my),
                   image_coordinate(source.z, room.height, mz)};
        p.gain = std::pow(reflection, order);
        paths_.push_back(p);
      }
    }
  }
}

double ImageSourceModel::amplitude_at(const ImagePath& p, const geom::Vec3& receiver) const {
  const double d = std::max(distance(p.image, receiver), 0.1);
  return p.gain / d;
}

double ImageSourceModel::delay_at(const ImagePath& p, const geom::Vec3& receiver,
                                  double sound_speed) const {
  require(sound_speed > 0.0, "delay_at: sound speed must be positive");
  return distance(p.image, receiver) / sound_speed;
}

}  // namespace hyperear::sim
