#pragma once

#include <vector>

#include "geom/vec3.hpp"

/// @file image_source.hpp
/// Shoebox-room multipath via the image-source method — the standard
/// room-acoustics simulator. Substitutes for the meeting room and shopping
/// mall of the paper's evaluation: reflections arrive after the direct path
/// with attenuated amplitude and perturb the matched-filter peak exactly the
/// way real reverberation does.

namespace hyperear::sim {

/// Axis-aligned shoebox room with a uniform wall absorption coefficient.
struct RoomSpec {
  double length = 17.0;  ///< x extent (m); meeting room is 17 x 13 (paper)
  double width = 13.0;   ///< y extent (m)
  double height = 3.0;   ///< z extent (m)
  /// Energy absorption coefficient of the walls; amplitude reflection
  /// factor is sqrt(1 - absorption).
  double absorption = 0.4;
  /// Scattering coefficient in [0, 1): the fraction of reflected energy
  /// that is diffused rather than specularly mirrored. Image sources model
  /// only the specular part, so each bounce's coherent amplitude is further
  /// scaled by (1 - scattering). Furnished rooms (theatre seating, people)
  /// scatter heavily; bare glass/stone corridors barely.
  double scattering = 0.0;
  /// Maximum reflection order to generate (0 = direct path only).
  int max_order = 2;
};

/// One propagation path: a (possibly reflected) image of the source.
struct ImagePath {
  geom::Vec3 image;     ///< image-source position
  double gain = 1.0;    ///< product of wall reflection factors (excl. 1/r)
  int order = 0;        ///< number of reflections
};

/// Image-source expansion of a static source inside a room.
class ImageSourceModel {
 public:
  /// `source` must lie strictly inside the room.
  ImageSourceModel(const RoomSpec& room, const geom::Vec3& source);

  [[nodiscard]] const RoomSpec& room() const { return room_; }
  [[nodiscard]] const std::vector<ImagePath>& paths() const { return paths_; }

  /// Amplitude of path `p` at a receiver: gain / max(distance, 0.1).
  [[nodiscard]] double amplitude_at(const ImagePath& p, const geom::Vec3& receiver) const;

  /// Propagation delay of path `p` to a receiver at the given sound speed.
  [[nodiscard]] double delay_at(const ImagePath& p, const geom::Vec3& receiver,
                                double sound_speed) const;

 private:
  RoomSpec room_;
  std::vector<ImagePath> paths_;
};

}  // namespace hyperear::sim
