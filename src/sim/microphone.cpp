#include "sim/microphone.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hyperear::sim {

void quantize_inplace(std::span<double> samples, const AdcSpec& adc) {
  require(adc.bits >= 2 && adc.bits <= 32, "quantize_inplace: bits out of range");
  require(adc.full_scale > 0.0, "quantize_inplace: full scale must be positive");
  const double levels = std::pow(2.0, adc.bits - 1);  // signed range
  const double step = adc.full_scale / levels;
  for (auto& s : samples) {
    const double clipped = std::clamp(s, -adc.full_scale, adc.full_scale - step);
    s = std::round(clipped / step) * step;
  }
}

void add_self_noise_inplace(std::span<double> samples, const AdcSpec& adc, Rng& rng) {
  if (adc.self_noise_rms <= 0.0) return;
  for (auto& s : samples) s += rng.gaussian(0.0, adc.self_noise_rms);
}

double sample_instant(const AdcSpec& adc, std::size_t n) {
  return static_cast<double>(n) / effective_sample_rate(adc);
}

double effective_sample_rate(const AdcSpec& adc) {
  return adc.sample_rate * (1.0 + adc.clock_offset_ppm * 1e-6);
}

std::size_t sample_count(const AdcSpec& adc, double duration) {
  require(duration >= 0.0, "sample_count: negative duration");
  return static_cast<std::size_t>(std::floor(duration * effective_sample_rate(adc)));
}

}  // namespace hyperear::sim
