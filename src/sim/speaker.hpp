#pragma once

#include "dsp/chirp.hpp"
#include "geom/vec3.hpp"

/// @file speaker.hpp
/// The acoustic beacon: a cheap desktop speaker attached to the target
/// object, periodically playing the up/down chirp every 200 ms from an
/// unsynchronized clock (paper Sections II-A and VII-A).

namespace hyperear::sim {

/// Beacon configuration.
struct SpeakerSpec {
  dsp::ChirpParams chirp;
  double period_s = 0.2;          ///< nominal interval between chirp starts
  double clock_offset_ppm = 0.0;  ///< crystal offset; actual period = T*(1+ppm*1e-6)
  double start_offset_s = 0.05;   ///< emission time of chirp 0 (unknown to the phone)
  /// Source amplitude at 1 m under free-field spreading, in ADC full-scale
  /// units (0.5 leaves headroom against clipping for near placements).
  double amplitude_at_1m = 0.5;
};

/// The paper's evaluation beacon: an audible 2-6.4 kHz chirp every 200 ms.
[[nodiscard]] SpeakerSpec audible_beacon();

/// The future-work variant (paper Section IX): a near-ultrasonic
/// 17-21.2 kHz chirp, inaudible to most adults but right where phone
/// microphones roll off — bench_ext_inaudible quantifies the cost.
[[nodiscard]] SpeakerSpec inaudible_beacon();

/// A second audible band (7-11 kHz) that does not overlap the default
/// beacon: two tags can transmit simultaneously and be separated by their
/// matched filters (FDMA multi-tag operation; see examples/multi_tag.cpp).
[[nodiscard]] SpeakerSpec secondary_band_beacon();

/// Emission schedule and waveform of the beacon.
class Speaker {
 public:
  Speaker(const SpeakerSpec& spec, const geom::Vec3& position);

  [[nodiscard]] const SpeakerSpec& spec() const { return spec_; }
  [[nodiscard]] const geom::Vec3& position() const { return position_; }
  [[nodiscard]] const dsp::Chirp& chirp() const { return chirp_; }

  /// True (wall-clock) period between chirp starts, including clock offset.
  [[nodiscard]] double true_period() const;

  /// Emission (start) time of the i-th chirp.
  [[nodiscard]] double emission_time(int index) const;

  /// Index of the first chirp emitted at or after time t.
  [[nodiscard]] int first_chirp_after(double t) const;

  /// Source waveform value at wall-clock time t (sum over the single active
  /// chirp; chirps never overlap because duration < period).
  [[nodiscard]] double waveform(double t) const;

 private:
  SpeakerSpec spec_;
  geom::Vec3 position_;
  dsp::Chirp chirp_;
};

}  // namespace hyperear::sim
