#include "sim/speaker.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hyperear::sim {

SpeakerSpec audible_beacon() { return {}; }

SpeakerSpec inaudible_beacon() {
  SpeakerSpec spec;
  spec.chirp.freq_low_hz = 17000.0;
  spec.chirp.freq_high_hz = 21200.0;
  return spec;
}

SpeakerSpec secondary_band_beacon() {
  SpeakerSpec spec;
  spec.chirp.freq_low_hz = 7000.0;
  spec.chirp.freq_high_hz = 11000.0;
  return spec;
}

Speaker::Speaker(const SpeakerSpec& spec, const geom::Vec3& position)
    : spec_(spec), position_(position), chirp_(spec.chirp) {
  require(spec.period_s > spec.chirp.duration_s,
          "Speaker: period must exceed the chirp duration");
  require(spec.start_offset_s >= 0.0, "Speaker: start offset must be non-negative");
}

double Speaker::true_period() const {
  return spec_.period_s * (1.0 + spec_.clock_offset_ppm * 1e-6);
}

double Speaker::emission_time(int index) const {
  require(index >= 0, "Speaker::emission_time: negative index");
  return spec_.start_offset_s + static_cast<double>(index) * true_period();
}

int Speaker::first_chirp_after(double t) const {
  if (t <= spec_.start_offset_s) return 0;
  return static_cast<int>(std::ceil((t - spec_.start_offset_s) / true_period()));
}

double Speaker::waveform(double t) const {
  if (t < spec_.start_offset_s) return 0.0;
  const double rel = t - spec_.start_offset_s;
  const auto idx = static_cast<long long>(rel / true_period());
  const double within = rel - static_cast<double>(idx) * true_period();
  return spec_.amplitude_at_1m * chirp_.value(within);
}

}  // namespace hyperear::sim
