#include "sim/phone.hpp"

#include <cmath>

#include "common/units.hpp"

namespace hyperear::sim {

double AdcSpec::response_at(double freq_hz) const {
  if (response_cutoff_hz <= 0.0) return 1.0;
  const double ratio = std::pow(freq_hz / response_cutoff_hz, 2 * response_order);
  return 1.0 / std::sqrt(1.0 + ratio);
}

PhoneSpec galaxy_s4() {
  PhoneSpec spec;
  spec.name = "Galaxy S4";
  spec.mic_separation = kGalaxyS4MicSeparation;
  return spec;
}

PhoneSpec galaxy_note3() {
  PhoneSpec spec;
  spec.name = "Galaxy Note3";
  spec.mic_separation = kGalaxyNote3MicSeparation;
  // The paper observes slightly worse accuracy on the Note3 despite its
  // wider mic separation; its larger body is harder to slide stably and its
  // sensors are a bit noisier in our model.
  spec.imu.accel_noise_rms = 0.035;
  spec.imu.accel_bias_sigma = 0.024;
  spec.adc.self_noise_rms = 2.5e-4;
  return spec;
}

}  // namespace hyperear::sim
