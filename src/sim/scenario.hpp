#pragma once

#include <vector>

#include "common/rng.hpp"
#include "imu/imu_model.hpp"
#include "sim/acoustic_renderer.hpp"
#include "sim/environment.hpp"
#include "sim/phone.hpp"
#include "sim/speaker.hpp"
#include "sim/trajectory.hpp"

/// @file scenario.hpp
/// End-to-end experiment composition: places the speaker and the phone in a
/// room, scripts the paper's measurement protocol (static calibration head,
/// back-and-forth slides, optional stature change for 3D), and produces the
/// recording bundle the HyperEar pipeline consumes: stereo audio, IMU data,
/// and ground truth for scoring.

namespace hyperear::sim {

/// Protocol and placement parameters of one localization session.
struct ScenarioConfig {
  PhoneSpec phone = galaxy_s4();
  Environment environment = meeting_room_quiet();
  SpeakerSpec speaker;

  double speaker_distance = 5.0;  ///< horizontal phone-to-speaker range (m)
  double speaker_height = 0.5;    ///< speaker stature (paper Section VII-D)
  double phone_height = 1.3;      ///< initial phone stature (hand height)

  int slides_per_stature = 5;     ///< paper: five slides per stature
  double slide_distance = 0.55;   ///< nominal D' (the accepted 50-60 cm band)
  double slide_duration = 1.0;    ///< seconds per stroke
  double hold_duration = 0.8;     ///< stationary dwell between strokes
  double calibration_duration = 4.0;  ///< static head used for SFO estimation

  bool two_statures = false;      ///< true = full 3D protocol (Section VI-B)
  double stature_change = 0.45;   ///< vertical move between sessions (m)

  JitterParams jitter = ruler_jitter();
  /// The user stops rolling when SDF reads zero TDoA; residual aiming error
  /// (std-dev, degrees). bench_fig07 measures what SDF actually achieves.
  double in_direction_error_deg = 1.0;

  double speaker_clock_ppm_sigma = 25.0;  ///< crystal tolerance, drawn per run
  double phone_clock_ppm_sigma = 15.0;
  /// Randomize the phone/speaker placement inside the room per session
  /// (range preserved), mirroring the paper's 5 speaker x 5 test positions.
  bool randomize_placement = true;

  /// Additional beacons transmitting during the session (multi-tag / FDMA
  /// deployments). Positions are relative to the phone's start: `distance`
  /// along the line of sight, `lateral_offset` across it.
  struct Interferer {
    SpeakerSpec spec;
    double distance = 3.0;
    double lateral_offset = 2.0;
    double height = 0.8;
  };
  std::vector<Interferer> interferers;

  RenderOptions render;
};

/// Everything the pipeline is allowed to see, plus scoring ground truth.
struct Session {
  StereoRecording audio;
  imu::ImuData imu;

  /// Ground truth (scoring only — the pipeline must not read these).
  struct Truth {
    geom::Vec3 speaker_position;
    geom::Vec3 phone_start_position;
    double in_direction_yaw = 0.0;  ///< the yaw the phone actually slid at
    double true_yaw_error_rad = 0.0;
    std::vector<SlideInfo> slides;
    double speaker_true_period = 0.2;
    double stature_change_start = 0.0;  ///< time the stature move begins (s), 0 if none
    double stature_change_end = 0.0;
  } truth;

  /// Session knowledge the pipeline legitimately has (the user's own
  /// position, the beacon's nominal period, which side the speaker is on).
  struct Prior {
    geom::Vec3 phone_start_position;
    double believed_yaw = 0.0;     ///< in-direction yaw from SDF
    double nominal_period = 0.2;   ///< the beacon's advertised period
    dsp::ChirpParams chirp;        ///< known beacon waveform
    double calibration_duration = 4.0;
    bool speaker_on_positive_x = true;  ///< side resolved by SDF
    bool two_statures = false;
    double phone_height = 1.3;
  } prior;

  ScenarioConfig config;
};

/// Build one full localization session (2D single-stature or 3D
/// two-stature per config.two_statures).
[[nodiscard]] Session make_localization_session(const ScenarioConfig& config, Rng& rng);

/// A rotation-sweep session for Speaker Direction Finding studies (Fig. 7):
/// the phone yaws from `yaw_start` to `yaw_end` over `sweep_duration`
/// while recording. Ground-truth slides are empty.
[[nodiscard]] Session make_rotation_sweep_session(const ScenarioConfig& config,
                                                  double yaw_start, double yaw_end,
                                                  double sweep_duration, Rng& rng);

}  // namespace hyperear::sim
