#pragma once

#include <vector>

#include "common/rng.hpp"

/// @file noise.hpp
/// Ambient noise synthesis for the two evaluation environments (paper
/// Section VII-E). The distinguishing property the experiment depends on is
/// *spectral overlap with the chirp band*:
///
///   - meeting-room chatter is human voice, mostly below 2 kHz, which the
///     band-pass of ASP removes almost entirely;
///   - shopping-mall music and announcements are broadband and overlap the
///     2-6.4 kHz chirp band;
///   - busy-hour mall noise is additionally non-stationary (bursts), so the
///     instantaneous SNR dips well below its average.

namespace hyperear::sim {

/// Noise families.
enum class NoiseType {
  kWhite,       ///< flat floor (lab silence + electronics)
  kVoice,       ///< low-passed chatter with syllabic amplitude modulation
  kMallMusic,   ///< broadband music/announcements overlapping the chirp band
  kMallBusy,    ///< mall music plus strong non-stationary crowd bursts
};

/// Generate `n` samples of the given noise type at sample rate `fs`,
/// approximately unit RMS before calibration.
[[nodiscard]] std::vector<double> make_noise(NoiseType type, std::size_t n, double fs,
                                             Rng& rng);

/// Scale the noise (in place) so its power inside [low_hz, high_hz] equals
/// `target_band_power`. Returns the applied scale factor. Requires the noise
/// to have nonzero power in the band.
double calibrate_band_power(std::vector<double>& noise, double fs, double low_hz,
                            double high_hz, double target_band_power);

}  // namespace hyperear::sim
