#pragma once

#include <vector>

#include "common/rng.hpp"
#include "geom/rotation.hpp"
#include "geom/vec3.hpp"

/// @file trajectory.hpp
/// Phone motion model: piecewise minimum-jerk keypose moves plus a
/// hand-tremor model, with analytic position, velocity, acceleration and
/// body angular rate. Substitutes for the ten volunteers (and the slide
/// ruler) of the paper's evaluation — see DESIGN.md.
///
/// Minimum-jerk profiles are the standard model for point-to-point human
/// arm movements; their velocity is exactly zero at both endpoints, which
/// is the assumption PDE's drift correction (Eq. 4) relies on.

namespace hyperear::sim {

/// Minimum-jerk position fraction s(tau) = 10 tau^3 - 15 tau^4 + 6 tau^5,
/// tau in [0,1]; clamped outside.
[[nodiscard]] double min_jerk(double tau);
/// First derivative ds/dtau.
[[nodiscard]] double min_jerk_vel(double tau);
/// Second derivative d2s/dtau2.
[[nodiscard]] double min_jerk_acc(double tau);

/// Hand-tremor / instability model: sums of random sinusoids added to the
/// position (per world axis), the yaw, and the tilt (pitch/roll).
///
/// Physiological tremor is acceleration-bounded, not displacement-bounded:
/// the positional tremor is parameterized by its acceleration amplitude and
/// each sinusoid's displacement is a / (2 pi f)^2, so high-frequency
/// components contribute sub-millimeter displacement but realistic
/// acceleration noise. Angular instability is a slow wander instead.
struct JitterParams {
  double pos_accel_rms = 0.0;   ///< m/s^2, total positional tremor scale
  double yaw_amplitude = 0.0;   ///< radians (slow wander)
  double tilt_amplitude = 0.0;  ///< radians (pitch and roll, slow wander)
  double tremor_min_hz = 2.0;   ///< positional tremor band
  double tremor_max_hz = 10.0;
  double wander_min_hz = 0.15;  ///< angular wander band
  double wander_max_hz = 1.5;
  int components = 4;           ///< sinusoids per channel
  double base_tilt_sigma = 0.0; ///< constant per-session pitch/roll draw

  /// True when the phone is hand-held (vs. mounted on the slide ruler).
  [[nodiscard]] bool hand_held() const { return pos_accel_rms > 0.0; }
};

/// Typical hand-held instability (a few millimeters of tremor, a couple of
/// degrees of wander).
[[nodiscard]] JitterParams hand_jitter();
/// Phone mounted on the level slide ruler: no jitter, no tilt.
[[nodiscard]] JitterParams ruler_jitter();

/// One keypose-to-keypose move (or a hold when the keyposes coincide).
struct Phase {
  double t0 = 0.0;
  double t1 = 0.0;
  geom::Vec3 pos0, pos1;  ///< phone center, world frame
  double yaw0 = 0.0, yaw1 = 0.0;
};

/// Ground-truth annotation of one slide for tests and benches.
struct SlideInfo {
  double t0 = 0.0, t1 = 0.0;
  geom::Vec3 from, to;  ///< nominal keypose endpoints (jitter excluded)
};

/// Piecewise-smooth phone trajectory with analytic kinematics.
class Trajectory {
 public:
  Trajectory(std::vector<Phase> phases, const JitterParams& jitter, Rng& rng);

  [[nodiscard]] double duration() const;

  /// World pose of the phone center at time t (clamped to the timeline).
  [[nodiscard]] geom::Pose pose(double t) const;
  /// World velocity of the phone center.
  [[nodiscard]] geom::Vec3 velocity(double t) const;
  /// World acceleration of the phone center.
  [[nodiscard]] geom::Vec3 acceleration(double t) const;
  /// Body-frame angular rate (what an ideal gyro measures).
  [[nodiscard]] geom::Vec3 angular_rate_body(double t) const;
  /// Body-frame specific force (what an ideal accelerometer measures):
  /// R^T * (a_world - g_world), g_world = (0, 0, -g).
  [[nodiscard]] geom::Vec3 specific_force_body(double t) const;

  /// World position of a body-frame point (e.g. a microphone) at time t.
  [[nodiscard]] geom::Vec3 point_position(const geom::Vec3& body_point, double t) const;

  /// Slide annotations registered by the builder.
  [[nodiscard]] const std::vector<SlideInfo>& slides() const { return slides_; }
  void annotate_slide(const SlideInfo& info) { slides_.push_back(info); }

  /// Constant per-session tilt actually drawn (radians).
  [[nodiscard]] double base_pitch() const { return base_pitch_; }
  [[nodiscard]] double base_roll() const { return base_roll_; }

 private:
  struct Sinusoid {
    double amp = 0.0;
    double freq = 0.0;  ///< Hz
    double phase = 0.0;
  };
  /// Channels: 0..2 position xyz, 3 yaw, 4 pitch, 5 roll.
  static constexpr int kChannels = 6;

  [[nodiscard]] const Phase& phase_at(double t) const;
  [[nodiscard]] double channel_jitter(int channel, double t) const;
  [[nodiscard]] double channel_jitter_vel(int channel, double t) const;
  [[nodiscard]] double channel_jitter_acc(int channel, double t) const;
  /// Euler angles and their time derivatives at t (yaw, pitch, roll).
  struct EulerState {
    double yaw, pitch, roll;
    double dyaw, dpitch, droll;
  };
  [[nodiscard]] EulerState euler_state(double t) const;

  std::vector<Phase> phases_;
  std::vector<SlideInfo> slides_;
  std::vector<Sinusoid> jitter_[kChannels];
  double base_pitch_ = 0.0;
  double base_roll_ = 0.0;
};

/// Incremental construction of a session trajectory. The builder tracks the
/// current keypose; every call appends one contiguous phase.
class TrajectoryBuilder {
 public:
  TrajectoryBuilder(const geom::Vec3& start_position, double start_yaw);

  /// Stay still for `duration` seconds.
  TrajectoryBuilder& hold(double duration);
  /// Slide along the phone's body -y axis (the microphone axis, toward the
  /// bottom edge) by `distance` meters (negative slides the other way);
  /// annotated as a slide.
  TrajectoryBuilder& slide_mic_axis(double distance, double duration);
  /// Rotate in place to an absolute yaw.
  TrajectoryBuilder& rotate_to(double yaw, double duration);
  /// Move vertically by dz (stature change between the two 3D sessions).
  TrajectoryBuilder& change_stature(double dz, double duration);

  /// Current end time of the timeline.
  [[nodiscard]] double current_time() const { return time_; }
  [[nodiscard]] const geom::Vec3& current_position() const { return position_; }
  [[nodiscard]] double current_yaw() const { return yaw_; }

  /// Finalize. `rng` seeds the jitter realization and the base tilt.
  [[nodiscard]] Trajectory build(const JitterParams& jitter, Rng& rng) const;

 private:
  std::vector<Phase> phases_;
  std::vector<SlideInfo> slides_;
  geom::Vec3 position_;
  double yaw_;
  double time_ = 0.0;
};

}  // namespace hyperear::sim
