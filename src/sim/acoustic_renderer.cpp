#include "sim/acoustic_renderer.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "dsp/spectrum.hpp"

namespace hyperear::sim {

namespace {

/// Arrival time of a wavefront emitted at `t_emit` along path `p` to a
/// moving microphone: fixed-point iteration t_arr = t_emit + delay(pos(t_arr)).
/// Two iterations are ample for hand-speed motion (v << c).
double arrival_time(const ImageSourceModel& ism, const ImagePath& p,
                    const Trajectory& traj, const geom::Vec3& mic_body, double t_emit,
                    double sound_speed) {
  double t_arr = t_emit;
  for (int iter = 0; iter < 3; ++iter) {
    const geom::Vec3 pos = traj.point_position(mic_body, t_arr);
    t_arr = t_emit + ism.delay_at(p, pos, sound_speed);
  }
  return t_arr;
}

void render_mic(std::vector<double>& buf, const Speaker& speaker,
                const ImageSourceModel& ism, const Trajectory& traj,
                const geom::Vec3& mic_body, const AdcSpec& adc, double duration,
                const RenderOptions& options) {
  const double fs_eff = effective_sample_rate(adc);
  const double chirp_dur = speaker.spec().chirp.duration_s;
  const double src_amp = speaker.spec().amplitude_at_1m;
  const double sound_speed = options.sound_speed;

  int chirp_index = 0;
  while (true) {
    const double t_emit = speaker.emission_time(chirp_index);
    if (t_emit > duration) break;
    ++chirp_index;
    for (const ImagePath& path : ism.paths()) {
      const double t_start =
          arrival_time(ism, path, traj, mic_body, t_emit, sound_speed);
      const double t_end =
          arrival_time(ism, path, traj, mic_body, t_emit + chirp_dur, sound_speed);
      if (t_start >= duration || t_end <= t_start) continue;
      // Amplitude at the chirp midpoint (variation across one chirp is tiny).
      const geom::Vec3 mid_pos =
          traj.point_position(mic_body, 0.5 * (t_start + t_end));
      double amp = src_amp * ism.amplitude_at(path, mid_pos);
      // A floor-standing obstruction shadows the direct line and anything
      // passing below it: the order-0 path and the floor-bounce image
      // (below-floor mirror).
      if (path.order == 0 || (path.order == 1 && path.image.z < 0.0)) {
        amp *= options.direct_path_gain;
      }
      if (amp < 1e-6) continue;
      // Linearized time warp: a sample at true time ts hears chirp-relative
      // time u = (ts - t_start) * chirp_dur / (t_end - t_start).
      const double warp = chirp_dur / (t_end - t_start);
      auto n0 = static_cast<long long>(std::ceil(t_start * fs_eff));
      auto n1 = static_cast<long long>(std::floor(t_end * fs_eff));
      n0 = std::max<long long>(n0, 0);
      n1 = std::min<long long>(n1, static_cast<long long>(buf.size()) - 1);
      for (long long n = n0; n <= n1; ++n) {
        const double ts = static_cast<double>(n) / fs_eff;
        const double u = (ts - t_start) * warp;
        double v = amp * speaker.chirp().value(u);
        if (options.mic_response) {
          // Stationary-phase approximation: a sweep's energy at each
          // instant sits at its instantaneous frequency, so the mic's
          // magnitude response can be applied pointwise.
          v *= adc.response_at(speaker.chirp().instantaneous_frequency(u));
        }
        buf[static_cast<std::size_t>(n)] += v;
      }
    }
  }
}

}  // namespace

StereoRecording render_audio_multi(const std::vector<Speaker>& speakers,
                                   const PhoneSpec& phone, const Environment& environment,
                                   const Trajectory& trajectory, double duration, Rng& rng,
                                   const RenderOptions& options) {
  require(!speakers.empty(), "render_audio_multi: need at least one speaker");
  require(duration > 0.0, "render_audio: duration must be positive");
  require(options.sound_speed > 0.0, "render_audio: sound speed must be positive");

  const AdcSpec& adc = phone.adc;
  const std::size_t n = sample_count(adc, duration);
  require(n > 0, "render_audio: zero-length recording");

  StereoRecording rec;
  rec.sample_rate = adc.sample_rate;
  rec.mic1.assign(n, 0.0);
  rec.mic2.assign(n, 0.0);

  for (const Speaker& speaker : speakers) {
    const ImageSourceModel ism(environment.room, speaker.position());
    render_mic(rec.mic1, speaker, ism, trajectory, phone.mic1_body(), adc, duration,
               options);
    render_mic(rec.mic2, speaker, ism, trajectory, phone.mic2_body(), adc, duration,
               options);
  }

  if (options.add_noise) {
    // Direct-path signal power of the PRIMARY beacon at the phone's initial
    // position sets the noise calibration target.
    const Speaker& primary = speakers.front();
    const geom::Vec3 mic1_start = trajectory.point_position(phone.mic1_body(), 0.0);
    const double direct_dist =
        std::max(distance(primary.position(), mic1_start), 0.1);
    const double amp = primary.spec().amplitude_at_1m / direct_dist;
    const std::vector<double> chirp_ref = primary.chirp().sample(adc.sample_rate);
    const double sig_power = amp * amp * dsp::signal_power(chirp_ref);
    const double noise_power = sig_power / db_to_power(environment.snr_db);
    // The paper's Fig. 19 SNR labels are broadband level ratios: calibrate
    // the noise's total power. A 9 dB "chatting" floor is then mostly below
    // 2 kHz and is removed by ASP's band-pass, while mall noise overlaps the
    // chirp band — exactly the contrast Section VII-E reports.
    const double band_lo = 50.0;
    const double band_hi = 0.98 * adc.sample_rate / 2.0;

    Rng noise_rng1 = rng.split();
    Rng noise_rng2 = rng.split();
    std::vector<double> noise1 = make_noise(environment.noise, n, adc.sample_rate, noise_rng1);
    std::vector<double> noise2 = make_noise(environment.noise, n, adc.sample_rate, noise_rng2);
    calibrate_band_power(noise1, adc.sample_rate, band_lo, band_hi, noise_power);
    calibrate_band_power(noise2, adc.sample_rate, band_lo, band_hi, noise_power);
    for (std::size_t i = 0; i < n; ++i) {
      rec.mic1[i] += noise1[i];
      rec.mic2[i] += noise2[i];
    }
  }

  add_self_noise_inplace(rec.mic1, adc, rng);
  add_self_noise_inplace(rec.mic2, adc, rng);
  if (options.quantize) {
    quantize_inplace(rec.mic1, adc);
    quantize_inplace(rec.mic2, adc);
  }
  return rec;
}

StereoRecording render_audio(const Speaker& speaker, const PhoneSpec& phone,
                             const Environment& environment, const Trajectory& trajectory,
                             double duration, Rng& rng, const RenderOptions& options) {
  return render_audio_multi({speaker}, phone, environment, trajectory, duration, rng,
                            options);
}

}  // namespace hyperear::sim
