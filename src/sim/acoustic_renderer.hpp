#pragma once

#include <vector>

#include "common/rng.hpp"
#include "sim/environment.hpp"
#include "sim/image_source.hpp"
#include "sim/microphone.hpp"
#include "sim/phone.hpp"
#include "sim/speaker.hpp"
#include "sim/trajectory.hpp"

/// @file acoustic_renderer.hpp
/// Sample-accurate synthesis of the stereo recording a moving phone makes
/// of the beacon inside a room.
///
/// For every emitted chirp and every image-source path, the renderer
/// computes the exact arrival times of the chirp's start and end at the
/// (moving) microphone by fixed-point iteration on the propagation delay,
/// then evaluates the analytic chirp waveform at each skewed ADC sampling
/// instant with the delay linearly interpolated across the chirp — a
/// first-order-Doppler-correct rendering with no resampling error.
/// Ambient noise is calibrated so the direct-path chirp has the requested
/// in-band SNR at the phone's initial position; finally mic self-noise and
/// 16-bit quantization are applied.

namespace hyperear::sim {

/// The simulated stereo capture.
struct StereoRecording {
  double sample_rate = 44100.0;  ///< nominal (phone-reported) rate
  std::vector<double> mic1;      ///< top microphone
  std::vector<double> mic2;      ///< bottom microphone
};

/// Rendering options.
struct RenderOptions {
  double sound_speed = 343.0;
  bool add_noise = true;
  bool quantize = true;
  /// Amplitude factor modeling a floor-standing obstruction (cabinet,
  /// shelf) between user and beacon: it shadows the DIRECT path and the
  /// floor bounce (which passes under the sight line), while wall and
  /// ceiling reflections still arrive. 1.0 = clear line of sight (the
  /// paper's Section IX NLoS limitation, made concrete).
  double direct_path_gain = 1.0;
  /// Apply the microphone's frequency response (AdcSpec::response_at) at
  /// the chirp's instantaneous frequency — the stationary-phase
  /// approximation, accurate for sweeps. Models the high-frequency rolloff
  /// that distorts inaudible beacons.
  bool mic_response = true;
};

/// Render `duration` wall-clock seconds of stereo audio of one beacon.
[[nodiscard]] StereoRecording render_audio(const Speaker& speaker, const PhoneSpec& phone,
                                           const Environment& environment,
                                           const Trajectory& trajectory, double duration,
                                           Rng& rng, const RenderOptions& options = {});

/// Render several simultaneously transmitting beacons (e.g. FDMA multi-tag
/// deployments). Noise is calibrated against the FIRST speaker's direct
/// path; all speakers share the room. Requires a non-empty speaker list.
[[nodiscard]] StereoRecording render_audio_multi(const std::vector<Speaker>& speakers,
                                                 const PhoneSpec& phone,
                                                 const Environment& environment,
                                                 const Trajectory& trajectory,
                                                 double duration, Rng& rng,
                                                 const RenderOptions& options = {});

}  // namespace hyperear::sim
