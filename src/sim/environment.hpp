#pragma once

#include <string>

#include "sim/image_source.hpp"
#include "sim/noise.hpp"

/// @file environment.hpp
/// The two indoor environments of the evaluation (paper Section VII-A) at
/// the four noise conditions of Fig. 19.

namespace hyperear::sim {

/// A complete acoustic environment: room geometry, multipath strength, and
/// the ambient-noise condition calibrated by in-chirp-band SNR.
struct Environment {
  std::string name;
  RoomSpec room;
  NoiseType noise = NoiseType::kWhite;
  /// Target in-band SNR (dB) of the direct-path chirp at the phone's initial
  /// position (the paper "control[s] the volume of the speaker so that
  /// different SNR values are studied").
  double snr_db = 18.0;
};

/// 17 m x 13 m meeting room, volunteers keeping quiet (SNR > 15 dB).
[[nodiscard]] Environment meeting_room_quiet();

/// Meeting room with volunteers chatting (SNR = 9 dB; voice noise < 2 kHz).
[[nodiscard]] Environment meeting_room_chatting();

/// 95 m x 16.5 m mall corridor, off-peak soft music (SNR = 6 dB).
[[nodiscard]] Environment mall_off_peak();

/// Mall corridor at busy hours: crowd + announcements (SNR = 3 dB).
[[nodiscard]] Environment mall_busy_hour();

}  // namespace hyperear::sim
