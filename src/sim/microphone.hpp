#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "sim/phone.hpp"

/// @file microphone.hpp
/// ADC front-end model: 16-bit quantization at 44.1 kHz with electronic
/// self-noise and the phone audio clock's ppm skew. These are exactly the
/// hardware limits Section II-C identifies (limited sampling rate, and the
/// unsynchronized clocks that make SFO correction necessary).

namespace hyperear::sim {

/// Quantize a continuous-amplitude sample stream to the ADC's resolution,
/// clipping at full scale. Operates in place.
void quantize_inplace(std::span<double> samples, const AdcSpec& adc);

/// Add iid Gaussian self-noise to a stream (in place).
void add_self_noise_inplace(std::span<double> samples, const AdcSpec& adc, Rng& rng);

/// Sampling instants of the ADC in wall-clock (true) time: sample n is taken
/// at n / (fs * (1 + ppm*1e-6)). The renderer evaluates the acoustic field
/// at these skewed instants so the recording embeds the phone-vs-speaker
/// sampling frequency offset.
[[nodiscard]] double sample_instant(const AdcSpec& adc, std::size_t n);

/// Effective (true) sample rate of the skewed clock.
[[nodiscard]] double effective_sample_rate(const AdcSpec& adc);

/// Number of samples the ADC produces in `duration` wall-clock seconds.
[[nodiscard]] std::size_t sample_count(const AdcSpec& adc, double duration);

}  // namespace hyperear::sim
