#include "dsp/biquad.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hyperear::dsp {
namespace {

std::vector<double> tone(double freq, double fs, std::size_t n) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = std::sin(2.0 * kPi * freq * static_cast<double>(i) / fs);
  return x;
}

double steady_rms(const std::vector<double>& x) {
  double e = 0.0;
  const std::size_t lo = x.size() / 2;
  for (std::size_t i = lo; i < x.size(); ++i) e += x[i] * x[i];
  return std::sqrt(e / double(x.size() - lo));
}

TEST(Biquad, LowpassMagnitudeResponse) {
  const Biquad lp = Biquad::lowpass(1000.0, 44100.0, 0.7071);
  EXPECT_NEAR(lp.magnitude_at(1.0, 44100.0), 1.0, 1e-3);
  EXPECT_NEAR(lp.magnitude_at(1000.0, 44100.0), std::sqrt(0.5), 0.02);
  EXPECT_LT(lp.magnitude_at(10000.0, 44100.0), 0.02);
}

TEST(Biquad, HighpassMagnitudeResponse) {
  const Biquad hp = Biquad::highpass(1000.0, 44100.0, 0.7071);
  EXPECT_LT(hp.magnitude_at(10.0, 44100.0), 1e-3);
  EXPECT_NEAR(hp.magnitude_at(10000.0, 44100.0), 1.0, 0.01);
}

TEST(Biquad, BandpassPeaksAtCenter) {
  const Biquad bp = Biquad::bandpass(3000.0, 44100.0, 2.0);
  const double at_center = bp.magnitude_at(3000.0, 44100.0);
  EXPECT_NEAR(at_center, 1.0, 0.02);
  EXPECT_LT(bp.magnitude_at(500.0, 44100.0), 0.3);
  EXPECT_LT(bp.magnitude_at(12000.0, 44100.0), 0.3);
}

TEST(Biquad, FilterMatchesMagnitudePrediction) {
  const double fs = 44100.0;
  Biquad lp = Biquad::lowpass(2000.0, fs, 0.7071);
  const std::vector<double> y = lp.filter(tone(500.0, fs, 8192));
  EXPECT_NEAR(steady_rms(y) * std::sqrt(2.0), lp.magnitude_at(500.0, fs), 0.02);
}

TEST(Biquad, ResetClearsState) {
  Biquad lp = Biquad::lowpass(1000.0, 44100.0, 0.7071);
  (void)lp.process(1.0);
  (void)lp.process(1.0);
  lp.reset();
  // After reset the filter behaves as if freshly constructed.
  Biquad fresh = Biquad::lowpass(1000.0, 44100.0, 0.7071);
  EXPECT_DOUBLE_EQ(lp.process(0.5), fresh.process(0.5));
}

TEST(Biquad, InvalidArgsThrow) {
  EXPECT_THROW((void)Biquad::lowpass(0.0, 44100.0, 0.7), PreconditionError);
  EXPECT_THROW((void)Biquad::lowpass(30000.0, 44100.0, 0.7), PreconditionError);
  EXPECT_THROW((void)Biquad::lowpass(100.0, 44100.0, 0.0), PreconditionError);
}

TEST(Butterworth, OrderMustBeEven) {
  EXPECT_THROW(ButterworthCascade(ButterworthCascade::Kind::kLowpass, 3, 100.0, 1000.0),
               PreconditionError);
  EXPECT_NO_THROW(ButterworthCascade(ButterworthCascade::Kind::kLowpass, 4, 100.0, 1000.0));
}

TEST(Butterworth, SteeperThanSingleBiquad) {
  const double fs = 44100.0;
  ButterworthCascade lp4(ButterworthCascade::Kind::kLowpass, 4, 1000.0, fs);
  Biquad lp2 = Biquad::lowpass(1000.0, fs, 0.7071);
  const std::vector<double> x = tone(4000.0, fs, 8192);
  ButterworthCascade lp4_copy = lp4;
  const double r4 = steady_rms(lp4_copy.filter(x));
  const double r2 = steady_rms(lp2.filter(x));
  EXPECT_LT(r4, r2 * 0.2);
}

TEST(Butterworth, FiltfiltPreservesPassbandPhase) {
  // Zero-phase filtering keeps a slow signal aligned: peak location should
  // not shift.
  const double fs = 100.0;
  std::vector<double> x(400, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = (static_cast<double>(i) - 200.0) / 25.0;
    x[i] = std::exp(-t * t);
  }
  ButterworthCascade lp(ButterworthCascade::Kind::kLowpass, 2, 5.0, fs);
  const std::vector<double> y = lp.filtfilt(x);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < y.size(); ++i) {
    if (y[i] > y[peak]) peak = i;
  }
  EXPECT_NEAR(static_cast<double>(peak), 200.0, 1.5);
}

TEST(Butterworth, FiltfiltDoublesAttenuation) {
  const double fs = 44100.0;
  const std::vector<double> x = tone(8000.0, fs, 8192);
  ButterworthCascade lp(ButterworthCascade::Kind::kLowpass, 2, 1000.0, fs);
  ButterworthCascade lp2(ButterworthCascade::Kind::kLowpass, 2, 1000.0, fs);
  const double single = steady_rms(lp.filter(x));
  const double twice = steady_rms(lp2.filtfilt(x));
  EXPECT_LT(twice, single);
}

}  // namespace
}  // namespace hyperear::dsp
