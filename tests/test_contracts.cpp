/// The contracts layer (common/contracts.hpp, DESIGN.md §11): in checked
/// builds every HE_* macro throws core::InvariantError naming the offending
/// expression; in NDEBUG builds the macros parse but never evaluate their
/// argument. The retrofit samples at the bottom pin the behavior of real
/// entry points in both modes — this suite runs in the default
/// (RelWithDebInfo, contracts off) build AND under the asan/tsan presets
/// (contracts on), so both columns of the build-mode matrix are exercised.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "core/status.hpp"
#include "dsp/ols.hpp"
#include "geom/triangulation.hpp"
#include "runtime/engine.hpp"
#include "sim/scenario.hpp"

namespace hyperear {
namespace {

[[maybe_unused]] bool mentions(const std::exception& e, const std::string& needle) {
  return std::string(e.what()).find(needle) != std::string::npos;
}

#if HE_CONTRACTS_ENABLED

TEST(Contracts, ExpectsThrowsInvariantErrorNamingTheExpression) {
  const int answer = 41;
  try {
    HE_EXPECTS(answer == 42);
    FAIL() << "HE_EXPECTS did not fire";
  } catch (const core::InvariantError& e) {
    EXPECT_TRUE(mentions(e, "HE_EXPECTS"));
    EXPECT_TRUE(mentions(e, "answer == 42"));
    EXPECT_TRUE(mentions(e, "precondition"));
  }
}

TEST(Contracts, EnsuresThrowsInvariantErrorNamingTheExpression) {
  const double residual = 2.0;
  try {
    HE_ENSURES(residual < 1.0);
    FAIL() << "HE_ENSURES did not fire";
  } catch (const core::InvariantError& e) {
    EXPECT_TRUE(mentions(e, "HE_ENSURES"));
    EXPECT_TRUE(mentions(e, "residual < 1.0"));
    EXPECT_TRUE(mentions(e, "postcondition"));
  }
}

TEST(Contracts, AssertFiniteCatchesScalarNan) {
  const double bad = std::numeric_limits<double>::quiet_NaN();
  try {
    HE_ASSERT_FINITE(bad);
    FAIL() << "HE_ASSERT_FINITE did not fire";
  } catch (const core::InvariantError& e) {
    EXPECT_TRUE(mentions(e, "HE_ASSERT_FINITE"));
    EXPECT_TRUE(mentions(e, "bad"));
  }
}

TEST(Contracts, AssertFiniteSweepsRangesAndPassesCleanOnes) {
  std::vector<double> xs{1.0, -2.5, 3.0};
  EXPECT_NO_THROW(HE_ASSERT_FINITE(xs));
  xs[1] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(HE_ASSERT_FINITE(xs), core::InvariantError);
}

TEST(Contracts, PassingConditionsAreSilent) {
  EXPECT_NO_THROW(HE_EXPECTS(2 + 2 == 4));
  EXPECT_NO_THROW(HE_ENSURES(true));
  EXPECT_NO_THROW(HE_ASSERT_FINITE(0.0));
}

TEST(Contracts, InvariantErrorSitsInTheTaxonomy) {
  // IS-A PreconditionError (legacy catch sites keep working) and classifies
  // to the precondition category like one.
  const core::InvariantError e("contract violated: x > 0");
  EXPECT_NE(dynamic_cast<const PreconditionError*>(&e), nullptr);
  EXPECT_EQ(core::classify_exception(e), core::ErrorCategory::precondition);
}

// --- retrofitted entry points, checked-build column ---

TEST(ContractsRetrofit, ZeroLengthOlsKernelFiresTheContract) {
  try {
    const dsp::OlsConvolver conv{std::vector<double>{}};
    FAIL() << "empty kernel accepted";
  } catch (const core::InvariantError& e) {
    EXPECT_TRUE(mentions(e, "kernel_.empty()"));
  }
}

TEST(ContractsRetrofit, NegativeSlideDistanceFiresTheContract) {
  geom::AugmentedTdoa in;
  in.slide_distance = -0.55;
  in.mic_separation = 0.14;
  try {
    (void)geom::solve_augmented(in);
    FAIL() << "negative slide distance accepted";
  } catch (const core::InvariantError& e) {
    EXPECT_TRUE(mentions(e, "slide_distance > 0.0"));
  }
}

TEST(ContractsRetrofit, SubmitAfterShutdownFiresTheContract) {
  runtime::BatchEngine engine({}, 1);
  engine.shutdown();
  sim::Session session;
  try {
    (void)engine.submit(session);
    FAIL() << "submit after shutdown accepted";
  } catch (const core::InvariantError& e) {
    EXPECT_TRUE(mentions(e, "stopped()"));
  }
  // The contract fires before the submitted counter moves: no stats drift.
  EXPECT_EQ(engine.stats().submitted, 0u);
}

#else  // !HE_CONTRACTS_ENABLED — the NDEBUG column of the matrix.

TEST(Contracts, MacrosAreNoOpsAndDoNotEvaluateTheCondition) {
  int calls = 0;
  const auto probe = [&calls] {
    ++calls;
    return false;
  };
  HE_EXPECTS(probe());
  HE_ENSURES(probe());
  EXPECT_EQ(calls, 0) << "a disabled contract evaluated its condition";
  const double not_finite = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NO_THROW(HE_ASSERT_FINITE(not_finite));
}

// --- retrofitted entry points, release column: the always-on `require`
// tier still guards the same mistakes, as PreconditionError.

TEST(ContractsRetrofit, ZeroLengthOlsKernelStillThrowsPreconditionError) {
  EXPECT_THROW(dsp::OlsConvolver{std::vector<double>{}}, PreconditionError);
}

TEST(ContractsRetrofit, NegativeSlideDistanceStillThrowsPreconditionError) {
  geom::AugmentedTdoa in;
  in.slide_distance = -0.55;
  in.mic_separation = 0.14;
  EXPECT_THROW((void)geom::solve_augmented(in), PreconditionError);
}

TEST(ContractsRetrofit, SubmitAfterShutdownStillThrowsPreconditionError) {
  runtime::BatchEngine engine({}, 1);
  engine.shutdown();
  sim::Session session;
  EXPECT_THROW((void)engine.submit(session), PreconditionError);
  EXPECT_EQ(engine.stats().submitted, 0u);
}

#endif  // HE_CONTRACTS_ENABLED

}  // namespace
}  // namespace hyperear
