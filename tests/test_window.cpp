#include "dsp/window.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace hyperear::dsp {
namespace {

TEST(Window, RectangularIsAllOnes) {
  for (double v : make_window(WindowType::kRectangular, 16)) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Window, HannEndpointsAndPeak) {
  const std::vector<double> w = make_window(WindowType::kHann, 65);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Window, HammingEndpoints) {
  const std::vector<double> w = make_window(WindowType::kHamming, 65);
  EXPECT_NEAR(w.front(), 0.08, 1e-12);
  EXPECT_NEAR(w.back(), 0.08, 1e-12);
}

TEST(Window, BlackmanEndpointsNearZero) {
  const std::vector<double> w = make_window(WindowType::kBlackman, 65);
  EXPECT_NEAR(w.front(), 0.0, 1e-9);
  EXPECT_NEAR(w[32], 1.0, 1e-9);
}

TEST(Window, Symmetry) {
  for (auto type : {WindowType::kHann, WindowType::kHamming, WindowType::kBlackman}) {
    const std::vector<double> w = make_window(type, 33);
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
    }
  }
}

TEST(Window, SingleSampleIsOne) {
  EXPECT_DOUBLE_EQ(make_window(WindowType::kHann, 1)[0], 1.0);
  EXPECT_THROW((void)make_window(WindowType::kHann, 0), PreconditionError);
}

TEST(ApplyWindow, MultipliesInPlace) {
  std::vector<double> s{2.0, 2.0, 2.0};
  const std::vector<double> w{0.5, 1.0, 0.25};
  apply_window(s, w);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_DOUBLE_EQ(s[2], 0.5);
}

TEST(ApplyWindow, LengthMismatchThrows) {
  std::vector<double> s{1.0, 2.0};
  const std::vector<double> w{1.0};
  EXPECT_THROW(apply_window(s, w), PreconditionError);
}

TEST(EdgeTaper, FadesBothEnds) {
  std::vector<double> s(100, 1.0);
  apply_edge_taper(s, 10);
  EXPECT_NEAR(s.front(), 0.0, 1e-12);
  EXPECT_NEAR(s.back(), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(s[50], 1.0);  // middle untouched
  // Monotone rise across the fade.
  for (std::size_t i = 1; i < 10; ++i) EXPECT_GE(s[i], s[i - 1]);
}

TEST(EdgeTaper, TooLongFadeThrows) {
  std::vector<double> s(10, 1.0);
  EXPECT_THROW(apply_edge_taper(s, 6), PreconditionError);
}

}  // namespace
}  // namespace hyperear::dsp
