/// Concurrency tests of the batch-localization engine (ctest label
/// "engine"; run them under ThreadSanitizer via the `tsan` preset):
/// results must be bit-identical regardless of the worker count, and one
/// corrupt session must not poison the rest of its batch.

#include "runtime/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/error.hpp"
#include "sim/scenario.hpp"

namespace hyperear::runtime {
namespace {

sim::ScenarioConfig small_scenario() {
  sim::ScenarioConfig c;
  c.speaker_distance = 4.0;
  c.slides_per_stature = 3;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  return c;
}

std::vector<sim::Session> make_batch(std::size_t count, std::uint64_t seed0) {
  std::vector<sim::Session> sessions;
  sessions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng(seed0 + i);
    sessions.push_back(sim::make_localization_session(small_scenario(), rng));
  }
  return sessions;
}

/// Bit-exact equality of the deterministic result fields.
void expect_identical(const core::LocalizationResult& a,
                      const core::LocalizationResult& b) {
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.slides_used, b.slides_used);
  EXPECT_EQ(a.estimated_position.x, b.estimated_position.x);
  EXPECT_EQ(a.estimated_position.y, b.estimated_position.y);
  EXPECT_EQ(a.range, b.range);
  EXPECT_EQ(a.estimated_period, b.estimated_period);
  EXPECT_EQ(a.sfo_ppm, b.sfo_ppm);
}

TEST(BatchEngine, DeterministicAcrossThreadCounts) {
  const std::vector<sim::Session> sessions = make_batch(3, 700);
  BatchEngine serial({}, 1);
  BatchEngine wide({}, 4);
  const std::vector<SessionReport> base = serial.localize_all(sessions);
  const std::vector<SessionReport> out = wide.localize_all(sessions);
  ASSERT_EQ(base.size(), sessions.size());
  ASSERT_EQ(out.size(), sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    EXPECT_EQ(base[i].status, out[i].status) << "session " << i;
    expect_identical(base[i].result, out[i].result);
  }
}

TEST(BatchEngine, CorruptSessionDoesNotPoisonTheBatch) {
  std::vector<sim::Session> sessions = make_batch(2, 710);
  sessions.insert(sessions.begin() + 1, sim::Session{});  // empty audio
  BatchEngine engine({}, 4);
  const std::vector<SessionReport> reports = engine.localize_all(sessions);
  ASSERT_EQ(reports.size(), 3u);

  EXPECT_EQ(reports[1].status, SessionStatus::error);
  EXPECT_EQ(reports[1].error.category, core::ErrorCategory::precondition);
  EXPECT_EQ(reports[1].error.stage, core::PipelineStage::asp);

  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    EXPECT_EQ(reports[i].status, SessionStatus::ok) << "session " << i;
    EXPECT_TRUE(reports[i].result.valid);
  }

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.errors_by_category[static_cast<std::size_t>(
                core::ErrorCategory::precondition)],
            1u);
}

TEST(BatchEngine, StationarySessionReportsNoSolution) {
  std::vector<sim::Session> sessions = make_batch(1, 720);
  // The user never slides: keep gravity, erase the motion.
  for (auto* ch : {&sessions[0].imu.accel_x, &sessions[0].imu.accel_y}) {
    std::fill(ch->begin(), ch->end(), 0.0);
  }
  std::fill(sessions[0].imu.accel_z.begin(), sessions[0].imu.accel_z.end(), 9.80665);
  BatchEngine engine({}, 2);
  const std::vector<SessionReport> reports = engine.localize_all(sessions);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].status, SessionStatus::no_solution);
  EXPECT_FALSE(reports[0].result.valid);
  EXPECT_EQ(engine.stats().no_solution, 1u);
}

TEST(BatchEngine, SubmitFutureAndOwningOverload) {
  std::vector<sim::Session> sessions = make_batch(1, 730);
  BatchEngine engine({}, 2);

  std::future<SessionReport> borrowed = engine.submit(sessions[0]);
  const SessionReport r1 = borrowed.get();
  EXPECT_EQ(r1.status, SessionStatus::ok);

  sim::Session moved = sessions[0];
  std::future<SessionReport> owned = engine.submit(std::move(moved));
  const SessionReport r2 = owned.get();
  EXPECT_EQ(r2.status, SessionStatus::ok);
  expect_identical(r1.result, r2.result);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_GT(stats.chirps_detected, 0u);
  EXPECT_GT(stats.asp_ms, 0.0);
}

TEST(BatchEngine, RejectsInvalidConfigAtConstruction) {
  core::PipelineConfig bad;
  bad.ttl.max_range = -1.0;
  EXPECT_THROW(BatchEngine(bad, 1), PreconditionError);
}

TEST(BatchEngine, DefaultsToAtLeastOneWorker) {
  BatchEngine engine({}, 0);
  EXPECT_GE(engine.thread_count(), 1u);
}

TEST(ThreadPool, RunsEveryPostedTask) {
  std::atomic<int> hits{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) pool.post([&hits] { ++hits; });
  }  // destructor drains the queue
  EXPECT_EQ(hits.load(), 50);
}

}  // namespace
}  // namespace hyperear::runtime
