/// Concurrency tests of the batch-localization engine (ctest label
/// "engine"; run them under ThreadSanitizer via the `tsan` preset):
/// results must be bit-identical regardless of the worker count, and one
/// corrupt session must not poison the rest of its batch.

#include "runtime/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "runtime/context_cache.hpp"
#include "runtime/workspace_pool.hpp"
#include "sim/scenario.hpp"

namespace hyperear::runtime {
namespace {

sim::ScenarioConfig small_scenario() {
  sim::ScenarioConfig c;
  c.speaker_distance = 4.0;
  c.slides_per_stature = 3;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  return c;
}

std::vector<sim::Session> make_batch(std::size_t count, std::uint64_t seed0) {
  std::vector<sim::Session> sessions;
  sessions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng(seed0 + i);
    sessions.push_back(sim::make_localization_session(small_scenario(), rng));
  }
  return sessions;
}

/// Bit-exact equality of the deterministic result fields.
void expect_identical(const core::LocalizationResult& a,
                      const core::LocalizationResult& b) {
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.slides_used, b.slides_used);
  EXPECT_EQ(a.estimated_position.x, b.estimated_position.x);
  EXPECT_EQ(a.estimated_position.y, b.estimated_position.y);
  EXPECT_EQ(a.range, b.range);
  EXPECT_EQ(a.estimated_period, b.estimated_period);
  EXPECT_EQ(a.sfo_ppm, b.sfo_ppm);
}

TEST(BatchEngine, DeterministicAcrossThreadCounts) {
  const std::vector<sim::Session> sessions = make_batch(3, 700);
  BatchEngine serial({}, 1);
  BatchEngine wide({}, 4);
  const std::vector<SessionReport> base = serial.localize_all(sessions);
  const std::vector<SessionReport> out = wide.localize_all(sessions);
  ASSERT_EQ(base.size(), sessions.size());
  ASSERT_EQ(out.size(), sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    EXPECT_EQ(base[i].status, out[i].status) << "session " << i;
    expect_identical(base[i].result, out[i].result);
  }
}

TEST(BatchEngine, CorruptSessionDoesNotPoisonTheBatch) {
  std::vector<sim::Session> sessions = make_batch(2, 710);
  sessions.insert(sessions.begin() + 1, sim::Session{});  // empty audio
  BatchEngine engine({}, 4);
  const std::vector<SessionReport> reports = engine.localize_all(sessions);
  ASSERT_EQ(reports.size(), 3u);

  EXPECT_EQ(reports[1].status, SessionStatus::error);
  EXPECT_EQ(reports[1].error.category, core::ErrorCategory::precondition);
  EXPECT_EQ(reports[1].error.stage, core::PipelineStage::asp);

  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    EXPECT_EQ(reports[i].status, SessionStatus::ok) << "session " << i;
    EXPECT_TRUE(reports[i].result.valid);
  }

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.errors_by_category[static_cast<std::size_t>(
                core::ErrorCategory::precondition)],
            1u);
}

TEST(BatchEngine, StationarySessionReportsNoSolution) {
  std::vector<sim::Session> sessions = make_batch(1, 720);
  // The user never slides: keep gravity, erase the motion.
  for (auto* ch : {&sessions[0].imu.accel_x, &sessions[0].imu.accel_y}) {
    std::fill(ch->begin(), ch->end(), 0.0);
  }
  std::fill(sessions[0].imu.accel_z.begin(), sessions[0].imu.accel_z.end(), 9.80665);
  BatchEngine engine({}, 2);
  const std::vector<SessionReport> reports = engine.localize_all(sessions);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].status, SessionStatus::no_solution);
  EXPECT_FALSE(reports[0].result.valid);
  EXPECT_EQ(engine.stats().no_solution, 1u);
}

TEST(BatchEngine, SubmitFutureAndOwningOverload) {
  std::vector<sim::Session> sessions = make_batch(1, 730);
  BatchEngine engine({}, 2);

  std::future<SessionReport> borrowed = engine.submit(sessions[0]);
  const SessionReport r1 = borrowed.get();
  EXPECT_EQ(r1.status, SessionStatus::ok);

  sim::Session moved = sessions[0];
  std::future<SessionReport> owned = engine.submit(std::move(moved));
  const SessionReport r2 = owned.get();
  EXPECT_EQ(r2.status, SessionStatus::ok);
  expect_identical(r1.result, r2.result);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_GT(stats.chirps_detected, 0u);
  EXPECT_GT(stats.asp_ms, 0.0);
}

TEST(BatchEngine, SubmitCopiesSessionBeforeCallerScopeDies) {
  // Regression: submit(const&) once captured the caller's lvalue by
  // reference, so a session destroyed before a worker picked the task up
  // was read after free. Hold the only worker busy so the probe session is
  // guaranteed to still be queued when its source object dies.
  std::vector<sim::Session> sessions = make_batch(1, 740);
  BatchEngine engine({}, 1);
  std::future<SessionReport> warm = engine.submit(sessions[0]);
  std::future<SessionReport> probe;
  {
    auto scoped = std::make_unique<sim::Session>(sessions[0]);
    probe = engine.submit(*scoped);
  }  // source freed while the probe task sits in the queue
  EXPECT_EQ(warm.get().status, SessionStatus::ok);
  const SessionReport r = probe.get();
  EXPECT_EQ(r.status, SessionStatus::ok);
  const SessionReport direct = BatchEngine({}, 1).submit(sessions[0]).get();
  expect_identical(r.result, direct.result);
}

TEST(BatchEngine, ShutdownRejectsSubmitWithoutStatsDrift) {
  std::vector<sim::Session> sessions = make_batch(1, 750);
  BatchEngine engine({}, 2);
  EXPECT_EQ(engine.submit(sessions[0]).get().status, SessionStatus::ok);
  engine.shutdown();
  engine.shutdown();  // idempotent
  EXPECT_THROW((void)engine.submit(sessions[0]), PreconditionError);
  sim::Session moved = sessions[0];
  EXPECT_THROW((void)engine.submit(std::move(moved)), PreconditionError);
  // Regression: a throwing submit used to leave a phantom submission
  // behind, so `submitted` drifted ahead of `completed` forever.
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(BatchEngine, DestructionWithUnconsumedFuturesCompletesQueuedWork) {
  std::vector<sim::Session> sessions = make_batch(1, 760);
  std::future<SessionReport> kept;
  {
    BatchEngine engine({}, 1);
    kept = engine.submit(sessions[0]);
    std::future<SessionReport> dropped = engine.submit(sessions[0]);
    // `dropped` dies unconsumed; the engine destructor must still drain
    // the queue without deadlocking or abandoning `kept`'s shared state.
  }
  const SessionReport r = kept.get();  // resolves, not broken_promise
  EXPECT_EQ(r.status, SessionStatus::ok);
}

TEST(BatchEngine, MatchesContextFreePipelineBitExactly) {
  // The shared PipelineContext must only remove redundant plan
  // construction — never change a single bit of the results.
  const std::vector<sim::Session> sessions = make_batch(2, 770);
  BatchEngine engine({}, 2);
  const std::vector<SessionReport> reports = engine.localize_all(sessions);
  ASSERT_EQ(reports.size(), sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const auto direct = core::try_localize(sessions[i], engine.config());
    ASSERT_TRUE(direct.has_value()) << "session " << i;
    ASSERT_EQ(reports[i].status, SessionStatus::ok) << "session " << i;
    expect_identical(reports[i].result, *direct);
  }
}

TEST(BatchEngine, StatsViewNeverUnderflowsUnderRacingRejects) {
  // Regression: stats() read submitted before rejected. A failing submit
  // increments submitted first and rejected second, so a reader sampling
  // between the two could see the rejected tick without its submitted tick
  // — right at startup the subtraction then wrapped through size_t to
  // ~1.8e19. Hammer racing submits/shutdowns against a stats() reader; an
  // underflow shows up as a view larger than the attempt count.
  constexpr std::size_t kRounds = 25;
  constexpr std::size_t kAttempts = 64;
  for (std::size_t round = 0; round < kRounds; ++round) {
    BatchEngine engine({}, 2);
    std::atomic<bool> done{false};
    std::thread reader([&] {
      while (!done.load(std::memory_order_relaxed)) {
        const EngineStats s = engine.stats();
        ASSERT_LE(s.submitted, kAttempts) << "stats view underflowed";
      }
    });
    std::thread closer([&engine] { engine.shutdown(); });
    std::vector<std::future<SessionReport>> futures;
    for (std::size_t i = 0; i < kAttempts; ++i) {
      try {
        futures.push_back(engine.submit(sim::Session{}));
      } catch (const PreconditionError&) {
        break;  // shutdown won the race
      }
    }
    done.store(true, std::memory_order_relaxed);
    reader.join();
    closer.join();
    for (std::future<SessionReport>& f : futures) (void)f.get();
    const EngineStats s = engine.stats();
    EXPECT_LE(s.submitted, kAttempts);
    EXPECT_EQ(s.submitted, s.completed);
  }
}

TEST(BatchEngine, RejectsInvalidConfigAtConstruction) {
  core::PipelineConfig bad;
  bad.ttl.max_range = -1.0;
  EXPECT_THROW(BatchEngine(bad, 1), PreconditionError);
}

TEST(BatchEngine, DefaultsToAtLeastOneWorker) {
  BatchEngine engine({}, 0);
  EXPECT_GE(engine.thread_count(), 1u);
}

TEST(WorkspacePool, ConcurrentLeasesNeverShareState) {
  // Exclusivity by construction: while a lease is alive its WorkerState
  // must be visible to no other thread. Every worker records the state
  // address it holds in a shared set — a duplicate insert means two leases
  // aliased one workspace (also a data race tsan would flag).
  WorkspacePool pool;
  std::mutex mutex;
  std::set<const WorkspacePool::WorkerState*> live;
  std::atomic<bool> overlap{false};
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        WorkspacePool::Lease lease = pool.checkout();
        {
          const std::lock_guard<std::mutex> lock(mutex);
          if (!live.insert(&*lease).second) overlap.store(true);
        }
        ++lease->sessions_served;  // mutate: tsan sees any aliasing
        lease->workspace.reset();
        {
          const std::lock_guard<std::mutex> lock(mutex);
          live.erase(&*lease);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(overlap.load());
  // The pool grows to peak concurrency and no further.
  EXPECT_GE(pool.created(), 1u);
  EXPECT_LE(pool.created(), static_cast<std::size_t>(kThreads));
}

TEST(ContextCache, SharesPlansPerConfigurationAndIsolatesMismatches) {
  ContextCache cache;
  const core::PipelineConfig config;
  const dsp::ChirpParams chirp;
  const auto a = cache.acquire(config, chirp, 44100.0);
  const auto b = cache.acquire(config, chirp, 44100.0);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get()) << "same configuration must share one plan set";

  const auto other_fs = cache.acquire(config, chirp, 48000.0);
  ASSERT_NE(other_fs, nullptr);
  EXPECT_NE(a.get(), other_fs.get());
  EXPECT_EQ(cache.size(), 2u);

  // Pathological configuration: null, never cached, never thrown.
  const auto bad = cache.acquire(config, chirp, 0.0);
  EXPECT_EQ(bad, nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ContextCache, PlanKeyHashIsDeterministicAndFieldSensitive) {
  const core::AspOptions asp;
  const dsp::ChirpParams chirp;
  const std::uint64_t h = core::plan_key_hash(asp, chirp, 44100.0);
  EXPECT_EQ(h, core::plan_key_hash(asp, chirp, 44100.0));
  EXPECT_NE(h, core::plan_key_hash(asp, chirp, 48000.0));
  core::AspOptions other = asp;
  other.bandpass_taps += 2;
  EXPECT_NE(h, core::plan_key_hash(other, chirp, 44100.0));
  dsp::ChirpParams shifted = chirp;
  shifted.freq_high_hz += 100.0;
  EXPECT_NE(h, core::plan_key_hash(asp, shifted, 44100.0));
}

TEST(ThreadPool, RunsEveryPostedTask) {
  std::atomic<int> hits{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) pool.post([&hits] { ++hits; });
  }  // destructor drains the queue
  EXPECT_EQ(hits.load(), 50);
}

TEST(ThreadPool, StopRejectsNewTasksButDrainsQueued) {
  std::atomic<int> hits{0};
  {
    ThreadPool pool(1);
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    pool.post([open] { open.wait(); });  // park the only worker
    for (int i = 0; i < 8; ++i) pool.post([&hits] { ++hits; });
    pool.stop();
    pool.stop();  // idempotent
    EXPECT_THROW(pool.post([&hits] { ++hits; }), PreconditionError);
    gate.set_value();
  }  // destructor joins after the queued-before-stop tasks all ran
  EXPECT_EQ(hits.load(), 8);
}

}  // namespace
}  // namespace hyperear::runtime
