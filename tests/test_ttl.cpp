#include "core/ttl.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "core/asp.hpp"
#include "imu/preprocess.hpp"
#include "sim/scenario.hpp"

namespace hyperear::core {
namespace {

sim::ScenarioConfig fast_config() {
  sim::ScenarioConfig c;
  c.speaker_distance = 4.0;
  c.speaker_height = 1.3;  // coplanar: true L equals the range
  c.phone_height = 1.3;
  c.slides_per_stature = 3;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  c.randomize_placement = false;
  return c;
}

struct Prepared {
  sim::Session session;
  AspResult asp;
  imu::MotionSignals motion;
};

Prepared prepare(const sim::ScenarioConfig& c, std::uint64_t seed) {
  Rng rng(seed);
  Prepared p{sim::make_localization_session(c, rng), {}, {}};
  p.asp = preprocess_audio(p.session.audio, p.session.prior.chirp, 0.2,
                           p.session.prior.calibration_duration);
  p.motion = imu::preprocess(p.session.imu);
  return p;
}

TEST(Ttl, MeasuresEverySlide) {
  const Prepared p = prepare(fast_config(), 171);
  const std::vector<SlideMeasurement> slides = measure_slides(
      p.asp, p.motion, p.session.prior, p.session.config.phone.mic_separation, {});
  EXPECT_EQ(slides.size(), 3u);
  for (const SlideMeasurement& m : slides) {
    EXPECT_TRUE(m.accepted);
    EXPECT_GT(m.pairs_used, 0);
    EXPECT_NEAR(std::abs(m.motion.displacement), 0.55, 0.02);
    EXPECT_NEAR(m.range_l, 4.0, 0.6);
  }
}

TEST(Ttl, Localize2dAccurateOnRuler) {
  const Prepared p = prepare(fast_config(), 172);
  const TtlResult r = localize_2d(p.asp, p.motion, p.session.prior,
                                  p.session.config.phone.mic_separation);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.accepted_count, 3);
  const double err =
      distance(r.estimated_position, p.session.truth.speaker_position.xy());
  EXPECT_LT(err, 0.25);
}

TEST(Ttl, QualityGateRejectsShortSlides) {
  sim::ScenarioConfig c = fast_config();
  c.slide_distance = 0.25;
  const Prepared p = prepare(c, 173);
  TtlOptions opts;
  opts.min_slide_distance = 0.5;  // the paper's acceptance rule
  const std::vector<SlideMeasurement> slides = measure_slides(
      p.asp, p.motion, p.session.prior, p.session.config.phone.mic_separation, opts);
  for (const SlideMeasurement& m : slides) EXPECT_FALSE(m.accepted);
  const TtlResult r = aggregate_slides(slides, 0.0, 1e9);
  EXPECT_FALSE(r.valid);
}

TEST(Ttl, WindowedAggregationSplitsSlides) {
  const Prepared p = prepare(fast_config(), 174);
  const std::vector<SlideMeasurement> slides = measure_slides(
      p.asp, p.motion, p.session.prior, p.session.config.phone.mic_separation, {});
  ASSERT_EQ(slides.size(), 3u);
  const double split = slides[1].t_start + 0.01;
  const TtlResult first = aggregate_slides(slides, 0.0, split);
  const TtlResult rest = aggregate_slides(slides, split, 1e9);
  EXPECT_EQ(first.accepted_count, 2);
  EXPECT_EQ(rest.accepted_count, 1);
}

TEST(Ttl, LargerRangeLargerError) {
  // Property from Figs. 15-16: accuracy decays with speaker distance.
  sim::ScenarioConfig near_cfg = fast_config();
  near_cfg.speaker_distance = 1.0;
  sim::ScenarioConfig far_cfg = fast_config();
  far_cfg.speaker_distance = 7.0;
  double near_err_sum = 0.0, far_err_sum = 0.0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    const Prepared pn = prepare(near_cfg, 175 + s);
    const Prepared pf = prepare(far_cfg, 275 + s);
    const TtlResult rn = localize_2d(pn.asp, pn.motion, pn.session.prior,
                                     pn.session.config.phone.mic_separation);
    const TtlResult rf = localize_2d(pf.asp, pf.motion, pf.session.prior,
                                     pf.session.config.phone.mic_separation);
    ASSERT_TRUE(rn.valid && rf.valid);
    near_err_sum += distance(rn.estimated_position, pn.session.truth.speaker_position.xy());
    far_err_sum += distance(rf.estimated_position, pf.session.truth.speaker_position.xy());
  }
  EXPECT_LT(near_err_sum, far_err_sum);
}

TEST(Ttl, SpeakerSideRespected) {
  // If the prior says the speaker is on the -x body side, the estimate
  // lands on the opposite side of the slide axis.
  const Prepared p = prepare(fast_config(), 176);
  sim::Session::Prior flipped = p.session.prior;
  flipped.speaker_on_positive_x = false;
  const TtlResult normal = localize_2d(p.asp, p.motion, p.session.prior,
                                       p.session.config.phone.mic_separation);
  const TtlResult mirrored =
      localize_2d(p.asp, p.motion, flipped, p.session.config.phone.mic_separation);
  ASSERT_TRUE(normal.valid && mirrored.valid);
  const geom::Vec2 start = p.session.prior.phone_start_position.xy();
  // Mirrored estimate on the other side of the start position along x.
  EXPECT_GT(normal.estimated_position.x, start.x);
  EXPECT_LT(mirrored.estimated_position.x, start.x);
}

TEST(Ttl, RotationCorrectionImprovesHandSessions) {
  sim::ScenarioConfig c = fast_config();
  c.speaker_distance = 6.0;
  c.jitter = sim::hand_jitter();
  c.slides_per_stature = 4;
  double with_sum = 0.0, without_sum = 0.0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    const Prepared p = prepare(c, 177 + s);
    TtlOptions on;
    TtlOptions off;
    off.rotation_correction = false;
    const TtlResult r_on = localize_2d(p.asp, p.motion, p.session.prior,
                                       p.session.config.phone.mic_separation, on);
    const TtlResult r_off = localize_2d(p.asp, p.motion, p.session.prior,
                                        p.session.config.phone.mic_separation, off);
    ASSERT_TRUE(r_on.valid && r_off.valid);
    const geom::Vec2 truth = p.session.truth.speaker_position.xy();
    with_sum += distance(r_on.estimated_position, truth);
    without_sum += distance(r_off.estimated_position, truth);
  }
  EXPECT_LT(with_sum, without_sum);
}

TEST(Ttl, EmptyWindowInvalid) {
  const Prepared p = prepare(fast_config(), 178);
  const std::vector<SlideMeasurement> slides = measure_slides(
      p.asp, p.motion, p.session.prior, p.session.config.phone.mic_separation, {});
  const TtlResult r = aggregate_slides(slides, 500.0, 600.0);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.accepted_count, 0);
}

}  // namespace
}  // namespace hyperear::core
