#include "dsp/spectrum.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace hyperear::dsp {
namespace {

std::vector<double> tone(double freq, double fs, std::size_t n, double amp = 1.0) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = amp * std::sin(2.0 * kPi * freq * static_cast<double>(i) / fs);
  return x;
}

TEST(Periodogram, ToneLandsInCorrectBin) {
  const double fs = 8000.0;
  const std::vector<double> x = tone(1000.0, fs, 4096);
  const Periodogram pg = periodogram(x, fs);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < pg.power.size(); ++k) {
    if (pg.power[k] > pg.power[peak]) peak = k;
  }
  EXPECT_NEAR(static_cast<double>(peak) * pg.bin_hz, 1000.0, 2.0 * pg.bin_hz);
}

TEST(Periodogram, PowerSumsToSignalPower) {
  Rng rng(51);
  std::vector<double> x(4096);
  for (auto& v : x) v = rng.gaussian(0.0, 0.5);
  const Periodogram pg = periodogram(x, 8000.0);
  double total = 0.0;
  for (double p : pg.power) total += p;
  EXPECT_NEAR(total, signal_power(x), 0.15 * signal_power(x));
}

TEST(SignalPower, KnownValue) {
  const std::vector<double> x{1.0, -1.0, 1.0, -1.0};
  EXPECT_DOUBLE_EQ(signal_power(x), 1.0);
  EXPECT_THROW((void)signal_power(std::vector<double>{}), PreconditionError);
}

TEST(BandPower, ToneCapturedInItsBand) {
  const double fs = 8000.0;
  const std::vector<double> x = tone(1000.0, fs, 8192);
  const double in_band = band_power(x, fs, 900.0, 1100.0);
  const double out_band = band_power(x, fs, 2000.0, 3000.0);
  EXPECT_NEAR(in_band, 0.5, 0.05);  // sine power = amp^2/2
  EXPECT_LT(out_band, 0.01);
}

TEST(BandPower, SplitsTwoTones) {
  const double fs = 8000.0;
  std::vector<double> x = tone(500.0, fs, 8192, 1.0);
  const std::vector<double> hi = tone(2500.0, fs, 8192, 2.0);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += hi[i];
  const double low = band_power(x, fs, 300.0, 700.0);
  const double high = band_power(x, fs, 2300.0, 2700.0);
  EXPECT_NEAR(high / low, 4.0, 0.5);
}

TEST(BandPower, InvalidBandThrows) {
  const std::vector<double> x(64, 1.0);
  EXPECT_THROW((void)band_power(x, 8000.0, 3000.0, 1000.0), PreconditionError);
  EXPECT_THROW((void)band_power(x, 8000.0, 1000.0, 5000.0), PreconditionError);
}

TEST(BandSnr, MatchesConstruction) {
  Rng rng(52);
  const double fs = 8000.0;
  // Noise-only segment and signal+noise segment with known in-band SNR.
  std::vector<double> noise(8192), sig(8192);
  for (auto& v : noise) v = rng.gaussian(0.0, 0.1);
  const std::vector<double> s = tone(1500.0, fs, 8192, 0.5);
  for (std::size_t i = 0; i < sig.size(); ++i) sig[i] = s[i] + rng.gaussian(0.0, 0.1);
  const double snr = band_snr_db(sig, noise, fs, 1000.0, 2000.0);
  // In-band: signal power 0.125; noise in 1 kHz band ~ 0.01 * (1000/4000).
  const double expected =
      power_to_db(0.125 / band_power(noise, fs, 1000.0, 2000.0));
  EXPECT_NEAR(snr, expected, 1.5);
}

}  // namespace
}  // namespace hyperear::dsp
