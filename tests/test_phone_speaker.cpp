#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "sim/microphone.hpp"
#include "sim/phone.hpp"
#include "sim/speaker.hpp"

namespace hyperear::sim {
namespace {

TEST(PhoneSpec, PresetsMatchPaper) {
  const PhoneSpec s4 = galaxy_s4();
  EXPECT_DOUBLE_EQ(s4.mic_separation, 0.1366);
  EXPECT_EQ(s4.name, "Galaxy S4");
  const PhoneSpec n3 = galaxy_note3();
  EXPECT_DOUBLE_EQ(n3.mic_separation, 0.1512);
  EXPECT_DOUBLE_EQ(s4.adc.sample_rate, 44100.0);
  EXPECT_EQ(s4.adc.bits, 16);
}

TEST(PhoneSpec, MicPositionsAlongBodyY) {
  const PhoneSpec s4 = galaxy_s4();
  const geom::Vec3 m1 = s4.mic1_body();
  const geom::Vec3 m2 = s4.mic2_body();
  EXPECT_DOUBLE_EQ(m1.x, 0.0);
  EXPECT_DOUBLE_EQ(m1.y, s4.mic_separation / 2.0);
  EXPECT_DOUBLE_EQ(m2.y, -s4.mic_separation / 2.0);
  EXPECT_DOUBLE_EQ(distance(m1, m2), s4.mic_separation);
}

TEST(Speaker, EmissionScheduleWithClockOffset) {
  SpeakerSpec spec;
  spec.period_s = 0.2;
  spec.clock_offset_ppm = 50.0;
  spec.start_offset_s = 0.1;
  const Speaker spk(spec, {1.0, 2.0, 0.5});
  EXPECT_NEAR(spk.true_period(), 0.2 * (1.0 + 50e-6), 1e-12);
  EXPECT_NEAR(spk.emission_time(0), 0.1, 1e-12);
  EXPECT_NEAR(spk.emission_time(10), 0.1 + 10.0 * spk.true_period(), 1e-12);
  EXPECT_THROW((void)spk.emission_time(-1), PreconditionError);
}

TEST(Speaker, FirstChirpAfter) {
  SpeakerSpec spec;
  spec.start_offset_s = 0.05;
  const Speaker spk(spec, {1, 1, 1});
  EXPECT_EQ(spk.first_chirp_after(0.0), 0);
  EXPECT_EQ(spk.first_chirp_after(0.06), 1);
  EXPECT_EQ(spk.first_chirp_after(0.05 + 5 * spk.true_period()), 5);
}

TEST(Speaker, WaveformActiveOnlyDuringChirps) {
  SpeakerSpec spec;
  spec.start_offset_s = 0.1;
  const Speaker spk(spec, {1, 1, 1});
  EXPECT_DOUBLE_EQ(spk.waveform(0.05), 0.0);                          // before first chirp
  EXPECT_NE(spk.waveform(0.11), 0.0);                                 // inside chirp 0
  EXPECT_DOUBLE_EQ(spk.waveform(0.1 + spec.chirp.duration_s + 0.01), 0.0);  // gap
  EXPECT_NE(spk.waveform(0.1 + spk.true_period() + 0.01), 0.0);       // inside chirp 1
}

TEST(Speaker, PeriodMustExceedChirp) {
  SpeakerSpec spec;
  spec.period_s = 0.04;  // shorter than the 50 ms chirp
  EXPECT_THROW(Speaker(spec, {1, 1, 1}), PreconditionError);
}

TEST(Adc, QuantizationSnapsToGrid) {
  AdcSpec adc;
  adc.bits = 8;
  adc.full_scale = 1.0;
  std::vector<double> s{0.1234, -0.5678, 0.9999, -1.5};
  quantize_inplace(s, adc);
  const double step = 1.0 / 128.0;
  for (double v : s) {
    EXPECT_NEAR(v / step, std::round(v / step), 1e-9);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0 - step + 1e-12);
  }
}

TEST(Adc, QuantizationErrorBounded) {
  AdcSpec adc;  // 16 bits
  std::vector<double> s{0.123456789};
  const double orig = s[0];
  quantize_inplace(s, adc);
  EXPECT_NEAR(s[0], orig, 1.0 / 65536.0);
}

TEST(Adc, SelfNoiseAddsPower) {
  AdcSpec adc;
  adc.self_noise_rms = 0.01;
  Rng rng(91);
  std::vector<double> s(10000, 0.0);
  add_self_noise_inplace(s, adc, rng);
  double e = 0.0;
  for (double v : s) e += v * v;
  EXPECT_NEAR(std::sqrt(e / static_cast<double>(s.size())), 0.01, 0.001);
}

TEST(Adc, SkewedClockInstants) {
  AdcSpec adc;
  adc.clock_offset_ppm = 100.0;
  EXPECT_NEAR(effective_sample_rate(adc), 44100.0 * 1.0001, 1e-6);
  // Sample 44100 is taken slightly before one nominal second.
  EXPECT_LT(sample_instant(adc, 44100), 1.0);
  EXPECT_EQ(sample_count(adc, 1.0), 44104u);
}

}  // namespace
}  // namespace hyperear::sim
