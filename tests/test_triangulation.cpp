#include "geom/triangulation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hyperear::geom {
namespace {

/// Build exact augmented-TDoA inputs for a speaker at (x, y) in the
/// canonical slide frame (paper Fig. 10 geometry).
AugmentedTdoa exact_inputs(const Vec2& speaker, double dprime, double d) {
  AugmentedTdoa in;
  in.slide_distance = dprime;
  in.mic_separation = d;
  const Vec2 m1_post{dprime / 2.0, 0.0}, m1_pre{-dprime / 2.0, 0.0};
  const Vec2 m2_post{d + dprime / 2.0, 0.0}, m2_pre{d - dprime / 2.0, 0.0};
  in.range_diff_mic1 = distance(speaker, m1_post) - distance(speaker, m1_pre);
  in.range_diff_mic2 = distance(speaker, m2_post) - distance(speaker, m2_pre);
  return in;
}

TEST(SolveAugmented, RecoversExactPosition) {
  const Vec2 truth{0.1, 5.0};
  const AugmentedTdoa in = exact_inputs(truth, 0.55, kGalaxyS4MicSeparation);
  const TriangulationResult r = solve_augmented(in);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.position.x, truth.x, 1e-6);
  EXPECT_NEAR(r.position.y, truth.y, 1e-6);
}

// Property sweep over ranges and lateral offsets (the paper's Fig. 15/16
// operating envelope).
struct SweepCase {
  double x;
  double y;
  double dprime;
};

class AugmentedSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(AugmentedSweep, ExactRecovery) {
  const SweepCase c = GetParam();
  const Vec2 truth{c.x, c.y};
  const AugmentedTdoa in = exact_inputs(truth, c.dprime, kGalaxyS4MicSeparation);
  const TriangulationResult r = solve_augmented(in);
  ASSERT_TRUE(r.converged) << "x=" << c.x << " y=" << c.y;
  EXPECT_NEAR(r.position.x, truth.x, 1e-4);
  EXPECT_NEAR(r.position.y, truth.y, 1e-4 * std::max(1.0, c.y));
}

INSTANTIATE_TEST_SUITE_P(
    Envelope, AugmentedSweep,
    ::testing::Values(SweepCase{0.0, 1.0, 0.55}, SweepCase{0.3, 1.0, 0.55},
                      SweepCase{-0.2, 2.0, 0.55}, SweepCase{0.1, 3.0, 0.55},
                      SweepCase{0.0, 5.0, 0.55}, SweepCase{0.5, 5.0, 0.55},
                      SweepCase{0.1, 7.0, 0.55}, SweepCase{-0.4, 7.0, 0.55},
                      SweepCase{0.1, 7.0, 0.15}, SweepCase{0.1, 7.0, 0.35},
                      SweepCase{0.0, 0.5, 0.3}, SweepCase{1.0, 4.0, 0.55}));

TEST(SolveAugmented, QuantizedInputsDegradeGracefully) {
  const Vec2 truth{0.1, 5.0};
  AugmentedTdoa in = exact_inputs(truth, 0.55, kGalaxyS4MicSeparation);
  // Quantize the range differences to the 44.1 kHz grid (0.778 cm).
  const double step = 343.0 / 44100.0;
  in.range_diff_mic1 = std::round(in.range_diff_mic1 / step) * step;
  in.range_diff_mic2 = std::round(in.range_diff_mic2 / step) * step;
  const TriangulationResult r = solve_augmented(in);
  ASSERT_TRUE(r.converged);
  // Quantization error is large at 5 m, but the answer stays in the right
  // region (this is exactly the ambiguity the paper's Fig. 14 quantifies).
  EXPECT_NEAR(r.position.y, truth.y, 3.0);
}

TEST(SolveAugmented, RangeDiffClampedToAperture) {
  AugmentedTdoa in;
  in.slide_distance = 0.5;
  in.mic_separation = 0.14;
  in.range_diff_mic1 = -0.6;  // beyond the physical limit of D'
  in.range_diff_mic2 = -0.4;
  // Must not throw: the implementation clamps into the valid hyperbola set.
  const TriangulationResult r = solve_augmented(in);
  (void)r;
}

TEST(SolveAugmented, InvalidGeometryThrows) {
  AugmentedTdoa in;
  in.slide_distance = 0.0;
  in.mic_separation = 0.14;
  EXPECT_THROW((void)solve_augmented(in), PreconditionError);
  in.slide_distance = 0.5;
  in.mic_separation = -1.0;
  EXPECT_THROW((void)solve_augmented(in), PreconditionError);
}

TEST(FarFieldGuess, CloseToTruthAtRange) {
  const Vec2 truth{0.2, 6.0};
  const AugmentedTdoa in = exact_inputs(truth, 0.55, kGalaxyS4MicSeparation);
  const Vec2 guess = far_field_initial_guess(in);
  EXPECT_NEAR(guess.norm(), truth.norm(), 0.2 * truth.norm());
}

TEST(FarFieldGuess, DegenerateMeasurementClampedToMaxRange) {
  AugmentedTdoa in;
  in.slide_distance = 0.5;
  in.mic_separation = 0.14;
  in.range_diff_mic1 = 0.01;
  in.range_diff_mic2 = 0.01;  // identical -> infinite range in far field
  const Vec2 guess = far_field_initial_guess(in, 50.0);
  EXPECT_LE(guess.norm(), 51.0);
}

TEST(Intersect, GeneralHyperbolas) {
  const Vec2 truth{1.0, 2.0};
  const Vec2 a1{-0.5, 0.0}, a2{0.5, 0.0}, b1{2.0, 0.0}, b2{3.0, 0.0};
  const Hyperbola h1(a1, a2, distance(truth, a1) - distance(truth, a2));
  const Hyperbola h2(b1, b2, distance(truth, b1) - distance(truth, b2));
  const TriangulationResult r = intersect(h1, h2, {0.5, 1.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.position.x, truth.x, 1e-6);
  EXPECT_NEAR(r.position.y, truth.y, 1e-6);
}

}  // namespace
}  // namespace hyperear::geom
