/// Failure-injection tests: the pipeline must degrade gracefully — never
/// crash, and either report invalid or produce a bounded answer — under
/// realistic corruptions of its inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "core/pipeline.hpp"
#include "sim/scenario.hpp"

namespace hyperear::core {
namespace {

sim::ScenarioConfig base_config() {
  sim::ScenarioConfig c;
  c.speaker_distance = 4.0;
  c.slides_per_stature = 3;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  return c;
}

TEST(Robustness, AudioDropoutsDuringCalibration) {
  // A second of lost audio in the calibration head: SFO estimation sees
  // fewer chirps but the session still localizes.
  Rng rng(501);
  sim::Session s = sim::make_localization_session(base_config(), rng);
  const auto lo = static_cast<std::size_t>(1.0 * s.audio.sample_rate);
  const auto hi = static_cast<std::size_t>(2.0 * s.audio.sample_rate);
  const auto lo_i = static_cast<std::ptrdiff_t>(lo);
  const auto hi_i = static_cast<std::ptrdiff_t>(hi);
  std::fill(s.audio.mic1.begin() + lo_i, s.audio.mic1.begin() + hi_i, 0.0);
  std::fill(s.audio.mic2.begin() + lo_i, s.audio.mic2.begin() + hi_i, 0.0);
  const LocalizationResult r = localize(s);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(localization_error(r, s), 0.6);
}

TEST(Robustness, DropoutsAroundOneSlide) {
  // Losing the dwell audio around one slide costs that slide, not the fix.
  Rng rng(502);
  sim::Session s = sim::make_localization_session(base_config(), rng);
  const double t0 = s.truth.slides[1].t0 - 0.6;
  const double t1 = s.truth.slides[1].t1 + 0.6;
  const auto lo = static_cast<std::size_t>(t0 * s.audio.sample_rate);
  const auto hi = std::min(static_cast<std::size_t>(t1 * s.audio.sample_rate),
                           s.audio.mic1.size());
  const auto lo_i = static_cast<std::ptrdiff_t>(lo);
  const auto hi_i = static_cast<std::ptrdiff_t>(hi);
  std::fill(s.audio.mic1.begin() + lo_i, s.audio.mic1.begin() + hi_i, 0.0);
  std::fill(s.audio.mic2.begin() + lo_i, s.audio.mic2.begin() + hi_i, 0.0);
  const LocalizationResult r = localize(s);
  ASSERT_TRUE(r.valid);
  // The corrupted slide may survive on dwell chirps outside the zeroed
  // span (which is legitimate), but the fix must stay sound either way.
  EXPECT_LE(r.slides_used, 3);
  EXPECT_LT(localization_error(r, s), 0.6);
}

TEST(Robustness, ClippedAudio) {
  // Overdriven speaker: hard-clip the recording at 30% full scale.
  Rng rng(503);
  sim::Session s = sim::make_localization_session(base_config(), rng);
  for (auto* ch : {&s.audio.mic1, &s.audio.mic2}) {
    for (double& v : *ch) v = std::clamp(v, -0.05, 0.05);
  }
  const LocalizationResult r = localize(s);
  // Clipping distorts but the chirp's time structure survives.
  ASSERT_TRUE(r.valid);
  EXPECT_LT(localization_error(r, s), 1.0);
}

TEST(Robustness, PureNoiseRecordingIsInvalid) {
  Rng rng(504);
  sim::Session s = sim::make_localization_session(base_config(), rng);
  Rng noise(505);
  for (auto* ch : {&s.audio.mic1, &s.audio.mic2}) {
    for (double& v : *ch) v = noise.gaussian(0.0, 0.05);
  }
  const LocalizationResult r = localize(s);
  EXPECT_FALSE(r.valid);
}

TEST(Robustness, SaturatedAccelerometer) {
  // IMU clipped at +-2 g: slides estimated from truncated acceleration.
  Rng rng(506);
  sim::Session s = sim::make_localization_session(base_config(), rng);
  const double limit = 2.0 * 9.80665;
  for (auto* ch : {&s.imu.accel_x, &s.imu.accel_y, &s.imu.accel_z}) {
    for (double& v : *ch) v = std::clamp(v, -limit, limit);
  }
  const LocalizationResult r = localize(s);
  ASSERT_TRUE(r.valid);  // 2 g is far above slide accelerations
  EXPECT_LT(localization_error(r, s), 0.4);
}

TEST(Robustness, DeadGyro) {
  // Gyro stuck at zero: rotation correction becomes a no-op but the
  // ruler session is rotation-free anyway.
  Rng rng(507);
  sim::Session s = sim::make_localization_session(base_config(), rng);
  for (auto* ch : {&s.imu.gyro_x, &s.imu.gyro_y, &s.imu.gyro_z}) {
    std::fill(ch->begin(), ch->end(), 0.0);
  }
  const LocalizationResult r = localize(s);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(localization_error(r, s), 0.4);
}

TEST(Robustness, WrongNominalPeriodPriorAbsorbedBySfo) {
  // A 1% wrong beacon-period prior (50x any real crystal) is fully
  // corrected by the data-driven period estimate...
  Rng rng(508);
  sim::Session s = sim::make_localization_session(base_config(), rng);
  s.prior.nominal_period = 0.202;
  const LocalizationResult r = localize(s);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.estimated_period, 0.2, 1e-4);
  EXPECT_LT(localization_error(r, s), 0.4);
  // ...but without SFO correction the n*T bookkeeping is off by ~20 ms per
  // slide and the fix collapses.
  PipelineConfig no_sfo;
  no_sfo.asp.sfo_correction = false;
  const LocalizationResult broken = localize(s, no_sfo);
  EXPECT_TRUE(!broken.valid || localization_error(broken, s) > 1.0);
}

TEST(Robustness, SlightlyWrongPeriodPriorCorrected) {
  // 100 ppm of prior error is within crystal territory: the SFO estimator
  // absorbs it.
  Rng rng(509);
  sim::Session s = sim::make_localization_session(base_config(), rng);
  s.prior.nominal_period = 0.2 * (1.0 + 100e-6);
  const LocalizationResult r = localize(s);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(localization_error(r, s), 0.4);
}

TEST(Robustness, StationarySessionHasNoSlides) {
  // The user never slides: the pipeline reports invalid, not garbage.
  sim::ScenarioConfig c = base_config();
  Rng rng(510);
  // Build a session then silence the IMU's motion by replacing it with a
  // static record (keep gravity).
  sim::Session s = sim::make_localization_session(c, rng);
  for (auto* ch : {&s.imu.accel_x, &s.imu.accel_y}) {
    std::fill(ch->begin(), ch->end(), 0.0);
  }
  std::fill(s.imu.accel_z.begin(), s.imu.accel_z.end(), 9.80665);
  const LocalizationResult r = localize(s);
  EXPECT_FALSE(r.valid);
}

TEST(Robustness, InterfererInDifferentBandHarmless) {
  // A second beacon chirping at 7-11 kHz does not disturb localizing the
  // 2-6.4 kHz tag (FDMA separation through the band-pass+matched filter).
  sim::ScenarioConfig c = base_config();
  sim::ScenarioConfig::Interferer itf;
  itf.spec = sim::secondary_band_beacon();
  itf.spec.amplitude_at_1m = 0.8;  // louder than the target
  itf.distance = 2.5;
  itf.lateral_offset = 1.5;
  c.interferers.push_back(itf);
  Rng rng(511);
  const sim::Session s = sim::make_localization_session(c, rng);
  const LocalizationResult r = localize(s);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(localization_error(r, s), 0.4);
}

TEST(Robustness, CochannelInterfererHurts) {
  // Same-band interferer: the matched filter cannot separate two identical
  // chirp trains, so accuracy degrades or the fix fails - either is an
  // acceptable, honest outcome, silently-perfect would be a bug.
  sim::ScenarioConfig c = base_config();
  sim::ScenarioConfig::Interferer itf;
  itf.spec = sim::audible_beacon();  // SAME band as the target
  itf.spec.amplitude_at_1m = 0.8;
  itf.distance = 2.0;
  itf.lateral_offset = -2.0;
  c.interferers.push_back(itf);
  Rng rng(512);
  const sim::Session s = sim::make_localization_session(c, rng);
  const LocalizationResult r = localize(s);
  if (r.valid) {
    EXPECT_GT(localization_error(r, s), 0.2);
  }
  SUCCEED();
}

}  // namespace
}  // namespace hyperear::core
