// Must FAIL under -Wthread-safety -Werror: writes an HE_GUARDED_BY member
// without holding its mutex.
#include "common/thread_annotations.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) {
    balance_ += amount;  // no lock held
  }

 private:
  he::Mutex mutex_;
  int balance_ HE_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.deposit(1);
  return 0;
}
