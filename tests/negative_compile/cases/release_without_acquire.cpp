// Must FAIL under -Wthread-safety -Werror: releases a capability that was
// never acquired on this path.
#include "common/thread_annotations.hpp"

namespace {

he::Mutex mutex_;

void broken() {
  mutex_.unlock();  // not held
}

}  // namespace

int main() {
  broken();
  return 0;
}
