// Control case: exercises the full annotation surface CORRECTLY and must
// compile clean under -Wthread-safety -Wthread-safety-beta -Werror. If this
// fails, the harness (or the wrappers) is broken, not the case under test.
#include "common/thread_annotations.hpp"

namespace {

class Queue {
 public:
  void push(int v) HE_EXCLUDES(mutex_) {
    {
      const he::MutexLock lock(mutex_);
      value_ = v;
      full_ = true;
    }
    cv_.notify_one();
  }

  int pop() HE_EXCLUDES(mutex_) {
    he::MutexLock lock(mutex_);
    while (!full_) cv_.wait(lock);
    full_ = false;
    return take_locked();
  }

  bool try_peek(int* out) HE_EXCLUDES(mutex_) {
    if (!mutex_.try_lock()) return false;
    *out = value_;
    mutex_.unlock();
    return true;
  }

 private:
  int take_locked() HE_REQUIRES(mutex_) { return value_; }

  he::Mutex mutex_ HE_LOCK_LEVEL(pool);
  he::CondVar cv_;
  int value_ HE_GUARDED_BY(mutex_) = 0;
  bool full_ HE_GUARDED_BY(mutex_) = false;
};

he::Mutex top_mutex HE_LOCK_LEVEL(server);
int shared_value HE_GUARDED_BY(top_mutex) = 0;

// server-level lock held while acquiring a pool-level one inside Queue:
// the declared hierarchy direction, so the beta lock-order check is happy.
int ordered(Queue& q) HE_EXCLUDES(top_mutex) {
  const he::MutexLock lock(top_mutex);
  q.push(1);
  return shared_value;
}

}  // namespace

int main() {
  Queue q;
  q.push(7);
  int out = 0;
  (void)q.try_peek(&out);
  (void)ordered(q);
  return q.pop() == 1 ? 0 : 1;
}
