// Must FAIL under -Wthread-safety-beta -Werror: two mutexes placed on
// DIFFERENT levels of the project hierarchy via HE_LOCK_LEVEL, acquired
// bottom-up. Neither mutex names the other directly — the ordering edge
// flows transitively through the below_* boundary tokens in
// thread_annotations.hpp, which is exactly how a cross-class inversion
// (e.g. ThreadPool calling back into Server) becomes a compile error.
#include "common/thread_annotations.hpp"

namespace {

he::Mutex pool_mutex HE_LOCK_LEVEL(pool);
he::Mutex server_mutex HE_LOCK_LEVEL(server);

void broken() {
  const he::MutexLock a(pool_mutex);
  const he::MutexLock b(server_mutex);  // server is ABOVE pool: inversion
}

}  // namespace

int main() {
  broken();
  return 0;
}
