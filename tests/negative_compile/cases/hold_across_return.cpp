// Must FAIL under -Wthread-safety -Werror: acquires a mutex and returns
// while still holding it (no matching release on the exit path).
#include "common/thread_annotations.hpp"

namespace {

he::Mutex mutex_;
int value_ HE_GUARDED_BY(mutex_) = 0;

int broken() {
  mutex_.lock();
  return value_;  // still held at end of function
}

}  // namespace

int main() {
  (void)broken();
  return 0;
}
