// Must FAIL under -Wthread-safety-beta -Werror: acquires two mutexes in
// the opposite order of their direct HE_ACQUIRED_AFTER declaration. This is
// the case that justifies -beta in the lint/sanitizer presets — the
// ordering checks live behind it.
#include "common/thread_annotations.hpp"

namespace {

he::Mutex outer;
he::Mutex inner HE_ACQUIRED_AFTER(outer);

void broken() {
  const he::MutexLock a(inner);
  const he::MutexLock b(outer);  // inversion: outer must come first
}

}  // namespace

int main() {
  broken();
  return 0;
}
