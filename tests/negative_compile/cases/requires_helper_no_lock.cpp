// Must FAIL under -Wthread-safety -Werror: calls an HE_REQUIRES helper
// without holding the required mutex — the _locked-suffix contract the
// runtime leans on (e.g. ThreadPool::note_dequeued, Server::pump_locked).
#include "common/thread_annotations.hpp"

namespace {

class Pool {
 public:
  void broken() {
    note_dequeued();  // requires mutex_, not held
  }

 private:
  void note_dequeued() HE_REQUIRES(mutex_) { ++dequeued_; }

  he::Mutex mutex_;
  int dequeued_ HE_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Pool p;
  p.broken();
  return 0;
}
