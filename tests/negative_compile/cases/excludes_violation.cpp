// Must FAIL under -Wthread-safety -Werror: calls an HE_EXCLUDES(mutex_)
// function while holding mutex_ — the self-deadlock shape (public API
// re-entered from under its own lock).
#include "common/thread_annotations.hpp"

namespace {

class Widget {
 public:
  void tick() HE_EXCLUDES(mutex_) {
    const he::MutexLock lock(mutex_);
    ++count_;
  }

  void broken() {
    const he::MutexLock lock(mutex_);
    tick();  // would deadlock: tick() takes mutex_ again
  }

 private:
  he::Mutex mutex_;
  int count_ HE_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Widget w;
  w.broken();
  return 0;
}
