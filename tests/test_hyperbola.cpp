#include "geom/hyperbola.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hyperear::geom {
namespace {

TEST(Hyperbola, ResidualZeroOnLocus) {
  const Vec2 f1{1.0, 0.0};
  const Vec2 f2{-1.0, 0.0};
  // Point with known range difference.
  const Vec2 p{2.0, 1.5};
  const double delta = distance(p, f1) - distance(p, f2);
  const Hyperbola h(f1, f2, delta);
  EXPECT_NEAR(h.residual(p), 0.0, 1e-12);
  // Off-locus point has nonzero residual.
  EXPECT_GT(std::abs(h.residual({0.0, 5.0})), 1e-3);
}

TEST(Hyperbola, InvalidDeltaThrows) {
  EXPECT_THROW(Hyperbola({1.0, 0.0}, {-1.0, 0.0}, 2.5), PreconditionError);
  EXPECT_THROW(Hyperbola({0.0, 0.0}, {0.0, 0.0}, 0.0), PreconditionError);
  // Degenerate allowed when requested.
  EXPECT_NO_THROW(Hyperbola({1.0, 0.0}, {-1.0, 0.0}, 2.0, true));
}

TEST(Hyperbola, GradientPointsAcrossLevelSets) {
  const Hyperbola h({0.5, 0.0}, {-0.5, 0.0}, 0.3);
  const Vec2 p{1.0, 2.0};
  const Vec2 g = h.gradient(p);
  // Numeric check of the gradient.
  const double eps = 1e-6;
  const double dx = (h.residual({p.x + eps, p.y}) - h.residual({p.x - eps, p.y})) / (2 * eps);
  const double dy = (h.residual({p.x, p.y + eps}) - h.residual({p.x, p.y - eps})) / (2 * eps);
  EXPECT_NEAR(g.x, dx, 1e-6);
  EXPECT_NEAR(g.y, dy, 1e-6);
}

TEST(Hyperbola, SampledPointsLieOnLocus) {
  const Hyperbola h({0.3, 0.1}, {-0.4, -0.2}, 0.25);
  for (const Vec2& p : h.sample(41, 2.0)) {
    EXPECT_NEAR(h.residual(p), 0.0, 1e-9);
  }
}

TEST(Hyperbola, ZeroDeltaSamplesPerpendicularBisector) {
  const Hyperbola h({1.0, 0.0}, {-1.0, 0.0}, 0.0);
  for (const Vec2& p : h.sample(11, 1.0)) {
    EXPECT_NEAR(distance(p, h.focus1()), distance(p, h.focus2()), 1e-9);
  }
}

TEST(DistinguishableCount, PaperEq2Values) {
  // Galaxy S4: D = 13.66 cm at 44.1 kHz -> 35 hyperbolas (Section II-C).
  EXPECT_EQ(distinguishable_hyperbola_count(kGalaxyS4MicSeparation, 44100.0, 343.0), 35);
  // Note3: D = 15.12 cm -> 38.
  EXPECT_EQ(distinguishable_hyperbola_count(kGalaxyNote3MicSeparation, 44100.0, 343.0), 38);
}

TEST(DistinguishableCount, GrowsWithSeparation) {
  // Fig. 4(b): expanding the separation increases the hyperbola count.
  int last = 0;
  for (double d = 0.1; d <= 0.6; d += 0.1) {
    const int n = distinguishable_hyperbola_count(d, 44100.0, 343.0);
    EXPECT_GT(n, last);
    last = n;
  }
}

TEST(RegionWidth, DenserAtBroadside) {
  // Fig. 4(a): the central (broadside) area has denser hyperbolas, i.e.
  // smaller region width, than the sideward (endfire) areas.
  const Vec2 f1{0.0683, 0.0};
  const Vec2 f2{-0.0683, 0.0};
  const double broadside = tdoa_region_width(f1, f2, {0.0, 3.0}, 44100.0, 343.0);
  const double sideward = tdoa_region_width(f1, f2, {3.0 * std::cos(0.3), 3.0 * std::sin(0.3)},
                                            44100.0, 343.0);
  EXPECT_LT(broadside, sideward);
}

TEST(RegionWidth, GrowsWithDistance) {
  // Fig. 3: ambiguity grows for far objects.
  const Vec2 f1{0.0683, 0.0};
  const Vec2 f2{-0.0683, 0.0};
  double last = 0.0;
  for (double r = 1.0; r <= 7.0; r += 2.0) {
    const double w = tdoa_region_width(f1, f2, {0.3, r}, 44100.0, 343.0);
    EXPECT_GT(w, last);
    last = w;
  }
}

TEST(RegionWidth, ShrinksWithAperture) {
  // Fig. 4(b): a wider separation yields denser regions at the same point.
  const Vec2 p{0.5, 5.0};
  const double narrow =
      tdoa_region_width({0.07, 0.0}, {-0.07, 0.0}, p, 44100.0, 343.0);
  const double wide = tdoa_region_width({0.28, 0.0}, {-0.28, 0.0}, p, 44100.0, 343.0);
  EXPECT_LT(wide, narrow);
}

}  // namespace
}  // namespace hyperear::geom
