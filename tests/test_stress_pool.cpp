/// Concurrency stress tests for ThreadPool::try_run_one and
/// PoolPairExecutor (ctest label "stress"; run them under the `tsan`
/// preset). The scenarios the engine depends on for liveness: nested
/// fan-out on an undersized pool (sessions posting channel pairs onto the
/// same workers), help-draining waiters, and producers racing stop().

#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "runtime/pool_pair_executor.hpp"

namespace hyperear::runtime {
namespace {

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

TEST(ThreadPoolStress, TryRunOneOnEmptyQueueReturnsFalse) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.try_run_one());
}

TEST(ThreadPoolStress, TryRunOneRunsQueuedTasksOnTheCallingThread) {
  ThreadPool pool(1);
  // Park the only worker on a gate so subsequent posts stay queued; wait
  // for it to actually hold the gate before posting (otherwise this thread
  // could pick the gate task up via try_run_one and deadlock itself).
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  pool.post([&started, release_future] {
    started.set_value();
    release_future.wait();
  });
  started.get_future().wait();

  constexpr std::size_t kTasks = 8;
  std::atomic<std::size_t> ran{0};
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> all_on_caller{true};
  for (std::size_t i = 0; i < kTasks; ++i) {
    pool.post([&ran, &all_on_caller, caller] {
      if (std::this_thread::get_id() != caller) all_on_caller = false;
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::size_t drained = 0;
  while (pool.try_run_one()) ++drained;
  EXPECT_EQ(drained, kTasks);
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_TRUE(all_on_caller.load());  // the worker never saw these tasks
  release.set_value();
}

/// Nested fan-out: outer tasks on the pool each split into a channel pair
/// on the SAME pool. With help-draining this completes at every pool size
/// — including size 1, where the lone worker must run both halves of every
/// pair itself while "waiting".
void nested_fan_out_completes(std::size_t pool_size) {
  ThreadPool pool(pool_size);
  const PoolPairExecutor executor(pool);
  constexpr std::size_t kOuter = 12;
  std::atomic<std::size_t> halves{0};

  std::vector<std::future<void>> done;
  done.reserve(kOuter);
  for (std::size_t i = 0; i < kOuter; ++i) {
    auto task = std::make_shared<std::packaged_task<void()>>([&executor, &halves] {
      executor.run_pair([&halves] { halves.fetch_add(1); },
                        [&halves] { halves.fetch_add(1); });
    });
    done.push_back(task->get_future());
    pool.post([task] { (*task)(); });
  }
  for (std::future<void>& f : done) f.get();
  EXPECT_EQ(halves.load(), 2 * kOuter);
}

TEST(ThreadPoolStress, NestedFanOutCompletesOnPoolOfOne) {
  nested_fan_out_completes(1);
}
TEST(ThreadPoolStress, NestedFanOutCompletesOnPoolOfTwo) {
  nested_fan_out_completes(2);
}
TEST(ThreadPoolStress, NestedFanOutCompletesOnFullPool) {
  nested_fan_out_completes(hardware_threads());
}

TEST(ThreadPoolStress, RunPairPropagatesTheFirstClosuresException) {
  ThreadPool pool(2);
  const PoolPairExecutor executor(pool);
  std::atomic<bool> b_ran{false};
  EXPECT_THROW(
      executor.run_pair([] { throw std::runtime_error("a failed"); },
                        [&b_ran] { b_ran = true; }),
      std::runtime_error);
  EXPECT_TRUE(b_ran.load());  // b still ran; a's error surfaced after
}

TEST(ThreadPoolStress, RunPairPropagatesTheSecondClosuresException) {
  ThreadPool pool(2);
  const PoolPairExecutor executor(pool);
  std::atomic<bool> a_ran{false};
  EXPECT_THROW(executor.run_pair([&a_ran] { a_ran = true; },
                                 [] { throw std::runtime_error("b failed"); }),
               std::runtime_error);
  // run_pair must not rethrow b's error before a finished (a references
  // caller state), so by the time the throw surfaced a had run.
  EXPECT_TRUE(a_ran.load());
}

TEST(ThreadPoolStress, RunPairDegradesToSerialAfterStop) {
  ThreadPool pool(1);
  pool.stop();
  EXPECT_THROW(pool.post([] {}), PreconditionError);

  const PoolPairExecutor executor(pool);
  std::vector<int> order;
  executor.run_pair([&order] { order.push_back(1); },
                    [&order] { order.push_back(2); });
  ASSERT_EQ(order.size(), 2u);  // both ran on this thread, in serial order
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(ThreadPoolStress, DrainOnStopRunsEveryAcceptedTaskExactlyOnce) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 400;
  // One flag per potential task: exactly-once means every flag is 0 or 1
  // and the sum matches the accepted count.
  std::vector<std::atomic<int>> runs(kProducers * kPerProducer);
  std::atomic<std::size_t> accepted{0};
  {
    ThreadPool pool(2);
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (std::size_t i = 0; i < kPerProducer; ++i) {
          std::atomic<int>& flag = runs[p * kPerProducer + i];
          try {
            pool.post([&flag] { flag.fetch_add(1, std::memory_order_relaxed); });
            accepted.fetch_add(1, std::memory_order_relaxed);
          } catch (const PreconditionError&) {
            // stop() won the race; the task was never enqueued.
          }
          // A waiter that help-drains while producers race stop().
          pool.try_run_one();
        }
      });
    }
    // Stop mid-stream: some posts land before, some are refused.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    pool.stop();
    for (std::thread& t : producers) t.join();
  }  // ~ThreadPool drains the queue: every accepted task has now run.

  std::size_t total_runs = 0;
  for (const std::atomic<int>& flag : runs) {
    const int n = flag.load();
    ASSERT_LE(n, 1) << "a task ran twice";
    total_runs += static_cast<std::size_t>(n);
  }
  EXPECT_EQ(total_runs, accepted.load());
}

TEST(ThreadPoolStress, MetricsCountEveryTaskAndQueueDepthReturnsToZero) {
  obs::MetricsRegistry registry;
  constexpr std::size_t kTasks = 64;
  {
    ThreadPool pool(2);
    pool.install_metrics(registry, "pool");
    std::atomic<std::size_t> ran{0};
    for (std::size_t i = 0; i < kTasks; ++i) {
      pool.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    while (pool.try_run_one()) {
    }
  }  // destructor drains the rest
  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "pool.tasks_run_total");
  EXPECT_EQ(snap.counters[0].second, static_cast<double>(kTasks));
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "pool.queue_depth");
  EXPECT_EQ(snap.gauges[0].second, 0.0);  // +1 per post, -1 per dequeue
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "pool.task_wait_ms");
  EXPECT_EQ(snap.histograms[0].count, kTasks);
}

TEST(ThreadPoolStress, QueueDepthGaugeNeverDipsNegativeUnderHelpDraining) {
  // Regression for a latent single-consumer assumption: post() used to
  // bump the queue-depth gauge AFTER releasing the queue lock, while
  // dequeues decrement it under the lock. CV-woken workers never noticed
  // (the notify ordered them behind the increment), but a try_run_one
  // help-drainer — the serving layer's dispatch-context pattern — polls
  // the queue without the notify and could pop-and-decrement first,
  // driving the gauge transiently negative. The +1 now lands inside the
  // locked region; a sampler racing posters and help-drainers must never
  // observe a negative depth.
  obs::MetricsRegistry registry;
  constexpr std::size_t kTasks = 2000;
  {
    ThreadPool pool(1);
    pool.install_metrics(registry, "pool");
    const obs::Gauge depth = registry.gauge("pool.queue_depth");
    std::atomic<bool> done{false};
    std::atomic<bool> negative_seen{false};

    std::vector<std::thread> drainers;
    for (int d = 0; d < 2; ++d) {
      drainers.emplace_back([&pool, &done] {
        while (!done.load(std::memory_order_acquire)) pool.try_run_one();
      });
    }
    std::thread sampler([&depth, &done, &negative_seen] {
      while (!done.load(std::memory_order_acquire)) {
        if (depth.value() < 0.0) negative_seen.store(true);
      }
    });

    std::atomic<std::size_t> ran{0};
    for (std::size_t i = 0; i < kTasks; ++i) {
      pool.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    while (ran.load(std::memory_order_acquire) < kTasks) pool.try_run_one();
    done.store(true, std::memory_order_release);
    for (std::thread& t : drainers) t.join();
    sampler.join();
    EXPECT_FALSE(negative_seen.load());
  }
  EXPECT_EQ(registry.gauge("pool.queue_depth").value(), 0.0);
}

TEST(ThreadPoolStress, CompletionChainedPostsDrainOnPoolOfOne) {
  // The serving layer pumps from completion context: a pool task, as it
  // finishes, posts the NEXT task onto the same pool. Pin that such
  // chains complete on a pool of one even when an outside waiter is
  // help-draining — any link of the chain may run on either thread.
  std::function<void(int)> chain;  // declared before the pool: links may
                                   // still reference it while the pool drains
  ThreadPool pool(1);
  constexpr int kLinks = 64;
  std::atomic<int> ran{0};
  std::promise<void> finished;
  chain = [&pool, &chain, &ran, &finished](int remaining) {
    ran.fetch_add(1, std::memory_order_relaxed);
    if (remaining == 0) {
      finished.set_value();
      return;
    }
    pool.post([&chain, remaining] { chain(remaining - 1); });
  };
  pool.post([&chain] { chain(kLinks - 1); });
  std::future<void> done = finished.get_future();
  while (done.wait_for(std::chrono::milliseconds(0)) !=
         std::future_status::ready) {
    pool.try_run_one();
  }
  EXPECT_EQ(ran.load(), kLinks);
}

}  // namespace
}  // namespace hyperear::runtime
