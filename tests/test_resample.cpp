#include "dsp/resample.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hyperear::dsp {
namespace {

std::vector<double> bandlimited_tone(double cycles_per_sample, std::size_t n) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = std::sin(2.0 * kPi * cycles_per_sample * static_cast<double>(i));
  return x;
}

TEST(SincInterpolate, ExactAtIntegerIndices) {
  const std::vector<double> x = bandlimited_tone(0.05, 64);
  for (std::size_t i = 20; i < 44; ++i) {
    EXPECT_NEAR(sinc_interpolate(x, static_cast<double>(i)), x[i], 1e-6);
  }
}

TEST(SincInterpolate, AccurateBetweenSamples) {
  const double f = 0.08;  // well below Nyquist
  const std::vector<double> x = bandlimited_tone(f, 128);
  for (double idx = 40.0; idx < 80.0; idx += 0.37) {
    const double truth = std::sin(2.0 * kPi * f * idx);
    EXPECT_NEAR(sinc_interpolate(x, idx), truth, 5e-3) << idx;
  }
}

TEST(SincInterpolate, PreconditionsEnforced) {
  EXPECT_THROW((void)sinc_interpolate(std::vector<double>{}, 0.0), PreconditionError);
  const std::vector<double> x{1.0, 2.0};
  EXPECT_THROW((void)sinc_interpolate(x, 0.5, 0), PreconditionError);
}

TEST(Upsample, LengthAndAnchors) {
  const std::vector<double> x = bandlimited_tone(0.05, 32);
  const std::vector<double> up = upsample(x, 4);
  ASSERT_EQ(up.size(), x.size() * 4);
  for (std::size_t i = 8; i < 24; ++i) {
    EXPECT_NEAR(up[4 * i], x[i], 1e-6);
  }
}

TEST(Upsample, FactorOneIsCopy) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> up = upsample(x, 1);
  EXPECT_EQ(up, x);
  EXPECT_THROW((void)upsample(x, 0), PreconditionError);
}

TEST(Upsample, IntermediateSamplesFollowTone) {
  const double f = 0.06;
  const std::vector<double> x = bandlimited_tone(f, 64);
  const std::vector<double> up = upsample(x, 8);
  for (std::size_t k = 200; k < 300; ++k) {
    const double idx = static_cast<double>(k) / 8.0;
    EXPECT_NEAR(up[k], std::sin(2.0 * kPi * f * idx), 1e-2);
  }
}

TEST(ResampleLinear, HalvingKeepsShape) {
  std::vector<double> x(101);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  const std::vector<double> y = resample_linear(x, 100.0, 50.0);
  // Linear ramp resamples exactly.
  for (std::size_t k = 0; k < y.size(); ++k) {
    EXPECT_NEAR(y[k], static_cast<double>(2 * k), 1e-9);
  }
}

TEST(ResampleLinear, UpsamplingInterpolates) {
  const std::vector<double> x{0.0, 1.0};
  const std::vector<double> y = resample_linear(x, 1.0, 4.0);
  ASSERT_EQ(y.size(), 5u);
  EXPECT_NEAR(y[1], 0.25, 1e-12);
  EXPECT_NEAR(y[2], 0.5, 1e-12);
}

TEST(ResampleLinear, BadRatesThrow) {
  const std::vector<double> x{1.0, 2.0};
  EXPECT_THROW((void)resample_linear(x, 0.0, 10.0), PreconditionError);
  EXPECT_THROW((void)resample_linear(x, 10.0, -1.0), PreconditionError);
}

}  // namespace
}  // namespace hyperear::dsp
