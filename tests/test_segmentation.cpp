#include "imu/segmentation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace hyperear::imu {
namespace {

/// Paper-style slide acceleration: a minimum-jerk stroke's acceleration is
/// a scaled, zero-mean wave. Build a record with strokes at given sample
/// offsets.
std::vector<double> record_with_strokes(const std::vector<std::size_t>& starts,
                                        std::size_t stroke_len, std::size_t total,
                                        double amplitude, double noise_rms, Rng& rng) {
  std::vector<double> accel(total);
  for (auto& v : accel) v = rng.gaussian(0.0, noise_rms);
  for (std::size_t s : starts) {
    for (std::size_t i = 0; i < stroke_len && s + i < total; ++i) {
      const double tau = static_cast<double>(i) / static_cast<double>(stroke_len - 1);
      // min-jerk acceleration shape: 60t - 180t^2 + 120t^3, scaled.
      accel[s + i] += amplitude * (60.0 * tau - 180.0 * tau * tau + 120.0 * tau * tau * tau);
    }
  }
  return accel;
}

TEST(PowerLevel, ConstantSignal) {
  const std::vector<double> x(20, 2.0);
  const std::vector<double> p = power_level(x, 4);
  ASSERT_EQ(p.size(), x.size());
  for (double v : p) EXPECT_DOUBLE_EQ(v, 4.0);
}

TEST(PowerLevel, WindowTruncatesAtEnd) {
  const std::vector<double> x{1.0, 1.0, 1.0, 3.0};
  const std::vector<double> p = power_level(x, 4);
  // Last element averages only itself.
  EXPECT_DOUBLE_EQ(p.back(), 9.0);
}

TEST(PowerLevel, ZeroWindowThrows) {
  const std::vector<double> x{1.0};
  EXPECT_THROW((void)power_level(x, 0), PreconditionError);
}

TEST(Segmentation, FindsFiveStrokes) {
  // Mirrors the paper's Fig. 8: back-and-forth slides at 100 Hz.
  Rng rng(71);
  std::vector<std::size_t> starts{100, 280, 460, 640, 820};
  const std::vector<double> accel = record_with_strokes(starts, 100, 1100, 2.5, 0.03, rng);
  const std::vector<Segment> segs = segment_movements(accel);
  ASSERT_EQ(segs.size(), starts.size());
  for (std::size_t i = 0; i < segs.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(segs[i].start), static_cast<double>(starts[i]), 15.0);
  }
}

TEST(Segmentation, QuietRecordYieldsNothing) {
  Rng rng(72);
  const std::vector<double> accel = record_with_strokes({}, 100, 500, 0.0, 0.03, rng);
  EXPECT_TRUE(segment_movements(accel).empty());
}

TEST(Segmentation, ShortBlipRejectedByMinLength) {
  Rng rng(73);
  std::vector<double> accel(500);
  for (auto& v : accel) v = rng.gaussian(0.0, 0.02);
  // A 5-sample spike (e.g. a bump) must not count as a slide.
  for (std::size_t i = 200; i < 205; ++i) accel[i] = 3.0;
  SegmentationOptions opts;
  opts.min_length = 20;
  EXPECT_TRUE(segment_movements(accel, opts).empty());
}

TEST(Segmentation, SlideAtRecordEndClosed) {
  Rng rng(74);
  const std::vector<double> accel = record_with_strokes({420}, 100, 500, 2.5, 0.02, rng);
  const std::vector<Segment> segs = segment_movements(accel);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_LE(segs[0].end, accel.size());
}

TEST(Segmentation, ThresholdSeparatesAmplitudes) {
  Rng rng(75);
  // A weak stroke below threshold and a strong one above.
  std::vector<double> accel = record_with_strokes({100}, 100, 600, 0.03, 0.01, rng);
  const std::vector<double> strong = record_with_strokes({400}, 100, 600, 2.5, 0.0, rng);
  for (std::size_t i = 0; i < accel.size(); ++i) accel[i] += strong[i];
  const std::vector<Segment> segs = segment_movements(accel);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_GT(segs[0].start, 300u);
}

TEST(Segmentation, HysteresisBridgesZeroCrossing) {
  // Min-jerk acceleration crosses zero mid-stroke; the m-sample quiet run
  // requirement must keep the stroke as ONE segment.
  Rng rng(76);
  const std::vector<double> accel = record_with_strokes({100}, 100, 400, 2.5, 0.02, rng);
  SegmentationOptions opts;  // quiet_run = 8 (paper)
  const std::vector<Segment> segs = segment_movements(accel, opts);
  EXPECT_EQ(segs.size(), 1u);
}

TEST(Segmentation, PaperDefaultsExposed) {
  const SegmentationOptions opts;
  EXPECT_EQ(opts.window, 4u);       // W = 4 samples (40 ms at 100 Hz)
  EXPECT_DOUBLE_EQ(opts.threshold, 0.2);
  EXPECT_EQ(opts.quiet_run, 8u);    // m = 8
}

}  // namespace
}  // namespace hyperear::imu
