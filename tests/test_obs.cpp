/// Tests of the observability layer itself (ctest label "obs"): histogram
/// bucket semantics, concurrent shard-merge determinism, exporter golden
/// strings, the null-sink contract (instrumented results bit-identical to
/// uninstrumented ones), tracer span structure, and the engine's
/// registry-backed stats() view round-tripping every error category.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "core/status.hpp"
#include "obs/trace.hpp"
#include "runtime/engine.hpp"
#include "sim/scenario.hpp"

namespace hyperear::obs {
namespace {

// --------------------------------------------------------------------------
// Counters / gauges

TEST(Metrics, CounterAccumulatesAndMergesShards) {
  MetricsRegistry registry;
  const Counter c = registry.counter("requests_total");
  EXPECT_TRUE(static_cast<bool>(c));
  EXPECT_EQ(c.value(), 0.0);
  c.inc();
  c.inc(2.0);
  EXPECT_EQ(c.value(), 3.0);
}

TEST(Metrics, SameNameYieldsTheSameSeries) {
  MetricsRegistry registry;
  const Counter a = registry.counter("shared");
  const Counter b = registry.counter("shared");
  a.inc();
  b.inc();
  EXPECT_EQ(a.value(), 2.0);
  EXPECT_EQ(b.value(), 2.0);
  ASSERT_EQ(registry.snapshot().counters.size(), 1u);
}

TEST(Metrics, GaugeSetIsLastWriteWinsAndAddTracksLevels) {
  MetricsRegistry registry;
  const Gauge g = registry.gauge("queue.depth");
  g.set(5.0);
  EXPECT_EQ(g.value(), 5.0);
  g.add(2.0);
  g.add(-3.0);
  EXPECT_EQ(g.value(), 4.0);
}

// --------------------------------------------------------------------------
// Histogram bucket boundaries (Prometheus `le`: value <= bound)

TEST(Metrics, HistogramBucketBoundariesAreLeInclusive) {
  MetricsRegistry registry;
  const double bounds[] = {1.0, 2.0, 5.0};
  const Histogram h = registry.histogram("latency_ms", bounds);
  h.observe(-3.0);  // below everything -> first bucket
  h.observe(1.0);   // exactly on a bound -> that bucket (le semantics)
  h.observe(1.5);
  h.observe(2.0);
  h.observe(5.0);
  h.observe(5.0001);  // above the last bound -> +Inf bucket

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hs = snap.histograms[0];
  ASSERT_EQ(hs.counts.size(), 4u);  // 3 bounds + implicit +Inf
  EXPECT_EQ(hs.counts[0], 2u);      // -3, 1.0
  EXPECT_EQ(hs.counts[1], 2u);      // 1.5, 2.0
  EXPECT_EQ(hs.counts[2], 1u);      // 5.0
  EXPECT_EQ(hs.counts[3], 1u);      // 5.0001
  EXPECT_EQ(hs.count, 6u);
  EXPECT_DOUBLE_EQ(hs.sum, -3.0 + 1.0 + 1.5 + 2.0 + 5.0 + 5.0001);
}

TEST(Metrics, HistogramRejectsBadBounds) {
  MetricsRegistry registry;
  const std::vector<double> empty;
  EXPECT_THROW(std::ignore = registry.histogram("h", empty), PreconditionError);
  const double unsorted[] = {1.0, 1.0};
  EXPECT_THROW(std::ignore = registry.histogram("h", unsorted), PreconditionError);
  const double good[] = {1.0, 2.0};
  EXPECT_NO_THROW(std::ignore = registry.histogram("h", good));
  const double different[] = {1.0, 3.0};
  EXPECT_THROW(std::ignore = registry.histogram("h", different), PreconditionError);
  // Same bounds re-register fine and share the series.
  const Histogram again = registry.histogram("h", good);
  again.observe(0.5);
  EXPECT_EQ(registry.snapshot().histograms[0].count, 1u);
}

// --------------------------------------------------------------------------
// Concurrent shard merge determinism

TEST(Metrics, ConcurrentIncrementsMergeExactly) {
  MetricsRegistry registry;
  const Counter c = registry.counter("hits");
  const double bounds[] = {10.0, 100.0, 1000.0};
  const Histogram h = registry.histogram("sizes", bounds);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 20000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(static_cast<double>(i % 4) * 100.0);  // 0,100,200,300 -> buckets 0,1,2,2
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Integral increments + fixed shard merge order => exact, deterministic
  // totals regardless of how the writers interleaved.
  EXPECT_EQ(c.value(), static_cast<double>(kThreads * kPerThread));
  const MetricsSnapshot a = registry.snapshot();
  const MetricsSnapshot b = registry.snapshot();
  ASSERT_EQ(a.histograms.size(), 1u);
  EXPECT_EQ(a.histograms[0].count, kThreads * kPerThread);
  EXPECT_EQ(a.histograms[0].counts[0], kThreads * kPerThread / 4);      // 0
  EXPECT_EQ(a.histograms[0].counts[1], kThreads * kPerThread / 4);      // 100
  EXPECT_EQ(a.histograms[0].counts[2], kThreads * kPerThread / 2);      // 200, 300
  EXPECT_EQ(a.histograms[0].counts[3], 0u);
  EXPECT_EQ(a.histograms[0].sum, b.histograms[0].sum);
  EXPECT_EQ(a.counters, b.counters);
}

// --------------------------------------------------------------------------
// Exporter golden strings (integral values print bare, so the renderings
// are exact)

MetricsRegistry& golden_registry(MetricsRegistry& registry) {
  registry.counter("requests_total").inc(3.0);
  registry.gauge("queue.depth").set(2.0);
  const double bounds[] = {1.0, 5.0};
  const Histogram h = registry.histogram("latency_ms", bounds);
  h.observe(0.5);
  h.observe(3.0);
  h.observe(10.0);
  return registry;
}

TEST(Metrics, JsonExporterGolden) {
  MetricsRegistry registry;
  EXPECT_EQ(golden_registry(registry).to_json(),
            "{\n"
            "  \"counters\": {\n"
            "    \"requests_total\": 3\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"queue.depth\": 2\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"latency_ms\": {\"le\": [1, 5], \"counts\": [1, 1, 1], "
            "\"count\": 3, \"sum\": 13.5}\n"
            "  }\n"
            "}\n");
}

TEST(Metrics, JsonExporterEmptyRegistry) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.to_json(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n");
}

TEST(Metrics, PrometheusExporterGolden) {
  MetricsRegistry registry;
  // "queue.depth" must sanitize to queue_depth; buckets are cumulative.
  EXPECT_EQ(golden_registry(registry).to_prometheus(),
            "# TYPE requests_total counter\n"
            "requests_total 3\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth 2\n"
            "# TYPE latency_ms histogram\n"
            "latency_ms_bucket{le=\"1\"} 1\n"
            "latency_ms_bucket{le=\"5\"} 2\n"
            "latency_ms_bucket{le=\"+Inf\"} 3\n"
            "latency_ms_sum 13.5\n"
            "latency_ms_count 3\n");
}

// --------------------------------------------------------------------------
// Null-sink contract

TEST(Metrics, NullHandlesAreInertNoOps) {
  const Counter c;
  const Gauge g;
  const Histogram h;
  EXPECT_FALSE(static_cast<bool>(c));
  EXPECT_FALSE(static_cast<bool>(g));
  EXPECT_FALSE(static_cast<bool>(h));
  c.inc();
  g.set(5.0);
  g.add(1.0);
  h.observe(1.0);
  EXPECT_EQ(c.value(), 0.0);
  EXPECT_EQ(g.value(), 0.0);
}

TEST(Trace, NullTracerSpanIsInert) {
  TraceSpan inert;
  EXPECT_FALSE(static_cast<bool>(inert));
  TraceSpan with_null(nullptr, "asp", 1);
  EXPECT_FALSE(static_cast<bool>(with_null));
  with_null.finish();  // no-op, no crash
}

// --------------------------------------------------------------------------
// Tracer span structure

TEST(Trace, ParentChildStructureAndIdOrder) {
  Tracer tracer;
  {
    TraceSpan session(&tracer, "session", 7);
    {
      TraceSpan asp(&tracer, "asp", 7, &session);
      TraceSpan msp(&tracer, "msp", 7, &session);
    }
  }
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].id, 1u);
  EXPECT_EQ(spans[0].name, "session");
  EXPECT_EQ(spans[0].parent, 0u);  // root
  EXPECT_EQ(spans[1].name, "asp");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[2].name, "msp");
  EXPECT_EQ(spans[2].parent, spans[0].id);
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.session, 7u);
    EXPECT_GE(s.duration_ms, 0.0);
    EXPECT_GE(s.start_ms, 0.0);
  }
  // The parent outlived its children, so it must cover them.
  EXPECT_LE(spans[0].start_ms, spans[1].start_ms);
  EXPECT_GE(spans[0].start_ms + spans[0].duration_ms,
            spans[2].start_ms + spans[2].duration_ms);
}

TEST(Trace, MoveTransfersThePendingRecord) {
  Tracer tracer;
  {
    TraceSpan a(&tracer, "moved", 1);
    TraceSpan b = std::move(a);
    // NOLINTNEXTLINE(bugprone-use-after-move) -- the moved-from probe IS the
    // test: a must read as inactive after the transfer.
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
  }
  ASSERT_EQ(tracer.snapshot().size(), 1u);  // recorded once, not twice
  EXPECT_EQ(tracer.snapshot()[0].name, "moved");
}

// --------------------------------------------------------------------------
// Null-sink bit-identity through the real pipeline

sim::Session small_session(std::uint64_t seed) {
  sim::ScenarioConfig c;
  c.speaker_distance = 4.0;
  c.slides_per_stature = 3;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  Rng rng(seed);
  return sim::make_localization_session(c, rng);
}

TEST(Obs, PipelineResultBitIdenticalWithAndWithoutRegistry) {
  const sim::Session session = small_session(900);
  const auto plain = core::try_localize(session);
  ASSERT_TRUE(plain.has_value());

  MetricsRegistry registry;
  Tracer tracer;
  const ObsContext obs{&registry, &tracer, 42};
  const auto traced = core::try_localize(session, {}, nullptr, &obs);
  ASSERT_TRUE(traced.has_value());

  // Metrics observe, never steer: every deterministic result field must be
  // bit-identical to the uninstrumented run.
  EXPECT_EQ(plain->valid, traced->valid);
  EXPECT_EQ(plain->slides_used, traced->slides_used);
  EXPECT_EQ(plain->estimated_position.x, traced->estimated_position.x);
  EXPECT_EQ(plain->estimated_position.y, traced->estimated_position.y);
  EXPECT_EQ(plain->range, traced->range);
  EXPECT_EQ(plain->estimated_period, traced->estimated_period);
  EXPECT_EQ(plain->sfo_ppm, traced->sfo_ppm);

  // ...and the instrumented run actually reported telemetry.
  const MetricsSnapshot snap = registry.snapshot();
  double sessions_total = 0.0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "pipeline.sessions_total") sessions_total = value;
  }
  EXPECT_EQ(sessions_total, 1.0);
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_GE(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "session");
  EXPECT_EQ(spans[0].session, 42u);
  EXPECT_EQ(spans[1].parent, spans[0].id);  // stages nest under the root
}

// --------------------------------------------------------------------------
// EngineStats::errors_by_category round-trips every category (the extent is
// derived from the enum, not hardcoded)

static_assert(std::tuple_size_v<decltype(runtime::EngineStats::errors_by_category)> ==
                  core::kErrorCategoryCount,
              "stats view must cover every ErrorCategory");

TEST(Obs, EveryErrorCategoryRoundTripsThroughTheStatsView) {
  // Pre-charge the category counters on a shared registry using the same
  // names the engine registers; its stats() view must surface every one.
  auto registry = std::make_shared<MetricsRegistry>();
  std::set<std::string> names;
  for (std::size_t i = 0; i < core::kErrorCategoryCount; ++i) {
    const auto category = static_cast<core::ErrorCategory>(i);
    ASSERT_NE(core::to_string(category), nullptr);
    const std::string name =
        std::string("engine.errors_by_category.") + core::to_string(category);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name: " << name;
    registry->counter(name).inc(static_cast<double>(i + 1));
  }

  runtime::EngineObs obs;
  obs.registry = registry;
  const runtime::BatchEngine engine({}, 1, obs);
  const runtime::EngineStats stats = engine.stats();
  for (std::size_t i = 0; i < core::kErrorCategoryCount; ++i) {
    EXPECT_EQ(stats.errors_by_category[i], i + 1)
        << "category " << core::to_string(static_cast<core::ErrorCategory>(i));
  }
}

}  // namespace
}  // namespace hyperear::obs
