#include "dsp/ols.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"
#include "dsp/correlation.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"

namespace hyperear::dsp {
namespace {

/// O(n*m) reference convolution — the ground truth every streaming result
/// is held against.
std::vector<double> direct_full_conv(std::span<const double> x,
                                     std::span<const double> k) {
  std::vector<double> out(x.size() + k.size() - 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = 0; j < k.size(); ++j) out[i + j] += x[i] * k[j];
  }
  return out;
}

double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

// Accuracy contract (documented in DESIGN.md Section 9): for unit-variance
// inputs at the sizes this library uses, overlap-save agrees with direct
// evaluation to ~1e-13; 1e-9 leaves four orders of magnitude of headroom
// while still catching any real indexing or aliasing bug, which shows up at
// O(1) error, not O(1e-12).
constexpr double kTol = 1e-9;

TEST(ChooseOlsFftSize, PowerOfTwoAtLeastKernelAndDeterministic) {
  for (std::size_t m : {1u, 2u, 7u, 63u, 255u, 1000u, 2205u, 5000u}) {
    const std::size_t n = choose_ols_fft_size(m);
    EXPECT_TRUE(is_pow2(n)) << "m=" << m;
    EXPECT_GE(n, m) << "m=" << m;
    // Deterministic: independently built convolvers must agree on geometry
    // (the bit-identity of the planless and plan-cached overloads rests on
    // this).
    EXPECT_EQ(n, choose_ols_fft_size(m)) << "m=" << m;
  }
  // The paper's band-pass kernel: 255 taps -> 2048-point blocks (the
  // n*log2(n)/(n-m+1) minimum). A change here silently changes every
  // cached-vs-planless comparison, so pin it.
  EXPECT_EQ(choose_ols_fft_size(255), 2048u);
}

TEST(OlsConvolver, MatchesDirectAcrossRandomLengths) {
  Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 400));
    const auto n = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(m), 5000));
    std::vector<double> x = rng.gaussian_vector(n);
    std::vector<double> k = rng.gaussian_vector(m);
    const OlsConvolver ols(k);
    const std::vector<double> got = ols.convolve_full(x);
    const std::vector<double> want = direct_full_conv(x, k);
    EXPECT_LT(max_abs_diff(got, want), kTol) << "n=" << n << " m=" << m;
  }
}

TEST(OlsConvolver, NonPowerOfTwoBoundaryLengths) {
  Rng rng(7);
  // Signal lengths straddling block boundaries for the smallest block the
  // convolver will pick (m=255 -> N=2048 -> L=1794), plus prime-ish lengths.
  const std::size_t m = 255;
  std::vector<double> k = rng.gaussian_vector(m);
  const OlsConvolver ols(k);
  const std::size_t block = ols.block_size();
  for (std::size_t n : {m, m + 1, block - 1, block, block + 1, 2 * block - 1,
                        2 * block, 2 * block + 1, 4099ul}) {
    std::vector<double> x = rng.gaussian_vector(n);
    EXPECT_LT(max_abs_diff(ols.convolve_full(x), direct_full_conv(x, k)), kTol)
        << "n=" << n;
  }
}

TEST(OlsConvolver, KernelEqualsFftSizeEdge) {
  // Forcing fft_size == kernel length shrinks the block to one sample — the
  // degenerate extreme of the overlap-save recurrence (every output sample
  // is its own block, and every pair of blocks shares one packed transform).
  Rng rng(11);
  const std::size_t m = 64;
  std::vector<double> k = rng.gaussian_vector(m);
  const OlsConvolver ols(k, /*fft_size=*/64);
  EXPECT_EQ(ols.block_size(), 1u);
  std::vector<double> x = rng.gaussian_vector(157);
  EXPECT_LT(max_abs_diff(ols.convolve_full(x), direct_full_conv(x, k)), kTol);
}

TEST(OlsConvolver, KernelLongerThanBlock) {
  // fft_size = 256 with a 200-tap kernel gives 57-sample blocks: the kernel
  // spans several blocks' worth of history, so the overlap window reaches
  // far behind the block being produced.
  Rng rng(13);
  const std::size_t m = 200;
  std::vector<double> k = rng.gaussian_vector(m);
  const OlsConvolver ols(k, /*fft_size=*/256);
  EXPECT_EQ(ols.block_size(), 57u);
  EXPECT_LT(ols.block_size(), m);
  std::vector<double> x = rng.gaussian_vector(1000);
  EXPECT_LT(max_abs_diff(ols.convolve_full(x), direct_full_conv(x, k)), kTol);
}

TEST(OlsConvolver, WindowedOutputMatchesSliceOfFull) {
  Rng rng(17);
  const std::size_t m = 101;
  std::vector<double> k = rng.gaussian_vector(m);
  std::vector<double> x = rng.gaussian_vector(3000);
  const OlsConvolver ols(k);
  const std::vector<double> full = ols.convolve_full(x);
  Workspace ws;
  for (int trial = 0; trial < 20; ++trial) {
    const auto offset = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(full.size())));
    const auto count = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(full.size() - offset)));
    std::vector<double> window(count, 0.0);
    ols.convolve_into(x, offset, count, window.data(), ws);
    for (std::size_t i = 0; i < count; ++i) {
      // Exact: a window is the same block arithmetic as the full result.
      EXPECT_EQ(window[i], full[offset + i]) << "offset=" << offset << " i=" << i;
    }
  }
}

TEST(OlsConvolver, MatchesMonolithicFftConvolveWithinTolerance) {
  Rng rng(19);
  std::vector<double> k = rng.gaussian_vector(255);
  std::vector<double> x = rng.gaussian_vector(1u << 14);
  const OlsConvolver ols(k);
  EXPECT_LT(max_abs_diff(ols.convolve_full(x), fft_convolve(x, k)), kTol);
}

TEST(OlsOverloads, FilterSameSpellingsAreBitIdentical) {
  Rng rng(23);
  std::vector<double> taps = rng.gaussian_vector(255);
  const OlsConvolver cached(taps);
  Workspace ws;
  // Large product (OLS path) and small product (direct path) both must be
  // exactly equal between the planless and plan-cached spellings — the
  // contract that lets PipelineContext swap its cache in and out without
  // perturbing a single bit of the pipeline output.
  for (std::size_t n : {100u, 5000u}) {
    std::vector<double> x = rng.gaussian_vector(n);
    const std::vector<double> planless = filter_same(x, taps);
    const std::vector<double> planned = filter_same(x, cached, &ws);
    ASSERT_EQ(planless.size(), planned.size());
    for (std::size_t i = 0; i < planless.size(); ++i) {
      EXPECT_EQ(planless[i], planned[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(OlsOverloads, CorrelateValidSpellingsAreBitIdentical) {
  Rng rng(29);
  std::vector<double> h = rng.gaussian_vector(255);
  const OlsConvolver reversed(std::vector<double>(h.rbegin(), h.rend()));
  Workspace ws;
  for (std::size_t n : {300u, 4000u}) {
    std::vector<double> x = rng.gaussian_vector(n);
    const std::vector<double> planless = correlate_valid(x, h);
    const std::vector<double> planned = correlate_valid(x, reversed, &ws);
    ASSERT_EQ(planless.size(), planned.size());
    for (std::size_t i = 0; i < planless.size(); ++i) {
      EXPECT_EQ(planless[i], planned[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(OlsOverloads, CorrelateFullSpellingsAreBitIdentical) {
  Rng rng(31);
  std::vector<double> h = rng.gaussian_vector(255);
  const OlsConvolver reversed(std::vector<double>(h.rbegin(), h.rend()));
  for (std::size_t n : {200u, 2000u}) {
    std::vector<double> x = rng.gaussian_vector(n);
    const std::vector<double> planless = correlate_full(x, h);
    const std::vector<double> planned = correlate_full(x, reversed);
    ASSERT_EQ(planless.size(), planned.size());
    for (std::size_t i = 0; i < planless.size(); ++i) {
      EXPECT_EQ(planless[i], planned[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(OlsWorkspace, ReuseAcrossMixedSizesDoesNotPerturbResults) {
  Rng rng(37);
  std::vector<double> k = rng.gaussian_vector(127);
  const OlsConvolver ols(k);
  Workspace shared;
  // Interleave sizes so every call inherits a dirty, possibly larger
  // buffer from the previous one.
  for (std::size_t n : {3000u, 130u, 4096u, 127u, 2500u}) {
    std::vector<double> x = rng.gaussian_vector(n);
    const std::vector<double> reused = ols.convolve_full(x, &shared);
    const std::vector<double> fresh = ols.convolve_full(x);
    ASSERT_EQ(reused.size(), fresh.size());
    for (std::size_t i = 0; i < reused.size(); ++i) {
      EXPECT_EQ(reused[i], fresh[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(FftInto, MatchesAllocatingSpellings) {
  Rng rng(41);
  std::vector<double> x = rng.gaussian_vector(300);
  const std::vector<Complex> want = fft_real(x, 1024);
  const FftPlan plan(1024);
  Workspace ws;
  std::vector<Complex>& spectrum = ws.complex_scratch(0, 4096);  // dirty, oversized
  fft_real_into(x, 1024, spectrum, &plan);
  ASSERT_EQ(spectrum.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(spectrum[i], want[i]) << "i=" << i;
  }

  const std::vector<double> round_trip = ifft_to_real(want);
  std::vector<Complex> clobber(want);
  std::vector<double>& out = ws.real_scratch(0, 1);
  ifft_to_real_into(clobber, out, &plan);
  ASSERT_EQ(out.size(), round_trip.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], round_trip[i]) << "i=" << i;
  }
}

TEST(OlsErrors, ContractViolationsThrow) {
  EXPECT_THROW(OlsConvolver(std::vector<double>{}), PreconditionError);
  EXPECT_THROW(OlsConvolver(std::vector<double>(8, 1.0), 48), PreconditionError);
  EXPECT_THROW(OlsConvolver(std::vector<double>(100, 1.0), 64), PreconditionError);
  EXPECT_THROW((void)choose_ols_fft_size(0), PreconditionError);

  const OlsConvolver ols(std::vector<double>(8, 1.0), 64);
  const std::vector<double> x(32, 1.0);
  Workspace ws;
  std::vector<double> out(64, 0.0);
  // full length is 39; a window reaching past it must be rejected.
  EXPECT_THROW(ols.convolve_into(x, 0, 40, out.data(), ws), PreconditionError);
  EXPECT_THROW(ols.convolve_into(x, 39, 1, out.data(), ws), PreconditionError);
  // Even-length kernels have no centered "same" alignment.
  EXPECT_THROW((void)ols.filter_same(x), PreconditionError);
  // Template longer than signal.
  const std::vector<double> tiny(4, 1.0);
  EXPECT_THROW((void)ols.correlate_valid(tiny), PreconditionError);
}

}  // namespace
}  // namespace hyperear::dsp
