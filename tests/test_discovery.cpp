#include "core/discovery.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/scenario.hpp"

namespace hyperear::core {
namespace {

std::vector<TagSignature> registry() {
  return {{"wallet", sim::audible_beacon()},
          {"keys", sim::secondary_band_beacon()},
          {"badge", sim::inaudible_beacon()}};
}

sim::Session record_with(const sim::SpeakerSpec& target, bool with_secondary,
                         std::uint64_t seed) {
  sim::ScenarioConfig c;
  c.speaker = target;
  c.speaker_distance = 4.0;
  c.slides_per_stature = 1;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  if (with_secondary) {
    sim::ScenarioConfig::Interferer itf;
    itf.spec = sim::secondary_band_beacon();
    itf.distance = 3.0;
    itf.lateral_offset = 1.5;
    c.interferers.push_back(itf);
  }
  Rng rng(seed);
  return sim::make_localization_session(c, rng);
}

TEST(Discovery, FindsTheTransmittingTagOnly) {
  const sim::Session s = record_with(sim::audible_beacon(), false, 981);
  const std::vector<TagPresence> scan =
      discover_tags(s.audio.mic1, s.audio.sample_rate, registry());
  ASSERT_EQ(scan.size(), 3u);
  EXPECT_TRUE(scan[0].present) << "wallet (2-6.4 kHz) is transmitting";
  EXPECT_FALSE(scan[1].present) << "keys (7-11 kHz) silent";
  EXPECT_FALSE(scan[2].present) << "badge (17-21 kHz) silent";
}

TEST(Discovery, FindsBothFdmaTags) {
  const sim::Session s = record_with(sim::audible_beacon(), true, 982);
  const std::vector<TagPresence> scan =
      discover_tags(s.audio.mic1, s.audio.sample_rate, registry());
  EXPECT_TRUE(scan[0].present);
  EXPECT_TRUE(scan[1].present);
  EXPECT_FALSE(scan[2].present);
  // The nearer/louder target has the larger amplitude... both present is
  // the contract; amplitudes are diagnostics.
  EXPECT_GT(scan[0].median_amplitude, 0.0);
  EXPECT_GT(scan[1].median_amplitude, 0.0);
}

TEST(Discovery, PeriodicityGateRejectsAperiodicMatches) {
  // A candidate whose band matches but whose period is wrong must fail the
  // periodicity gate even if the matched filter fires.
  const sim::Session s = record_with(sim::audible_beacon(), false, 983);
  TagSignature wrong_period{"impostor", sim::audible_beacon()};
  wrong_period.spec.period_s = 0.31;  // true beacon chirps every 0.2 s
  const std::vector<TagPresence> scan =
      discover_tags(s.audio.mic1, s.audio.sample_rate, {wrong_period});
  ASSERT_EQ(scan.size(), 1u);
  EXPECT_FALSE(scan[0].present);
}

TEST(Discovery, ContextOverloadMatchesPlanFreeScan) {
  // The precomputed-plan overload is an optimization only: verdicts and
  // every diagnostic must be bit-identical to the plan-free scan.
  const sim::Session s = record_with(sim::audible_beacon(), true, 984);
  const DiscoveryContext context(registry(), s.audio.sample_rate);
  const std::vector<TagPresence> direct =
      discover_tags(s.audio.mic1, s.audio.sample_rate, registry());
  const std::vector<TagPresence> cached = discover_tags(s.audio.mic1, context);
  ASSERT_EQ(cached.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(cached[i].name, direct[i].name);
    EXPECT_EQ(cached[i].present, direct[i].present);
    EXPECT_EQ(cached[i].detections, direct[i].detections);
    EXPECT_EQ(cached[i].period_error_s, direct[i].period_error_s);
    EXPECT_EQ(cached[i].median_amplitude, direct[i].median_amplitude);
  }
}

TEST(Discovery, EmptyInputsRejected) {
  EXPECT_THROW((void)discover_tags({}, 44100.0, registry()), PreconditionError);
}

TEST(Discovery, NoCandidatesNoVerdicts) {
  const std::vector<double> quiet(44100, 0.0);
  EXPECT_TRUE(discover_tags(quiet, 44100.0, {}).empty());
}

}  // namespace
}  // namespace hyperear::core
