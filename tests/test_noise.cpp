#include "sim/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dsp/spectrum.hpp"

namespace hyperear::sim {
namespace {

constexpr double kFs = 44100.0;
constexpr std::size_t kN = 1u << 16;

TEST(Noise, WhiteIsSpectrallyFlat) {
  Rng rng(101);
  const std::vector<double> n = make_noise(NoiseType::kWhite, kN, kFs, rng);
  const double low = dsp::band_power(n, kFs, 100.0, 2000.0);
  const double mid = dsp::band_power(n, kFs, 4000.0, 5900.0);
  const double high = dsp::band_power(n, kFs, 10000.0, 11900.0);
  EXPECT_NEAR(mid / low, 1.0, 0.25);
  EXPECT_NEAR(high / mid, 1.0, 0.25);
}

TEST(Noise, VoiceEnergyBelowTwoKilohertz) {
  // The meeting-room argument (Section VII-E): chatter is out of the chirp
  // band, so the band-pass removes it.
  Rng rng(102);
  const std::vector<double> n = make_noise(NoiseType::kVoice, kN, kFs, rng);
  const double below = dsp::band_power(n, kFs, 50.0, 2000.0);
  const double chirp_band = dsp::band_power(n, kFs, 2000.0, 6400.0);
  EXPECT_GT(below / (chirp_band + 1e-30), 10.0);
}

TEST(Noise, MallMusicOverlapsChirpBand) {
  Rng rng(103);
  const std::vector<double> n = make_noise(NoiseType::kMallMusic, kN, kFs, rng);
  const double chirp_band = dsp::band_power(n, kFs, 2000.0, 6400.0);
  const double total = dsp::band_power(n, kFs, 50.0, 21000.0);
  // A substantial fraction of mall noise sits inside the chirp band.
  EXPECT_GT(chirp_band / total, 0.15);
}

TEST(Noise, MallBusyIsNonStationary) {
  Rng rng(104);
  const std::vector<double> n =
      make_noise(NoiseType::kMallBusy, static_cast<std::size_t>(20.0 * kFs), kFs, rng);
  // Compare short-window powers across the record: bursts make the max to
  // min ratio large; off-peak music is much steadier.
  const std::size_t win = static_cast<std::size_t>(kFs);
  std::vector<double> powers;
  for (std::size_t s = 0; s + win <= n.size(); s += win) {
    powers.push_back(dsp::signal_power({n.data() + s, win}));
  }
  double pmin = powers[0], pmax = powers[0];
  for (double p : powers) {
    pmin = std::min(pmin, p);
    pmax = std::max(pmax, p);
  }
  EXPECT_GT(pmax / pmin, 3.0);
}

TEST(Noise, Deterministic) {
  Rng a(105);
  Rng b(105);
  const std::vector<double> n1 = make_noise(NoiseType::kMallMusic, 4096, kFs, a);
  const std::vector<double> n2 = make_noise(NoiseType::kMallMusic, 4096, kFs, b);
  EXPECT_EQ(n1, n2);
}

TEST(CalibrateBandPower, HitsTarget) {
  Rng rng(106);
  std::vector<double> n = make_noise(NoiseType::kWhite, kN, kFs, rng);
  const double target = 0.0123;
  calibrate_band_power(n, kFs, 2000.0, 6400.0, target);
  const double measured = dsp::band_power({n.data(), kN}, kFs, 2000.0, 6400.0);
  EXPECT_NEAR(measured, target, 0.05 * target);
}

TEST(CalibrateBandPower, ReturnsAppliedScale) {
  Rng rng(107);
  std::vector<double> n = make_noise(NoiseType::kWhite, 8192, kFs, rng);
  std::vector<double> orig = n;
  const double scale = calibrate_band_power(n, kFs, 1000.0, 5000.0, 0.5);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_NEAR(n[i], orig[i] * scale, 1e-12);
}

TEST(CalibrateBandPower, Preconditions) {
  std::vector<double> n(1024, 0.0);
  EXPECT_THROW((void)calibrate_band_power(n, kFs, 1000.0, 5000.0, 1.0), PreconditionError);
  std::vector<double> ok(1024, 1.0);
  EXPECT_THROW((void)calibrate_band_power(ok, kFs, 1000.0, 5000.0, 0.0), PreconditionError);
}

TEST(Noise, BadArgumentsThrow) {
  Rng rng(108);
  EXPECT_THROW((void)make_noise(NoiseType::kWhite, 0, kFs, rng), PreconditionError);
  EXPECT_THROW((void)make_noise(NoiseType::kWhite, 100, 0.0, rng), PreconditionError);
}

}  // namespace
}  // namespace hyperear::sim
