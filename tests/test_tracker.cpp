#include "core/tracker.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace hyperear::core {
namespace {

TEST(Tracker, SingleFixIsTheEstimate) {
  BeaconTracker t;
  EXPECT_FALSE(t.has_estimate());
  t.update({3.0, 4.0}, 0.5);
  ASSERT_TRUE(t.has_estimate());
  EXPECT_DOUBLE_EQ(t.estimate().x, 3.0);
  EXPECT_DOUBLE_EQ(t.estimate().y, 4.0);
  EXPECT_DOUBLE_EQ(t.uncertainty(), 0.5);
  EXPECT_EQ(t.fixes(), 1);
}

TEST(Tracker, EqualSigmasAverage) {
  BeaconTracker t;
  t.update({2.0, 0.0}, 0.3);
  t.update({4.0, 0.0}, 0.3);
  EXPECT_DOUBLE_EQ(t.estimate().x, 3.0);
  EXPECT_NEAR(t.uncertainty(), 0.3 / std::sqrt(2.0), 1e-12);
}

TEST(Tracker, AccurateFixDominates) {
  BeaconTracker t;
  t.update({10.0, 0.0}, 1.0);   // far, sloppy
  t.update({2.0, 0.0}, 0.05);   // close, sharp
  EXPECT_NEAR(t.estimate().x, 2.0, 0.05);
}

TEST(Tracker, UncertaintyMonotonicallyShrinks) {
  BeaconTracker t;
  double last = 1e9;
  Rng rng(911);
  for (int i = 0; i < 10; ++i) {
    t.update({rng.gaussian(5.0, 0.1), rng.gaussian(5.0, 0.1)}, 0.4);
    EXPECT_LT(t.uncertainty(), last);
    last = t.uncertainty();
  }
}

TEST(Tracker, ConvergesToTruthUnderNoise) {
  const geom::Vec2 truth{7.0, 3.0};
  Rng rng(912);
  BeaconTracker t;
  for (int i = 0; i < 50; ++i) {
    const double sigma = 0.3;
    t.update({truth.x + rng.gaussian(0.0, sigma), truth.y + rng.gaussian(0.0, sigma)},
             sigma);
  }
  EXPECT_LT(distance(t.estimate(), truth), 0.15);
}

TEST(Tracker, InvalidSigmaThrows) {
  BeaconTracker t;
  EXPECT_THROW(t.update({0, 0}, 0.0), PreconditionError);
  EXPECT_THROW((void)t.estimate(), PreconditionError);
  EXPECT_THROW((void)t.uncertainty(), PreconditionError);
}

TEST(FixSigma, GrowsWithRangeAndHandedness) {
  const double near_ruler = fix_sigma(1.0, false);
  const double far_ruler = fix_sigma(7.0, false);
  const double far_hand = fix_sigma(7.0, true);
  EXPECT_LT(near_ruler, far_ruler);
  EXPECT_LT(far_ruler, far_hand);
  EXPECT_GE(near_ruler, 0.02);  // floor
}

TEST(Guidance, BearingAndDistance) {
  const Guidance g = guide_toward({1.0, 1.0}, {4.0, 5.0});
  EXPECT_DOUBLE_EQ(g.distance, 5.0);
  EXPECT_NEAR(rad2deg(g.bearing_rad), 53.13, 0.01);
}

}  // namespace
}  // namespace hyperear::core
