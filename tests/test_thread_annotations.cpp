/// Behavior tests of the annotated synchronization wrappers in
/// common/thread_annotations.hpp (ctest label "stress", so the tsan preset
/// runs them under ThreadSanitizer — the wrappers' whole job is to carry
/// the locking protocol, so a bug here is a race everywhere). The
/// interesting coverage is the CondVar interop: `wait` temporarily adopts
/// the MutexLock's native handle, and the ThreadPool/engine join pattern
/// notifies while still holding the lock and tears the condvar down
/// immediately after the join.

#include "common/thread_annotations.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hyperear {
namespace {

/// Minimal annotated type, shaped like the runtime's lock-holding classes.
class GuardedCounter {
 public:
  void bump() HE_EXCLUDES(mutex_) {
    const he::MutexLock lock(mutex_);
    ++value_;
  }
  [[nodiscard]] int value() const HE_EXCLUDES(mutex_) {
    const he::MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable he::Mutex mutex_;
  int value_ HE_GUARDED_BY(mutex_) = 0;
};

TEST(ThreadAnnotations, MutexLockProvidesMutualExclusion) {
  GuardedCounter counter;
  constexpr int kThreads = 4;
  constexpr int kBumps = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kBumps; ++i) counter.bump();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kBumps);
}

TEST(ThreadAnnotations, TryLockFailsWhileHeldAndSucceedsWhenFree) {
  he::Mutex mutex;
  mutex.lock();
  std::thread contender([&mutex] {
    const bool acquired = mutex.try_lock();
    EXPECT_FALSE(acquired);
    if (acquired) mutex.unlock();
  });
  contender.join();
  mutex.unlock();

  std::thread second([&mutex] {
    const bool acquired = mutex.try_lock();
    EXPECT_TRUE(acquired);
    if (acquired) mutex.unlock();
  });
  second.join();
}

TEST(ThreadAnnotations, MutexLockReleasesOnException) {
  he::Mutex mutex;
  try {
    const he::MutexLock lock(mutex);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  const bool reacquired = mutex.try_lock();
  EXPECT_TRUE(reacquired);
  if (reacquired) mutex.unlock();
}

TEST(ThreadAnnotations, WaitReleasesTheMutexWhileWaiting) {
  he::Mutex mutex;
  he::CondVar cv;
  bool flag = false;
  std::atomic<bool> entered{false};

  std::thread waiter([&] {
    he::MutexLock lock(mutex);
    entered.store(true);
    while (!flag) cv.wait(lock);
  });

  // Once `entered` is visible the waiter holds the mutex right up until
  // wait() releases it — so acquiring here PROVES the release happened.
  while (!entered.load()) std::this_thread::yield();
  {
    const he::MutexLock lock(mutex);
    flag = true;
  }
  cv.notify_one();
  waiter.join();
}

TEST(ThreadAnnotations, NotifyUnderLockSurvivesImmediateTeardown) {
  // The engine's frame-join shape (BatchEngine::localize_all): the last
  // worker notifies while still holding the lock, and the condvar/mutex
  // pair is destroyed as soon as the join returns. Notifying under the
  // lock is what makes that teardown safe — the waiter cannot observe the
  // predicate and destroy the state between our store and our notify.
  for (int i = 0; i < 100; ++i) {
    struct JoinState {
      he::Mutex m;
      he::CondVar cv;
      bool done = false;
    };
    auto join = std::make_unique<JoinState>();
    std::thread waiter([&join] {
      he::MutexLock lock(join->m);
      while (!join->done) join->cv.wait(lock);
    });
    {
      const he::MutexLock lock(join->m);
      join->done = true;
      join->cv.notify_one();
    }
    waiter.join();
    join.reset();
  }
}

TEST(ThreadAnnotations, PoolStyleProducerConsumerDrainsEveryItem) {
  // The ThreadPool::worker_loop shape end to end: explicit wait loop,
  // drain-before-exit on stop, every item consumed exactly once in order.
  he::Mutex mutex;
  he::CondVar wake;
  std::deque<int> queue;
  bool stopping = false;
  std::vector<int> consumed;

  std::thread worker([&] {
    for (;;) {
      int item = 0;
      {
        he::MutexLock lock(mutex);
        while (!stopping && queue.empty()) wake.wait(lock);
        if (queue.empty()) return;  // stopping and drained
        item = queue.front();
        queue.pop_front();
      }
      consumed.push_back(item);
    }
  });

  constexpr int kItems = 100;
  for (int i = 0; i < kItems; ++i) {
    {
      const he::MutexLock lock(mutex);
      queue.push_back(i);
    }
    wake.notify_one();
  }
  {
    const he::MutexLock lock(mutex);
    stopping = true;
  }
  wake.notify_all();
  worker.join();

  ASSERT_EQ(consumed.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(consumed[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace hyperear
