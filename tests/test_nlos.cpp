#include "core/nlos.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "sim/scenario.hpp"

namespace hyperear::core {
namespace {

sim::ScenarioConfig base_config() {
  sim::ScenarioConfig c;
  c.speaker_distance = 4.0;
  c.slides_per_stature = 3;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  return c;
}

AspResult run_asp(const sim::Session& s) {
  return preprocess_audio(s.audio, s.prior.chirp, 0.2, s.prior.calibration_duration);
}

TEST(Nlos, LineOfSightSessionLooksClean) {
  Rng rng(401);
  const sim::Session s = sim::make_localization_session(base_config(), rng);
  const NlosAssessment a = assess_line_of_sight(run_asp(s));
  ASSERT_TRUE(a.enough_data);
  EXPECT_FALSE(a.suspected);
  EXPECT_LT(a.tdoa_mad_s, 40e-6);
}

TEST(Nlos, BlockedDirectPathDetected) {
  Rng rng(402);
  sim::ScenarioConfig c = base_config();
  c.render.direct_path_gain = 0.03;  // a cabinet between user and beacon
  const sim::Session s = sim::make_localization_session(c, rng);
  const NlosAssessment a = assess_line_of_sight(run_asp(s));
  ASSERT_TRUE(a.enough_data);
  EXPECT_TRUE(a.suspected);
}

TEST(Nlos, TooFewEventsNoVerdict) {
  AspResult asp;
  asp.mic1.push_back({1.0, 0.9, 1.0});
  asp.mic2.push_back({1.0, 0.9, 1.0});
  const NlosAssessment a = assess_line_of_sight(asp);
  EXPECT_FALSE(a.enough_data);
  EXPECT_FALSE(a.suspected);
}

TEST(Nlos, SyntheticStableTdoasPass) {
  AspResult asp;
  for (int i = 0; i < 20; ++i) {
    asp.mic1.push_back({0.1 + 0.2 * i, 0.9, 1.0});
    asp.mic2.push_back({0.1 + 0.2 * i + 1e-4, 0.9, 1.0});
  }
  const NlosAssessment a = assess_line_of_sight(asp);
  ASSERT_TRUE(a.enough_data);
  EXPECT_FALSE(a.suspected);
  EXPECT_NEAR(a.tdoa_mad_s, 0.0, 1e-9);
}

TEST(Nlos, SyntheticJumpyTdoasTrip) {
  AspResult asp;
  for (int i = 0; i < 20; ++i) {
    // Dominant arrival flips between two reflections with very different
    // bearings: inter-mic TDoA jumps by ~0.3 ms.
    const double tdoa = (i % 2 == 0) ? 1.5e-4 : -1.5e-4;
    asp.mic1.push_back({0.1 + 0.2 * i, 0.9, 1.0});
    asp.mic2.push_back({0.1 + 0.2 * i - tdoa, 0.9, 1.0});
  }
  const NlosAssessment a = assess_line_of_sight(asp);
  ASSERT_TRUE(a.enough_data);
  EXPECT_TRUE(a.suspected);
  EXPECT_GT(a.tdoa_mad_s, 1e-4);
}

TEST(Nlos, NlosDegradesLocalizationAsExpected) {
  // Sanity link to the pipeline: when the LoS test trips, the localization
  // really is untrustworthy.
  Rng rng(403);
  sim::ScenarioConfig c = base_config();
  c.render.direct_path_gain = 0.03;
  const sim::Session s = sim::make_localization_session(c, rng);
  const LocalizationResult r = localize(s);
  if (r.valid) {
    EXPECT_GT(localization_error(r, s), 0.4);  // far worse than LoS (~0.1)
  }
}

}  // namespace
}  // namespace hyperear::core
