#include "dsp/peak.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hyperear::dsp {
namespace {

TEST(RefinePeak, ExactParabolaRecovered) {
  // Samples of y = 1 - (x - 5.3)^2 around its apex.
  std::vector<double> y(11);
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double d = static_cast<double>(i) - 5.3;
    y[i] = 1.0 - d * d;
  }
  const Peak p = refine_peak(y, 5);
  EXPECT_NEAR(p.refined_index, 5.3, 1e-9);
  EXPECT_NEAR(p.value, 1.0, 1e-9);
}

TEST(RefinePeak, OffsetBoundedToHalfSample) {
  std::vector<double> y{0.0, 1.0, 0.999, 0.0};
  const Peak p = refine_peak(y, 1);
  EXPECT_GE(p.refined_index, 0.5);
  EXPECT_LE(p.refined_index, 1.5);
}

TEST(RefinePeak, EdgesReturnIntegerIndex) {
  const std::vector<double> y{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(refine_peak(y, 0).refined_index, 0.0);
  EXPECT_DOUBLE_EQ(refine_peak(y, 2).refined_index, 2.0);
}

TEST(RefinePeak, SinusoidSubSampleAccuracy) {
  // The use case: sub-sample timing of a band-limited correlation peak.
  const double true_peak = 50.37;
  std::vector<double> y(101);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = std::cos(0.05 * (static_cast<double>(i) - true_peak));
  }
  std::size_t coarse = 0;
  for (std::size_t i = 1; i < y.size(); ++i) {
    if (y[i] > y[coarse]) coarse = i;
  }
  const Peak p = refine_peak(y, coarse);
  EXPECT_NEAR(p.refined_index, true_peak, 0.01);
}

TEST(RefinePeak, PreconditionsEnforced) {
  const std::vector<double> y{1.0};
  EXPECT_THROW((void)refine_peak(std::vector<double>{}, 0), PreconditionError);
  EXPECT_THROW((void)refine_peak(y, 1), PreconditionError);
}

TEST(FindPeaks, FindsAllAboveThreshold) {
  std::vector<double> y(100, 0.0);
  y[10] = 1.0;
  y[50] = 2.0;
  y[90] = 0.4;  // below threshold
  const std::vector<Peak> peaks = find_peaks(y, 0.5, 5);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].index, 10u);
  EXPECT_EQ(peaks[1].index, 50u);
}

TEST(FindPeaks, SpacingEnforcedGreedyByHeight) {
  std::vector<double> y(100, 0.0);
  y[40] = 1.0;
  y[44] = 2.0;  // taller neighbour within spacing
  const std::vector<Peak> peaks = find_peaks(y, 0.5, 10);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 44u);
}

TEST(FindPeaks, ResultsSortedByIndex) {
  std::vector<double> y(200, 0.0);
  y[150] = 3.0;
  y[20] = 1.0;
  y[80] = 2.0;
  const std::vector<Peak> peaks = find_peaks(y, 0.5, 5);
  ASSERT_EQ(peaks.size(), 3u);
  EXPECT_LT(peaks[0].index, peaks[1].index);
  EXPECT_LT(peaks[1].index, peaks[2].index);
}

TEST(FindPeaks, PlateauCountsOnce) {
  std::vector<double> y(20, 0.0);
  y[5] = 1.0;
  y[6] = 1.0;  // two-sample plateau
  const std::vector<Peak> peaks = find_peaks(y, 0.5, 1);
  EXPECT_EQ(peaks.size(), 1u);
}

TEST(MaxPeak, FindsGlobalMaximum) {
  std::vector<double> y(50, 0.1);
  y[33] = 5.0;
  const Peak p = max_peak(y);
  EXPECT_EQ(p.index, 33u);
}

}  // namespace
}  // namespace hyperear::dsp
