#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hyperear {
namespace {

TEST(Mean, Basics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(mean(v), 2.5, 1e-12);
  EXPECT_THROW((void)mean(std::vector<double>{}), PreconditionError);
}

TEST(Variance, KnownValues) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Population variance is 4; the unbiased sample variance is 32/7.
  EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_THROW((void)variance(std::vector<double>{1.0}), PreconditionError);
}

TEST(Rms, SineLikeValues) {
  const std::vector<double> v{3.0, -4.0};
  EXPECT_NEAR(rms(v), std::sqrt(12.5), 1e-12);
}

TEST(Median, OddAndEven) {
  EXPECT_NEAR(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0, 1e-12);
  EXPECT_NEAR(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5, 1e-12);
  EXPECT_NEAR(median(std::vector<double>{5.0}), 5.0, 1e-12);
}

TEST(Median, DoesNotMutateInput) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  (void)median(v);
  EXPECT_EQ(v[0], 3.0);
  EXPECT_EQ(v[1], 1.0);
}

TEST(MedianAbsoluteDeviation, KnownValue) {
  const std::vector<double> v{1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0};
  // median = 2, |v - 2| = {1,1,0,0,2,4,7}, MAD = 1.
  EXPECT_NEAR(median_absolute_deviation(v), 1.0, 1e-12);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_NEAR(percentile(v, 0.0), 10.0, 1e-12);
  EXPECT_NEAR(percentile(v, 100.0), 50.0, 1e-12);
  EXPECT_NEAR(percentile(v, 50.0), 30.0, 1e-12);
  EXPECT_NEAR(percentile(v, 25.0), 20.0, 1e-12);
  EXPECT_NEAR(percentile(v, 90.0), 46.0, 1e-12);
  EXPECT_THROW((void)percentile(v, 101.0), PreconditionError);
}

TEST(ArgMax, PlainAndAbsolute) {
  const std::vector<double> v{1.0, -7.0, 3.0, 2.0};
  EXPECT_EQ(argmax(v), 2u);
  EXPECT_EQ(argmax_abs(v), 1u);
}

TEST(Summarize, AllFieldsConsistent) {
  Rng rng(7);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng.gaussian(5.0, 2.0));
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, v.size());
  EXPECT_NEAR(s.mean, 5.0, 0.3);
  EXPECT_NEAR(s.median, 5.0, 0.3);
  EXPECT_NEAR(s.stddev, 2.0, 0.3);
  EXPECT_GT(s.p90, s.median);
  EXPECT_LE(s.min, s.median);
  EXPECT_GE(s.max, s.p90);
}

// Property: percentile is monotone in p.
class PercentileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotone, NonDecreasing) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> v;
  for (int i = 0; i < 64; ++i) v.push_back(rng.uniform(-10.0, 10.0));
  double last = percentile(v, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = percentile(v, p);
    EXPECT_GE(cur, last - 1e-12) << "p=" << p;
    last = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone, ::testing::Range(0, 8));

}  // namespace
}  // namespace hyperear
