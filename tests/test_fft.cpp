#include "dsp/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace hyperear::dsp {
namespace {

TEST(Fft, DeltaHasFlatSpectrum) {
  std::vector<Complex> x(8, {0.0, 0.0});
  x[0] = {1.0, 0.0};
  fft_inplace(x);
  for (const Complex& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<Complex> x(n);
  const int k = 5;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = Complex(std::cos(2.0 * kPi * k * static_cast<double>(i) / static_cast<double>(n)),
                   std::sin(2.0 * kPi * k * static_cast<double>(i) / static_cast<double>(n)));
  }
  fft_inplace(x);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == static_cast<std::size_t>(k)) {
      EXPECT_NEAR(std::abs(x[i]), double(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(x[i]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, RoundTripIdentity) {
  Rng rng(21);
  std::vector<Complex> x(256);
  for (auto& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  std::vector<Complex> orig = x;
  fft_inplace(x);
  ifft_inplace(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(x[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(22);
  std::vector<Complex> x(128);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = Complex(rng.gaussian(), 0.0);
    time_energy += std::norm(v);
  }
  fft_inplace(x);
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / double(x.size()), time_energy, 1e-8 * time_energy);
}

TEST(Fft, NonPowerOfTwoThrows) {
  std::vector<Complex> x(12);
  EXPECT_THROW(fft_inplace(x), PreconditionError);
}

TEST(FftPlan, BitIdenticalToPlanlessTransforms) {
  // The plan caches bit-reversal and twiddle tables; it must reproduce the
  // planless path exactly (not approximately) so cached-plan pipelines are
  // bit-identical to context-free ones.
  Rng rng(25);
  for (const std::size_t n : {std::size_t{2}, std::size_t{8}, std::size_t{64},
                              std::size_t{1024}}) {
    std::vector<Complex> planned(n);
    for (auto& v : planned) v = Complex(rng.gaussian(), rng.gaussian());
    std::vector<Complex> planless = planned;
    const FftPlan plan(n);
    EXPECT_EQ(plan.size(), n);
    plan.forward(planned);
    fft_inplace(planless);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(planned[i].real(), planless[i].real()) << "n=" << n << " i=" << i;
      EXPECT_EQ(planned[i].imag(), planless[i].imag()) << "n=" << n << " i=" << i;
    }
    plan.inverse(planned);
    ifft_inplace(planless);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(planned[i].real(), planless[i].real()) << "n=" << n << " i=" << i;
      EXPECT_EQ(planned[i].imag(), planless[i].imag()) << "n=" << n << " i=" << i;
    }
  }
}

TEST(FftPlan, RejectsBadSizes) {
  EXPECT_THROW(FftPlan(12), PreconditionError);
  const FftPlan plan(8);
  std::vector<Complex> x(4);
  EXPECT_THROW(plan.forward(x), PreconditionError);
}

TEST(FftReal, PadsToPowerOfTwo) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<Complex> spec = fft_real(x);
  EXPECT_EQ(spec.size(), 4u);
  const std::vector<Complex> spec2 = fft_real(x, 10);
  EXPECT_EQ(spec2.size(), 16u);
}

TEST(FftReal, ConjugateSymmetry) {
  Rng rng(23);
  std::vector<double> x(64);
  for (auto& v : x) v = rng.gaussian();
  const std::vector<Complex> spec = fft_real(x);
  for (std::size_t k = 1; k < spec.size() / 2; ++k) {
    EXPECT_NEAR(spec[k].real(), spec[spec.size() - k].real(), 1e-10);
    EXPECT_NEAR(spec[k].imag(), -spec[spec.size() - k].imag(), 1e-10);
  }
}

TEST(FftConvolve, MatchesDirectConvolution) {
  Rng rng(24);
  std::vector<double> a(37), b(12);
  for (auto& v : a) v = rng.gaussian();
  for (auto& v : b) v = rng.gaussian();
  const std::vector<double> fast = fft_convolve(a, b);
  ASSERT_EQ(fast.size(), a.size() + b.size() - 1);
  for (std::size_t k = 0; k < fast.size(); ++k) {
    double direct = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const long long j = static_cast<long long>(k) - static_cast<long long>(i);
      if (j >= 0 && j < static_cast<long long>(b.size())) direct += a[i] * b[static_cast<std::size_t>(j)];
    }
    EXPECT_NEAR(fast[k], direct, 1e-9);
  }
}

TEST(FftConvolve, DeltaIsIdentity) {
  const std::vector<double> x{1.0, -2.0, 3.0, 0.5};
  const std::vector<double> delta{1.0};
  const std::vector<double> y = fft_convolve(x, delta);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-12);
}

}  // namespace
}  // namespace hyperear::dsp
