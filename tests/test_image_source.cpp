#include "sim/image_source.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <stdexcept>

#include "common/error.hpp"

namespace hyperear::sim {
namespace {

RoomSpec small_room() {
  RoomSpec r;
  r.length = 10.0;
  r.width = 8.0;
  r.height = 3.0;
  r.absorption = 0.36;  // reflection amplitude 0.8
  r.max_order = 2;
  return r;
}

TEST(ImageSource, DirectPathOnlyAtOrderZero) {
  RoomSpec room = small_room();
  room.max_order = 0;
  const geom::Vec3 src{3.0, 4.0, 1.5};
  const ImageSourceModel ism(room, src);
  ASSERT_EQ(ism.paths().size(), 1u);
  EXPECT_EQ(ism.paths()[0].order, 0);
  EXPECT_DOUBLE_EQ(ism.paths()[0].gain, 1.0);
  EXPECT_DOUBLE_EQ(distance(ism.paths()[0].image, src), 0.0);
}

TEST(ImageSource, PathCountMatchesOctahedralNumbers) {
  // |mx|+|my|+|mz| <= k lattice points: 1, 7, 25 for k = 0, 1, 2.
  const geom::Vec3 src{3.0, 4.0, 1.5};
  RoomSpec room = small_room();
  room.max_order = 1;
  EXPECT_EQ(ImageSourceModel(room, src).paths().size(), 7u);
  room.max_order = 2;
  EXPECT_EQ(ImageSourceModel(room, src).paths().size(), 25u);
}

TEST(ImageSource, FirstOrderImagesMirroredCorrectly) {
  const geom::Vec3 src{3.0, 4.0, 1.5};
  const ImageSourceModel ism(small_room(), src);
  // Expected first-order images across the six walls.
  const std::vector<geom::Vec3> expected{
      {-3.0, 4.0, 1.5}, {17.0, 4.0, 1.5},   // x = 0 and x = L walls
      {3.0, -4.0, 1.5}, {3.0, 12.0, 1.5},   // y walls
      {3.0, 4.0, -1.5}, {3.0, 4.0, 4.5},    // floor and ceiling
  };
  for (const geom::Vec3& e : expected) {
    bool found = false;
    for (const ImagePath& p : ism.paths()) {
      if (distance(p.image, e) < 1e-9) {
        found = true;
        EXPECT_EQ(p.order, 1);
        EXPECT_NEAR(p.gain, 0.8, 1e-12);
      }
    }
    EXPECT_TRUE(found) << "missing image at " << e.x << "," << e.y << "," << e.z;
  }
}

TEST(ImageSource, GainDecaysWithOrder) {
  const ImageSourceModel ism(small_room(), {3.0, 4.0, 1.5});
  for (const ImagePath& p : ism.paths()) {
    EXPECT_NEAR(p.gain, std::pow(0.8, p.order), 1e-12);
  }
}

TEST(ImageSource, ScatteringReducesSpecularGain) {
  RoomSpec room = small_room();
  room.scattering = 0.5;
  const ImageSourceModel ism(room, {3.0, 4.0, 1.5});
  for (const ImagePath& p : ism.paths()) {
    EXPECT_NEAR(p.gain, std::pow(0.8 * 0.5, p.order), 1e-12);
  }
}

const ImagePath& direct_path(const ImageSourceModel& ism) {
  for (const ImagePath& p : ism.paths()) {
    if (p.order == 0) return p;
  }
  throw std::logic_error("no direct path");
}

TEST(ImageSource, AmplitudeFollowsInverseDistance) {
  const ImageSourceModel ism(small_room(), {3.0, 4.0, 1.5});
  const ImagePath& direct = direct_path(ism);
  const geom::Vec3 rx{7.0, 4.0, 1.5};
  EXPECT_NEAR(ism.amplitude_at(direct, rx), 1.0 / 4.0, 1e-12);
  // Distance floored at 0.1 m to avoid singularities.
  EXPECT_NEAR(ism.amplitude_at(direct, {3.0, 4.0, 1.5}), 10.0, 1e-9);
}

TEST(ImageSource, DelayUsesSoundSpeed) {
  const ImageSourceModel ism(small_room(), {3.0, 4.0, 1.5});
  const geom::Vec3 rx{6.43, 4.0, 1.5};
  EXPECT_NEAR(ism.delay_at(direct_path(ism), rx, 343.0), 0.01, 1e-9);
}

TEST(ImageSource, FloorBounceGeometry) {
  // Classic check: the floor image path length equals the reflected ray.
  const geom::Vec3 src{2.0, 4.0, 1.0};
  const geom::Vec3 rx{6.0, 4.0, 1.0};
  const ImageSourceModel ism(small_room(), src);
  for (const ImagePath& p : ism.paths()) {
    if (distance(p.image, geom::Vec3{2.0, 4.0, -1.0}) < 1e-9) {
      // Path length = sqrt(dx^2 + (z_src + z_rx)^2).
      EXPECT_NEAR(distance(p.image, rx), std::sqrt(16.0 + 4.0), 1e-9);
      return;
    }
  }
  FAIL() << "floor image not generated";
}

TEST(ImageSource, SourceMustBeInside) {
  EXPECT_THROW(ImageSourceModel(small_room(), {-1.0, 4.0, 1.5}), PreconditionError);
  EXPECT_THROW(ImageSourceModel(small_room(), {3.0, 9.0, 1.5}), PreconditionError);
  EXPECT_THROW(ImageSourceModel(small_room(), {3.0, 4.0, 3.5}), PreconditionError);
}

TEST(ImageSource, ParameterValidation) {
  RoomSpec room = small_room();
  room.absorption = 1.5;
  EXPECT_THROW(ImageSourceModel(room, {3, 4, 1.5}), PreconditionError);
  room = small_room();
  room.scattering = 1.0;
  EXPECT_THROW(ImageSourceModel(room, {3, 4, 1.5}), PreconditionError);
  room = small_room();
  room.max_order = -1;
  EXPECT_THROW(ImageSourceModel(room, {3, 4, 1.5}), PreconditionError);
}

}  // namespace
}  // namespace hyperear::sim
