#include "dsp/stft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "dsp/chirp.hpp"

namespace hyperear::dsp {
namespace {

std::vector<double> tone(double freq, double fs, std::size_t n) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = std::sin(2.0 * kPi * freq * static_cast<double>(i) / fs);
  return x;
}

TEST(Stft, FrameCountMatchesHop) {
  const std::vector<double> x(10000, 0.0);
  StftOptions opts;
  opts.frame = 1024;
  opts.hop = 512;
  const Spectrogram s = stft(x, 44100.0, opts);
  EXPECT_EQ(s.frames(), (10000 - 1024) / 512 + 1);
  EXPECT_EQ(s.bins(), 513u);
}

TEST(Stft, TonePeaksInCorrectBin) {
  const double fs = 44100.0;
  const std::vector<double> x = tone(4000.0, fs, 44100);
  const Spectrogram s = stft(x, fs);
  for (std::size_t t = 2; t < s.frames(); t += 17) {
    std::size_t best = 0;
    for (std::size_t k = 1; k < s.bins(); ++k) {
      if (s.magnitude[t][k] > s.magnitude[t][best]) best = k;
    }
    EXPECT_NEAR(s.freq_of(best), 4000.0, 2.0 * s.bin_hz) << "frame " << t;
  }
}

TEST(Stft, TimeOfIncreasesByHop) {
  const std::vector<double> x(8192, 0.0);
  StftOptions opts;
  opts.frame = 1024;
  opts.hop = 256;
  const Spectrogram s = stft(x, 44100.0, opts);
  EXPECT_NEAR(s.time_of(1) - s.time_of(0), 256.0 / 44100.0, 1e-12);
}

TEST(Stft, Preconditions) {
  const std::vector<double> x(100, 0.0);
  StftOptions opts;
  opts.frame = 1024;
  EXPECT_THROW((void)stft(x, 44100.0, opts), PreconditionError);
  opts.frame = 64;
  opts.hop = 0;
  EXPECT_THROW((void)stft(x, 44100.0, opts), PreconditionError);
  opts.hop = 128;  // hop > frame
  EXPECT_THROW((void)stft(x, 44100.0, opts), PreconditionError);
}

TEST(BandEnergyTrack, LocatesBurst) {
  const double fs = 44100.0;
  std::vector<double> x(44100, 0.0);
  // A 3 kHz burst in the middle second half.
  const std::vector<double> t = tone(3000.0, fs, 44100);
  for (std::size_t i = 22050; i < 33000; ++i) x[i] = t[i];
  const Spectrogram s = stft(x, fs);
  const std::vector<double> track = band_energy_track(s, 2500.0, 3500.0);
  // Energy during the burst dwarfs energy before it.
  const std::size_t burst_frame = static_cast<std::size_t>(25000 / s.hop);
  const std::size_t quiet_frame = static_cast<std::size_t>(5000 / s.hop);
  EXPECT_GT(track[burst_frame], 100.0 * (track[quiet_frame] + 1e-12));
}

TEST(PeakFrequencyTrack, FollowsChirpSweep) {
  // The beacon chirp's instantaneous frequency must trace up then down.
  const double fs = 44100.0;
  const Chirp chirp{ChirpParams{}};
  std::vector<double> x(static_cast<std::size_t>(0.08 * fs), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = chirp.value(static_cast<double>(i) / fs);
  StftOptions opts;
  opts.frame = 256;
  opts.hop = 64;
  const Spectrogram s = stft(x, fs, opts);
  const std::vector<double> track = peak_frequency_track(s, 1500.0, 7000.0);
  // Compare the tracked frequency with the analytic trajectory at a few
  // mid-sweep frames.
  int checked = 0;
  for (std::size_t t = 0; t < s.frames(); ++t) {
    const double time = s.time_of(t);
    if (time < 0.008 || time > 0.042) continue;
    EXPECT_NEAR(track[t], chirp.instantaneous_frequency(time), 500.0) << time;
    ++checked;
  }
  EXPECT_GE(checked, 10);
}

}  // namespace
}  // namespace hyperear::dsp
