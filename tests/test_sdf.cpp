#include "core/sdf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "imu/preprocess.hpp"
#include "sim/scenario.hpp"

namespace hyperear::core {
namespace {

sim::ScenarioConfig sweep_config() {
  sim::ScenarioConfig c;
  c.speaker_distance = 4.0;
  c.speaker_height = 1.3;
  c.phone_height = 1.3;
  c.jitter = sim::ruler_jitter();
  return c;
}

TEST(Sdf, PairsInterMicTdoas) {
  AspResult asp;
  for (int i = 0; i < 10; ++i) {
    asp.mic1.push_back({0.1 + 0.2 * i, 0.9});
    asp.mic2.push_back({0.1 + 0.2 * i + 0.0002, 0.9});  // 0.2 ms TDoA
  }
  const std::vector<TdoaSample> samples = pair_inter_mic_tdoas(asp, 0.7e-3);
  ASSERT_EQ(samples.size(), 10u);
  for (const TdoaSample& s : samples) EXPECT_NEAR(s.tdoa_s, -0.0002, 1e-9);
}

TEST(Sdf, UnpairableEventsDropped) {
  AspResult asp;
  asp.mic1.push_back({1.0, 0.9});
  asp.mic2.push_back({1.5, 0.9});  // 0.5 s apart: not the same chirp
  EXPECT_TRUE(pair_inter_mic_tdoas(asp, 0.7e-3).empty());
}

TEST(Sdf, FindsDirectionDuringSweep) {
  // The phone starts facing the speaker along body +y (alpha = 0) and
  // sweeps its yaw; the zero crossing happens when the speaker passes the
  // body +x axis (alpha = 90 deg), i.e. after a -90 deg yaw... here we
  // sweep 0 -> -pi so the +x axis passes the speaker direction.
  Rng rng(161);
  const sim::Session s =
      sim::make_rotation_sweep_session(sweep_config(), deg2rad(60.0), deg2rad(-60.0),
                                       8.0, rng);
  const AspResult asp = preprocess_audio(s.audio, s.prior.chirp, 0.2, 1.0);
  const imu::MotionSignals motion = imu::preprocess(s.imu);
  const SdfResult r = find_direction(asp, motion);
  ASSERT_TRUE(r.found);
  // Speaker is along world +x; in-direction yaw = 0. The estimated yaw is
  // relative to the sweep start (+60 deg), so expect -60 deg.
  EXPECT_NEAR(rad2deg(r.yaw_rad), -60.0, 3.0);
  EXPECT_TRUE(r.speaker_on_positive_x);
}

TEST(Sdf, SweepTraceMatchesCosineModel) {
  // Fig. 7: TDoA(alpha) = -D cos(alpha) / S.
  Rng rng(162);
  const sim::Session s =
      sim::make_rotation_sweep_session(sweep_config(), 0.0, deg2rad(-180.0), 10.0, rng);
  const AspResult asp = preprocess_audio(s.audio, s.prior.chirp, 0.2, 1.0);
  const imu::MotionSignals motion = imu::preprocess(s.imu);
  const SdfResult r = find_direction(asp, motion);
  ASSERT_GE(r.samples.size(), 30u);
  const double d = s.config.phone.mic_separation;
  int checked = 0;
  for (const TdoaSample& ts : r.samples) {
    if (ts.time_s < 1.2 || ts.time_s > 10.8) continue;  // inside the sweep
    const double yaw = integrated_yaw_at(motion, ts.time_s);
    // alpha is the angle from body +y to the speaker (at world +x):
    // alpha = 90deg + (-yaw)... with yaw measured from the start pose where
    // the speaker sits at alpha0 = 90 deg relative to body +y? Compute
    // directly: body +y at yaw psi points (-sin psi, cos psi); speaker at
    // +x. cos(alpha) = dot = -sin(psi).
    const double cos_alpha = -std::sin(yaw);
    const double expected = -d * cos_alpha / kSpeedOfSound;
    EXPECT_NEAR(ts.tdoa_s, expected, 6e-5) << "t=" << ts.time_s;
    ++checked;
  }
  EXPECT_GE(checked, 20);
}

TEST(Sdf, NoCrossingWhenSweepAvoidsDirection) {
  // Sweep far from the in-direction: no zero crossing of sufficient swing.
  Rng rng(163);
  const sim::Session s = sim::make_rotation_sweep_session(
      sweep_config(), deg2rad(140.0), deg2rad(60.0), 6.0, rng);
  const AspResult asp = preprocess_audio(s.audio, s.prior.chirp, 0.2, 1.0);
  const imu::MotionSignals motion = imu::preprocess(s.imu);
  const SdfResult r = find_direction(asp, motion);
  EXPECT_FALSE(r.found);
}

TEST(Sdf, IntegratedYawLinearInterpolation) {
  imu::MotionSignals m;
  m.sample_rate = 100.0;
  m.gyro_z.assign(201, 0.1);  // constant 0.1 rad/s
  m.lin_accel_x.assign(201, 0.0);
  m.lin_accel_y.assign(201, 0.0);
  m.lin_accel_z.assign(201, 0.0);
  m.gyro_x.assign(201, 0.0);
  m.gyro_y.assign(201, 0.0);
  EXPECT_NEAR(integrated_yaw_at(m, 1.0), 0.1, 1e-6);
  EXPECT_NEAR(integrated_yaw_at(m, 1.505), 0.1505, 1e-6);
  // Clamped beyond the record.
  EXPECT_NEAR(integrated_yaw_at(m, 99.0), 0.2, 1e-6);
}

}  // namespace
}  // namespace hyperear::core
