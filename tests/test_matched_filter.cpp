#include "dsp/matched_filter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/chirp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hyperear::dsp {
namespace {

constexpr double kFs = 44100.0;

/// Render chirps at the given start times into a noisy buffer.
std::vector<double> make_recording(const Chirp& chirp, const std::vector<double>& starts,
                                   double duration, double noise_rms, Rng& rng,
                                   double gain = 1.0) {
  std::vector<double> x(static_cast<std::size_t>(duration * kFs), 0.0);
  for (auto& v : x) v = rng.gaussian(0.0, noise_rms);
  for (double t0 : starts) {
    for (std::size_t n = 0; n < x.size(); ++n) {
      const double t = static_cast<double>(n) / kFs - t0;
      if (t >= 0.0 && t <= chirp.params().duration_s) x[n] += gain * chirp.value(t);
    }
  }
  return x;
}

MatchedFilterDetector make_detector(const Chirp& chirp) {
  DetectorConfig cfg;
  cfg.sample_rate = kFs;
  return MatchedFilterDetector(chirp.reference(kFs), cfg);
}

TEST(MatchedFilter, DetectsSingleChirp) {
  const Chirp chirp{ChirpParams{}};
  Rng rng(41);
  const std::vector<double> x = make_recording(chirp, {0.3}, 1.0, 0.01, rng);
  const auto detections = make_detector(chirp).detect(x);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_NEAR(detections[0].time_s, 0.3, 1e-4);
  EXPECT_GT(detections[0].score, 0.8);
}

TEST(MatchedFilter, SubSampleTiming) {
  const Chirp chirp{ChirpParams{}};
  Rng rng(42);
  // A start time deliberately between samples.
  const double t0 = 0.3 + 0.4 / kFs;
  const std::vector<double> x = make_recording(chirp, {t0}, 1.0, 0.005, rng);
  const auto detections = make_detector(chirp).detect(x);
  ASSERT_EQ(detections.size(), 1u);
  // Sub-sample refinement should land within ~0.2 samples.
  EXPECT_NEAR(detections[0].time_s, t0, 0.25 / kFs);
}

TEST(MatchedFilter, PeriodicTrainAllFound) {
  const Chirp chirp{ChirpParams{}};
  Rng rng(43);
  std::vector<double> starts;
  for (int i = 0; i < 12; ++i) starts.push_back(0.1 + 0.2 * i);
  const std::vector<double> x = make_recording(chirp, starts, 2.7, 0.02, rng);
  const auto detections = make_detector(chirp).detect(x);
  ASSERT_EQ(detections.size(), starts.size());
  for (std::size_t i = 0; i < starts.size(); ++i) {
    EXPECT_NEAR(detections[i].time_s, starts[i], 1e-4);
  }
}

TEST(MatchedFilter, NoFalsePositivesInNoise) {
  const Chirp chirp{ChirpParams{}};
  Rng rng(44);
  const std::vector<double> x = make_recording(chirp, {}, 1.5, 0.1, rng);
  EXPECT_TRUE(make_detector(chirp).detect(x).empty());
}

TEST(MatchedFilter, SurvivesLowSnr) {
  const Chirp chirp{ChirpParams{}};
  Rng rng(45);
  // In-band chirp RMS ~ 0.6 over its support; noise RMS 0.5 across the
  // band is roughly 0 dB broadband; the matched filter gain is ~23 dB.
  const std::vector<double> x = make_recording(chirp, {0.5, 0.7, 0.9}, 1.5, 0.5, rng);
  const auto detections = make_detector(chirp).detect(x);
  EXPECT_GE(detections.size(), 2u);
}

TEST(MatchedFilter, AmplitudeGateDropsWeakEcho) {
  const Chirp chirp{ChirpParams{}};
  Rng rng(46);
  // Three strong arrivals plus one 10x weaker "echo" arrival well separated
  // in time (0.15 s after the last, beyond min spacing).
  std::vector<double> x = make_recording(chirp, {0.3, 0.5, 0.7}, 1.4, 0.01, rng);
  {
    Rng rng2(47);
    const std::vector<double> echo = make_recording(chirp, {0.85}, 1.4, 0.0, rng2, 0.1);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += echo[i];
  }
  const auto detections = make_detector(chirp).detect(x);
  ASSERT_EQ(detections.size(), 3u);
  for (const auto& d : detections) EXPECT_LT(d.time_s, 0.8);
}

TEST(MatchedFilter, StrongerArrivalWinsWithinSpacing) {
  const Chirp chirp{ChirpParams{}};
  Rng rng(48);
  // Direct at 0.5 with an echo 30 ms later at half amplitude: one detection,
  // anchored on the direct (earlier, stronger) arrival.
  std::vector<double> x = make_recording(chirp, {0.5}, 1.2, 0.01, rng);
  {
    Rng rng2(49);
    const std::vector<double> echo = make_recording(chirp, {0.53}, 1.2, 0.0, rng2, 0.5);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += echo[i];
  }
  const auto detections = make_detector(chirp).detect(x);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_NEAR(detections[0].time_s, 0.5, 5e-4);
}

TEST(MatchedFilter, ChunkingIsSeamless) {
  const Chirp chirp{ChirpParams{}};
  Rng rng(50);
  // Recording much longer than one chunk, with a chirp near each boundary.
  DetectorConfig cfg;
  cfg.sample_rate = kFs;
  cfg.chunk = 1u << 14;  // ~0.37 s chunks
  const double boundary = static_cast<double>(cfg.chunk) / kFs;
  const std::vector<double> starts{boundary - 0.02, 2.0 * boundary - 0.02, 1.0};
  const std::vector<double> x = make_recording(chirp, starts, 2.0, 0.01, rng);
  const MatchedFilterDetector detector(chirp.reference(kFs), cfg);
  const auto detections = detector.detect(x);
  EXPECT_EQ(detections.size(), 3u);
}

TEST(MatchedFilter, MinSpacingInvariantToChunkPartition) {
  // Regression: min spacing was once enforced per chunk (plus a merge pass
  // that only compared adjacent chunks), so the set of survivors depended
  // on where the chunk boundaries fell. Three arrivals — the middle one
  // within min spacing of both neighbours — must resolve to the same two
  // survivors whether the cluster is split across small chunks or seen
  // whole by one big chunk.
  const Chirp chirp{ChirpParams{}};
  Rng rng(51);
  // With chunk 8192 and a 2205-sample reference the hop is 5988, so the
  // lag boundary at 3*5988 = 17964 splits the cluster below between the
  // middle and last arrival.
  const double t1 = 14000.0 / kFs;
  const double t2 = 16600.0 / kFs;
  const double t3 = 19200.0 / kFs;
  std::vector<double> x = make_recording(chirp, {t1}, 1.0, 0.005, rng, 0.5);
  {
    Rng r2(52);
    const auto b = make_recording(chirp, {t2}, 1.0, 0.0, r2, 0.6);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += b[i];
  }
  {
    Rng r3(53);
    const auto c = make_recording(chirp, {t3}, 1.0, 0.0, r3, 0.7);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += c[i];
  }
  DetectorConfig small_cfg;
  small_cfg.sample_rate = kFs;
  small_cfg.min_spacing_s = 5000.0 / kFs;  // middle conflicts with both ends
  small_cfg.chunk = 8192;                  // boundary lands inside the cluster
  DetectorConfig big_cfg = small_cfg;
  big_cfg.chunk = 1u << 16;  // the whole cluster fits in one chunk

  const std::vector<double>& ref = chirp.reference(kFs);
  const auto small_d = MatchedFilterDetector(ref, small_cfg).detect(x);
  const auto big_d = MatchedFilterDetector(ref, big_cfg).detect(x);

  // Strongest-first: the 0.7 arrival wins, evicts the 0.6 inside its
  // spacing window, and the 0.5 (far enough from the winner) survives.
  ASSERT_EQ(big_d.size(), 2u);
  ASSERT_EQ(small_d.size(), big_d.size());
  for (std::size_t i = 0; i < big_d.size(); ++i) {
    // Different chunk sizes use different FFT lengths, so allow rounding
    // differences in the refined times — but not a different decision.
    EXPECT_NEAR(small_d[i].time_s, big_d[i].time_s, 1e-6);
  }
  EXPECT_NEAR(big_d[0].time_s, t1, 1e-4);
  EXPECT_NEAR(big_d[1].time_s, t3, 1e-4);
}

TEST(MatchedFilter, ArrivalOnChunkSeamDetectedOnce) {
  // Land the correlation peak exactly on the final lag of a chunk: the
  // local-maximum test needs the first lag of the NEXT chunk, so the
  // candidate must be deferred across the seam — and must not be reported
  // by both chunks.
  const Chirp chirp{ChirpParams{}};
  Rng rng(54);
  DetectorConfig cfg;
  cfg.sample_rate = kFs;
  cfg.chunk = 8192;
  const std::vector<double>& ref = chirp.reference(kFs);
  const std::size_t hop = cfg.chunk - (ref.size() - 1);
  const std::size_t peak = 4 * hop - 1;  // last lag of chunk 3
  const double t0 = static_cast<double>(peak) / kFs;
  const std::vector<double> x = make_recording(chirp, {t0}, 1.0, 0.005, rng);
  const auto detections = MatchedFilterDetector(ref, cfg).detect(x);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_NEAR(detections[0].time_s, t0, 1e-4);
}

/// Run the incremental caller protocol: reveal the recording in slices of
/// the given sizes (cycled), process every chunk of the fixed schedule as
/// soon as STRICTLY more than its end is available (certainly full,
/// certainly non-final), then drain the tail once the length is known.
std::vector<Detection> stream_detect(const MatchedFilterDetector& det,
                                     std::span<const double> x,
                                     const std::vector<std::size_t>& slice_sizes,
                                     const obs::ObsContext* obs = nullptr) {
  const std::size_t ref_len = det.reference().size();
  const std::size_t chunk = det.config().chunk;
  DetectorWorkspace ws;
  DetectorStream stream;
  det.stream_begin(stream, ws);
  std::size_t avail = 0;
  std::size_t cursor = 0;
  while (avail < x.size()) {
    avail = std::min(x.size(),
                     avail + slice_sizes[cursor++ % slice_sizes.size()]);
    while (avail > stream.next_start + chunk) {
      det.stream_chunk(x.subspan(stream.next_start, chunk), false, stream, ws);
    }
  }
  while (stream.next_start < x.size()) {
    const std::size_t start = stream.next_start;
    const std::size_t len = std::min(chunk, x.size() - start);
    if (len < ref_len) break;
    const bool final_chunk = start + len == x.size();
    det.stream_chunk(x.subspan(start, len), final_chunk, stream, ws);
    if (final_chunk) break;
  }
  std::vector<Detection> out;
  det.stream_end(stream, ws, out, obs);
  return out;
}

TEST(MatchedFilter, StreamProtocolBitIdenticalToDetectAcrossChunkings) {
  // The detector half of the streaming tentpole: the stream_begin /
  // stream_chunk / stream_end protocol driven by ANY arrival pattern of
  // samples must reproduce detect() bit for bit — candidates are keyed to
  // the fixed chunk schedule, never to how a caller buffered the audio.
  const Chirp chirp{ChirpParams{}};
  Rng rng(55);
  DetectorConfig cfg;
  cfg.sample_rate = kFs;
  cfg.chunk = 8192;  // several chunks, arrivals near the seams
  const std::vector<double>& ref = chirp.reference(kFs);
  const std::size_t hop = cfg.chunk - (ref.size() - 1);
  const std::vector<double> starts{0.1, 2.0 * static_cast<double>(hop) / kFs - 0.01,
                                   static_cast<double>(4 * hop - 1) / kFs, 1.3};
  const std::vector<double> x = make_recording(chirp, starts, 1.6, 0.01, rng);
  const MatchedFilterDetector det(ref, cfg);
  const std::vector<Detection> expect = det.detect(x);
  ASSERT_EQ(expect.size(), starts.size());
  for (const std::vector<std::size_t>& slices :
       {std::vector<std::size_t>{x.size()}, std::vector<std::size_t>{1009},
        std::vector<std::size_t>{1u << 14},
        std::vector<std::size_t>{3, 8191, 1, 20011}}) {
    const std::vector<Detection> got = stream_detect(det, x, slices);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(got[i].time_s, expect[i].time_s) << i;
      EXPECT_EQ(got[i].score, expect[i].score) << i;
      EXPECT_EQ(got[i].amplitude, expect[i].amplitude) << i;
      EXPECT_EQ(got[i].echo_competition, expect[i].echo_competition) << i;
    }
  }
}

TEST(MatchedFilter, ShortRecordingClearsStaleStateAndTelemetry) {
  // Regression (the detect_into early-return bug): a recording shorter than
  // the reference used to return before clearing `out` and `ws.candidates`,
  // so a warmed workspace leaked the PREVIOUS session's detections into the
  // short one, and the telemetry counted chunks that never streamed. The
  // short path must behave exactly like a zero-chunk stream: outputs
  // cleared, candidates cleared, zero chunks / zero detections recorded.
  const Chirp chirp{ChirpParams{}};
  Rng rng(56);
  const MatchedFilterDetector det = make_detector(chirp);
  DetectorWorkspace ws;
  std::vector<Detection> out;

  // Warm the workspace with a real session so stale state exists.
  const std::vector<double> warm = make_recording(chirp, {0.3, 0.5}, 1.0, 0.01, rng);
  det.detect_into(warm, ws, out);
  ASSERT_EQ(out.size(), 2u);

  obs::MetricsRegistry m;
  const obs::ObsContext obs{&m, nullptr, 0};
  for (const std::size_t n : {std::size_t{0}, std::size_t{100},
                              det.reference().size() - 1}) {
    const std::vector<double> shorty(n, 0.0);
    det.detect_into(shorty, ws, out, &obs);
    EXPECT_TRUE(out.empty()) << "stale detections leaked, n=" << n;
    EXPECT_TRUE(ws.candidates.empty()) << "stale candidates leaked, n=" << n;
  }
  EXPECT_EQ(m.counter("detector.chunks_total").value(), 0.0);
  EXPECT_EQ(m.counter("detector.candidates_total").value(), 0.0);
  EXPECT_EQ(m.counter("detector.detections_total").value(), 0.0);
}

TEST(MatchedFilter, ConfigValidation) {
  const Chirp chirp{ChirpParams{}};
  DetectorConfig cfg;
  cfg.chunk = 100;  // smaller than the reference
  EXPECT_THROW(MatchedFilterDetector(chirp.reference(kFs), cfg), PreconditionError);
  cfg = DetectorConfig{};
  cfg.threshold = 1.5;
  EXPECT_THROW(MatchedFilterDetector(chirp.reference(kFs), cfg), PreconditionError);
  EXPECT_THROW(MatchedFilterDetector(std::vector<double>{}, DetectorConfig{}),
               PreconditionError);
}

TEST(MatchedFilter, ShortRecordingYieldsNothing) {
  const Chirp chirp{ChirpParams{}};
  const std::vector<double> x(100, 0.0);
  EXPECT_TRUE(make_detector(chirp).detect(x).empty());
}

}  // namespace
}  // namespace hyperear::dsp
