#include "dsp/matched_filter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/chirp.hpp"

namespace hyperear::dsp {
namespace {

constexpr double kFs = 44100.0;

/// Render chirps at the given start times into a noisy buffer.
std::vector<double> make_recording(const Chirp& chirp, const std::vector<double>& starts,
                                   double duration, double noise_rms, Rng& rng,
                                   double gain = 1.0) {
  std::vector<double> x(static_cast<std::size_t>(duration * kFs), 0.0);
  for (auto& v : x) v = rng.gaussian(0.0, noise_rms);
  for (double t0 : starts) {
    for (std::size_t n = 0; n < x.size(); ++n) {
      const double t = static_cast<double>(n) / kFs - t0;
      if (t >= 0.0 && t <= chirp.params().duration_s) x[n] += gain * chirp.value(t);
    }
  }
  return x;
}

MatchedFilterDetector make_detector(const Chirp& chirp) {
  DetectorConfig cfg;
  cfg.sample_rate = kFs;
  return MatchedFilterDetector(chirp.reference(kFs), cfg);
}

TEST(MatchedFilter, DetectsSingleChirp) {
  const Chirp chirp{ChirpParams{}};
  Rng rng(41);
  const std::vector<double> x = make_recording(chirp, {0.3}, 1.0, 0.01, rng);
  const auto detections = make_detector(chirp).detect(x);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_NEAR(detections[0].time_s, 0.3, 1e-4);
  EXPECT_GT(detections[0].score, 0.8);
}

TEST(MatchedFilter, SubSampleTiming) {
  const Chirp chirp{ChirpParams{}};
  Rng rng(42);
  // A start time deliberately between samples.
  const double t0 = 0.3 + 0.4 / kFs;
  const std::vector<double> x = make_recording(chirp, {t0}, 1.0, 0.005, rng);
  const auto detections = make_detector(chirp).detect(x);
  ASSERT_EQ(detections.size(), 1u);
  // Sub-sample refinement should land within ~0.2 samples.
  EXPECT_NEAR(detections[0].time_s, t0, 0.25 / kFs);
}

TEST(MatchedFilter, PeriodicTrainAllFound) {
  const Chirp chirp{ChirpParams{}};
  Rng rng(43);
  std::vector<double> starts;
  for (int i = 0; i < 12; ++i) starts.push_back(0.1 + 0.2 * i);
  const std::vector<double> x = make_recording(chirp, starts, 2.7, 0.02, rng);
  const auto detections = make_detector(chirp).detect(x);
  ASSERT_EQ(detections.size(), starts.size());
  for (std::size_t i = 0; i < starts.size(); ++i) {
    EXPECT_NEAR(detections[i].time_s, starts[i], 1e-4);
  }
}

TEST(MatchedFilter, NoFalsePositivesInNoise) {
  const Chirp chirp{ChirpParams{}};
  Rng rng(44);
  const std::vector<double> x = make_recording(chirp, {}, 1.5, 0.1, rng);
  EXPECT_TRUE(make_detector(chirp).detect(x).empty());
}

TEST(MatchedFilter, SurvivesLowSnr) {
  const Chirp chirp{ChirpParams{}};
  Rng rng(45);
  // In-band chirp RMS ~ 0.6 over its support; noise RMS 0.5 across the
  // band is roughly 0 dB broadband; the matched filter gain is ~23 dB.
  const std::vector<double> x = make_recording(chirp, {0.5, 0.7, 0.9}, 1.5, 0.5, rng);
  const auto detections = make_detector(chirp).detect(x);
  EXPECT_GE(detections.size(), 2u);
}

TEST(MatchedFilter, AmplitudeGateDropsWeakEcho) {
  const Chirp chirp{ChirpParams{}};
  Rng rng(46);
  // Three strong arrivals plus one 10x weaker "echo" arrival well separated
  // in time (0.15 s after the last, beyond min spacing).
  std::vector<double> x = make_recording(chirp, {0.3, 0.5, 0.7}, 1.4, 0.01, rng);
  {
    Rng rng2(47);
    const std::vector<double> echo = make_recording(chirp, {0.85}, 1.4, 0.0, rng2, 0.1);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += echo[i];
  }
  const auto detections = make_detector(chirp).detect(x);
  ASSERT_EQ(detections.size(), 3u);
  for (const auto& d : detections) EXPECT_LT(d.time_s, 0.8);
}

TEST(MatchedFilter, StrongerArrivalWinsWithinSpacing) {
  const Chirp chirp{ChirpParams{}};
  Rng rng(48);
  // Direct at 0.5 with an echo 30 ms later at half amplitude: one detection,
  // anchored on the direct (earlier, stronger) arrival.
  std::vector<double> x = make_recording(chirp, {0.5}, 1.2, 0.01, rng);
  {
    Rng rng2(49);
    const std::vector<double> echo = make_recording(chirp, {0.53}, 1.2, 0.0, rng2, 0.5);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += echo[i];
  }
  const auto detections = make_detector(chirp).detect(x);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_NEAR(detections[0].time_s, 0.5, 5e-4);
}

TEST(MatchedFilter, ChunkingIsSeamless) {
  const Chirp chirp{ChirpParams{}};
  Rng rng(50);
  // Recording much longer than one chunk, with a chirp near each boundary.
  DetectorConfig cfg;
  cfg.sample_rate = kFs;
  cfg.chunk = 1u << 14;  // ~0.37 s chunks
  const double boundary = static_cast<double>(cfg.chunk) / kFs;
  const std::vector<double> starts{boundary - 0.02, 2.0 * boundary - 0.02, 1.0};
  const std::vector<double> x = make_recording(chirp, starts, 2.0, 0.01, rng);
  const MatchedFilterDetector detector(chirp.reference(kFs), cfg);
  const auto detections = detector.detect(x);
  EXPECT_EQ(detections.size(), 3u);
}

TEST(MatchedFilter, ConfigValidation) {
  const Chirp chirp{ChirpParams{}};
  DetectorConfig cfg;
  cfg.chunk = 100;  // smaller than the reference
  EXPECT_THROW(MatchedFilterDetector(chirp.reference(kFs), cfg), PreconditionError);
  cfg = DetectorConfig{};
  cfg.threshold = 1.5;
  EXPECT_THROW(MatchedFilterDetector(chirp.reference(kFs), cfg), PreconditionError);
  EXPECT_THROW(MatchedFilterDetector(std::vector<double>{}, DetectorConfig{}),
               PreconditionError);
}

TEST(MatchedFilter, ShortRecordingYieldsNothing) {
  const Chirp chirp{ChirpParams{}};
  const std::vector<double> x(100, 0.0);
  EXPECT_TRUE(make_detector(chirp).detect(x).empty());
}

}  // namespace
}  // namespace hyperear::dsp
