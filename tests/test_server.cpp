/// Request-lifecycle tests of the serving layer (ctest label "server";
/// the tsan/asan presets run them under the sanitizers): admission
/// accept/shed at the configured caps, deadline expiry before dispatch,
/// shutdown draining every future exactly once, per-class telemetry
/// agreeing with the lifecycle totals, and determinism of seeded request
/// streams.

#include "runtime/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/scenario.hpp"

namespace hyperear::runtime {
namespace {

sim::ScenarioConfig small_scenario() {
  sim::ScenarioConfig c;
  c.speaker_distance = 4.0;
  c.slides_per_stature = 3;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  return c;
}

sim::Session make_session(std::uint64_t seed) {
  Rng rng(seed);
  return sim::make_localization_session(small_scenario(), rng);
}

/// Bit-exact equality of the deterministic result fields.
void expect_identical(const core::LocalizationResult& a,
                      const core::LocalizationResult& b) {
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.slides_used, b.slides_used);
  EXPECT_EQ(a.estimated_position.x, b.estimated_position.x);
  EXPECT_EQ(a.estimated_position.y, b.estimated_position.y);
  EXPECT_EQ(a.range, b.range);
  EXPECT_EQ(a.estimated_period, b.estimated_period);
  EXPECT_EQ(a.sfo_ppm, b.sfo_ppm);
}

/// The conservation law every snapshot must satisfy.
void expect_conserved(const ServerStats& s) {
  EXPECT_EQ(s.submitted, s.completed + s.shed + s.expired + s.cancelled +
                             s.queued + s.in_flight);
}

TEST(Server, AdmissionAcceptShedBoundaryAtTheCaps) {
  // Manual dispatch: nothing leaves the queue, so the admission decision
  // is a pure function of the submit sequence — exactly max_queued accepts
  // then sheds.
  ServerOptions opts;
  opts.shards = 1;
  opts.max_in_flight = 2;
  opts.max_queued = 4;
  opts.manual_dispatch = true;
  Server server({}, opts);
  const sim::Session session = make_session(900);

  std::vector<SubmitResult> results;
  for (std::size_t i = 0; i < 6; ++i) results.push_back(server.submit(session));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(results[i].admission, Admission::accepted) << "request " << i;
    EXPECT_TRUE(results[i].response.valid()) << "request " << i;
  }
  for (std::size_t i = 4; i < 6; ++i) {
    EXPECT_EQ(results[i].admission, Admission::shed) << "request " << i;
    EXPECT_FALSE(results[i].response.valid()) << "request " << i;
  }

  ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, 6u);
  EXPECT_EQ(s.shed, 2u);
  EXPECT_EQ(s.queued, 4u);
  EXPECT_EQ(s.peak_queued, 4u);
  expect_conserved(s);

  server.drain();
  s = server.stats();
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_LE(s.peak_in_flight, opts.max_in_flight);
  expect_conserved(s);
  for (std::size_t i = 0; i < 4; ++i) {
    const Response r = results[i].response.get();
    EXPECT_EQ(r.outcome, RequestOutcome::completed);
    EXPECT_EQ(r.report.status, SessionStatus::ok);
  }
}

TEST(Server, DeadlineExpiredRequestsAreCancelledBeforeDispatch) {
  ServerOptions opts;
  opts.shards = 1;
  opts.max_queued = 8;
  opts.batch_policy.deadline_ticks = 1;
  opts.manual_dispatch = true;
  Server server({}, opts);

  auto r1 = server.submit(make_session(905));
  auto r2 = server.submit(make_session(906));
  ASSERT_EQ(r1.admission, Admission::accepted);
  ASSERT_EQ(r2.admission, Admission::accepted);
  server.tick();  // still dispatchable at submit_tick + deadline
  server.tick();  // now past the deadline
  EXPECT_EQ(server.pump(), 0u);

  const Response a = r1.response.get();
  const Response b = r2.response.get();
  EXPECT_EQ(a.outcome, RequestOutcome::expired);
  EXPECT_EQ(b.outcome, RequestOutcome::expired);

  const ServerStats s = server.stats();
  EXPECT_EQ(s.expired, 2u);
  EXPECT_EQ(s.completed, 0u);
  expect_conserved(s);
  // Expired requests never reached an engine.
  EXPECT_EQ(server.shard(0).stats().submitted, 0u);
}

TEST(Server, DeadlineHoldsThroughItsLastDispatchableTick) {
  ServerOptions opts;
  opts.shards = 1;
  opts.max_queued = 8;
  opts.batch_policy.deadline_ticks = 2;
  opts.manual_dispatch = true;
  Server server({}, opts);

  auto r = server.submit(make_session(907));
  ASSERT_EQ(r.admission, Admission::accepted);
  server.tick();
  server.tick();  // tick == submit_tick + deadline: still dispatchable
  EXPECT_EQ(server.pump(), 1u);
  server.drain();
  EXPECT_EQ(r.response.get().outcome, RequestOutcome::completed);
}

TEST(Server, ShutdownDrainsEveryAcceptedRequestExactlyOnce) {
  ServerOptions opts;
  opts.shards = 1;
  opts.threads_per_shard = 1;
  opts.max_in_flight = 1;
  opts.max_queued = 8;
  Server server({}, opts);

  std::vector<SubmitResult> results;
  for (std::uint64_t i = 0; i < 3; ++i) {
    results.push_back(server.submit(make_session(910 + i)));
    ASSERT_EQ(results.back().admission, Admission::accepted);
  }
  server.shutdown();

  // Every future resolves: whatever was in flight completes, the rest of
  // the queue cancels. Nothing is lost and nothing resolves twice (a
  // double set_value would throw future_error inside the server).
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  for (SubmitResult& r : results) {
    const Response response = r.response.get();
    if (response.outcome == RequestOutcome::completed) ++completed;
    if (response.outcome == RequestOutcome::cancelled) ++cancelled;
  }
  EXPECT_EQ(completed + cancelled, 3u);
  EXPECT_GE(completed, 1u);  // the dispatched head of the queue finished

  ServerStats s = server.stats();
  EXPECT_EQ(s.completed, completed);
  EXPECT_EQ(s.cancelled, cancelled);
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.in_flight, 0u);
  expect_conserved(s);

  // Admission is closed now, and shutdown is idempotent.
  const SubmitResult refused = server.submit(make_session(914));
  EXPECT_EQ(refused.admission, Admission::closed);
  server.shutdown();
  s = server.stats();
  EXPECT_EQ(s.closed, 1u);
  expect_conserved(s);
}

TEST(Server, ShardShutdownMidFlightCancelsByValueInsteadOfLosingTheFuture) {
  ServerOptions opts;
  opts.shards = 1;
  opts.max_queued = 4;
  opts.manual_dispatch = true;
  Server server({}, opts);

  auto r = server.submit(make_session(915));
  ASSERT_EQ(r.admission, Admission::accepted);
  server.shard(0).shutdown();  // chaos: the shard dies before dispatch
  EXPECT_EQ(server.pump(), 0u);

  const Response response = r.response.get();
  EXPECT_EQ(response.outcome, RequestOutcome::cancelled);
  const ServerStats s = server.stats();
  EXPECT_EQ(s.cancelled, 1u);
  expect_conserved(s);
  // The refused dispatch never drifted the engine's stats view.
  EXPECT_EQ(server.shard(0).stats().submitted, 0u);
}

TEST(Server, PerClassCountersMatchLifecycleTotals) {
  ServerOptions opts;
  opts.shards = 1;
  opts.max_in_flight = 1;
  opts.max_queued = 1;
  opts.manual_dispatch = true;
  auto registry = std::make_shared<obs::MetricsRegistry>();
  Server server({}, opts, EngineObs{registry, nullptr});

  // One accepted batch, one accepted streaming... then the queue is full:
  // one shed of each class.
  auto a = server.submit(make_session(920), RequestClass::batch);
  auto b = server.submit(make_session(921), RequestClass::streaming);
  auto c = server.submit(make_session(922), RequestClass::batch);
  auto d = server.submit(make_session(923), RequestClass::streaming);
  ASSERT_EQ(a.admission, Admission::accepted);
  ASSERT_EQ(b.admission, Admission::shed);  // queue holds only request a
  ASSERT_EQ(c.admission, Admission::shed);
  ASSERT_EQ(d.admission, Admission::shed);
  server.drain();

  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted_by_class[0], 2u);
  EXPECT_EQ(s.submitted_by_class[1], 2u);
  EXPECT_EQ(s.completed_by_class[0], 1u);
  EXPECT_EQ(s.completed_by_class[1], 0u);
  EXPECT_EQ(s.shed_by_class[0], 1u);
  EXPECT_EQ(s.shed_by_class[1], 2u);
  expect_conserved(s);

  // The registry mirrors the lifecycle totals, per class and overall.
  obs::MetricsRegistry& m = *registry;
  EXPECT_EQ(m.counter("server.requests_submitted_total").value(), 4.0);
  EXPECT_EQ(m.counter("server.requests_shed_total").value(), 3.0);
  EXPECT_EQ(m.counter("server.requests_completed_total").value(), 1.0);
  EXPECT_EQ(m.counter("server.class.batch.submitted_total").value(), 2.0);
  EXPECT_EQ(m.counter("server.class.streaming.submitted_total").value(), 2.0);
  EXPECT_EQ(m.counter("server.class.batch.completed_total").value(), 1.0);
  EXPECT_EQ(m.counter("server.class.batch.shed_total").value(), 1.0);
  EXPECT_EQ(m.counter("server.class.streaming.shed_total").value(), 2.0);
  EXPECT_EQ(m.gauge("server.queue_depth").value(), 0.0);
  EXPECT_EQ(m.gauge("server.in_flight").value(), 0.0);
}

TEST(Server, PerShardLoadGaugesTrackQueueAndDispatch) {
  ServerOptions opts;
  opts.shards = 1;
  opts.max_in_flight = 4;
  opts.max_queued = 3;
  opts.manual_dispatch = true;
  auto registry = std::make_shared<obs::MetricsRegistry>();
  Server server({}, opts, EngineObs{registry, nullptr});
  obs::MetricsRegistry& m = *registry;

  const sim::Session session = make_session(960);
  std::vector<SubmitResult> results;
  for (int i = 0; i < 4; ++i) results.push_back(server.submit(session));
  ASSERT_EQ(results[3].admission, Admission::shed);
  // Shed requests never touch the shard gauge; the three queued ones do.
  EXPECT_EQ(m.gauge("server.shard.0.queue_depth").value(), 3.0);
  EXPECT_EQ(m.counter("server.shard.0.dispatched_total").value(), 0.0);

  server.drain();
  EXPECT_EQ(m.gauge("server.shard.0.queue_depth").value(), 0.0);
  EXPECT_EQ(m.counter("server.shard.0.dispatched_total").value(), 3.0);
  expect_conserved(server.stats());
}

TEST(Server, PerShardGaugesFollowTheShardOfTheSessionPlan) {
  // shard_for is a pure function of the session's DSP-plan key, so every
  // submit of one session lands on one shard — its gauges move, the other
  // shard's stay at zero (the skew an operator would scrape for).
  ServerOptions opts;
  opts.shards = 2;
  opts.max_queued = 8;
  opts.manual_dispatch = true;
  auto registry = std::make_shared<obs::MetricsRegistry>();
  Server server({}, opts, EngineObs{registry, nullptr});
  obs::MetricsRegistry& m = *registry;

  const sim::Session session = make_session(961);
  const std::size_t hot = server.shard_for(session);
  const std::string hot_prefix = "server.shard." + std::to_string(hot);
  const std::string cold_prefix = "server.shard." + std::to_string(1 - hot);

  std::vector<SubmitResult> results;
  for (int i = 0; i < 3; ++i) {
    results.push_back(server.submit(session));
    ASSERT_EQ(results.back().admission, Admission::accepted);
  }
  EXPECT_EQ(m.gauge(hot_prefix + ".queue_depth").value(), 3.0);
  EXPECT_EQ(m.gauge(cold_prefix + ".queue_depth").value(), 0.0);

  server.drain();
  EXPECT_EQ(m.gauge(hot_prefix + ".queue_depth").value(), 0.0);
  EXPECT_EQ(m.counter(hot_prefix + ".dispatched_total").value(), 3.0);
  EXPECT_EQ(m.counter(cold_prefix + ".dispatched_total").value(), 0.0);
}

TEST(Server, ShutdownReturnsPerShardQueueGaugeToZero) {
  ServerOptions opts;
  opts.shards = 1;
  opts.max_queued = 4;
  opts.manual_dispatch = true;
  auto registry = std::make_shared<obs::MetricsRegistry>();
  Server server({}, opts, EngineObs{registry, nullptr});
  obs::MetricsRegistry& m = *registry;

  auto a = server.submit(make_session(962));
  auto b = server.submit(make_session(963));
  ASSERT_EQ(a.admission, Admission::accepted);
  ASSERT_EQ(b.admission, Admission::accepted);
  EXPECT_EQ(m.gauge("server.shard.0.queue_depth").value(), 2.0);

  server.shutdown();  // cancels the queue without dispatching anything
  EXPECT_EQ(a.response.get().outcome, RequestOutcome::cancelled);
  EXPECT_EQ(b.response.get().outcome, RequestOutcome::cancelled);
  EXPECT_EQ(m.gauge("server.shard.0.queue_depth").value(), 0.0);
  EXPECT_EQ(m.counter("server.shard.0.dispatched_total").value(), 0.0);
}

TEST(Server, StreamingClassIsBitIdenticalToBatchClass) {
  const sim::Session session = make_session(930);
  ServerOptions opts;
  opts.streaming_chunk_samples = 1000;  // deliberately odd-sized slices
  Server server({}, opts);
  auto batch = server.submit(session, RequestClass::batch);
  auto streaming = server.submit(session, RequestClass::streaming);
  ASSERT_EQ(batch.admission, Admission::accepted);
  ASSERT_EQ(streaming.admission, Admission::accepted);
  const Response rb = batch.response.get();
  const Response rs = streaming.response.get();
  ASSERT_EQ(rb.outcome, RequestOutcome::completed);
  ASSERT_EQ(rs.outcome, RequestOutcome::completed);
  EXPECT_EQ(rb.report.status, rs.report.status);
  expect_identical(rb.report.result, rs.report.result);
}

TEST(Server, IdenticalSeededRequestStreamsProduceBitIdenticalResponses) {
  // Manual dispatch makes the whole lifecycle a pure function of the
  // submit/tick/pump schedule, so two replays of one seeded stream must
  // agree on every admission, outcome, shard, and result bit.
  const auto run_stream = [](std::uint64_t seed) {
    ServerOptions opts;
    opts.shards = 2;
    opts.threads_per_shard = 2;
    opts.max_in_flight = 2;
    opts.max_queued = 8;
    opts.manual_dispatch = true;
    Server server({}, opts);
    Rng rng(seed);
    std::vector<sim::Session> sessions;
    for (std::uint64_t i = 0; i < 4; ++i) sessions.push_back(make_session(940 + i));
    std::vector<SubmitResult> submits;
    for (int i = 0; i < 6; ++i) {
      const auto& session = sessions[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sessions.size()) - 1))];
      const RequestClass cls = rng.uniform_int(0, 1) == 0
                                   ? RequestClass::batch
                                   : RequestClass::streaming;
      submits.push_back(server.submit(session, cls));
      if (i % 2 == 1) server.tick();
    }
    server.drain();
    std::vector<Response> responses;
    for (SubmitResult& s : submits) {
      Response r;
      if (s.admission == Admission::accepted) r = s.response.get();
      r.id = s.id;
      responses.push_back(std::move(r));
    }
    return responses;
  };

  std::vector<Response> first = run_stream(77);
  std::vector<Response> second = run_stream(77);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].outcome, second[i].outcome) << "request " << i;
    EXPECT_EQ(first[i].cls, second[i].cls) << "request " << i;
    EXPECT_EQ(first[i].id, second[i].id) << "request " << i;
    EXPECT_EQ(first[i].shard, second[i].shard) << "request " << i;
    EXPECT_EQ(first[i].report.status, second[i].report.status) << "request " << i;
    expect_identical(first[i].report.result, second[i].report.result);
  }
}

TEST(Server, RootSpanPerAcceptedRequestSharesTheSessionId) {
  auto tracer = std::make_shared<obs::Tracer>();
  ServerOptions opts;
  Server server({}, opts, EngineObs{nullptr, tracer});
  auto a = server.submit(make_session(950));
  auto b = server.submit(make_session(951));
  ASSERT_EQ(a.admission, Admission::accepted);
  ASSERT_EQ(b.admission, Admission::accepted);
  (void)a.response.get();
  (void)b.response.get();
  server.shutdown();

  std::size_t roots = 0;
  bool stage_span_shares_id = false;
  for (const obs::SpanRecord& span : tracer->snapshot()) {
    if (span.name == "server.request") {
      ++roots;
      EXPECT_TRUE(span.session == a.id || span.session == b.id);
    } else if (span.session == a.id || span.session == b.id) {
      // The pipeline's stage spans ran under the request's id.
      stage_span_shares_id = true;
    }
  }
  EXPECT_EQ(roots, 2u);
  EXPECT_TRUE(stage_span_shares_id);
}

TEST(Server, RejectsInvalidOptionsAndConfigAtConstruction) {
  ServerOptions no_shards;
  no_shards.shards = 0;
  EXPECT_THROW(Server({}, no_shards), PreconditionError);

  ServerOptions no_slots;
  no_slots.max_in_flight = 0;
  EXPECT_THROW(Server({}, no_slots), PreconditionError);

  core::PipelineConfig bad;
  bad.ttl.max_range = -1.0;
  EXPECT_THROW(Server(bad, ServerOptions{}), PreconditionError);
}

TEST(Server, CorruptSessionCompletesAsErrorReport) {
  // A zero-length session is data, not a server failure: it completes
  // with an error report, exactly like the batch engine's contract.
  Server server({}, ServerOptions{});
  auto r = server.submit(sim::Session{});
  ASSERT_EQ(r.admission, Admission::accepted);
  const Response response = r.response.get();
  EXPECT_EQ(response.outcome, RequestOutcome::completed);
  EXPECT_EQ(response.report.status, SessionStatus::error);
  EXPECT_EQ(response.report.error.stage, core::PipelineStage::asp);
}

}  // namespace
}  // namespace hyperear::runtime
