#include "core/aoa.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "sim/scenario.hpp"

namespace hyperear::core {
namespace {

TEST(Aoa, TdoaToBearingInvertsCosineModel) {
  AoaOptions opts;
  // Broadside: tdoa 0 -> alpha 90 deg.
  const AoaEstimate broadside = tdoa_to_bearing({1.0, 0.0}, opts);
  EXPECT_NEAR(rad2deg(broadside.alpha_right_rad), 90.0, 1e-9);
  EXPECT_NEAR(rad2deg(broadside.alpha_left_rad), 270.0, 1e-9);
  // Endfire toward Mic1 (+y): alpha 0, tdoa = -D/S.
  const AoaEstimate endfire =
      tdoa_to_bearing({1.0, -opts.mic_separation / opts.sound_speed}, opts);
  EXPECT_NEAR(rad2deg(endfire.alpha_right_rad), 0.0, 1e-9);
}

TEST(Aoa, RoundTripThroughModel) {
  AoaOptions opts;
  for (double alpha_deg = 10.0; alpha_deg <= 170.0; alpha_deg += 20.0) {
    const double tdoa =
        -opts.mic_separation * std::cos(deg2rad(alpha_deg)) / opts.sound_speed;
    const AoaEstimate e = tdoa_to_bearing({0.0, tdoa}, opts);
    EXPECT_NEAR(rad2deg(e.alpha_right_rad), alpha_deg, 1e-9) << alpha_deg;
  }
}

TEST(Aoa, OverlargeTdoaClampedToEndfire) {
  AoaOptions opts;
  const AoaEstimate e = tdoa_to_bearing({0.0, 2.0 * opts.mic_separation / 343.0}, opts);
  EXPECT_NEAR(rad2deg(e.alpha_right_rad), 180.0, 1e-9);
}

TEST(Aoa, BadOptionsThrow) {
  AoaOptions opts;
  opts.mic_separation = 0.0;
  EXPECT_THROW((void)tdoa_to_bearing({0.0, 0.0}, opts), PreconditionError);
}

TEST(Aoa, EndToEndBearingMatchesGeometry) {
  // Static phone at yaw 0; speaker along +x (body +x): alpha = 90 deg.
  sim::ScenarioConfig c;
  c.speaker_distance = 4.0;
  c.slides_per_stature = 1;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  c.in_direction_error_deg = 0.0;
  Rng rng(701);
  const sim::Session s = sim::make_localization_session(c, rng);
  const AspResult asp =
      preprocess_audio(s.audio, s.prior.chirp, 0.2, s.prior.calibration_duration);
  AoaOptions opts;
  opts.mic_separation = s.config.phone.mic_separation;
  const std::vector<AoaEstimate> bearings = estimate_bearings(asp, opts);
  ASSERT_GE(bearings.size(), 10u);
  const auto agg = aggregate_bearing(bearings, 0.0, c.calibration_duration);
  ASSERT_TRUE(agg.has_value());
  EXPECT_NEAR(rad2deg(*agg), 90.0, 3.0);
}

TEST(Aoa, AggregateEmptyWindowIsNull) {
  const std::vector<AoaEstimate> none;
  EXPECT_FALSE(aggregate_bearing(none, 0.0, 10.0).has_value());
}

}  // namespace
}  // namespace hyperear::core
