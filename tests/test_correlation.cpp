#include "dsp/correlation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace hyperear::dsp {
namespace {

TEST(CorrelateValid, KnownSmallExample) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> h{1.0, 1.0};
  const std::vector<double> c = correlate_valid(x, h);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[0], 3.0);
  EXPECT_DOUBLE_EQ(c[1], 5.0);
  EXPECT_DOUBLE_EQ(c[2], 7.0);
}

TEST(CorrelateValid, PeakAtTemplateLocation) {
  Rng rng(31);
  std::vector<double> h(64);
  for (auto& v : h) v = rng.gaussian();
  std::vector<double> x(512, 0.0);
  const std::size_t offset = 200;
  for (std::size_t i = 0; i < h.size(); ++i) x[offset + i] = h[i];
  const std::vector<double> c = correlate_valid(x, h);
  EXPECT_EQ(argmax(c), offset);
}

TEST(CorrelateValid, FftAndDirectAgree) {
  Rng rng(32);
  // Large enough to take the FFT path.
  std::vector<double> x(2048), h(256);
  for (auto& v : x) v = rng.gaussian();
  for (auto& v : h) v = rng.gaussian();
  const std::vector<double> fast = correlate_valid(x, h);
  // Direct computation on a few random lags.
  for (std::size_t k : {0u, 100u, 777u, 1792u}) {
    double direct = 0.0;
    for (std::size_t j = 0; j < h.size(); ++j) direct += x[k + j] * h[j];
    EXPECT_NEAR(fast[k], direct, 1e-8);
  }
}

TEST(CorrelateValid, TemplateLongerThanSignalThrows) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> h{1.0, 2.0, 3.0};
  EXPECT_THROW((void)correlate_valid(x, h), PreconditionError);
}

TEST(CorrelateNormalized, PerfectMatchScoresOne) {
  Rng rng(33);
  std::vector<double> h(128);
  for (auto& v : h) v = rng.gaussian();
  std::vector<double> x(1024, 0.0);
  for (std::size_t i = 0; i < h.size(); ++i) x[300 + i] = 2.5 * h[i];  // scaled copy
  // Add a small noise floor so window energies are realistic.
  for (auto& v : x) v += rng.gaussian(0.0, 1e-3);
  const std::vector<double> c = correlate_normalized(x, h);
  const std::size_t peak = argmax(c);
  EXPECT_NEAR(static_cast<double>(peak), 300.0, 1.0);
  EXPECT_GT(c[peak], 0.99);
  EXPECT_LE(c[peak], 1.0 + 1e-6);
}

TEST(CorrelateNormalized, BoundedEvenInSilence) {
  // Regression test: quiet stretches must not amplify FFT round-off into
  // spurious super-unity peaks.
  std::vector<double> h(128);
  for (std::size_t i = 0; i < h.size(); ++i) h[i] = std::sin(0.3 * static_cast<double>(i));
  std::vector<double> x(4096, 0.0);
  for (std::size_t i = 0; i < h.size(); ++i) x[100 + i] = h[i];
  const std::vector<double> c = correlate_normalized(x, h);
  for (double v : c) EXPECT_LE(std::abs(v), 1.0 + 1e-6);
  EXPECT_NEAR(static_cast<double>(argmax(c)), 100.0, 1.0);
}

TEST(CorrelateNormalized, AmplitudeInvariance) {
  Rng rng(34);
  std::vector<double> h(64);
  for (auto& v : h) v = rng.gaussian();
  std::vector<double> x(512, 0.0);
  for (std::size_t i = 0; i < h.size(); ++i) x[100 + i] = h[i];
  for (auto& v : x) v += rng.gaussian(0.0, 0.01);
  std::vector<double> x_loud = x;
  for (auto& v : x_loud) v *= 37.0;
  const std::vector<double> c1 = correlate_normalized(x, h);
  const std::vector<double> c2 = correlate_normalized(x_loud, h);
  EXPECT_NEAR(max_value(c1), max_value(c2), 1e-9);
}

TEST(CorrelateFull, AutocorrelationSymmetric) {
  Rng rng(35);
  std::vector<double> x(100);
  for (auto& v : x) v = rng.gaussian();
  const std::vector<double> c = correlate_full(x, x);
  ASSERT_EQ(c.size(), 199u);
  for (std::size_t k = 0; k < 99; ++k) {
    EXPECT_NEAR(c[k], c[c.size() - 1 - k], 1e-8);
  }
  EXPECT_EQ(argmax(c), 99u);
}

}  // namespace
}  // namespace hyperear::dsp
