#include "core/error_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "geom/triangulation.hpp"

namespace hyperear::core {
namespace {

TEST(ErrorModel, QuadraticInRangeForTiming) {
  ErrorBudgetInput in;
  in.displacement_sigma = 0.0;
  in.residual_yaw_sigma = 0.0;
  in.range = 2.0;
  const double e2 = predict_range_error(in).total;
  in.range = 4.0;
  const double e4 = predict_range_error(in).total;
  EXPECT_NEAR(e4 / e2, 4.0, 1e-9);
}

TEST(ErrorModel, LinearInRangeForDisplacement) {
  ErrorBudgetInput in;
  in.timing_sigma_s = 0.0;
  in.residual_yaw_sigma = 0.0;
  in.range = 2.0;
  const double e2 = predict_range_error(in).total;
  in.range = 4.0;
  const double e4 = predict_range_error(in).total;
  EXPECT_NEAR(e4 / e2, 2.0, 1e-9);
}

TEST(ErrorModel, ApertureHelpsEveryTerm) {
  ErrorBudgetInput narrow;
  narrow.slide_distance = 0.15;
  ErrorBudgetInput wide;
  wide.slide_distance = 0.55;
  const ErrorBudget en = predict_range_error(narrow);
  const ErrorBudget ew = predict_range_error(wide);
  EXPECT_LT(ew.timing, en.timing);
  EXPECT_LT(ew.displacement, en.displacement);
  EXPECT_LT(ew.rotation, en.rotation);
}

TEST(ErrorModel, AveragingShrinksIndependentTerms) {
  ErrorBudgetInput one;
  one.slides = 1;
  one.pairs_per_slide = 1;
  ErrorBudgetInput many = one;
  many.slides = 4;
  many.pairs_per_slide = 16;
  const ErrorBudget e1 = predict_range_error(one);
  const ErrorBudget e2 = predict_range_error(many);
  EXPECT_NEAR(e2.timing, e1.timing / 8.0, 1e-12);
  EXPECT_NEAR(e2.displacement, e1.displacement / 2.0, 1e-12);
}

TEST(ErrorModel, TotalIsRootSumSquare) {
  const ErrorBudget e = predict_range_error({});
  EXPECT_NEAR(e.total, std::sqrt(e.timing * e.timing + e.displacement * e.displacement +
                                 e.rotation * e.rotation),
              1e-15);
}

TEST(ErrorModel, PreconditionsEnforced) {
  ErrorBudgetInput in;
  in.range = 0.0;
  EXPECT_THROW((void)predict_range_error(in), PreconditionError);
  in = {};
  in.slides = 0;
  EXPECT_THROW((void)predict_range_error(in), PreconditionError);
}

TEST(ErrorModel, MatchesSolverMonteCarloWithinFactorTwo) {
  // Validate the linearization against the actual Eqs. 5-6 solver with
  // synthetic timing noise (single pair, single slide).
  ErrorBudgetInput in;
  in.range = 5.0;
  in.timing_sigma_s = 3e-6;
  in.displacement_sigma = 0.0;
  in.residual_yaw_sigma = 0.0;
  in.pairs_per_slide = 1;
  in.slides = 1;
  const double predicted = predict_range_error(in).total;

  Rng rng(901);
  std::vector<double> errors;
  const double d = in.mic_separation;
  const double dprime = in.slide_distance;
  for (int t = 0; t < 200; ++t) {
    const geom::Vec2 truth{0.1, in.range};
    geom::AugmentedTdoa a;
    a.slide_distance = dprime;
    a.mic_separation = d;
    const geom::Vec2 m1p{dprime / 2, 0}, m1m{-dprime / 2, 0};
    const geom::Vec2 m2p{d + dprime / 2, 0}, m2m{d - dprime / 2, 0};
    const double noise = in.timing_sigma_s * in.sound_speed;
    // Two arrivals per TDoA: variance doubles.
    a.range_diff_mic1 = distance(truth, m1p) - distance(truth, m1m) +
                        rng.gaussian(0.0, noise * std::sqrt(2.0));
    a.range_diff_mic2 = distance(truth, m2p) - distance(truth, m2m) +
                        rng.gaussian(0.0, noise * std::sqrt(2.0));
    const geom::TriangulationResult r = geom::solve_augmented(a);
    if (!r.converged) continue;
    errors.push_back(r.position.y - truth.y);
  }
  ASSERT_GE(errors.size(), 150u);
  const double measured = stddev(errors);
  EXPECT_GT(measured, predicted / 2.0);
  EXPECT_LT(measured, predicted * 2.0);
}

}  // namespace
}  // namespace hyperear::core
