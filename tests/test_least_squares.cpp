#include "geom/least_squares.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "geom/vec2.hpp"

namespace hyperear::geom {
namespace {

TEST(LevenbergMarquardt, SolvesLinearSystem) {
  // r(p) = A p - b with a well-conditioned A.
  const auto residuals = [](const std::vector<double>& p) {
    return std::vector<double>{2.0 * p[0] + p[1] - 5.0, p[0] - 3.0 * p[1] + 4.0};
  };
  const LmResult r = levenberg_marquardt(residuals, {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.parameters[0], 11.0 / 7.0, 1e-8);
  EXPECT_NEAR(r.parameters[1], 13.0 / 7.0, 1e-8);
  EXPECT_NEAR(r.cost, 0.0, 1e-12);
}

TEST(LevenbergMarquardt, RosenbrockValley) {
  // Classic curved-valley test: residuals (1-x, 10(y-x^2)).
  const auto residuals = [](const std::vector<double>& p) {
    return std::vector<double>{1.0 - p[0], 10.0 * (p[1] - p[0] * p[0])};
  };
  const LmResult r = levenberg_marquardt(residuals, {-1.2, 1.0});
  EXPECT_NEAR(r.parameters[0], 1.0, 1e-5);
  EXPECT_NEAR(r.parameters[1], 1.0, 1e-5);
}

TEST(LevenbergMarquardt, OverdeterminedLeastSquares) {
  // Fit y = a*x to noisy data; LM should find the least-squares slope.
  Rng rng(11);
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.1 * i;
    xs.push_back(x);
    ys.push_back(3.0 * x + rng.gaussian(0.0, 0.01));
  }
  const auto residuals = [&](const std::vector<double>& p) {
    std::vector<double> r(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) r[i] = p[0] * xs[i] - ys[i];
    return r;
  };
  const LmResult r = levenberg_marquardt(residuals, {0.0});
  EXPECT_NEAR(r.parameters[0], 3.0, 0.01);
}

TEST(LevenbergMarquardt, CircleIntersection) {
  // Distances to two anchor points: classic 2D trilateration residuals.
  const Vec2 truth{1.5, 2.5};
  const Vec2 a1{0.0, 0.0}, a2{4.0, 0.0};
  const double d1 = distance(truth, a1);
  const double d2 = distance(truth, a2);
  const auto residuals = [&](const std::vector<double>& p) {
    const Vec2 pt{p[0], p[1]};
    return std::vector<double>{distance(pt, a1) - d1, distance(pt, a2) - d2};
  };
  const LmResult r = levenberg_marquardt(residuals, {1.0, 1.0});
  EXPECT_NEAR(r.parameters[0], truth.x, 1e-6);
  EXPECT_NEAR(r.parameters[1], truth.y, 1e-6);
}

TEST(LevenbergMarquardt, EmptyParametersThrow) {
  const auto residuals = [](const std::vector<double>&) { return std::vector<double>{0.0}; };
  EXPECT_THROW((void)levenberg_marquardt(residuals, {}), PreconditionError);
}

TEST(LevenbergMarquardt, EmptyResidualsThrow) {
  const auto residuals = [](const std::vector<double>&) { return std::vector<double>{}; };
  EXPECT_THROW((void)levenberg_marquardt(residuals, {1.0}), PreconditionError);
}

TEST(LevenbergMarquardt, RespectsIterationLimit) {
  const auto residuals = [](const std::vector<double>& p) {
    return std::vector<double>{1.0 - p[0], 10.0 * (p[1] - p[0] * p[0])};
  };
  LmOptions opts;
  opts.max_iterations = 2;
  const LmResult r = levenberg_marquardt(residuals, {-1.2, 1.0}, opts);
  EXPECT_LE(r.iterations, 2);
}

TEST(LevenbergMarquardt, AlreadyAtMinimum) {
  const auto residuals = [](const std::vector<double>& p) {
    return std::vector<double>{p[0] - 2.0};
  };
  const LmResult r = levenberg_marquardt(residuals, {2.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.cost, 0.0, 1e-15);
}

}  // namespace
}  // namespace hyperear::geom
