#include "common/math_util.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hyperear {
namespace {

TEST(WrapAngle, TwoPiRange) {
  EXPECT_NEAR(wrap_angle_2pi(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrap_angle_2pi(2.0 * kPi), 0.0, 1e-12);
  EXPECT_NEAR(wrap_angle_2pi(-kPi / 2.0), 1.5 * kPi, 1e-12);
  EXPECT_NEAR(wrap_angle_2pi(5.0 * kPi), kPi, 1e-12);
}

TEST(WrapAngle, PiRange) {
  EXPECT_NEAR(wrap_angle_pi(kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_angle_pi(1.5 * kPi), -0.5 * kPi, 1e-12);
  EXPECT_NEAR(wrap_angle_pi(-1.5 * kPi), 0.5 * kPi, 1e-12);
}

TEST(WrapAngle, ManyTurnsStaysInRange) {
  for (int k = -20; k <= 20; ++k) {
    const double a = 0.7 + 2.0 * kPi * k;
    EXPECT_NEAR(wrap_angle_2pi(a), 0.7, 1e-9) << "k=" << k;
  }
}

TEST(Clamp, Basics) {
  EXPECT_EQ(clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_EQ(clamp(-5.0, 0.0, 10.0), 0.0);
  EXPECT_EQ(clamp(15.0, 0.0, 10.0), 10.0);
  EXPECT_THROW((void)clamp(0.0, 10.0, 0.0), PreconditionError);
}

TEST(Lerp, EndpointsAndMiddle) {
  EXPECT_EQ(lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_EQ(lerp(2.0, 4.0, 1.0), 4.0);
  EXPECT_EQ(lerp(2.0, 4.0, 0.5), 3.0);
}

TEST(NextPow2, Values) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(IsPow2, Values) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
}

TEST(CumulativeTrapezoid, ConstantIntegratesLinearly) {
  const std::vector<double> ones(11, 1.0);
  const std::vector<double> integral = cumulative_trapezoid(ones, 0.1);
  ASSERT_EQ(integral.size(), ones.size());
  EXPECT_NEAR(integral.front(), 0.0, 1e-15);
  EXPECT_NEAR(integral.back(), 1.0, 1e-12);
  EXPECT_NEAR(integral[5], 0.5, 1e-12);
}

TEST(CumulativeTrapezoid, LinearIntegratesQuadratically) {
  std::vector<double> ramp(101);
  for (std::size_t i = 0; i < ramp.size(); ++i) ramp[i] = static_cast<double>(i) * 0.01;
  const std::vector<double> integral = cumulative_trapezoid(ramp, 0.01);
  EXPECT_NEAR(integral.back(), 0.5, 1e-6);  // integral of t over [0,1]
}

TEST(Trapezoid, MatchesCumulative) {
  const std::vector<double> y{0.0, 1.0, 4.0, 9.0, 16.0};
  const double total = trapezoid(y, 0.5);
  const std::vector<double> cumulative = cumulative_trapezoid(y, 0.5);
  EXPECT_NEAR(total, cumulative.back(), 1e-12);
}

TEST(SampleLinear, InterpolatesAndChecksBounds) {
  const std::vector<double> y{0.0, 10.0, 20.0};
  EXPECT_NEAR(sample_linear(y, 0.5), 5.0, 1e-12);
  EXPECT_NEAR(sample_linear(y, 2.0), 20.0, 1e-12);
  EXPECT_THROW((void)sample_linear(y, -0.1), PreconditionError);
  EXPECT_THROW((void)sample_linear(y, 2.1), PreconditionError);
}

TEST(FitLine, ExactLine) {
  const std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y{1.0, 3.0, 5.0, 7.0};
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.rms_residual, 0.0, 1e-12);
}

TEST(FitLine, RejectsDegenerateInput) {
  const std::vector<double> x{1.0, 1.0};
  const std::vector<double> y{0.0, 1.0};
  EXPECT_THROW((void)fit_line(x, y), PreconditionError);
  EXPECT_THROW((void)fit_line(std::vector<double>{1.0}, std::vector<double>{1.0}),
               PreconditionError);
}

TEST(FitLineRobust, IgnoresOutlier) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(0.5 * i + 2.0);
  }
  y[7] += 25.0;  // gross outlier
  const LineFit plain = fit_line(x, y);
  const LineFit robust = fit_line_robust(x, y);
  EXPECT_GT(std::abs(plain.slope - 0.5), std::abs(robust.slope - 0.5));
  EXPECT_NEAR(robust.slope, 0.5, 1e-9);
  EXPECT_NEAR(robust.intercept, 2.0, 1e-9);
}

TEST(DbConversions, RoundTrip) {
  EXPECT_NEAR(db_to_power(10.0), 10.0, 1e-12);
  EXPECT_NEAR(db_to_power(3.0), 1.995, 1e-2);
  EXPECT_NEAR(power_to_db(db_to_power(7.3)), 7.3, 1e-9);
}

TEST(DegRad, RoundTrip) {
  EXPECT_NEAR(deg2rad(180.0), kPi, 1e-12);
  EXPECT_NEAR(rad2deg(kPi / 2.0), 90.0, 1e-12);
  EXPECT_NEAR(rad2deg(deg2rad(33.3)), 33.3, 1e-12);
}

}  // namespace
}  // namespace hyperear
