#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace hyperear {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(6);
  double lo = 1e9, hi = -1e9;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
  EXPECT_LT(lo, -2.5);  // the range is actually explored
  EXPECT_GT(hi, 6.5);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 8);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 8);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW((void)rng.uniform_int(5, 4), PreconditionError);
}

TEST(Rng, GaussianMoments) {
  Rng rng(8);
  const std::vector<double> v = rng.gaussian_vector(50000);
  EXPECT_NEAR(mean(v), 0.0, 0.02);
  EXPECT_NEAR(stddev(v), 1.0, 0.02);
}

TEST(Rng, GaussianShiftScale) {
  Rng rng(9);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng.gaussian(10.0, 3.0));
  EXPECT_NEAR(mean(v), 10.0, 0.1);
  EXPECT_NEAR(stddev(v), 3.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(10);
  Rng b = a.split();
  // The split stream must not replay the parent stream.
  Rng a2(10);
  (void)a2.next_u64();  // advance past the split draw
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (b.next_u64() == a2.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace hyperear
