#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hyperear::io {
namespace {

imu::ImuData sample_record(std::size_t n) {
  Rng rng(971);
  imu::ImuData d;
  d.sample_rate = 100.0;
  for (std::size_t i = 0; i < n; ++i) {
    d.accel_x.push_back(rng.gaussian());
    d.accel_y.push_back(rng.gaussian());
    d.accel_z.push_back(9.80665 + rng.gaussian(0.0, 0.01));
    d.gyro_x.push_back(rng.gaussian(0.0, 0.01));
    d.gyro_y.push_back(rng.gaussian(0.0, 0.01));
    d.gyro_z.push_back(rng.gaussian(0.0, 0.01));
  }
  return d;
}

TEST(ImuCsv, RoundTrip) {
  const imu::ImuData orig = sample_record(250);
  const std::string path = "/tmp/hyperear_test_imu.csv";
  write_imu_csv(path, orig);
  const imu::ImuData back = read_imu_csv(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.size(), orig.size());
  EXPECT_NEAR(back.sample_rate, 100.0, 0.1);
  for (std::size_t i = 0; i < orig.size(); i += 17) {
    EXPECT_NEAR(back.accel_y[i], orig.accel_y[i], 1e-7);
    EXPECT_NEAR(back.gyro_z[i], orig.gyro_z[i], 1e-7);
  }
}

TEST(ImuCsv, WriterValidation) {
  imu::ImuData empty;
  EXPECT_THROW(write_imu_csv("/tmp/x.csv", empty), PreconditionError);
  EXPECT_THROW(write_imu_csv("/nonexistent_dir/x.csv", sample_record(10)), Error);
}

TEST(ImuCsv, ReaderRejectsGarbage) {
  const std::string path = "/tmp/hyperear_test_bad.csv";
  {
    std::ofstream f(path);
    f << "not,a,header\n1,2,3\n";
  }
  EXPECT_THROW((void)read_imu_csv(path), Error);
  {
    std::ofstream f(path);
    f << "t,ax,ay,az,gx,gy,gz\n0.0,1,2,notanumber,4,5,6\n0.01,1,2,3,4,5,6\n";
  }
  EXPECT_THROW((void)read_imu_csv(path), Error);
  {
    std::ofstream f(path);
    f << "t,ax,ay,az,gx,gy,gz\n0.0,1,2,3,4,5,6\n";  // single row
  }
  EXPECT_THROW((void)read_imu_csv(path), Error);
  std::remove(path.c_str());
  EXPECT_THROW((void)read_imu_csv("/tmp/definitely_missing.csv"), Error);
}

TEST(ImuCsv, ShortRowRejected) {
  const std::string path = "/tmp/hyperear_test_short.csv";
  {
    std::ofstream f(path);
    f << "t,ax,ay,az,gx,gy,gz\n0.0,1,2,3\n0.01,1,2,3\n";
  }
  EXPECT_THROW((void)read_imu_csv(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hyperear::io
