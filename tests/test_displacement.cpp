#include "imu/displacement.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"

namespace hyperear::imu {
namespace {

constexpr double kDt = 0.01;  // 100 Hz

/// Minimum-jerk acceleration profile for a stroke of given distance and
/// duration, sampled at 100 Hz.
std::vector<double> min_jerk_accel(double distance, double duration) {
  const auto n = static_cast<std::size_t>(duration / kDt) + 1;
  std::vector<double> a(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double tau = static_cast<double>(i) * kDt / duration;
    const double dds = 60.0 * tau - 180.0 * tau * tau + 120.0 * tau * tau * tau;
    a[i] = distance * dds / (duration * duration);
  }
  return a;
}

TEST(EstimateVelocity, CleanStrokeIntegratesToZeroEndVelocity) {
  const std::vector<double> a = min_jerk_accel(0.55, 1.0);
  const VelocityEstimate v = estimate_velocity(a, kDt);
  EXPECT_NEAR(v.corrected.back(), 0.0, 1e-9);
  EXPECT_NEAR(v.raw.back(), 0.0, 1e-3);  // clean input barely drifts
}

TEST(EstimateVelocity, ConstantBiasFullyRemoved) {
  // Constant accelerometer bias -> linear velocity drift -> exactly the
  // error model of Eq. 4; the correction must cancel it completely.
  std::vector<double> a = min_jerk_accel(0.55, 1.0);
  for (auto& v : a) v += 0.08;  // large bias
  const VelocityEstimate vel = estimate_velocity(a, kDt);
  EXPECT_NEAR(vel.corrected.back(), 0.0, 1e-12);
  EXPECT_NEAR(vel.drift_slope, 0.08, 1e-3);
  // Displacement error from the bias is second order, not 0.04 m.
  const double disp = trapezoid(vel.corrected, kDt);
  EXPECT_NEAR(disp, 0.55, 0.002);
}

TEST(EstimateVelocity, WithoutCorrectionBiasCorrupts) {
  std::vector<double> a = min_jerk_accel(0.55, 1.0);
  for (auto& v : a) v += 0.08;
  const VelocityEstimate vel = estimate_velocity(a, kDt, /*drift_correction=*/false);
  const double disp = trapezoid(vel.corrected, kDt);
  EXPECT_GT(std::abs(disp - 0.55), 0.02);  // ablation: clearly worse
}

TEST(EstimateVelocity, PreconditionsEnforced) {
  EXPECT_THROW((void)estimate_velocity(std::vector<double>{1.0}, kDt), PreconditionError);
  EXPECT_THROW((void)estimate_velocity(std::vector<double>{1.0, 2.0}, 0.0),
               PreconditionError);
}

/// Wrap an acceleration series into MotionSignals with quiet padding.
MotionSignals wrap_motion(const std::vector<double>& stroke, std::size_t pad) {
  MotionSignals m;
  m.sample_rate = 100.0;
  const std::size_t n = stroke.size() + 2 * pad;
  m.lin_accel_x.assign(n, 0.0);
  m.lin_accel_y.assign(n, 0.0);
  m.lin_accel_z.assign(n, 0.0);
  m.gyro_x.assign(n, 0.0);
  m.gyro_y.assign(n, 0.0);
  m.gyro_z.assign(n, 0.0);
  for (std::size_t i = 0; i < stroke.size(); ++i) m.lin_accel_y[pad + i] = stroke[i];
  return m;
}

TEST(EstimateSlide, RecoversDistanceAndDirection) {
  for (double dist : {0.15, 0.35, 0.55, -0.55}) {
    const std::vector<double> a = min_jerk_accel(dist, 1.0);
    const MotionSignals m = wrap_motion(a, 50);
    const Segment seg{50, 50 + a.size()};
    const SlideEstimate est = estimate_slide(m, m.lin_accel_y, seg);
    EXPECT_NEAR(est.displacement, dist, 0.01) << dist;
    EXPECT_GT(est.peak_speed, std::abs(dist));  // min-jerk peak ~1.88 d/T
  }
}

TEST(EstimateSlide, PaddingExtendsSegment) {
  const std::vector<double> a = min_jerk_accel(0.5, 1.0);
  const MotionSignals m = wrap_motion(a, 50);
  // Deliberately clipped segment (as the power threshold produces).
  const Segment seg{58, 42 + a.size()};
  DisplacementOptions opts;
  opts.pad = 10;
  const SlideEstimate est = estimate_slide(m, m.lin_accel_y, seg, opts);
  EXPECT_LE(est.start, 48u);
  EXPECT_NEAR(est.displacement, 0.5, 0.01);
}

TEST(EstimateSlide, ZRotationIntegrated) {
  const std::vector<double> a = min_jerk_accel(0.5, 1.0);
  MotionSignals m = wrap_motion(a, 50);
  // Constant 0.1 rad/s yaw rate during the stroke.
  for (std::size_t i = 50; i < 50 + a.size(); ++i) m.gyro_z[i] = 0.1;
  const Segment seg{50, 50 + a.size()};
  const SlideEstimate est = estimate_slide(m, m.lin_accel_y, seg);
  EXPECT_NEAR(est.z_rotation, 0.1 * (est.duration), 0.02);
}

TEST(EstimateSlide, NoisyStrokeStillClose) {
  Rng rng(81);
  std::vector<double> a = min_jerk_accel(0.55, 1.0);
  for (auto& v : a) v += rng.gaussian(0.0, 0.03) + 0.02;  // noise + bias
  const MotionSignals m = wrap_motion(a, 50);
  const Segment seg{50, 50 + a.size()};
  const SlideEstimate est = estimate_slide(m, m.lin_accel_y, seg);
  EXPECT_NEAR(est.displacement, 0.55, 0.03);
}

TEST(EstimateSlide, InvalidSegmentThrows) {
  const MotionSignals m = wrap_motion(min_jerk_accel(0.5, 1.0), 10);
  EXPECT_THROW((void)estimate_slide(m, m.lin_accel_y, Segment{5, 5}), PreconditionError);
  EXPECT_THROW((void)estimate_slide(m, m.lin_accel_y, Segment{0, m.size() + 1}),
               PreconditionError);
}

TEST(EstimateStatureChange, VerticalMoveRecovered) {
  const std::vector<double> a = min_jerk_accel(0.45, 1.0);
  MotionSignals m = wrap_motion(a, 60);
  // Move the stroke to the z axis.
  m.lin_accel_z = m.lin_accel_y;
  std::fill(m.lin_accel_y.begin(), m.lin_accel_y.end(), 0.0);
  const double dz = estimate_stature_change(m, 60, 60 + a.size());
  EXPECT_NEAR(dz, 0.45, 0.01);
}

TEST(EstimateStatureChange, IntervalValidation) {
  const MotionSignals m = wrap_motion(min_jerk_accel(0.4, 1.0), 10);
  EXPECT_THROW((void)estimate_stature_change(m, 10, 10), PreconditionError);
  EXPECT_THROW((void)estimate_stature_change(m, 0, m.size() + 5), PreconditionError);
}

}  // namespace
}  // namespace hyperear::imu
