#include "geom/projection.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace hyperear::geom {
namespace {

/// Construct exact (L1, L2) for a speaker at horizontal distance lstar and
/// vertical offset z below the first slide plane, with stature change h.
struct Exact {
  double l1;
  double l2;
};

Exact exact_slants(double lstar, double z, double h) {
  return {std::sqrt(lstar * lstar + z * z), std::sqrt(lstar * lstar + (z + h) * (z + h))};
}

TEST(ProjectToFloor, RecoversHorizontalDistance) {
  // Phone slides at 1.3 m and 1.75 m; speaker at 0.5 m -> z = 0.8 below.
  const double lstar = 7.0;
  const double z = 0.8;
  const double h = 0.45;
  const Exact e = exact_slants(lstar, z, h);
  const ProjectionResult r = project_to_floor(h, e.l1, e.l2);
  EXPECT_TRUE(r.well_conditioned);
  EXPECT_NEAR(r.projected_distance, lstar, 1e-9);
  // height_offset is measured along the (upward) move: the speaker sits
  // z meters below, i.e. -z along the move.
  EXPECT_NEAR(r.height_offset, -z, 1e-9);
}

class ProjectionSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(ProjectionSweep, ExactForAllGeometries) {
  const auto [lstar, z, h] = GetParam();
  const Exact e = exact_slants(lstar, z, h);
  const ProjectionResult r = project_to_floor(h, e.l1, e.l2);
  EXPECT_NEAR(r.projected_distance, lstar, 1e-8) << "l*=" << lstar << " z=" << z;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ProjectionSweep,
    ::testing::Combine(::testing::Values(1.0, 3.0, 5.0, 7.0),     // L*
                       ::testing::Values(-0.5, 0.2, 0.8, 1.4),    // z offset
                       ::testing::Values(0.3, 0.45, 0.6)));       // H

TEST(ProjectToFloor, SpeakerAboveFirstPlane) {
  // Speaker higher than both slide planes (z negative along the move).
  const Exact e = exact_slants(4.0, -1.0, 0.45);
  const ProjectionResult r = project_to_floor(0.45, e.l1, e.l2);
  EXPECT_NEAR(r.projected_distance, 4.0, 1e-9);
  EXPECT_NEAR(r.height_offset, 1.0, 1e-9);
}

TEST(ProjectToFloor, BrokenTriangleFlagged) {
  // Noise can make L2 > L1 + H; Eq. 7's cosine is clamped and flagged.
  const ProjectionResult r = project_to_floor(0.4, 5.0, 6.0);
  EXPECT_FALSE(r.well_conditioned);
}

TEST(ProjectToFloor, PreconditionsEnforced) {
  EXPECT_THROW((void)project_to_floor(0.0, 5.0, 5.0), PreconditionError);
  EXPECT_THROW((void)project_to_floor(0.4, 0.0, 5.0), PreconditionError);
  EXPECT_THROW((void)project_to_floor(0.4, 5.0, -1.0), PreconditionError);
}

TEST(ProjectToFloor, CoplanarCaseGivesSlantDistance) {
  // Speaker in the first slide plane: L1 is already horizontal; beta = 90
  // degrees when L2^2 = L1^2 + H^2.
  const double l1 = 6.0, h = 0.45;
  const double l2 = std::sqrt(l1 * l1 + h * h);
  const ProjectionResult r = project_to_floor(h, l1, l2);
  EXPECT_NEAR(r.beta_rad, 1.5707963, 1e-6);
  EXPECT_NEAR(r.projected_distance, l1, 1e-9);
}

}  // namespace
}  // namespace hyperear::geom
