/// Property-style parameterized sweeps of system-level invariants, using
/// cheap (noise-light, short-protocol) sessions so the whole suite stays
/// fast on one core.

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "geom/triangulation.hpp"
#include "sim/scenario.hpp"

namespace hyperear {
namespace {

// ---------------------------------------------------------------------------
// Solver-level properties: noise propagation through Eqs. 5-6.

struct SolverCase {
  double range;
  double dprime;
  double timing_noise_m;  // 1-sigma noise added to each range difference
};

class SolverNoise : public ::testing::TestWithParam<SolverCase> {};

TEST_P(SolverNoise, RangeErrorBoundedByFirstOrderSensitivity) {
  const SolverCase c = GetParam();
  const double d = kGalaxyS4MicSeparation;
  Rng rng(123);
  // First-order sensitivity of L to a range-difference error:
  // dL/d(dd) ~ L^2 / (D * D').
  const double sensitivity = c.range * c.range / (d * c.dprime);
  double worst = 0.0;
  for (int trial = 0; trial < 24; ++trial) {
    const geom::Vec2 truth{rng.uniform(-0.3, 0.3), c.range};
    geom::AugmentedTdoa in;
    in.slide_distance = c.dprime;
    in.mic_separation = d;
    const geom::Vec2 m1p{c.dprime / 2.0, 0.0}, m1m{-c.dprime / 2.0, 0.0};
    const geom::Vec2 m2p{d + c.dprime / 2.0, 0.0}, m2m{d - c.dprime / 2.0, 0.0};
    in.range_diff_mic1 =
        distance(truth, m1p) - distance(truth, m1m) + rng.gaussian(0.0, c.timing_noise_m);
    in.range_diff_mic2 =
        distance(truth, m2p) - distance(truth, m2m) + rng.gaussian(0.0, c.timing_noise_m);
    const geom::TriangulationResult r = geom::solve_augmented(in);
    if (!r.converged) continue;
    worst = std::max(worst, std::abs(r.position.y - truth.y));
  }
  // Allow 6 sigma of the first-order bound (the two noises add in the
  // difference, and the solve is mildly nonlinear).
  EXPECT_LT(worst, 6.0 * sensitivity * c.timing_noise_m * std::sqrt(2.0) + 0.02)
      << "range " << c.range << " dprime " << c.dprime;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SolverNoise,
    ::testing::Values(SolverCase{1.0, 0.55, 1e-4}, SolverCase{3.0, 0.55, 1e-4},
                      SolverCase{5.0, 0.55, 1e-4}, SolverCase{7.0, 0.55, 1e-4},
                      SolverCase{5.0, 0.15, 1e-4}, SolverCase{5.0, 0.35, 1e-4},
                      SolverCase{3.0, 0.55, 5e-4}, SolverCase{7.0, 0.55, 2e-5}));

// ---------------------------------------------------------------------------
// Aperture monotonicity: with everything else fixed, a longer slide gives a
// smaller range error (the paper's core claim, Fig. 14).

TEST(ApertureProperty, LongerSlideTighterRange) {
  const double d = kGalaxyS4MicSeparation;
  Rng rng(321);
  double err_short = 0.0, err_long = 0.0;
  for (int trial = 0; trial < 32; ++trial) {
    const geom::Vec2 truth{0.1, 5.0};
    for (double dprime : {0.15, 0.55}) {
      geom::AugmentedTdoa in;
      in.slide_distance = dprime;
      in.mic_separation = d;
      const geom::Vec2 m1p{dprime / 2.0, 0.0}, m1m{-dprime / 2.0, 0.0};
      const geom::Vec2 m2p{d + dprime / 2.0, 0.0}, m2m{d - dprime / 2.0, 0.0};
      const double noise = 1.5e-4;
      in.range_diff_mic1 =
          distance(truth, m1p) - distance(truth, m1m) + rng.gaussian(0.0, noise);
      in.range_diff_mic2 =
          distance(truth, m2p) - distance(truth, m2m) + rng.gaussian(0.0, noise);
      const geom::TriangulationResult r = geom::solve_augmented(in);
      if (!r.converged) continue;
      (dprime < 0.3 ? err_short : err_long) += std::abs(r.position.y - truth.y);
    }
  }
  EXPECT_LT(err_long, err_short);
}

// ---------------------------------------------------------------------------
// End-to-end seed sweep: every seed must produce a valid, sane 2D fix.

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, RulerSessionAlwaysLocalizes) {
  sim::ScenarioConfig c;
  c.speaker_distance = 3.0;
  c.slides_per_stature = 2;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  Rng rng(10000 + static_cast<std::uint64_t>(GetParam()) * 7919);
  const sim::Session s = sim::make_localization_session(c, rng);
  const core::LocalizationResult r = core::localize(s);
  ASSERT_TRUE(r.valid);
  EXPECT_GT(r.range, 1.5);
  EXPECT_LT(r.range, 5.0);
  EXPECT_LT(core::localization_error(r, s), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Clock-offset sweep: accuracy must be flat across the crystal tolerance
// range when SFO correction is on.

class ClockSweep : public ::testing::TestWithParam<double> {};

TEST_P(ClockSweep, SfoCorrectedAccuracyFlat) {
  sim::ScenarioConfig c;
  c.speaker_distance = 4.0;
  c.slides_per_stature = 2;
  c.calibration_duration = 3.5;
  c.jitter = sim::ruler_jitter();
  // Force a specific speaker offset instead of a random draw.
  c.speaker_clock_ppm_sigma = 0.0;
  c.phone_clock_ppm_sigma = 0.0;
  c.speaker.clock_offset_ppm = GetParam();
  Rng rng(777);
  sim::Session s = sim::make_localization_session(c, rng);
  const core::LocalizationResult r = core::localize(s);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(core::localization_error(r, s), 0.35) << "ppm " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PpmRange, ClockSweep,
                         ::testing::Values(-80.0, -30.0, 0.0, 30.0, 80.0));

}  // namespace
}  // namespace hyperear
