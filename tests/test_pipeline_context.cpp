/// PipelineContext: the shared DSP plan cache must be a pure optimization —
/// bit-identical results with a context, without one, and with a
/// *mismatched* one (which must be ignored in favour of a local rebuild).

#include "core/pipeline_context.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "core/asp.hpp"
#include "core/pipeline.hpp"
#include "core/session_workspace.hpp"
#include "sim/scenario.hpp"

namespace hyperear::core {
namespace {

sim::Session small_session(std::uint64_t seed) {
  sim::ScenarioConfig c;
  c.speaker_distance = 4.0;
  c.slides_per_stature = 3;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  Rng rng(seed);
  return sim::make_localization_session(c, rng);
}

void expect_identical_events(const std::vector<ChirpEvent>& a,
                             const std::vector<ChirpEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time_s, b[i].time_s) << "event " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "event " << i;
    EXPECT_EQ(a[i].amplitude, b[i].amplitude) << "event " << i;
    EXPECT_EQ(a[i].echo_competition, b[i].echo_competition) << "event " << i;
  }
}

void expect_identical_asp(const AspResult& a, const AspResult& b) {
  expect_identical_events(a.mic1, b.mic1);
  expect_identical_events(a.mic2, b.mic2);
  EXPECT_EQ(a.estimated_period, b.estimated_period);
  EXPECT_EQ(a.sfo_ppm, b.sfo_ppm);
  EXPECT_EQ(a.sfo_estimated, b.sfo_estimated);
}

TEST(PipelineContext, AspBitIdenticalWithAndWithoutContext) {
  const sim::Session s = small_session(600);
  const AspOptions options;
  const PipelineContext context(options, s.prior.chirp, s.audio.sample_rate);
  ASSERT_TRUE(context.matches(options, s.prior.chirp, s.audio.sample_rate));

  const AspResult planless =
      preprocess_audio(s.audio, s.prior.chirp, s.prior.nominal_period,
                       s.prior.calibration_duration, options);
  const AspResult planned =
      preprocess_audio(s.audio, s.prior.chirp, s.prior.nominal_period,
                       s.prior.calibration_duration, options, &context);
  ASSERT_FALSE(planned.mic1.empty());
  expect_identical_asp(planless, planned);
}

TEST(PipelineContext, TryLocalizeBitIdenticalWithAndWithoutContext) {
  const sim::Session s = small_session(601);
  const PipelineConfig config;
  const PipelineContext context(config, s.prior.chirp, s.audio.sample_rate);
  SessionWorkspace workspace;

  const auto planless = try_localize(s, config);
  const auto planned = try_localize(s, config, context, workspace);
  ASSERT_TRUE(planless.has_value());
  ASSERT_TRUE(planned.has_value());
  EXPECT_EQ(planless->valid, planned->valid);
  EXPECT_EQ(planless->estimated_position.x, planned->estimated_position.x);
  EXPECT_EQ(planless->estimated_position.y, planned->estimated_position.y);
  EXPECT_EQ(planless->range, planned->range);
  EXPECT_EQ(planless->estimated_period, planned->estimated_period);
  EXPECT_EQ(planless->sfo_ppm, planned->sfo_ppm);
  EXPECT_EQ(planless->slides_used, planned->slides_used);
}

TEST(PipelineContext, MismatchedContextFallsBackToLocalPlans) {
  const sim::Session s = small_session(602);
  const AspOptions options;

  // A context for a *different* chirp: the pipeline must notice and build
  // its own plans rather than correlate against the wrong reference.
  dsp::ChirpParams other = s.prior.chirp;
  other.freq_high_hz += 500.0;
  const PipelineContext wrong(options, other, s.audio.sample_rate);
  ASSERT_FALSE(wrong.matches(options, s.prior.chirp, s.audio.sample_rate));

  const AspResult honest =
      preprocess_audio(s.audio, s.prior.chirp, s.prior.nominal_period,
                       s.prior.calibration_duration, options);
  const AspResult guarded =
      preprocess_audio(s.audio, s.prior.chirp, s.prior.nominal_period,
                       s.prior.calibration_duration, options, &wrong);
  expect_identical_asp(honest, guarded);

  // Same for a sample-rate mismatch.
  const PipelineContext wrong_fs(options, s.prior.chirp, s.audio.sample_rate * 2.0);
  ASSERT_FALSE(wrong_fs.matches(options, s.prior.chirp, s.audio.sample_rate));
}

TEST(PipelineContext, PlansMatchTheirInputs) {
  const sim::Session s = small_session(603);
  const AspOptions options;
  const PipelineContext context(options, s.prior.chirp, s.audio.sample_rate);
  EXPECT_EQ(context.sample_rate(), s.audio.sample_rate);
  EXPECT_TRUE(context.asp_options() == options);
  EXPECT_TRUE(context.chirp_params() == s.prior.chirp);
  EXPECT_FALSE(context.bandpass_taps().empty());
  EXPECT_EQ(context.bandpass_taps().size(), options.bandpass_taps);
  EXPECT_EQ(context.detector().reference().size(),
            context.chirp().reference(s.audio.sample_rate).size());

  AspOptions no_filter = options;
  no_filter.bandpass = false;
  const PipelineContext bare(no_filter, s.prior.chirp, s.audio.sample_rate);
  EXPECT_TRUE(bare.bandpass_taps().empty());
  EXPECT_FALSE(bare.matches(options, s.prior.chirp, s.audio.sample_rate));
}

TEST(PipelineContext, RejectsInvalidInputsAtConstruction) {
  const dsp::ChirpParams chirp;
  EXPECT_THROW(PipelineContext(AspOptions{}, chirp, 0.0), PreconditionError);
  AspOptions bad;
  bad.detector_threshold = 2.0;
  EXPECT_THROW(PipelineContext(bad, chirp, 44100.0), PreconditionError);
}

}  // namespace
}  // namespace hyperear::core
