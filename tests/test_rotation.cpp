#include "geom/rotation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"

namespace hyperear::geom {
namespace {

void expect_vec_near(const Vec3& a, const Vec3& b, double tol = 1e-12) {
  EXPECT_NEAR(a.x, b.x, tol);
  EXPECT_NEAR(a.y, b.y, tol);
  EXPECT_NEAR(a.z, b.z, tol);
}

TEST(Rotate2d, QuarterTurn) {
  const Vec2 v = rotate2d({1.0, 0.0}, kPi / 2.0);
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  EXPECT_NEAR(v.y, 1.0, 1e-12);
}

TEST(Rotate2d, PreservesNorm) {
  for (double a = -3.0; a <= 3.0; a += 0.37) {
    const Vec2 v = rotate2d({2.0, -1.0}, a);
    EXPECT_NEAR(v.norm(), std::sqrt(5.0), 1e-12) << "angle " << a;
  }
}

TEST(Mat3, IdentityLeavesVectors) {
  const Vec3 v{1.0, -2.0, 3.0};
  expect_vec_near(Mat3::identity() * v, v);
}

TEST(Mat3, RotZQuarterTurn) {
  const Vec3 v = Mat3::rot_z(kPi / 2.0) * Vec3{1.0, 0.0, 0.0};
  expect_vec_near(v, {0.0, 1.0, 0.0});
}

TEST(Mat3, RotXQuarterTurn) {
  const Vec3 v = Mat3::rot_x(kPi / 2.0) * Vec3{0.0, 1.0, 0.0};
  expect_vec_near(v, {0.0, 0.0, 1.0});
}

TEST(Mat3, RotYQuarterTurn) {
  const Vec3 v = Mat3::rot_y(kPi / 2.0) * Vec3{0.0, 0.0, 1.0};
  expect_vec_near(v, {1.0, 0.0, 0.0});
}

TEST(Mat3, TransposeIsInverse) {
  const Mat3 r = Mat3::from_euler_zyx(0.4, -0.2, 0.9);
  const Vec3 v{1.0, 2.0, 3.0};
  expect_vec_near(r.transpose() * (r * v), v, 1e-12);
}

TEST(Mat3, CompositionMatchesSequentialApplication) {
  const Mat3 a = Mat3::rot_z(0.3);
  const Mat3 b = Mat3::rot_x(0.7);
  const Vec3 v{0.5, -1.0, 2.0};
  expect_vec_near((a * b) * v, a * (b * v), 1e-12);
}

TEST(Mat3, EulerZyxOrder) {
  // Pure yaw: matches rot_z.
  const Mat3 yaw_only = Mat3::from_euler_zyx(0.6, 0.0, 0.0);
  const Mat3 rz = Mat3::rot_z(0.6);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_NEAR(yaw_only.at(i, j), rz.at(i, j), 1e-12);
  }
}

TEST(Mat3, YawExtraction) {
  for (double psi : {-2.0, -0.5, 0.0, 0.5, 2.5}) {
    const Mat3 r = Mat3::from_euler_zyx(psi, 0.05, -0.03);
    EXPECT_NEAR(r.yaw(), psi, 0.01) << "psi=" << psi;
  }
}

TEST(Pose, RoundTripWorldBody) {
  Pose pose;
  pose.position = {1.0, 2.0, 3.0};
  pose.orientation = Mat3::from_euler_zyx(0.3, 0.1, -0.2);
  const Vec3 body{0.0, 0.07, 0.0};
  const Vec3 world = pose.to_world(body);
  // Map the world *vector* back to body frame.
  const Vec3 back = pose.vector_to_body(world - pose.position);
  expect_vec_near(back, body, 1e-12);
}

TEST(Pose, MicOffsetStaysRigid) {
  Pose pose;
  pose.position = {5.0, 5.0, 1.0};
  pose.orientation = Mat3::rot_z(1.234);
  const Vec3 mic1{0.0, 0.07, 0.0};
  const Vec3 mic2{0.0, -0.07, 0.0};
  const double d = distance(pose.to_world(mic1), pose.to_world(mic2));
  EXPECT_NEAR(d, 0.14, 1e-12);
}

}  // namespace
}  // namespace hyperear::geom
