#include "imu/gravity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace hyperear::imu {
namespace {

/// Static phone, slightly tilted: gravity projects onto x/y.
ImuData tilted_static(double pitch_rad, std::size_t n) {
  ImuData d;
  d.sample_rate = 100.0;
  d.accel_x.assign(n, 0.0);
  d.accel_y.assign(n, kGravity * std::sin(pitch_rad));
  d.accel_z.assign(n, kGravity * std::cos(pitch_rad));
  d.gyro_x.assign(n, 0.0);
  d.gyro_y.assign(n, 0.0);
  d.gyro_z.assign(n, 0.0);
  return d;
}

TEST(RemoveGravity, StaticHeadZeroesLinearAcceleration) {
  const ImuData d = tilted_static(deg2rad(3.0), 600);
  const LinearAcceleration lin = remove_gravity(d);
  for (std::size_t i = 0; i < lin.x.size(); ++i) {
    EXPECT_NEAR(lin.x[i], 0.0, 1e-9);
    EXPECT_NEAR(lin.y[i], 0.0, 1e-9);
    EXPECT_NEAR(lin.z[i], 0.0, 1e-9);
  }
}

TEST(RemoveGravity, MotionAfterHeadSurvives) {
  ImuData d = tilted_static(0.0, 800);
  // A burst of y acceleration after the 2 s head.
  for (std::size_t i = 400; i < 500; ++i) d.accel_y[i] += 2.0;
  const LinearAcceleration lin = remove_gravity(d);
  EXPECT_NEAR(lin.y[450], 2.0, 1e-9);
  EXPECT_NEAR(lin.y[100], 0.0, 1e-9);
}

TEST(RemoveGravity, StaticHeadIgnoresLateMotion) {
  // The median over the head window must not be polluted by motion later.
  ImuData d = tilted_static(0.0, 1000);
  for (std::size_t i = 300; i < 1000; ++i) d.accel_y[i] += 3.0;
  GravityOptions opts;
  opts.head_duration_s = 2.0;
  const LinearAcceleration lin = remove_gravity(d, opts);
  EXPECT_NEAR(lin.gravity_y[0], 0.0, 1e-9);
}

TEST(RemoveGravity, LowpassModeTracksGravity) {
  GravityOptions opts;
  opts.mode = GravityMode::kLowpass;
  const ImuData d = tilted_static(deg2rad(2.0), 1000);
  const LinearAcceleration lin = remove_gravity(d, opts);
  // Middle of the record: gravity fully captured by the low-pass.
  EXPECT_NEAR(lin.y[500], 0.0, 2e-3);  // filtfilt edge transient remnant
  EXPECT_NEAR(lin.gravity_z[500], kGravity * std::cos(deg2rad(2.0)), 0.05);
}

TEST(RemoveGravity, ShortRecordThrows) {
  const ImuData d = tilted_static(0.0, 4);
  EXPECT_THROW((void)remove_gravity(d), PreconditionError);
}

TEST(MeanTiltAngle, MatchesConstruction) {
  for (double tilt_deg : {0.0, 2.0, 5.0, 10.0}) {
    const ImuData d = tilted_static(deg2rad(tilt_deg), 300);
    const LinearAcceleration lin = remove_gravity(d);
    EXPECT_NEAR(rad2deg(mean_tilt_angle(lin)), tilt_deg, 0.1) << tilt_deg;
  }
}

}  // namespace
}  // namespace hyperear::imu
