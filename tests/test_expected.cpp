/// Tests of the non-throwing pipeline surface: the Expected carrier, the
/// error taxonomy's round trip with the exception hierarchy, and
/// try_localize's failure-as-value contract.

#include "common/expected.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "sim/scenario.hpp"

namespace hyperear {
namespace {

using core::ErrorCategory;
using core::PipelineError;
using core::PipelineStage;

TEST(Expected, HoldsValue) {
  Expected<int, std::string> e = 42;
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(static_cast<bool>(e));
  EXPECT_EQ(e.value(), 42);
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.value_or(7), 42);
  EXPECT_THROW((void)e.error(), PreconditionError);
}

TEST(Expected, HoldsError) {
  Expected<int, std::string> e = make_unexpected(std::string("boom"));
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error(), "boom");
  EXPECT_EQ(e.value_or(7), 7);
  EXPECT_THROW((void)e.value(), PreconditionError);
}

TEST(Expected, MovesValueOut) {
  Expected<std::vector<int>, std::string> e = std::vector<int>{1, 2, 3};
  const std::vector<int> taken = *std::move(e);
  EXPECT_EQ(taken.size(), 3u);
}

// --- taxonomy round trip: exception -> category -> exception -------------

TEST(ErrorTaxonomy, ClassifiesEachErrorSubclass) {
  EXPECT_EQ(core::classify_exception(PreconditionError("p")),
            ErrorCategory::precondition);
  EXPECT_EQ(core::classify_exception(NumericalError("n")), ErrorCategory::numerical);
  EXPECT_EQ(core::classify_exception(DetectionError("d")), ErrorCategory::detection);
  EXPECT_EQ(core::classify_exception(Error("e")), ErrorCategory::internal);
  EXPECT_EQ(core::classify_exception(std::runtime_error("r")),
            ErrorCategory::internal);
}

TEST(ErrorTaxonomy, RethrowRestoresExceptionType) {
  const auto roundtrip = [](const Error& original) {
    const PipelineError as_value =
        core::error_from_exception(original, PipelineStage::asp);
    try {
      core::rethrow(as_value);
    } catch (const Error& back) {
      EXPECT_STREQ(back.what(), original.what());
      EXPECT_EQ(core::classify_exception(back), as_value.category);
      return;
    }
    FAIL() << "rethrow did not throw an Error";
  };
  roundtrip(PreconditionError("violated contract"));
  roundtrip(NumericalError("did not converge"));
  roundtrip(DetectionError("no chirps"));
  roundtrip(Error("generic"));
}

TEST(ErrorTaxonomy, DescribeMentionsStageAndCategory) {
  const PipelineError e{ErrorCategory::detection, PipelineStage::ttl, "no pairs"};
  const std::string text = core::describe(e);
  EXPECT_NE(text.find("ttl"), std::string::npos);
  EXPECT_NE(text.find("detection"), std::string::npos);
  EXPECT_NE(text.find("no pairs"), std::string::npos);
}

// --- try_localize failure-as-value contract ------------------------------

TEST(TryLocalize, CorruptSessionIsErrorValueNotException) {
  const sim::Session empty;  // no audio at all
  const auto outcome = core::try_localize(empty);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().category, ErrorCategory::precondition);
  EXPECT_EQ(outcome.error().stage, PipelineStage::asp);
}

TEST(TryLocalize, InvalidConfigReportedBeforeAnyStage) {
  sim::Session empty;
  core::PipelineConfig bad;
  bad.asp.detector_threshold = 1.5;  // outside (0, 1)
  const auto outcome = core::try_localize(empty, bad);
  ASSERT_FALSE(outcome.has_value());
  EXPECT_EQ(outcome.error().category, ErrorCategory::config);
  EXPECT_EQ(outcome.error().stage, PipelineStage::config);
}

TEST(TryLocalize, ConfigValidationCoversTtlBlock) {
  core::PipelineConfig bad;
  bad.ttl.max_pairs = 0;
  ASSERT_TRUE(bad.validate().has_value());
  EXPECT_EQ(bad.validate()->category, ErrorCategory::config);
  core::PipelineConfig good;
  EXPECT_FALSE(good.validate().has_value());
}

TEST(TryLocalize, PleOptionsComposeFromSharedTtl) {
  core::PipelineConfig config;
  config.ttl.min_slide_distance = 0.33;
  config.min_stature_change = 0.2;
  const core::PleOptions ple = config.ple_options();
  EXPECT_DOUBLE_EQ(ple.ttl.min_slide_distance, 0.33);
  EXPECT_DOUBLE_EQ(ple.min_stature_change, 0.2);
}

TEST(LocalizeShim, RethrowsTaxonomyMatchedException) {
  const sim::Session empty;
  EXPECT_THROW((void)core::localize(empty), PreconditionError);
}

TEST(TryLocalize, EndToEndSuccessMatchesShim) {
  sim::ScenarioConfig c;
  c.speaker_distance = 4.0;
  c.slides_per_stature = 3;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  Rng rng(601);
  const sim::Session s = sim::make_localization_session(c, rng);

  core::StageMetrics metrics;
  const auto outcome = core::try_localize(s, {}, &metrics);
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->valid);
  ASSERT_TRUE(outcome->ttl.has_value());  // 2D flow populated its sub-result
  EXPECT_FALSE(outcome->ple.has_value());
  EXPECT_FALSE(outcome->used_3d());

  EXPECT_GT(metrics.chirps_mic1, 0u);
  EXPECT_GT(metrics.chirps_mic2, 0u);
  EXPECT_TRUE(metrics.sfo_estimated);
  EXPECT_GT(metrics.asp_ms, 0.0);
  EXPECT_EQ(metrics.slides_accepted, outcome->slides_used);

  const core::LocalizationResult via_shim = core::localize(s);
  EXPECT_DOUBLE_EQ(via_shim.estimated_position.x, outcome->estimated_position.x);
  EXPECT_DOUBLE_EQ(via_shim.estimated_position.y, outcome->estimated_position.y);
  EXPECT_DOUBLE_EQ(via_shim.range, outcome->range);
}

}  // namespace
}  // namespace hyperear
