/// Tests for the future-work extensions (paper Section IX): the inaudible
/// near-ultrasonic beacon with microphone frequency-response distortion,
/// and FDMA multi-tag operation.

#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.hpp"
#include "sim/scenario.hpp"

namespace hyperear::core {
namespace {

sim::ScenarioConfig base_config() {
  sim::ScenarioConfig c;
  c.speaker_distance = 3.0;
  c.slides_per_stature = 3;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  return c;
}

TEST(MicResponse, FlatInAudibleBandRollsOffUltrasonic) {
  const sim::AdcSpec adc;  // cutoff 19 kHz
  EXPECT_NEAR(adc.response_at(1000.0), 1.0, 1e-3);
  EXPECT_NEAR(adc.response_at(6400.0), 1.0, 0.01);
  EXPECT_NEAR(adc.response_at(19000.0), std::sqrt(0.5), 1e-6);
  EXPECT_LT(adc.response_at(21000.0), 0.7);
  // Disabled response is flat everywhere.
  sim::AdcSpec flat;
  flat.response_cutoff_hz = 0.0;
  EXPECT_DOUBLE_EQ(flat.response_at(21000.0), 1.0);
}

TEST(InaudibleBeacon, SpecBandIsNearUltrasonic) {
  const sim::SpeakerSpec spec = sim::inaudible_beacon();
  EXPECT_GE(spec.chirp.freq_low_hz, 16000.0);
  EXPECT_LT(spec.chirp.freq_high_hz, 22050.0);  // below Nyquist at 44.1 kHz
}

TEST(InaudibleBeacon, StillLocalizesAtShortRange) {
  sim::ScenarioConfig c = base_config();
  c.speaker = sim::inaudible_beacon();
  Rng rng(601);
  const sim::Session s = sim::make_localization_session(c, rng);
  const LocalizationResult r = localize(s);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(localization_error(r, s), 0.8);
}

TEST(InaudibleBeacon, WorseThanAudibleAtRange) {
  // The mic rolloff costs SNR and effective bandwidth; at 5 m the audible
  // beacon must do at least as well on average.
  double audible_err = 0.0, inaudible_err = 0.0;
  int audible_fail = 0, inaudible_fail = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    sim::ScenarioConfig c = base_config();
    c.speaker_distance = 5.0;
    Rng r1(610 + seed);
    const sim::Session sa = sim::make_localization_session(c, r1);
    const LocalizationResult ra = localize(sa);
    if (ra.valid) {
      audible_err += localization_error(ra, sa);
    } else {
      ++audible_fail;
    }
    c.speaker = sim::inaudible_beacon();
    Rng r2(610 + seed);
    const sim::Session si = sim::make_localization_session(c, r2);
    const LocalizationResult ri = localize(si);
    if (ri.valid) {
      inaudible_err += localization_error(ri, si);
    } else {
      ++inaudible_fail;
    }
  }
  EXPECT_EQ(audible_fail, 0);
  // Inaudible either fails more often or is less accurate.
  EXPECT_TRUE(inaudible_fail > 0 || inaudible_err >= audible_err * 0.8);
}

TEST(MultiTag, SecondaryBandBeaconLocalizedWithItsOwnReference) {
  // One session, the beacon transmitting in the secondary band; the
  // pipeline works as long as the prior carries the right chirp.
  sim::ScenarioConfig c = base_config();
  c.speaker = sim::secondary_band_beacon();
  Rng rng(602);
  const sim::Session s = sim::make_localization_session(c, rng);
  const LocalizationResult r = localize(s);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(localization_error(r, s), 0.4);
}

TEST(MultiTag, WrongChirpReferenceFindsNothing) {
  // Listening for the secondary band while the beacon chirps 2-6.4 kHz:
  // the matched filter must not hallucinate arrivals.
  sim::ScenarioConfig c = base_config();
  Rng rng(603);
  sim::Session s = sim::make_localization_session(c, rng);
  s.prior.chirp = sim::secondary_band_beacon().chirp;
  const LocalizationResult r = localize(s);
  EXPECT_FALSE(r.valid);
}

TEST(MultiTag, InterferersPlacedInsideRoom) {
  sim::ScenarioConfig c = base_config();
  sim::ScenarioConfig::Interferer itf;
  itf.spec = sim::secondary_band_beacon();
  itf.distance = 2.0;
  itf.lateral_offset = 1.0;
  c.interferers.push_back(itf);
  Rng rng(604);
  // Should build without throwing and produce a longer... same audio.
  const sim::Session s = sim::make_localization_session(c, rng);
  EXPECT_GT(s.audio.mic1.size(), 0u);
}

}  // namespace
}  // namespace hyperear::core
