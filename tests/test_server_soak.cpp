/// Fault-injection soak of the serving layer (ctest label "stress"; run
/// it under ThreadSanitizer via the `tsan` preset). A seeded chaos
/// schedule interleaves bursty submits from concurrent producers, a
/// mid-flight shard shutdown, oversized/zero-length sessions, and
/// streaming-class requests, then asserts the lifecycle bookkeeping
/// survived: no deadlock, no lost future, and the conservation law
///   submitted == completed + shed + expired + cancelled + queued + in_flight
/// holding on every sampled snapshot and exactly at quiescence, with the
/// `server.*` registry series and the shards' EngineStats agreeing.

#include "runtime/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "sim/scenario.hpp"

namespace hyperear::runtime {
namespace {

sim::ScenarioConfig small_scenario() {
  sim::ScenarioConfig c;
  c.speaker_distance = 4.0;
  c.slides_per_stature = 3;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  return c;
}

/// The chaos traffic pool: a few real sessions plus the corrupt shapes the
/// ISSUE calls out — zero-length audio and an oversized pure-noise session
/// (large enough to dwarf a chunk, structured enough to reach the
/// detector).
std::vector<sim::Session> make_traffic_pool() {
  std::vector<sim::Session> pool;
  for (std::uint64_t seed : {2001ULL, 2002ULL}) {
    Rng rng(seed);
    pool.push_back(sim::make_localization_session(small_scenario(), rng));
  }
  pool.emplace_back();  // zero-length: empty audio, empty imu
  {
    sim::Session noise = pool[0];  // valid metadata, garbage audio
    Rng rng(2003);
    noise.audio.mic1.assign(200000, 0.0);
    noise.audio.mic2.assign(200000, 0.0);
    for (double& x : noise.audio.mic1) x = rng.gaussian(0.0, 0.05);
    for (double& x : noise.audio.mic2) x = rng.gaussian(0.0, 0.05);
    pool.push_back(std::move(noise));
  }
  {
    sim::Session lopsided = pool[0];  // channels disagree on length
    lopsided.audio.mic2.resize(lopsided.audio.mic2.size() / 2);
    pool.push_back(std::move(lopsided));
  }
  return pool;
}

void expect_conserved(const ServerStats& s, const char* where) {
  EXPECT_EQ(s.submitted, s.completed + s.shed + s.expired + s.cancelled +
                             s.queued + s.in_flight)
      << where;
}

TEST(ServerSoak, SeededChaosScheduleKeepsEveryInvariant) {
  ServerOptions opts;
  opts.shards = 2;
  opts.threads_per_shard = 2;
  opts.max_in_flight = 4;
  opts.max_queued = 8;
  opts.streaming_chunk_samples = 3000;
  opts.streaming_policy.deadline_ticks = 6;  // streaming class can expire
  auto registry = std::make_shared<obs::MetricsRegistry>();
  Server server({}, opts, EngineObs{registry, nullptr});
  const std::vector<sim::Session> pool = make_traffic_pool();

  // Two seeded producers fire bursts while the main thread advances the
  // deadline clock, samples invariants, and injects the shard fault.
  // Interleaving is nondeterministic — the invariants must hold for ALL
  // of them, which is exactly what the soak is for.
  std::atomic<bool> go{false};
  const auto producer = [&](std::uint64_t seed,
                            std::vector<std::future<Response>>& futures,
                            std::size_t& closed) {
    Rng rng(seed);
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (int round = 0; round < 12; ++round) {
      const int burst = static_cast<int>(rng.uniform_int(1, 4));
      for (int i = 0; i < burst; ++i) {
        const auto& session = pool[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
        const RequestClass cls = rng.uniform_int(0, 9) < 3
                                     ? RequestClass::streaming
                                     : RequestClass::batch;
        SubmitResult r = server.submit(session, cls);
        if (r.admission == Admission::accepted) {
          futures.push_back(std::move(r.response));
        } else if (r.admission == Admission::closed) {
          ++closed;
        }
      }
      if (rng.uniform_int(0, 3) == 0) std::this_thread::yield();
    }
  };

  std::vector<std::future<Response>> futures_a;
  std::vector<std::future<Response>> futures_b;
  std::size_t closed_a = 0;
  std::size_t closed_b = 0;
  std::thread a([&] { producer(31, futures_a, closed_a); });
  std::thread b([&] { producer(32, futures_b, closed_b); });
  go.store(true, std::memory_order_release);

  bool shard_killed = false;
  for (int step = 0; step < 40; ++step) {
    server.tick();
    expect_conserved(server.stats(), "mid-chaos snapshot");
    if (step == 8 && !shard_killed) {
      // Fault injection: one shard dies with requests in flight and more
      // coming. Its dispatches must cancel by value, never hang.
      server.shard(1).shutdown();
      shard_killed = true;
    }
    std::this_thread::yield();
  }
  a.join();
  b.join();
  server.drain();

  // Every accepted future resolves (a lost future would hang here; a
  // double-resolve would have thrown inside the server).
  ServerStats expected_outcomes;
  const auto reap = [&](std::vector<std::future<Response>>& futures) {
    for (std::future<Response>& f : futures) {
      const Response r = f.get();
      switch (r.outcome) {
        case RequestOutcome::completed: ++expected_outcomes.completed; break;
        case RequestOutcome::expired: ++expected_outcomes.expired; break;
        case RequestOutcome::cancelled: ++expected_outcomes.cancelled; break;
      }
    }
  };
  reap(futures_a);
  reap(futures_b);

  const ServerStats s = server.stats();
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.in_flight, 0u);
  expect_conserved(s, "quiescence");
  EXPECT_EQ(s.completed, expected_outcomes.completed);
  EXPECT_EQ(s.expired, expected_outcomes.expired);
  EXPECT_EQ(s.cancelled, expected_outcomes.cancelled);
  EXPECT_EQ(s.submitted,
            futures_a.size() + futures_b.size() + s.shed);
  EXPECT_EQ(s.closed, closed_a + closed_b);
  EXPECT_LE(s.peak_queued, opts.max_queued);
  EXPECT_LE(s.peak_in_flight, opts.max_in_flight);
  // Per-class totals partition the overall totals.
  EXPECT_EQ(s.submitted_by_class[0] + s.submitted_by_class[1], s.submitted);
  EXPECT_EQ(s.completed_by_class[0] + s.completed_by_class[1], s.completed);
  EXPECT_EQ(s.shed_by_class[0] + s.shed_by_class[1], s.shed);
  EXPECT_EQ(s.expired_by_class[0] + s.expired_by_class[1], s.expired);
  EXPECT_EQ(s.cancelled_by_class[0] + s.cancelled_by_class[1], s.cancelled);

  // The registry's server.* series mirror the exact lifecycle totals at
  // quiescence.
  obs::MetricsRegistry& m = *registry;
  EXPECT_EQ(m.counter("server.requests_submitted_total").value(),
            static_cast<double>(s.submitted));
  EXPECT_EQ(m.counter("server.requests_completed_total").value(),
            static_cast<double>(s.completed));
  EXPECT_EQ(m.counter("server.requests_shed_total").value(),
            static_cast<double>(s.shed));
  EXPECT_EQ(m.counter("server.requests_expired_total").value(),
            static_cast<double>(s.expired));
  EXPECT_EQ(m.counter("server.requests_cancelled_total").value(),
            static_cast<double>(s.cancelled));
  EXPECT_EQ(m.gauge("server.queue_depth").value(), 0.0);
  EXPECT_EQ(m.gauge("server.in_flight").value(), 0.0);

  // Engine-side bookkeeping: at quiescence every dispatched session has
  // completed — the shards never swallow work (EngineStats::submitted
  // already nets out posts the dying shard refused). The shards share the
  // server's registry, so every shard's stats() view IS the cross-shard
  // aggregate; read it once rather than summing.
  const EngineStats es = server.shard(0).stats();
  EXPECT_EQ(es.submitted, es.completed);
  EXPECT_EQ(es.completed, s.completed);

  server.shutdown();
  expect_conserved(server.stats(), "post-shutdown");
}

TEST(ServerSoak, ShutdownRacingActiveProducersLosesNothing) {
  ServerOptions opts;
  opts.shards = 1;
  opts.threads_per_shard = 2;
  opts.max_in_flight = 2;
  opts.max_queued = 4;
  Server server({}, opts);
  const std::vector<sim::Session> pool = make_traffic_pool();

  std::vector<std::future<Response>> futures;
  std::mutex futures_mutex;
  std::atomic<std::size_t> accepted{0};
  std::atomic<std::size_t> refused{0};
  const auto producer = [&](std::uint64_t seed) {
    Rng rng(seed);
    for (int i = 0; i < 30; ++i) {
      const auto& session = pool[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
      SubmitResult r = server.submit(session);
      if (r.admission == Admission::accepted) {
        accepted.fetch_add(1, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(futures_mutex);
        futures.push_back(std::move(r.response));
      } else {
        refused.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::thread p1([&] { producer(41); });
  std::thread p2([&] { producer(42); });
  std::this_thread::yield();
  server.shutdown();  // races the producers mid-burst
  p1.join();
  p2.join();

  for (std::future<Response>& f : futures) {
    const Response r = f.get();  // hangs iff a future was lost
    EXPECT_TRUE(r.outcome == RequestOutcome::completed ||
                r.outcome == RequestOutcome::cancelled);
  }
  const ServerStats s = server.stats();
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_EQ(s.completed + s.cancelled + s.shed, s.submitted);
  EXPECT_EQ(accepted.load(), s.submitted - s.shed);
  EXPECT_EQ(accepted.load() + refused.load(), 60u);
  EXPECT_EQ(refused.load(), s.shed + s.closed);
  expect_conserved(s, "post-shutdown");
}

}  // namespace
}  // namespace hyperear::runtime
