#include "dsp/sma.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hyperear::dsp {
namespace {

TEST(MovingAverage, KnownValues) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> y = moving_average(x, 3);
  ASSERT_EQ(y.size(), x.size());
  EXPECT_DOUBLE_EQ(y[0], 1.0);        // average of the first 1
  EXPECT_DOUBLE_EQ(y[1], 1.5);        // average of the first 2
  EXPECT_DOUBLE_EQ(y[2], 2.0);        // (1+2+3)/3
  EXPECT_DOUBLE_EQ(y[3], 3.0);        // (2+3+4)/3
  EXPECT_DOUBLE_EQ(y[4], 4.0);
}

TEST(MovingAverage, LengthOneIsIdentity) {
  const std::vector<double> x{3.0, 1.0, 4.0};
  EXPECT_EQ(moving_average(x, 1), x);
  EXPECT_THROW((void)moving_average(x, 0), PreconditionError);
}

TEST(MovingAverage, ConstantSignalUnchanged) {
  const std::vector<double> x(50, 7.7);
  for (double v : moving_average(x, 4)) EXPECT_DOUBLE_EQ(v, 7.7);
}

TEST(MovingAverage, SuppressesHighFrequency) {
  // Alternating +1/-1 (Nyquist) should nearly vanish under n = 4.
  std::vector<double> x(64);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = (i % 2 == 0) ? 1.0 : -1.0;
  const std::vector<double> y = moving_average(x, 4);
  for (std::size_t i = 8; i < y.size(); ++i) EXPECT_NEAR(y[i], 0.0, 1e-12);
}

TEST(MovingAverageMagnitude, DcIsUnity) {
  EXPECT_DOUBLE_EQ(moving_average_magnitude(4, 0.0, 100.0), 1.0);
}

TEST(MovingAverageMagnitude, MatchesFilterOnTone) {
  const double fs = 100.0;
  const double f = 12.0;
  const std::size_t n = 4;
  std::vector<double> x(4000);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(2.0 * kPi * f * static_cast<double>(i) / fs);
  const std::vector<double> y = moving_average(x, n);
  double energy = 0.0;
  for (std::size_t i = 2000; i < 4000; ++i) energy += y[i] * y[i];
  const double measured = std::sqrt(energy / 2000.0) * std::sqrt(2.0);
  EXPECT_NEAR(measured, moving_average_magnitude(n, f, fs), 0.01);
}

TEST(MovingAverageCutoff, PaperDesignPoint) {
  // Paper Section V-A1: n = 4 at 100 Hz gives a -3 dB cutoff near 15 Hz.
  const double cutoff = moving_average_cutoff_hz(4, 100.0);
  EXPECT_NEAR(cutoff, 11.0, 4.5);  // the sampled-SMA cutoff lands near 11 Hz
  // Magnitude at the returned cutoff really is -3 dB.
  EXPECT_NEAR(moving_average_magnitude(4, cutoff, 100.0), std::sqrt(0.5), 1e-6);
}

TEST(MovingAverageCutoff, DecreasesWithLength) {
  double last = 51.0;
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    const double c = moving_average_cutoff_hz(n, 100.0);
    EXPECT_LT(c, last);
    last = c;
  }
}

}  // namespace
}  // namespace hyperear::dsp
