#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "sim/scenario.hpp"

namespace hyperear::core {
namespace {

sim::ScenarioConfig base_config() {
  sim::ScenarioConfig c;
  c.speaker_distance = 4.0;
  c.speaker_height = 1.3;
  c.phone_height = 1.3;
  c.slides_per_stature = 3;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  return c;
}

TEST(PipelineE2E, Ruler2dLocalizesWithinDecimeters) {
  Rng rng(201);
  const sim::Session s = sim::make_localization_session(base_config(), rng);
  const LocalizationResult r = localize(s);
  ASSERT_TRUE(r.valid);
  EXPECT_FALSE(r.used_3d());
  EXPECT_EQ(r.slides_used, 3);
  EXPECT_LT(localization_error(r, s), 0.3);
  EXPECT_NEAR(r.range, 4.0, 0.3);
}

TEST(PipelineE2E, HandHeld3dLocalizes) {
  Rng rng(202);
  sim::ScenarioConfig c = base_config();
  c.two_statures = true;
  c.speaker_height = 0.5;
  c.jitter = sim::hand_jitter();
  const sim::Session s = sim::make_localization_session(c, rng);
  const LocalizationResult r = localize(s);
  ASSERT_TRUE(r.valid);
  EXPECT_TRUE(r.used_3d());
  EXPECT_LT(localization_error(r, s), 0.8);
}

TEST(PipelineE2E, SfoDiagnosticsExposed) {
  Rng rng(203);
  sim::ScenarioConfig c = base_config();
  c.speaker_clock_ppm_sigma = 40.0;
  const sim::Session s = sim::make_localization_session(c, rng);
  const LocalizationResult r = localize(s);
  ASSERT_TRUE(r.valid);
  EXPECT_GT(r.estimated_period, 0.19);
  EXPECT_LT(r.estimated_period, 0.21);
  EXPECT_NE(r.sfo_ppm, 0.0);
}

TEST(PipelineE2E, SfoCorrectionMattersWithBigOffset) {
  // Ablation (DESIGN.md #2): with a large clock offset, disabling SFO
  // correction visibly degrades the range estimate.
  sim::ScenarioConfig c = base_config();
  c.speaker_distance = 6.0;
  c.speaker_clock_ppm_sigma = 80.0;
  double err_on = 0.0, err_off = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng(204 + seed);
    const sim::Session s = sim::make_localization_session(c, rng);
    PipelineConfig on;
    PipelineConfig off;
    off.asp.sfo_correction = false;
    const LocalizationResult r_on = localize(s, on);
    const LocalizationResult r_off = localize(s, off);
    ASSERT_TRUE(r_on.valid && r_off.valid);
    err_on += localization_error(r_on, s);
    err_off += localization_error(r_off, s);
  }
  EXPECT_LT(err_on, err_off);
}

TEST(PipelineE2E, DriftCorrectionMatters) {
  // Ablation (DESIGN.md #3): Eq. 4 off -> displacement and range degrade.
  // On the ruler a constant accelerometer bias is already absorbed by the
  // static-head gravity estimate; the drift Eq. 4 exists to remove comes
  // from slowly wandering tilt in hand-held operation (gravity leaking
  // into the slide axis), so the ablation runs hand-held with pronounced
  // tilt wander.
  sim::ScenarioConfig c = base_config();
  c.speaker_distance = 5.0;
  c.jitter = sim::hand_jitter();
  // Strong but sub-threshold tilt wander (2.5 deg of leakage would push the
  // dwell power past the slide-segmentation threshold).
  c.jitter.tilt_amplitude = deg2rad(1.6);
  double err_on = 0.0, err_off = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng(208 + seed);
    const sim::Session s = sim::make_localization_session(c, rng);
    PipelineConfig on;
    PipelineConfig off;
    off.ttl.displacement.drift_correction = false;
    const LocalizationResult r_on = localize(s, on);
    const LocalizationResult r_off = localize(s, off);
    ASSERT_TRUE(r_on.valid);
    if (!r_off.valid) {
      err_off += 5.0;  // failure counts as a large error
      err_on += localization_error(r_on, s);
      continue;
    }
    err_on += localization_error(r_on, s);
    err_off += localization_error(r_off, s);
  }
  EXPECT_LT(err_on, err_off);
}

TEST(PipelineE2E, ErrorMetricRequiresValidity) {
  LocalizationResult r;
  sim::Session s;
  EXPECT_THROW((void)localization_error(r, s), PreconditionError);
}

TEST(PipelineE2E, DeterministicGivenSeed) {
  sim::ScenarioConfig c = base_config();
  Rng r1(211), r2(211);
  const sim::Session s1 = sim::make_localization_session(c, r1);
  const sim::Session s2 = sim::make_localization_session(c, r2);
  const LocalizationResult a = localize(s1);
  const LocalizationResult b = localize(s2);
  ASSERT_TRUE(a.valid && b.valid);
  EXPECT_DOUBLE_EQ(a.estimated_position.x, b.estimated_position.x);
  EXPECT_DOUBLE_EQ(a.estimated_position.y, b.estimated_position.y);
}

TEST(PipelineE2E, BothPhonesWork) {
  for (const sim::PhoneSpec& phone : {sim::galaxy_s4(), sim::galaxy_note3()}) {
    sim::ScenarioConfig c = base_config();
    c.phone = phone;
    Rng rng(212);
    const sim::Session s = sim::make_localization_session(c, rng);
    const LocalizationResult r = localize(s);
    ASSERT_TRUE(r.valid) << phone.name;
    EXPECT_LT(localization_error(r, s), 0.4) << phone.name;
  }
}

TEST(PipelineE2E, NoisyMallStillLocalizes) {
  Rng rng(213);
  sim::ScenarioConfig c = base_config();
  c.environment = sim::mall_busy_hour();
  const sim::Session s = sim::make_localization_session(c, rng);
  const LocalizationResult r = localize(s);
  ASSERT_TRUE(r.valid);
  EXPECT_LT(localization_error(r, s), 1.2);
}

}  // namespace
}  // namespace hyperear::core
