#include "imu/imu_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace hyperear::imu {
namespace {

std::vector<geom::Vec3> constant_series(const geom::Vec3& v, std::size_t n) {
  return std::vector<geom::Vec3>(n, v);
}

TEST(ImuModel, OutputSizesMatchInput) {
  ImuSpec spec;
  Rng rng(61);
  ImuModel model(spec, rng);
  const auto f = constant_series({0.0, 0.0, kGravity}, 500);
  const auto w = constant_series({0.0, 0.0, 0.0}, 500);
  const ImuData data = model.corrupt(f, w);
  EXPECT_EQ(data.size(), 500u);
  EXPECT_EQ(data.gyro_z.size(), 500u);
  EXPECT_DOUBLE_EQ(data.sample_rate, spec.sample_rate);
}

TEST(ImuModel, MismatchedSeriesThrow) {
  ImuSpec spec;
  Rng rng(62);
  ImuModel model(spec, rng);
  EXPECT_THROW(
      (void)model.corrupt(constant_series({}, 10), constant_series({}, 11)),
      PreconditionError);
}

TEST(ImuModel, NoiseStatisticsMatchSpec) {
  ImuSpec spec;
  spec.accel_noise_rms = 0.05;
  spec.accel_bias_sigma = 0.0;  // isolate white noise
  spec.accel_quantization = 0.0;
  Rng rng(63);
  ImuModel model(spec, rng);
  const ImuData data =
      model.corrupt(constant_series({0, 0, 0}, 20000), constant_series({0, 0, 0}, 20000));
  EXPECT_NEAR(stddev(data.accel_x), 0.05, 0.005);
  EXPECT_NEAR(mean(data.accel_x), 0.0, 0.005);
}

TEST(ImuModel, BiasIsConstantPerSession) {
  ImuSpec spec;
  spec.accel_noise_rms = 0.0;
  spec.accel_quantization = 0.0;
  spec.accel_bias_sigma = 0.1;
  Rng rng(64);
  ImuModel model(spec, rng);
  const ImuData data =
      model.corrupt(constant_series({0, 0, 0}, 100), constant_series({0, 0, 0}, 100));
  // All samples equal the drawn bias.
  for (std::size_t i = 1; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(data.accel_x[i], data.accel_x[0]);
  }
  EXPECT_DOUBLE_EQ(data.accel_x[0], model.accel_bias().x);
  EXPECT_NE(data.accel_x[0], 0.0);
}

TEST(ImuModel, QuantizationGrid) {
  ImuSpec spec;
  spec.accel_noise_rms = 0.01;
  spec.accel_bias_sigma = 0.0;
  spec.accel_quantization = 0.005;
  Rng rng(65);
  ImuModel model(spec, rng);
  const ImuData data =
      model.corrupt(constant_series({0, 0, 0}, 200), constant_series({0, 0, 0}, 200));
  for (double v : data.accel_y) {
    const double steps = v / 0.005;
    EXPECT_NEAR(steps, std::round(steps), 1e-9);
  }
}

TEST(ImuModel, DifferentSessionsDrawDifferentBiases) {
  ImuSpec spec;
  Rng rng(66);
  ImuModel a(spec, rng);
  ImuModel b(spec, rng);
  EXPECT_NE(a.accel_bias().x, b.accel_bias().x);
  EXPECT_NE(a.gyro_bias().z, b.gyro_bias().z);
}

TEST(ImuData, TimeOfUsesSampleRate) {
  ImuData d;
  d.sample_rate = 100.0;
  EXPECT_DOUBLE_EQ(d.time_of(250), 2.5);
}

TEST(ImuModel, SignalPassesThrough) {
  ImuSpec spec;
  spec.accel_noise_rms = 1e-6;
  spec.accel_bias_sigma = 0.0;
  spec.accel_quantization = 0.0;
  Rng rng(67);
  ImuModel model(spec, rng);
  std::vector<geom::Vec3> f(300);
  for (std::size_t i = 0; i < f.size(); ++i) {
    f[i] = {std::sin(0.05 * static_cast<double>(i)), 0.0, kGravity};
  }
  const ImuData data = model.corrupt(f, constant_series({0, 0, 0}, 300));
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(data.accel_x[i], f[i].x, 1e-4);
    EXPECT_NEAR(data.accel_z[i], kGravity, 1e-4);
  }
}

}  // namespace
}  // namespace hyperear::imu
