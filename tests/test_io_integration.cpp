/// Integration: a session's audio survives a WAV export/import round trip
/// and still localizes — the path a real deployment would use to feed
/// phone recordings into the pipeline offline.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/pipeline.hpp"
#include "io/wav.hpp"
#include "sim/scenario.hpp"

namespace hyperear {
namespace {

TEST(IoIntegration, SessionRoundTripsThroughWav) {
  sim::ScenarioConfig c;
  c.speaker_distance = 3.0;
  c.slides_per_stature = 2;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  Rng rng(951);
  sim::Session session = sim::make_localization_session(c, rng);

  const core::LocalizationResult direct = core::localize(session);
  ASSERT_TRUE(direct.valid);

  const std::string path = "/tmp/hyperear_session_roundtrip.wav";
  io::write_wav(path, {session.audio.mic1, session.audio.mic2},
                session.audio.sample_rate);
  const io::WavData back = io::read_wav(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.channels.size(), 2u);
  ASSERT_EQ(back.frames(), session.audio.mic1.size());

  sim::Session replay = session;
  replay.audio.mic1 = back.channels[0];
  replay.audio.mic2 = back.channels[1];
  replay.audio.sample_rate = back.sample_rate;
  const core::LocalizationResult reloaded = core::localize(replay);
  ASSERT_TRUE(reloaded.valid);
  // 16-bit re-quantization changes the fix by millimeters at most.
  EXPECT_NEAR(reloaded.estimated_position.x, direct.estimated_position.x, 0.02);
  EXPECT_NEAR(reloaded.estimated_position.y, direct.estimated_position.y, 0.02);
}

TEST(IoIntegration, ExportedSessionHasSaneLevels) {
  sim::ScenarioConfig c;
  c.speaker_distance = 2.0;
  c.slides_per_stature = 1;
  c.calibration_duration = 2.0;
  c.jitter = sim::ruler_jitter();
  Rng rng(952);
  const sim::Session session = sim::make_localization_session(c, rng);
  const std::string path = "/tmp/hyperear_session_levels.wav";
  io::write_wav(path, {session.audio.mic1, session.audio.mic2},
                session.audio.sample_rate);
  const io::WavData back = io::read_wav(path);
  std::remove(path.c_str());
  // No clipping at 2 m with the default 0.5 source amplitude.
  double peak = 0.0;
  for (double v : back.channels[0]) peak = std::max(peak, std::abs(v));
  EXPECT_LT(peak, 0.999);
  EXPECT_GT(peak, 0.05);
}

}  // namespace
}  // namespace hyperear
