#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace hyperear::sim {
namespace {

ScenarioConfig fast_config() {
  ScenarioConfig c;
  c.speaker_distance = 3.0;
  c.slides_per_stature = 2;
  c.calibration_duration = 2.0;
  c.hold_duration = 0.6;
  c.jitter = ruler_jitter();
  return c;
}

TEST(Scenario, SessionShapesConsistent) {
  Rng rng(131);
  const Session s = make_localization_session(fast_config(), rng);
  EXPECT_EQ(s.audio.mic1.size(), s.audio.mic2.size());
  EXPECT_GT(s.audio.mic1.size(), 44100u);  // several seconds of audio
  // IMU and audio cover the same wall-clock span (within a sample).
  const double audio_dur = static_cast<double>(s.audio.mic1.size()) / s.audio.sample_rate;
  const double imu_dur = static_cast<double>(s.imu.size()) / s.imu.sample_rate;
  EXPECT_NEAR(audio_dur, imu_dur, 0.05);
}

TEST(Scenario, GroundTruthGeometry) {
  Rng rng(132);
  ScenarioConfig c = fast_config();
  c.speaker_distance = 3.0;
  const Session s = make_localization_session(c, rng);
  const double range =
      distance(s.truth.speaker_position.xy(), s.truth.phone_start_position.xy());
  EXPECT_NEAR(range, 3.0, 1e-9);
  EXPECT_EQ(s.truth.slides.size(), 2u);
  EXPECT_DOUBLE_EQ(s.truth.speaker_position.z, c.speaker_height);
}

TEST(Scenario, PriorContainsNoTruthLeak) {
  Rng rng(133);
  const Session s = make_localization_session(fast_config(), rng);
  // The prior's start position is legitimate knowledge (the user's own
  // location); believed yaw equals the true slide yaw because the user
  // physically ended SDF there.
  EXPECT_DOUBLE_EQ(s.prior.phone_start_position.x, s.truth.phone_start_position.x);
  EXPECT_DOUBLE_EQ(s.prior.believed_yaw, s.truth.in_direction_yaw);
  EXPECT_DOUBLE_EQ(s.prior.nominal_period, 0.2);
}

TEST(Scenario, ClockOffsetsDrawnPerSession) {
  Rng rng(134);
  const Session a = make_localization_session(fast_config(), rng);
  const Session b = make_localization_session(fast_config(), rng);
  EXPECT_NE(a.truth.speaker_true_period, b.truth.speaker_true_period);
  EXPECT_NE(a.config.phone.adc.clock_offset_ppm, b.config.phone.adc.clock_offset_ppm);
}

TEST(Scenario, PlacementRandomizedButRangePreserved) {
  Rng rng(135);
  ScenarioConfig c = fast_config();
  const Session a = make_localization_session(c, rng);
  const Session b = make_localization_session(c, rng);
  EXPECT_NE(a.truth.phone_start_position.x, b.truth.phone_start_position.x);
  const double ra = distance(a.truth.speaker_position.xy(), a.truth.phone_start_position.xy());
  const double rb = distance(b.truth.speaker_position.xy(), b.truth.phone_start_position.xy());
  EXPECT_NEAR(ra, rb, 1e-9);
}

TEST(Scenario, FixedPlacementWhenRequested) {
  ScenarioConfig c = fast_config();
  c.randomize_placement = false;
  Rng r1(136), r2(137);
  const Session a = make_localization_session(c, r1);
  const Session b = make_localization_session(c, r2);
  EXPECT_DOUBLE_EQ(a.truth.phone_start_position.x, b.truth.phone_start_position.x);
  EXPECT_DOUBLE_EQ(a.truth.phone_start_position.y, b.truth.phone_start_position.y);
}

TEST(Scenario, TwoStatureTimelineAnnotated) {
  Rng rng(138);
  ScenarioConfig c = fast_config();
  c.two_statures = true;
  const Session s = make_localization_session(c, rng);
  EXPECT_GT(s.truth.stature_change_start, 0.0);
  EXPECT_GT(s.truth.stature_change_end, s.truth.stature_change_start);
  EXPECT_EQ(s.truth.slides.size(), 4u);  // 2 per stature
  EXPECT_TRUE(s.prior.two_statures);
  // Slides after the stature change happen at the raised height.
  EXPECT_NEAR(s.truth.slides.back().from.z, c.phone_height + c.stature_change, 1e-9);
}

TEST(Scenario, DeterministicGivenSeed) {
  Rng r1(139), r2(139);
  const Session a = make_localization_session(fast_config(), r1);
  const Session b = make_localization_session(fast_config(), r2);
  EXPECT_EQ(a.audio.mic1, b.audio.mic1);
  EXPECT_EQ(a.imu.accel_y, b.imu.accel_y);
}

TEST(Scenario, RotationSweepSession) {
  Rng rng(140);
  ScenarioConfig c = fast_config();
  const Session s = make_rotation_sweep_session(c, 0.0, 3.14, 4.0, rng);
  EXPECT_TRUE(s.truth.slides.empty());
  EXPECT_GT(s.audio.mic1.size(), static_cast<std::size_t>(5.5 * 44100));
}

TEST(Scenario, ImpossibleGeometryThrows) {
  Rng rng(141);
  ScenarioConfig c = fast_config();
  c.speaker_distance = 100.0;  // larger than the meeting room
  EXPECT_THROW((void)make_localization_session(c, rng), PreconditionError);
  c = fast_config();
  c.slides_per_stature = 0;
  EXPECT_THROW((void)make_localization_session(c, rng), PreconditionError);
}

}  // namespace
}  // namespace hyperear::sim
