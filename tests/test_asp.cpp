#include "core/asp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "sim/scenario.hpp"

namespace hyperear::core {
namespace {

sim::ScenarioConfig fast_config() {
  sim::ScenarioConfig c;
  c.speaker_distance = 3.0;
  c.slides_per_stature = 1;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  return c;
}

TEST(Asp, DetectsAllChirpsInSession) {
  Rng rng(151);
  const sim::Session s = sim::make_localization_session(fast_config(), rng);
  const AspResult asp = preprocess_audio(s.audio, s.prior.chirp, 0.2,
                                         s.prior.calibration_duration);
  const double duration = static_cast<double>(s.audio.mic1.size()) / s.audio.sample_rate;
  const auto expected = static_cast<std::size_t>(duration / 0.2);
  EXPECT_NEAR(static_cast<double>(asp.mic1.size()), static_cast<double>(expected), 2.0);
  EXPECT_NEAR(static_cast<double>(asp.mic2.size()), static_cast<double>(expected), 2.0);
}

TEST(Asp, SfoEstimateMatchesTrueRelativeOffset) {
  Rng rng(152);
  sim::ScenarioConfig c = fast_config();
  c.speaker_clock_ppm_sigma = 40.0;
  c.phone_clock_ppm_sigma = 30.0;
  const sim::Session s = sim::make_localization_session(c, rng);
  const AspResult asp = preprocess_audio(s.audio, s.prior.chirp, 0.2,
                                         s.prior.calibration_duration);
  ASSERT_TRUE(asp.sfo_estimated);
  // The observable offset is the speaker period scaled by the phone clock:
  // T_obs = T_spk_true * (1 + ppm_phone).
  const double t_obs = s.truth.speaker_true_period *
                       (1.0 + s.config.phone.adc.clock_offset_ppm * 1e-6);
  const double true_rel_ppm = (t_obs / 0.2 - 1.0) * 1e6;
  EXPECT_NEAR(asp.sfo_ppm, true_rel_ppm, 3.0);
}

TEST(Asp, DisablingSfoKeepsNominalPeriod) {
  Rng rng(153);
  const sim::Session s = sim::make_localization_session(fast_config(), rng);
  AspOptions opts;
  opts.sfo_correction = false;
  const AspResult asp =
      preprocess_audio(s.audio, s.prior.chirp, 0.2, s.prior.calibration_duration, opts);
  EXPECT_FALSE(asp.sfo_estimated);
  EXPECT_DOUBLE_EQ(asp.estimated_period, 0.2);
  EXPECT_DOUBLE_EQ(asp.sfo_ppm, 0.0);
}

TEST(Asp, BandpassRemovesVoiceNoiseEffect) {
  // In a chatting room the detector still finds every chirp because the
  // noise is out of band.
  Rng rng(154);
  sim::ScenarioConfig c = fast_config();
  c.environment = sim::meeting_room_chatting();
  const sim::Session s = sim::make_localization_session(c, rng);
  const AspResult with_bp = preprocess_audio(s.audio, s.prior.chirp, 0.2,
                                             s.prior.calibration_duration);
  const double duration = static_cast<double>(s.audio.mic1.size()) / s.audio.sample_rate;
  const auto expected = static_cast<std::size_t>(duration / 0.2);
  EXPECT_NEAR(static_cast<double>(with_bp.mic1.size()), static_cast<double>(expected), 2.0);
}

TEST(EstimatePeriod, ExactOnCleanArrivals) {
  std::vector<ChirpEvent> events;
  const double t = 0.2000042;  // 21 ppm
  for (int i = 0; i < 15; ++i) events.push_back({0.37 + i * t, 0.9});
  const double est = estimate_period(events, 0.2, 10.0, 5);
  EXPECT_NEAR(est, t, 1e-9);
}

TEST(EstimatePeriod, TolerantOfMissedDetections) {
  std::vector<ChirpEvent> events;
  const double t = 0.1999958;
  for (int i = 0; i < 20; ++i) {
    if (i == 7 || i == 13) continue;  // two missed chirps
    events.push_back({0.1 + i * t, 0.9});
  }
  const double est = estimate_period(events, 0.2, 10.0, 5);
  EXPECT_NEAR(est, t, 1e-8);
}

TEST(EstimatePeriod, RobustToOneOutlier) {
  std::vector<ChirpEvent> events;
  const double t = 0.2;
  for (int i = 0; i < 16; ++i) events.push_back({0.1 + i * t, 0.9});
  events[5].time_s += 0.004;  // gross timing outlier (echo lock)
  const double est = estimate_period(events, 0.2, 10.0, 5);
  EXPECT_NEAR(est, t, 2e-7);
}

TEST(EstimatePeriod, TooFewEventsThrow) {
  std::vector<ChirpEvent> events{{0.1, 0.9}, {0.3, 0.9}};
  EXPECT_THROW((void)estimate_period(events, 0.2, 10.0, 5), DetectionError);
}

TEST(EstimatePeriod, WindowRestrictsEvents) {
  std::vector<ChirpEvent> events;
  for (int i = 0; i < 30; ++i) events.push_back({0.1 + i * 0.2, 0.9});
  // Corrupt everything after 3 s; a 3 s window must ignore it.
  for (auto& e : events) {
    if (e.time_s > 3.0) e.time_s += 0.05;
  }
  const double est = estimate_period(events, 0.2, 3.0, 5);
  EXPECT_NEAR(est, 0.2, 1e-9);
}

TEST(Asp, BadRecordingThrows) {
  sim::StereoRecording rec;
  rec.mic1 = {1.0, 2.0};
  rec.mic2 = {1.0};
  EXPECT_THROW((void)preprocess_audio(rec, dsp::ChirpParams{}, 0.2, 2.0), PreconditionError);
}

}  // namespace
}  // namespace hyperear::core
