#include "core/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "sim/scenario.hpp"

namespace hyperear::core {
namespace {

CalibrationResult calibrate_phone(const sim::PhoneSpec& phone, std::uint64_t seed) {
  sim::ScenarioConfig c;
  c.phone = phone;
  c.speaker_distance = 4.0;
  c.jitter = sim::ruler_jitter();
  Rng rng(seed);
  // Full rotation so the TDoA reaches both endfire extremes.
  const sim::Session s =
      sim::make_rotation_sweep_session(c, 0.0, -2.0 * kPi, 20.0, rng);
  const AspResult asp = preprocess_audio(s.audio, s.prior.chirp, 0.2, 1.0);
  return calibrate_mic_separation(asp);
}

TEST(Calibration, RecoversS4Separation) {
  const CalibrationResult r = calibrate_phone(sim::galaxy_s4(), 801);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.mic_separation, 0.1366, 0.005);
}

TEST(Calibration, RecoversNote3Separation) {
  const CalibrationResult r = calibrate_phone(sim::galaxy_note3(), 802);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.mic_separation, 0.1512, 0.005);
}

TEST(Calibration, DistinguishesTheTwoPhones) {
  const CalibrationResult s4 = calibrate_phone(sim::galaxy_s4(), 803);
  const CalibrationResult n3 = calibrate_phone(sim::galaxy_note3(), 803);
  ASSERT_TRUE(s4.valid && n3.valid);
  EXPECT_GT(n3.mic_separation, s4.mic_separation + 0.005);
}

TEST(Calibration, TooFewSamplesInvalid) {
  AspResult asp;  // empty
  const CalibrationResult r = calibrate_mic_separation(asp);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.samples, 0u);
}

TEST(Calibration, SyntheticSweepExact) {
  // Synthetic TDoA trace sweeping the full cosine.
  AspResult asp;
  const double d = 0.14;
  for (int i = 0; i < 100; ++i) {
    const double alpha = 2.0 * kPi * i / 100.0;
    const double tdoa = -d * std::cos(alpha) / 343.0;
    asp.mic1.push_back({0.2 * i, 0.9, 1.0});
    asp.mic2.push_back({0.2 * i - tdoa, 0.9, 1.0});
  }
  const CalibrationResult r = calibrate_mic_separation(asp);
  ASSERT_TRUE(r.valid);
  // The 2/98 percentile trim shaves a hair off the extremes.
  EXPECT_NEAR(r.mic_separation, d, 0.005);
}

TEST(Calibration, PartialSweepUnderestimates) {
  // A sweep that misses the endfire directions cannot see the full swing;
  // the estimate is biased low (and flagged invalid when absurd).
  AspResult asp;
  const double d = 0.14;
  for (int i = 0; i < 100; ++i) {
    const double alpha = deg2rad(60.0) + deg2rad(60.0) * i / 100.0;  // 60-120 deg
    const double tdoa = -d * std::cos(alpha) / 343.0;
    asp.mic1.push_back({0.2 * i, 0.9, 1.0});
    asp.mic2.push_back({0.2 * i - tdoa, 0.9, 1.0});
  }
  const CalibrationResult r = calibrate_mic_separation(asp);
  EXPECT_LT(r.mic_separation, 0.5 * d);
}

}  // namespace
}  // namespace hyperear::core
