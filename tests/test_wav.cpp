#include "io/wav.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hyperear::io {
namespace {

std::string temp_path(const std::string& name) {
  return std::string("/tmp/hyperear_test_") + name + ".wav";
}

TEST(Wav, RoundTripStereo) {
  Rng rng(301);
  std::vector<std::vector<double>> channels(2, std::vector<double>(1000));
  for (auto& ch : channels) {
    for (auto& v : ch) v = rng.uniform(-0.9, 0.9);
  }
  const std::string path = temp_path("roundtrip");
  write_wav(path, channels, 44100.0);
  const WavData back = read_wav(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.channels.size(), 2u);
  ASSERT_EQ(back.frames(), 1000u);
  EXPECT_DOUBLE_EQ(back.sample_rate, 44100.0);
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t n = 0; n < 1000; ++n) {
      EXPECT_NEAR(back.channels[c][n], channels[c][n], 1.0 / 32767.0) << c << "," << n;
    }
  }
}

TEST(Wav, MonoRoundTrip) {
  std::vector<std::vector<double>> channels(1, std::vector<double>(64, 0.5));
  const std::string path = temp_path("mono");
  write_wav(path, channels, 8000.0);
  const WavData back = read_wav(path);
  std::remove(path.c_str());
  EXPECT_EQ(back.channels.size(), 1u);
  EXPECT_DOUBLE_EQ(back.sample_rate, 8000.0);
  EXPECT_NEAR(back.channels[0][10], 0.5, 1e-4);
}

TEST(Wav, ClipsOutOfRangeSamples) {
  std::vector<std::vector<double>> channels(1, std::vector<double>{2.0, -3.0, 0.0});
  const std::string path = temp_path("clip");
  write_wav(path, channels, 44100.0);
  const WavData back = read_wav(path);
  std::remove(path.c_str());
  EXPECT_NEAR(back.channels[0][0], 1.0, 1e-4);
  EXPECT_NEAR(back.channels[0][1], -1.0, 1e-4);
}

TEST(Wav, SineSurvivesQuantization) {
  std::vector<std::vector<double>> channels(1, std::vector<double>(4410));
  for (std::size_t i = 0; i < channels[0].size(); ++i) {
    channels[0][i] = 0.8 * std::sin(0.071 * static_cast<double>(i));
  }
  const std::string path = temp_path("sine");
  write_wav(path, channels, 44100.0);
  const WavData back = read_wav(path);
  std::remove(path.c_str());
  double max_err = 0.0;
  for (std::size_t i = 0; i < channels[0].size(); ++i) {
    max_err = std::max(max_err, std::abs(back.channels[0][i] - channels[0][i]));
  }
  EXPECT_LT(max_err, 1.0 / 32000.0);
}

TEST(Wav, WriterValidation) {
  EXPECT_THROW(write_wav("/tmp/x.wav", {}, 44100.0), PreconditionError);
  EXPECT_THROW(write_wav("/tmp/x.wav", {{}}, 44100.0), PreconditionError);
  EXPECT_THROW(write_wav("/tmp/x.wav", {{1.0}, {1.0, 2.0}}, 44100.0), PreconditionError);
  EXPECT_THROW(write_wav("/tmp/x.wav", {{1.0}}, 0.0), PreconditionError);
  EXPECT_THROW(write_wav("/nonexistent_dir/x.wav", {{1.0}}, 44100.0), Error);
}

TEST(Wav, ReaderRejectsGarbage) {
  const std::string path = temp_path("garbage");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is definitely not a wav file, padded to 44 bytes....", f);
    std::fclose(f);
  }
  EXPECT_THROW((void)read_wav(path), Error);
  std::remove(path.c_str());
  EXPECT_THROW((void)read_wav("/tmp/definitely_missing_hyperear.wav"), Error);
}

}  // namespace
}  // namespace hyperear::io
