#include "sim/trajectory.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hyperear::sim {
namespace {

TEST(MinJerk, BoundaryConditions) {
  EXPECT_DOUBLE_EQ(min_jerk(0.0), 0.0);
  EXPECT_DOUBLE_EQ(min_jerk(1.0), 1.0);
  EXPECT_DOUBLE_EQ(min_jerk_vel(0.0), 0.0);
  EXPECT_DOUBLE_EQ(min_jerk_vel(1.0), 0.0);
  EXPECT_DOUBLE_EQ(min_jerk_acc(0.0), 0.0);
  EXPECT_DOUBLE_EQ(min_jerk_acc(1.0), 0.0);
  EXPECT_DOUBLE_EQ(min_jerk(0.5), 0.5);  // odd symmetry about the midpoint
}

TEST(MinJerk, DerivativesConsistent) {
  const double h = 1e-6;
  for (double tau = 0.1; tau < 0.95; tau += 0.17) {
    const double num_vel = (min_jerk(tau + h) - min_jerk(tau - h)) / (2.0 * h);
    EXPECT_NEAR(num_vel, min_jerk_vel(tau), 1e-6);
    const double num_acc = (min_jerk_vel(tau + h) - min_jerk_vel(tau - h)) / (2.0 * h);
    EXPECT_NEAR(num_acc, min_jerk_acc(tau), 1e-5);
  }
}

Trajectory ruler_slide(double distance, double duration) {
  TrajectoryBuilder b({5.0, 5.0, 1.3}, 0.0);
  b.hold(1.0).slide_mic_axis(distance, duration).hold(1.0);
  Rng rng(111);
  return b.build(ruler_jitter(), rng);
}

TEST(Trajectory, SlideEndpointsAndDuration) {
  const Trajectory t = ruler_slide(-0.5, 1.0);
  EXPECT_DOUBLE_EQ(t.duration(), 3.0);
  // Yaw 0: body -y axis is world (0, -1, 0); distance -0.5 slides +y.
  const geom::Vec3 start = t.pose(0.0).position;
  const geom::Vec3 end = t.pose(3.0).position;
  EXPECT_NEAR(start.y, 5.0, 1e-12);
  EXPECT_NEAR(end.y, 5.5, 1e-12);
  EXPECT_NEAR(end.x, 5.0, 1e-12);
}

TEST(Trajectory, VelocityZeroAtHolds) {
  const Trajectory t = ruler_slide(0.5, 1.0);
  EXPECT_NEAR(t.velocity(0.5).norm(), 0.0, 1e-12);
  EXPECT_NEAR(t.velocity(2.5).norm(), 0.0, 1e-12);
  EXPECT_GT(t.velocity(1.5).norm(), 0.5);  // mid-slide peak ~1.88 d/T
}

TEST(Trajectory, AccelerationConsistentWithVelocity) {
  const Trajectory t = ruler_slide(0.5, 1.0);
  const double h = 1e-5;
  for (double time : {1.2, 1.5, 1.8}) {
    const geom::Vec3 num =
        (t.velocity(time + h) - t.velocity(time - h)) / (2.0 * h);
    const geom::Vec3 ana = t.acceleration(time);
    EXPECT_NEAR(num.x, ana.x, 1e-4);
    EXPECT_NEAR(num.y, ana.y, 1e-4);
    EXPECT_NEAR(num.z, ana.z, 1e-4);
  }
}

TEST(Trajectory, SpecificForceAtRestIsGravity) {
  const Trajectory t = ruler_slide(0.5, 1.0);
  const geom::Vec3 f = t.specific_force_body(0.5);
  EXPECT_NEAR(f.x, 0.0, 1e-9);
  EXPECT_NEAR(f.y, 0.0, 1e-9);
  EXPECT_NEAR(f.z, kGravity, 1e-9);
}

TEST(Trajectory, SpecificForceDuringSlide) {
  const Trajectory t = ruler_slide(-0.5, 1.0);
  // Mid-slide: horizontal acceleration appears on body y (phone level).
  const geom::Vec3 a = t.acceleration(1.25);
  const geom::Vec3 f = t.specific_force_body(1.25);
  EXPECT_NEAR(f.y, a.y, 1e-9);  // yaw = 0, body y == world y
  EXPECT_NEAR(f.z, kGravity, 1e-9);
}

TEST(Trajectory, RotationSweepTracksYaw) {
  TrajectoryBuilder b({5.0, 5.0, 1.3}, 0.0);
  b.hold(0.5).rotate_to(kPi, 2.0).hold(0.5);
  Rng rng(112);
  const Trajectory t = b.build(ruler_jitter(), rng);
  EXPECT_NEAR(t.pose(0.2).orientation.yaw(), 0.0, 1e-9);
  EXPECT_NEAR(t.pose(3.0).orientation.yaw(), kPi, 1e-9);
  // Angular rate integrates to the total rotation.
  double integral = 0.0;
  const double dt = 1e-3;
  for (double time = 0.0; time < 3.0; time += dt) {
    integral += t.angular_rate_body(time).z * dt;
  }
  EXPECT_NEAR(integral, kPi, 1e-3);
}

TEST(Trajectory, StatureChangeMovesVertically) {
  TrajectoryBuilder b({5.0, 5.0, 1.3}, 0.3);
  b.hold(0.5).change_stature(0.45, 1.0).hold(0.5);
  Rng rng(113);
  const Trajectory t = b.build(ruler_jitter(), rng);
  EXPECT_NEAR(t.pose(2.0).position.z, 1.75, 1e-12);
  EXPECT_NEAR(t.pose(2.0).position.x, 5.0, 1e-12);
}

TEST(Trajectory, SlidesAnnotated) {
  TrajectoryBuilder b({0.0, 0.0, 1.0}, 0.0);
  b.hold(1.0);
  b.slide_mic_axis(0.5, 1.0).hold(0.5).slide_mic_axis(-0.5, 1.0).hold(0.5);
  Rng rng(114);
  const Trajectory t = b.build(ruler_jitter(), rng);
  ASSERT_EQ(t.slides().size(), 2u);
  EXPECT_DOUBLE_EQ(t.slides()[0].t0, 1.0);
  EXPECT_DOUBLE_EQ(t.slides()[0].t1, 2.0);
  EXPECT_NEAR(distance(t.slides()[0].from, t.slides()[0].to), 0.5, 1e-12);
}

TEST(Trajectory, HandJitterBoundedAcceleration) {
  TrajectoryBuilder b({5.0, 5.0, 1.3}, 0.0);
  b.hold(5.0);
  Rng rng(115);
  const Trajectory t = b.build(hand_jitter(), rng);
  double max_acc = 0.0;
  double max_disp = 0.0;
  for (double time = 0.1; time < 4.9; time += 0.003) {
    max_acc = std::max(max_acc, t.acceleration(time).norm());
    max_disp = std::max(max_disp, (t.pose(time).position - geom::Vec3{5.0, 5.0, 1.3}).norm());
  }
  // Tremor: decimeters of acceleration, millimeters of displacement.
  EXPECT_GT(max_acc, 0.05);
  EXPECT_LT(max_acc, 1.5);
  EXPECT_GT(max_disp, 1e-4);
  EXPECT_LT(max_disp, 0.02);
}

TEST(Trajectory, RulerHasNoJitterOrTilt) {
  TrajectoryBuilder b({5.0, 5.0, 1.3}, 0.0);
  b.hold(2.0);
  Rng rng(116);
  const Trajectory t = b.build(ruler_jitter(), rng);
  EXPECT_DOUBLE_EQ(t.base_pitch(), 0.0);
  EXPECT_DOUBLE_EQ(t.base_roll(), 0.0);
  for (double time = 0.0; time < 2.0; time += 0.1) {
    EXPECT_NEAR((t.pose(time).position - geom::Vec3{5.0, 5.0, 1.3}).norm(), 0.0, 1e-12);
  }
}

TEST(Trajectory, PointPositionRigidBody) {
  const Trajectory t = ruler_slide(0.5, 1.0);
  const geom::Vec3 mic1{0.0, 0.0683, 0.0};
  const geom::Vec3 mic2{0.0, -0.0683, 0.0};
  for (double time = 0.0; time < 3.0; time += 0.25) {
    EXPECT_NEAR(distance(t.point_position(mic1, time), t.point_position(mic2, time)),
                0.1366, 1e-12);
  }
}

TEST(TrajectoryBuilder, Preconditions) {
  TrajectoryBuilder b({0, 0, 0}, 0.0);
  EXPECT_THROW(b.hold(0.0), PreconditionError);
  EXPECT_THROW(b.slide_mic_axis(0.0, 1.0), PreconditionError);
  Rng rng(117);
  EXPECT_THROW((void)TrajectoryBuilder({0, 0, 0}, 0.0).build(ruler_jitter(), rng),
               PreconditionError);
}

}  // namespace
}  // namespace hyperear::sim
