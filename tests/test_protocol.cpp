#include "core/protocol.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace hyperear::core {
namespace {

TEST(Protocol, TwoDHappyPath) {
  ProtocolStateMachine sm(3, /*three_d=*/false);
  EXPECT_EQ(sm.phase(), ProtocolPhase::kFindDirection);
  EXPECT_TRUE(sm.on_event(ProtocolEvent::kDirectionFound));
  EXPECT_EQ(sm.phase(), ProtocolPhase::kCalibrate);
  EXPECT_TRUE(sm.on_event(ProtocolEvent::kCalibrationElapsed));
  EXPECT_EQ(sm.phase(), ProtocolPhase::kSlideLow);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(sm.done());
    EXPECT_TRUE(sm.on_event(ProtocolEvent::kSlideAccepted));
  }
  EXPECT_TRUE(sm.done());
  EXPECT_EQ(sm.total_slides(), 3);
}

TEST(Protocol, ThreeDIncludesRaiseAndSecondStature) {
  ProtocolStateMachine sm(2, /*three_d=*/true);
  (void)sm.on_event(ProtocolEvent::kDirectionFound);
  (void)sm.on_event(ProtocolEvent::kCalibrationElapsed);
  (void)sm.on_event(ProtocolEvent::kSlideAccepted);
  (void)sm.on_event(ProtocolEvent::kSlideAccepted);
  EXPECT_EQ(sm.phase(), ProtocolPhase::kRaise);
  EXPECT_TRUE(sm.on_event(ProtocolEvent::kStatureChanged));
  EXPECT_EQ(sm.phase(), ProtocolPhase::kSlideHigh);
  EXPECT_EQ(sm.slides_completed(), 0);  // per-stature counter resets
  (void)sm.on_event(ProtocolEvent::kSlideAccepted);
  (void)sm.on_event(ProtocolEvent::kSlideAccepted);
  EXPECT_TRUE(sm.done());
  EXPECT_EQ(sm.total_slides(), 4);
}

TEST(Protocol, RejectedSlidesDoNotAdvance) {
  ProtocolStateMachine sm(2, false);
  (void)sm.on_event(ProtocolEvent::kDirectionFound);
  (void)sm.on_event(ProtocolEvent::kCalibrationElapsed);
  EXPECT_TRUE(sm.on_event(ProtocolEvent::kSlideRejected));
  EXPECT_TRUE(sm.on_event(ProtocolEvent::kSlideRejected));
  EXPECT_EQ(sm.slides_completed(), 0);
  EXPECT_EQ(sm.slides_rejected(), 2);
  EXPECT_EQ(sm.phase(), ProtocolPhase::kSlideLow);
}

TEST(Protocol, OutOfPhaseEventsIgnored) {
  ProtocolStateMachine sm(2, true);
  // Sensor noise: slide events while still finding the direction.
  EXPECT_FALSE(sm.on_event(ProtocolEvent::kSlideAccepted));
  EXPECT_FALSE(sm.on_event(ProtocolEvent::kStatureChanged));
  EXPECT_EQ(sm.phase(), ProtocolPhase::kFindDirection);
  (void)sm.on_event(ProtocolEvent::kDirectionFound);
  EXPECT_FALSE(sm.on_event(ProtocolEvent::kDirectionFound));  // duplicate
  EXPECT_EQ(sm.phase(), ProtocolPhase::kCalibrate);
}

TEST(Protocol, DoneAbsorbsEverything) {
  ProtocolStateMachine sm(1, false);
  (void)sm.on_event(ProtocolEvent::kDirectionFound);
  (void)sm.on_event(ProtocolEvent::kCalibrationElapsed);
  (void)sm.on_event(ProtocolEvent::kSlideAccepted);
  ASSERT_TRUE(sm.done());
  EXPECT_FALSE(sm.on_event(ProtocolEvent::kSlideAccepted));
  EXPECT_EQ(sm.total_slides(), 1);
}

TEST(Protocol, InstructionsNonEmptyInEveryPhase) {
  ProtocolStateMachine sm(2, true);
  EXPECT_FALSE(sm.instruction().empty());
  (void)sm.on_event(ProtocolEvent::kDirectionFound);
  EXPECT_FALSE(sm.instruction().empty());
  (void)sm.on_event(ProtocolEvent::kCalibrationElapsed);
  EXPECT_NE(sm.instruction().find("2 more"), std::string::npos);
  (void)sm.on_event(ProtocolEvent::kSlideAccepted);
  EXPECT_NE(sm.instruction().find("1 more"), std::string::npos);
}

TEST(Protocol, PreconditionsEnforced) {
  EXPECT_THROW(ProtocolStateMachine(0, false), PreconditionError);
}

}  // namespace
}  // namespace hyperear::core
