#include "sim/acoustic_renderer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "dsp/chirp.hpp"
#include "dsp/correlation.hpp"
#include "dsp/spectrum.hpp"

namespace hyperear::sim {
namespace {

Environment anechoic() {
  Environment env = meeting_room_quiet();
  env.room.max_order = 0;  // direct path only
  return env;
}

Trajectory static_phone(const geom::Vec3& pos, double duration, Rng& rng) {
  TrajectoryBuilder b(pos, 0.0);
  b.hold(duration);
  return b.build(ruler_jitter(), rng);
}

TEST(Renderer, ArrivalDelayMatchesGeometry) {
  Rng rng(121);
  const PhoneSpec phone = galaxy_s4();
  SpeakerSpec spec;
  spec.start_offset_s = 0.1;
  // Speaker 3.43 m along +x from the phone: delay exactly 10 ms.
  const geom::Vec3 phone_pos{5.0, 6.5, 1.3};
  const Speaker speaker(spec, {5.0 + 3.43, 6.5, 1.3});
  const Trajectory traj = static_phone(phone_pos, 1.0, rng);
  RenderOptions opts;
  opts.add_noise = false;
  opts.quantize = false;
  Environment env = anechoic();
  const StereoRecording rec = render_audio(speaker, phone, env, traj, 1.0, rng, opts);

  // Matched filter localizes the arrival.
  const dsp::Chirp chirp(spec.chirp);
  const std::vector<double> ref = chirp.reference(44100.0);
  const std::vector<double> corr = dsp::correlate_valid(rec.mic1, ref);
  const double arrival = static_cast<double>(argmax(corr)) / 44100.0;
  // Mics are offset from the phone center by D/2 perpendicular to the LoS,
  // which adds < 0.1 ms; the emission + propagation delay dominates.
  EXPECT_NEAR(arrival, 0.1 + 0.01, 5e-4);
}

TEST(Renderer, InterMicTdoaSignConvention) {
  // Speaker placed along body +y (toward Mic1): Mic1 hears chirps EARLIER.
  Rng rng(122);
  const PhoneSpec phone = galaxy_s4();
  SpeakerSpec spec;
  const geom::Vec3 phone_pos{8.0, 5.0, 1.3};
  const Speaker speaker(spec, {8.0, 5.0 + 4.0, 1.3});  // +y world = +y body at yaw 0
  const Trajectory traj = static_phone(phone_pos, 1.0, rng);
  RenderOptions opts;
  opts.add_noise = false;
  Environment env = anechoic();
  const StereoRecording rec = render_audio(speaker, phone, env, traj, 1.0, rng, opts);
  const dsp::Chirp chirp(spec.chirp);
  const std::vector<double> ref = chirp.reference(44100.0);
  // Restrict to the FIRST chirp so both mics measure the same arrival
  // (later chirps have near-identical correlation heights and the global
  // argmax could pick different instances per mic).
  const std::size_t window = static_cast<std::size_t>(0.3 * 44100.0);
  const std::vector<double> c1 = dsp::correlate_valid({rec.mic1.data(), window}, ref);
  const std::vector<double> c2 = dsp::correlate_valid({rec.mic2.data(), window}, ref);
  const auto p1 = argmax(c1);
  const auto p2 = argmax(c2);
  // TDoA ~ D / S ~ 0.4 ms ~ 17.6 samples.
  EXPECT_GT(static_cast<double>(p2) - static_cast<double>(p1), 12.0);
  EXPECT_LT(static_cast<double>(p2) - static_cast<double>(p1), 22.0);
}

TEST(Renderer, AmplitudeFollowsInverseDistance) {
  Rng rng(123);
  const PhoneSpec phone = galaxy_s4();
  SpeakerSpec spec;
  RenderOptions opts;
  opts.add_noise = false;
  Environment env = anechoic();
  double rms_near, rms_far;
  {
    Rng r2 = rng.split();
    const Speaker speaker(spec, {7.0, 6.5, 1.3});
    const Trajectory traj = static_phone({5.0, 6.5, 1.3}, 1.0, rng);  // 2 m
    const StereoRecording rec = render_audio(speaker, phone, env, traj, 1.0, r2, opts);
    rms_near = rms(rec.mic1);
  }
  {
    Rng r2 = rng.split();
    const Speaker speaker(spec, {11.0, 6.5, 1.3});
    const Trajectory traj = static_phone({5.0, 6.5, 1.3}, 1.0, rng);  // 6 m
    const StereoRecording rec = render_audio(speaker, phone, env, traj, 1.0, r2, opts);
    rms_far = rms(rec.mic1);
  }
  EXPECT_NEAR(rms_near / rms_far, 3.0, 0.2);
}

TEST(Renderer, MultipathAddsEnergyAfterDirect) {
  Rng rng(124);
  const PhoneSpec phone = galaxy_s4();
  SpeakerSpec spec;
  RenderOptions opts;
  opts.add_noise = false;
  Environment reverberant = meeting_room_quiet();
  Environment dry = anechoic();
  const geom::Vec3 phone_pos{5.0, 6.5, 1.3};
  const Speaker speaker(spec, {10.0, 6.5, 1.3});
  Rng ra(5), rb(5);
  const StereoRecording wet_rec = render_audio(
      speaker, phone, reverberant, static_phone(phone_pos, 1.0, ra), 1.0, ra, opts);
  const StereoRecording dry_rec =
      render_audio(speaker, phone, dry, static_phone(phone_pos, 1.0, rb), 1.0, rb, opts);
  EXPECT_GT(dsp::signal_power(wet_rec.mic1), 1.2 * dsp::signal_power(dry_rec.mic1));
}

TEST(Renderer, SnrCalibrationApproximatelyHolds) {
  Rng rng(125);
  const PhoneSpec phone = galaxy_s4();
  SpeakerSpec spec;
  spec.start_offset_s = 0.19;  // leave a noise-only head before chirp 0
  Environment env = anechoic();
  env.snr_db = 10.0;
  const geom::Vec3 phone_pos{5.0, 6.5, 1.3};
  const Speaker speaker(spec, {9.0, 6.5, 1.3});
  const Trajectory traj = static_phone(phone_pos, 2.0, rng);
  const StereoRecording rec = render_audio(speaker, phone, env, traj, 2.0, rng);
  // Noise-only head vs. the chirp body.
  const std::size_t head = static_cast<std::size_t>(0.15 * 44100.0);
  const double noise_power = dsp::signal_power({rec.mic1.data(), head});
  const double amp = 0.5 / 4.0;  // source amplitude over distance
  const dsp::Chirp chirp(spec.chirp);
  const double sig_power = amp * amp * dsp::signal_power(chirp.sample(44100.0));
  EXPECT_NEAR(power_to_db(sig_power / noise_power), 10.0, 1.5);
}

TEST(Renderer, SfoShiftsArrivalsOverTime) {
  // With a +100 ppm speaker clock, the k-th inter-chirp gap grows by
  // 100 ppm; over 50 chirps the cumulative shift is ~1 ms.
  Rng rng(126);
  const PhoneSpec phone = galaxy_s4();
  SpeakerSpec spec;
  spec.clock_offset_ppm = 100.0;
  RenderOptions opts;
  opts.add_noise = false;
  Environment env = anechoic();
  const Speaker speaker(spec, {9.0, 6.5, 1.3});
  const Trajectory traj = static_phone({5.0, 6.5, 1.3}, 10.5, rng);
  const StereoRecording rec = render_audio(speaker, phone, env, traj, 10.5, rng, opts);
  const dsp::Chirp chirp(spec.chirp);
  const std::vector<double> ref = chirp.reference(44100.0);
  // Locate the first and the 50th chirp by windowed correlation.
  const std::vector<double> corr = dsp::correlate_valid(rec.mic1, ref);
  const std::size_t first = argmax({corr.data(), static_cast<std::size_t>(0.25 * 44100)});
  const std::size_t w50 = static_cast<std::size_t>((0.2 * 50 - 0.05) * 44100);
  const std::size_t win = static_cast<std::size_t>(0.2 * 44100);
  const std::size_t fifty = w50 + argmax({corr.data() + w50, win});
  const double gap = (static_cast<double>(fifty) - static_cast<double>(first)) / 44100.0;
  EXPECT_NEAR(gap, 50 * 0.2 * (1.0 + 100e-6), 2e-4);
  EXPECT_GT(gap, 50 * 0.2 + 5e-4);  // visibly longer than nominal
}

TEST(Renderer, QuantizationBoundsSamples) {
  Rng rng(127);
  const PhoneSpec phone = galaxy_s4();
  SpeakerSpec spec;
  Environment env = meeting_room_quiet();
  const Speaker speaker(spec, {6.0, 6.5, 1.3});
  const Trajectory traj = static_phone({5.0, 6.5, 1.3}, 0.5, rng);
  const StereoRecording rec = render_audio(speaker, phone, env, traj, 0.5, rng);
  const double step = 1.0 / 32768.0;
  for (std::size_t i = 0; i < 200; ++i) {
    const double v = rec.mic1[i];
    EXPECT_NEAR(v / step, std::round(v / step), 1e-6);
  }
}

TEST(Renderer, BadArgsThrow) {
  Rng rng(128);
  const PhoneSpec phone = galaxy_s4();
  SpeakerSpec spec;
  Environment env = anechoic();
  const Speaker speaker(spec, {6.0, 6.5, 1.3});
  const Trajectory traj = static_phone({5.0, 6.5, 1.3}, 0.5, rng);
  EXPECT_THROW((void)render_audio(speaker, phone, env, traj, 0.0, rng), PreconditionError);
}

}  // namespace
}  // namespace hyperear::sim
