#include "dsp/chirp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/correlation.hpp"
#include "dsp/spectrum.hpp"

namespace hyperear::dsp {
namespace {

ChirpParams paper_params() {
  // 2-6.4 kHz linear up/down chirp (paper Sections IV-A, VII-E).
  return {};
}

TEST(Chirp, FrequencySweepUpThenDown) {
  const Chirp c(paper_params());
  EXPECT_NEAR(c.instantaneous_frequency(0.0), 2000.0, 1e-9);
  EXPECT_NEAR(c.instantaneous_frequency(0.025), 6400.0, 1e-9);
  EXPECT_NEAR(c.instantaneous_frequency(0.05), 2000.0, 1e-9);
  // Monotone up on the first half.
  EXPECT_LT(c.instantaneous_frequency(0.01), c.instantaneous_frequency(0.02));
  // Monotone down on the second half.
  EXPECT_GT(c.instantaneous_frequency(0.03), c.instantaneous_frequency(0.04));
}

TEST(Chirp, ZeroOutsideSupport) {
  const Chirp c(paper_params());
  EXPECT_DOUBLE_EQ(c.value(-0.001), 0.0);
  EXPECT_DOUBLE_EQ(c.value(0.051), 0.0);
}

TEST(Chirp, AmplitudeBounded) {
  ChirpParams p = paper_params();
  p.amplitude = 0.7;
  const Chirp c(p);
  for (double t = 0.0; t <= p.duration_s; t += 1e-4) {
    EXPECT_LE(std::abs(c.value(t)), 0.7 + 1e-12);
  }
}

TEST(Chirp, SampleLengthAndContent) {
  const Chirp c(paper_params());
  const std::vector<double> s = c.sample(44100.0);
  EXPECT_EQ(s.size(), 2205u);  // 50 ms at 44.1 kHz
  EXPECT_DOUBLE_EQ(s[0], c.value(0.0));
  EXPECT_DOUBLE_EQ(s[100], c.value(100.0 / 44100.0));
}

TEST(Chirp, EnergyInBand) {
  const Chirp c(paper_params());
  const std::vector<double> s = c.sample(44100.0);
  const double total = band_power(s, 44100.0, 50.0, 22000.0);
  const double in_band = band_power(s, 44100.0, 1800.0, 6600.0);
  EXPECT_GT(in_band / total, 0.95);
}

TEST(Chirp, AutocorrelationPeaksAtZeroLag) {
  // "for its good auto correlation property" (Section IV-A).
  const Chirp c(paper_params());
  const std::vector<double> ref = c.reference(44100.0);
  const std::vector<double> corr = correlate_full(ref, ref);
  const std::size_t peak = argmax(corr);
  EXPECT_EQ(peak, ref.size() - 1);  // zero lag
  // Strongest sidelobe well below the main peak.
  double max_side = 0.0;
  for (std::size_t i = 0; i < corr.size(); ++i) {
    const auto lag =
        static_cast<long long>(i) - static_cast<long long>(ref.size() - 1);
    if (std::abs(lag) > 20) max_side = std::max(max_side, std::abs(corr[i]));
  }
  EXPECT_LT(max_side, 0.5 * corr[peak]);
}

TEST(Chirp, ReferenceHasUnitEnergy) {
  const Chirp c(paper_params());
  const std::vector<double> ref = c.reference(44100.0);
  double e = 0.0;
  for (double v : ref) e += v * v;
  EXPECT_NEAR(e, 1.0, 1e-9);
}

TEST(Chirp, EdgeTaperAppliedAnalytically) {
  ChirpParams p = paper_params();
  p.edge_fade_fraction = 0.1;
  const Chirp c(p);
  // Near the very edges the envelope is small.
  EXPECT_LT(std::abs(c.value(1e-4)), 0.05);
  EXPECT_LT(std::abs(c.value(p.duration_s - 1e-4)), 0.05);
}

TEST(Chirp, InvalidParamsThrow) {
  ChirpParams p = paper_params();
  p.freq_high_hz = 1000.0;  // below freq_low
  EXPECT_THROW(Chirp{p}, PreconditionError);
  p = paper_params();
  p.duration_s = 0.0;
  EXPECT_THROW(Chirp{p}, PreconditionError);
  p = paper_params();
  p.edge_fade_fraction = 0.6;
  EXPECT_THROW(Chirp{p}, PreconditionError);
}

TEST(Chirp, SampleBelowNyquistThrows) {
  const Chirp c(paper_params());
  EXPECT_THROW((void)c.sample(8000.0), PreconditionError);
}

TEST(Chirp, PhaseContinuousAtTurnaround) {
  // No jump in the waveform where the sweep reverses.
  const Chirp c(paper_params());
  const double mid = 0.025;
  const double before = c.value(mid - 1e-6);
  const double after = c.value(mid + 1e-6);
  EXPECT_NEAR(before, after, 0.1);  // ~2*pi*f_high*2e-6 of phase slope
}

}  // namespace
}  // namespace hyperear::dsp
