#include "core/naive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hyperear::core {
namespace {

TEST(Naive, ExactWithoutQuantization) {
  NaiveOptions opts;
  opts.quantize = false;
  const geom::Vec2 truth{0.2, 2.0};
  const geom::Vec2 est = naive_localize(truth, opts);
  EXPECT_NEAR(est.x, truth.x, 1e-4);
  EXPECT_NEAR(est.y, truth.y, 1e-4);
}

TEST(Naive, QuantizationIntroducesError) {
  NaiveOptions opts;
  Rng rng(191);
  const Summary s = naive_error_study(2.0, 50, rng, opts);
  EXPECT_GT(s.mean, 0.01);  // clearly worse than the exact solver
}

TEST(Naive, ErrorGrowsWithRange) {
  // The paper's Fig. 3 / Section II-C claim: ambiguity grows rapidly with
  // distance (18.6 cm at 1 m vs 266.7 cm at 5 m for the S4).
  NaiveOptions opts;
  Rng rng(192);
  const Summary near = naive_error_study(1.0, 60, rng, opts);
  const Summary far = naive_error_study(5.0, 60, rng, opts);
  EXPECT_GT(far.mean, 3.0 * near.mean);
  EXPECT_GT(far.max, near.max);
}

TEST(Naive, WiderMoveReducesError) {
  NaiveOptions small_move;
  small_move.move_distance = 0.1;
  NaiveOptions large_move;
  large_move.move_distance = 0.6;
  Rng r1(193), r2(193);
  const Summary small_s = naive_error_study(4.0, 60, r1, small_move);
  const Summary large_s = naive_error_study(4.0, 60, r2, large_move);
  EXPECT_LT(large_s.mean, small_s.mean);
}

TEST(Naive, AnalyticAmbiguityQuadraticInRange) {
  NaiveOptions opts;
  const double a1 = naive_range_ambiguity(1.0, opts);
  const double a2 = naive_range_ambiguity(2.0, opts);
  const double a4 = naive_range_ambiguity(4.0, opts);
  EXPECT_NEAR(a2 / a1, 4.0, 1e-9);
  EXPECT_NEAR(a4 / a2, 4.0, 1e-9);
}

TEST(Naive, AnalyticMatchesMonteCarloScale) {
  // The analytic first-order ambiguity should be within a small factor of
  // the simulated p90 error.
  NaiveOptions opts;
  Rng rng(194);
  const double analytic = naive_range_ambiguity(3.0, opts);
  const Summary sim = naive_error_study(3.0, 80, rng, opts);
  EXPECT_GT(analytic, 0.2 * sim.p90);
  EXPECT_LT(analytic, 10.0 * sim.p90);
}

TEST(Naive, PreconditionsEnforced) {
  NaiveOptions opts;
  opts.move_distance = 0.0;
  EXPECT_THROW((void)naive_localize({0.0, 1.0}, opts), PreconditionError);
  Rng rng(195);
  EXPECT_THROW((void)naive_error_study(0.0, 10, rng), PreconditionError);
  EXPECT_THROW((void)naive_error_study(1.0, 0, rng), PreconditionError);
  EXPECT_THROW((void)naive_range_ambiguity(-1.0), PreconditionError);
}

}  // namespace
}  // namespace hyperear::core
