/// Streaming-ingest tests (ctest label "streaming"; the tsan/asan presets
/// run them): a StreamingSession fed ANY chunking of a recording must
/// produce the batch pipeline's fix BIT FOR BIT plus a chunking-invariant
/// incremental event stream, with peak retained memory bounded well below
/// the recording length; the StreamingEngine must multiplex many such
/// sessions over its pool without changing a bit of any of them.

#include "runtime/streaming_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/streaming_session.hpp"
#include "dsp/matched_filter.hpp"
#include "runtime/engine.hpp"
#include "sim/scenario.hpp"

namespace hyperear::runtime {
namespace {

sim::ScenarioConfig small_scenario(bool two_statures = false) {
  sim::ScenarioConfig c;
  c.speaker_distance = 4.0;
  c.slides_per_stature = 3;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  c.two_statures = two_statures;
  return c;
}

/// A rendered session split into streaming form: `meta` (audio channels
/// emptied, everything else intact) plus the samples to push.
struct SplitSession {
  sim::Session meta;
  std::vector<double> mic1;
  std::vector<double> mic2;
};

SplitSession split(sim::Session session) {
  SplitSession s;
  s.mic1 = std::move(session.audio.mic1);
  s.mic2 = std::move(session.audio.mic2);
  session.audio.mic1.clear();
  session.audio.mic2.clear();
  s.meta = std::move(session);
  return s;
}

sim::Session make_session(std::uint64_t seed, bool two_statures = false) {
  Rng rng(seed);
  return sim::make_localization_session(small_scenario(two_statures), rng);
}

/// Push the split audio through a fresh StreamingSession in slices of the
/// given sizes (cycled) and finalize.
Expected<core::LocalizationResult, core::PipelineError> run_streamed(
    const SplitSession& s, const std::vector<std::size_t>& slice_sizes,
    std::vector<core::StreamEvent>* events = nullptr,
    std::size_t* peak_retained = nullptr, core::StageMetrics* metrics = nullptr) {
  core::StreamingSession session(s.meta);
  std::size_t pos = 0;
  std::size_t cursor = 0;
  while (pos < s.mic1.size()) {
    const std::size_t want = slice_sizes[cursor++ % slice_sizes.size()];
    const std::size_t len = std::min(want, s.mic1.size() - pos);
    session.push(std::span<const double>(s.mic1).subspan(pos, len),
                 std::span<const double>(s.mic2).subspan(pos, len));
    pos += len;
  }
  auto r = session.finalize(metrics);
  if (events != nullptr) *events = session.events();
  if (peak_retained != nullptr) *peak_retained = session.peak_retained_samples();
  return r;
}

/// Bit-exact equality of the deterministic result fields.
void expect_identical(const core::LocalizationResult& a,
                      const core::LocalizationResult& b) {
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.slides_used, b.slides_used);
  EXPECT_EQ(a.estimated_position.x, b.estimated_position.x);
  EXPECT_EQ(a.estimated_position.y, b.estimated_position.y);
  EXPECT_EQ(a.range, b.range);
  EXPECT_EQ(a.estimated_period, b.estimated_period);
  EXPECT_EQ(a.sfo_ppm, b.sfo_ppm);
}

/// The chunking menu every property test sweeps: whole-recording, a prime
/// stride, an uneven mix crossing detector-chunk boundaries, and (for the
/// sessions short enough to afford it) near-degenerate small slices.
std::vector<std::vector<std::size_t>> chunkings(std::size_t n) {
  return {{n}, {100003}, {1009}, {44100, 1, 977, 65536, 3}};
}

TEST(StreamingSession, FixBitIdenticalToBatchForEveryChunking2D) {
  const sim::Session batch = make_session(800);
  core::StageMetrics batch_metrics;
  const auto expect = core::try_localize(batch, {}, &batch_metrics);
  ASSERT_TRUE(expect.has_value());
  ASSERT_TRUE(expect->valid);
  const SplitSession s = split(batch);

  std::vector<core::StreamEvent> base_events;
  for (const auto& slices : chunkings(s.mic1.size())) {
    std::vector<core::StreamEvent> events;
    core::StageMetrics metrics;
    const auto got = run_streamed(s, slices, &events, nullptr, &metrics);
    ASSERT_TRUE(got.has_value());
    expect_identical(*got, *expect);
    EXPECT_EQ(metrics.chirps_mic1, batch_metrics.chirps_mic1);
    EXPECT_EQ(metrics.chirps_mic2, batch_metrics.chirps_mic2);
    EXPECT_EQ(metrics.sfo_estimated, batch_metrics.sfo_estimated);
    EXPECT_EQ(metrics.slides_accepted, batch_metrics.slides_accepted);
    // Event invariance: every chunking must tell the user the same story.
    if (base_events.empty()) {
      base_events = events;
      EXPECT_FALSE(base_events.empty());
    } else {
      EXPECT_EQ(events, base_events);
    }
  }
  // The story must contain the incremental cues the subsystem exists for.
  std::size_t beacons = 0, crossings = 0, phases = 0, fixes = 0;
  for (const core::StreamEvent& e : base_events) {
    switch (e.kind) {
      case core::StreamEvent::Kind::beacon_acquired: ++beacons; break;
      case core::StreamEvent::Kind::sdf_zero_cross: ++crossings; break;
      case core::StreamEvent::Kind::phase_change: ++phases; break;
      case core::StreamEvent::Kind::fix: ++fixes; break;
    }
  }
  EXPECT_EQ(beacons, 2u);  // one per microphone
  EXPECT_GE(phases, 3u);   // sliding_1, solving, done
  EXPECT_EQ(fixes, 1u);
  EXPECT_GT(crossings, 0u);
}

TEST(StreamingSession, FixBitIdenticalToBatchForEveryChunking3D) {
  const sim::Session batch = make_session(810, /*two_statures=*/true);
  const auto expect = core::try_localize(batch, {});
  ASSERT_TRUE(expect.has_value());
  const SplitSession s = split(batch);

  std::vector<core::StreamEvent> base_events;
  for (const auto& slices : chunkings(s.mic1.size())) {
    std::vector<core::StreamEvent> events;
    const auto got = run_streamed(s, slices, &events);
    ASSERT_TRUE(got.has_value());
    expect_identical(*got, *expect);
    if (base_events.empty()) {
      base_events = events;
    } else {
      EXPECT_EQ(events, base_events);
    }
  }
  // The 3D protocol passes through both sliding phases.
  bool saw_slide2 = false;
  for (const core::StreamEvent& e : base_events) {
    if (e.kind == core::StreamEvent::Kind::phase_change &&
        e.phase == core::StreamPhase::sliding_2) {
      saw_slide2 = true;
    }
  }
  EXPECT_TRUE(saw_slide2);
}

TEST(StreamingSession, SingleSamplePushesMatchBatch) {
  // The degenerate chunking on a deliberately short session (trimmed to the
  // calibration head plus a little) — every boundary decision in the
  // filter, detector, and SDF cursors is exercised at every sample.
  sim::Session batch = make_session(820);
  const std::size_t keep = static_cast<std::size_t>(4.5 * batch.audio.sample_rate);
  ASSERT_LT(keep, batch.audio.mic1.size());
  batch.audio.mic1.resize(keep);
  batch.audio.mic2.resize(keep);
  const std::size_t imu_keep = static_cast<std::size_t>(4.5 * batch.imu.sample_rate);
  for (auto* v : {&batch.imu.accel_x, &batch.imu.accel_y, &batch.imu.accel_z,
                  &batch.imu.gyro_x, &batch.imu.gyro_y, &batch.imu.gyro_z}) {
    if (v->size() > imu_keep) v->resize(imu_keep);
  }
  const auto expect = core::try_localize(batch, {});
  const SplitSession s = split(batch);
  std::vector<core::StreamEvent> whole_events, single_events;
  const auto whole = run_streamed(s, {keep}, &whole_events);
  const auto single = run_streamed(s, {1}, &single_events);
  ASSERT_EQ(whole.has_value(), expect.has_value());
  ASSERT_EQ(single.has_value(), expect.has_value());
  if (expect.has_value()) {
    expect_identical(*whole, *expect);
    expect_identical(*single, *expect);
  } else {
    EXPECT_EQ(whole.error().stage, expect.error().stage);
    EXPECT_EQ(single.error().message, whole.error().message);
  }
  EXPECT_EQ(single_events, whole_events);
}

TEST(StreamingSession, PeakRetainedMemoryStaysBounded) {
  // A longer protocol run (five slides per stature) so the recording
  // comfortably exceeds the streaming window.
  sim::ScenarioConfig c = small_scenario();
  c.slides_per_stature = 5;
  Rng rng(830);
  const SplitSession s = split(sim::make_localization_session(c, rng));
  const std::size_t total = s.mic1.size();
  std::size_t peak = 0;
  const auto got = run_streamed(s, {2048}, nullptr, &peak);
  ASSERT_TRUE(got.has_value());
  EXPECT_GT(peak, 0u);
  // The retention contract is a duration-independent constant: per channel
  // one detector chunk (the matched filter processes a chunk only once it
  // is certainly full), the in-flight slice, and the band-pass filter's
  // OLS lookback (well under 32k samples for the ASP kernel).
  const std::size_t chunk = dsp::DetectorConfig{}.chunk;
  const std::size_t bound = 2 * (chunk + 2048) + 32768;
  EXPECT_LT(peak, bound) << "total " << total;
  // And that constant really is "bounded": well below full retention of
  // this recording (2 * total across the two channels).
  EXPECT_LT(bound, total) << "recording too short to demonstrate bounding";
}

TEST(StreamingSession, ErrorTaxonomyMatchesBatch) {
  // Empty stream == empty recording: same category, stage, and message.
  const auto batch_err = core::try_localize(sim::Session{}, {});
  ASSERT_FALSE(batch_err.has_value());
  core::StreamingSession empty{sim::Session{}};
  const auto stream_err = empty.finalize();
  ASSERT_FALSE(stream_err.has_value());
  EXPECT_EQ(stream_err.error().category, batch_err.error().category);
  EXPECT_EQ(stream_err.error().stage, batch_err.error().stage);
  EXPECT_EQ(stream_err.error().message, batch_err.error().message);

  // Invalid config fails validation before touching the audio, same error.
  core::PipelineConfig bad;
  bad.ttl.max_range = -1.0;
  const SplitSession s = split(make_session(840));
  const auto batch_bad = core::try_localize(s.meta, bad);  // audio empty: fine
  core::StreamingSession session(s.meta, bad);
  session.push(std::span<const double>(s.mic1).subspan(0, 1000),
               std::span<const double>(s.mic2).subspan(0, 1000));
  const auto stream_bad = session.finalize();
  ASSERT_FALSE(stream_bad.has_value());
  ASSERT_FALSE(batch_bad.has_value());
  EXPECT_EQ(stream_bad.error().stage, core::PipelineStage::config);
  EXPECT_EQ(stream_bad.error().message, batch_bad.error().message);
}

TEST(StreamingSession, LifecyclePreconditions) {
  const SplitSession s = split(make_session(850));
  core::StreamingSession session(s.meta);
  EXPECT_THROW(session.push(std::span<const double>(s.mic1).subspan(0, 3),
                            std::span<const double>(s.mic2).subspan(0, 2)),
               PreconditionError);
  (void)session.finalize();
  EXPECT_TRUE(session.finalized());
  EXPECT_THROW(session.push(s.mic1, s.mic2), PreconditionError);
  EXPECT_THROW((void)session.finalize(), PreconditionError);

  // Meta arriving with audio attached is a caller bug, caught at once.
  EXPECT_THROW(core::StreamingSession{make_session(851)}, PreconditionError);
}

TEST(StreamingEngine, MultiplexedSessionsMatchBatchBitExactly) {
  // Four live sessions interleaved chunk by chunk over four workers: every
  // report must equal the batch engine's for the same recordings.
  std::vector<sim::Session> sessions;
  for (std::uint64_t i = 0; i < 4; ++i) sessions.push_back(make_session(860 + i));
  BatchEngine batch({}, 2);
  const std::vector<SessionReport> expect = batch.localize_all(sessions);

  std::vector<SplitSession> splits;
  for (sim::Session& s : sessions) splits.push_back(split(std::move(s)));

  StreamingEngineOptions opt;
  opt.threads = 4;
  StreamingEngine engine({}, opt);
  std::vector<std::uint64_t> ids;
  for (SplitSession& s : splits) {
    const std::uint64_t id = engine.open(s.meta);
    ASSERT_NE(id, 0u);
    ids.push_back(id);
  }
  EXPECT_EQ(engine.open_sessions(), splits.size());

  const std::size_t slice = 22050;
  for (std::size_t pos = 0; true;) {
    bool any = false;
    for (std::size_t i = 0; i < splits.size(); ++i) {
      const SplitSession& s = splits[i];
      if (pos >= s.mic1.size()) continue;
      any = true;
      const std::size_t len = std::min(slice, s.mic1.size() - pos);
      PushStatus status =
          engine.push(ids[i], std::span<const double>(s.mic1).subspan(pos, len),
                      std::span<const double>(s.mic2).subspan(pos, len));
      while (status == PushStatus::overflow) {  // backpressure: retry
        status = engine.push(ids[i],
                             std::span<const double>(s.mic1).subspan(pos, len),
                             std::span<const double>(s.mic2).subspan(pos, len));
      }
      ASSERT_EQ(status, PushStatus::accepted);
    }
    if (!any) break;
    pos += slice;
  }
  std::vector<std::future<SessionReport>> futures;
  for (const std::uint64_t id : ids) futures.push_back(engine.finalize(id));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const SessionReport got = futures[i].get();
    EXPECT_EQ(got.status, expect[i].status) << "session " << i;
    expect_identical(got.result, expect[i].result);
    EXPECT_EQ(got.metrics.chirps_mic1, expect[i].metrics.chirps_mic1);
    EXPECT_EQ(got.metrics.chirps_mic2, expect[i].metrics.chirps_mic2);
  }
  EXPECT_EQ(engine.open_sessions(), 0u);
}

TEST(StreamingEngine, BackpressureSessionLimitsAndLifecycle) {
  StreamingEngineOptions opt;
  opt.threads = 1;
  opt.max_sessions = 1;
  opt.max_buffered_samples = 64;
  StreamingEngine engine({}, opt);
  SplitSession s = split(make_session(870));

  const std::uint64_t id = engine.open(s.meta);
  ASSERT_NE(id, 0u);
  // Session limit: the second open is refused by value, not by throw.
  EXPECT_EQ(engine.open(s.meta), 0u);

  // A slice larger than the buffer cap can never be accepted.
  EXPECT_EQ(engine.push(id, std::span<const double>(s.mic1).subspan(0, 64),
                        std::span<const double>(s.mic2).subspan(0, 64)),
            PushStatus::overflow);
  // Unknown ids are a value too.
  EXPECT_EQ(engine.push(9999, std::span<const double>(s.mic1).subspan(0, 8),
                        std::span<const double>(s.mic2).subspan(0, 8)),
            PushStatus::unknown_session);
  EXPECT_THROW((void)engine.finalize(9999), PreconditionError);

  std::future<SessionReport> report = engine.finalize(id);
  // After finalize the session no longer accepts audio.
  PushStatus late = engine.push(id, std::span<const double>(s.mic1).subspan(0, 8),
                                std::span<const double>(s.mic2).subspan(0, 8));
  EXPECT_TRUE(late == PushStatus::closed || late == PushStatus::unknown_session);
  EXPECT_THROW((void)engine.finalize(id), PreconditionError);
  // Nothing was pushed: the report is the empty-recording error, exactly
  // the batch taxonomy.
  const SessionReport r = report.get();
  EXPECT_EQ(r.status, SessionStatus::error);
  EXPECT_EQ(r.error.category, core::ErrorCategory::precondition);
  EXPECT_EQ(r.error.stage, core::PipelineStage::asp);
}

TEST(StreamingEngine, LogicalClockEviction) {
  StreamingEngineOptions opt;
  opt.threads = 1;
  StreamingEngine engine({}, opt);
  SplitSession s = split(make_session(880));
  const std::uint64_t kept = engine.open(s.meta);
  const std::uint64_t idle = engine.open(s.meta);
  ASSERT_NE(kept, 0u);
  ASSERT_NE(idle, 0u);

  engine.tick();
  engine.tick();
  // Activity stamps the clock: `kept` is touched after the ticks, `idle`
  // is not.
  ASSERT_EQ(engine.push(kept, std::span<const double>(s.mic1).subspan(0, 256),
                        std::span<const double>(s.mic2).subspan(0, 256)),
            PushStatus::accepted);
  EXPECT_EQ(engine.evict_idle(1), 1u);
  EXPECT_EQ(engine.open_sessions(), 1u);
  // The evicted id is gone for good.
  EXPECT_EQ(engine.push(idle, std::span<const double>(s.mic1).subspan(0, 8),
                        std::span<const double>(s.mic2).subspan(0, 8)),
            PushStatus::unknown_session);
  EXPECT_THROW((void)engine.finalize(idle), PreconditionError);
  // The survivor still finalizes, and its report matches what the batch
  // pipeline says about the identical 256-sample recording (the renderer
  // is seed-deterministic, so re-rendering and truncating reproduces
  // exactly the samples pushed above).
  sim::Session ref = make_session(880);
  ref.audio.mic1.resize(256);
  ref.audio.mic2.resize(256);
  const auto expect = core::try_localize(ref, {});
  const SessionReport r = engine.finalize(kept).get();
  if (expect.has_value()) {
    EXPECT_EQ(r.status, expect->valid ? SessionStatus::ok
                                      : SessionStatus::no_solution);
  } else {
    EXPECT_EQ(r.status, SessionStatus::error);
    EXPECT_EQ(r.error.stage, expect.error().stage);
    EXPECT_EQ(r.error.message, expect.error().message);
  }
  EXPECT_EQ(engine.open_sessions(), 0u);
}

TEST(StreamingEngine, ShutdownStopsIntake) {
  StreamingEngineOptions opt;
  opt.threads = 1;
  StreamingEngine engine({}, opt);
  SplitSession s = split(make_session(890));
  const std::uint64_t id = engine.open(s.meta);
  ASSERT_NE(id, 0u);
  engine.shutdown();
  engine.shutdown();  // idempotent
  EXPECT_THROW((void)engine.open(s.meta), PreconditionError);
  EXPECT_EQ(engine.push(id, std::span<const double>(s.mic1).subspan(0, 8),
                        std::span<const double>(s.mic2).subspan(0, 8)),
            PushStatus::closed);
}

}  // namespace
}  // namespace hyperear::runtime
