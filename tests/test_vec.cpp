#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "geom/vec2.hpp"
#include "geom/vec3.hpp"

namespace hyperear::geom {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_DOUBLE_EQ((a + b).x, 4.0);
  EXPECT_DOUBLE_EQ((a - b).y, 3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).x, 2.0);
  EXPECT_DOUBLE_EQ((2.0 * a).y, 4.0);
  EXPECT_DOUBLE_EQ((-a).x, -1.0);
}

TEST(Vec2, DotCrossNorm) {
  const Vec2 a{3.0, 4.0};
  const Vec2 b{1.0, 0.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 3.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -4.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
}

TEST(Vec2, NormalizedAndPerp) {
  const Vec2 a{3.0, 4.0};
  const Vec2 u = a.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
  EXPECT_NEAR(u.dot(a.perp()), 0.0, 1e-12);
  // Zero vector stays zero rather than dividing by zero.
  EXPECT_DOUBLE_EQ(Vec2{}.normalized().norm(), 0.0);
}

TEST(Vec2, PerpIsPlusNinetyDegrees) {
  const Vec2 x{1.0, 0.0};
  EXPECT_DOUBLE_EQ(x.perp().x, 0.0);
  EXPECT_DOUBLE_EQ(x.perp().y, 1.0);
}

TEST(Vec2, AngleAndUnitFromAngle) {
  EXPECT_NEAR((Vec2{0.0, 1.0}).angle(), kPi / 2.0, 1e-12);
  const Vec2 u = unit_from_angle(kPi / 6.0);
  EXPECT_NEAR(u.x, std::sqrt(3.0) / 2.0, 1e-12);
  EXPECT_NEAR(u.y, 0.5, 1e-12);
}

TEST(Vec2, Distance) {
  EXPECT_DOUBLE_EQ(distance(Vec2{0.0, 0.0}, Vec2{3.0, 4.0}), 5.0);
}

TEST(Vec2, CompoundAssignment) {
  Vec2 a{1.0, 1.0};
  a += {2.0, 3.0};
  EXPECT_DOUBLE_EQ(a.x, 3.0);
  a -= {1.0, 1.0};
  EXPECT_DOUBLE_EQ(a.y, 3.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a.x, 4.0);
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-1.0, 0.5, 2.0};
  EXPECT_DOUBLE_EQ((a + b).z, 5.0);
  EXPECT_DOUBLE_EQ((a - b).x, 2.0);
  EXPECT_DOUBLE_EQ((a * 3.0).y, 6.0);
  EXPECT_DOUBLE_EQ((3.0 * a).y, 6.0);
}

TEST(Vec3, CrossProductRightHanded) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  const Vec3 z = x.cross(y);
  EXPECT_DOUBLE_EQ(z.x, 0.0);
  EXPECT_DOUBLE_EQ(z.y, 0.0);
  EXPECT_DOUBLE_EQ(z.z, 1.0);
  // Anti-commutative.
  EXPECT_DOUBLE_EQ(y.cross(x).z, -1.0);
}

TEST(Vec3, DotAndNorm) {
  const Vec3 a{2.0, 3.0, 6.0};
  EXPECT_DOUBLE_EQ(a.norm(), 7.0);
  EXPECT_DOUBLE_EQ(a.dot(a), 49.0);
  EXPECT_NEAR(a.normalized().norm(), 1.0, 1e-12);
}

TEST(Vec3, XyProjectionAndLift) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec2 p = a.xy();
  EXPECT_DOUBLE_EQ(p.x, 1.0);
  EXPECT_DOUBLE_EQ(p.y, 2.0);
  const Vec3 lifted(p, 5.0);
  EXPECT_DOUBLE_EQ(lifted.z, 5.0);
  EXPECT_DOUBLE_EQ(lifted.x, 1.0);
}

TEST(Vec3, Distance) {
  EXPECT_DOUBLE_EQ(distance(Vec3{0, 0, 0}, Vec3{2.0, 3.0, 6.0}), 7.0);
}

}  // namespace
}  // namespace hyperear::geom
