#include "dsp/fir.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace hyperear::dsp {
namespace {

TEST(FirDesign, LowpassPassesDcBlocksHigh) {
  const double fs = 44100.0;
  const std::vector<double> h = design_lowpass(2000.0, fs, 201);
  EXPECT_NEAR(fir_magnitude_at(h, 0.0, fs), 1.0, 1e-9);
  EXPECT_NEAR(fir_magnitude_at(h, 500.0, fs), 1.0, 0.02);
  EXPECT_LT(fir_magnitude_at(h, 8000.0, fs), 0.01);
}

TEST(FirDesign, HighpassBlocksDcPassesHigh) {
  const double fs = 44100.0;
  const std::vector<double> h = design_highpass(2000.0, fs, 201);
  EXPECT_NEAR(fir_magnitude_at(h, 0.0, fs), 0.0, 1e-6);
  EXPECT_LT(fir_magnitude_at(h, 500.0, fs), 0.02);
  EXPECT_NEAR(fir_magnitude_at(h, 8000.0, fs), 1.0, 0.02);
}

TEST(FirDesign, BandpassForChirpBand) {
  // The ASP band: 2-6.4 kHz (paper Section VII-E).
  const double fs = 44100.0;
  const std::vector<double> h = design_bandpass(2000.0, 6400.0, fs, 255);
  EXPECT_NEAR(fir_magnitude_at(h, 4000.0, fs), 1.0, 0.03);
  // Human voice below 2 kHz is attenuated (the paper's noise argument).
  EXPECT_LT(fir_magnitude_at(h, 800.0, fs), 0.02);
  EXPECT_LT(fir_magnitude_at(h, 12000.0, fs), 0.02);
}

TEST(FirDesign, ArgumentValidation) {
  EXPECT_THROW((void)design_lowpass(0.0, 44100.0, 101), PreconditionError);
  EXPECT_THROW((void)design_lowpass(30000.0, 44100.0, 101), PreconditionError);
  EXPECT_THROW((void)design_lowpass(1000.0, 44100.0, 100), PreconditionError);  // even taps
  EXPECT_THROW((void)design_bandpass(5000.0, 2000.0, 44100.0, 101), PreconditionError);
}

TEST(FilterSame, PreservesLengthAndAlignment) {
  // A symmetric filter applied to a delta returns the (centered) kernel.
  const std::vector<double> h = design_lowpass(4000.0, 44100.0, 31);
  std::vector<double> delta(101, 0.0);
  delta[50] = 1.0;
  const std::vector<double> y = filter_same(delta, h);
  ASSERT_EQ(y.size(), delta.size());
  // Peak of the impulse response stays at the impulse location (no group
  // delay shift) for a linear-phase kernel.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < y.size(); ++i) {
    if (y[i] > y[peak]) peak = i;
  }
  EXPECT_EQ(peak, 50u);
}

TEST(FilterSame, SinusoidInPassbandSurvives) {
  const double fs = 44100.0;
  const std::vector<double> h = design_bandpass(2000.0, 6400.0, fs, 255);
  std::vector<double> x(4096);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(2.0 * kPi * 4000.0 * static_cast<double>(i) / fs);
  const std::vector<double> y = filter_same(x, h);
  // Compare RMS in the steady-state middle.
  double ex = 0.0, ey = 0.0;
  for (std::size_t i = 1000; i < 3000; ++i) {
    ex += x[i] * x[i];
    ey += y[i] * y[i];
  }
  EXPECT_NEAR(std::sqrt(ey / ex), 1.0, 0.03);
}

TEST(FilterSame, OutOfBandToneSuppressed) {
  const double fs = 44100.0;
  const std::vector<double> h = design_bandpass(2000.0, 6400.0, fs, 255);
  std::vector<double> x(4096);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(2.0 * kPi * 500.0 * static_cast<double>(i) / fs);
  const std::vector<double> y = filter_same(x, h);
  double ex = 0.0, ey = 0.0;
  for (std::size_t i = 1000; i < 3000; ++i) {
    ex += x[i] * x[i];
    ey += y[i] * y[i];
  }
  EXPECT_LT(std::sqrt(ey / ex), 0.02);
}

TEST(FilterSame, FftAndDirectPathsAgree) {
  // Small input -> direct path; verify against the FFT path by using a
  // large input with the same prefix content.
  const std::vector<double> h = design_lowpass(5000.0, 44100.0, 21);
  std::vector<double> small(64);
  for (std::size_t i = 0; i < small.size(); ++i) small[i] = std::sin(0.3 * static_cast<double>(i));
  std::vector<double> large(4096, 0.0);
  for (std::size_t i = 0; i < small.size(); ++i) large[i] = small[i];
  const std::vector<double> ys = filter_same(small, h);
  const std::vector<double> yl = filter_same(large, h);
  // Away from the tail boundary the outputs must agree.
  for (std::size_t i = 0; i + 11 < small.size(); ++i) {
    EXPECT_NEAR(ys[i], yl[i], 1e-9) << i;
  }
}

}  // namespace
}  // namespace hyperear::dsp
