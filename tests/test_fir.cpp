#include "dsp/fir.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "dsp/ols.hpp"

namespace hyperear::dsp {
namespace {

TEST(FirDesign, LowpassPassesDcBlocksHigh) {
  const double fs = 44100.0;
  const std::vector<double> h = design_lowpass(2000.0, fs, 201);
  EXPECT_NEAR(fir_magnitude_at(h, 0.0, fs), 1.0, 1e-9);
  EXPECT_NEAR(fir_magnitude_at(h, 500.0, fs), 1.0, 0.02);
  EXPECT_LT(fir_magnitude_at(h, 8000.0, fs), 0.01);
}

TEST(FirDesign, HighpassBlocksDcPassesHigh) {
  const double fs = 44100.0;
  const std::vector<double> h = design_highpass(2000.0, fs, 201);
  EXPECT_NEAR(fir_magnitude_at(h, 0.0, fs), 0.0, 1e-6);
  EXPECT_LT(fir_magnitude_at(h, 500.0, fs), 0.02);
  EXPECT_NEAR(fir_magnitude_at(h, 8000.0, fs), 1.0, 0.02);
}

TEST(FirDesign, BandpassForChirpBand) {
  // The ASP band: 2-6.4 kHz (paper Section VII-E).
  const double fs = 44100.0;
  const std::vector<double> h = design_bandpass(2000.0, 6400.0, fs, 255);
  EXPECT_NEAR(fir_magnitude_at(h, 4000.0, fs), 1.0, 0.03);
  // Human voice below 2 kHz is attenuated (the paper's noise argument).
  EXPECT_LT(fir_magnitude_at(h, 800.0, fs), 0.02);
  EXPECT_LT(fir_magnitude_at(h, 12000.0, fs), 0.02);
}

TEST(FirDesign, ArgumentValidation) {
  EXPECT_THROW((void)design_lowpass(0.0, 44100.0, 101), PreconditionError);
  EXPECT_THROW((void)design_lowpass(30000.0, 44100.0, 101), PreconditionError);
  EXPECT_THROW((void)design_lowpass(1000.0, 44100.0, 100), PreconditionError);  // even taps
  EXPECT_THROW((void)design_bandpass(5000.0, 2000.0, 44100.0, 101), PreconditionError);
}

TEST(FilterSame, PreservesLengthAndAlignment) {
  // A symmetric filter applied to a delta returns the (centered) kernel.
  const std::vector<double> h = design_lowpass(4000.0, 44100.0, 31);
  std::vector<double> delta(101, 0.0);
  delta[50] = 1.0;
  const std::vector<double> y = filter_same(delta, h);
  ASSERT_EQ(y.size(), delta.size());
  // Peak of the impulse response stays at the impulse location (no group
  // delay shift) for a linear-phase kernel.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < y.size(); ++i) {
    if (y[i] > y[peak]) peak = i;
  }
  EXPECT_EQ(peak, 50u);
}

TEST(FilterSame, SinusoidInPassbandSurvives) {
  const double fs = 44100.0;
  const std::vector<double> h = design_bandpass(2000.0, 6400.0, fs, 255);
  std::vector<double> x(4096);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(2.0 * kPi * 4000.0 * static_cast<double>(i) / fs);
  const std::vector<double> y = filter_same(x, h);
  // Compare RMS in the steady-state middle.
  double ex = 0.0, ey = 0.0;
  for (std::size_t i = 1000; i < 3000; ++i) {
    ex += x[i] * x[i];
    ey += y[i] * y[i];
  }
  EXPECT_NEAR(std::sqrt(ey / ex), 1.0, 0.03);
}

TEST(FilterSame, OutOfBandToneSuppressed) {
  const double fs = 44100.0;
  const std::vector<double> h = design_bandpass(2000.0, 6400.0, fs, 255);
  std::vector<double> x(4096);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(2.0 * kPi * 500.0 * static_cast<double>(i) / fs);
  const std::vector<double> y = filter_same(x, h);
  double ex = 0.0, ey = 0.0;
  for (std::size_t i = 1000; i < 3000; ++i) {
    ex += x[i] * x[i];
    ey += y[i] * y[i];
  }
  EXPECT_LT(std::sqrt(ey / ex), 0.02);
}

/// Feed `signal` to a StreamingFirFilter in slices of the given sizes
/// (cycled until the signal is exhausted) and return everything emitted.
std::vector<double> stream_filter(std::span<const double> signal,
                                  const OlsConvolver& kernel,
                                  const std::vector<std::size_t>& slice_sizes,
                                  Workspace& ws, std::size_t* peak_retained = nullptr) {
  StreamingFirFilter filter(kernel);
  std::vector<double> out;
  std::size_t pos = 0;
  std::size_t cursor = 0;
  while (pos < signal.size()) {
    const std::size_t want = slice_sizes[cursor++ % slice_sizes.size()];
    const std::size_t len = std::min(want, signal.size() - pos);
    filter.push(signal.subspan(pos, len), out, ws);
    pos += len;
    if (peak_retained != nullptr) {
      *peak_retained = std::max(*peak_retained, filter.retained());
    }
  }
  filter.finish(out, ws);
  return out;
}

TEST(StreamingFir, BitIdenticalToBatchForEveryChunking) {
  // The tentpole property at the FIR layer: the concatenation of what
  // push/finish emit must equal filter_same_into on the whole signal BIT
  // FOR BIT, for every slicing — the signal lengths below cross the
  // direct/OLS path threshold and multiple block boundaries, and the
  // slicings cover the degenerate (1-sample), the pathological (prime),
  // and the trivial (whole-signal) cases.
  Rng rng(60);
  for (const std::size_t taps : {31u, 255u}) {
    const std::vector<double> h =
        design_bandpass(2000.0, 6400.0, 44100.0, taps);
    const OlsConvolver kernel(h);
    Workspace ws;
    for (const std::size_t n : {std::size_t{40}, std::size_t{300},
                                std::size_t{5000}, std::size_t{70000}}) {
      std::vector<double> x(n);
      for (double& v : x) v = rng.gaussian(0.0, 1.0);
      std::vector<double> expect;
      filter_same_into(x, kernel, expect, ws);
      for (const std::vector<std::size_t>& slices :
           {std::vector<std::size_t>{n}, std::vector<std::size_t>{1},
            std::vector<std::size_t>{1009},
            std::vector<std::size_t>{7, 331, 1, 4096, 53}}) {
        const std::vector<double> got = stream_filter(x, kernel, slices, ws);
        ASSERT_EQ(got.size(), expect.size()) << "taps " << taps << " n " << n;
        for (std::size_t i = 0; i < expect.size(); ++i) {
          ASSERT_EQ(got[i], expect[i])
              << "taps " << taps << " n " << n << " sample " << i;
        }
      }
    }
  }
}

TEST(StreamingFir, RetainedWindowIsBoundedIndependentOfLength) {
  // Memory contract: once past the direct-path threshold the filter keeps
  // only the lookback the next pair needs, so the retained window must not
  // grow with the signal — the bound covers the direct-path buffer, two
  // OLS blocks of lookahead plus kernel overlap, and one in-flight slice.
  const std::vector<double> h = design_bandpass(2000.0, 6400.0, 44100.0, 255);
  const OlsConvolver kernel(h);
  Workspace ws;
  Rng rng(61);
  std::vector<double> x(200000);
  for (double& v : x) v = rng.gaussian(0.0, 1.0);
  const std::size_t slice = 997;
  std::size_t peak = 0;
  const std::vector<double> out = stream_filter(x, kernel, {slice}, ws, &peak);
  EXPECT_EQ(out.size(), x.size());
  const std::size_t bound =
      std::max(kDirectProductLimit / kernel.kernel_size(),
               2 * kernel.block_size() + kernel.kernel_size() - 1) +
      slice;
  EXPECT_LE(peak, bound);
  EXPECT_LT(peak, x.size() / 4) << "retention must not scale with the signal";
}

TEST(StreamingFir, EmptyStreamAndResetMirrorBatchPreconditions) {
  const std::vector<double> h = design_lowpass(5000.0, 44100.0, 21);
  const OlsConvolver kernel(h);
  Workspace ws;
  StreamingFirFilter filter(kernel);
  std::vector<double> out;
  // filter_same rejects an empty signal; the streaming spelling must agree.
  EXPECT_THROW(filter.finish(out, ws), PreconditionError);
  // reset() rewinds to a usable stream.
  filter.reset();
  Rng rng(62);
  std::vector<double> x(512);
  for (double& v : x) v = rng.gaussian(0.0, 1.0);
  std::vector<double> expect;
  filter_same_into(x, kernel, expect, ws);
  out.clear();
  filter.push(x, out, ws);
  filter.finish(out, ws);
  ASSERT_EQ(out.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) EXPECT_EQ(out[i], expect[i]);
  EXPECT_EQ(filter.total_pushed(), x.size());
  EXPECT_EQ(filter.emitted(), x.size());
}

TEST(FilterSame, FftAndDirectPathsAgree) {
  // Small input -> direct path; verify against the FFT path by using a
  // large input with the same prefix content.
  const std::vector<double> h = design_lowpass(5000.0, 44100.0, 21);
  std::vector<double> small(64);
  for (std::size_t i = 0; i < small.size(); ++i) small[i] = std::sin(0.3 * static_cast<double>(i));
  std::vector<double> large(4096, 0.0);
  for (std::size_t i = 0; i < small.size(); ++i) large[i] = small[i];
  const std::vector<double> ys = filter_same(small, h);
  const std::vector<double> yl = filter_same(large, h);
  // Away from the tail boundary the outputs must agree.
  for (std::size_t i = 0; i + 11 < small.size(); ++i) {
    EXPECT_NEAR(ys[i], yl[i], 1e-9) << i;
  }
}

}  // namespace
}  // namespace hyperear::dsp
