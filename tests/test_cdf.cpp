#include "common/cdf.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hyperear {
namespace {

TEST(EmpiricalCdf, StepFunctionValues) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0};
  const EmpiricalCdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, UnsortedInputHandled) {
  const std::vector<double> sample{4.0, 1.0, 3.0, 2.0};
  const EmpiricalCdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
}

TEST(EmpiricalCdf, EmptySampleThrows) {
  EXPECT_THROW(EmpiricalCdf(std::vector<double>{}), PreconditionError);
}

TEST(EmpiricalCdf, QuantileMatchesAt) {
  Rng rng(3);
  std::vector<double> sample;
  for (int i = 0; i < 200; ++i) sample.push_back(rng.uniform(0.0, 1.0));
  const EmpiricalCdf cdf(sample);
  for (double q : {0.1, 0.25, 0.5, 0.9, 1.0}) {
    const double v = cdf.quantile(q);
    EXPECT_GE(cdf.at(v), q - 1.0 / 200.0 - 1e-12) << "q=" << q;
  }
  EXPECT_THROW((void)cdf.quantile(0.0), PreconditionError);
  EXPECT_THROW((void)cdf.quantile(1.1), PreconditionError);
}

TEST(EmpiricalCdf, GridIsMonotone) {
  Rng rng(4);
  std::vector<double> sample;
  for (int i = 0; i < 100; ++i) sample.push_back(rng.gaussian(1.0, 0.3));
  const EmpiricalCdf cdf(sample);
  const EmpiricalCdf::Grid g = cdf.grid(3.0, 31);
  ASSERT_EQ(g.x.size(), 31u);
  ASSERT_EQ(g.f.size(), 31u);
  EXPECT_DOUBLE_EQ(g.x.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.x.back(), 3.0);
  for (std::size_t i = 1; i < g.f.size(); ++i) EXPECT_GE(g.f[i], g.f[i - 1]);
}

TEST(EmpiricalCdf, TableContainsLabelAndRows) {
  const std::vector<double> sample{0.1, 0.2};
  const EmpiricalCdf cdf(sample);
  const std::string table = cdf.to_table(1.0, 5, "demo");
  EXPECT_NE(table.find("demo"), std::string::npos);
  // Header plus five rows.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 6);
}

TEST(EmpiricalCdf, ValuesSorted) {
  const std::vector<double> sample{3.0, 1.0, 2.0};
  const EmpiricalCdf cdf(sample);
  EXPECT_TRUE(std::is_sorted(cdf.values().begin(), cdf.values().end()));
}

}  // namespace
}  // namespace hyperear
