/// SessionWorkspace + arena: the canonical context-taking pipeline spelling
/// and its context-free wrappers must be the SAME computation — bit-identical
/// results whatever workspace history is — and a reused workspace must only
/// ever retain capacity, never information. The arena tests pin the
/// reset-retains-capacity contract the steady-state engine path relies on.

#include "core/session_workspace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/arena.hpp"
#include "core/asp.hpp"
#include "core/pipeline.hpp"
#include "core/pipeline_context.hpp"
#include "sim/scenario.hpp"

namespace hyperear::core {
namespace {

sim::Session small_session(std::uint64_t seed, double calibration = 3.0,
                           int slides = 3) {
  sim::ScenarioConfig c;
  c.speaker_distance = 4.0;
  c.slides_per_stature = slides;
  c.calibration_duration = calibration;
  c.jitter = sim::ruler_jitter();
  Rng rng(seed);
  return sim::make_localization_session(c, rng);
}

void expect_identical_results(const LocalizationResult& a,
                              const LocalizationResult& b) {
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.estimated_position.x, b.estimated_position.x);
  EXPECT_EQ(a.estimated_position.y, b.estimated_position.y);
  EXPECT_EQ(a.range, b.range);
  EXPECT_EQ(a.estimated_period, b.estimated_period);
  EXPECT_EQ(a.sfo_ppm, b.sfo_ppm);
  EXPECT_EQ(a.slides_used, b.slides_used);
}

void expect_identical_asp(const AspResult& a, const AspResult& b) {
  ASSERT_EQ(a.mic1.size(), b.mic1.size());
  ASSERT_EQ(a.mic2.size(), b.mic2.size());
  for (std::size_t i = 0; i < a.mic1.size(); ++i) {
    EXPECT_EQ(a.mic1[i].time_s, b.mic1[i].time_s);
    EXPECT_EQ(a.mic1[i].score, b.mic1[i].score);
    EXPECT_EQ(a.mic1[i].amplitude, b.mic1[i].amplitude);
    EXPECT_EQ(a.mic1[i].echo_competition, b.mic1[i].echo_competition);
  }
  for (std::size_t i = 0; i < a.mic2.size(); ++i) {
    EXPECT_EQ(a.mic2[i].time_s, b.mic2[i].time_s);
  }
  EXPECT_EQ(a.estimated_period, b.estimated_period);
  EXPECT_EQ(a.sfo_ppm, b.sfo_ppm);
  EXPECT_EQ(a.sfo_estimated, b.sfo_estimated);
}

// --- wrapper == canonical ------------------------------------------------

TEST(SessionWorkspace, CanonicalTryLocalizeBitIdenticalToWrappers) {
  const sim::Session s = small_session(700);
  const PipelineConfig config;
  const PipelineContext context(config, s.prior.chirp, s.audio.sample_rate);
  SessionWorkspace workspace;

  const auto canonical = try_localize(s, config, context, workspace);
  const auto context_free = try_localize(s, config);
  const LocalizationResult throwing = localize(s, config);
  ASSERT_TRUE(canonical.has_value());
  ASSERT_TRUE(context_free.has_value());
  expect_identical_results(*canonical, *context_free);
  expect_identical_results(*canonical, throwing);
}

TEST(SessionWorkspace, CanonicalAspBitIdenticalToLegacySpelling) {
  const sim::Session s = small_session(701);
  const AspOptions options;
  const PipelineContext context(options, s.prior.chirp, s.audio.sample_rate);
  SessionWorkspace workspace;

  const AspResult canonical =
      preprocess_audio(s.audio, s.prior.nominal_period,
                       s.prior.calibration_duration, context, workspace);
  const AspResult legacy =
      preprocess_audio(s.audio, s.prior.chirp, s.prior.nominal_period,
                       s.prior.calibration_duration, options);
  expect_identical_asp(canonical, legacy);
}

// --- reuse retains capacity, never information ---------------------------

TEST(SessionWorkspace, ReuseAcrossDifferingSessionLengthsStaysBitIdentical) {
  // Alternate a long and a short session through ONE workspace, in both
  // orders: every run must equal the same session through a fresh
  // workspace, or buffer contents are leaking across sessions.
  const sim::Session long_s = small_session(702, 4.0, 4);
  const sim::Session short_s = small_session(703, 2.5, 2);
  ASSERT_NE(long_s.audio.mic1.size(), short_s.audio.mic1.size());
  const PipelineConfig config;
  const PipelineContext ctx_long(config, long_s.prior.chirp,
                                 long_s.audio.sample_rate);
  const PipelineContext ctx_short(config, short_s.prior.chirp,
                                  short_s.audio.sample_rate);

  const auto fresh_long = [&] {
    SessionWorkspace fresh;
    return try_localize(long_s, config, ctx_long, fresh);
  }();
  const auto fresh_short = [&] {
    SessionWorkspace fresh;
    return try_localize(short_s, config, ctx_short, fresh);
  }();
  ASSERT_TRUE(fresh_long.has_value());
  ASSERT_TRUE(fresh_short.has_value());

  SessionWorkspace shared;
  for (int round = 0; round < 2; ++round) {
    const auto warm_long = try_localize(long_s, config, ctx_long, shared);
    const auto warm_short = try_localize(short_s, config, ctx_short, shared);
    ASSERT_TRUE(warm_long.has_value());
    ASSERT_TRUE(warm_short.has_value());
    expect_identical_results(*warm_long, *fresh_long);
    expect_identical_results(*warm_short, *fresh_short);
  }
}

TEST(SessionWorkspace, MismatchedContextStillFallsBackToLocalPlans) {
  // The canonical spelling must never let a stale cache change results: a
  // context built for a different chirp is detected and rebuilt locally.
  const sim::Session s = small_session(704);
  const PipelineConfig config;
  dsp::ChirpParams other = s.prior.chirp;
  other.freq_high_hz += 500.0;
  const PipelineContext wrong(config, other, s.audio.sample_rate);
  SessionWorkspace workspace;

  const auto guarded = try_localize(s, config, wrong, workspace);
  const auto honest = try_localize(s, config);
  ASSERT_TRUE(guarded.has_value());
  ASSERT_TRUE(honest.has_value());
  expect_identical_results(*guarded, *honest);
}

// --- arena ---------------------------------------------------------------

TEST(Arena, ResetRetainsCapacityAndStopsGrowing) {
  MonotonicArena arena;
  EXPECT_EQ(arena.capacity_bytes(), 0u);  // lazy first block

  const auto churn = [&arena] {
    ArenaVector<double> v{ArenaAllocator<double>{arena}};
    for (int i = 0; i < 10000; ++i) v.push_back(static_cast<double>(i));
    return v.back();
  };
  (void)churn();
  const std::size_t warm = arena.capacity_bytes();
  EXPECT_GT(warm, 0u);
  for (int round = 0; round < 5; ++round) {
    arena.reset();
    EXPECT_EQ(arena.used_bytes(), 0u);
    EXPECT_EQ(churn(), 9999.0);
    EXPECT_EQ(arena.capacity_bytes(), warm)
        << "arena grew on round " << round << " despite reset";
  }
}

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  MonotonicArena arena;
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(16, 16);
  void* c = arena.allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 16, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 8, 0u);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  // Oversized request: dedicated block, still served.
  void* big = arena.allocate((std::size_t{1} << 23) + 5, 32);
  EXPECT_NE(big, nullptr);
  EXPECT_GE(arena.capacity_bytes(), (std::size_t{1} << 23) + 5);
}

TEST(Arena, VectorsSurviveGrowthAcrossBlocks) {
  MonotonicArena arena(64);  // tiny first block forces block-chain growth
  ArenaVector<int> v{ArenaAllocator<int>{arena}};
  for (int i = 0; i < 5000; ++i) v.push_back(i);
  for (int i = 0; i < 5000; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SessionWorkspace, ArenaCapacityStableAcrossSessions) {
  // The workspace arena must reach steady state: after one session warmed
  // it, further sessions of the same shape must not grow it.
  const sim::Session s = small_session(705);
  const PipelineConfig config;
  const PipelineContext context(config, s.prior.chirp, s.audio.sample_rate);
  SessionWorkspace workspace;

  ASSERT_TRUE(try_localize(s, config, context, workspace).has_value());
  const std::size_t warm = workspace.arena().capacity_bytes();
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(try_localize(s, config, context, workspace).has_value());
    EXPECT_EQ(workspace.arena().capacity_bytes(), warm);
  }
}

}  // namespace
}  // namespace hyperear::core
