#include "core/ple.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "imu/preprocess.hpp"
#include "sim/scenario.hpp"

namespace hyperear::core {
namespace {

sim::ScenarioConfig threed_config() {
  sim::ScenarioConfig c;
  c.speaker_distance = 4.0;
  c.speaker_height = 0.5;
  c.phone_height = 1.3;
  c.two_statures = true;
  c.slides_per_stature = 3;
  c.calibration_duration = 3.0;
  c.jitter = sim::ruler_jitter();
  c.randomize_placement = false;
  return c;
}

struct Prepared {
  sim::Session session;
  AspResult asp;
  imu::MotionSignals motion;
};

Prepared prepare(const sim::ScenarioConfig& c, std::uint64_t seed) {
  Rng rng(seed);
  Prepared p{sim::make_localization_session(c, rng), {}, {}};
  p.asp = preprocess_audio(p.session.audio, p.session.prior.chirp, 0.2,
                           p.session.prior.calibration_duration);
  p.motion = imu::preprocess(p.session.imu);
  return p;
}

TEST(Ple, DetectsStatureChangeAndGroupsSlides) {
  const Prepared p = prepare(threed_config(), 181);
  const PleResult r = localize_3d(p.asp, p.motion, p.session.prior,
                                  p.session.config.phone.mic_separation);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.slides_used, 6);
  EXPECT_NEAR(r.stature_change, 0.45, 0.03);
}

TEST(Ple, ProjectedDistanceNearTruth) {
  const Prepared p = prepare(threed_config(), 182);
  const PleResult r = localize_3d(p.asp, p.motion, p.session.prior,
                                  p.session.config.phone.mic_separation);
  ASSERT_TRUE(r.valid);
  const double truth_range = 4.0;  // horizontal distance
  EXPECT_NEAR(r.projected_distance, truth_range, 0.35);
  const double err =
      distance(r.estimated_position, p.session.truth.speaker_position.xy());
  EXPECT_LT(err, 0.4);
}

TEST(Ple, SlantDistancesOrderedByGeometry) {
  // Raised slides are farther from the low speaker: L2 > L1.
  const Prepared p = prepare(threed_config(), 183);
  const PleResult r = localize_3d(p.asp, p.motion, p.session.prior,
                                  p.session.config.phone.mic_separation);
  ASSERT_TRUE(r.valid);
  if (r.projected) {
    EXPECT_GT(r.l2, r.l1 - 0.1);
  }
}

TEST(Ple, FallsBackWithoutStatureChange) {
  sim::ScenarioConfig c = threed_config();
  c.two_statures = false;  // single stature recording
  const Prepared p = prepare(c, 184);
  const PleResult r = localize_3d(p.asp, p.motion, p.session.prior,
                                  p.session.config.phone.mic_separation);
  ASSERT_TRUE(r.valid);
  EXPECT_FALSE(r.projected);
  // Uses the slant distance; at 4 m with 0.8 m height offset the slant is
  // sqrt(16.64) ~ 4.08, so the floor-map error stays small.
  const double err =
      distance(r.estimated_position, p.session.truth.speaker_position.xy());
  EXPECT_LT(err, 0.45);
}

TEST(Ple, CoplanarSessionProjectsToNearSlant) {
  sim::ScenarioConfig c = threed_config();
  c.speaker_height = 1.3;  // speaker at the first slide plane
  const Prepared p = prepare(c, 185);
  const PleResult r = localize_3d(p.asp, p.motion, p.session.prior,
                                  p.session.config.phone.mic_separation);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.projected_distance, 4.0, 0.35);
}

}  // namespace
}  // namespace hyperear::core
