/// Paper-fidelity regression suite (ctest label "accuracy-regression"):
/// a deterministic simulated scenario matrix — 2D TTL at 4/7/10 m on the
/// slide ruler, 3D PLE at two statures hand-held — asserting that the
/// median and 90th-percentile localization error stay within fixed
/// tolerances of the values recorded from the seed build. Every trial is
/// seeded, sessions run through the BatchEngine (bit-identical at any
/// worker count), and the per-scenario numbers are emitted through the
/// observability registry so the same series an operator would scrape is
/// what the test asserts on.
///
/// Paper reference (ICDCS'19 §VII): 2D mean/p90 = 14.4/22.3 cm at 7 m on
/// the S4; 3D at 7 m = 15.8/25.2 cm. The recorded values below are this
/// repo's simulation at the fixed seeds, not the paper's hardware numbers;
/// the test pins the reproduction, the bench figures compare to the paper.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "runtime/engine.hpp"
#include "sim/scenario.hpp"

namespace hyperear {
namespace {

struct Scenario {
  const char* name;   ///< registry series infix, e.g. "ttl_2d_4m"
  double range;       ///< speaker distance (m)
  bool three_d;       ///< false: 2D TTL ruler; true: 3D PLE two statures
  std::uint64_t seed0;
  // Values recorded from the seed build at these exact seeds.
  double recorded_median_cm;
  double recorded_p90_cm;
  std::size_t recorded_valid;  ///< deterministic count of valid fixes
};

constexpr std::size_t kTrials = 6;

/// Tolerance band around a recorded value: the matrix is deterministic, so
/// drift can only come from benign FP reorderings (compiler/flag changes)
/// or a real algorithmic change — the band forgives the former and catches
/// the latter.
double tolerance_cm(double recorded_cm) { return 0.40 * recorded_cm + 1.0; }

sim::Session make_trial(const Scenario& sc, std::size_t trial) {
  sim::ScenarioConfig c;
  c.phone = sim::galaxy_s4();
  c.environment = sim::meeting_room_quiet();
  c.speaker_distance = sc.range;
  c.phone_height = 1.3;
  c.slides_per_stature = 5;
  c.calibration_duration = 3.0;
  c.hold_duration = 0.7;
  if (sc.three_d) {
    c.speaker_height = 0.5;  // paper §VII-D: low-stature beacon
    c.two_statures = true;
    c.stature_change = 0.45;
    c.jitter = sim::hand_jitter();
  } else {
    c.speaker_height = 1.3;
    c.jitter = sim::ruler_jitter();
  }
  Rng rng(sc.seed0 + trial * 37);
  c.slide_distance = rng.uniform(0.50, 0.60);
  return sim::make_localization_session(c, rng);
}

TEST(AccuracyRegression, MatrixStaysWithinRecordedTolerances) {
  const Scenario matrix[] = {
      {"ttl_2d_4m", 4.0, false, 8100, 1.53, 3.53, 6},
      {"ttl_2d_7m", 7.0, false, 8200, 9.92, 19.55, 6},
      {"ttl_2d_10m", 10.0, false, 8300, 30.52, 61.52, 6},
      {"ple_3d_5m", 5.0, true, 8400, 11.34, 30.54, 6},
  };

  auto registry = std::make_shared<obs::MetricsRegistry>();
  // 2D scenarios run with the default config; the 3D hand-held ones use
  // the paper's acceptance rule for hand operation (bench_fig17_18).
  core::PipelineConfig hand;
  hand.ttl.min_slide_distance = 0.45;
  hand.ttl.max_z_rotation_deg = 20.0;
  runtime::BatchEngine engine_2d({}, 0, {registry, nullptr});
  runtime::BatchEngine engine_3d(hand, 0, {registry, nullptr});

  for (const Scenario& sc : matrix) {
    std::vector<sim::Session> sessions;
    sessions.reserve(kTrials);
    for (std::size_t t = 0; t < kTrials; ++t) sessions.push_back(make_trial(sc, t));
    runtime::BatchEngine& engine = sc.three_d ? engine_3d : engine_2d;
    const std::vector<runtime::SessionReport> reports =
        engine.localize_all(sessions);
    ASSERT_EQ(reports.size(), kTrials);

    std::vector<double> errors_cm;
    for (std::size_t t = 0; t < kTrials; ++t) {
      if (reports[t].status != runtime::SessionStatus::ok) continue;
      errors_cm.push_back(100.0 *
                          core::localization_error(reports[t].result, sessions[t]));
    }
    ASSERT_FALSE(errors_cm.empty()) << sc.name << ": no valid fixes";
    const double median_cm = median(errors_cm);
    const double p90_cm = percentile(errors_cm, 90.0);
    std::printf("%-12s valid %zu/%zu  median %6.2f cm  p90 %6.2f cm  "
                "(recorded %.1f / %.1f)\n",
                sc.name, errors_cm.size(), kTrials, median_cm, p90_cm,
                sc.recorded_median_cm, sc.recorded_p90_cm);

    // Emit through the registry first (the operator-visible series), then
    // assert on the same numbers.
    const std::string prefix = std::string("accuracy.") + sc.name;
    registry->gauge(prefix + ".median_cm").set(median_cm);
    registry->gauge(prefix + ".p90_cm").set(p90_cm);
    registry->gauge(prefix + ".valid").set(static_cast<double>(errors_cm.size()));

    EXPECT_EQ(errors_cm.size(), sc.recorded_valid) << sc.name;
    EXPECT_NEAR(median_cm, sc.recorded_median_cm,
                tolerance_cm(sc.recorded_median_cm))
        << sc.name;
    EXPECT_NEAR(p90_cm, sc.recorded_p90_cm, tolerance_cm(sc.recorded_p90_cm))
        << sc.name;
    // Gross-failure backstop independent of the recorded table: the paper's
    // claim is decimeter-class accuracy at operational range.
    EXPECT_LT(p90_cm, 10.0 * sc.range) << sc.name;
  }

  // The emitted series round-trip through the export path.
  const std::string json = registry->to_json();
  for (const Scenario& sc : matrix) {
    EXPECT_NE(json.find(std::string("accuracy.") + sc.name + ".median_cm"),
              std::string::npos);
  }
  std::printf("%s", registry->to_prometheus().c_str());
}

}  // namespace
}  // namespace hyperear
