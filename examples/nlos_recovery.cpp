/// Non-line-of-sight detection and recovery (extension of the paper's
/// Section IX, which proposes exploiting user mobility when an obstruction
/// blocks the direct path). The beacon hides behind a cabinet: the first
/// session's dominant arrivals are reflections, which the LoS test catches
/// from the instability of their inter-mic TDoA. The app then asks the user
/// to step aside; the second session has a clear view and localizes.

#include <cstdio>

#include "core/nlos.hpp"
#include "core/pipeline.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace hyperear;

sim::Session record_session(double direct_gain, std::uint64_t seed) {
  sim::ScenarioConfig c;
  c.phone = sim::galaxy_s4();
  c.environment = sim::meeting_room_quiet();
  c.speaker_distance = 5.0;
  c.slides_per_stature = 4;
  c.jitter = sim::hand_jitter();
  c.render.direct_path_gain = direct_gain;
  Rng rng(seed);
  return sim::make_localization_session(c, rng);
}

core::NlosAssessment check(const sim::Session& s) {
  const core::AspResult asp =
      core::preprocess_audio(s.audio, s.prior.chirp, 0.2, s.prior.calibration_duration);
  return core::assess_line_of_sight(asp);
}

}  // namespace

int main() {
  std::printf("Attempt 1: beacon behind a cabinet (direct path blocked)\n");
  const sim::Session blocked = record_session(0.03, 5050);
  const core::NlosAssessment first = check(blocked);
  std::printf("  LoS check: tdoa dispersion %.1f us, amplitude churn %.2f -> %s\n",
              1e6 * first.tdoa_mad_s, first.amplitude_dispersion,
              first.suspected ? "OBSTRUCTED" : "clear");
  if (first.suspected) {
    const auto bad = core::try_localize(blocked);
    if (bad.has_value() && bad->valid) {
      std::printf("  (a naive fix would have been %.1f cm off)\n",
                  100.0 * core::localization_error(*bad, blocked));
    } else {
      std::printf("  (no usable fix from reflections alone)\n");
    }
    std::printf("  -> ask the user to step two meters to the side and retry\n\n");
  }

  std::printf("Attempt 2: after moving, the line of sight is clear\n");
  const sim::Session clear = record_session(1.0, 5051);
  const core::NlosAssessment second = check(clear);
  std::printf("  LoS check: tdoa dispersion %.1f us, amplitude churn %.2f -> %s\n",
              1e6 * second.tdoa_mad_s, second.amplitude_dispersion,
              second.suspected ? "OBSTRUCTED" : "clear");
  const auto outcome = core::try_localize(clear);
  if (!outcome.has_value() || !outcome->valid) {
    std::printf("  localization failed\n");
    return 1;
  }
  const core::LocalizationResult& fix = *outcome;
  std::printf("  beacon localized %.2f m away; error %.1f cm\n", fix.range,
              100.0 * core::localization_error(fix, clear));
  return 0;
}
