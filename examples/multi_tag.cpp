/// FDMA multi-tag operation: two beacons with disjoint chirp bands
/// (2-6.4 kHz and 7-11 kHz) transmit simultaneously in the same room. The
/// band-pass + matched filter separate them, so one slide session per tag
/// localizes each despite the other chirping away. Listening with the
/// wrong reference finds nothing - tags do not alias into each other.

#include <cstdio>

#include "core/pipeline.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace hyperear;

/// A session aimed at the primary tag, with the other tag transmitting
/// from elsewhere in the room as an interferer.
sim::Session record(const sim::SpeakerSpec& target, const sim::SpeakerSpec& other,
                    std::uint64_t seed) {
  sim::ScenarioConfig c;
  c.phone = sim::galaxy_s4();
  c.environment = sim::meeting_room_quiet();
  c.speaker = target;
  c.speaker_distance = 5.0;
  c.slides_per_stature = 4;
  c.jitter = sim::hand_jitter();
  sim::ScenarioConfig::Interferer itf;
  itf.spec = other;
  itf.spec.amplitude_at_1m = 0.6;
  itf.distance = 3.0;
  itf.lateral_offset = 2.5;
  c.interferers.push_back(itf);
  Rng rng(seed);
  return sim::make_localization_session(c, rng);
}

void localize_and_report(const char* name, const sim::Session& s) {
  const auto outcome = core::try_localize(s);
  if (!outcome.has_value() || !outcome->valid) {
    std::printf("%-10s NOT FOUND\n", name);
    return;
  }
  const core::LocalizationResult& r = *outcome;
  std::printf("%-10s range %.2f m, error %.1f cm (%d slides)\n", name, r.range,
              100.0 * core::localization_error(r, s), r.slides_used);
}

}  // namespace

int main() {
  const sim::SpeakerSpec tag_a = sim::audible_beacon();          // 2-6.4 kHz
  const sim::SpeakerSpec tag_b = sim::secondary_band_beacon();   // 7-11 kHz

  std::printf("Two tags transmitting simultaneously (FDMA bands)\n\n");

  std::printf("Session aimed at tag A (wallet), tag B chirping nearby:\n");
  const sim::Session sa = record(tag_a, tag_b, 6001);
  localize_and_report("tag A", sa);

  std::printf("\nSession aimed at tag B (keys), tag A chirping nearby:\n");
  const sim::Session sb = record(tag_b, tag_a, 6002);
  localize_and_report("tag B", sb);

  std::printf("\nCross-check: listening for tag B's chirp in tag A's session\n");
  sim::Session cross = sa;
  cross.prior.chirp = tag_b.chirp;
  const auto r = core::try_localize(cross);
  const bool found = r.has_value() && r->valid;
  std::printf("-> %s (the band-pass keeps the tags orthogonal%s)\n",
              found ? "found something" : "nothing detected at tag A's location",
              found ? "... at tag B's position, as it should" : "");
  return 0;
}
