/// Guided search: the end-to-end product loop. The user localizes the
/// beacon from across the room, walks halfway toward the fused estimate,
/// and repeats. Each session's fix is fused by the BeaconTracker with an
/// uncertainty from the analytic error budget, so closer (more accurate)
/// fixes progressively dominate — by the third stop the keys are within
/// arm's reach of the estimate.

#include <cmath>
#include <cstdio>

#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "core/tracker.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace hyperear;

  // Fixed world: the beacon sits at a fixed spot in the meeting room.
  // Each leg re-runs the slide protocol from the user's current distance.
  const double initial_range = 7.0;
  core::BeaconTracker tracker;
  double range = initial_range;
  std::uint64_t seed = 9090;

  std::printf("Guided search for a beacon starting %.0f m away\n\n", initial_range);
  for (int leg = 1; leg <= 3 && range > 1.0; ++leg) {
    sim::ScenarioConfig c;
    c.phone = sim::galaxy_s4();
    c.environment = sim::meeting_room_quiet();
    c.speaker_distance = range;
    c.slides_per_stature = 4;
    c.jitter = sim::hand_jitter();
    Rng rng(seed++);
    const sim::Session s = sim::make_localization_session(c, rng);
    const auto outcome = core::try_localize(s);
    if (!outcome.has_value() || !outcome->valid) {
      std::printf("leg %d: no fix, sliding again\n", leg);
      continue;
    }
    const core::LocalizationResult& fix = *outcome;
    // Express the fix relative to the user so legs are comparable (each
    // session has its own random placement).
    const geom::Vec2 rel =
        fix.estimated_position - s.prior.phone_start_position.xy();
    const geom::Vec2 truth_rel =
        s.truth.speaker_position.xy() - s.prior.phone_start_position.xy();
    const double sigma = core::fix_sigma(fix.range, /*hand_held=*/true);
    tracker.update(rel, sigma);

    const core::Guidance g = core::guide_toward({0.0, 0.0}, tracker.estimate());
    std::printf("leg %d: measured from %.1f m -> fix error %4.1f cm (sigma %.2f m)\n",
                leg, range, 100.0 * distance(rel, truth_rel), sigma);
    std::printf("        fused estimate: bearing %+.1f deg, %.2f m ahead "
                "(uncertainty %.2f m, %d fixes)\n",
                rad2deg(g.bearing_rad), g.distance,
                tracker.uncertainty(), tracker.fixes());

    // Walk halfway toward the estimate for the next leg.
    range = std::max(range / 2.0, 1.2);
    std::printf("        walking to ~%.1f m and sliding again...\n\n", range);
  }

  std::printf("Search complete: fused uncertainty %.2f m after %d fixes.\n",
              tracker.uncertainty(), tracker.fixes());
  return 0;
}
