/// The paper's harsher evaluation environment: a 95 m x 16.5 m shopping
/// mall corridor. A shop attaches a beacon to a display item; the user
/// localizes it from 7 m during off-peak hours (soft background music,
/// SNR 6 dB) and again during busy hours (crowd + announcements, SNR 3 dB).
/// Demonstrates the environment presets and the noise sensitivity the
/// paper's Fig. 19 reports.

#include <cstdio>

#include "core/pipeline.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace hyperear;

void run_condition(const sim::Environment& env, std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.phone = sim::galaxy_note3();
  config.environment = env;
  config.speaker_distance = 7.0;
  config.speaker_height = 0.8;  // on a display shelf
  config.phone_height = 1.3;
  config.two_statures = true;
  config.slides_per_stature = 5;
  config.jitter = sim::hand_jitter();

  Rng rng(seed);
  const sim::Session session = sim::make_localization_session(config, rng);
  core::PipelineConfig pipeline;
  pipeline.ttl.min_slide_distance = 0.45;
  const auto outcome = core::try_localize(session, pipeline);

  std::printf("%-24s SNR %4.1f dB: ", env.name.c_str(), env.snr_db);
  if (!outcome.has_value()) {
    std::printf("pipeline error %s\n", core::describe(outcome.error()).c_str());
    return;
  }
  const core::LocalizationResult& result = *outcome;
  if (!result.valid) {
    std::printf("localization FAILED (too few clean chirps)\n");
    return;
  }
  std::printf("error %6.1f cm  (%d slides, SFO %+.1f ppm)\n",
              100.0 * core::localization_error(result, session), result.slides_used,
              result.sfo_ppm);
}

}  // namespace

int main() {
  std::printf("Shopping-mall object finding, beacon 7 m away (Galaxy Note3)\n\n");
  run_condition(sim::mall_off_peak(), 31001);
  run_condition(sim::mall_busy_hour(), 31002);
  std::printf("\nFor comparison, the same protocol in the meeting room:\n");
  run_condition(sim::meeting_room_quiet(), 31003);
  run_condition(sim::meeting_room_chatting(), 31004);
  std::printf("\nVoice chatter barely matters (it is filtered out of the 2-6.4 kHz\n"
              "chirp band); broadband mall noise is what hurts (paper Fig. 19).\n");
  return 0;
}
