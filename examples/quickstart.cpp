/// Quickstart: simulate one HyperEar session and localize the beacon.
///
/// A speaker (attached to, say, a lost key ring) sits 5 m from the user in
/// a quiet meeting room. The user has already rolled the phone to face the
/// beacon (in-direction) and now slides it five times on a level ruler.
/// The pipeline consumes only what a real phone would record — stereo audio
/// and IMU data — plus the user's own position and the beacon's nominal
/// chirp period.

#include <cstdio>

#include "core/pipeline.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace hyperear;

  sim::ScenarioConfig config;
  config.phone = sim::galaxy_s4();
  config.environment = sim::meeting_room_quiet();
  config.speaker_distance = 5.0;
  config.speaker_height = 1.3;  // same stature: a plain 2D session
  config.phone_height = 1.3;
  config.jitter = sim::ruler_jitter();

  Rng rng(42);
  std::printf("Simulating a %s session in '%s' (speaker %.1f m away)...\n",
              config.phone.name.c_str(), config.environment.name.c_str(),
              config.speaker_distance);
  const sim::Session session = sim::make_localization_session(config, rng);
  std::printf("  audio: %.1f s stereo at %.0f Hz, IMU: %zu samples at %.0f Hz\n",
              static_cast<double>(session.audio.mic1.size()) / session.audio.sample_rate,
              session.audio.sample_rate, session.imu.size(),
              session.imu.sample_rate);

  const auto outcome = core::try_localize(session);
  if (!outcome.has_value()) {
    std::printf("Localization error: %s\n", core::describe(outcome.error()).c_str());
    return 1;
  }
  const core::LocalizationResult& result = *outcome;
  if (!result.valid) {
    std::printf("Localization failed (no accepted slides).\n");
    return 1;
  }

  std::printf("  SFO estimate: %+.1f ppm (period %.6f s)\n", result.sfo_ppm,
              result.estimated_period);
  std::printf("  slides accepted: %d\n", result.slides_used);
  std::printf("  estimated range L = %.3f m\n", result.range);
  std::printf("  speaker estimate: (%.3f, %.3f) m\n", result.estimated_position.x,
              result.estimated_position.y);
  std::printf("  ground truth:     (%.3f, %.3f) m\n",
              session.truth.speaker_position.x, session.truth.speaker_position.y);
  std::printf("  localization error: %.1f cm\n",
              100.0 * core::localization_error(result, session));
  return 0;
}
