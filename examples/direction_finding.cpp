/// Speaker Direction Finding demo (paper Section IV): the user rolls the
/// phone around its z-axis; the inter-microphone TDoA traces
/// -D cos(alpha)/S and crosses zero when the beacon passes the phone's +x
/// axis. This example runs a rotation sweep, prints part of the TDoA trace
/// (the paper's Fig. 7 curve), and reports the recovered direction.

#include <cmath>
#include <cstdio>

#include "common/units.hpp"
#include "core/sdf.hpp"
#include "imu/preprocess.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace hyperear;

  sim::ScenarioConfig config;
  config.phone = sim::galaxy_s4();
  config.environment = sim::meeting_room_quiet();
  config.speaker_distance = 5.0;
  config.jitter = sim::hand_jitter();

  // The beacon is somewhere to the user's side: the phone starts at yaw
  // +50 deg (true in-direction yaw is 0) and sweeps toward -50 deg.
  Rng rng(404);
  std::printf("Sweeping the phone to find the beacon direction...\n");
  const sim::Session session =
      sim::make_rotation_sweep_session(config, deg2rad(50.0), deg2rad(-50.0), 8.0, rng);

  const core::AspResult asp =
      core::preprocess_audio(session.audio, session.prior.chirp, 0.2, 1.0);
  const imu::MotionSignals motion = imu::preprocess(session.imu);
  const core::SdfResult sdf = core::find_direction(asp, motion);

  std::printf("\ninter-mic TDoA trace (every 3rd beacon chirp):\n");
  std::printf("%8s %12s\n", "t (s)", "TDoA (ms)");
  for (std::size_t i = 0; i < sdf.samples.size(); i += 3) {
    std::printf("%8.2f %12.4f\n", sdf.samples[i].time_s, 1e3 * sdf.samples[i].tdoa_s);
  }

  if (!sdf.found) {
    std::printf("\nNo zero crossing found - keep rotating.\n");
    return 1;
  }
  const double estimated_yaw = deg2rad(50.0) + sdf.yaw_rad;
  std::printf("\nzero crossing at t = %.2f s\n", sdf.crossing_time_s);
  std::printf("beacon is on the phone's %s side (alpha = %s)\n",
              sdf.speaker_on_positive_x ? "+x (right)" : "-x (left)",
              sdf.speaker_on_positive_x ? "90 deg" : "270 deg");
  std::printf("estimated in-direction yaw: %+.2f deg (truth: 0 deg)\n",
              rad2deg(estimated_yaw));
  std::printf("Stop rolling here and start sliding along the mic axis.\n");
  return 0;
}
