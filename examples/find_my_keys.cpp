/// The paper's motivating scenario: a key ring with an acoustic beacon lost
/// somewhere in a large meeting room. The user stands 7 m away, holds the
/// phone in hand (no ruler), and runs the full 3D HyperEar protocol:
/// direction finding has already pointed the phone at the beacon; now five
/// slides at hip height, raise the phone, five more slides. The pipeline
/// reports the beacon's position on the floor map and a human-friendly
/// bearing/distance instruction.

#include <cmath>
#include <cstdio>

#include "common/units.hpp"
#include "core/pipeline.hpp"
#include "sim/scenario.hpp"

int main() {
  using namespace hyperear;

  sim::ScenarioConfig config;
  config.phone = sim::galaxy_s4();
  config.environment = sim::meeting_room_quiet();
  config.speaker_distance = 7.0;
  config.speaker_height = 0.5;  // keys on a chair
  config.phone_height = 1.3;
  config.two_statures = true;
  config.stature_change = 0.45;
  config.slides_per_stature = 5;
  config.jitter = sim::hand_jitter();

  Rng rng(2024);
  std::printf("Lost keys simulation: beacon at 0.5 m stature, %.0f m from the user\n",
              config.speaker_distance);
  std::printf("Recording a hand-held two-stature session (%s)...\n",
              config.phone.name.c_str());
  const sim::Session session = sim::make_localization_session(config, rng);

  core::PipelineConfig pipeline;
  pipeline.ttl.min_slide_distance = 0.45;   // the paper's slide acceptance rule
  pipeline.ttl.max_z_rotation_deg = 20.0;
  const auto outcome = core::try_localize(session, pipeline);
  if (!outcome.has_value()) {
    std::printf("Pipeline error: %s\n", core::describe(outcome.error()).c_str());
    return 1;
  }
  const core::LocalizationResult& result = *outcome;
  if (!result.valid) {
    std::printf("Could not localize the beacon; slide again.\n");
    return 1;
  }

  const geom::Vec2 user = session.prior.phone_start_position.xy();
  const geom::Vec2 est = result.estimated_position;
  const geom::Vec2 delta = est - user;
  std::printf("\n--- HyperEar report ---\n");
  std::printf("slides accepted: %d; stature change estimate: %.2f m\n",
              result.slides_used, result.ple->stature_change);
  std::printf("slant distances L1=%.2f m L2=%.2f m -> projected L*=%.2f m\n",
              result.ple->l1, result.ple->l2, result.range);
  std::printf("beacon bearing %.1f deg, distance %.2f m from you\n",
              rad2deg(delta.angle()), delta.norm());
  std::printf("estimated map position (%.2f, %.2f)\n", est.x, est.y);
  const double err = core::localization_error(result, session);
  std::printf("\n(ground truth (%.2f, %.2f) -> localization error %.1f cm)\n",
              session.truth.speaker_position.x, session.truth.speaker_position.y,
              100.0 * err);
  std::printf("%s\n", err < 0.5 ? "Close enough to spot the keys by eye."
                                : "Repeat the slides to refine the fix.");
  return 0;
}
